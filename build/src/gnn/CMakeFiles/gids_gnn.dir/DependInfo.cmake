
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/gat.cc" "src/gnn/CMakeFiles/gids_gnn.dir/gat.cc.o" "gcc" "src/gnn/CMakeFiles/gids_gnn.dir/gat.cc.o.d"
  "/root/repo/src/gnn/gcn.cc" "src/gnn/CMakeFiles/gids_gnn.dir/gcn.cc.o" "gcc" "src/gnn/CMakeFiles/gids_gnn.dir/gcn.cc.o.d"
  "/root/repo/src/gnn/graphsage_model.cc" "src/gnn/CMakeFiles/gids_gnn.dir/graphsage_model.cc.o" "gcc" "src/gnn/CMakeFiles/gids_gnn.dir/graphsage_model.cc.o.d"
  "/root/repo/src/gnn/loss.cc" "src/gnn/CMakeFiles/gids_gnn.dir/loss.cc.o" "gcc" "src/gnn/CMakeFiles/gids_gnn.dir/loss.cc.o.d"
  "/root/repo/src/gnn/optimizer.cc" "src/gnn/CMakeFiles/gids_gnn.dir/optimizer.cc.o" "gcc" "src/gnn/CMakeFiles/gids_gnn.dir/optimizer.cc.o.d"
  "/root/repo/src/gnn/sage_conv.cc" "src/gnn/CMakeFiles/gids_gnn.dir/sage_conv.cc.o" "gcc" "src/gnn/CMakeFiles/gids_gnn.dir/sage_conv.cc.o.d"
  "/root/repo/src/gnn/tensor.cc" "src/gnn/CMakeFiles/gids_gnn.dir/tensor.cc.o" "gcc" "src/gnn/CMakeFiles/gids_gnn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gids_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/gids_sampling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
