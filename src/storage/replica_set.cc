#include "storage/replica_set.h"

namespace gids::storage {

int ReplicaSet::RouteAttempt(uint64_t page, uint32_t attempt,
                             const std::function<bool(int)>& healthy,
                             int* replica_out, bool* quorum_lost) const {
  const int n = factor();
  int preferred[kMaxReplicas];
  int doomed[kMaxReplicas];
  int n_preferred = 0;
  int n_doomed = 0;
  for (int r = 0; r < n; ++r) {
    const int d = Device(page, r);
    if (healthy(d) && IsFresh(page, d)) {
      preferred[n_preferred++] = r;
    } else {
      doomed[n_doomed++] = r;
    }
  }
  int r;
  if (n_preferred > 0) {
    r = preferred[attempt % static_cast<uint32_t>(n_preferred)];
  } else {
    r = doomed[attempt % static_cast<uint32_t>(n_doomed)];
    if (quorum_lost != nullptr) *quorum_lost = true;
  }
  if (replica_out != nullptr) *replica_out = r;
  return Device(page, r);
}

}  // namespace gids::storage
