#ifndef GIDS_GNN_GCN_H_
#define GIDS_GNN_GCN_H_

#include <vector>

#include "common/random.h"
#include "gnn/model.h"
#include "graph/feature_store.h"
#include "sampling/minibatch.h"

namespace gids::gnn {

/// One GCN convolution (Kipf & Welling) over a sampled block with
/// implicit self-loops and symmetric degree normalization computed on the
/// in-block edges:
///   h'_v = act( Σ_{u in N(v) ∪ {v}}  h_u W / sqrt((d_u+1)(d_v+1)) + b )
/// where degrees are in-block degrees. The second GNN architecture the
/// paper's frameworks (DGL/PyG) ship; exercises the same dataloader path
/// as GraphSAGE with a different aggregation.
class GcnConv {
 public:
  GcnConv(size_t in_dim, size_t out_dim, bool apply_relu, Rng& rng);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  Tensor Forward(const sampling::Block& block, const Tensor& h_src);
  Tensor Backward(const sampling::Block& block, const Tensor& d_out);

  void ZeroGrad();
  std::vector<Tensor*> Params();
  std::vector<Tensor*> Grads();

 private:
  /// Normalized aggregation of `rows` (n_src x dim) into (num_dst x dim).
  Tensor Aggregate(const sampling::Block& block, const Tensor& rows) const;
  /// Transpose of Aggregate: scatters (num_dst x dim) back to n_src rows.
  Tensor AggregateBack(const sampling::Block& block,
                       const Tensor& d_rows) const;
  void ComputeDegrees(const sampling::Block& block);

  size_t in_dim_;
  size_t out_dim_;
  bool apply_relu_;

  Tensor weight_;  // in_dim x out_dim
  Tensor bias_;    // 1 x out_dim
  Tensor g_weight_;
  Tensor g_bias_;

  // Forward caches.
  std::vector<uint32_t> src_degree_;  // in-block out-degree per src (+self)
  std::vector<uint32_t> dst_degree_;  // in-block in-degree per dst (+self)
  Tensor cached_agg_;   // num_dst x in_dim (normalized aggregation)
  Tensor cached_out_;   // num_dst x out_dim (post-activation)
  size_t cached_n_src_ = 0;
};

/// Stacked GCN classifier mirroring GraphSageModel's structure.
struct GcnConfig {
  size_t in_dim = 0;
  size_t hidden_dim = 128;
  size_t num_classes = 16;
  int num_layers = 3;
};

class GcnModel : public Model {
 public:
  GcnModel(const GcnConfig& config, Rng& rng);

  const GcnConfig& config() const { return config_; }

  Tensor Forward(const sampling::MiniBatch& batch,
                 const Tensor& input_features) override;
  double TrainStep(const sampling::MiniBatch& batch,
                   const Tensor& input_features,
                   std::span<const uint32_t> labels,
                   Optimizer& optimizer) override;
  std::vector<Tensor*> Params() override;
  std::vector<Tensor*> Grads() override;
  void ZeroGrad() override;

 private:
  GcnConfig config_;
  std::vector<GcnConv> layers_;
};

}  // namespace gids::gnn

#endif  // GIDS_GNN_GCN_H_
