#include "core/mutation_stream.h"

#include <cstring>
#include <span>

#include "common/check.h"

namespace gids::core {

MutationStream::MutationStream(const graph::FeatureStore* features,
                               const MutationStreamOptions& options)
    : features_(features), options_(options), rng_(options.seed) {
  GIDS_CHECK(features_ != nullptr);
  GIDS_CHECK(features_->num_nodes() > 0);
  row_scratch_.resize(features_->feature_dim());
}

void MutationStream::GenerateUpTo(uint64_t index) {
  const uint32_t per_iter = records_per_iter();
  GIDS_CHECK(per_iter > 0);
  while (records_.size() <= index) {
    const uint64_t i = records_.size();
    const uint32_t slot = static_cast<uint32_t>(i % per_iter);
    storage::MutationRecord rec;
    rec.lsn = 0;  // assigned at submit; submission order makes it i + 1
    if (slot < options_.updates_per_iter) {
      const graph::NodeId node = static_cast<graph::NodeId>(
          rng_.Next() % features_->num_nodes());
      const uint64_t version = ++versions_[node];
      rec.type = storage::MutationType::kFeatureUpdate;
      rec.key = node;
      rec.arg = version;
      rec.offset = features_->ByteOffset(node);
      rec.home_page = features_->PagesFor(node).first;
      features_->FillFeatureAt(node, version,
                               std::span<float>(row_scratch_));
      rec.payload.resize(features_->feature_bytes_per_node());
      std::memcpy(rec.payload.data(), row_scratch_.data(),
                  rec.payload.size());
    } else {
      const uint64_t draw = rng_.Next();
      rec.type = (draw >> 63) != 0 ? storage::MutationType::kEdgeDelete
                                   : storage::MutationType::kEdgeInsert;
      rec.key = rng_.Next() % features_->num_nodes();  // src
      rec.arg = rng_.Next() % features_->num_nodes();  // dst
      rec.home_page = draw % features_->num_pages();
    }
    records_.push_back(std::move(rec));
  }
}

const storage::MutationRecord& MutationStream::Record(uint64_t index) {
  GenerateUpTo(index);
  return records_[index];
}

uint64_t MutationStream::SubmitThrough(storage::StorageArray* array,
                                       uint64_t through_iteration) {
  GIDS_CHECK(array != nullptr && array->journal_enabled());
  const uint64_t target = through_iteration * records_per_iter();
  uint64_t submitted = 0;
  while (submitted_ < target) {
    GenerateUpTo(submitted_);
    const uint64_t lsn = array->SubmitMutation(records_[submitted_]);
    GIDS_CHECK(lsn == submitted_ + 1);
    ++submitted_;
    ++submitted;
  }
  return submitted;
}

uint64_t MutationStream::ResubmitMissing(storage::StorageArray* array) {
  GIDS_CHECK(array != nullptr && array->journal_enabled());
  uint64_t count = 0;
  for (uint64_t lsn : array->journal()->MissingLsns(submitted_)) {
    GIDS_CHECK(lsn >= 1 && lsn <= submitted_);
    storage::MutationRecord rec = Record(lsn - 1);
    rec.lsn = lsn;
    const uint64_t assigned = array->SubmitMutation(std::move(rec));
    GIDS_CHECK(assigned == lsn);
    ++count;
  }
  return count;
}

void MutationStream::OnApplied(const storage::MutationRecord& rec) {
  switch (rec.type) {
    case storage::MutationType::kFeatureUpdate:
      ++feature_updates_applied_;
      break;
    case storage::MutationType::kEdgeInsert:
      ++edge_inserts_applied_;
      break;
    case storage::MutationType::kEdgeDelete:
      ++edge_deletes_applied_;
      break;
  }
}

}  // namespace gids::core
