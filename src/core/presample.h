#ifndef GIDS_CORE_PRESAMPLE_H_
#define GIDS_CORE_PRESAMPLE_H_

#include <cstdint>
#include <span>

#include "common/workspace_pool.h"
#include "core/constant_cpu_buffer.h"
#include "graph/dataset.h"
#include "sampling/sampler.h"
#include "storage/cache_policy.h"

namespace gids::core {

/// Summary of one presample pass (RunPresamplePass).
struct PresampleResult {
  uint64_t iterations = 0;     ///< sampler iterations actually run
  uint64_t sampled_nodes = 0;  ///< input-node observations (with repeats)
  uint64_t distinct_nodes = 0; ///< nodes observed at least once
};

/// The FGNN-style presample pass behind CachePolicyKind::kPresample: runs
/// `iterations` bounded iterations of the active sampler over its own
/// shuffled seed stream (a private SeedIterator on `seed`, so the
/// training epoch's seed order is untouched) and accumulates per-node
/// access counts into `counts` (resized to num_nodes; existing counts are
/// kept and added to, which is what live re-ranking wants).
///
/// Sampler iterations use a high iteration-key offset so their RNG
/// streams never collide with training iterations. Requires a
/// concurrent-safe sampler (pure per-iteration streams); returns a
/// zero-iteration result for stateful samplers — callers fall back to the
/// structural hot metric.
///
/// Deterministic: a pure function of (dataset, sampler seed, `seed`,
/// `batch_size`, `iterations`) regardless of host threads.
PresampleResult RunPresamplePass(const graph::Dataset& dataset,
                                 sampling::Sampler& sampler,
                                 uint32_t batch_size, uint64_t seed,
                                 uint32_t iterations,
                                 Workspace<uint64_t>* counts);

/// Seeds `policy` with the ranking its kind needs, as GidsLoader does for
/// the policy it owns: kPageRankHot ingests the structural hot-metric
/// ranking; kPresample runs RunPresamplePass and ingests the frequency
/// table (into `counts` when non-null, so the caller can keep
/// accumulating live counts); other kinds need no seeding. Exposed for
/// shared-policy hosts (RunMultiGpu) that must seed once before handing
/// the policy to many loaders.
void SeedCachePolicy(storage::CachePolicy* policy,
                     const graph::Dataset& dataset,
                     sampling::Sampler& sampler, uint32_t batch_size,
                     HotMetric hot_metric, uint64_t hot_seed,
                     uint64_t presample_seed, uint32_t presample_iterations,
                     Workspace<uint64_t>* counts);

}  // namespace gids::core

#endif  // GIDS_CORE_PRESAMPLE_H_
