file(REMOVE_RECURSE
  "CMakeFiles/gids_cli.dir/gids_cli.cc.o"
  "CMakeFiles/gids_cli.dir/gids_cli.cc.o.d"
  "gids_cli"
  "gids_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gids_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
