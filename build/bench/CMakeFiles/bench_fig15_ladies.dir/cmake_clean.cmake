file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ladies.dir/bench_fig15_ladies.cc.o"
  "CMakeFiles/bench_fig15_ladies.dir/bench_fig15_ladies.cc.o.d"
  "bench_fig15_ladies"
  "bench_fig15_ladies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ladies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
