#ifndef GIDS_STORAGE_SOFTWARE_CACHE_H_
#define GIDS_STORAGE_SOFTWARE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "obs/metric_registry.h"
#include "storage/cache_policy.h"
#include "storage/page_integrity.h"

namespace gids::storage {

/// Per-line state of the BaM application-defined software cache (§3.4).
/// "USE" lines hold feature vectors with a positive future-reuse counter
/// (window buffering) and are skipped by eviction; "Safe to Evict" lines
/// are fair game for the random eviction policy.
enum class LineState : uint8_t {
  kEmpty = 0,
  kSafeToEvict = 1,
  kUse = 2,
};

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t pinned_probe_skips = 0;  // eviction probe landed on a USE line
  uint64_t bypasses = 0;            // no evictable line found; not cached
  uint64_t quarantines = 0;     // lines evicted on checksum mismatch at hit
  uint64_t fill_rejects = 0;    // corrupt payloads refused at insert
  uint64_t scrubbed_lines = 0;  // resident lines scanned by the scrubber
  uint64_t scrub_errors = 0;    // scrubber-found mismatches (quarantined)

  double HitRatio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// BaM's application-defined GPU software cache with a customizable
/// eviction policy — the substrate the GIDS window-buffering technique
/// plugs into.
///
/// The cache is fully associative over fixed-size lines (4 KiB storage
/// pages by default). The default eviction policy is BaM's random
/// eviction: a bounded number of random probes looks for a line in the
/// "Safe to Evict" state; if all probes land on pinned (USE) lines the
/// insertion is bypassed (the paper's cache-line contention case, §3.4).
///
/// Window buffering drives the USE/Safe-to-Evict transitions through
/// AddFutureReuse (look-ahead registration, Fig. 6 steps 3-5) and the
/// consume-on-access decrement inside Lookup (Fig. 6's counter drain).
///
/// Line payloads are stored so gathers served from the cache are
/// byte-checkable against the backing device.
///
/// Concurrency: the cache is lock-striped into power-of-two shards keyed
/// by page id (multiplicative hash of the page number), each shard owning
/// its own lines, index, future-reuse counters, stats, and eviction RNG.
/// Operations on different shards never contend; operations on the same
/// shard serialize under the shard mutex. The cache's observable state
/// (hits, evictions, pins) is therefore a pure function of the *per-shard
/// access sequences*: callers that want results independent of their
/// thread count must present each shard's accesses in a canonical order
/// (see FeatureGatherer's shard-keyed two-phase gather). Small caches
/// (under 512 lines) auto-collapse to a single shard, which reproduces
/// the pre-sharding serial cache bit for bit.
class SoftwareCache {
 public:
  /// `store_payloads` = false builds a metadata-only cache (same hits,
  /// misses, eviction and pinning behaviour, no line payload memory); used
  /// by the counting-mode gather path that drives the large-scale timing
  /// benchmarks. Payload accessors (Lookup/Insert) require payload mode;
  /// Touch/InsertMeta work in both.
  ///
  /// `num_shards` = 0 picks the shard count automatically (power of two,
  /// at least 256 lines per shard, at most 64 shards). Explicit values
  /// are clamped to a power of two no larger than the line capacity.
  ///
  /// `policy` plugs the replacement/admission strategy (CACHING.md). The
  /// cache is a policy *host*: it owns lines, pins, stats, and integrity
  /// state, and delegates only the victim/admission decision plus access
  /// and look-ahead notifications. nullptr installs an internally owned
  /// RandomEvictionPolicy, which reproduces the pre-framework eviction
  /// stream bit for bit. External policies must outlive the cache and may
  /// be shared across caches (multi-GPU shared-policy mode).
  SoftwareCache(uint64_t capacity_bytes, uint32_t line_bytes,
                uint64_t seed = 0xcac4e, bool store_payloads = true,
                uint32_t num_shards = 0, CachePolicy* policy = nullptr);

  /// Installs the integrity verify points (INTEGRITY.md). Each cache line
  /// carries the write-time checksum its payload arrived with (payload
  /// mode) or a corrupt-hint bit (metadata mode). `verify_fill` rejects
  /// corrupt payloads at Insert; `verify_hit` re-verifies resident lines
  /// on every hit and quarantines mismatches (the hit becomes a miss, so
  /// the caller re-reads from storage and re-inserts). `checksummer` must
  /// outlive the cache and is required for payload-mode verification;
  /// lines inserted without a checksum carry no verifiable sum and are
  /// skipped by payload verification (their corrupt-hint bit is still
  /// honored). Call before use (not thread-safe against concurrent
  /// operations).
  void EnableIntegrity(const PageChecksummer* checksummer, bool verify_fill,
                       bool verify_hit);

  /// Result of one ScrubShard sweep.
  struct ScrubResult {
    uint64_t scanned = 0;  // resident lines checked
    uint64_t errors = 0;   // mismatched lines (quarantined)
  };

  /// Background-scrubber entry point: verifies up to `max_lines` resident
  /// lines of shard `shard`, resuming from a persistent per-shard cursor
  /// so successive sweeps cycle the whole shard. Mismatched lines are
  /// quarantined exactly like a verify_hit mismatch (works even when
  /// verify_hit itself is off). Takes the shard lock; safe to run
  /// concurrently with other shards' traffic.
  ScrubResult ScrubShard(uint32_t shard, uint64_t max_lines);

  uint64_t capacity_lines() const { return total_lines_; }
  uint32_t line_bytes() const { return line_bytes_; }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t resident_lines() const;

  /// Shard index that owns `page`. Stable for the cache's lifetime; the
  /// parallel gather uses it to bucket page accesses by owner shard.
  uint32_t ShardFor(uint64_t page) const {
    // Fibonacci hashing: top bits of the multiplied key are well mixed
    // even for sequential page ids.
    return shard_mask_ == 0
               ? 0
               : static_cast<uint32_t>((page * 0x9e3779b97f4a7c15ull) >>
                                       shard_shift_) &
                     shard_mask_;
  }

  /// Merged view of all shard stats. Takes every shard lock; intended for
  /// quiescent points (end of iteration, test assertions), not hot paths.
  const CacheStats& stats() const;
  void ResetStats();

  /// Exposes the cache through `registry` (pull-style: every CacheStats
  /// field plus resident/pinned-line gauges is read — and merged across
  /// shards — at snapshot time, so the hot paths keep driving only the
  /// shard-local structs). `labels` tags the series, e.g.
  /// {{"loader", "GIDS"}}. The registry must outlive the cache's last
  /// snapshot.
  void BindMetrics(obs::MetricRegistry* registry,
                   const obs::Labels& labels) const;

  /// Looks up `page`. On a hit, returns the cached payload and (if the
  /// line has a positive future-reuse counter) consumes one reuse: when
  /// the counter drains to zero the line transitions back to Safe to
  /// Evict. Returns nullptr on miss.
  ///
  /// The returned pointer is only stable until the next insertion into
  /// the owning shard — serial callers only. Concurrent readers must use
  /// LookupInto, which copies under the shard lock.
  const std::byte* Lookup(uint64_t page);

  /// Concurrency-safe Lookup: on a hit, copies the payload into `out`
  /// (size == line_bytes) while holding the shard lock and returns true.
  /// Same stats and reuse-counter semantics as Lookup.
  ///
  /// `reuses` is the number of window-buffer future-reuse registrations
  /// this access stands for: a page-coalesced gather services one access
  /// on behalf of `reuses` registered (node, page) requests and must drain
  /// all of them at once, or lines would stay pinned forever (see
  /// DESIGN.md §10). The default of 1 is the uncoalesced access.
  bool LookupInto(uint64_t page, std::span<std::byte> out,
                  uint32_t reuses = 1);

  /// True if `page` is resident (no stats or reuse-counter side effects).
  bool Contains(uint64_t page) const;

  /// Metadata-mode lookup: identical hit/miss/reuse semantics to Lookup
  /// but returns only whether the page was resident. `reuses` as in
  /// LookupInto (future reuses drained by this access).
  bool Touch(uint64_t page, uint32_t reuses = 1);

  /// Metadata-mode insert: identical placement/eviction semantics to
  /// Insert without a payload. Returns true if resident after the call.
  /// `corrupt_hint` mirrors the functional path's taint tracking: it
  /// marks the (absent) payload as silently corrupt, so counting-mode
  /// verify points make the same reject/quarantine decisions a functional
  /// run's CRC compares would.
  bool InsertMeta(uint64_t page, bool corrupt_hint = false);

  bool store_payloads() const { return store_payloads_; }

  /// Inserts `page` with the given payload (size == line_bytes). If the
  /// shard is full, random probing evicts a Safe-to-Evict victim; after
  /// `max_probes` pinned probes the insertion is bypassed. Inserting a
  /// resident page refreshes its payload.
  /// Returns true if the page is resident after the call.
  ///
  /// `crc` is the payload's write-time checksum (StorageArray's
  /// ReadOutcome), stored on the line for hit-time and scrub
  /// verification; `corrupt_hint` tags a payload known to be silently
  /// corrupt (verification off at the storage level). Callers outside the
  /// integrity configuration can ignore both defaults.
  bool Insert(uint64_t page, std::span<const std::byte> payload,
              std::optional<uint32_t> crc = std::nullopt,
              bool corrupt_hint = false);

  /// Drops `page`'s resident line (if any) without stats side effects:
  /// the journal applier calls this for every storage page it rewrites,
  /// so the next access re-reads the mutated bytes instead of serving the
  /// stale cached copy. The page's future-reuse entry survives (like a
  /// quarantine), so the re-read re-pins the line and window buffering
  /// keeps its look-ahead guarantees. Returns true if a line was dropped.
  bool Invalidate(uint64_t page);

  /// Window buffering: registers `count` future reuses of `page`. Applies
  /// to the resident line immediately, or is remembered and applied if the
  /// page is inserted while reuses remain outstanding. Also forwards
  /// `count` look-ahead entries to the policy (CachePolicy::
  /// IngestFutureAccess), so Belady-style policies see the window.
  void AddFutureReuse(uint64_t page, uint32_t count);

  /// Clears all future-reuse counters (dropping all pins).
  void ClearFutureReuse();

  /// Number of lines currently pinned in the USE state.
  uint64_t pinned_lines() const;

  /// Current future-reuse counter for a page (0 if none).
  uint32_t FutureReuseCount(uint64_t page) const;

  int max_probes() const { return max_probes_; }
  void set_max_probes(int p) { max_probes_ = p; }

  /// The plugged replacement/admission policy (never null).
  CachePolicy* policy() const { return policy_; }

  /// The automatic shard-count policy: double the shard count while every
  /// shard would keep at least 256 lines, clamped to [1, 64].
  static uint32_t AutoShardCount(uint64_t capacity_lines);

 private:
  struct Line {
    uint64_t page = 0;
    LineState state = LineState::kEmpty;
    /// Write-time checksum of the payload (valid when has_crc); hit-time
    /// and scrub verification recompute the payload sum against it.
    uint32_t crc = 0;
    bool has_crc = false;
    /// Counting-mode taint: the payload this line stands for was served
    /// silently corrupt (see InsertMeta).
    bool corrupt_hint = false;
  };

  /// One lock stripe. Each shard is an independent mini-cache over a
  /// contiguous slice of the line budget with its own policy shard state
  /// (e.g. the eviction RNG), so its decisions depend only on the
  /// sequence of operations applied to it — never on sibling shards or on
  /// which thread issued the call.
  struct Shard {
    mutable std::mutex mu;
    std::vector<Line> lines;
    std::vector<std::byte> data;                          // slot payloads
    std::unordered_map<uint64_t, size_t> index;           // page -> slot
    std::unordered_map<uint64_t, uint32_t> future_reuse;  // page -> count
    std::vector<size_t> free_slots;
    CacheStats stats;
    std::unique_ptr<CachePolicy::ShardState> policy_state;
    size_t scrub_cursor = 0;  // next line ScrubShard resumes from
  };

  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  Shard& shard_for(uint64_t page) { return *shards_[ShardFor(page)]; }
  const Shard& shard_for(uint64_t page) const {
    return *shards_[ShardFor(page)];
  }

  /// Decrements `page`'s future-reuse counter (if any) by up to `count`;
  /// unpins the line at `slot` when the counter drains. Pass kNoSlot for
  /// non-resident pages. Caller holds sh.mu.
  static void ConsumeReuseLocked(Shard& sh, uint64_t page, size_t slot,
                                 uint32_t count);
  /// Shared placement logic; returns the slot or kNoSlot on bypass.
  /// Caller holds sh.mu.
  size_t AcquireSlotLocked(Shard& sh, uint64_t page);
  /// Removes the mismatched line at `slot` from the shard: index entry
  /// erased, slot freed, line emptied. The page's future-reuse entry (if
  /// any) survives, so a repairing re-insert re-pins the line and window
  /// buffering keeps its look-ahead guarantees. Caller holds sh.mu.
  void QuarantineLocked(Shard& sh, size_t slot);
  /// True when the resident line at `slot` fails its integrity check
  /// (payload CRC mismatch, or a counting-mode corrupt hint). Caller
  /// holds sh.mu.
  bool LineCorruptLocked(const Shard& sh, size_t slot) const;

  bool store_payloads_;
  uint32_t line_bytes_;
  std::unique_ptr<CachePolicy> owned_policy_;  // set when policy arg is null
  CachePolicy* policy_ = nullptr;              // never null after the ctor
  const PageChecksummer* checksummer_ = nullptr;  // null = no payload verify
  bool verify_fill_ = false;
  bool verify_hit_ = false;
  int max_probes_ = 32;
  uint64_t total_lines_ = 0;
  uint32_t shard_mask_ = 0;   // num_shards - 1
  uint32_t shard_shift_ = 64; // 64 - log2(num_shards)
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable CacheStats merged_stats_;  // scratch for stats()
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_SOFTWARE_CACHE_H_
