#include "graph/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generator.h"

namespace gids::graph {
namespace {

TEST(PageRankTest, ScoresSumToOne) {
  Rng rng(1);
  auto g = GenerateRmat(1024, 8192, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  auto score = WeightedReversePageRank(*g, PageRankOptions{});
  double sum = std::accumulate(score.begin(), score.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, AllScoresPositive) {
  Rng rng(2);
  auto g = GenerateRmat(512, 4096, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  for (double s : WeightedReversePageRank(*g, PageRankOptions{})) {
    EXPECT_GT(s, 0.0);
  }
}

TEST(PageRankTest, EmptyGraphReturnsEmpty) {
  CscGraph g;
  EXPECT_TRUE(WeightedReversePageRank(g, PageRankOptions{}).empty());
}

TEST(PageRankTest, IsolatedNodesGetBaseScore) {
  auto g = CscGraph::FromCoo(4, {}, {});
  ASSERT_TRUE(g.ok());
  auto score = WeightedReversePageRank(*g, PageRankOptions{});
  for (double s : score) EXPECT_NEAR(s, 0.25, 1e-9);
}

TEST(PageRankTest, StarGraphCenterScoresHighest) {
  // Edges center->leaf_i means every leaf has the center as in-neighbor...
  // For *reverse* PR over in-neighbors, build leaves pointing at center:
  // center's in-neighbors are the leaves, so score flows center -> leaves?
  // No: reverse PR distributes v's score to v's in-neighbors. With edges
  // leaf -> center, center's in-neighbors are all leaves; the node whose
  // feature sampling hits most is the one reached from many seeds. Seeds
  // are uniform; expanding any leaf reaches nothing (no in-neighbors),
  // expanding the center reaches every leaf. So leaves split the center's
  // score... the *hot* node under sampling from uniform seeds in a graph
  // where many nodes point to one hub is the hub itself: edges
  // hub -> v for all v means every v has hub as in-neighbor, and reverse
  // PR pushes every node's score onto the hub.
  const NodeId n = 10;
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  for (NodeId v = 1; v < n; ++v) {
    src.push_back(0);  // hub is the in-neighbor of every other node
    dst.push_back(v);
  }
  auto g = CscGraph::FromCoo(n, src, dst);
  ASSERT_TRUE(g.ok());
  auto score = WeightedReversePageRank(*g, PageRankOptions{});
  for (NodeId v = 1; v < n; ++v) EXPECT_GT(score[0], score[v]);
  auto order = RankNodesByScore(score);
  EXPECT_EQ(order[0], 0u);
}

TEST(PageRankTest, ConvergesEarlyWithTightTolerance) {
  Rng rng(3);
  auto g = GenerateRmat(256, 2048, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  PageRankOptions few;
  few.max_iterations = 100;
  few.tolerance = 1e-12;
  PageRankOptions many = few;
  many.max_iterations = 200;
  auto a = WeightedReversePageRank(*g, few);
  auto b = WeightedReversePageRank(*g, many);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(RankNodesTest, SortsDescendingStable) {
  std::vector<double> score = {0.1, 0.5, 0.2, 0.5};
  auto order = RankNodesByScore(score);
  EXPECT_EQ(order[0], 1u);  // ties broken by ascending id
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
}

TEST(RankNodesTest, ByInDegree) {
  std::vector<NodeId> src = {0, 1, 2, 0};
  std::vector<NodeId> dst = {3, 3, 3, 1};
  auto g = CscGraph::FromCoo(4, src, dst);
  ASSERT_TRUE(g.ok());
  auto order = RankNodesByInDegree(*g);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 1u);
}

TEST(PageRankTest, HotNodesCaptureSampledTraffic) {
  // Property behind Fig. 10: on a skewed graph the top-10% nodes by
  // reverse PageRank should cover a disproportionate share of uniform
  // neighbor-sampling accesses.
  Rng rng(4);
  auto g = GenerateRmat(4096, 65536, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  auto score = WeightedReversePageRank(*g, PageRankOptions{});
  auto order = RankNodesByScore(score);
  std::vector<bool> hot(g->num_nodes(), false);
  for (size_t i = 0; i < order.size() / 10; ++i) hot[order[i]] = true;

  // Simulate the access pattern: pick random seeds, sample neighbors.
  uint64_t accesses = 0;
  uint64_t hot_accesses = 0;
  for (int t = 0; t < 20000; ++t) {
    NodeId seed = static_cast<NodeId>(rng.UniformInt(g->num_nodes()));
    auto nbrs = g->in_neighbors(seed);
    if (nbrs.empty()) continue;
    NodeId u = nbrs[rng.UniformInt(nbrs.size())];
    ++accesses;
    if (hot[u]) ++hot_accesses;
  }
  ASSERT_GT(accesses, 0u);
  double hot_share = static_cast<double>(hot_accesses) / accesses;
  EXPECT_GT(hot_share, 0.35);  // >3.5x fair share for top 10%
}

}  // namespace
}  // namespace gids::graph
