#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace gids::sim {

void EventQueue::ScheduleAt(TimeNs when, Callback cb) {
  GIDS_CHECK(when >= now_);
  events_.push(Event{when, next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(TimeNs delay, Callback cb) {
  GIDS_CHECK(delay >= 0);
  ScheduleAt(now_ + delay, std::move(cb));
}

TimeNs EventQueue::RunUntilIdle() {
  while (!events_.empty()) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ev.cb(now_);
  }
  return now_;
}

TimeNs EventQueue::RunUntil(TimeNs deadline) {
  while (!events_.empty() && events_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ev.cb(now_);
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace gids::sim
