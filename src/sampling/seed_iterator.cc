#include "sampling/seed_iterator.h"

#include <algorithm>

#include "common/check.h"

namespace gids::sampling {

SeedIterator::SeedIterator(std::vector<graph::NodeId> train_ids,
                           uint32_t batch_size, uint64_t seed)
    : train_ids_(std::move(train_ids)), batch_size_(batch_size), rng_(seed) {
  GIDS_CHECK(!train_ids_.empty());
  GIDS_CHECK(batch_size_ > 0);
  ShuffleEpoch();
}

void SeedIterator::ShuffleEpoch() { Shuffle(train_ids_, rng_); }

std::vector<graph::NodeId> SeedIterator::NextBatch() {
  std::vector<graph::NodeId> batch;
  batch.reserve(batch_size_);
  NextBatchInto(batch);
  return batch;
}

}  // namespace gids::sampling
