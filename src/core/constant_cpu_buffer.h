#ifndef GIDS_CORE_CONSTANT_CPU_BUFFER_H_
#define GIDS_CORE_CONSTANT_CPU_BUFFER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "graph/csc_graph.h"
#include "graph/feature_store.h"
#include "graph/types.h"
#include "obs/metric_registry.h"
#include "storage/feature_gather.h"
#include "storage/page_integrity.h"

namespace gids::core {

/// How hot nodes are chosen for pinning in the constant CPU buffer (§3.3).
enum class HotMetric {
  kReversePageRank,  // the paper's default (Data Tiering metric)
  kInDegree,         // cheap heuristic, ablation
  kRandom,           // control: shows the ranking matters (Fig. 10)
};

const char* HotMetricName(HotMetric metric);

/// Hottest-first node order under `metric` — the ranking
/// ConstantCpuBuffer::Build pins from, exposed so cache policies can
/// ingest the identical order (CACHING.md). `seed` only matters for
/// HotMetric::kRandom.
std::vector<graph::NodeId> HotMetricRanking(const graph::CscGraph& graph,
                                            HotMetric metric,
                                            uint64_t seed = 0xc0feb0f);

/// The constant CPU buffer (§3.3): a user-sized region of pinned host
/// memory holding the feature vectors of the hottest nodes. Feature
/// gathers check it first; hits cross PCIe from DRAM instead of consuming
/// SSD bandwidth, raising effective aggregation bandwidth toward the PCIe
/// limit when SSDs are the bottleneck.
class ConstantCpuBuffer : public storage::HotNodeBuffer {
 public:
  /// Pins the top-ranked nodes by `metric` until `capacity_bytes` of
  /// feature data is pinned.
  static ConstantCpuBuffer Build(const graph::CscGraph& graph,
                                 const graph::FeatureStore& features,
                                 uint64_t capacity_bytes, HotMetric metric,
                                 uint64_t seed = 0xc0feb0f);

  /// Pins an explicit node set (the paper lets users supply their own
  /// hot-node metric).
  static ConstantCpuBuffer FromNodeSet(
      const graph::FeatureStore& features,
      const std::vector<graph::NodeId>& nodes);

  /// Pins the head of a hottest-first ranking until `capacity_bytes` of
  /// feature data is pinned — the budget arithmetic of Build applied to a
  /// caller-supplied order (a cache policy's HotNodeRanking, a presample
  /// frequency ranking, ...).
  static ConstantCpuBuffer FromRanking(
      const graph::FeatureStore& features,
      const std::vector<graph::NodeId>& hottest_first,
      uint64_t capacity_bytes);

  bool Contains(graph::NodeId node) const override {
    return node < pinned_.size() && pinned_[node];
  }
  void Fill(graph::NodeId node, std::span<float> out) const override;

  uint64_t num_pinned() const { return num_pinned_; }
  uint64_t pinned_bytes() const {
    return num_pinned_ * features_->feature_bytes_per_node();
  }

  /// Result of one ScrubRows sweep.
  struct ScrubResult {
    uint64_t rows = 0;    // pinned rows verified
    uint64_t errors = 0;  // rows whose checksum changed between sweeps
  };

  /// Background-scrubber entry point (INTEGRITY.md): verifies up to
  /// `max_rows` pinned feature rows against their node-tagged checksums,
  /// resuming from a persistent cursor so successive sweeps cycle the
  /// whole pinned set. The first visit of a row establishes its baseline
  /// sum; later visits compare (and re-baseline on mismatch). Thread-safe
  /// against Fill; one scrub runs at a time under an internal mutex.
  ScrubResult ScrubRows(const storage::PageChecksummer& checksummer,
                        uint64_t max_rows);

  /// Journaled-write-path hook (FAULTS.md "Durability & failover"): pins
  /// node's row to feature version `version` (FeatureStore::
  /// ExpectedElementAt). The applier calls this when a feature update of a
  /// pinned node is checkpointed, so CPU-buffer hits serve the mutated row
  /// — without it the buffer would keep serving version 0 forever. Also
  /// invalidates the row's scrub baseline (the content change is a
  /// legitimate update, not corruption). Called only from the
  /// single-flight apply step; safe against concurrent Fill.
  void OverrideRow(graph::NodeId node, uint64_t version);

  /// Current feature version of `node`'s pinned row (0 = never updated).
  uint64_t RowVersion(graph::NodeId node) const;

  /// Exposes the buffer through `registry`: pinned-set gauges plus
  /// redirect counters (nodes served and bytes crossing PCIe from host
  /// DRAM) that Fill drives on every functional hit. Counting-mode runs
  /// never call Fill; their redirect traffic is counted by the loader from
  /// the gather counts instead.
  void BindMetrics(obs::MetricRegistry* registry, const obs::Labels& labels);

 private:
  ConstantCpuBuffer(const graph::FeatureStore* features,
                    std::vector<bool> pinned, uint64_t num_pinned)
      : features_(features),
        pinned_(std::move(pinned)),
        num_pinned_(num_pinned) {}

  const graph::FeatureStore* features_;
  std::vector<bool> pinned_;
  uint64_t num_pinned_;
  obs::Counter* fills_total_ = nullptr;        // registry-owned
  obs::Counter* bytes_served_total_ = nullptr;  // registry-owned
  /// Scrubber state, populated lazily on the first ScrubRows call: the
  /// pinned node ids in ascending order, their baseline checksums, and
  /// the sweep cursor. Heap-allocated (the buffer is move-constructed by
  /// its factories and std::mutex is not movable); guarded by its mutex.
  struct ScrubState {
    std::mutex mu;
    std::vector<graph::NodeId> nodes;
    std::vector<uint32_t> crcs;
    std::vector<bool> crc_known;
    size_t cursor = 0;
  };
  std::unique_ptr<ScrubState> scrub_ = std::make_unique<ScrubState>();
  /// Versioned-row overrides from the journal applier. Reader-heavy
  /// (every Fill consults it); writes happen only inside the single-flight
  /// apply step. Heap-allocated for the same movability reason as
  /// ScrubState.
  struct OverrideState {
    mutable std::shared_mutex mu;
    std::unordered_map<graph::NodeId, uint64_t> versions;
  };
  std::unique_ptr<OverrideState> overrides_ = std::make_unique<OverrideState>();
};

}  // namespace gids::core

#endif  // GIDS_CORE_CONSTANT_CPU_BUFFER_H_
