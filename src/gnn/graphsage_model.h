#ifndef GIDS_GNN_GRAPHSAGE_MODEL_H_
#define GIDS_GNN_GRAPHSAGE_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "gnn/model.h"
#include "gnn/optimizer.h"
#include "gnn/sage_conv.h"
#include "gnn/tensor.h"
#include "graph/feature_store.h"
#include "sampling/minibatch.h"

namespace gids::gnn {

/// Stacked GraphSAGE classifier matching the paper's evaluation model:
/// `num_layers` SAGEConv layers with hidden dimension 128 (Table / §4.1),
/// final layer emitting class logits. The number of layers must match the
/// sampler's layer count (one conv per block).
struct GraphSageConfig {
  size_t in_dim = 0;
  size_t hidden_dim = 128;
  size_t num_classes = 16;
  int num_layers = 3;
};

class GraphSageModel : public Model {
 public:
  GraphSageModel(const GraphSageConfig& config, Rng& rng);

  const GraphSageConfig& config() const { return config_; }

  /// Forward pass: `input_features` has one row per blocks[0].src_nodes.
  /// Returns logits, one row per seed.
  Tensor Forward(const sampling::MiniBatch& batch,
                 const Tensor& input_features) override;

  /// One full training step (forward, loss, backward, optimizer update).
  /// Returns the mini-batch loss.
  double TrainStep(const sampling::MiniBatch& batch,
                   const Tensor& input_features,
                   std::span<const uint32_t> labels,
                   Optimizer& optimizer) override;

  std::vector<Tensor*> Params() override;
  std::vector<Tensor*> Grads() override;
  void ZeroGrad() override;

 private:
  GraphSageConfig config_;
  std::vector<SageConv> layers_;
};

/// Deterministic learnable labels for the synthetic feature distribution:
/// the label of node v is the argmax of its first `num_classes` feature
/// elements, so the classification task is solvable from the inputs and
/// training loss demonstrably decreases.
uint32_t SyntheticLabel(const graph::FeatureStore& features,
                        graph::NodeId node, uint32_t num_classes);

/// Labels for a batch of nodes.
std::vector<uint32_t> SyntheticLabels(const graph::FeatureStore& features,
                                      std::span<const graph::NodeId> nodes,
                                      uint32_t num_classes);

}  // namespace gids::gnn

#endif  // GIDS_GNN_GRAPHSAGE_MODEL_H_
