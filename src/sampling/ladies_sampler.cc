#include "sampling/ladies_sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace gids::sampling {

LadiesSampler::LadiesSampler(const graph::CscGraph* graph,
                             LadiesSamplerOptions options, uint64_t seed)
    : graph_(graph), options_(std::move(options)), seed_(seed) {
  GIDS_CHECK(graph_ != nullptr);
  GIDS_CHECK(!options_.layer_sizes.empty());
  for (uint32_t s : options_.layer_sizes) GIDS_CHECK(s > 0);
}

MiniBatch LadiesSampler::SampleAt(std::span<const graph::NodeId> seeds,
                                  uint64_t iteration) {
  Rng rng = IterationRng(seed_, iteration);
  MiniBatch batch;
  batch.seeds.assign(seeds.begin(), seeds.end());

  std::vector<graph::NodeId> frontier(seeds.begin(), seeds.end());
  std::vector<Block> blocks_seedward;

  for (uint32_t budget : options_.layer_sizes) {
    // Importance weights over the union of in-neighborhoods.
    std::unordered_map<graph::NodeId, double> weight;
    weight.reserve(frontier.size() * 8);
    for (graph::NodeId v : frontier) {
      auto nbrs = graph_->in_neighbors(v);
      if (nbrs.empty()) continue;
      double w = 1.0 / static_cast<double>(nbrs.size());
      double w2 = w * w;
      for (graph::NodeId u : nbrs) weight[u] += w2;
    }

    // Weighted sampling without replacement (Efraimidis-Spirakis keys):
    // keep the `budget` candidates with the smallest -log(U)/w.
    std::vector<std::pair<double, graph::NodeId>> keyed;
    keyed.reserve(weight.size());
    for (const auto& [u, w] : weight) {
      double uniform = rng.UniformDouble();
      if (uniform <= 0.0) uniform = 1e-300;
      keyed.emplace_back(-std::log(uniform) / w, u);
    }
    uint32_t take = std::min<uint32_t>(budget, keyed.size());
    std::partial_sort(keyed.begin(), keyed.begin() + take, keyed.end());

    std::unordered_set<graph::NodeId> sampled;
    sampled.reserve(take * 2);
    for (uint32_t i = 0; i < take; ++i) sampled.insert(keyed[i].second);

    // Build the block: dst = current frontier, srcs = frontier (self) plus
    // sampled nodes with at least one edge into the frontier.
    Block block;
    block.num_dst = static_cast<uint32_t>(frontier.size());
    block.src_nodes = frontier;
    std::unordered_map<graph::NodeId, uint32_t> local;
    local.reserve(frontier.size() + sampled.size());
    for (uint32_t i = 0; i < frontier.size(); ++i) local[frontier[i]] = i;

    for (uint32_t d = 0; d < block.num_dst; ++d) {
      for (graph::NodeId u : graph_->in_neighbors(frontier[d])) {
        if (!sampled.count(u)) continue;
        auto [it, inserted] = local.try_emplace(
            u, static_cast<uint32_t>(block.src_nodes.size()));
        if (inserted) block.src_nodes.push_back(u);
        block.edge_src.push_back(it->second);
        block.edge_dst.push_back(d);
      }
    }

    frontier = options_.include_self
                   ? block.src_nodes
                   : std::vector<graph::NodeId>(
                         block.src_nodes.begin() + block.num_dst,
                         block.src_nodes.end());
    blocks_seedward.push_back(std::move(block));
  }

  batch.blocks.assign(blocks_seedward.rbegin(), blocks_seedward.rend());
  return batch;
}

}  // namespace gids::sampling
