#include "graph/feature_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace gids::graph {
namespace {

TEST(FeatureStoreTest, SizesForIgbLayout) {
  // IGB: dim 1024 float32 = 4 KiB per node = exactly one page.
  FeatureStore fs(1000, 1024);
  EXPECT_EQ(fs.feature_bytes_per_node(), 4096u);
  EXPECT_EQ(fs.total_bytes(), 1000u * 4096u);
  EXPECT_EQ(fs.num_pages(), 1000u);
  EXPECT_DOUBLE_EQ(fs.PagesPerNode(), 1.0);
}

TEST(FeatureStoreTest, SubPageFeatures) {
  // ogbn-papers100M: dim 128 = 512 B, 8 nodes per page.
  FeatureStore fs(16, 128);
  EXPECT_EQ(fs.feature_bytes_per_node(), 512u);
  EXPECT_EQ(fs.num_pages(), 2u);
  auto r0 = fs.PagesFor(0);
  auto r7 = fs.PagesFor(7);
  auto r8 = fs.PagesFor(8);
  EXPECT_EQ(r0.first, 0u);
  EXPECT_EQ(r0.last, 0u);
  EXPECT_EQ(r7.last, 0u);
  EXPECT_EQ(r8.first, 1u);
  EXPECT_DOUBLE_EQ(fs.PagesPerNode(), 1.0);
}

TEST(FeatureStoreTest, PageSpanningFeatures) {
  // MAG240M: dim 768 = 3 KiB; every 4th node straddles a page boundary.
  FeatureStore fs(100, 768);
  EXPECT_EQ(fs.feature_bytes_per_node(), 3072u);
  // Layout period: lcm(3072, 4096) = 12288 bytes = 4 nodes over 3 pages.
  // Nodes at offsets 0, 3072, 6144, 9216: pages {0}, {0,1}, {1,2}, {2}.
  EXPECT_EQ(fs.PagesFor(0).count(), 1u);
  EXPECT_EQ(fs.PagesFor(1).count(), 2u);
  EXPECT_EQ(fs.PagesFor(2).count(), 2u);
  EXPECT_EQ(fs.PagesFor(3).count(), 1u);
  EXPECT_DOUBLE_EQ(fs.PagesPerNode(), 1.5);
}

TEST(FeatureStoreTest, ExpectedElementDeterministicAndBounded) {
  FeatureStore fs(100, 64, 4096, /*content_seed=*/7);
  FeatureStore fs2(100, 64, 4096, /*content_seed=*/7);
  for (NodeId v : {0u, 5u, 99u}) {
    for (uint32_t j : {0u, 1u, 63u}) {
      float a = fs.ExpectedElement(v, j);
      EXPECT_EQ(a, fs2.ExpectedElement(v, j));
      EXPECT_GE(a, -0.5f);
      EXPECT_LT(a, 0.5f);
    }
  }
}

TEST(FeatureStoreTest, DifferentSeedsDifferentContent) {
  FeatureStore a(10, 64, 4096, 1);
  FeatureStore b(10, 64, 4096, 2);
  int same = 0;
  for (uint32_t j = 0; j < 64; ++j) {
    if (a.ExpectedElement(0, j) == b.ExpectedElement(0, j)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(FeatureStoreTest, FillFeatureMatchesExpectedElement) {
  FeatureStore fs(50, 256);
  std::vector<float> buf(256);
  fs.FillFeature(17, buf);
  for (uint32_t j = 0; j < 256; ++j) {
    EXPECT_EQ(buf[j], fs.ExpectedElement(17, j));
  }
}

// The central byte-fidelity property: regenerating storage pages and
// reading features through them must agree with FillFeature exactly, for
// every layout class the paper's datasets use.
class PageConsistencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PageConsistencyTest, PagesReconstructFeatures) {
  const uint32_t dim = GetParam();
  FeatureStore fs(64, dim);
  // Materialize the entire "file" from pages.
  std::vector<std::byte> file(fs.num_pages() * fs.page_bytes());
  std::vector<std::byte> page(fs.page_bytes());
  for (uint64_t p = 0; p < fs.num_pages(); ++p) {
    fs.FillPage(p, page);
    std::memcpy(file.data() + p * fs.page_bytes(), page.data(),
                fs.page_bytes());
  }
  // Every node's feature bytes in the file must equal FillFeature.
  std::vector<float> expected(dim);
  for (NodeId v = 0; v < fs.num_nodes(); ++v) {
    fs.FillFeature(v, expected);
    const float* from_file =
        reinterpret_cast<const float*>(file.data() + fs.ByteOffset(v));
    for (uint32_t j = 0; j < dim; ++j) {
      ASSERT_EQ(from_file[j], expected[j]) << "node " << v << " elem " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperDims, PageConsistencyTest,
                         ::testing::Values(128,    // ogbn-papers100M
                                           768,    // MAG240M
                                           1024,   // IGB
                                           100,    // not float-page aligned
                                           1500,   // spans >1 page
                                           3));    // tiny

TEST(FeatureStoreTest, TailPageZeroFilled) {
  // 3 nodes x 512 B = 1536 B: one page, rest must be zero.
  FeatureStore fs(3, 128);
  ASSERT_EQ(fs.num_pages(), 1u);
  std::vector<std::byte> page(fs.page_bytes());
  fs.FillPage(0, page);
  for (uint64_t b = 3 * 512; b < fs.page_bytes(); ++b) {
    EXPECT_EQ(page[b], std::byte{0});
  }
}

TEST(FeatureStoreTest, PageBeyondFileIsZero) {
  FeatureStore fs(1, 128);
  std::vector<std::byte> page(fs.page_bytes());
  // num_pages()==1; page 5 is past the end of the file.
  fs.FillPage(5, page);
  for (std::byte b : page) EXPECT_EQ(b, std::byte{0});
}

}  // namespace
}  // namespace gids::graph
