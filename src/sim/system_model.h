#ifndef GIDS_SIM_SYSTEM_MODEL_H_
#define GIDS_SIM_SYSTEM_MODEL_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "sim/cpu_model.h"
#include "sim/gpu_model.h"
#include "sim/link_models.h"
#include "sim/ssd_model.h"

namespace gids::sim {

/// Full-system configuration mirroring the paper's Table 1 testbed: one
/// A100-40GB, an EPYC host with (lockable) DDR4, PCIe Gen4, and one or more
/// NVMe SSDs.
///
/// `memory_scale` supports the dataset-proxy scaling rule from DESIGN.md:
/// when experiments run on a 1/S-scale proxy of a terabyte dataset, CPU and
/// GPU memory capacities are scaled by the same 1/S so the
/// fits-in-memory / exceeds-memory boundary is preserved.
struct SystemConfig {
  CpuSpec cpu = CpuSpec::EpycServer();
  GpuSpec gpu = GpuSpec::A100_40GB();
  SsdSpec ssd = SsdSpec::IntelOptane();
  int n_ssd = 1;

  /// Unscaled capacities (the paper locks 1 TB down to 512 GB for the
  /// large-graph evaluations and uses an 8 GB GPU software cache).
  uint64_t cpu_memory_bytes = 512ull * 1024 * 1024 * 1024;
  uint64_t gpu_cache_bytes = 8ull * 1024 * 1024 * 1024;

  double memory_scale = 1.0;

  /// Fraction of SSD enqueue capability lost per unit of CPU-buffer
  /// redirect share (§4.3: GPU threads copying from the CPU buffer cannot
  /// simultaneously enqueue storage accesses).
  double redirect_interference = 0.15;

  /// Use the event-driven SSD simulation (heap-based multi-channel model
  /// with latency jitter) inside the aggregation timing model instead of
  /// the closed-form estimate. Slower but captures queueing texture;
  /// results agree with the estimate within a few percent (see
  /// AggregationModelTest.EventDrivenAgreesWithEstimate).
  bool event_driven_ssd = false;

  uint64_t scaled_cpu_memory_bytes() const {
    return static_cast<uint64_t>(static_cast<double>(cpu_memory_bytes) *
                                 memory_scale);
  }
  uint64_t scaled_gpu_cache_bytes() const {
    return static_cast<uint64_t>(static_cast<double>(gpu_cache_bytes) *
                                 memory_scale);
  }

  /// Table 1 defaults with the given SSD model.
  static SystemConfig Paper(SsdSpec ssd_spec, int n_ssd = 1);
};

/// Bundles the device models for one experiment run.
class SystemModel {
 public:
  explicit SystemModel(SystemConfig config);

  const SystemConfig& config() const { return config_; }
  const CpuModel& cpu() const { return cpu_; }
  const GpuModel& gpu() const { return gpu_; }
  const LinkModel& pcie() const { return pcie_; }
  const LinkModel& dram() const { return dram_; }
  const LinkModel& hbm() const { return hbm_; }
  LinkModel& mutable_pcie() { return pcie_; }

  /// Aggregate peak read bandwidth of the SSD array, bytes/sec.
  double ssd_array_peak_bps() const {
    return config_.ssd.peak_read_bandwidth_bps() *
           static_cast<double>(config_.n_ssd);
  }

 private:
  SystemConfig config_;
  CpuModel cpu_;
  GpuModel gpu_;
  LinkModel pcie_;
  LinkModel dram_;
  LinkModel hbm_;
};

}  // namespace gids::sim

#endif  // GIDS_SIM_SYSTEM_MODEL_H_
