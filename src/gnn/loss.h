#ifndef GIDS_GNN_LOSS_H_
#define GIDS_GNN_LOSS_H_

#include <cstdint>
#include <span>

#include "gnn/tensor.h"

namespace gids::gnn {

/// Mean softmax cross-entropy over a batch of logits. Returns the loss and
/// writes d(loss)/d(logits) into `d_logits` (same shape as logits).
double SoftmaxCrossEntropy(const Tensor& logits,
                           std::span<const uint32_t> labels,
                           Tensor* d_logits);

/// Fraction of rows whose argmax matches the label.
double Accuracy(const Tensor& logits, std::span<const uint32_t> labels);

}  // namespace gids::gnn

#endif  // GIDS_GNN_LOSS_H_
