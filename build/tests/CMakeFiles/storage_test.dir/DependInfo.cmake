
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/block_device_test.cc" "tests/CMakeFiles/storage_test.dir/storage/block_device_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/block_device_test.cc.o.d"
  "/root/repo/tests/storage/cache_fuzz_test.cc" "tests/CMakeFiles/storage_test.dir/storage/cache_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/cache_fuzz_test.cc.o.d"
  "/root/repo/tests/storage/failure_injection_test.cc" "tests/CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o.d"
  "/root/repo/tests/storage/feature_gather_test.cc" "tests/CMakeFiles/storage_test.dir/storage/feature_gather_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/feature_gather_test.cc.o.d"
  "/root/repo/tests/storage/io_queue_test.cc" "tests/CMakeFiles/storage_test.dir/storage/io_queue_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/io_queue_test.cc.o.d"
  "/root/repo/tests/storage/queue_manager_test.cc" "tests/CMakeFiles/storage_test.dir/storage/queue_manager_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/queue_manager_test.cc.o.d"
  "/root/repo/tests/storage/software_cache_test.cc" "tests/CMakeFiles/storage_test.dir/storage/software_cache_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/software_cache_test.cc.o.d"
  "/root/repo/tests/storage/storage_array_test.cc" "tests/CMakeFiles/storage_test.dir/storage/storage_array_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/storage_array_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gids_core.dir/DependInfo.cmake"
  "/root/repo/build/src/loaders/CMakeFiles/gids_loaders.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gids_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gids_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/gids_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gids_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
