
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loaders/belady_cache.cc" "src/loaders/CMakeFiles/gids_loaders.dir/belady_cache.cc.o" "gcc" "src/loaders/CMakeFiles/gids_loaders.dir/belady_cache.cc.o.d"
  "/root/repo/src/loaders/ginex_loader.cc" "src/loaders/CMakeFiles/gids_loaders.dir/ginex_loader.cc.o" "gcc" "src/loaders/CMakeFiles/gids_loaders.dir/ginex_loader.cc.o.d"
  "/root/repo/src/loaders/mmap_loader.cc" "src/loaders/CMakeFiles/gids_loaders.dir/mmap_loader.cc.o" "gcc" "src/loaders/CMakeFiles/gids_loaders.dir/mmap_loader.cc.o.d"
  "/root/repo/src/loaders/os_page_cache.cc" "src/loaders/CMakeFiles/gids_loaders.dir/os_page_cache.cc.o" "gcc" "src/loaders/CMakeFiles/gids_loaders.dir/os_page_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gids_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/gids_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gids_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
