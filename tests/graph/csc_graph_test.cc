#include "graph/csc_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace gids::graph {
namespace {

CscGraph Triangle() {
  // Edges: 0->1, 1->2, 2->0, 0->2.
  std::vector<NodeId> src = {0, 1, 2, 0};
  std::vector<NodeId> dst = {1, 2, 0, 2};
  auto g = CscGraph::FromCoo(3, src, dst);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(CscGraphTest, FromCooBasicShape) {
  CscGraph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.in_degree(2), 2u);
}

TEST(CscGraphTest, InNeighborsHoldSources) {
  CscGraph g = Triangle();
  auto n2 = g.in_neighbors(2);
  std::vector<NodeId> v(n2.begin(), n2.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(g.in_neighbors(1)[0], 0u);
}

TEST(CscGraphTest, FromCscValidates) {
  EXPECT_FALSE(CscGraph::FromCsc({}, {}).ok());
  EXPECT_FALSE(CscGraph::FromCsc({1, 2}, {0, 0}).ok());   // must start at 0
  EXPECT_FALSE(CscGraph::FromCsc({0, 1}, {0, 0}).ok());   // wrong end
  EXPECT_FALSE(CscGraph::FromCsc({0, 2, 1}, {0, 0}).ok());  // decreasing
  EXPECT_FALSE(CscGraph::FromCsc({0, 1}, {7}).ok());      // node out of range
  EXPECT_TRUE(CscGraph::FromCsc({0, 1, 2}, {1, 0}).ok());
}

TEST(CscGraphTest, FromCooValidatesEndpoints) {
  std::vector<NodeId> src = {0, 5};
  std::vector<NodeId> dst = {1, 1};
  EXPECT_FALSE(CscGraph::FromCoo(3, src, dst).ok());
  std::vector<NodeId> src2 = {0};
  std::vector<NodeId> dst2 = {0, 1};
  EXPECT_FALSE(CscGraph::FromCoo(3, src2, dst2).ok());
}

TEST(CscGraphTest, EmptyGraph) {
  auto g = CscGraph::FromCoo(5, {}, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 5u);
  EXPECT_EQ(g->num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g->in_degree(v), 0u);
}

TEST(CscGraphTest, MultiEdgesPreserved) {
  std::vector<NodeId> src = {0, 0, 0};
  std::vector<NodeId> dst = {1, 1, 1};
  auto g = CscGraph::FromCoo(2, src, dst);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->in_degree(1), 3u);
}

TEST(CscGraphTest, OutDegrees) {
  CscGraph g = Triangle();
  std::vector<EdgeIdx> out = g.OutDegrees();
  EXPECT_EQ(out, (std::vector<EdgeIdx>{2, 1, 1}));
}

TEST(CscGraphTest, MaxInDegree) {
  CscGraph g = Triangle();
  EXPECT_EQ(g.MaxInDegree(), 2u);
}

TEST(CscGraphTest, StructureBytesAccounting) {
  CscGraph g = Triangle();
  EXPECT_EQ(g.structure_bytes(),
            4 * sizeof(EdgeIdx) + 4 * sizeof(NodeId));
}

TEST(CscGraphTest, CooCscRoundTrip) {
  // FromCoo output must satisfy FromCsc's invariants.
  std::vector<NodeId> src = {3, 1, 2, 0, 3, 2};
  std::vector<NodeId> dst = {0, 0, 1, 2, 2, 3};
  auto g = CscGraph::FromCoo(4, src, dst);
  ASSERT_TRUE(g.ok());
  auto round = CscGraph::FromCsc(g->indptr(), g->indices());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->num_edges(), 6u);
  // Edge multiset preserved.
  uint64_t total_in = 0;
  for (NodeId v = 0; v < 4; ++v) total_in += g->in_degree(v);
  EXPECT_EQ(total_in, 6u);
}

}  // namespace
}  // namespace gids::graph
