#include "loaders/os_page_cache.h"

namespace gids::loaders {

OsPageCache::OsPageCache(uint64_t capacity_pages) : capacity_(capacity_pages) {
  GIDS_CHECK(capacity_ > 0);
}

bool OsPageCache::Access(uint64_t page) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++faults_;
  if (map_.size() >= capacity_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  return false;
}

}  // namespace gids::loaders
