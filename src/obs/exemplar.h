#ifndef GIDS_OBS_EXEMPLAR_H_
#define GIDS_OBS_EXEMPLAR_H_

#include <cstddef>
#include <vector>

#include "obs/ledger.h"

namespace gids::obs {

/// Bounded reservoir of the slowest iterations seen so far, each retained
/// with its full IterationSample (iteration id + ledger snapshot) so the
/// tail of `gids_loader_e2e_ns` is directly inspectable: "*why* was
/// iteration 4183 at p99.9" is answered by its ledger's dominant
/// component, not guessed from aggregates (OBSERVABILITY.md "Exemplars").
///
/// Offer() is O(log k) against the top-K heap; ties on e2e_ns keep the
/// earlier iteration (first-seen wins), so the retained set is a pure
/// function of the sample stream — deterministic at any host_threads.
///
/// Not thread-safe: owned by one loader's observer, like TimeSeries.
class ExemplarReservoir {
 public:
  /// Retention order. kSlowest keeps the highest-e2e iterations (the
  /// default tail-latency reservoir); kMostFailovers keeps the iterations
  /// that served the most reads from a non-primary replica (FAULTS.md
  /// "Durability & failover"), so the failover report names concrete
  /// iterations, devices, and replicas.
  enum class RankBy { kSlowest, kMostFailovers };

  explicit ExemplarReservoir(size_t capacity,
                             RankBy rank_by = RankBy::kSlowest);

  /// Considers one completed iteration for retention.
  void Offer(const IterationSample& sample);

  size_t capacity() const { return capacity_; }
  size_t size() const { return heap_.size(); }
  uint64_t offered() const { return offered_; }

  /// The retained iterations, slowest first (ties: earlier iteration
  /// first).
  std::vector<IterationSample> Snapshot() const;

  /// [{"iteration":..,"end_ns":..,"e2e_ns":..,"dominant":"storage",
  ///   "ledger":{...}}, ...] slowest first.
  std::string ToJson() const;

 private:
  /// True when `a` outranks `b` under rank_by_ (stronger on the ranking
  /// key, or equal but earlier iteration).
  bool Outranks(const IterationSample& a, const IterationSample& b) const;

  size_t capacity_;
  RankBy rank_by_;
  uint64_t offered_ = 0;
  /// Min-heap on (e2e_ns, -iteration): heap_[0] is the weakest retained
  /// sample, the one the next faster-than-it offer evicts.
  std::vector<IterationSample> heap_;
};

}  // namespace gids::obs

#endif  // GIDS_OBS_EXEMPLAR_H_
