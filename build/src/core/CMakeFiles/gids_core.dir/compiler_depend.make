# Empty compiler generated dependencies file for gids_core.
# This may be replaced when dependencies are built.
