#include "core/constant_cpu_buffer.h"

#include <algorithm>

#include "common/check.h"
#include "graph/pagerank.h"

namespace gids::core {

const char* HotMetricName(HotMetric metric) {
  switch (metric) {
    case HotMetric::kReversePageRank:
      return "reverse-pagerank";
    case HotMetric::kInDegree:
      return "in-degree";
    case HotMetric::kRandom:
      return "random";
  }
  return "unknown";
}

std::vector<graph::NodeId> HotMetricRanking(const graph::CscGraph& graph,
                                            HotMetric metric, uint64_t seed) {
  std::vector<graph::NodeId> order;
  switch (metric) {
    case HotMetric::kReversePageRank: {
      std::vector<double> score =
          graph::WeightedReversePageRank(graph, graph::PageRankOptions{});
      order = graph::RankNodesByScore(score);
      break;
    }
    case HotMetric::kInDegree:
      order = graph::RankNodesByInDegree(graph);
      break;
    case HotMetric::kRandom: {
      order.resize(graph.num_nodes());
      for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) order[v] = v;
      Rng rng(seed);
      Shuffle(order, rng);
      break;
    }
  }
  return order;
}

ConstantCpuBuffer ConstantCpuBuffer::Build(const graph::CscGraph& graph,
                                           const graph::FeatureStore& features,
                                           uint64_t capacity_bytes,
                                           HotMetric metric, uint64_t seed) {
  GIDS_CHECK(graph.num_nodes() == features.num_nodes());
  return FromRanking(features, HotMetricRanking(graph, metric, seed),
                     capacity_bytes);
}

ConstantCpuBuffer ConstantCpuBuffer::FromRanking(
    const graph::FeatureStore& features,
    const std::vector<graph::NodeId>& hottest_first, uint64_t capacity_bytes) {
  uint64_t per_node = features.feature_bytes_per_node();
  uint64_t budget_nodes = per_node == 0 ? 0 : capacity_bytes / per_node;
  budget_nodes = std::min<uint64_t>(budget_nodes, hottest_first.size());

  std::vector<bool> pinned(features.num_nodes(), false);
  for (uint64_t i = 0; i < budget_nodes; ++i) pinned[hottest_first[i]] = true;
  return ConstantCpuBuffer(&features, std::move(pinned), budget_nodes);
}

ConstantCpuBuffer ConstantCpuBuffer::FromNodeSet(
    const graph::FeatureStore& features,
    const std::vector<graph::NodeId>& nodes) {
  std::vector<bool> pinned(features.num_nodes(), false);
  uint64_t count = 0;
  for (graph::NodeId v : nodes) {
    GIDS_CHECK(v < features.num_nodes());
    if (!pinned[v]) {
      pinned[v] = true;
      ++count;
    }
  }
  return ConstantCpuBuffer(&features, std::move(pinned), count);
}

ConstantCpuBuffer::ScrubResult ConstantCpuBuffer::ScrubRows(
    const storage::PageChecksummer& checksummer, uint64_t max_rows) {
  ScrubResult r;
  if (num_pinned_ == 0 || max_rows == 0) return r;
  std::lock_guard<std::mutex> lock(scrub_->mu);
  if (scrub_->nodes.empty()) {
    scrub_->nodes.reserve(num_pinned_);
    for (graph::NodeId v = 0; v < pinned_.size(); ++v) {
      if (pinned_[v]) scrub_->nodes.push_back(v);
    }
    scrub_->crcs.assign(scrub_->nodes.size(), 0);
    scrub_->crc_known.assign(scrub_->nodes.size(), false);
  }
  std::vector<float> row(features_->feature_dim());
  const size_t n = scrub_->nodes.size();
  // At most one full cycle per call; the cursor persists across calls.
  for (size_t step = 0; step < n && r.rows < max_rows; ++step) {
    size_t idx = scrub_->cursor;
    scrub_->cursor = (scrub_->cursor + 1) % n;
    graph::NodeId node = scrub_->nodes[idx];
    features_->FillFeatureAt(node, RowVersion(node), std::span<float>(row));
    uint32_t crc = checksummer.Checksum(node, row.data(),
                                        row.size() * sizeof(float));
    if (!scrub_->crc_known[idx]) {
      scrub_->crcs[idx] = crc;
      scrub_->crc_known[idx] = true;
    } else if (scrub_->crcs[idx] != crc) {
      ++r.errors;
      scrub_->crcs[idx] = crc;  // re-baseline the repaired row
    }
    ++r.rows;
  }
  return r;
}

void ConstantCpuBuffer::Fill(graph::NodeId node, std::span<float> out) const {
  GIDS_CHECK(Contains(node));
  features_->FillFeatureAt(node, RowVersion(node), out);
  if (fills_total_ != nullptr) {
    fills_total_->Inc();
    bytes_served_total_->Inc(features_->feature_bytes_per_node());
  }
}

uint64_t ConstantCpuBuffer::RowVersion(graph::NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(overrides_->mu);
  if (overrides_->versions.empty()) return 0;
  auto it = overrides_->versions.find(node);
  return it == overrides_->versions.end() ? 0 : it->second;
}

void ConstantCpuBuffer::OverrideRow(graph::NodeId node, uint64_t version) {
  GIDS_CHECK(node < pinned_.size());
  {
    std::unique_lock<std::shared_mutex> lock(overrides_->mu);
    overrides_->versions[node] = version;
  }
  // The row's bytes legitimately changed: drop its scrub baseline so the
  // next sweep re-baselines instead of flagging the update as corruption.
  std::lock_guard<std::mutex> lock(scrub_->mu);
  if (!scrub_->nodes.empty()) {
    auto it = std::lower_bound(scrub_->nodes.begin(), scrub_->nodes.end(),
                               node);
    if (it != scrub_->nodes.end() && *it == node) {
      scrub_->crc_known[static_cast<size_t>(it - scrub_->nodes.begin())] =
          false;
    }
  }
}

void ConstantCpuBuffer::BindMetrics(obs::MetricRegistry* registry,
                                    const obs::Labels& labels) {
  GIDS_CHECK(registry != nullptr);
  using obs::MetricType;
  registry->RegisterCallback(
      "gids_cpu_buffer_pinned_nodes", labels, MetricType::kGauge,
      [this] { return static_cast<double>(num_pinned()); });
  registry->RegisterCallback(
      "gids_cpu_buffer_pinned_bytes", labels, MetricType::kGauge,
      [this] { return static_cast<double>(pinned_bytes()); });
  fills_total_ = registry->GetCounter("gids_cpu_buffer_fills_total", labels);
  bytes_served_total_ =
      registry->GetCounter("gids_cpu_buffer_bytes_served_total", labels);
}

}  // namespace gids::core
