// Reproduces Figure 5: GNN training-time breakdown (sampling, feature
// aggregation, data transfer, training) for the baseline DGL dataloader
// with memory-mapped feature files, across the four real-world datasets.
//
// Paper anchor: for the graphs that exceed CPU memory (IGB-Full,
// IGBH-Full) the data-preparation stages dominate so thoroughly that the
// training stage is "barely visible"; for ogbn-papers100M and MAG240M
// (which fit in CPU memory) the breakdown is far less skewed.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

void BM_MmapBreakdown(benchmark::State& state, graph::DatasetSpec spec,
                      double paper_min_prep_share) {
  ProxyConfig cfg;
  cfg.spec = spec;
  Rig rig = BuildRig(cfg);
  auto loader = MakeLoader(LoaderKind::kMmap, rig);

  core::TrainRunResult result;
  for (auto _ : state) {
    result = RunProtocol(rig, *loader, /*warmup=*/250, /*measure=*/20);
  }
  const loaders::IterationStats& m = result.measured;
  double total = static_cast<double>(m.sampling_ns + m.aggregation_ns +
                                     m.transfer_ns + m.training_ns);
  double sampling = m.sampling_ns / total;
  double aggregation = m.aggregation_ns / total;
  double transfer = m.transfer_ns / total;
  double training = m.training_ns / total;

  state.counters["sampling_share"] = sampling;
  state.counters["aggregation_share"] = aggregation;
  state.counters["transfer_share"] = transfer;
  state.counters["training_share"] = training;
  state.counters["iter_ms"] = result.mean_iteration_ms();

  ReportRow("FIG05", spec.name + " sampling share", sampling, 0, "fraction");
  ReportRow("FIG05", spec.name + " aggregation share", aggregation, 0,
            "fraction");
  ReportRow("FIG05", spec.name + " transfer share", transfer, 0, "fraction");
  ReportRow("FIG05", spec.name + " training share", training, 0, "fraction");
  ReportRow("FIG05", spec.name + " data-prep share", sampling + aggregation,
            paper_min_prep_share, "fraction (paper value is a lower bound)");
}

BENCHMARK_CAPTURE(BM_MmapBreakdown, ogbn_papers100M,
                  graph::DatasetSpec::OgbnPapers100M(), 0.5)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MmapBreakdown, igb_full, graph::DatasetSpec::IgbFull(),
                  0.9)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MmapBreakdown, mag240m, graph::DatasetSpec::Mag240M(),
                  0.5)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MmapBreakdown, igbh_full,
                  graph::DatasetSpec::IgbhFull(), 0.9)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
