#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace gids {

ThreadPool::ThreadPool(size_t num_threads) {
  GIDS_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  auto state = std::make_shared<ForState>();
  size_t target_chunks =
      std::max<size_t>(1, workers_.size() * kChunksPerWorker);
  state->chunk_size =
      (n + std::min(n, target_chunks) - 1) / std::min(n, target_chunks);
  state->num_chunks = (n + state->chunk_size - 1) / state->chunk_size;
  state->n = n;
  state->fn = &fn;

  // Helpers hold a shared_ptr so a straggler that wakes up after the
  // caller has returned still finds valid (if exhausted) state. They never
  // touch `fn` once every chunk is claimed, so the reference stays safe.
  size_t helpers = std::min(workers_.size(), state->num_chunks - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([this, state] { RunChunks(state); });
  }
  RunChunks(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] {
    return state->chunks_done.load(std::memory_order_acquire) >=
           state->num_chunks;
  });
  if (state->error != nullptr) {
    std::exception_ptr error = state->error;
    state->error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::RunChunks(const std::shared_ptr<ForState>& state) {
  for (;;) {
    size_t c = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->num_chunks) return;
    size_t begin = c * state->chunk_size;
    size_t end = std::min(state->n, begin + state->chunk_size);
    try {
      (*state->fn)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->error == nullptr) state->error = std::current_exception();
    }
    chunks_executed_.fetch_add(1, std::memory_order_relaxed);
    if (state->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->num_chunks) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    }
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gids
