#include "storage/software_cache.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace gids::storage {

uint32_t SoftwareCache::AutoShardCount(uint64_t capacity_lines) {
  uint32_t shards = 1;
  while (shards < 64 && capacity_lines / (shards * 2) >= 256) shards *= 2;
  return shards;
}

namespace {

uint32_t Log2Pow2(uint32_t v) {
  uint32_t log = 0;
  while ((1u << log) < v) ++log;
  return log;
}

}  // namespace

SoftwareCache::SoftwareCache(uint64_t capacity_bytes, uint32_t line_bytes,
                             uint64_t seed, bool store_payloads,
                             uint32_t num_shards, CachePolicy* policy)
    : store_payloads_(store_payloads), line_bytes_(line_bytes) {
  GIDS_CHECK(line_bytes > 0);
  if (policy == nullptr) {
    owned_policy_ = std::make_unique<RandomEvictionPolicy>();
    policy_ = owned_policy_.get();
  } else {
    policy_ = policy;
  }
  total_lines_ = capacity_bytes / line_bytes;
  GIDS_CHECK(total_lines_ > 0);

  uint32_t shards = num_shards == 0 ? AutoShardCount(total_lines_)
                                    : num_shards;
  // Round down to a power of two no larger than the line budget so every
  // shard holds at least one line and ShardFor stays a mask.
  while ((shards & (shards - 1)) != 0) shards &= shards - 1;
  while (shards > total_lines_) shards /= 2;
  shards = std::max<uint32_t>(1, shards);
  shard_mask_ = shards - 1;
  shard_shift_ = 64 - Log2Pow2(shards);

  shards_.reserve(shards);
  for (uint32_t k = 0; k < shards; ++k) {
    // Even line split; the first (total % shards) shards take the
    // remainder. Shard 0 keeps the raw seed so a single-shard cache
    // reproduces the pre-sharding eviction sequence exactly.
    uint64_t shard_lines =
        total_lines_ / shards + (k < total_lines_ % shards ? 1 : 0);
    auto sh = std::make_unique<Shard>();
    sh->lines.resize(shard_lines);
    if (store_payloads_) sh->data.resize(shard_lines * line_bytes_);
    sh->index.reserve(shard_lines * 2);
    sh->free_slots.reserve(shard_lines);
    for (size_t s = shard_lines; s-- > 0;) sh->free_slots.push_back(s);
    sh->policy_state = policy_->MakeShardState(
        k, seed + 0x9e3779b97f4a7c15ull * k, shard_lines);
    shards_.push_back(std::move(sh));
  }
}

void SoftwareCache::EnableIntegrity(const PageChecksummer* checksummer,
                                    bool verify_fill, bool verify_hit) {
  checksummer_ = checksummer;
  verify_fill_ = verify_fill;
  verify_hit_ = verify_hit;
}

bool SoftwareCache::LineCorruptLocked(const Shard& sh, size_t slot) const {
  const Line& line = sh.lines[slot];
  if (line.corrupt_hint) return true;
  if (store_payloads_ && line.has_crc && checksummer_ != nullptr) {
    const std::byte* data = sh.data.data() + slot * line_bytes_;
    return checksummer_->Checksum(line.page, data, line_bytes_) != line.crc;
  }
  return false;
}

void SoftwareCache::QuarantineLocked(Shard& sh, size_t slot) {
  Line& line = sh.lines[slot];
  sh.index.erase(line.page);
  sh.free_slots.push_back(slot);
  // The page's future_reuse entry is deliberately kept: the quarantined
  // access path re-reads from storage and re-inserts, and the re-insert
  // must re-pin the line or window buffering would lose its look-ahead.
  line = Line{};
}

bool SoftwareCache::Invalidate(uint64_t page) {
  Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.index.find(page);
  if (it == sh.index.end()) return false;
  QuarantineLocked(sh, it->second);
  return true;
}

const std::byte* SoftwareCache::Lookup(uint64_t page) {
  GIDS_CHECK(store_payloads_);
  Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  ++sh.stats.lookups;
  auto it = sh.index.find(page);
  if (it == sh.index.end()) {
    ++sh.stats.misses;
    // A missing access still consumes one registered future reuse: the
    // window counted this very access when the mini-batch entered the
    // look-ahead window. Without this, miss-path counters never drain and
    // lines pin forever.
    ConsumeReuseLocked(sh, page, kNoSlot, 1);
    policy_->OnAccess(page, 1, false);
    return nullptr;
  }
  if (verify_hit_ && LineCorruptLocked(sh, it->second)) {
    // Mismatched line: quarantine it and serve the access as a miss; the
    // caller re-reads from storage (which repairs) and re-inserts.
    ++sh.stats.quarantines;
    QuarantineLocked(sh, it->second);
    ++sh.stats.misses;
    ConsumeReuseLocked(sh, page, kNoSlot, 1);
    policy_->OnAccess(page, 1, false);
    return nullptr;
  }
  ++sh.stats.hits;
  ConsumeReuseLocked(sh, page, it->second, 1);
  policy_->OnAccess(page, 1, true);
  return sh.data.data() + it->second * line_bytes_;
}

bool SoftwareCache::LookupInto(uint64_t page, std::span<std::byte> out,
                               uint32_t reuses) {
  GIDS_CHECK(store_payloads_);
  GIDS_CHECK(out.size() == line_bytes_);
  Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  ++sh.stats.lookups;
  auto it = sh.index.find(page);
  if (it == sh.index.end()) {
    ++sh.stats.misses;
    ConsumeReuseLocked(sh, page, kNoSlot, reuses);
    policy_->OnAccess(page, reuses, false);
    return false;
  }
  if (verify_hit_ && LineCorruptLocked(sh, it->second)) {
    ++sh.stats.quarantines;
    QuarantineLocked(sh, it->second);
    ++sh.stats.misses;
    ConsumeReuseLocked(sh, page, kNoSlot, reuses);
    policy_->OnAccess(page, reuses, false);
    return false;
  }
  ++sh.stats.hits;
  ConsumeReuseLocked(sh, page, it->second, reuses);
  policy_->OnAccess(page, reuses, true);
  std::memcpy(out.data(), sh.data.data() + it->second * line_bytes_,
              line_bytes_);
  return true;
}

bool SoftwareCache::Touch(uint64_t page, uint32_t reuses) {
  Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  ++sh.stats.lookups;
  auto it = sh.index.find(page);
  if (it == sh.index.end()) {
    ++sh.stats.misses;
    ConsumeReuseLocked(sh, page, kNoSlot, reuses);
    policy_->OnAccess(page, reuses, false);
    return false;
  }
  if (verify_hit_ && LineCorruptLocked(sh, it->second)) {
    ++sh.stats.quarantines;
    QuarantineLocked(sh, it->second);
    ++sh.stats.misses;
    ConsumeReuseLocked(sh, page, kNoSlot, reuses);
    policy_->OnAccess(page, reuses, false);
    return false;
  }
  ++sh.stats.hits;
  ConsumeReuseLocked(sh, page, it->second, reuses);
  policy_->OnAccess(page, reuses, true);
  return true;
}

SoftwareCache::ScrubResult SoftwareCache::ScrubShard(uint32_t shard,
                                                     uint64_t max_lines) {
  ScrubResult r;
  if (shard >= shards_.size() || max_lines == 0) return r;
  Shard& sh = *shards_[shard];
  std::lock_guard<std::mutex> lock(sh.mu);
  const size_t n = sh.lines.size();
  // At most one full cycle per call: the sweep resumes where the last one
  // stopped, so successive quotas cover the whole shard.
  for (size_t step = 0; step < n && r.scanned < max_lines; ++step) {
    size_t slot = sh.scrub_cursor;
    sh.scrub_cursor = (sh.scrub_cursor + 1) % n;
    if (sh.lines[slot].state == LineState::kEmpty) continue;
    ++r.scanned;
    if (LineCorruptLocked(sh, slot)) {
      ++r.errors;
      QuarantineLocked(sh, slot);
    }
  }
  sh.stats.scrubbed_lines += r.scanned;
  sh.stats.scrub_errors += r.errors;
  return r;
}

bool SoftwareCache::Contains(uint64_t page) const {
  const Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  return sh.index.count(page) > 0;
}

void SoftwareCache::ConsumeReuseLocked(Shard& sh, uint64_t page, size_t slot,
                                       uint32_t count) {
  auto reuse = sh.future_reuse.find(page);
  if (reuse == sh.future_reuse.end()) return;
  reuse->second -= std::min(reuse->second, count);
  if (reuse->second == 0) {
    sh.future_reuse.erase(reuse);
    if (slot != kNoSlot && sh.lines[slot].state == LineState::kUse) {
      sh.lines[slot].state = LineState::kSafeToEvict;
    }
  }
}

size_t SoftwareCache::AcquireSlotLocked(Shard& sh, uint64_t page) {
  size_t slot;
  if (!sh.free_slots.empty()) {
    slot = sh.free_slots.back();
    sh.free_slots.pop_back();
  } else {
    // Full shard: the plugged policy picks the victim (or refuses the
    // admission). The host keeps the historical probe/bypass/eviction
    // books so CacheStats means the same thing under every policy.
    struct View final : CachePolicy::ShardLineView {
      const std::vector<Line>* lines;
      size_t num_lines() const override { return lines->size(); }
      bool evictable(size_t s) const override {
        return (*lines)[s].state == LineState::kSafeToEvict;
      }
      uint64_t page(size_t s) const override { return (*lines)[s].page; }
    };
    View view;
    view.lines = &sh.lines;
    uint64_t skips = 0;
    slot = policy_->SelectVictim(*sh.policy_state, view, page, max_probes_,
                                 &skips);
    sh.stats.pinned_probe_skips += skips;
    if (slot == CachePolicy::kNoVictim) {
      ++sh.stats.bypasses;
      return kNoSlot;
    }
    uint64_t victim_page = sh.lines[slot].page;
    sh.index.erase(victim_page);
    ++sh.stats.evictions;
    policy_->OnEvict(victim_page);
  }
  sh.lines[slot].page = page;
  sh.lines[slot].crc = 0;
  sh.lines[slot].has_crc = false;
  sh.lines[slot].corrupt_hint = false;
  auto reuse = sh.future_reuse.find(page);
  uint32_t pending = reuse == sh.future_reuse.end() ? 0 : reuse->second;
  sh.lines[slot].state =
      pending > 0 ? LineState::kUse : LineState::kSafeToEvict;
  sh.index.emplace(page, slot);
  ++sh.stats.insertions;
  policy_->OnInsert(page);
  return slot;
}

bool SoftwareCache::Insert(uint64_t page, std::span<const std::byte> payload,
                           std::optional<uint32_t> crc, bool corrupt_hint) {
  GIDS_CHECK(store_payloads_);
  GIDS_CHECK(payload.size() == line_bytes_);
  Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  if (verify_fill_) {
    bool bad = corrupt_hint;
    if (!bad && crc.has_value() && checksummer_ != nullptr) {
      bad = checksummer_->Checksum(page, payload.data(), payload.size()) !=
            *crc;
    }
    if (bad) {
      ++sh.stats.fill_rejects;
      return false;
    }
  }
  auto it = sh.index.find(page);
  size_t slot;
  if (it != sh.index.end()) {
    slot = it->second;
  } else {
    slot = AcquireSlotLocked(sh, page);
    if (slot == kNoSlot) return false;
  }
  std::memcpy(sh.data.data() + slot * line_bytes_, payload.data(),
              line_bytes_);
  sh.lines[slot].crc = crc.value_or(0);
  sh.lines[slot].has_crc = crc.has_value();
  sh.lines[slot].corrupt_hint = corrupt_hint;
  return true;
}

bool SoftwareCache::InsertMeta(uint64_t page, bool corrupt_hint) {
  Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  if (verify_fill_ && corrupt_hint) {
    ++sh.stats.fill_rejects;
    return false;
  }
  auto it = sh.index.find(page);
  size_t slot;
  if (it != sh.index.end()) {
    slot = it->second;
  } else {
    slot = AcquireSlotLocked(sh, page);
    if (slot == kNoSlot) return false;
  }
  sh.lines[slot].corrupt_hint = corrupt_hint;
  return true;
}

void SoftwareCache::AddFutureReuse(uint64_t page, uint32_t count) {
  if (count == 0) return;
  Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.future_reuse[page] += count;
  auto it = sh.index.find(page);
  if (it != sh.index.end()) {
    sh.lines[it->second].state = LineState::kUse;
  }
  // The registration stream doubles as the policy's look-ahead feed: one
  // entry per registered future access, in registration order (Belady
  // builds its next-use queues from exactly this sequence).
  for (uint32_t i = 0; i < count; ++i) policy_->IngestFutureAccess(page);
}

void SoftwareCache::ClearFutureReuse() {
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->future_reuse.clear();
    for (auto& line : sh->lines) {
      if (line.state == LineState::kUse) line.state = LineState::kSafeToEvict;
    }
  }
}

uint64_t SoftwareCache::resident_lines() const {
  uint64_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    n += sh->index.size();
  }
  return n;
}

uint64_t SoftwareCache::pinned_lines() const {
  uint64_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    for (const auto& line : sh->lines) {
      if (line.state == LineState::kUse) ++n;
    }
  }
  return n;
}

uint32_t SoftwareCache::FutureReuseCount(uint64_t page) const {
  const Shard& sh = shard_for(page);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.future_reuse.find(page);
  return it == sh.future_reuse.end() ? 0 : it->second;
}

const CacheStats& SoftwareCache::stats() const {
  CacheStats merged;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    merged.lookups += sh->stats.lookups;
    merged.hits += sh->stats.hits;
    merged.misses += sh->stats.misses;
    merged.insertions += sh->stats.insertions;
    merged.evictions += sh->stats.evictions;
    merged.pinned_probe_skips += sh->stats.pinned_probe_skips;
    merged.bypasses += sh->stats.bypasses;
    merged.quarantines += sh->stats.quarantines;
    merged.fill_rejects += sh->stats.fill_rejects;
    merged.scrubbed_lines += sh->stats.scrubbed_lines;
    merged.scrub_errors += sh->stats.scrub_errors;
  }
  merged_stats_ = merged;
  return merged_stats_;
}

void SoftwareCache::ResetStats() {
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->stats = CacheStats{};
  }
}

void SoftwareCache::BindMetrics(obs::MetricRegistry* registry,
                                const obs::Labels& labels) const {
  GIDS_CHECK(registry != nullptr);
  using obs::MetricType;
  auto counter = [&](const char* name, uint64_t CacheStats::* field) {
    registry->RegisterCallback(
        name, labels, MetricType::kCounter,
        [this, field] { return static_cast<double>(stats().*field); });
  };
  counter("gids_cache_lookups_total", &CacheStats::lookups);
  counter("gids_cache_hits_total", &CacheStats::hits);
  counter("gids_cache_misses_total", &CacheStats::misses);
  counter("gids_cache_insertions_total", &CacheStats::insertions);
  counter("gids_cache_evictions_total", &CacheStats::evictions);
  counter("gids_cache_pinned_probe_skips_total",
          &CacheStats::pinned_probe_skips);
  counter("gids_cache_bypasses_total", &CacheStats::bypasses);
  counter("gids_cache_quarantines_total", &CacheStats::quarantines);
  counter("gids_cache_fill_rejects_total", &CacheStats::fill_rejects);
  counter("gids_cache_scrubbed_lines_total", &CacheStats::scrubbed_lines);
  counter("gids_cache_scrub_errors_total", &CacheStats::scrub_errors);
  registry->RegisterCallback("gids_cache_hit_ratio", labels,
                             MetricType::kGauge,
                             [this] { return stats().HitRatio(); });
  registry->RegisterCallback(
      "gids_cache_resident_lines", labels, MetricType::kGauge,
      [this] { return static_cast<double>(resident_lines()); });
  registry->RegisterCallback(
      "gids_cache_pinned_lines", labels, MetricType::kGauge,
      [this] { return static_cast<double>(pinned_lines()); });
  registry->RegisterCallback(
      "gids_cache_num_shards", labels, MetricType::kGauge,
      [this] { return static_cast<double>(num_shards()); });
  registry->RegisterCallback(
      "gids_cache_capacity_lines", labels, MetricType::kGauge,
      [this] { return static_cast<double>(capacity_lines()); });
}

}  // namespace gids::storage
