#include "loaders/mmap_loader.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace gids::loaders {
namespace {

using gids::testing::LoaderRig;

TEST(MmapLoaderTest, ProducesBatchesWithStats) {
  LoaderRig rig;
  MmapLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get());
  auto batch = loader.Next();
  ASSERT_TRUE(batch.ok());
  const IterationStats& st = batch->stats;
  EXPECT_GT(st.input_nodes, 0u);
  EXPECT_GT(st.sampling_ns, 0);
  EXPECT_GT(st.aggregation_ns, 0);
  EXPECT_GT(st.transfer_ns, 0);
  EXPECT_GT(st.training_ns, 0);
  EXPECT_EQ(st.e2e_ns, st.sampling_ns + st.aggregation_ns + st.transfer_ns +
                           st.training_ns);
}

TEST(MmapLoaderTest, MaterializesGroundTruthFeatures) {
  LoaderRig rig;
  MmapLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get());
  auto batch = loader.Next();
  ASSERT_TRUE(batch.ok());
  const auto& fs = rig.dataset->features;
  const auto& nodes = batch->batch.input_nodes();
  ASSERT_EQ(batch->features.size(), nodes.size() * fs.feature_dim());
  std::vector<float> expected(fs.feature_dim());
  for (size_t i = 0; i < std::min<size_t>(nodes.size(), 10); ++i) {
    fs.FillFeature(nodes[i], expected);
    for (uint32_t j = 0; j < fs.feature_dim(); ++j) {
      ASSERT_EQ(batch->features[i * fs.feature_dim() + j], expected[j]);
    }
  }
}

TEST(MmapLoaderTest, CountingModeSkipsFeatures) {
  LoaderRig rig;
  MmapLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), {.counting_mode = true});
  auto batch = loader.Next();
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->features.empty());
  EXPECT_GT(batch->stats.input_nodes, 0u);
}

TEST(MmapLoaderTest, PageCacheWarmsUp) {
  // With CPU memory large enough for the whole feature file, faults
  // should taper off across iterations.
  LoaderRig rig(/*dataset_scale=*/0.01, /*memory_scale=*/1.0 / 64.0);
  MmapLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), {.counting_mode = true});
  uint64_t early_faults = 0;
  uint64_t late_faults = 0;
  for (int i = 0; i < 30; ++i) {
    auto b = loader.Next();
    ASSERT_TRUE(b.ok());
    if (i < 5) early_faults += b->stats.gather.storage_reads;
    if (i >= 25) late_faults += b->stats.gather.storage_reads;
  }
  EXPECT_LT(late_faults, early_faults / 2);
}

TEST(MmapLoaderTest, CapacityMissesPersistWhenDatasetExceedsMemory) {
  // With tiny CPU memory the page cache thrashes and faults never stop —
  // the §2.3 regime that motivates GIDS.
  LoaderRig rig(/*dataset_scale=*/0.01, /*memory_scale=*/1.0 / 65536.0);
  MmapLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), {.counting_mode = true});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(loader.Next().ok());
  auto b = loader.Next();
  ASSERT_TRUE(b.ok());
  // Even fully warmed, a substantial share of accesses still faults.
  uint64_t total = b->stats.gather.total_page_requests();
  EXPECT_GT(b->stats.gather.storage_reads, total / 10);
}

TEST(MmapLoaderTest, SamsungSlowerThanOptane) {
  // Serial page faults make aggregation latency-bound: the 980 Pro's
  // ~30x higher latency must show up (Fig. 13 vs Fig. 14).
  LoaderRig optane_rig(0.01, 1.0 / 65536.0, sim::SsdSpec::IntelOptane());
  LoaderRig samsung_rig(0.01, 1.0 / 65536.0, sim::SsdSpec::Samsung980Pro());
  MmapLoader optane(optane_rig.dataset.get(), optane_rig.sampler.get(),
                    optane_rig.seeds.get(), optane_rig.system.get(),
                    {.counting_mode = true});
  MmapLoader samsung(samsung_rig.dataset.get(), samsung_rig.sampler.get(),
                     samsung_rig.seeds.get(), samsung_rig.system.get(),
                     {.counting_mode = true});
  TimeNs optane_total = 0;
  TimeNs samsung_total = 0;
  for (int i = 0; i < 5; ++i) {
    auto a = optane.Next();
    auto b = samsung.Next();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    optane_total += a->stats.aggregation_ns;
    samsung_total += b->stats.aggregation_ns;
  }
  EXPECT_GT(samsung_total, 5 * optane_total);
}

TEST(MmapLoaderTest, ElapsedAccumulates) {
  LoaderRig rig;
  MmapLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), {.counting_mode = true});
  ASSERT_TRUE(loader.Next().ok());
  TimeNs after_one = loader.elapsed_ns();
  ASSERT_TRUE(loader.Next().ok());
  EXPECT_GT(loader.elapsed_ns(), after_one);
  EXPECT_EQ(loader.iterations(), 2u);
}

}  // namespace
}  // namespace gids::loaders
