#include "common/crc32c.h"

#include <cstring>

namespace gids {
namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slice-by-8 tables: kTable[0] is the classic byte-at-a-time table;
// kTable[k][b] advances byte b through k additional zero bytes, so eight
// table lookups process one aligned 8-byte word.
struct Tables {
  uint32_t t[8][256];

  constexpr Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

constexpr Tables kTables;

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t s = crc ^ 0xffffffffu;

  // Byte-align to 8 so the word loop can use a single memcpy-load per step.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    s = (s >> 8) ^ kTables.t[0][(s ^ *p++) & 0xff];
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    // Little-endian fold; on big-endian hosts fall back below. All current
    // build targets are little-endian, matching the table layout.
    word ^= s;
    s = kTables.t[7][word & 0xff] ^ kTables.t[6][(word >> 8) & 0xff] ^
        kTables.t[5][(word >> 16) & 0xff] ^ kTables.t[4][(word >> 24) & 0xff] ^
        kTables.t[3][(word >> 32) & 0xff] ^ kTables.t[2][(word >> 40) & 0xff] ^
        kTables.t[1][(word >> 48) & 0xff] ^ kTables.t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    s = (s >> 8) ^ kTables.t[0][(s ^ *p++) & 0xff];
    --n;
  }
  return s ^ 0xffffffffu;
}

}  // namespace gids
