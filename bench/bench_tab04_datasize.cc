// Reproduces Table 4: feature-data vs graph-structure size distribution for
// the real-world datasets, computed from the published counts at full scale
// (float32 features; int64 COO structure as distributed on disk).
//
// Paper anchors: features dominate — 94.7% for IGB-Full, 96.0% for
// IGBH-Full — which is why GIDS keeps features on SSDs but pins the small
// structure in CPU memory (§3.5).
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

struct Tab4Row {
  graph::DatasetSpec spec;
  double paper_feature_pct;
  double paper_structure_pct;
  double paper_total_gb;
};

void BM_DataSizeDistribution(benchmark::State& state, Tab4Row row) {
  double feature_gb = 0;
  double structure_gb = 0;
  for (auto _ : state) {
    feature_gb = static_cast<double>(row.spec.paper_feature_bytes()) / 1e9;
    structure_gb =
        static_cast<double>(row.spec.paper_structure_bytes()) / 1e9;
  }
  double total = feature_gb + structure_gb;
  double feature_pct = 100.0 * feature_gb / total;
  double structure_pct = 100.0 * structure_gb / total;
  state.counters["feature_GB"] = feature_gb;
  state.counters["structure_GB"] = structure_gb;
  state.counters["feature_pct"] = feature_pct;

  ReportRow("TAB04", row.spec.name + " feature %", feature_pct,
            row.paper_feature_pct, "%");
  ReportRow("TAB04", row.spec.name + " structure %", structure_pct,
            row.paper_structure_pct, "%");
  ReportRow("TAB04", row.spec.name + " total size", total,
            row.paper_total_gb, "GB");
}

BENCHMARK_CAPTURE(BM_DataSizeDistribution, ogbn_papers100M,
                  Tab4Row{graph::DatasetSpec::OgbnPapers100M(), 68.3, 31.0,
                          77.4})
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DataSizeDistribution, igb_full,
                  Tab4Row{graph::DatasetSpec::IgbFull(), 94.7, 5.1, 1084.0})
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DataSizeDistribution, mag240m,
                  Tab4Row{graph::DatasetSpec::Mag240M(), 86.7, 12.8, 200.0})
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DataSizeDistribution, igbh_full,
                  Tab4Row{graph::DatasetSpec::IgbhFull(), 96.0, 3.8, 2773.0})
    ->Iterations(1);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
