file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ssd_scaling.dir/bench_abl_ssd_scaling.cc.o"
  "CMakeFiles/bench_abl_ssd_scaling.dir/bench_abl_ssd_scaling.cc.o.d"
  "bench_abl_ssd_scaling"
  "bench_abl_ssd_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ssd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
