#!/usr/bin/env bash
# Builds and tests every configuration: the default RelWithDebInfo tree,
# the ASan/UBSan tree, and the ThreadSanitizer tree (CMakePresets.json).
# The tsan preset builds the concurrency and workspace test binaries and
# runs the `concurrency`- and `workspace`-labelled tests (thread pool,
# sharded cache, parallel gather, coalescing determinism, loader
# determinism, corruption-counter determinism, workspace-pool books and
# zero-allocation steady state). The asan-ubsan preset additionally
# re-runs the `integrity`-labelled tests (CRC32C, corruption repair,
# scrubber), the `coalescing`-labelled tests (page-coalescing gather
# determinism and fault fan-out), the `workspace`-labelled tests
# (pooled-scratch recycling), and the `cachepolicy`-labelled tests
# (CachePolicy conformance suite, CACHING.md) on their own so checksum-,
# scatter-, pool-, and policy-path memory errors fail loudly, the
# `replication`-labelled tests (journal CRC/LSN/crash-replay, replica
# routing, mutation-stream determinism; FAULTS.md "Durability &
# failover"), and the `serving`-labelled tests (online inference tier:
# admission/shedding, batch forming, SLO scheduling, cross-request
# coalescing equivalence; DESIGN.md §14). Also runs the documentation
# lint (tools/docs_lint.sh: dead intra-repo markdown links, undocumented
# GidsOptions / FaultOptions / IntegrityOptions / ServingOptions fields,
# gids_cli flags, and cache-policy name/enum drift).
# The default preset additionally runs the bench regression gate: the
# FIG03/FIG13 headline benches, the HOSTPAR host-parallelism sweep, the
# ABL-CACHEPOLICY cache-policy ablation, the ABL-REPLICATION
# durability/availability sweep, and the SERVING latency/throughput
# frontier are replayed and their RESULT_JSON rows diffed against
# bench/baselines/seed.json with tools/bench_compare.py (virtual-time
# `measured` values are deterministic, so the gate fails on any >10%
# drift, schema violation, or lost row; HOSTPAR rows additionally carry
# `steady_state_allocs`, which must be exactly 0 — the zero-allocation
# hot-path contract of DESIGN.md §11; ABL-CACHEPOLICY hit-rate rows,
# ABL-REPLICATION-AVAIL availability rows, and SERVING-GOODPUT rows gate
# one-sided, higher-is-better, and SERVING-P99 latency rows one-sided,
# lower-is-better, via the baseline's `directions` map, so cache
# acceptance ratios, the replicated-outage availability floor, serving
# goodput, and serving tail latency cannot silently regress).
# Run from the repository root:
#
#   tools/check.sh            # docs lint + all presets
#   tools/check.sh default    # docs lint + one preset
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan tsan)
fi

echo "=== docs lint"
tools/docs_lint.sh

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test"
  ctest --preset "$preset" -j "$jobs"
  if [ "$preset" = "asan-ubsan" ]; then
    echo "=== [$preset] integrity-labelled tests"
    ctest --preset "$preset" -j "$jobs" -L integrity
    echo "=== [$preset] coalescing-labelled tests"
    ctest --preset "$preset" -j "$jobs" -L coalescing
    echo "=== [$preset] workspace-labelled tests"
    ctest --preset "$preset" -j "$jobs" -L workspace
    echo "=== [$preset] cachepolicy-labelled tests"
    ctest --preset "$preset" -j "$jobs" -L cachepolicy
    echo "=== [$preset] replication-labelled tests"
    ctest --preset "$preset" -j "$jobs" -L replication
    echo "=== [$preset] serving-labelled tests"
    ctest --preset "$preset" -j "$jobs" -L serving
  fi
  if [ "$preset" = "default" ]; then
    echo "=== [$preset] bench regression gate"
    benchlog=$(mktemp -d)
    build/bench/bench_fig03_request_rate > "$benchlog/fig03.log"
    build/bench/bench_fig13_e2e_samsung > "$benchlog/fig13.log"
    build/bench/bench_host_parallelism > "$benchlog/hostpar.log"
    build/bench/bench_abl_cache_policy > "$benchlog/cachepolicy.log"
    build/bench/bench_abl_replication > "$benchlog/replication.log"
    build/bench/bench_serving > "$benchlog/serving.log"
    python3 tools/bench_compare.py --baseline bench/baselines/seed.json \
      "$benchlog/fig03.log" "$benchlog/fig13.log" "$benchlog/hostpar.log" \
      "$benchlog/cachepolicy.log" "$benchlog/replication.log" \
      "$benchlog/serving.log"
    rm -rf "$benchlog"
  fi
done

echo "=== all presets passed"
