// SSD capacity planning with the accumulator's analytic model (§3.2).
//
// Answers the deployment questions the paper raises in §3.3: how many
// overlapping storage accesses must the dataloader keep in flight on a
// given SSD to hit a target utilization (Eq. 2-3), and how many SSDs does
// it take to saturate the GPU's PCIe ingress bandwidth?
//
// Build & run:  ./build/examples/ssd_capacity_planning
#include <cstdio>

#include "sim/analytic.h"
#include "sim/link_models.h"
#include "sim/ssd_model.h"

int main() {
  using namespace gids;
  using namespace gids::sim;

  AccumulatorModelParams params;  // T_i = 25 us, T_t = 5 us (paper §4.2)

  for (const SsdSpec& spec :
       {SsdSpec::IntelOptane(), SsdSpec::Samsung980Pro()}) {
    std::printf("=== %s ===\n", spec.name.c_str());
    std::printf("  peak: %.2f M IOPs @4KiB (%.2f GB/s), latency %.0f us, "
                "internal parallelism ~%llu\n",
                spec.peak_read_iops / 1e6,
                spec.peak_read_bandwidth_bps() / 1e9,
                NsToUs(spec.read_latency_ns),
                static_cast<unsigned long long>(
                    spec.internal_parallelism()));

    std::printf("  overlapping accesses for target utilization "
                "(Eq. 2-3):\n");
    for (double target : {0.50, 0.80, 0.90, 0.95, 0.99}) {
      std::printf("    %4.0f%% -> %8llu accesses\n", target * 100,
                  static_cast<unsigned long long>(
                      RequiredOverlappingAccesses(spec, target, params)));
    }

    // Verify against the event-driven device model at the 95% point.
    uint64_t n95 = RequiredOverlappingAccesses(spec, 0.95, params);
    SsdModel model(spec);
    SsdBatchResult r = model.SimulateClosedLoop(200000, n95);
    std::printf("  event-driven check at N=%llu: %.1f%% of peak IOPs\n",
                static_cast<unsigned long long>(n95),
                100.0 * r.achieved_iops / spec.peak_read_iops);

    double pcie = LinkModel::PcieGen4x16().bandwidth_bps();
    int ssds_for_pcie = static_cast<int>(
        pcie / spec.peak_read_bandwidth_bps()) + 1;
    std::printf("  SSDs to saturate PCIe Gen4 x16 (32 GB/s): ~%d\n",
                ssds_for_pcie);
    std::printf("  (the constant CPU buffer exists so one SSD plus CPU "
                "memory can\n   approach that ceiling instead, §3.3)\n\n");
  }
  return 0;
}
