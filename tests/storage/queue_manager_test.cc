#include "storage/queue_manager.h"

#include <gtest/gtest.h>

namespace gids::storage {
namespace {

TEST(QueueManagerTest, GeometryAndDepth) {
  QueueManager qm(4, 16);
  EXPECT_EQ(qm.num_queues(), 4u);
  EXPECT_EQ(qm.depth_per_queue(), 16u);
  EXPECT_EQ(qm.total_depth(), 64u);
}

TEST(QueueManagerTest, RoundTripCompletesCleanly) {
  QueueManager qm(2, 4);
  for (uint64_t lba = 0; lba < 100; ++lba) {
    ASSERT_TRUE(qm.RoundTrip(lba).ok());
  }
  EXPECT_EQ(qm.total_submissions(), 100u);
  for (uint32_t q = 0; q < qm.num_queues(); ++q) {
    EXPECT_EQ(qm.queue(q).outstanding(), 0u);
  }
}

TEST(QueueManagerTest, RoundRobinSpreadsLoad) {
  QueueManager qm(4, 8);
  for (uint64_t lba = 0; lba < 40; ++lba) {
    ASSERT_TRUE(qm.RoundTrip(lba).ok());
  }
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(qm.queue(q).total_submitted(), 10u);
  }
}

TEST(QueueManagerTest, DepthOneWorks) {
  QueueManager qm(1, 1);
  ASSERT_TRUE(qm.RoundTrip(7).ok());
  ASSERT_TRUE(qm.RoundTrip(8).ok());
  EXPECT_EQ(qm.total_submissions(), 2u);
}

}  // namespace
}  // namespace gids::storage
