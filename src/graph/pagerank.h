#ifndef GIDS_GRAPH_PAGERANK_H_
#define GIDS_GRAPH_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/csc_graph.h"
#include "graph/types.h"

namespace gids::graph {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 30;
  double tolerance = 1e-7;  // L1 change per iteration to stop early
};

/// Weighted *reverse* PageRank, the hot-node metric used by the constant
/// CPU buffer (§3.3, following Data Tiering [Min et al., KDD'22]).
///
/// Neighborhood sampling walks from a seed node to its *in*-neighbors, so
/// the probability of a node's feature being accessed is approximated by a
/// random walk along reversed sampling edges: each node v distributes its
/// score uniformly across its in-neighbors (weight 1 / in_degree(v)).
/// Since CscGraph stores in-neighbors directly, this is a push-style
/// iteration over columns. Scores sum to 1.
std::vector<double> WeightedReversePageRank(const CscGraph& graph,
                                            const PageRankOptions& options);

/// Returns node ids sorted by descending score (ties by ascending id).
std::vector<NodeId> RankNodesByScore(const std::vector<double>& score);

/// Returns node ids sorted by descending in-degree (a cheaper hot-node
/// heuristic used as an ablation against reverse PageRank).
std::vector<NodeId> RankNodesByInDegree(const CscGraph& graph);

}  // namespace gids::graph

#endif  // GIDS_GRAPH_PAGERANK_H_
