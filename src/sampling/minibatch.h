#ifndef GIDS_SAMPLING_MINIBATCH_H_
#define GIDS_SAMPLING_MINIBATCH_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace gids::sampling {

/// One layer of a sampled computational graph (a DGL-style message-flow
/// block). Destination nodes are the first `num_dst` entries of
/// `src_nodes`, so a node's own representation is always available to the
/// next layer (GraphSAGE's self term).
struct Block {
  std::vector<graph::NodeId> src_nodes;  // dst nodes first, then new srcs
  uint32_t num_dst = 0;
  /// Edges in local coordinates: edge_src[i] indexes src_nodes,
  /// edge_dst[i] indexes the dst prefix [0, num_dst).
  std::vector<uint32_t> edge_src;
  std::vector<uint32_t> edge_dst;

  uint64_t num_edges() const { return edge_src.size(); }

  /// Empties the block but keeps the vectors' capacity, so recycled
  /// batches re-sample without reallocating (the zero-allocation path).
  void Reset() {
    src_nodes.clear();
    num_dst = 0;
    edge_src.clear();
    edge_dst.clear();
  }
};

/// A sampled mini-batch: `blocks[0]` is the input-most layer (its
/// src_nodes are the nodes whose features must be gathered) and
/// `blocks.back()`'s dst prefix equals the seeds.
struct MiniBatch {
  std::vector<graph::NodeId> seeds;
  std::vector<Block> blocks;

  /// Nodes whose feature vectors the aggregation stage must fetch.
  const std::vector<graph::NodeId>& input_nodes() const {
    return blocks.front().src_nodes;
  }

  uint64_t num_input_nodes() const {
    return blocks.empty() ? 0 : blocks.front().src_nodes.size();
  }

  /// Edge count per block, input-most first (used by the sampling timing
  /// models).
  std::vector<uint64_t> LayerEdgeCounts() const {
    std::vector<uint64_t> counts;
    counts.reserve(blocks.size());
    for (const Block& b : blocks) counts.push_back(b.num_edges());
    return counts;
  }

  /// LayerEdgeCounts into a reusable vector-like container (cleared
  /// first); the hot loop's allocation-free variant.
  template <typename OutVec>
  void LayerEdgeCountsInto(OutVec& counts) const {
    counts.clear();
    for (const Block& b : blocks) counts.push_back(b.num_edges());
  }

  /// Empties seeds and blocks but keeps every vector's capacity — blocks
  /// are Reset, not erased, so a recycled batch sampled at the same layer
  /// count reuses all of its edge/node storage.
  void Reset() {
    seeds.clear();
    for (Block& b : blocks) b.Reset();
  }

  uint64_t total_edges() const {
    uint64_t total = 0;
    for (const Block& b : blocks) total += b.num_edges();
    return total;
  }
};

}  // namespace gids::sampling

#endif  // GIDS_SAMPLING_MINIBATCH_H_
