#ifndef GIDS_OBS_JSON_H_
#define GIDS_OBS_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gids::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes are not
/// added). Control characters are emitted as \u00XX sequences.
std::string JsonEscape(std::string_view s);

/// Renders a double the way the exporters do: finite values via %.17g
/// (round-trippable), non-finite values as 0 (JSON has no NaN/Inf).
std::string JsonNumber(double value);

/// Minimal JSON document model. The exporters emit JSON by hand (the
/// documents are flat and the dependency footprint stays zero); this
/// parser exists so tests and tooling can validate and inspect what was
/// emitted without a third-party library.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace gids::obs

#endif  // GIDS_OBS_JSON_H_
