#include "sim/pipeline_des.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

namespace gids::sim {
namespace {

std::vector<StageCosts> Uniform(size_t n, TimeNs sample, TimeNs agg,
                                TimeNs transfer, TimeNs train) {
  return std::vector<StageCosts>(
      n, StageCosts{.sampling_ns = sample,
                    .aggregation_ns = agg,
                    .transfer_ns = transfer,
                    .training_ns = train});
}

TEST(PipelineDesTest, EmptyRun) {
  PipelineResult r = SimulatePipeline({}, PipelinePolicy::kSerial);
  EXPECT_EQ(r.makespan_ns, 0);
}

TEST(PipelineDesTest, SerialIsExactSum) {
  auto iters = Uniform(10, 5, 7, 2, 3);
  PipelineResult r = SimulatePipeline(iters, PipelinePolicy::kSerial);
  EXPECT_EQ(r.makespan_ns, 10 * (5 + 7 + 2 + 3));
  EXPECT_EQ(r.cpu_busy_ns, 50);
  EXPECT_EQ(r.io_busy_ns, 90);
  EXPECT_EQ(r.gpu_busy_ns, 30);
}

TEST(PipelineDesTest, PrepOverlapHidesSamplingBehindAggregation) {
  // sampling 5, aggregation 20: with pipelining, samples run ahead and
  // the IO path becomes the bottleneck: makespan ~= sample_0 + n*agg.
  auto iters = Uniform(10, 5, 20, 0, 0);
  PipelineResult r =
      SimulatePipeline(iters, PipelinePolicy::kPrepOverlapsAggregation);
  EXPECT_EQ(r.makespan_ns, 5 + 10 * 20);
  // Serial would be n*(5+20).
  PipelineResult serial = SimulatePipeline(iters, PipelinePolicy::kSerial);
  EXPECT_EQ(serial.makespan_ns, 10 * 25);
}

TEST(PipelineDesTest, PrepOverlapBoundBySlowerSide) {
  // Sampling slower than aggregation: CPU becomes the bottleneck.
  auto iters = Uniform(10, 20, 5, 0, 0);
  PipelineResult r =
      SimulatePipeline(iters, PipelinePolicy::kPrepOverlapsAggregation);
  EXPECT_EQ(r.makespan_ns, 10 * 20 + 5);
}

TEST(PipelineDesTest, DecoupledOverlapsEverything) {
  // GPU work (sampling+training) far below aggregation: IO-bound run.
  auto iters = Uniform(20, 1, 50, 0, 2);
  PipelineResult r = SimulatePipeline(iters, PipelinePolicy::kDecoupled);
  // Lower bound: sum of aggregations; small slack for the first sample.
  EXPECT_GE(r.makespan_ns, 20 * 50);
  EXPECT_LE(r.makespan_ns, 20 * 50 + 20 * 3 + 10);
}

TEST(PipelineDesTest, DecoupledGpuBoundWhenComputeDominates) {
  auto iters = Uniform(20, 10, 1, 0, 30);
  PipelineResult r = SimulatePipeline(iters, PipelinePolicy::kDecoupled);
  // GPU serializes sampling + training: >= 20 * 40.
  EXPECT_GE(r.makespan_ns, 20 * 40);
  EXPECT_GT(r.gpu_utilization(), 0.9);
}

TEST(PipelineDesTest, SerialIsNeverFasterThanPipelined) {
  for (TimeNs sample : {1, 10, 40}) {
    for (TimeNs agg : {1, 15, 60}) {
      auto iters = Uniform(12, sample, agg, 3, 8);
      TimeNs serial =
          SimulatePipeline(iters, PipelinePolicy::kSerial).makespan_ns;
      TimeNs ginex =
          SimulatePipeline(iters, PipelinePolicy::kPrepOverlapsAggregation)
              .makespan_ns;
      TimeNs gids =
          SimulatePipeline(iters, PipelinePolicy::kDecoupled).makespan_ns;
      EXPECT_GE(serial, ginex) << sample << "/" << agg;
      EXPECT_GE(serial, gids) << sample << "/" << agg;
    }
  }
}

TEST(PipelineDesTest, UtilizationsBounded) {
  auto iters = Uniform(30, 7, 13, 2, 5);
  for (auto policy :
       {PipelinePolicy::kSerial, PipelinePolicy::kPrepOverlapsAggregation,
        PipelinePolicy::kDecoupled}) {
    PipelineResult r = SimulatePipeline(iters, policy);
    EXPECT_GT(r.makespan_ns, 0);
    EXPECT_LE(r.cpu_utilization(), 1.0 + 1e-9);
    EXPECT_LE(r.io_utilization(), 1.0 + 1e-9);
    EXPECT_LE(r.gpu_utilization(), 1.0 + 1e-9);
  }
}

TEST(PipelineDesTest, MakespanAtLeastCriticalResource) {
  auto iters = Uniform(15, 4, 11, 1, 6);
  for (auto policy :
       {PipelinePolicy::kSerial, PipelinePolicy::kPrepOverlapsAggregation,
        PipelinePolicy::kDecoupled}) {
    PipelineResult r = SimulatePipeline(iters, policy);
    EXPECT_GE(r.makespan_ns, r.io_busy_ns);
    EXPECT_GE(r.makespan_ns, r.gpu_busy_ns);
    EXPECT_GE(r.makespan_ns, r.cpu_busy_ns);
  }
}

TEST(PipelineDesTest, TimelineCoversBusyTime) {
  auto iters = Uniform(8, 4, 9, 1, 3);
  std::vector<TaskInterval> timeline;
  PipelineResult r = SimulatePipeline(
      iters, PipelinePolicy::kPrepOverlapsAggregation, &timeline);
  TimeNs cpu = 0;
  TimeNs io = 0;
  TimeNs gpu = 0;
  for (const auto& t : timeline) {
    ASSERT_LT(t.start_ns, t.end_ns);
    ASSERT_LE(t.end_ns, r.makespan_ns);
    TimeNs d = t.end_ns - t.start_ns;
    switch (t.resource) {
      case TaskInterval::Resource::kCpu:
        cpu += d;
        break;
      case TaskInterval::Resource::kIo:
        io += d;
        break;
      case TaskInterval::Resource::kGpu:
        gpu += d;
        break;
    }
  }
  EXPECT_EQ(cpu, r.cpu_busy_ns);
  EXPECT_EQ(io, r.io_busy_ns);
  EXPECT_EQ(gpu, r.gpu_busy_ns);
}

TEST(PipelineDesTest, TimelineTasksDoNotOverlapPerResource) {
  auto iters = Uniform(10, 3, 7, 2, 4);
  std::vector<TaskInterval> timeline;
  SimulatePipeline(iters, PipelinePolicy::kDecoupled, &timeline);
  std::map<TaskInterval::Resource, TimeNs> last_end;
  for (const auto& t : timeline) {
    EXPECT_GE(t.start_ns, last_end[t.resource])
        << "overlap on resource " << static_cast<int>(t.resource);
    last_end[t.resource] = t.end_ns;
  }
}

TEST(PipelineDesTest, ChromeTraceIsValidJson) {
  auto iters = Uniform(4, 2, 5, 1, 3);
  std::vector<TaskInterval> timeline;
  SimulatePipeline(iters, PipelinePolicy::kSerial, &timeline);
  std::string path =
      (std::filesystem::temp_directory_path() / "gids_trace_test.json")
          .string();
  ASSERT_TRUE(WriteChromeTrace(timeline, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("aggregation+transfer"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(content.begin(), content.end(), '{'),
            std::count(content.begin(), content.end(), '}'));
  EXPECT_EQ(std::count(content.begin(), content.end(), '['),
            std::count(content.begin(), content.end(), ']'));
}

TEST(PipelineDesTest, ChromeTraceRejectsBadPath) {
  EXPECT_FALSE(WriteChromeTrace({}, "/nonexistent/dir/x.json").ok());
}

TEST(PipelineDesTest, HeterogeneousIterations) {
  std::vector<StageCosts> iters;
  for (int i = 0; i < 10; ++i) {
    iters.push_back(StageCosts{.sampling_ns = i,
                               .aggregation_ns = 10 - i,
                               .transfer_ns = 1,
                               .training_ns = 2});
  }
  PipelineResult serial = SimulatePipeline(iters, PipelinePolicy::kSerial);
  TimeNs expected = 0;
  for (const auto& it : iters) {
    expected +=
        it.sampling_ns + it.aggregation_ns + it.transfer_ns + it.training_ns;
  }
  EXPECT_EQ(serial.makespan_ns, expected);
}

}  // namespace
}  // namespace gids::sim
