#include "gnn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gids::gnn {

double SoftmaxCrossEntropy(const Tensor& logits,
                           std::span<const uint32_t> labels,
                           Tensor* d_logits) {
  GIDS_CHECK(labels.size() == logits.rows());
  GIDS_CHECK(d_logits != nullptr);
  *d_logits = Tensor(logits.rows(), logits.cols());
  const size_t n = logits.rows();
  const size_t c = logits.cols();
  double loss = 0.0;
  std::vector<double> probs(c);
  for (size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    GIDS_CHECK(labels[i] < c);
    double max_logit = row[0];
    for (size_t j = 1; j < c; ++j) max_logit = std::max<double>(max_logit, row[j]);
    double denom = 0.0;
    for (size_t j = 0; j < c; ++j) {
      probs[j] = std::exp(static_cast<double>(row[j]) - max_logit);
      denom += probs[j];
    }
    loss -= std::log(probs[labels[i]] / denom);
    float* drow = d_logits->data() + i * c;
    for (size_t j = 0; j < c; ++j) {
      double p = probs[j] / denom;
      drow[j] = static_cast<float>(
          (p - (j == labels[i] ? 1.0 : 0.0)) / static_cast<double>(n));
    }
  }
  return loss / static_cast<double>(n);
}

double Accuracy(const Tensor& logits, std::span<const uint32_t> labels) {
  GIDS_CHECK(labels.size() == logits.rows());
  const size_t n = logits.rows();
  const size_t c = logits.cols();
  if (n == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    size_t best = 0;
    for (size_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace gids::gnn
