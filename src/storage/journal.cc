#include "storage/journal.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/random.h"

namespace gids::storage {

const char* DurabilityLevelName(DurabilityLevel level) {
  switch (level) {
    case DurabilityLevel::kNone:
      return "none";
    case DurabilityLevel::kJournaled:
      return "journaled";
    case DurabilityLevel::kSynced:
      return "synced";
    case DurabilityLevel::kQuorum:
      return "quorum";
  }
  return "unknown";
}

bool ParseDurabilityLevel(std::string_view name, DurabilityLevel* level) {
  for (DurabilityLevel l :
       {DurabilityLevel::kNone, DurabilityLevel::kJournaled,
        DurabilityLevel::kSynced, DurabilityLevel::kQuorum}) {
    if (name == DurabilityLevelName(l)) {
      *level = l;
      return true;
    }
  }
  return false;
}

JournalCoordinator::JournalCoordinator(int n_devices,
                                       const JournalOptions& options,
                                       const ReplicaSet* replicas,
                                       const PageChecksummer* checksummer)
    : n_devices_(n_devices),
      options_(options),
      replicas_(replicas),
      checksummer_(checksummer),
      journals_(static_cast<size_t>(n_devices)) {
  GIDS_CHECK(n_devices_ > 0);
  GIDS_CHECK(n_devices_ <= 32);  // appended/synced masks are 32-bit
  GIDS_CHECK(checksummer_ != nullptr);
}

void JournalCoordinator::HomeDevices(const MutationRecord& rec, int* devices,
                                     int* count) const {
  if (replicas_ == nullptr) {
    devices[0] = static_cast<int>(rec.home_page %
                                  static_cast<uint64_t>(n_devices_));
    *count = 1;
    return;
  }
  const int n = replicas_->factor();
  for (int r = 0; r < n; ++r) devices[r] = replicas_->Device(rec.home_page, r);
  *count = n;
}

uint32_t JournalCoordinator::RecordCrc(const MutationRecord& rec) const {
  // Header fields in a fixed order, then the payload; tagged with the LSN
  // so a record replayed at the wrong journal position fails verification
  // (the misdirected-read idea of page_integrity.h applied to the log).
  uint64_t header[4] = {static_cast<uint64_t>(rec.type), rec.key, rec.arg,
                        rec.offset};
  uint32_t crc = Crc32cExtend(0, header, sizeof(header));
  crc = Crc32cExtend(crc, rec.payload.data(), rec.payload.size());
  return crc ^ checksummer_->PageTag(rec.lsn);
}

bool JournalCoordinator::VerifyRecord(const MutationRecord& rec) const {
  return rec.crc == RecordCrc(rec);
}

uint64_t JournalCoordinator::Submit(MutationRecord rec,
                                    const std::function<bool(int)>& online) {
  if (rec.lsn == 0) {
    rec.lsn = ++next_lsn_;
  } else {
    // Resubmission of a record a crash lost: its LSN slot must be above
    // the applied watermark and vacant, or replay would double-apply.
    GIDS_CHECK(rec.lsn > applied_lsn());
    GIDS_CHECK(records_.find(rec.lsn) == records_.end());
    GIDS_CHECK(rec.lsn <= next_lsn_);
    counters_.resubmitted.fetch_add(1, std::memory_order_relaxed);
  }
  rec.crc = RecordCrc(rec);

  int devices[ReplicaSet::kMaxReplicas];
  int n_home = 0;
  HomeDevices(rec, devices, &n_home);
  const uint64_t bytes = RecordBytes(rec);
  counters_.logical_bytes.fetch_add(rec.payload.size(),
                                    std::memory_order_relaxed);
  Entry entry;
  TimeNs cost = 0;
  for (int i = 0; i < n_home; ++i) {
    const int d = devices[i];
    if (!online(d)) {
      counters_.append_failures.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    journals_[d].lsns.push_back(rec.lsn);
    entry.appended_mask |= 1u << d;
    counters_.appends.fetch_add(1, std::memory_order_relaxed);
    counters_.journal_bytes.fetch_add(bytes, std::memory_order_relaxed);
    cost += options_.append_ns;
  }
  const uint64_t lsn = rec.lsn;
  entry.rec = std::move(rec);
  records_.emplace(lsn, std::move(entry));
  pending_count_.fetch_add(1, std::memory_order_relaxed);
  counters_.mutation_ns.fetch_add(static_cast<uint64_t>(cost),
                                  std::memory_order_relaxed);
  return lsn;
}

uint64_t JournalCoordinator::SyncAll(const std::function<bool(int)>& online) {
  uint64_t advanced = 0;
  TimeNs cost = 0;
  for (int d = 0; d < n_devices_; ++d) {
    DeviceJournal& j = journals_[d];
    if (j.synced_end == j.lsns.size()) continue;
    if (!online(d)) continue;  // an offline journal cannot fsync
    for (size_t i = j.synced_end; i < j.lsns.size(); ++i) {
      auto it = records_.find(j.lsns[i]);
      if (it != records_.end()) {
        it->second.synced_mask |= 1u << d;
        counters_.synced_records.fetch_add(1, std::memory_order_relaxed);
      }
    }
    j.synced_end = j.lsns.size();
    ++advanced;
    counters_.fsyncs.fetch_add(1, std::memory_order_relaxed);
    cost += options_.fsync_ns;
  }
  counters_.mutation_ns.fetch_add(static_cast<uint64_t>(cost),
                                  std::memory_order_relaxed);
  return advanced;
}

uint64_t JournalCoordinator::ApplyReady(
    uint64_t budget,
    const std::function<void(const MutationRecord&)>& apply_fn) {
  const int quorum = replicas_ != nullptr ? replicas_->quorum() : 1;
  uint64_t applied = 0;
  TimeNs cost = 0;
  while (!records_.empty() && (budget == 0 || applied < budget)) {
    auto it = records_.begin();
    // Strict prefix order: visible page state is always a prefix of the
    // mutation stream, which is what makes a replayed run bit-identical to
    // an uninterrupted one. A gap (crash-lost record awaiting
    // resubmission) or an under-quorum record stalls the applier.
    if (it->first != applied_lsn() + 1) break;
    if (std::popcount(it->second.synced_mask) < quorum) {
      counters_.quorum_stalls.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    apply_fn(it->second.rec);
    applied_lsn_.store(it->first, std::memory_order_release);
    records_.erase(it);
    pending_count_.fetch_sub(1, std::memory_order_relaxed);
    counters_.applied.fetch_add(1, std::memory_order_relaxed);
    cost += options_.apply_ns;
    ++applied;
  }
  counters_.mutation_ns.fetch_add(static_cast<uint64_t>(cost),
                                  std::memory_order_relaxed);
  return applied;
}

void JournalCoordinator::Crash(uint64_t crash_seed) {
  counters_.crashes.fetch_add(1, std::memory_order_relaxed);
  for (int d = 0; d < n_devices_; ++d) {
    DeviceJournal& j = journals_[d];
    const size_t unsynced = j.lsns.size() - j.synced_end;
    // Injector-chosen cut: how much of the unsynced tail made it to media
    // before power was lost. Pure function of (crash_seed, device), so a
    // crashed run is reproducible.
    SplitMix64 sm(crash_seed ^
                  (static_cast<uint64_t>(d) + 1) * 0x9e3779b97f4a7c15ull);
    sm.Next();  // decouple from the raw key
    const uint64_t r = sm.Next();
    const size_t kept = unsynced == 0 ? 0 : static_cast<size_t>(r % (unsynced + 1));
    const size_t cut = j.synced_end + kept;
    for (size_t i = cut; i < j.lsns.size(); ++i) {
      auto it = records_.find(j.lsns[i]);
      if (it != records_.end()) it->second.appended_mask &= ~(1u << d);
    }
    j.lsns.resize(cut);
    // The last record of a partially flushed tail may be torn: its bytes
    // straddled the cut. One seed bit decides; the CRC check at recovery
    // is what actually catches it.
    if (kept > 0 && kept < unsynced && (r >> 63) != 0) {
      auto it = records_.find(j.lsns.back());
      if (it != records_.end()) it->second.torn = true;
    }
    // Whatever survived is on media now.
    j.synced_end = j.lsns.size();
  }
  // In-memory state that never reached any journal is gone.
  uint64_t lost = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.appended_mask == 0) {
      it = records_.erase(it);
      ++lost;
    } else {
      // The unsynced in-memory ack state is gone too; survivors will be
      // re-marked durable by Recover.
      it->second.synced_mask = 0;
      ++it;
    }
  }
  counters_.truncated.fetch_add(lost, std::memory_order_relaxed);
  pending_count_.fetch_sub(lost, std::memory_order_relaxed);
}

uint64_t JournalCoordinator::Recover() {
  counters_.recovers.fetch_add(1, std::memory_order_relaxed);
  // Pass 1: discard torn or CRC-damaged survivors (and scrub them from the
  // device journals so MissingLsns sees them as lost).
  uint64_t torn = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.torn || !VerifyRecord(it->second.rec)) {
      const uint64_t lsn = it->first;
      for (auto& j : journals_) {
        auto pos = std::find(j.lsns.begin(), j.lsns.end(), lsn);
        if (pos != j.lsns.end()) {
          j.lsns.erase(pos);
          j.synced_end = j.lsns.size();
        }
      }
      it = records_.erase(it);
      ++torn;
    } else {
      ++it;
    }
  }
  counters_.torn.fetch_add(torn, std::memory_order_relaxed);
  counters_.truncated.fetch_add(torn, std::memory_order_relaxed);
  pending_count_.fetch_sub(torn, std::memory_order_relaxed);
  // Pass 2: survivors are on media — re-mark them durable on every device
  // journal that holds them, and count the replay above the (durable,
  // checkpoint-backed) applied watermark.
  uint64_t replayed = 0;
  for (auto& [lsn, entry] : records_) {
    entry.synced_mask = entry.appended_mask;
    if (lsn > applied_lsn()) ++replayed;
  }
  counters_.replayed.fetch_add(replayed, std::memory_order_relaxed);
  return replayed;
}

std::vector<uint64_t> JournalCoordinator::MissingLsns(
    uint64_t through_lsn) const {
  std::vector<uint64_t> missing;
  for (uint64_t lsn = applied_lsn() + 1; lsn <= through_lsn; ++lsn) {
    if (records_.find(lsn) == records_.end()) missing.push_back(lsn);
  }
  return missing;
}

double JournalCoordinator::WriteAmplification() const {
  const uint64_t logical =
      counters_.logical_bytes.load(std::memory_order_relaxed);
  if (logical == 0) return 0.0;
  const uint64_t physical =
      counters_.journal_bytes.load(std::memory_order_relaxed) +
      counters_.applied_page_bytes.load(std::memory_order_relaxed);
  return static_cast<double>(physical) / static_cast<double>(logical);
}

}  // namespace gids::storage
