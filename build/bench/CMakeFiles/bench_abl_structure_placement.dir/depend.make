# Empty dependencies file for bench_abl_structure_placement.
# This may be replaced when dependencies are built.
