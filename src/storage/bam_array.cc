#include "storage/bam_array.h"

#include <cstring>
#include <optional>

#include "common/check.h"

namespace gids::storage {

BamArray::BamArray(StorageArray* storage, SoftwareCache* cache)
    : storage_(storage), cache_(cache) {
  GIDS_CHECK(storage_ != nullptr);
  if (cache_ != nullptr) {
    GIDS_CHECK(cache_->line_bytes() == storage_->page_bytes());
  }
}

Status BamArray::ReadPage(uint64_t page, std::span<std::byte> out,
                          GatherCounts* counts, uint32_t reuses) {
  GIDS_CHECK(counts != nullptr);
  if (out.size() != page_bytes()) {
    return Status::InvalidArgument("output size must equal page size");
  }
  if (cache_ != nullptr) {
    // LookupInto copies under the owning shard's lock, so a concurrent
    // insertion into the same shard cannot tear the payload. A hit-time
    // integrity mismatch surfaces here as a miss (the line was
    // quarantined) and falls through to the repairing storage read.
    if (cache_->LookupInto(page, out, reuses)) {
      ++counts->cache_hits;
      return Status::OK();
    }
  }
  StorageArray::ReadOutcome oc;
  GIDS_RETURN_IF_ERROR(storage_->ReadPage(page, out, &oc));
  ++counts->storage_reads;
  if (cache_ != nullptr) {
    cache_->Insert(page, out,
                   oc.crc_known ? std::optional<uint32_t>(oc.crc)
                                : std::nullopt,
                   oc.served_corrupt);
  }
  return Status::OK();
}

Status BamArray::TouchPage(uint64_t page, GatherCounts* counts,
                           uint32_t reuses) {
  GIDS_CHECK(counts != nullptr);
  if (cache_ != nullptr && cache_->Touch(page, reuses)) {
    ++counts->cache_hits;
    return Status::OK();
  }
  StorageArray::ReadOutcome oc;
  GIDS_RETURN_IF_ERROR(storage_->NoteRead(page, &oc));
  ++counts->storage_reads;
  if (cache_ != nullptr) cache_->InsertMeta(page, oc.served_corrupt);
  return Status::OK();
}

}  // namespace gids::storage
