#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "common/crc32c.h"
#include "common/status.h"
#include "core/gids_loader.h"
#include "graph/feature_store.h"
#include "obs/metric_registry.h"
#include "storage/bam_array.h"
#include "storage/fault_injector.h"
#include "storage/feature_gather.h"
#include "storage/page_integrity.h"
#include "storage/software_cache.h"
#include "storage/storage_array.h"
#include "tests/test_util.h"

namespace gids::storage {
namespace {

// 64 nodes x 1024 floats over 4 KiB pages: node i occupies exactly page i,
// so corrupt-node counts can be predicted from page-level decisions.
struct IntegrityRig {
  IntegrityRig(const FaultOptions& faults, const RetryPolicy& retry,
               const IntegrityOptions& integrity, ThreadPool* pool = nullptr)
      : fs(64, 1024) {
    auto dev = std::make_unique<FunctionBlockDevice>(
        fs.num_pages(), fs.page_bytes(),
        [this](uint64_t lba, std::span<std::byte> out) {
          fs.FillPage(lba, out);
        });
    array = std::make_unique<StorageArray>(std::move(dev),
                                           sim::SsdSpec::IntelOptane(), 1);
    if (faults.enabled()) array->EnableFaultInjection(faults, retry);
    array->EnableIntegrity(integrity);
    cache = std::make_unique<SoftwareCache>(16 * 4096, 4096, 0xcac4e,
                                            /*store_payloads=*/true);
    if (integrity.verify_cache_fill || integrity.verify_cache_hit) {
      cache->EnableIntegrity(&array->checksummer(),
                             integrity.verify_cache_fill,
                             integrity.verify_cache_hit);
    }
    bam = std::make_unique<BamArray>(array.get(), cache.get());
    gatherer = std::make_unique<FeatureGatherer>(&fs, bam.get(),
                                                 /*hot_buffer=*/nullptr, pool);
  }

  graph::FeatureStore fs;
  std::unique_ptr<StorageArray> array;
  std::unique_ptr<SoftwareCache> cache;
  std::unique_ptr<BamArray> bam;
  std::unique_ptr<FeatureGatherer> gatherer;
};

std::vector<graph::NodeId> AllNodes() {
  std::vector<graph::NodeId> nodes(64);
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<graph::NodeId>(i);
  }
  return nodes;
}

TEST(StatusTest, DataLossCodeAndFactory) {
  Status s = Status::DataLoss("page 7 unrepairable");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.ToString().find("DataLoss"), std::string::npos);
}

TEST(PageChecksummerTest, TagsCatchMisdirectedReads) {
  PageChecksummer cs(0xc3c32c);
  std::vector<std::byte> page(256, std::byte{0x42});
  // Identical bytes at different page addresses must carry different sums.
  EXPECT_NE(cs.Checksum(3, page), cs.Checksum(4, page));
  // Different seeds decorrelate the checksum spaces.
  PageChecksummer other(0x1234);
  EXPECT_NE(cs.Checksum(3, page), other.Checksum(3, page));
  // The tag is an XOR layer over the raw CRC.
  EXPECT_EQ(cs.Checksum(3, page) ^ cs.PageTag(3),
            Crc32c(page.data(), page.size()));
}

TEST(FaultInjectorTest, CorruptionIsDeterministicAndAlwaysDetected) {
  FaultOptions fo;
  fo.corruption_rate = 0.5;
  fo.fault_seed = 21;
  FaultInjector inj(fo, RetryPolicy{});
  PageChecksummer cs(0xc3c32c);
  bool any_corrupt = false;
  for (uint64_t page = 0; page < 128; ++page) {
    auto a = inj.Peek(page, 0, 0, 11000);
    ASSERT_EQ(a.corrupt, inj.Peek(page, 0, 0, 11000).corrupt);
    if (!a.corrupt) continue;
    any_corrupt = true;
    std::vector<std::byte> clean(512, std::byte{0x5a});
    const uint32_t sum = cs.Checksum(page, clean);
    std::vector<std::byte> bad = clean;
    inj.Corrupt(page, 0, bad);
    EXPECT_NE(bad, clean) << "Corrupt() was a no-op on page " << page;
    // The burst is <= 32 bits, so CRC-32C detection is certain.
    EXPECT_NE(cs.Checksum(page, bad), sum);
    // Same (page, attempt) => same pattern; a second application undoes it.
    inj.Corrupt(page, 0, bad);
    EXPECT_EQ(bad, clean);
  }
  EXPECT_TRUE(any_corrupt);
}

TEST(FaultInjectorTest, CorruptionOnlyRidesSuccessfulAttempts) {
  FaultOptions fo;
  fo.corruption_rate = 1.0;
  fo.fault_rate = 0.3;
  FaultInjector inj(fo, RetryPolicy{});
  for (uint64_t page = 0; page < 64; ++page) {
    auto a = inj.Peek(page, 0, 0, 11000);
    if (a.outcome != FaultInjector::Outcome::kOk) {
      EXPECT_FALSE(a.corrupt) << "loud failure also corrupted, page " << page;
    } else {
      EXPECT_TRUE(a.corrupt);
    }
  }
}

// Silent corruption without verification: the epoch "succeeds" but the
// gathered bytes are wrong — the hazard the integrity layer exists for.
TEST(IntegrityTest, UndetectedCorruptionServesWrongBytes) {
  FaultOptions fo;
  fo.corruption_rate = 1.0;
  IntegrityRig rig(fo, RetryPolicy{}, IntegrityOptions{});
  IntegrityRig clean(FaultOptions{}, RetryPolicy{}, IntegrityOptions{});
  auto nodes = AllNodes();
  FeatureGatherCounts counts;
  auto out = rig.gatherer->Gather(nodes, &counts);
  auto want = clean.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(*out, *want);
  EXPECT_GT(rig.array->fault_injector()->pages_corrupted(), 0u);
  EXPECT_EQ(counts.corrupt_nodes, 0u);  // nobody noticed
  EXPECT_EQ(rig.array->checksum_mismatches_total(), 0u);
}

// Verify-on-read turns the same corruption into repairs: the gathered
// bytes come out bit-identical to a corruption-free run.
TEST(IntegrityTest, VerifyReadsRepairsToBitIdenticalOutput) {
  RetryPolicy rp;
  rp.max_retries = 8;  // deep enough that no page exhausts at rate 0.3
  FaultOptions fo;
  fo.corruption_rate = 0.3;
  IntegrityOptions io;
  io.verify_reads = true;
  IntegrityRig rig(fo, rp, io);
  IntegrityRig clean(FaultOptions{}, RetryPolicy{}, IntegrityOptions{});

  auto nodes = AllNodes();
  FeatureGatherCounts fc, cc;
  auto repaired = rig.gatherer->Gather(nodes, &fc);
  auto want = clean.gatherer->Gather(nodes, &cc);
  ASSERT_TRUE(repaired.ok());
  ASSERT_EQ(rig.array->data_loss_total(), 0u)
      << "seed produced an unrepairable page; test premise broken";
  EXPECT_EQ(*repaired, *want);
  EXPECT_EQ(fc.corrupt_nodes, 0u);
  EXPECT_EQ(fc.degraded_nodes, 0u);
  EXPECT_GT(rig.array->integrity_repairs_total(), 0u);
  EXPECT_GT(rig.array->checksum_mismatches_total(), 0u);
  EXPECT_GT(rig.array->verified_reads_total(), 0u);
  // Verification time is charged into the retry-penalty ledger.
  EXPECT_GE(rig.array->retry_penalty_ns_total(),
            rig.array->verified_reads_total() *
                static_cast<uint64_t>(io.crc_verify_ns));
}

// Unrepairable corruption dead-letters as DataLoss and zero-fills with an
// exact corrupt_nodes count; the epoch still completes.
TEST(IntegrityTest, UnrepairableCorruptionCountsExactCorruptNodes) {
  RetryPolicy rp;
  rp.max_retries = 2;
  FaultOptions fo;
  fo.corruption_rate = 1.0;  // every attempt corrupts
  IntegrityOptions io;
  io.verify_reads = true;
  IntegrityRig rig(fo, rp, io);
  std::vector<graph::NodeId> nodes = {1, 5, 9, 12, 40, 63};
  FeatureGatherCounts counts;
  std::vector<float> out(nodes.size() * 1024, 1.0f);
  ASSERT_TRUE(
      rig.gatherer->Gather(nodes, std::span<float>(out), &counts).ok());
  EXPECT_EQ(counts.corrupt_nodes, nodes.size());
  EXPECT_EQ(counts.degraded_nodes, 0u);  // DataLoss, not Unavailable
  EXPECT_EQ(rig.array->data_loss_total(), nodes.size());
  EXPECT_EQ(rig.array->dead_letters_total(), nodes.size());
  EXPECT_EQ(rig.cache->resident_lines(), 0u);  // never poisons the cache
  for (float v : out) EXPECT_EQ(v, 0.0f);  // zero-fill-with-flag contract
}

// A single direct read surfaces Status::DataLoss (not Unavailable).
TEST(IntegrityTest, UnrepairableReadSurfacesDataLoss) {
  RetryPolicy rp;
  rp.max_retries = 1;
  FaultOptions fo;
  fo.corruption_rate = 1.0;
  IntegrityOptions io;
  io.verify_reads = true;
  IntegrityRig rig(fo, rp, io);
  std::vector<std::byte> buf(rig.fs.page_bytes());
  Status s = rig.array->ReadPage(0, buf);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  Status counting = rig.array->NoteRead(1);
  EXPECT_EQ(counting.code(), StatusCode::kDataLoss);
}

// Counting mode makes the same detection/repair decisions as the
// functional path (the <= 32-bit burst makes CRC detection certain), so
// timing-only benchmark runs report the same integrity counters.
TEST(IntegrityTest, CountingModeMatchesFunctionalCounters) {
  RetryPolicy rp;
  rp.max_retries = 2;
  FaultOptions fo;
  fo.corruption_rate = 0.4;
  IntegrityOptions io;
  io.verify_reads = true;
  IntegrityRig functional(fo, rp, io);
  IntegrityRig counting(fo, rp, io);
  auto nodes = AllNodes();
  FeatureGatherCounts fc, cc;
  ASSERT_TRUE(functional.gatherer->Gather(nodes, &fc).ok());
  ASSERT_TRUE(counting.gatherer->GatherCountsOnly(nodes, &cc).ok());
  EXPECT_EQ(fc.corrupt_nodes, cc.corrupt_nodes);
  EXPECT_EQ(fc.degraded_nodes, cc.degraded_nodes);
  EXPECT_EQ(functional.array->verified_reads_total(),
            counting.array->verified_reads_total());
  EXPECT_EQ(functional.array->checksum_mismatches_total(),
            counting.array->checksum_mismatches_total());
  EXPECT_EQ(functional.array->integrity_repairs_total(),
            counting.array->integrity_repairs_total());
  EXPECT_EQ(functional.array->data_loss_total(),
            counting.array->data_loss_total());
  EXPECT_EQ(functional.array->retry_penalty_ns_total(),
            counting.array->retry_penalty_ns_total());
}

TEST(CacheIntegrityTest, FillVerificationRejectsCorruptPayloads) {
  PageChecksummer cs(0xc3c32c);
  SoftwareCache cache(16 * 64, 64, 0xcac4e, /*store_payloads=*/true, 1);
  cache.EnableIntegrity(&cs, /*verify_fill=*/true, /*verify_hit=*/false);
  std::vector<std::byte> payload(64, std::byte{0x7});
  EXPECT_TRUE(cache.Insert(5, payload, cs.Checksum(5, payload)));
  EXPECT_TRUE(cache.Contains(5));
  // Wrong checksum: the payload does not match its write-time sum.
  EXPECT_FALSE(cache.Insert(6, payload, cs.Checksum(5, payload)));
  EXPECT_FALSE(cache.Contains(6));
  // Corrupt-hinted fills (counting mode) are rejected too.
  EXPECT_FALSE(cache.Insert(7, payload, std::nullopt, /*corrupt_hint=*/true));
  EXPECT_FALSE(cache.InsertMeta(8, /*corrupt_hint=*/true));
  EXPECT_EQ(cache.stats().fill_rejects, 3u);
  // A checksum-less clean insert is allowed (no sum to verify against).
  EXPECT_TRUE(cache.Insert(9, payload));
}

TEST(CacheIntegrityTest, HitVerificationQuarantinesMismatchedLines) {
  PageChecksummer cs(0xc3c32c);
  SoftwareCache cache(16 * 64, 64, 0xcac4e, /*store_payloads=*/true, 1);
  cache.EnableIntegrity(&cs, /*verify_fill=*/false, /*verify_hit=*/true);
  std::vector<std::byte> payload(64, std::byte{0x7});
  // Fill verification is off, so a line whose payload does not match its
  // carried checksum can become resident (a rotted line).
  ASSERT_TRUE(cache.Insert(5, payload, cs.Checksum(5, payload) ^ 1));
  ASSERT_TRUE(cache.Contains(5));
  cache.AddFutureReuse(5, 2);  // pin survives the quarantine
  EXPECT_EQ(cache.Lookup(5), nullptr);  // hit becomes a quarantined miss
  EXPECT_FALSE(cache.Contains(5));
  EXPECT_EQ(cache.stats().quarantines, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The repairing re-insert re-pins via the surviving future-reuse entry.
  ASSERT_TRUE(cache.Insert(5, payload, cs.Checksum(5, payload)));
  EXPECT_EQ(cache.pinned_lines(), 1u);
  EXPECT_NE(cache.Lookup(5), nullptr);
}

TEST(CacheIntegrityTest, ScrubFindsAndQuarantinesRottenLines) {
  PageChecksummer cs(0xc3c32c);
  SoftwareCache cache(16 * 64, 64, 0xcac4e, /*store_payloads=*/true, 1);
  cache.EnableIntegrity(&cs, /*verify_fill=*/false, /*verify_hit=*/false);
  std::vector<std::byte> payload(64, std::byte{0x7});
  for (uint64_t p = 0; p < 8; ++p) {
    uint32_t crc = cs.Checksum(p, payload);
    if (p == 3 || p == 6) crc ^= 1;  // two rotten lines
    ASSERT_TRUE(cache.Insert(p, payload, crc));
  }
  // A bounded sweep resumes from the persistent cursor: two sweeps of 4
  // lines cover the whole (single-shard) cache.
  auto first = cache.ScrubShard(0, 4);
  auto second = cache.ScrubShard(0, 4);
  EXPECT_EQ(first.scanned + second.scanned, 8u);
  EXPECT_EQ(first.errors + second.errors, 2u);
  EXPECT_EQ(cache.resident_lines(), 6u);
  EXPECT_FALSE(cache.Contains(3));
  EXPECT_FALSE(cache.Contains(6));
  EXPECT_EQ(cache.stats().scrubbed_lines, 8u);
  EXPECT_EQ(cache.stats().scrub_errors, 2u);
  // A further sweep of the now-clean cache finds nothing.
  auto third = cache.ScrubShard(0, 64);
  EXPECT_EQ(third.errors, 0u);
}

// The loader's background scrubber walks the cache (and CPU buffer) in
// virtual time and exports its accounting; an epoch under corruption with
// verify-on-read completes and reports repairs through the registry.
TEST(IntegrityTest, LoaderScrubsAndRepairsUnderCorruption) {
  obs::MetricRegistry registry;
  gids::testing::LoaderRig rig;
  core::GidsOptions opts;
  opts.counting_mode = true;
  opts.corruption_rate = 0.01;
  opts.verify_reads = true;
  opts.verify_cache_fill = true;
  opts.verify_cache_hit = true;
  opts.scrub_pages_per_iter = 16;
  opts.io_max_retries = 4;
  opts.metrics = &registry;
  core::GidsLoader loader(rig.dataset.get(), rig.sampler.get(),
                          rig.seeds.get(), rig.system.get(), opts);
  for (int i = 0; i < 20; ++i) {
    auto batch = loader.Next();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  }
  EXPECT_GT(loader.storage_array().integrity_repairs_total(), 0u);
  double scrub_pages = 0, repairs = 0;
  for (const auto& m : registry.Snapshot()) {
    if (m.name == "gids_scrub_pages_total") scrub_pages = m.value;
    if (m.name == "gids_storage_integrity_repairs_total") repairs = m.value;
  }
  EXPECT_GT(scrub_pages, 0.0);
  EXPECT_GT(repairs, 0.0);
}

}  // namespace
}  // namespace gids::storage
