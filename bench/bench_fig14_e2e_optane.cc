// Reproduces Figure 14: end-to-end GNN training time of the GIDS
// dataloader vs the DGL-mmap, Ginex, and BaM baselines with Intel Optane
// SSDs (GraphSAGE, 3-layer neighborhood sampling).
//
// Paper anchors (figure caption): GIDS achieves up to 17.28x, 37.21x, and
// 3.23x speedups over DGL-mmap, Ginex, and BaM. The DGL gap is far
// smaller than with the 980 Pro (Fig. 13) because Optane's ~11 us read
// latency makes serial page faults ~30x cheaper.
#include "bench/e2e_common.h"

namespace gids::bench {
namespace {

const sim::SsdSpec kSsd = sim::SsdSpec::IntelOptane();

void BM_E2E(benchmark::State& state, E2ECase c) {
  RunE2E(state, "FIG14", c, kSsd);
}

BENCHMARK_CAPTURE(BM_E2E, ogbn_papers100M,
                  E2ECase{graph::DatasetSpec::OgbnPapers100M(), 0, 0, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2E, igb_full,
                  E2ECase{graph::DatasetSpec::IgbFull(), 17.28, 37.21, 3.23})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2E, mag240m,
                  E2ECase{graph::DatasetSpec::Mag240M(), 0, 0, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2E, igbh_full,
                  E2ECase{graph::DatasetSpec::IgbhFull(), 17.28, 0, 3.23})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
