
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/model_zoo.cpp" "examples/CMakeFiles/model_zoo.dir/model_zoo.cpp.o" "gcc" "examples/CMakeFiles/model_zoo.dir/model_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gids_core.dir/DependInfo.cmake"
  "/root/repo/build/src/loaders/CMakeFiles/gids_loaders.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gids_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gids_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/gids_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gids_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
