#include "core/gids_loader.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace gids::core {
namespace {

using gids::testing::LoaderRig;

GidsOptions CountingOptions() {
  GidsOptions o;
  o.counting_mode = true;
  return o;
}

TEST(GidsLoaderTest, ProducesBatchesWithStats) {
  LoaderRig rig;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), CountingOptions());
  auto b = loader.Next();
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->stats.input_nodes, 0u);
  EXPECT_GT(b->stats.e2e_ns, 0);
  EXPECT_GT(b->stats.aggregation_ns, 0);
  EXPECT_EQ(b->stats.transfer_ns, 0);  // features land in GPU memory
  EXPECT_EQ(loader.name(), "GIDS");
}

TEST(GidsLoaderTest, MaterializedFeaturesMatchGroundTruth) {
  LoaderRig rig;
  GidsOptions opts;  // full functional mode
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);
  auto b = loader.Next();
  ASSERT_TRUE(b.ok());
  const auto& fs = rig.dataset->features;
  const auto& nodes = b->batch.input_nodes();
  ASSERT_EQ(b->features.size(), nodes.size() * fs.feature_dim());
  std::vector<float> expected(fs.feature_dim());
  for (size_t i = 0; i < nodes.size(); i += 7) {
    fs.FillFeature(nodes[i], expected);
    for (uint32_t j = 0; j < fs.feature_dim(); ++j) {
      ASSERT_EQ(b->features[i * fs.feature_dim() + j], expected[j])
          << "node " << nodes[i];
    }
  }
}

TEST(GidsLoaderTest, BamPresetDisablesEverything) {
  GidsOptions bam = GidsOptions::Bam();
  EXPECT_FALSE(bam.use_accumulator);
  EXPECT_FALSE(bam.use_window_buffering);
  EXPECT_FALSE(bam.use_cpu_buffer);
  LoaderRig rig;
  bam.counting_mode = true;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), bam);
  EXPECT_EQ(loader.name(), "BaM");
  auto b = loader.Next();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->stats.merged_group, 1u);
  EXPECT_EQ(b->stats.gather.cpu_buffer_hits, 0u);
  EXPECT_EQ(loader.cpu_buffer(), nullptr);
}

TEST(GidsLoaderTest, AccumulatorMergesIterations) {
  LoaderRig rig;  // batch 32, fanout (5,5): a few hundred accesses/iter
  GidsOptions opts = CountingOptions();
  opts.use_cpu_buffer = false;
  opts.use_window_buffering = false;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);
  auto b = loader.Next();
  ASSERT_TRUE(b.ok());
  // Optane threshold ~855 accesses; per-iteration ~ a few hundred ->
  // must merge more than one iteration.
  EXPECT_GT(b->stats.merged_group, 1u);
}

TEST(GidsLoaderTest, CpuBufferRedirectsTraffic) {
  LoaderRig rig;
  GidsOptions with = CountingOptions();
  with.cpu_buffer_fraction = 0.2;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), with);
  uint64_t cpu_hits = 0;
  for (int i = 0; i < 10; ++i) {
    auto b = loader.Next();
    ASSERT_TRUE(b.ok());
    cpu_hits += b->stats.gather.cpu_buffer_hits;
  }
  EXPECT_GT(cpu_hits, 0u);
  ASSERT_NE(loader.cpu_buffer(), nullptr);
  EXPECT_GT(loader.cpu_buffer()->num_pinned(), 0u);
}

TEST(GidsLoaderTest, WindowBufferingImprovesHitRatio) {
  // Fig. 11's mechanism on a small rig: same traffic, better hit ratio
  // with look-ahead pinning.
  auto run = [](bool window, int depth) {
    LoaderRig rig(0.01, 1.0 / 65536.0);
    GidsOptions opts;
    opts.counting_mode = true;
    opts.use_cpu_buffer = false;
    opts.use_window_buffering = window;
    opts.window_depth = depth;
    opts.gpu_cache_bytes = 96 * 4096;  // tiny cache to force pressure
    GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                      rig.system.get(), opts);
    uint64_t hits = 0;
    uint64_t reads = 0;
    for (int i = 0; i < 40; ++i) {
      auto b = loader.Next();
      GIDS_CHECK(b.ok());
      hits += b->stats.gather.gpu_cache_hits;
      reads += b->stats.gather.storage_reads;
    }
    return static_cast<double>(hits) / static_cast<double>(hits + reads);
  };
  double without = run(false, 0);
  double with = run(true, 8);
  EXPECT_GT(with, without);
}

TEST(GidsLoaderTest, FasterThanBamBaseline) {
  // Fig. 13/14's per-loader ordering at small scale: GIDS < BaM in E2E.
  LoaderRig gids_rig(0.01, 1.0 / 65536.0);
  LoaderRig bam_rig(0.01, 1.0 / 65536.0);
  GidsOptions gids_opts = CountingOptions();
  GidsOptions bam_opts = GidsOptions::Bam();
  bam_opts.counting_mode = true;
  GidsLoader gids(gids_rig.dataset.get(), gids_rig.sampler.get(),
                  gids_rig.seeds.get(), gids_rig.system.get(), gids_opts);
  GidsLoader bam(bam_rig.dataset.get(), bam_rig.sampler.get(),
                 bam_rig.seeds.get(), bam_rig.system.get(), bam_opts);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(gids.Next().ok());
    ASSERT_TRUE(bam.Next().ok());
  }
  EXPECT_LT(gids.elapsed_ns(), bam.elapsed_ns());
}

TEST(GidsLoaderTest, CountingAndFullModeAgreeOnTraffic) {
  LoaderRig a;
  LoaderRig b;
  GidsOptions full;
  GidsOptions counting = CountingOptions();
  GidsLoader full_loader(a.dataset.get(), a.sampler.get(), a.seeds.get(),
                         a.system.get(), full);
  GidsLoader count_loader(b.dataset.get(), b.sampler.get(), b.seeds.get(),
                          b.system.get(), counting);
  for (int i = 0; i < 8; ++i) {
    auto fb = full_loader.Next();
    auto cb = count_loader.Next();
    ASSERT_TRUE(fb.ok());
    ASSERT_TRUE(cb.ok());
    EXPECT_EQ(fb->stats.gather.storage_reads, cb->stats.gather.storage_reads)
        << "iteration " << i;
    EXPECT_EQ(fb->stats.gather.gpu_cache_hits, cb->stats.gather.gpu_cache_hits)
        << "iteration " << i;
    EXPECT_EQ(fb->stats.e2e_ns, cb->stats.e2e_ns) << "iteration " << i;
  }
}

TEST(GidsLoaderTest, DeterministicAcrossRuns) {
  auto run = []() {
    LoaderRig rig;
    GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                      rig.system.get(), CountingOptions());
    TimeNs total = 0;
    for (int i = 0; i < 12; ++i) {
      auto b = loader.Next();
      GIDS_CHECK(b.ok());
      total += b->stats.e2e_ns;
    }
    return total;
  };
  EXPECT_EQ(run(), run());
}

TEST(GidsLoaderTest, AccumulatorRespectsMaxMergedIterations) {
  LoaderRig rig;
  GidsOptions opts = CountingOptions();
  opts.max_merged_iterations = 2;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);
  for (int i = 0; i < 6; ++i) {
    auto b = loader.Next();
    ASSERT_TRUE(b.ok());
    EXPECT_LE(b->stats.merged_group, 2u);
  }
}

}  // namespace
}  // namespace gids::core
