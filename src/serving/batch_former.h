#ifndef GIDS_SERVING_BATCH_FORMER_H_
#define GIDS_SERVING_BATCH_FORMER_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "serving/request.h"

namespace gids::serving {

/// Merges concurrent admitted requests into mini-batches under a
/// batch-window/size policy: a batch opens when a request arrives with no
/// batch open, and closes when it reaches `max_requests` (immediately, on
/// the closing arrival) or when its oldest member has waited `window_ns`
/// (on the window-expiry event the caller schedules at open + window).
///
/// Each opened batch gets a fresh `generation()`; the caller passes it
/// back with the expiry event so an event raced by a size-cap close (the
/// batch it was scheduled for no longer open) is recognized as stale and
/// ignored. Purely virtual-time driven, hence deterministic.
class BatchFormer {
 public:
  BatchFormer(uint32_t max_requests, TimeNs window_ns);

  /// Adds one admitted request at virtual time `now`. Returns true when
  /// this arrival closed the batch by size, moving it into `*closed`.
  /// `*opened` is set true when the request opened a fresh batch — the
  /// caller must then schedule a window-expiry event for `generation()`
  /// at `now + window_ns()`.
  bool Add(Request request, TimeNs now, FormedBatch* closed, bool* opened);

  /// Window expiry for generation `generation` at time `now`. Returns
  /// true when the open batch was closed into `*closed`; false when the
  /// event is stale (that batch already closed by size).
  bool ExpireWindow(uint64_t generation, TimeNs now, FormedBatch* closed);

  TimeNs window_ns() const { return window_ns_; }
  uint32_t max_requests() const { return max_requests_; }
  /// Generation of the currently open batch (valid after *opened).
  uint64_t generation() const { return generation_; }
  uint32_t open_size() const {
    return static_cast<uint32_t>(open_.requests.size());
  }
  uint64_t batches_formed() const { return batches_formed_; }

 private:
  void Close(TimeNs now, FormedBatch* closed);

  uint32_t max_requests_;
  TimeNs window_ns_;
  FormedBatch open_;
  bool has_open_ = false;
  uint64_t generation_ = 0;       // bumps on every open
  uint64_t next_batch_id_ = 0;
  uint64_t batches_formed_ = 0;
};

}  // namespace gids::serving

#endif  // GIDS_SERVING_BATCH_FORMER_H_
