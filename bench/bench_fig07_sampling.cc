// Reproduces Figure 7: graph sampling time of CPU vs GPU sampling on
// graphs of increasing size (IGB-tiny, IGB-small, IGB-medium).
//
// Paper anchor: the GPU outperforms the CPU on all three datasets, with
// the gap growing past 3x on IGB-medium — the CPU sampler becomes
// memory-latency-bound once the structure outgrows its effective LLC,
// while the GPU hides that latency with thread-level parallelism (§3.5).
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

struct Fig7Case {
  graph::DatasetSpec spec;
  double proxy_scale;  // functional proxy for sampling counts
  double paper_min_speedup;
};

void BM_SamplingCpuVsGpu(benchmark::State& state, Fig7Case c) {
  ProxyConfig cfg;
  cfg.spec = c.spec;
  cfg.scale = c.proxy_scale;
  cfg.batch_size = 1024;
  cfg.fanouts = {10, 5, 5};
  Rig rig = BuildRig(cfg);

  // The per-edge CPU cost depends on the *paper-scale* structure size
  // (the proxy only provides functional edge counts).
  uint64_t paper_structure_bytes =
      c.spec.paper_num_edges * sizeof(graph::NodeId) +
      (c.spec.paper_num_nodes + 1) * sizeof(graph::EdgeIdx);

  sim::CpuModel cpu(sim::CpuSpec::EpycServer());
  sim::GpuModel gpu(sim::GpuSpec::A100_40GB());

  TimeNs cpu_total = 0;
  TimeNs gpu_total = 0;
  constexpr int kBatches = 10;
  for (auto _ : state) {
    cpu_total = 0;
    gpu_total = 0;
    for (int i = 0; i < kBatches; ++i) {
      auto batch = rig.sampler->Sample(rig.seeds->NextBatch());
      cpu_total +=
          cpu.SamplingTime(batch.total_edges(), paper_structure_bytes);
      auto layer_edges = batch.LayerEdgeCounts();
      gpu_total += gpu.SamplingTime(layer_edges.data(),
                                    static_cast<int>(layer_edges.size()),
                                    paper_structure_bytes);
    }
  }
  double speedup = static_cast<double>(cpu_total) / gpu_total;
  state.counters["cpu_ms"] = NsToMs(cpu_total) / kBatches;
  state.counters["gpu_ms"] = NsToMs(gpu_total) / kBatches;
  state.counters["gpu_speedup"] = speedup;
  ReportRow("FIG07", c.spec.name + " CPU sampling",
            NsToMs(cpu_total) / kBatches, 0, "ms/iter");
  ReportRow("FIG07", c.spec.name + " GPU sampling",
            NsToMs(gpu_total) / kBatches, 0, "ms/iter");
  ReportRow("FIG07", c.spec.name + " GPU speedup", speedup,
            c.paper_min_speedup, "x (paper value is a lower bound)");
}

BENCHMARK_CAPTURE(BM_SamplingCpuVsGpu, igb_tiny,
                  Fig7Case{graph::DatasetSpec::IgbTiny(), 1.0, 1.0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SamplingCpuVsGpu, igb_small,
                  Fig7Case{graph::DatasetSpec::IgbSmall(), 1.0, 1.0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SamplingCpuVsGpu, igb_medium,
                  Fig7Case{graph::DatasetSpec::IgbMedium(), 0.1, 3.0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
