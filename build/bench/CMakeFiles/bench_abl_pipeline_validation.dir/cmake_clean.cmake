file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_pipeline_validation.dir/bench_abl_pipeline_validation.cc.o"
  "CMakeFiles/bench_abl_pipeline_validation.dir/bench_abl_pipeline_validation.cc.o.d"
  "bench_abl_pipeline_validation"
  "bench_abl_pipeline_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_pipeline_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
