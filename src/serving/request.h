#ifndef GIDS_SERVING_REQUEST_H_
#define GIDS_SERVING_REQUEST_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "graph/types.h"

namespace gids::serving {

/// One user inference query: "embed these seed nodes" with a latency SLO.
/// Requests are identified by a dense id assigned at generation time; the
/// id doubles as the sampler iteration index, so each request samples from
/// its own deterministic RNG stream no matter which batch it lands in or
/// which lane executes it (the serving analogue of the loader's
/// per-iteration streams).
struct Request {
  uint64_t id = 0;
  TimeNs arrival_ns = 0;
  TimeNs deadline_ns = 0;  // arrival + SLO budget
  std::vector<graph::NodeId> seeds;
};

/// A closed mini-batch of concurrent requests, merged by the BatchFormer
/// under its window/size policy and executed as one sampling + gather
/// scope (so page coalescing spans the member requests).
struct FormedBatch {
  uint64_t id = 0;
  TimeNs open_ns = 0;   // arrival of the first member
  TimeNs close_ns = 0;  // when the size cap or window expiry closed it
  std::vector<Request> requests;
};

/// Terminal accounting for one admitted request; the serving analogue of
/// a loader IterationStats row. `completion_ns - arrival_ns` includes the
/// queue/batch wait, not just service.
struct RequestOutcome {
  uint64_t id = 0;
  uint64_t batch_id = 0;
  TimeNs arrival_ns = 0;
  TimeNs completion_ns = 0;
  bool on_time = false;
};

}  // namespace gids::serving

#endif  // GIDS_SERVING_REQUEST_H_
