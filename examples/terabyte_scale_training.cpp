// Large-scale scenario: train on a proxy of the terabyte-scale IGB-Full
// dataset (269M nodes / 1.1 TB of features at paper scale, scaled 1/256
// here together with the machine's memory capacities) and compare all four
// dataloaders the paper evaluates: DGL-mmap, Ginex, BaM, and GIDS.
//
// This is the workload of the paper's Figs. 13/14 as a single runnable
// program; pass "optane" (default) or "samsung" to pick the SSD.
//
// Build & run:  ./build/examples/terabyte_scale_training [optane|samsung]
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/gids_loader.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "graph/pagerank.h"
#include "loaders/ginex_loader.h"
#include "loaders/mmap_loader.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/system_model.h"

namespace {

constexpr double kScale = 1.0 / 256.0;

struct RunOutput {
  double iter_ms;
  double hit_ratio;
  uint64_t storage_reads;
};

RunOutput RunOne(const char* name, const gids::graph::Dataset& dataset,
                 const gids::sim::SystemModel& system,
                 const std::vector<gids::graph::NodeId>* hot_order) {
  using namespace gids;
  sampling::NeighborSampler sampler(&dataset.graph,
                                    {.fanouts = {10, 5, 5}}, 11);
  sampling::SeedIterator seeds(dataset.train_ids, /*batch_size=*/16, 13);

  std::unique_ptr<loaders::DataLoader> loader;
  if (std::strcmp(name, "DGL-mmap") == 0) {
    loader = std::make_unique<loaders::MmapLoader>(
        &dataset, &sampler, &seeds, &system,
        loaders::MmapLoaderOptions{.counting_mode = true});
  } else if (std::strcmp(name, "Ginex") == 0) {
    loader = std::make_unique<loaders::GinexLoader>(
        &dataset, &sampler, &seeds, &system,
        loaders::GinexLoaderOptions{.counting_mode = true});
  } else {
    core::GidsOptions opts = std::strcmp(name, "BaM") == 0
                                 ? core::GidsOptions::Bam()
                                 : core::GidsOptions{};
    opts.counting_mode = true;
    if (std::strcmp(name, "GIDS") == 0) opts.hot_node_order = hot_order;
    loader = std::make_unique<core::GidsLoader>(&dataset, &sampler, &seeds,
                                                &system, opts);
  }

  core::Trainer trainer(&dataset, {.warmup_iterations = 200,
                                   .measure_iterations = 30});
  auto result = trainer.Run(*loader);
  GIDS_CHECK_OK(result.status());
  return RunOutput{result->mean_iteration_ms(),
                   result->gpu_cache_hit_ratio(),
                   result->measured.gather.storage_reads};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gids;
  bool samsung = argc > 1 && std::strcmp(argv[1], "samsung") == 0;
  sim::SsdSpec ssd = samsung ? sim::SsdSpec::Samsung980Pro()
                             : sim::SsdSpec::IntelOptane();
  std::printf("SSD: %s | dataset: IGB-Full proxy at 1/%d scale\n",
              ssd.name.c_str(), static_cast<int>(1.0 / kScale));

  auto dataset_or =
      graph::BuildDataset(graph::DatasetSpec::IgbFull(), kScale, 42);
  GIDS_CHECK_OK(dataset_or.status());
  graph::Dataset dataset = std::move(dataset_or).value();
  std::printf("proxy: %u nodes, %llu edges, %.2f GB features "
              "(vs %.2f GB scaled CPU memory)\n\n",
              dataset.graph.num_nodes(),
              static_cast<unsigned long long>(dataset.graph.num_edges()),
              static_cast<double>(dataset.feature_bytes()) / 1e9,
              512.0 / 256.0);

  sim::SystemConfig cfg = sim::SystemConfig::Paper(ssd);
  cfg.memory_scale = kScale;
  sim::SystemModel system(cfg);

  std::vector<double> score =
      graph::WeightedReversePageRank(dataset.graph, {});
  std::vector<graph::NodeId> hot_order = graph::RankNodesByScore(score);

  const char* loaders[] = {"DGL-mmap", "Ginex", "BaM", "GIDS"};
  double dgl_ms = 0;
  std::printf("%-10s %14s %14s %16s\n", "loader", "virt ms/iter",
              "cache hit %", "storage reads");
  for (const char* name : loaders) {
    RunOutput out = RunOne(name, dataset, system, &hot_order);
    if (std::strcmp(name, "DGL-mmap") == 0) dgl_ms = out.iter_ms;
    std::printf("%-10s %14.3f %13.1f%% %16llu\n", name, out.iter_ms,
                100.0 * out.hit_ratio,
                static_cast<unsigned long long>(out.storage_reads));
  }
  std::printf("\nGIDS speedup over DGL-mmap: %.1fx\n",
              dgl_ms / RunOne("GIDS", dataset, system, &hot_order).iter_ms);
  return 0;
}
