# Empty dependencies file for loaders_test.
# This may be replaced when dependencies are built.
