#include "graph/pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gids::graph {

std::vector<double> WeightedReversePageRank(const CscGraph& graph,
                                            const PageRankOptions& options) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return {};
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> score(n, uniform);
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      auto nbrs = graph.in_neighbors(v);
      if (nbrs.empty()) {
        dangling += score[v];
        continue;
      }
      double share = score[v] / static_cast<double>(nbrs.size());
      for (NodeId u : nbrs) next[u] += share;
    }
    double base =
        (1.0 - options.damping) * uniform + options.damping * dangling * uniform;
    double delta = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      double updated = base + options.damping * next[v];
      delta += std::abs(updated - score[v]);
      score[v] = updated;
    }
    if (delta < options.tolerance) break;
  }
  return score;
}

std::vector<NodeId> RankNodesByScore(const std::vector<double>& score) {
  std::vector<NodeId> order(score.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&score](NodeId a, NodeId b) {
    return score[a] > score[b];
  });
  return order;
}

std::vector<NodeId> RankNodesByInDegree(const CscGraph& graph) {
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&graph](NodeId a, NodeId b) {
    return graph.in_degree(a) > graph.in_degree(b);
  });
  return order;
}

}  // namespace gids::graph
