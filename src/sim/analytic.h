#ifndef GIDS_SIM_ANALYTIC_H_
#define GIDS_SIM_ANALYTIC_H_

#include <cstdint>

#include "common/units.h"
#include "sim/ssd_model.h"

namespace gids::sim {

/// The paper's analytic model of storage-access overlap (§3.2, Eq. 2-3).
///
/// A feature-aggregation kernel has three phases: an initial phase T_i
/// (kernel launch until the first page arrives), a steady state T_s at peak
/// IOPs, and a termination phase T_t. With N_access requests spread over
/// N_ssd devices:
///
///     T_s          = N_access / (IOP_peak * N_ssd)             (Eq. 3)
///     IOP_achieved = N_access / (N_ssd * (T_i + T_s + T_t))    (Eq. 2)
///
/// The paper uses T_i = 25 us (kernel launch + initial software overheads)
/// and T_t = 5 us for its validation in §4.2.
struct AccumulatorModelParams {
  TimeNs initial_ns = UsToNs(25);      // T_i
  TimeNs termination_ns = UsToNs(5);   // T_t
  int n_ssd = 1;
};

/// Per-SSD achieved IOPs predicted by Eq. 2-3 when `n_access` overlapping
/// requests are maintained.
double ModelAchievedIops(const SsdSpec& spec, uint64_t n_access,
                         const AccumulatorModelParams& params);

/// Aggregate achieved read bandwidth (bytes/sec) across all SSDs predicted
/// by the model.
double ModelAchievedBandwidthBps(const SsdSpec& spec, uint64_t n_access,
                                 const AccumulatorModelParams& params);

/// Inverts the model: the smallest N_access for which the per-SSD achieved
/// IOPs reaches `target_fraction` (e.g. 0.95) of peak. This is the
/// threshold the dynamic storage access accumulator maintains.
///
/// Solving Eq. 2-3 for IOP_achieved = f * IOP_peak gives
///     N_access = f / (1 - f) * IOP_peak * N_ssd * (T_i + T_t).
uint64_t RequiredOverlappingAccesses(const SsdSpec& spec,
                                     double target_fraction,
                                     const AccumulatorModelParams& params);

/// Fast closed-form estimate of a closed-loop batch (used by the pipeline
/// timing path where running the event-driven simulation for every
/// iteration would be wasteful). Matches SsdModel::SimulateClosedLoop
/// asymptotics: per-SSD throughput min(peak, window / latency).
SsdBatchResult EstimateClosedLoop(const SsdSpec& spec, int n_ssd, uint64_t n,
                                  uint64_t concurrency);

}  // namespace gids::sim

#endif  // GIDS_SIM_ANALYTIC_H_
