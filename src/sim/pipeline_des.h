#ifndef GIDS_SIM_PIPELINE_DES_H_
#define GIDS_SIM_PIPELINE_DES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace gids::sim {

/// Per-iteration stage costs fed to the pipeline simulator (taken from
/// loaders::IterationStats).
struct StageCosts {
  TimeNs sampling_ns = 0;
  TimeNs aggregation_ns = 0;
  TimeNs transfer_ns = 0;
  TimeNs training_ns = 0;
};

/// How a dataloader's stages may overlap across iterations.
enum class PipelinePolicy {
  /// DGL-mmap: every stage of iteration i completes before iteration i+1
  /// starts (single synchronous loop).
  kSerial,
  /// Ginex: CPU sampling (+changeset) of future iterations overlaps the
  /// aggregation/transfer/training of earlier ones (superbatch
  /// pipelining); aggregation of i needs sampling of i.
  kPrepOverlapsAggregation,
  /// GIDS with the accumulator: GPU sampling and training share the GPU
  /// (serialize with each other); storage aggregation runs concurrently
  /// on the SSD/PCIe path; training of i needs aggregation of i.
  kDecoupled,
};

/// Resource-level schedule of the whole run.
struct PipelineResult {
  TimeNs makespan_ns = 0;
  TimeNs cpu_busy_ns = 0;   // host-side prep work
  TimeNs io_busy_ns = 0;    // storage + PCIe aggregation/transfer path
  TimeNs gpu_busy_ns = 0;   // GPU compute (sampling-on-GPU + training)

  double cpu_utilization() const {
    return makespan_ns == 0 ? 0
                            : static_cast<double>(cpu_busy_ns) / makespan_ns;
  }
  double io_utilization() const {
    return makespan_ns == 0 ? 0
                            : static_cast<double>(io_busy_ns) / makespan_ns;
  }
  double gpu_utilization() const {
    return makespan_ns == 0 ? 0
                            : static_cast<double>(gpu_busy_ns) / makespan_ns;
  }
};

/// One scheduled stage execution on a resource (for timeline export).
struct TaskInterval {
  enum class Resource : uint8_t { kCpu, kIo, kGpu };
  Resource resource;
  const char* stage;  // "sampling" | "aggregation+transfer" | "training"
  uint32_t iteration;
  TimeNs start_ns;
  TimeNs end_ns;
};

/// List-schedules the iterations' stages over three resources under the
/// policy's dependency rules and returns the makespan plus per-resource
/// busy time. This is the discrete-event cross-check for the analytic
/// per-iteration e2e accounting inside the dataloaders: the loaders'
/// summed e2e_ns should approximate this makespan (see
/// PipelineDesTest.*, bench_abl_pipeline_validation).
///
/// If `timeline` is non-null, every scheduled stage is appended to it in
/// schedule order (zero-duration stages are skipped).
PipelineResult SimulatePipeline(std::span<const StageCosts> iterations,
                                PipelinePolicy policy,
                                std::vector<TaskInterval>* timeline = nullptr);

/// Writes a timeline as a Chrome-tracing JSON file (load via
/// chrome://tracing or https://ui.perfetto.dev): one track per resource,
/// one slice per stage execution. Returns IoError on write failure.
Status WriteChromeTrace(std::span<const TaskInterval> timeline,
                        const std::string& path);

}  // namespace gids::sim

#endif  // GIDS_SIM_PIPELINE_DES_H_
