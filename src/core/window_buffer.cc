#include "core/window_buffer.h"

#include <algorithm>

#include "common/check.h"

namespace gids::core {

WindowBuffer::WindowBuffer(storage::SoftwareCache* cache,
                           const graph::FeatureStore* layout,
                           const storage::HotNodeBuffer* hot_buffer)
    : cache_(cache), layout_(layout), hot_buffer_(hot_buffer) {
  GIDS_CHECK(cache_ != nullptr);
  GIDS_CHECK(layout_ != nullptr);
}

void WindowBuffer::Register(const sampling::MiniBatch& batch) {
  for (graph::NodeId v : batch.input_nodes()) {
    if (hot_buffer_ != nullptr && hot_buffer_->Contains(v)) continue;
    auto range = layout_->PagesFor(v);
    for (uint64_t page = range.first; page <= range.last; ++page) {
      cache_->AddFutureReuse(page, 1);
      ++registered_pages_;
    }
  }
  ++registered_batches_;
}

void WindowBuffer::BindMetrics(obs::MetricRegistry* registry,
                               const obs::Labels& labels) const {
  GIDS_CHECK(registry != nullptr);
  using obs::MetricType;
  registry->RegisterCallback(
      "gids_window_registered_batches_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(registered_batches_); });
  registry->RegisterCallback(
      "gids_window_registered_pages_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(registered_pages_); });
}

int AutoWindowDepth(uint64_t cache_bytes, uint64_t minibatch_bytes) {
  if (minibatch_bytes == 0) return 2;
  uint64_t ratio = cache_bytes / std::max<uint64_t>(1, minibatch_bytes);
  uint64_t depth = 2 * std::max<uint64_t>(1, ratio);
  return static_cast<int>(std::clamp<uint64_t>(depth, 2, 32));
}

}  // namespace gids::core
