#include "loaders/belady_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"

namespace gids::loaders {
namespace {

uint64_t TotalMisses(const BeladyCache::SuperbatchResult& r) {
  uint64_t m = 0;
  for (uint64_t x : r.misses_per_iteration) m += x;
  return m;
}

// Brute-force optimal (Belady) miss count for a single trace, used as the
// reference implementation.
uint64_t ReferenceBelady(const std::vector<uint64_t>& trace,
                         uint64_t capacity) {
  std::set<uint64_t> resident;
  uint64_t misses = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (resident.count(trace[i])) continue;
    ++misses;
    if (resident.size() >= capacity) {
      // Evict the resident page with the farthest next use.
      uint64_t victim = 0;
      size_t best_next = 0;
      bool found_never = false;
      for (uint64_t page : resident) {
        size_t next = trace.size() + 1;  // "never"
        for (size_t j = i + 1; j < trace.size(); ++j) {
          if (trace[j] == page) {
            next = j;
            break;
          }
        }
        if (next > best_next) {
          best_next = next;
          victim = page;
          found_never = next > trace.size();
        }
        if (found_never) {
        }
      }
      resident.erase(victim);
    }
    resident.insert(trace[i]);
  }
  return misses;
}

TEST(BeladyCacheTest, ColdMissesWarmHits) {
  BeladyCache cache(4);
  auto r = cache.ProcessSuperbatch({{1, 2, 3}, {1, 2, 3}});
  EXPECT_EQ(r.misses_per_iteration[0], 3u);
  EXPECT_EQ(r.misses_per_iteration[1], 0u);
  EXPECT_EQ(r.hits_per_iteration[1], 3u);
}

TEST(BeladyCacheTest, EvictsFarthestNextUse) {
  // Capacity 2. Trace: 1 2 3 1 2. Classic MIN (mandatory insertion on
  // miss): cold misses on 1, 2, 3; inserting 3 evicts 2 (farthest next
  // use), so 1 hits and 2 misses again -> 4 misses total. An LRU cache
  // would miss all five accesses.
  BeladyCache cache(2);
  auto r = cache.ProcessSuperbatch({{1, 2, 3, 1, 2}});
  EXPECT_EQ(TotalMisses(r), 4u);
}

TEST(BeladyCacheTest, LruWouldDoWorseHere) {
  // Classic Belady-beats-LRU trace with capacity 3:
  // a b c d a b c d ... LRU misses everything, OPT keeps a,b,c.
  BeladyCache cache(3);
  std::vector<uint64_t> trace;
  for (int round = 0; round < 4; ++round) {
    for (uint64_t p : {1, 2, 3, 4}) trace.push_back(p);
  }
  auto r = cache.ProcessSuperbatch({trace});
  // OPT keeps most of the cycle resident; LRU would miss all 16.
  EXPECT_EQ(TotalMisses(r), ReferenceBelady(trace, 3));
  EXPECT_LE(TotalMisses(r), 10u);
}

TEST(BeladyCacheTest, MatchesReferenceOnRandomTraces) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    uint64_t capacity = 2 + rng.UniformInt(6);
    std::vector<uint64_t> trace;
    size_t len = 20 + rng.UniformInt(60);
    for (size_t i = 0; i < len; ++i) trace.push_back(rng.UniformInt(12));
    BeladyCache cache(capacity);
    auto r = cache.ProcessSuperbatch({trace});
    EXPECT_EQ(TotalMisses(r), ReferenceBelady(trace, capacity))
        << "trial " << trial << " capacity " << capacity;
  }
}

TEST(BeladyCacheTest, ResidencyCarriesAcrossSuperbatches) {
  BeladyCache cache(4);
  cache.ProcessSuperbatch({{1, 2, 3, 4}});
  auto r = cache.ProcessSuperbatch({{1, 2, 3, 4}});
  EXPECT_EQ(TotalMisses(r), 0u);
}

TEST(BeladyCacheTest, StalePagesEvictedFirstInNewSuperbatch) {
  BeladyCache cache(2);
  cache.ProcessSuperbatch({{1, 2}});
  // New superbatch never reuses 1 or 2; both get evicted before any
  // in-trace page.
  auto r = cache.ProcessSuperbatch({{5, 6, 5, 6}});
  EXPECT_EQ(TotalMisses(r), 2u);
  EXPECT_EQ(cache.resident_pages(), 2u);
}

TEST(BeladyCacheTest, PerIterationAttribution) {
  BeladyCache cache(10);
  auto r = cache.ProcessSuperbatch({{1, 2}, {2, 3}, {1, 4}});
  ASSERT_EQ(r.misses_per_iteration.size(), 3u);
  EXPECT_EQ(r.misses_per_iteration[0], 2u);  // 1, 2 cold
  EXPECT_EQ(r.misses_per_iteration[1], 1u);  // 3 cold
  EXPECT_EQ(r.misses_per_iteration[2], 1u);  // 4 cold
  EXPECT_EQ(r.hits_per_iteration[1], 1u);
  EXPECT_EQ(r.hits_per_iteration[2], 1u);
}

TEST(BeladyCacheTest, NeverExceedsCapacity) {
  BeladyCache cache(5);
  Rng rng(9);
  for (int sb = 0; sb < 5; ++sb) {
    std::vector<std::vector<uint64_t>> iters(3);
    for (auto& it : iters) {
      for (int i = 0; i < 20; ++i) it.push_back(rng.UniformInt(50));
    }
    cache.ProcessSuperbatch(iters);
    EXPECT_LE(cache.resident_pages(), 5u);
  }
}

TEST(BeladyCacheTest, OptimalityBeatsAnyOtherPolicySimulated) {
  // Property: OPT misses <= LRU misses on arbitrary traces.
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint64_t> trace;
    for (int i = 0; i < 200; ++i) trace.push_back(rng.UniformInt(30));
    uint64_t capacity = 8;

    BeladyCache opt(capacity);
    uint64_t opt_misses = TotalMisses(opt.ProcessSuperbatch({trace}));

    // Simple LRU reference.
    std::vector<uint64_t> lru;  // front = MRU
    uint64_t lru_misses = 0;
    for (uint64_t p : trace) {
      auto it = std::find(lru.begin(), lru.end(), p);
      if (it != lru.end()) {
        lru.erase(it);
      } else {
        ++lru_misses;
        if (lru.size() >= capacity) lru.pop_back();
      }
      lru.insert(lru.begin(), p);
    }
    EXPECT_LE(opt_misses, lru_misses) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gids::loaders
