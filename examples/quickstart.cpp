// Quickstart: end-to-end GNN training with the GIDS dataloader on a small
// synthetic graph.
//
// This walks the full pipeline of the paper functionally — an R-MAT graph
// with its structure "pinned in CPU memory", synthetic float32 features
// stored on a simulated NVMe SSD, GPU-initiated feature gathers through
// the BaM-style software cache, the accumulator / window-buffering /
// constant-CPU-buffer optimizations, and real GraphSAGE training on the
// gathered features (the loss printed below decreases).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/gids_loader.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/system_model.h"

int main() {
  using namespace gids;

  // 1. A small dataset proxy: IGB-tiny at half scale (~50K nodes).
  auto dataset_or = graph::BuildDataset(graph::DatasetSpec::IgbTiny(),
                                        /*scale=*/0.5, /*seed=*/1);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  graph::Dataset dataset = std::move(dataset_or).value();
  std::printf("graph: %u nodes, %llu edges, %u-dim features (%.1f MB)\n",
              dataset.graph.num_nodes(),
              static_cast<unsigned long long>(dataset.graph.num_edges()),
              dataset.features.feature_dim(),
              static_cast<double>(dataset.feature_bytes()) / 1e6);

  // 2. The simulated testbed: one Intel Optane SSD behind an A100-class
  //    GPU (Table 1), memory capacities scaled alongside the dataset.
  sim::SystemConfig sys_cfg =
      sim::SystemConfig::Paper(sim::SsdSpec::IntelOptane());
  sys_cfg.memory_scale = 1.0 / 2048.0;
  sim::SystemModel system(sys_cfg);

  // 3. GraphSAGE-style neighborhood sampling (fanout 10,5 over 2 layers).
  sampling::NeighborSampler sampler(&dataset.graph, {.fanouts = {10, 5}},
                                    /*seed=*/2);
  sampling::SeedIterator seeds(dataset.train_ids, /*batch_size=*/128,
                               /*seed=*/3);

  // 4. The GIDS dataloader with all three techniques enabled.
  core::GidsOptions options;
  options.cpu_buffer_fraction = 0.10;
  options.window_depth = 4;
  core::GidsLoader loader(&dataset, &sampler, &seeds, &system, options);

  // 5. Train functionally for 30 iterations.
  core::TrainerOptions train_opts;
  train_opts.warmup_iterations = 0;
  train_opts.measure_iterations = 80;
  train_opts.functional_training = true;
  train_opts.num_classes = 8;
  core::Trainer trainer(&dataset, train_opts);
  auto result = trainer.Run(loader);
  if (!result.ok()) {
    std::fprintf(stderr, "training: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\niter   loss    (virtual ms/iter)\n");
  for (size_t i = 0; i < result->losses.size(); i += 5) {
    std::printf("%4zu   %.4f  %8.3f\n", i, result->losses[i],
                NsToMs(result->per_iteration[i].e2e_ns));
  }
  std::printf("\nloss: first=%.4f last=%.4f (should decrease)\n",
              result->first_loss, result->last_loss);
  std::printf("GPU software-cache hit ratio: %.1f%%\n",
              100.0 * result->gpu_cache_hit_ratio());
  std::printf("constant CPU buffer pinned %llu hot nodes\n",
              static_cast<unsigned long long>(
                  loader.cpu_buffer()->num_pinned()));
  std::printf("virtual end-to-end time for %zu iterations: %.1f ms\n",
              result->per_iteration.size(),
              NsToMs(result->measured_e2e_ns));
  return 0;
}
