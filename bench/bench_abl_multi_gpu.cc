// Extension: data-parallel multi-GPU scaling of the GIDS dataloader.
//
// The paper argues single-machine GIDS avoids the cost of multi-GPU
// setups (§1); this sweep quantifies what those extra GPUs would buy:
// each simulated GPU owns its own GIDS stack and SSD, shards the seed
// stream, and pays a ring all-reduce per round. Reports iteration
// throughput and scaling efficiency for 1-8 GPUs on the IGB-Full proxy,
// over NVLink-class and PCIe-class interconnects.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/multi_gpu.h"

namespace gids::bench {
namespace {

void BM_MultiGpuScaling(benchmark::State& state, double interconnect_bps,
                        const char* interconnect) {
  const int gpus = static_cast<int>(state.range(0));
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);

  core::MultiGpuOptions opts;
  opts.num_gpus = gpus;
  opts.interconnect_bps = interconnect_bps;
  opts.model_bytes = 64ull << 20;
  opts.loader.hot_node_order = &CachedPageRankOrder(rig.dataset);

  double iters_per_sec = 0;
  static double one_gpu_tput_nvlink = 0;
  for (auto _ : state) {
    auto result = core::RunMultiGpu(*rig.dataset, *rig.system, {10, 5, 5},
                                    kProxyBatchSize, /*rounds=*/40, opts);
    GIDS_CHECK(result.ok());
    iters_per_sec = static_cast<double>(result->total_iterations) /
                    NsToSec(result->total_ns);
  }
  if (gpus == 1) one_gpu_tput_nvlink = iters_per_sec;
  state.counters["iters_per_sec"] = iters_per_sec;
  std::string label = std::string(interconnect) + " x" + std::to_string(gpus);
  ReportRow("ABL-MGPU", label + " throughput", iters_per_sec, 0,
            "virtual iters/s");
  if (one_gpu_tput_nvlink > 0 && gpus > 1) {
    ReportRow("ABL-MGPU", label + " scaling efficiency",
              iters_per_sec / (gpus * one_gpu_tput_nvlink), 0, "fraction");
  }
}

BENCHMARK_CAPTURE(BM_MultiGpuScaling, nvlink, 300e9, "NVLink")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MultiGpuScaling, pcie, 32e9, "PCIe")
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
