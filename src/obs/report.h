#ifndef GIDS_OBS_REPORT_H_
#define GIDS_OBS_REPORT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/exemplar.h"
#include "obs/time_series.h"

namespace gids::obs {

/// The complete timeline document written by `gids_cli run
/// --timeline-json` and read back by `gids_cli report` (schema in
/// OBSERVABILITY.md "Timeline JSON"):
///
///   {"loader":"GIDS",
///    "timeline":{"window_ns":..,"windows":[...]},   // TimeSeries::ToJson
///    "exemplars":[...],                             // ExemplarReservoir
///    "run":{"iterations":..,"e2e_ns":{histogram}}}
///
/// With the durability subsystem on (FAULTS.md "Durability & failover")
/// the document optionally carries two more keys — omitted entirely when
/// unset, so defaults-off documents are byte-identical:
///
///   "failover_exemplars":[...]   // reservoir ranked by failover count
///   "journal":{"appends":..,"fsyncs":..,"replayed":..,...}
struct TimelineExtras {
  /// Failover-exemplar reservoir (RankBy::kMostFailovers); null = omit.
  const ExemplarReservoir* failover_exemplars = nullptr;
  /// Pre-rendered journal-counter JSON object; empty = omit.
  std::string journal_json;
};

std::string TimelineDocToJson(const std::string& loader_name,
                              const TimeSeries& series,
                              const ExemplarReservoir& exemplars,
                              const TimelineExtras* extras = nullptr);

Status WriteTimelineJson(const std::string& path,
                         const std::string& loader_name,
                         const TimeSeries& series,
                         const ExemplarReservoir& exemplars,
                         const TimelineExtras* extras = nullptr);

/// Renders a timeline document as the human-readable attribution report
/// printed by `gids_cli report`: one line per window (throughput, hit
/// ratio, per-window and rolling tail latency) followed by the top-K tail
/// iterations, each named by its dominant ledger component. Returns
/// InvalidArgument on schema violations.
StatusOr<std::string> RenderTimelineReport(std::string_view timeline_json,
                                           size_t top_k);

}  // namespace gids::obs

#endif  // GIDS_OBS_REPORT_H_
