#include "gnn/graphsage_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/loss.h"
#include "gnn/optimizer.h"
#include "graph/generator.h"
#include "sampling/neighbor_sampler.h"

namespace gids::gnn {
namespace {

TEST(LossTest, SoftmaxCrossEntropyOfUniformLogits) {
  Tensor logits = Tensor::Zeros(2, 4);
  std::vector<uint32_t> labels = {0, 3};
  Tensor d;
  double loss = SoftmaxCrossEntropy(logits, labels, &d);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
  // Gradient rows sum to ~0 and are (p - onehot)/n.
  EXPECT_NEAR(d(0, 0), (0.25 - 1.0) / 2, 1e-6);
  EXPECT_NEAR(d(0, 1), 0.25 / 2, 1e-6);
}

TEST(LossTest, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits = Tensor::FromData(1, 3, std::vector<float>{10, 0, 0});
  std::vector<uint32_t> labels = {0};
  Tensor d;
  EXPECT_LT(SoftmaxCrossEntropy(logits, labels, &d), 1e-3);
}

TEST(LossTest, NumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromData(1, 2, std::vector<float>{1e4f, -1e4f});
  std::vector<uint32_t> labels = {0};
  Tensor d;
  double loss = SoftmaxCrossEntropy(logits, labels, &d);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(AccuracyTest, CountsArgmaxMatches) {
  Tensor logits =
      Tensor::FromData(2, 3, std::vector<float>{1, 5, 2, 9, 0, 1});
  std::vector<uint32_t> labels = {1, 2};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels), 0.5);
}

TEST(OptimizerTest, SgdStepMovesAgainstGradient) {
  Tensor p = Tensor::FromData(1, 2, std::vector<float>{1.0f, -1.0f});
  Tensor g = Tensor::FromData(1, 2, std::vector<float>{0.5f, -0.5f});
  SgdOptimizer opt(0.1f);
  opt.Step({&p}, {&g});
  EXPECT_FLOAT_EQ(p(0, 0), 0.95f);
  EXPECT_FLOAT_EQ(p(0, 1), -0.95f);
}

TEST(OptimizerTest, MomentumAccumulates) {
  Tensor p = Tensor::Zeros(1, 1);
  Tensor g = Tensor::FromData(1, 1, std::vector<float>{1.0f});
  SgdOptimizer opt(0.1f, 0.9f);
  opt.Step({&p}, {&g});
  float after_one = p(0, 0);
  opt.Step({&p}, {&g});
  float second_step = p(0, 0) - after_one;
  EXPECT_LT(second_step, after_one);          // both negative
  EXPECT_GT(std::abs(second_step), std::abs(after_one));  // accelerating
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2.
  Tensor x = Tensor::Zeros(1, 1);
  AdamOptimizer opt(0.1f);
  for (int i = 0; i < 500; ++i) {
    Tensor g = Tensor::FromData(
        1, 1, std::vector<float>{2.0f * (x(0, 0) - 3.0f)});
    opt.Step({&x}, {&g});
  }
  EXPECT_NEAR(x(0, 0), 3.0f, 0.05f);
}

TEST(SyntheticLabelTest, DeterministicAndInRange) {
  graph::FeatureStore fs(100, 64);
  for (graph::NodeId v = 0; v < 100; ++v) {
    uint32_t label = SyntheticLabel(fs, v, 16);
    EXPECT_LT(label, 16u);
    EXPECT_EQ(label, SyntheticLabel(fs, v, 16));
  }
}

TEST(SyntheticLabelTest, LabelsAreSpread) {
  graph::FeatureStore fs(2000, 64);
  std::vector<int> counts(8, 0);
  for (graph::NodeId v = 0; v < 2000; ++v) {
    counts[SyntheticLabel(fs, v, 8)]++;
  }
  for (int c : counts) EXPECT_GT(c, 100);  // roughly uniform over classes
}

TEST(GraphSageModelTest, ForwardShapeMatchesSeeds) {
  Rng rng(1);
  auto g = graph::GenerateRmat(256, 4096, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  sampling::NeighborSampler sampler(&*g, {.fanouts = {5, 5}}, 3);
  std::vector<graph::NodeId> seeds = {1, 2, 3, 4, 5};
  sampling::MiniBatch batch = sampler.Sample(seeds);

  GraphSageConfig cfg;
  cfg.in_dim = 32;
  cfg.hidden_dim = 16;
  cfg.num_classes = 4;
  cfg.num_layers = 2;
  Rng model_rng(2);
  GraphSageModel model(cfg, model_rng);
  Tensor inputs = Tensor::Xavier(batch.num_input_nodes(), 32, model_rng);
  Tensor logits = model.Forward(batch, inputs);
  EXPECT_EQ(logits.rows(), seeds.size());
  EXPECT_EQ(logits.cols(), 4u);
}

TEST(GraphSageModelTest, TrainingReducesLossOnLearnableTask) {
  // End-to-end learnability: labels are the argmax of the first features,
  // so repeated training on the same mini-batch must drive loss down.
  Rng rng(3);
  auto g = graph::GenerateRmat(512, 8192, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(512, 32);
  sampling::NeighborSampler sampler(&*g, {.fanouts = {5, 5}}, 5);
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId v = 0; v < 64; ++v) seeds.push_back(v * 7);
  sampling::MiniBatch batch = sampler.Sample(seeds);

  Tensor inputs(batch.num_input_nodes(), 32);
  for (size_t i = 0; i < batch.input_nodes().size(); ++i) {
    fs.FillFeature(batch.input_nodes()[i], inputs.row(i));
  }
  std::vector<uint32_t> labels = SyntheticLabels(fs, seeds, 8);

  GraphSageConfig cfg;
  cfg.in_dim = 32;
  cfg.hidden_dim = 32;
  cfg.num_classes = 8;
  cfg.num_layers = 2;
  Rng model_rng(7);
  GraphSageModel model(cfg, model_rng);
  AdamOptimizer opt(1e-2f);

  double first = model.TrainStep(batch, inputs, labels, opt);
  double last = first;
  for (int step = 0; step < 60; ++step) {
    last = model.TrainStep(batch, inputs, labels, opt);
  }
  EXPECT_LT(last, first * 0.5) << "first=" << first << " last=" << last;
}

TEST(GraphSageModelTest, ParamAndGradCounts) {
  GraphSageConfig cfg;
  cfg.in_dim = 8;
  cfg.num_layers = 3;
  Rng rng(9);
  GraphSageModel model(cfg, rng);
  EXPECT_EQ(model.Params().size(), 9u);  // 3 tensors per layer
  EXPECT_EQ(model.Grads().size(), 9u);
}

}  // namespace
}  // namespace gids::gnn
