#ifndef GIDS_LOADERS_OS_PAGE_CACHE_H_
#define GIDS_LOADERS_OS_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/check.h"

namespace gids::loaders {

/// Model of the OS page cache backing a memory-mapped feature file
/// (§2.3 / Fig. 4): LRU over 4 KiB pages with a fixed capacity (the CPU
/// memory left after the graph structure is pinned). An access either hits
/// (page resident, moved to MRU) or faults (page loaded, LRU victim
/// dropped).
class OsPageCache {
 public:
  explicit OsPageCache(uint64_t capacity_pages);

  uint64_t capacity_pages() const { return capacity_; }
  uint64_t resident_pages() const { return map_.size(); }

  /// Returns true on hit; false on page fault (page becomes resident).
  bool Access(uint64_t page);

  bool Contains(uint64_t page) const { return map_.count(page) > 0; }

  uint64_t hits() const { return hits_; }
  uint64_t faults() const { return faults_; }
  void ResetStats() { hits_ = faults_ = 0; }

 private:
  uint64_t capacity_;
  std::list<uint64_t> lru_;  // front = MRU
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t faults_ = 0;
};

}  // namespace gids::loaders

#endif  // GIDS_LOADERS_OS_PAGE_CACHE_H_
