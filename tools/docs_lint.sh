#!/usr/bin/env bash
# Documentation lint, run as part of tools/check.sh:
#
#   1. Every relative markdown link in tracked *.md files must resolve to
#      a file or directory in the repository (http(s)/mailto/anchor-only
#      links are skipped; "#section" fragments are stripped first).
#   2. Every GidsOptions field (src/core/gids_loader.h), every
#      FaultOptions field (src/storage/fault_injector.h), every
#      IntegrityOptions field (src/storage/page_integrity.h), and every
#      gids_cli flag (tools/gids_cli.cc) must be mentioned in README.md,
#      FAULTS.md or INTEGRITY.md, so new knobs cannot land undocumented.
#
#   tools/docs_lint.sh            # lint everything
set -euo pipefail

cd "$(dirname "$0")/.."
fail=0

# --- 1. intra-repo markdown links -----------------------------------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Markdown inline links: [text](target). One match per line via grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"                    # strip "#anchor"
    [ -n "$path" ] || continue
    case "$path" in
      /*) resolved=".$path" ;;              # repo-absolute
      *)  resolved="$dir/$path" ;;
    esac
    if [ ! -e "$resolved" ]; then
      echo "docs-lint: dead link in $md -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

# --- 2. every knob is documented ------------------------------------------
doc_corpus=$(cat README.md FAULTS.md INTEGRITY.md)

# Option-struct fields: lines like "  <type> name = default;" inside the
# struct. Take the identifier immediately left of '='.
struct_fields() {  # struct_fields <StructName> <header>
  awk "/^struct $1 \\{/,/^\\};/" "$2" |
    grep -E '^  [A-Za-z_].*=.*;' |
    sed -E 's/ *=.*$//; s/.*[ *&]//'
}
fields=""
for spec in "GidsOptions src/core/gids_loader.h" \
            "FaultOptions src/storage/fault_injector.h" \
            "IntegrityOptions src/storage/page_integrity.h"; do
  set -- $spec
  for field in $(struct_fields "$1" "$2"); do
    fields="$fields $field"
    if ! grep -qw -- "$field" <<<"$doc_corpus"; then
      echo "docs-lint: $1::$field not documented in README.md, FAULTS.md or INTEGRITY.md"
      fail=1
    fi
  done
done

# gids_cli flags: every name passed to the Flags accessors.
flags=$(grep -oE 'flags\.(Get|Has)[A-Za-z]*\("[^"]+"' tools/gids_cli.cc |
  grep -oE '"[^"]+"' | tr -d '"' | sort -u)
for flag in $flags; do
  if ! grep -q -- "--$flag" <<<"$doc_corpus"; then
    echo "docs-lint: gids_cli flag --$flag not documented in README.md, FAULTS.md or INTEGRITY.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs-lint: FAILED"
  exit 1
fi
echo "docs-lint: OK ($(git ls-files '*.md' | wc -l) markdown files, $(wc -w <<<"$fields") option fields, $(wc -w <<<"$flags") CLI flags)"
