file(REMOVE_RECURSE
  "CMakeFiles/loaders_test.dir/loaders/belady_cache_test.cc.o"
  "CMakeFiles/loaders_test.dir/loaders/belady_cache_test.cc.o.d"
  "CMakeFiles/loaders_test.dir/loaders/ginex_loader_test.cc.o"
  "CMakeFiles/loaders_test.dir/loaders/ginex_loader_test.cc.o.d"
  "CMakeFiles/loaders_test.dir/loaders/mmap_loader_test.cc.o"
  "CMakeFiles/loaders_test.dir/loaders/mmap_loader_test.cc.o.d"
  "CMakeFiles/loaders_test.dir/loaders/os_page_cache_test.cc.o"
  "CMakeFiles/loaders_test.dir/loaders/os_page_cache_test.cc.o.d"
  "loaders_test"
  "loaders_test.pdb"
  "loaders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loaders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
