#include "sim/ssd_model.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/check.h"

namespace gids::sim {

uint64_t SsdSpec::internal_parallelism() const {
  double k = peak_read_iops * NsToSec(read_latency_ns);
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(k)));
}

SsdSpec SsdSpec::IntelOptane() {
  SsdSpec s;
  s.name = "Intel Optane SSD";
  s.peak_read_iops = 1.5e6;
  s.read_latency_ns = UsToNs(11);
  s.latency_sigma = 0.20;
  return s;
}

SsdSpec SsdSpec::Samsung980Pro() {
  SsdSpec s;
  s.name = "Samsung 980 Pro";
  s.peak_read_iops = 700e3;
  s.read_latency_ns = UsToNs(324);
  s.latency_sigma = 0.30;
  return s;
}

SsdModel::SsdModel(SsdSpec spec, uint64_t seed) : spec_(std::move(spec)) {
  rng_.Seed(seed ^ 0x55dc0de5d15ull);
}

TimeNs SsdModel::SampleServiceTime() {
  if (spec_.latency_sigma <= 0) return spec_.read_latency_ns;
  // Lognormal with mean == read_latency_ns: X = L * exp(sigma*Z - sigma^2/2).
  double sigma = spec_.latency_sigma;
  double z = rng_.Normal();
  double factor = std::exp(sigma * z - 0.5 * sigma * sigma);
  double t = static_cast<double>(spec_.read_latency_ns) * factor;
  return std::max<TimeNs>(1, static_cast<TimeNs>(t));
}

SsdBatchResult SsdModel::SimulateBurst(uint64_t n) {
  return SimulateClosedLoop(n, n);
}

SsdBatchResult SsdModel::SimulateClosedLoop(uint64_t n, uint64_t concurrency) {
  SsdBatchResult result;
  result.requests = n;
  if (n == 0) return result;
  GIDS_CHECK(concurrency > 0);

  const uint64_t k = spec_.internal_parallelism();
  // Each of the k channels becomes free at heap top; requests beyond the
  // closed-loop window are admitted only when an earlier request completes.
  std::priority_queue<TimeNs, std::vector<TimeNs>, std::greater<TimeNs>>
      channel_free;
  for (uint64_t i = 0; i < k; ++i) channel_free.push(0);

  // Completion times of in-window requests, min-heap: the closed loop
  // admits request i at the completion time of request i - concurrency.
  std::priority_queue<TimeNs, std::vector<TimeNs>, std::greater<TimeNs>>
      window;
  TimeNs last_completion = 0;

  for (uint64_t i = 0; i < n; ++i) {
    TimeNs submit = 0;
    if (i >= concurrency) {
      submit = window.top();
      window.pop();
    }
    TimeNs channel = channel_free.top();
    channel_free.pop();
    TimeNs start = std::max(submit, channel);
    TimeNs done = start + SampleServiceTime();
    channel_free.push(done);
    window.push(done);
    last_completion = std::max(last_completion, done);
  }

  result.duration_ns = last_completion;
  double secs = NsToSec(result.duration_ns);
  result.achieved_iops = secs > 0 ? static_cast<double>(n) / secs : 0;
  result.bandwidth_bps =
      result.achieved_iops * static_cast<double>(spec_.io_size_bytes);
  return result;
}

SsdBatchResult SimulateStripedClosedLoop(const SsdSpec& spec, int n_ssd,
                                         uint64_t n, uint64_t concurrency,
                                         uint64_t seed) {
  GIDS_CHECK(n_ssd > 0);
  SsdBatchResult agg;
  agg.requests = n;
  if (n == 0) return agg;
  GIDS_CHECK(concurrency > 0);
  // With fewer outstanding requests than devices, only `concurrency`
  // devices can hold a request at any instant; modeling every device with
  // a window of one would overstate the aggregate window (n_ssd
  // outstanding instead of `concurrency`). Collapse to that many active
  // devices so a queue depth of 1 behaves like a single SSD.
  const uint64_t active =
      std::min<uint64_t>(static_cast<uint64_t>(n_ssd), concurrency);
  TimeNs max_duration = 0;
  for (uint64_t d = 0; d < active; ++d) {
    uint64_t share = n / active + (d < n % active ? 1 : 0);
    if (share == 0) continue;
    // Distribute the closed-loop window like the request share: the first
    // (concurrency % active) devices take the remainder, so e.g. 7
    // outstanding over 4 SSDs models 2+2+2+1 instead of truncating to 1
    // per device and dropping 3 requests from the window.
    uint64_t conc = concurrency / active + (d < concurrency % active ? 1 : 0);
    SsdModel model(spec, seed + d * 0x9e37ull);
    SsdBatchResult r = model.SimulateClosedLoop(share, conc);
    max_duration = std::max(max_duration, r.duration_ns);
  }
  agg.duration_ns = max_duration;
  double secs = NsToSec(max_duration);
  agg.achieved_iops = secs > 0 ? static_cast<double>(n) / secs : 0;
  agg.bandwidth_bps =
      agg.achieved_iops * static_cast<double>(spec.io_size_bytes);
  return agg;
}

}  // namespace gids::sim
