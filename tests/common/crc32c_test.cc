#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/random.h"

namespace gids {
namespace {

uint32_t CrcOfString(const std::string& s) { return Crc32c(s.data(), s.size()); }

// RFC 3720 (iSCSI) appendix B.4 known-answer vectors for CRC-32C.
TEST(Crc32cTest, Rfc3720KnownAnswers) {
  EXPECT_EQ(CrcOfString("123456789"), 0xE3069283u);

  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  std::vector<uint8_t> asc(32);
  std::iota(asc.begin(), asc.end(), 0);
  EXPECT_EQ(Crc32c(asc.data(), asc.size()), 0x46DD794Eu);

  std::vector<uint8_t> desc(32);
  for (size_t i = 0; i < desc.size(); ++i) {
    desc[i] = static_cast<uint8_t>(31 - i);
  }
  EXPECT_EQ(Crc32c(desc.data(), desc.size()), 0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyBufferIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32cExtend(0, nullptr, 0), 0u);
  // Extending an arbitrary running CRC with zero bytes is the identity.
  EXPECT_EQ(Crc32cExtend(0xdeadbeefu, nullptr, 0), 0xdeadbeefu);
}

TEST(Crc32cTest, IncrementalEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  const uint32_t whole = CrcOfString(msg);
  // Every possible split point must compose to the one-shot sum.
  for (size_t split = 0; split <= msg.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, msg.data(), split);
    crc = Crc32cExtend(crc, msg.data() + split, msg.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

// Property test: for seeded random buffers cut into random chunks, the
// chunked incremental sum always equals the one-shot sum. Exercises the
// slice-by-8 word loop together with unaligned heads and short tails.
TEST(Crc32cTest, RandomSplitFuzz) {
  Rng rng(0x32c5eed);
  for (int round = 0; round < 200; ++round) {
    const size_t n = 1 + rng.Next() % 4096;
    std::vector<uint8_t> buf(n);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    const uint32_t whole = Crc32c(buf.data(), n);

    uint32_t crc = 0;
    size_t pos = 0;
    while (pos < n) {
      const size_t chunk = 1 + rng.Next() % (n - pos);
      crc = Crc32cExtend(crc, buf.data() + pos, chunk);
      pos += chunk;
    }
    EXPECT_EQ(crc, whole) << "round " << round << " n=" << n;
  }
}

// Single-bit and short-burst sensitivity: flipping any one byte of a page
// changes the sum (the injector's 1-4 byte bursts are always detected;
// CRC-32C detects all bursts up to 32 bits).
TEST(Crc32cTest, ShortBurstsAlwaysChangeSum) {
  Rng rng(0xb125);
  std::vector<uint8_t> page(512);
  for (auto& b : page) b = static_cast<uint8_t>(rng.Next());
  const uint32_t clean = Crc32c(page.data(), page.size());
  for (int round = 0; round < 500; ++round) {
    std::vector<uint8_t> bad = page;
    const size_t len = 1 + rng.Next() % 4;  // injector burst: 1-4 bytes
    const size_t start = rng.Next() % (bad.size() - len + 1);
    for (size_t i = 0; i < len; ++i) {
      uint8_t mask = static_cast<uint8_t>(rng.Next());
      bad[start + i] ^= mask != 0 ? mask : 0xa5;
    }
    EXPECT_NE(Crc32c(bad.data(), bad.size()), clean)
        << "undetected burst at " << start << " len " << len;
  }
}

}  // namespace
}  // namespace gids
