file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/block_device_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/block_device_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/cache_fuzz_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/cache_fuzz_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/failure_injection_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/feature_gather_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/feature_gather_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/io_queue_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/io_queue_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/queue_manager_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/queue_manager_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/software_cache_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/software_cache_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/storage_array_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/storage_array_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
