file(REMOVE_RECURSE
  "CMakeFiles/terabyte_scale_training.dir/terabyte_scale_training.cpp.o"
  "CMakeFiles/terabyte_scale_training.dir/terabyte_scale_training.cpp.o.d"
  "terabyte_scale_training"
  "terabyte_scale_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terabyte_scale_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
