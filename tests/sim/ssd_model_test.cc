#include "sim/ssd_model.h"

#include <gtest/gtest.h>

#include "sim/analytic.h"

namespace gids::sim {
namespace {

TEST(SsdSpecTest, OptanePresetsMatchPaper) {
  SsdSpec s = SsdSpec::IntelOptane();
  EXPECT_DOUBLE_EQ(s.peak_read_iops, 1.5e6);
  EXPECT_EQ(s.read_latency_ns, UsToNs(11));
  EXPECT_EQ(s.io_size_bytes, 4096u);
  // ~6 GB/s at 4 KiB, the paper's "equivalent to 6GB/s".
  EXPECT_NEAR(s.peak_read_bandwidth_bps(), 6.1e9, 0.1e9);
}

TEST(SsdSpecTest, SamsungPresetsMatchPaper) {
  SsdSpec s = SsdSpec::Samsung980Pro();
  EXPECT_DOUBLE_EQ(s.peak_read_iops, 700e3);
  EXPECT_EQ(s.read_latency_ns, UsToNs(324));
  EXPECT_NEAR(s.peak_read_bandwidth_bps(), 2.87e9, 0.05e9);
}

TEST(SsdSpecTest, InternalParallelismIsIopsTimesLatency) {
  SsdSpec optane = SsdSpec::IntelOptane();
  // 1.5M * 11us = 16.5 -> 17 channels.
  EXPECT_EQ(optane.internal_parallelism(), 17u);
  SsdSpec samsung = SsdSpec::Samsung980Pro();
  // 700K * 324us = 226.8 -> 227 channels.
  EXPECT_EQ(samsung.internal_parallelism(), 227u);
}

TEST(SsdModelTest, EmptyBatchIsFree) {
  SsdModel m(SsdSpec::IntelOptane());
  SsdBatchResult r = m.SimulateBurst(0);
  EXPECT_EQ(r.duration_ns, 0);
  EXPECT_EQ(r.requests, 0u);
}

TEST(SsdModelTest, SingleRequestTakesAboutOneLatency) {
  SsdSpec spec = SsdSpec::IntelOptane();
  spec.latency_sigma = 0;  // deterministic service time
  SsdModel m(spec);
  SsdBatchResult r = m.SimulateBurst(1);
  EXPECT_EQ(r.duration_ns, spec.read_latency_ns);
}

TEST(SsdModelTest, LargeBurstApproachesPeakIops) {
  SsdModel m(SsdSpec::IntelOptane());
  SsdBatchResult r = m.SimulateBurst(200000);
  EXPECT_GT(r.achieved_iops, 0.97 * 1.5e6);
  EXPECT_LT(r.achieved_iops, 1.05 * 1.5e6);
}

TEST(SsdModelTest, ThroughputNeverExceedsPeakByMuch) {
  SsdModel m(SsdSpec::Samsung980Pro());
  for (uint64_t n : {100ull, 1000ull, 50000ull}) {
    SsdBatchResult r = m.SimulateBurst(n);
    EXPECT_LT(r.achieved_iops, 1.10 * 700e3) << "n=" << n;
  }
}

TEST(SsdModelTest, SmallConcurrencyLimitsThroughput) {
  SsdSpec spec = SsdSpec::IntelOptane();
  spec.latency_sigma = 0;
  SsdModel m(spec);
  // One outstanding request: throughput = 1 / latency ~= 90.9 K IOPs.
  SsdBatchResult r = m.SimulateClosedLoop(5000, 1);
  EXPECT_NEAR(r.achieved_iops, 1e9 / static_cast<double>(spec.read_latency_ns),
              0.02e6);
}

TEST(SsdModelTest, ThroughputMonotoneInConcurrency) {
  SsdModel m(SsdSpec::IntelOptane(), 77);
  double prev = 0;
  for (uint64_t conc : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    SsdBatchResult r = m.SimulateClosedLoop(50000, conc);
    EXPECT_GE(r.achieved_iops, prev * 0.98) << "conc=" << conc;
    prev = r.achieved_iops;
  }
  EXPECT_GT(prev, 0.9 * 1.5e6);  // saturates near peak
}

TEST(SsdModelTest, SamsungNeedsFarMoreConcurrencyThanOptane) {
  // The key property behind the accumulator (§3.2): higher-latency SSDs
  // demand more overlapping accesses for the same utilization.
  SsdModel optane(SsdSpec::IntelOptane());
  SsdModel samsung(SsdSpec::Samsung980Pro());
  uint64_t conc = 64;
  double optane_frac =
      optane.SimulateClosedLoop(20000, conc).achieved_iops / 1.5e6;
  double samsung_frac =
      samsung.SimulateClosedLoop(20000, conc).achieved_iops / 700e3;
  EXPECT_GT(optane_frac, 0.9);
  EXPECT_LT(samsung_frac, 0.5);
}

TEST(SsdModelTest, DeterministicForSameSeed) {
  SsdModel a(SsdSpec::IntelOptane(), 42);
  SsdModel b(SsdSpec::IntelOptane(), 42);
  SsdBatchResult ra = a.SimulateClosedLoop(1000, 64);
  SsdBatchResult rb = b.SimulateClosedLoop(1000, 64);
  EXPECT_EQ(ra.duration_ns, rb.duration_ns);
}

TEST(StripedTest, TwoSsdsDoubleBandwidth) {
  SsdSpec spec = SsdSpec::IntelOptane();
  SsdBatchResult one = SimulateStripedClosedLoop(spec, 1, 100000, 4096);
  SsdBatchResult two = SimulateStripedClosedLoop(spec, 2, 100000, 4096);
  EXPECT_NEAR(two.bandwidth_bps / one.bandwidth_bps, 2.0, 0.15);
}

TEST(StripedTest, BandwidthScalesLinearlyUpToFour) {
  // §3.3: collective SSD bandwidth scales linearly with the number of SSDs.
  SsdSpec spec = SsdSpec::IntelOptane();
  double prev = 0;
  for (int n : {1, 2, 3, 4}) {
    SsdBatchResult r = SimulateStripedClosedLoop(spec, n, 200000, 8192);
    EXPECT_NEAR(r.bandwidth_bps, n * 6.1e9, n * 0.4e9);
    EXPECT_GT(r.bandwidth_bps, prev);
    prev = r.bandwidth_bps;
  }
}

TEST(StripedTest, QueueDepthOneMatchesSingleSsd) {
  // With one outstanding request, only one device can hold it at a time:
  // a 4-SSD stripe must behave exactly like a single SSD, not like four
  // devices each granted a (phantom) window of one.
  SsdSpec spec = SsdSpec::IntelOptane();
  spec.latency_sigma = 0;
  SsdBatchResult striped = SimulateStripedClosedLoop(spec, 4, 64, 1);
  SsdBatchResult single = SsdModel(spec).SimulateClosedLoop(64, 1);
  EXPECT_EQ(striped.duration_ns, single.duration_ns);
  EXPECT_EQ(striped.duration_ns, 64 * spec.read_latency_ns);
}

TEST(StripedTest, RemainderConcurrencyNotTruncated) {
  // 3 outstanding over 2 SSDs must model windows of 2+1, not truncate
  // 3/2 to 1 per device. Shares split 1001/1000; device 0 pipelines two
  // deep (ceil(1001/2) = 501 rounds), device 1 runs serial (1000 rounds),
  // so the stripe finishes in 1000 latencies. The old truncating window
  // gave 1001 serial rounds on device 0 instead.
  SsdSpec spec = SsdSpec::IntelOptane();
  spec.latency_sigma = 0;
  SsdBatchResult r = SimulateStripedClosedLoop(spec, 2, 2001, 3);
  EXPECT_EQ(r.duration_ns, 1000 * spec.read_latency_ns);
}

class BurstSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BurstSweepTest, BandwidthConsistentWithDuration) {
  SsdModel m(SsdSpec::IntelOptane(), GetParam());
  SsdBatchResult r = m.SimulateBurst(GetParam() * 100 + 10);
  double recomputed = static_cast<double>(r.requests) * 4096.0 /
                      NsToSec(r.duration_ns);
  EXPECT_NEAR(r.bandwidth_bps, recomputed, recomputed * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BurstSweepTest,
                         ::testing::Values(1, 3, 10, 100, 500));

}  // namespace
}  // namespace gids::sim
