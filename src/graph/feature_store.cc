#include "graph/feature_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace gids::graph {
namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

double FeatureStore::PagesPerNode() const {
  if (num_nodes_ == 0) return 0;
  uint64_t pages = 0;
  // The layout repeats every lcm(feature_bytes, page_bytes); sampling one
  // period is exact. Cap the period scan for pathological dims.
  uint64_t fb = feature_bytes_per_node();
  uint64_t period_nodes = page_bytes_ / std::gcd(fb, (uint64_t)page_bytes_);
  period_nodes = std::min<uint64_t>(period_nodes, num_nodes_);
  if (period_nodes == 0) period_nodes = 1;
  for (NodeId v = 0; v < period_nodes; ++v) pages += PagesFor(v).count();
  return static_cast<double>(pages) / static_cast<double>(period_nodes);
}

float FeatureStore::ExpectedElement(NodeId v, uint32_t j) const {
  uint64_t h = Mix(content_seed_ ^ (static_cast<uint64_t>(v) * feature_dim_ + j));
  // Map the top 24 bits to [-0.5, 0.5).
  return static_cast<float>(h >> 40) * (1.0f / 16777216.0f) - 0.5f;
}

float FeatureStore::ExpectedElementAt(NodeId v, uint32_t j,
                                      uint64_t version) const {
  if (version == 0) return ExpectedElement(v, j);
  // Fold the row version in through a second mix round so version v+1 is
  // as decorrelated from version v as two unrelated nodes are.
  uint64_t h = Mix(Mix(content_seed_ ^ (version * 0x9e3779b97f4a7c15ull)) ^
                   (static_cast<uint64_t>(v) * feature_dim_ + j));
  return static_cast<float>(h >> 40) * (1.0f / 16777216.0f) - 0.5f;
}

void FeatureStore::FillFeature(NodeId v, std::span<float> out) const {
  GIDS_CHECK(out.size() >= feature_dim_);
  for (uint32_t j = 0; j < feature_dim_; ++j) out[j] = ExpectedElement(v, j);
}

void FeatureStore::FillFeatureAt(NodeId v, uint64_t version,
                                 std::span<float> out) const {
  GIDS_CHECK(out.size() >= feature_dim_);
  for (uint32_t j = 0; j < feature_dim_; ++j) {
    out[j] = ExpectedElementAt(v, j, version);
  }
}

void FeatureStore::FillPage(uint64_t page, std::span<std::byte> out) const {
  GIDS_CHECK(out.size() == page_bytes_);
  std::memset(out.data(), 0, out.size());
  uint64_t page_begin = page * page_bytes_;
  uint64_t page_end = page_begin + page_bytes_;  // exclusive
  uint64_t file_end = total_bytes();
  if (page_begin >= file_end) return;
  uint64_t fb = feature_bytes_per_node();
  NodeId first_node = static_cast<NodeId>(page_begin / fb);
  for (NodeId v = first_node; v < num_nodes_; ++v) {
    uint64_t node_begin = static_cast<uint64_t>(v) * fb;
    if (node_begin >= page_end) break;
    uint64_t node_end = node_begin + fb;
    uint64_t lo = std::max(node_begin, page_begin);
    uint64_t hi = std::min(node_end, page_end);
    for (uint64_t byte = lo; byte < hi;) {
      uint32_t elem = static_cast<uint32_t>((byte - node_begin) / sizeof(float));
      float value = ExpectedElement(v, elem);
      uint64_t elem_begin = node_begin + elem * sizeof(float);
      const std::byte* value_bytes = reinterpret_cast<const std::byte*>(&value);
      // Copy the overlap of this element with the page window.
      uint64_t copy_lo = std::max(elem_begin, lo);
      uint64_t copy_hi = std::min(elem_begin + sizeof(float), hi);
      std::memcpy(out.data() + (copy_lo - page_begin),
                  value_bytes + (copy_lo - elem_begin), copy_hi - copy_lo);
      byte = copy_hi;
    }
  }
}

}  // namespace gids::graph
