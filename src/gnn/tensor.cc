#include "gnn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace gids::gnn {

Tensor Tensor::Xavier(size_t rows, size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (float& v : t.data_) {
    v = static_cast<float>((rng.UniformDouble() * 2.0 - 1.0) * bound);
  }
  return t;
}

Tensor Tensor::FromData(size_t rows, size_t cols,
                        std::span<const float> data) {
  GIDS_CHECK(data.size() == rows * cols);
  Tensor t(rows, cols);
  std::memcpy(t.data_.data(), data.data(), data.size() * sizeof(float));
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Axpy(const Tensor& other, float scale) {
  GIDS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Tensor::Scale(float factor) {
  for (float& v : data_) v *= factor;
}

double Tensor::L2NormSquared() const {
  double sum = 0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  GIDS_CHECK(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    float* ci = c.data() + i * n;
    const float* ai = a.data() + i * k;
    for (size_t p = 0; p < k; ++p) {
      float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b.data() + p * n;
      for (size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
  return c;
}

Tensor MatmulTN(const Tensor& a, const Tensor& b) {
  GIDS_CHECK(a.rows() == b.rows());
  Tensor c(a.cols(), b.cols());
  const size_t k = a.rows();
  const size_t m = a.cols();
  const size_t n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* ap = a.data() + p * m;
    const float* bp = b.data() + p * n;
    for (size_t i = 0; i < m; ++i) {
      float api = ap[i];
      if (api == 0.0f) continue;
      float* ci = c.data() + i * n;
      for (size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
  return c;
}

Tensor MatmulNT(const Tensor& a, const Tensor& b) {
  GIDS_CHECK(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float sum = 0.0f;
      for (size_t p = 0; p < k; ++p) sum += ai[p] * bj[p];
      ci[j] = sum;
    }
  }
  return c;
}

void ReluInPlace(Tensor& x) {
  float* d = x.data();
  for (size_t i = 0; i < x.size(); ++i) d[i] = std::max(0.0f, d[i]);
}

Tensor ReluBackward(const Tensor& dy, const Tensor& y) {
  GIDS_CHECK(dy.rows() == y.rows() && dy.cols() == y.cols());
  Tensor dx(dy.rows(), dy.cols());
  for (size_t i = 0; i < dy.size(); ++i) {
    dx.data()[i] = y.data()[i] > 0.0f ? dy.data()[i] : 0.0f;
  }
  return dx;
}

}  // namespace gids::gnn
