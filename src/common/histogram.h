#ifndef GIDS_COMMON_HISTOGRAM_H_
#define GIDS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gids {

/// Log-bucketed histogram for latency/size distributions, in the style of
/// RocksDB's HistogramImpl. Values are bucketed by powers of two scaled by
/// a linear sub-bucket factor, giving ~4% relative resolution.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  /// Folds `other` into this histogram. Safe for every emptiness
  /// combination (empty + empty, empty + x, x + empty: min/max track the
  /// union of observed values) and for self-merge (doubles every count).
  void Merge(const Histogram& other);
  void Clear();

  /// One occupied log bucket, for cumulative exposition (Prometheus
  /// `_bucket{le=...}`). `upper_bound` is inclusive: the largest value the
  /// bucket can hold.
  struct Bucket {
    uint64_t upper_bound = 0;
    uint64_t count = 0;
  };
  /// The occupied buckets in increasing value order.
  std::vector<Bucket> NonEmptyBuckets() const;

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  /// Approximate quantile in [0, 1]; interpolates within the bucket and
  /// clamps to the observed [min, max]. Percentile(0) is exactly min(),
  /// Percentile(1) exactly max(); an empty histogram reports 0 everywhere.
  double Percentile(double p) const;
  double StdDev() const;

  /// One-line summary: count/mean/p50/p99/max.
  std::string ToString() const;

  /// Compact JSON object:
  /// {"count":..,"min":..,"max":..,"mean":..,"stddev":..,
  ///  "p50":..,"p90":..,"p99":..,"p999":..}
  std::string ToJson() const;

 private:
  static size_t BucketFor(uint64_t value);
  static uint64_t BucketLowerBound(size_t bucket);

  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave.
  static constexpr size_t kNumBuckets = (64 - kSubBucketBits) << kSubBucketBits;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  double sum_squares_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
};

}  // namespace gids

#endif  // GIDS_COMMON_HISTOGRAM_H_
