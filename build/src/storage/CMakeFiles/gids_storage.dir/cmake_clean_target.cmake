file(REMOVE_RECURSE
  "libgids_storage.a"
)
