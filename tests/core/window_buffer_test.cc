#include "core/window_buffer.h"

#include <gtest/gtest.h>

namespace gids::core {
namespace {

sampling::MiniBatch BatchWithInputs(std::vector<graph::NodeId> nodes) {
  sampling::MiniBatch b;
  sampling::Block block;
  block.src_nodes = std::move(nodes);
  block.num_dst = 1;
  b.blocks.push_back(std::move(block));
  return b;
}

class SimpleHot : public storage::HotNodeBuffer {
 public:
  bool Contains(graph::NodeId node) const override { return node >= 100; }
  void Fill(graph::NodeId, std::span<float>) const override {}
};

TEST(WindowBufferTest, RegistersReuseCounters) {
  storage::SoftwareCache cache(64 * 4096, 4096);
  graph::FeatureStore fs(1000, 1024);  // node == page
  WindowBuffer window(&cache, &fs);
  window.Register(BatchWithInputs({1, 2, 3}));
  EXPECT_EQ(cache.FutureReuseCount(fs.PagesFor(1).first), 1u);
  EXPECT_EQ(cache.FutureReuseCount(fs.PagesFor(2).first), 1u);
  EXPECT_EQ(window.registered_batches(), 1u);
  EXPECT_EQ(window.registered_pages(), 3u);
}

TEST(WindowBufferTest, RepeatedNodesAccumulate) {
  storage::SoftwareCache cache(64 * 4096, 4096);
  graph::FeatureStore fs(1000, 1024);
  WindowBuffer window(&cache, &fs);
  window.Register(BatchWithInputs({5}));
  window.Register(BatchWithInputs({5}));
  window.Register(BatchWithInputs({5}));
  EXPECT_EQ(cache.FutureReuseCount(fs.PagesFor(5).first), 3u);
}

TEST(WindowBufferTest, SkipsHotBufferNodes) {
  storage::SoftwareCache cache(64 * 4096, 4096);
  graph::FeatureStore fs(1000, 1024);
  SimpleHot hot;
  WindowBuffer window(&cache, &fs, &hot);
  window.Register(BatchWithInputs({1, 150}));
  EXPECT_EQ(cache.FutureReuseCount(fs.PagesFor(1).first), 1u);
  EXPECT_EQ(cache.FutureReuseCount(fs.PagesFor(150).first), 0u);
  EXPECT_EQ(window.registered_pages(), 1u);
}

TEST(WindowBufferTest, PageSpanningNodesRegisterAllPages) {
  storage::SoftwareCache cache(64 * 4096, 4096);
  graph::FeatureStore fs(1000, 768);  // 3 KiB features span pages
  WindowBuffer window(&cache, &fs);
  window.Register(BatchWithInputs({1}));  // node 1 spans pages 0 and 1
  auto range = fs.PagesFor(1);
  ASSERT_EQ(range.count(), 2u);
  EXPECT_EQ(cache.FutureReuseCount(range.first), 1u);
  EXPECT_EQ(cache.FutureReuseCount(range.last), 1u);
}

TEST(WindowBufferTest, CountersDrainThroughGather) {
  // Register then consume exactly via cache touches: counters must net
  // to zero, so window buffering cannot permanently pin the cache.
  storage::SoftwareCache cache(64 * 4096, 4096, /*seed=*/1,
                               /*store_payloads=*/false);
  graph::FeatureStore fs(1000, 1024);
  WindowBuffer window(&cache, &fs);
  sampling::MiniBatch batch = BatchWithInputs({1, 2, 3, 4});
  window.Register(batch);
  for (graph::NodeId v : batch.input_nodes()) {
    uint64_t page = fs.PagesFor(v).first;
    if (!cache.Touch(page)) cache.InsertMeta(page);
  }
  EXPECT_EQ(cache.pinned_lines(), 0u);
  for (graph::NodeId v : batch.input_nodes()) {
    EXPECT_EQ(cache.FutureReuseCount(fs.PagesFor(v).first), 0u);
  }
}

TEST(AutoWindowDepthTest, ScalesWithCacheToMinibatchRatio) {
  // cache == minibatch -> depth 2; cache == 4 minibatches -> depth 8.
  EXPECT_EQ(AutoWindowDepth(100, 100), 2);
  EXPECT_EQ(AutoWindowDepth(400, 100), 8);
  EXPECT_EQ(AutoWindowDepth(800, 100), 16);
}

TEST(AutoWindowDepthTest, ClampedToBounds) {
  EXPECT_EQ(AutoWindowDepth(1, 1000), 2);      // tiny cache
  EXPECT_EQ(AutoWindowDepth(1000000, 1), 32);  // huge cache
  EXPECT_EQ(AutoWindowDepth(100, 0), 2);       // degenerate minibatch
}

TEST(WindowBufferTest, IdListBytes) {
  storage::SoftwareCache cache(64 * 4096, 4096);
  graph::FeatureStore fs(1000, 1024);
  WindowBuffer window(&cache, &fs);
  sampling::MiniBatch batch = BatchWithInputs({1, 2, 3, 4});
  EXPECT_EQ(window.IdListBytes(batch), 4 * sizeof(graph::NodeId));
}

}  // namespace
}  // namespace gids::core
