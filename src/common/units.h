#ifndef GIDS_COMMON_UNITS_H_
#define GIDS_COMMON_UNITS_H_

#include <cstdint>

namespace gids {

/// Virtual time is tracked in integer nanoseconds throughout the simulator.
using TimeNs = int64_t;

inline constexpr TimeNs kNsPerUs = 1000;
inline constexpr TimeNs kNsPerMs = 1000 * 1000;
inline constexpr TimeNs kNsPerSec = 1000 * 1000 * 1000;

inline constexpr double NsToUs(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
inline constexpr double NsToMs(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
inline constexpr double NsToSec(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }
inline constexpr TimeNs UsToNs(double us) {
  return static_cast<TimeNs>(us * static_cast<double>(kNsPerUs));
}
inline constexpr TimeNs MsToNs(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs));
}
inline constexpr TimeNs SecToNs(double s) {
  return static_cast<TimeNs>(s * static_cast<double>(kNsPerSec));
}

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

/// Converts a byte count and duration to GB/s (decimal gigabytes, the unit
/// used in the paper's bandwidth figures).
inline constexpr double BytesPerNsToGBps(double bytes, TimeNs duration) {
  if (duration <= 0) return 0.0;
  return bytes / static_cast<double>(duration);  // B/ns == GB/s
}

}  // namespace gids

#endif  // GIDS_COMMON_UNITS_H_
