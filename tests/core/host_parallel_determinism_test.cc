// The host-parallelism determinism contract (DESIGN.md "Host
// parallelism"): the GIDS and BaM loaders must produce byte-identical
// mini-batches, features, and per-iteration stats at every host_threads /
// prefetch_depth setting, and — when no prefetch is in flight — identical
// end-of-run cache and storage totals too.
//
// The prefetch caveat: with prefetch_depth > 0 the background task may
// have prepared groups beyond what the consumer drained, so END-OF-RUN
// cache/storage totals legitimately depend on timing. Per-iteration
// results are still exact (groups are prepared in consumption order,
// single-flight), so those are compared in every mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/gids_loader.h"
#include "tests/test_util.h"

namespace gids::core {
namespace {

using gids::testing::LoaderRig;

struct RunCapture {
  std::vector<loaders::LoaderBatch> iterations;
  storage::CacheStats cache_stats;
  uint64_t storage_reads = 0;
  uint64_t queue_submissions = 0;
};

RunCapture RunLoader(bool bam, uint32_t host_threads, uint32_t prefetch_depth,
                     int num_iterations) {
  // A fresh rig per run: sampler and seed iterator are stateful, and every
  // configuration must start from the same initial state.
  LoaderRig rig;
  GidsOptions opts = bam ? GidsOptions::Bam() : GidsOptions{};
  opts.host_threads = host_threads;
  opts.prefetch_depth = prefetch_depth;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);
  RunCapture cap;
  for (int i = 0; i < num_iterations; ++i) {
    auto lb = loader.Next();
    GIDS_CHECK(lb.ok());
    cap.iterations.push_back(std::move(*lb));
  }
  cap.cache_stats = loader.cache().stats();
  cap.storage_reads = loader.storage_array().total_reads();
  cap.queue_submissions = loader.storage_array().queues().total_submissions();
  return cap;
}

void ExpectBatchesEqual(const sampling::MiniBatch& a,
                        const sampling::MiniBatch& b, int iter) {
  EXPECT_EQ(a.seeds, b.seeds) << "iteration " << iter;
  ASSERT_EQ(a.blocks.size(), b.blocks.size()) << "iteration " << iter;
  for (size_t l = 0; l < a.blocks.size(); ++l) {
    EXPECT_EQ(a.blocks[l].src_nodes, b.blocks[l].src_nodes)
        << "iteration " << iter << " layer " << l;
    EXPECT_EQ(a.blocks[l].num_dst, b.blocks[l].num_dst)
        << "iteration " << iter << " layer " << l;
    EXPECT_EQ(a.blocks[l].edge_src, b.blocks[l].edge_src)
        << "iteration " << iter << " layer " << l;
    EXPECT_EQ(a.blocks[l].edge_dst, b.blocks[l].edge_dst)
        << "iteration " << iter << " layer " << l;
  }
}

void ExpectStatsEqual(const loaders::IterationStats& a,
                      const loaders::IterationStats& b, int iter) {
  EXPECT_EQ(a.sampling_ns, b.sampling_ns) << "iteration " << iter;
  EXPECT_EQ(a.aggregation_ns, b.aggregation_ns) << "iteration " << iter;
  EXPECT_EQ(a.transfer_ns, b.transfer_ns) << "iteration " << iter;
  EXPECT_EQ(a.training_ns, b.training_ns) << "iteration " << iter;
  EXPECT_EQ(a.e2e_ns, b.e2e_ns) << "iteration " << iter;
  EXPECT_EQ(a.gather.nodes, b.gather.nodes) << "iteration " << iter;
  EXPECT_EQ(a.gather.cpu_buffer_hits, b.gather.cpu_buffer_hits)
      << "iteration " << iter;
  EXPECT_EQ(a.gather.gpu_cache_hits, b.gather.gpu_cache_hits)
      << "iteration " << iter;
  EXPECT_EQ(a.gather.storage_reads, b.gather.storage_reads)
      << "iteration " << iter;
  EXPECT_EQ(a.sampled_edges, b.sampled_edges) << "iteration " << iter;
  EXPECT_EQ(a.input_nodes, b.input_nodes) << "iteration " << iter;
  EXPECT_EQ(a.merged_group, b.merged_group) << "iteration " << iter;
  EXPECT_EQ(a.effective_bandwidth_bps, b.effective_bandwidth_bps)
      << "iteration " << iter;
  EXPECT_EQ(a.pcie_ingress_bps, b.pcie_ingress_bps) << "iteration " << iter;
}

void ExpectPerIterationEqual(const RunCapture& a, const RunCapture& b) {
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    ExpectBatchesEqual(a.iterations[i].batch, b.iterations[i].batch,
                       static_cast<int>(i));
    EXPECT_EQ(a.iterations[i].features, b.iterations[i].features)
        << "iteration " << i;
    ExpectStatsEqual(a.iterations[i].stats, b.iterations[i].stats,
                     static_cast<int>(i));
  }
}

void ExpectTotalsEqual(const RunCapture& a, const RunCapture& b) {
  EXPECT_EQ(a.cache_stats.lookups, b.cache_stats.lookups);
  EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
  EXPECT_EQ(a.cache_stats.misses, b.cache_stats.misses);
  EXPECT_EQ(a.cache_stats.insertions, b.cache_stats.insertions);
  EXPECT_EQ(a.cache_stats.evictions, b.cache_stats.evictions);
  EXPECT_EQ(a.cache_stats.bypasses, b.cache_stats.bypasses);
  EXPECT_EQ(a.storage_reads, b.storage_reads);
  EXPECT_EQ(a.queue_submissions, b.queue_submissions);
}

constexpr int kIterations = 12;

TEST(HostParallelDeterminismTest, GidsThreadsDoNotChangeResults) {
  RunCapture serial = RunLoader(/*bam=*/false, /*host_threads=*/1,
                                /*prefetch_depth=*/0, kIterations);
  RunCapture threaded = RunLoader(/*bam=*/false, /*host_threads=*/8,
                                  /*prefetch_depth=*/0, kIterations);
  ExpectPerIterationEqual(serial, threaded);
  // No prefetch: exactly the consumed groups were prepared, so the
  // end-of-run totals are part of the contract too.
  ExpectTotalsEqual(serial, threaded);
}

TEST(HostParallelDeterminismTest, BamThreadsDoNotChangeResults) {
  RunCapture serial = RunLoader(/*bam=*/true, /*host_threads=*/1,
                                /*prefetch_depth=*/0, kIterations);
  RunCapture threaded = RunLoader(/*bam=*/true, /*host_threads=*/8,
                                  /*prefetch_depth=*/0, kIterations);
  ExpectPerIterationEqual(serial, threaded);
  ExpectTotalsEqual(serial, threaded);
}

TEST(HostParallelDeterminismTest, PrefetchDoesNotChangePerIterationResults) {
  RunCapture inline_prep = RunLoader(/*bam=*/false, /*host_threads=*/1,
                                     /*prefetch_depth=*/0, kIterations);
  for (uint32_t threads : {1u, 8u}) {
    RunCapture prefetched = RunLoader(/*bam=*/false, threads,
                                      /*prefetch_depth=*/1, kIterations);
    ExpectPerIterationEqual(inline_prep, prefetched);
    // End-of-run totals are deliberately NOT compared here: the prefetch
    // task may have prepared groups the consumer never drained.
  }
}

TEST(HostParallelDeterminismTest, PrefetchBamMatchesInline) {
  RunCapture inline_prep = RunLoader(/*bam=*/true, /*host_threads=*/1,
                                     /*prefetch_depth=*/0, kIterations);
  RunCapture prefetched = RunLoader(/*bam=*/true, /*host_threads=*/8,
                                    /*prefetch_depth=*/2, kIterations);
  ExpectPerIterationEqual(inline_prep, prefetched);
}

TEST(HostParallelDeterminismTest, PoolOnlyCreatedWhenRequested) {
  LoaderRig rig;
  GidsOptions serial_opts;
  GidsLoader serial(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), serial_opts);
  EXPECT_EQ(serial.host_pool(), nullptr);

  LoaderRig rig2;
  GidsOptions par_opts;
  par_opts.host_threads = 4;
  GidsLoader parallel(rig2.dataset.get(), rig2.sampler.get(),
                      rig2.seeds.get(), rig2.system.get(), par_opts);
  ASSERT_NE(parallel.host_pool(), nullptr);
  EXPECT_EQ(parallel.host_pool()->num_threads(), 4u);
}

}  // namespace
}  // namespace gids::core
