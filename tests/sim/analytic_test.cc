#include "sim/analytic.h"

#include <gtest/gtest.h>

#include "sim/ssd_model.h"

namespace gids::sim {
namespace {

AccumulatorModelParams PaperParams(int n_ssd = 1) {
  AccumulatorModelParams p;
  p.initial_ns = UsToNs(25);
  p.termination_ns = UsToNs(5);
  p.n_ssd = n_ssd;
  return p;
}

TEST(AnalyticModelTest, ZeroAccessesZeroIops) {
  EXPECT_DOUBLE_EQ(
      ModelAchievedIops(SsdSpec::IntelOptane(), 0, PaperParams()), 0.0);
}

TEST(AnalyticModelTest, AchievedIopsApproachesPeak) {
  SsdSpec optane = SsdSpec::IntelOptane();
  double at_100 = ModelAchievedIops(optane, 100, PaperParams());
  double at_10k = ModelAchievedIops(optane, 10000, PaperParams());
  double at_1m = ModelAchievedIops(optane, 1000000, PaperParams());
  EXPECT_LT(at_100, at_10k);
  EXPECT_LT(at_10k, at_1m);
  EXPECT_LT(at_1m, optane.peak_read_iops);
  EXPECT_GT(at_1m, 0.99 * optane.peak_read_iops);
}

TEST(AnalyticModelTest, RequiredAccessesMatchesPaperValidation) {
  // §4.2: for 95% of Optane peak IOPs the model estimates ~812-860
  // overlapping accesses (with T_i = 25 us, T_t = 5 us).
  uint64_t n = RequiredOverlappingAccesses(SsdSpec::IntelOptane(), 0.95,
                                           PaperParams());
  EXPECT_GE(n, 700u);
  EXPECT_LE(n, 900u);
}

TEST(AnalyticModelTest, RequiredAccessesInvertsTheModel) {
  // Feeding the required count back into the model must achieve the target.
  for (double target : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    for (const SsdSpec& spec :
         {SsdSpec::IntelOptane(), SsdSpec::Samsung980Pro()}) {
      uint64_t n = RequiredOverlappingAccesses(spec, target, PaperParams());
      double achieved = ModelAchievedIops(spec, n, PaperParams());
      EXPECT_NEAR(achieved / spec.peak_read_iops, target, 0.01)
          << spec.name << " target=" << target;
    }
  }
}

TEST(AnalyticModelTest, HigherLatencySsdNeedsMoreAccesses) {
  // The Samsung 980 Pro's threshold is lower in *absolute* IOPs terms but
  // the per-SSD latency effect shows up through peak IOPs scaling; with
  // equal peak the higher-overhead device would need more. Here we check
  // the documented monotonicity in n_ssd instead: more SSDs => linearly
  // more required accesses (§3.2).
  SsdSpec optane = SsdSpec::IntelOptane();
  uint64_t one = RequiredOverlappingAccesses(optane, 0.95, PaperParams(1));
  uint64_t two = RequiredOverlappingAccesses(optane, 0.95, PaperParams(2));
  uint64_t four = RequiredOverlappingAccesses(optane, 0.95, PaperParams(4));
  EXPECT_NEAR(static_cast<double>(two) / one, 2.0, 0.01);
  EXPECT_NEAR(static_cast<double>(four) / one, 4.0, 0.01);
}

TEST(AnalyticModelTest, ModelTracksEventDrivenMeasurement) {
  // Fig. 8's claim: the analytic model predicts the measured (simulated)
  // bandwidth well, especially near peak.
  SsdSpec spec = SsdSpec::IntelOptane();
  AccumulatorModelParams params = PaperParams();
  for (uint64_t n : {512ull, 1024ull, 4096ull, 16384ull}) {
    double model_bw = ModelAchievedBandwidthBps(spec, n, params);
    SsdModel des(spec, 99);
    // The measured kernel keeps n accesses overlapped over many requests;
    // add the launch overheads around the burst the way Eq. 2 counts them.
    SsdBatchResult burst = des.SimulateBurst(n);
    double measured_bw =
        static_cast<double>(n) * spec.io_size_bytes /
        NsToSec(burst.duration_ns + params.initial_ns + params.termination_ns);
    EXPECT_NEAR(model_bw, measured_bw, 0.25 * model_bw) << "n=" << n;
  }
}

TEST(EstimateClosedLoopTest, MatchesEventDrivenAsymptotics) {
  SsdSpec spec = SsdSpec::IntelOptane();
  for (uint64_t conc : {4ull, 17ull, 64ull, 1024ull}) {
    SsdBatchResult est = EstimateClosedLoop(spec, 1, 100000, conc);
    SsdModel des(spec, 7);
    SsdBatchResult sim = des.SimulateClosedLoop(100000, conc);
    EXPECT_NEAR(est.achieved_iops, sim.achieved_iops, 0.15 * sim.achieved_iops)
        << "conc=" << conc;
  }
}

TEST(EstimateClosedLoopTest, ScalesWithSsdCount) {
  SsdSpec spec = SsdSpec::Samsung980Pro();
  SsdBatchResult one = EstimateClosedLoop(spec, 1, 100000, 10000);
  SsdBatchResult four = EstimateClosedLoop(spec, 4, 100000, 10000);
  EXPECT_NEAR(four.bandwidth_bps / one.bandwidth_bps, 4.0, 0.2);
}

TEST(EstimateClosedLoopTest, EmptyBatch) {
  SsdBatchResult r = EstimateClosedLoop(SsdSpec::IntelOptane(), 1, 0, 128);
  EXPECT_EQ(r.duration_ns, 0);
  EXPECT_EQ(r.requests, 0u);
}

}  // namespace
}  // namespace gids::sim
