#ifndef GIDS_SIM_VIRTUAL_CLOCK_H_
#define GIDS_SIM_VIRTUAL_CLOCK_H_

#include "common/check.h"
#include "common/units.h"

namespace gids::sim {

/// Authoritative virtual timeline for one experiment run. All durations
/// produced by the device models are accumulated here; wall-clock time never
/// enters any measurement.
class VirtualClock {
 public:
  VirtualClock() = default;

  TimeNs now() const { return now_; }

  /// Advances the clock by `delta` (must be non-negative).
  void Advance(TimeNs delta) {
    GIDS_CHECK(delta >= 0);
    now_ += delta;
  }

  /// Moves the clock forward to `t` if `t` is later than now.
  void AdvanceTo(TimeNs t) {
    if (t > now_) now_ = t;
  }

  void Reset() { now_ = 0; }

 private:
  TimeNs now_ = 0;
};

}  // namespace gids::sim

#endif  // GIDS_SIM_VIRTUAL_CLOCK_H_
