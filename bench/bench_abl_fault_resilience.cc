// Ablation: storage fault injection vs the bounded-retry layer (FAULTS.md).
//
// Sweeps the per-attempt transient fault rate with the default retry
// policy (4 retries, exponential virtual-time backoff) and reports how
// much the retry layer absorbs: retries and backoff time grow with the
// fault rate while dead letters — and therefore zero-filled
// (degraded) nodes — stay at zero until faults outpace the retry budget.
// The sweep is deterministic: every row is a pure function of the fault
// seed, so reruns reproduce identical counters (the property
// tests/storage/fault_injector_test.cc asserts at unit scale).
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

struct ResilienceRow {
  double slowdown = 1.0;        // e2e vs fault-free
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t dead_letters = 0;
  uint64_t degraded_nodes = 0;
};

ResilienceRow MeasureFaultRate(double fault_rate, TimeNs* baseline_e2e) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);
  core::GidsOptions o;
  o.fault_rate = fault_rate;
  o.fault_seed = 0xfa017;
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/10, /*measure=*/30);

  ResilienceRow row;
  auto* gids = dynamic_cast<core::GidsLoader*>(loader.get());
  const storage::StorageArray& array = gids->storage_array();
  row.retries = array.retries_total();
  row.timeouts = array.timeouts_total();
  row.dead_letters = array.dead_letters_total();
  for (const auto& it : result.per_iteration) {
    row.degraded_nodes += it.gather.degraded_nodes;
  }
  if (fault_rate == 0.0) *baseline_e2e = result.measured_e2e_ns;
  row.slowdown = *baseline_e2e > 0
                     ? static_cast<double>(result.measured_e2e_ns) /
                           static_cast<double>(*baseline_e2e)
                     : 1.0;
  return row;
}

void BM_FaultResilience(benchmark::State& state) {
  // rate = range / 1e4: 0, 0.1%, 1%, 5%, 20% per attempt.
  const double fault_rate = static_cast<double>(state.range(0)) / 1e4;
  static TimeNs baseline_e2e = 0;  // filled by the rate-0 row, which runs first
  ResilienceRow row;
  for (auto _ : state) {
    row = MeasureFaultRate(fault_rate, &baseline_e2e);
  }
  state.counters["retries"] = static_cast<double>(row.retries);
  state.counters["timeouts"] = static_cast<double>(row.timeouts);
  state.counters["dead_letters"] = static_cast<double>(row.dead_letters);
  state.counters["degraded_nodes"] = static_cast<double>(row.degraded_nodes);
  char label[64];
  std::snprintf(label, sizeof(label), "IGB-Full/GIDS fault-rate %.4f",
                fault_rate);
  ReportRow("ABL-FAULT", std::string(label) + " slowdown", row.slowdown, 0,
            "x");
  ReportRow("ABL-FAULT", std::string(label) + " degraded",
            static_cast<double>(row.degraded_nodes), 0, "nodes");
}

BENCHMARK(BM_FaultResilience)
    ->Arg(0)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Silent-corruption sweep (INTEGRITY.md): per-attempt corruption rate with
// verify-on-read enabled. Reports what the integrity layer absorbs —
// repairs (mismatched reads that re-read clean) grow with the rate while
// corrupt nodes (unrepairable, zero-filled) stay at zero until corruption
// outpaces the retry budget — and what verification costs: the overhead
// row is the e2e slowdown vs the same run with the integrity layer off.
struct CorruptionRow {
  double overhead = 1.0;  // e2e vs verification-off
  uint64_t verified = 0;
  uint64_t mismatches = 0;
  uint64_t repairs = 0;
  uint64_t corrupt_nodes = 0;
};

CorruptionRow MeasureCorruptionRate(double corruption_rate,
                                    TimeNs* baseline_e2e) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);
  core::GidsOptions o;
  o.corruption_rate = corruption_rate;
  o.fault_seed = 0xfa017;
  o.verify_reads = true;
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/10, /*measure=*/30);

  CorruptionRow row;
  auto* gids = dynamic_cast<core::GidsLoader*>(loader.get());
  const storage::StorageArray& array = gids->storage_array();
  row.verified = array.verified_reads_total();
  row.mismatches = array.checksum_mismatches_total();
  row.repairs = array.integrity_repairs_total();
  for (const auto& it : result.per_iteration) {
    row.corrupt_nodes += it.gather.corrupt_nodes;
  }
  if (*baseline_e2e == 0) {
    // Verification-off baseline, shared across the sweep.
    Rig base_rig = BuildRig(cfg);
    core::GidsOptions base;
    auto base_loader = MakeLoader(LoaderKind::kGids, base_rig, &base);
    *baseline_e2e =
        RunProtocol(base_rig, *base_loader, 10, 30).measured_e2e_ns;
  }
  row.overhead = *baseline_e2e > 0
                     ? static_cast<double>(result.measured_e2e_ns) /
                           static_cast<double>(*baseline_e2e)
                     : 1.0;
  return row;
}

void BM_CorruptionResilience(benchmark::State& state) {
  // rate = range / 1e4: 0, 0.1%, 1%, 5%, 20% per attempt.
  const double corruption_rate = static_cast<double>(state.range(0)) / 1e4;
  static TimeNs baseline_e2e = 0;  // verification-off run, measured once
  CorruptionRow row;
  for (auto _ : state) {
    row = MeasureCorruptionRate(corruption_rate, &baseline_e2e);
  }
  state.counters["verified"] = static_cast<double>(row.verified);
  state.counters["mismatches"] = static_cast<double>(row.mismatches);
  state.counters["repairs"] = static_cast<double>(row.repairs);
  state.counters["corrupt_nodes"] = static_cast<double>(row.corrupt_nodes);
  char label[72];
  std::snprintf(label, sizeof(label),
                "IGB-Full/GIDS verify-reads corruption-rate %.4f",
                corruption_rate);
  ReportRow("ABL-INTEGRITY", std::string(label) + " overhead",
            (row.overhead - 1.0) * 100.0, 0, "%");
  ReportRow("ABL-INTEGRITY", std::string(label) + " repairs",
            static_cast<double>(row.repairs), 0, "reads");
  ReportRow("ABL-INTEGRITY", std::string(label) + " corrupt",
            static_cast<double>(row.corrupt_nodes), 0, "nodes");
}

BENCHMARK(BM_CorruptionResilience)
    ->Arg(0)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
