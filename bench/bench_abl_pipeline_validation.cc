// Validation: the dataloaders' analytic per-iteration e2e accounting vs a
// discrete-event list-scheduled pipeline over the same stage costs.
//
// Each loader reports e2e_ns per iteration using closed-form overlap rules
// (serial for DGL-mmap, prep-pipelined for Ginex, decoupled for GIDS).
// This bench replays the measured stage costs through sim::SimulatePipeline
// under the matching policy and compares total virtual time — the two
// should agree within a few percent, bounding the error the analytic
// shortcut introduces into Figs. 13/14.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "sim/pipeline_des.h"

namespace gids::bench {
namespace {

std::vector<sim::StageCosts> ToStageCosts(
    const std::vector<loaders::IterationStats>& iters) {
  std::vector<sim::StageCosts> out;
  out.reserve(iters.size());
  for (const auto& st : iters) {
    out.push_back(sim::StageCosts{.sampling_ns = st.sampling_ns,
                                  .aggregation_ns = st.aggregation_ns,
                                  .transfer_ns = st.transfer_ns,
                                  .training_ns = st.training_ns});
  }
  return out;
}

void Validate(benchmark::State& state, LoaderKind kind,
              sim::PipelinePolicy policy, const char* label) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  double analytic_ms = 0;
  double des_ms = 0;
  for (auto _ : state) {
    Rig rig = BuildRig(cfg);
    core::GidsOptions opts;
    if (kind == LoaderKind::kGids) {
      opts.hot_node_order = &CachedPageRankOrder(rig.dataset);
    } else if (kind == LoaderKind::kBam) {
      opts = core::GidsOptions::Bam();
    }
    auto loader = MakeLoader(kind, rig, &opts);
    core::TrainRunResult result =
        RunProtocol(rig, *loader, /*warmup=*/40, /*measure=*/60);
    analytic_ms = NsToMs(result.measured.e2e_ns);
    sim::PipelineResult des =
        sim::SimulatePipeline(ToStageCosts(result.per_iteration), policy);
    des_ms = NsToMs(des.makespan_ns);
  }
  double ratio = analytic_ms / des_ms;
  state.counters["analytic_ms"] = analytic_ms;
  state.counters["des_ms"] = des_ms;
  state.counters["ratio"] = ratio;
  ReportRow("ABL-PIPE", std::string(label) + " analytic total", analytic_ms,
            0, "ms");
  ReportRow("ABL-PIPE", std::string(label) + " DES makespan", des_ms, 0,
            "ms");
  ReportRow("ABL-PIPE", std::string(label) + " analytic/DES ratio", ratio,
            1.0, "x (1.0 = perfect agreement)");
}

void BM_ValidateMmap(benchmark::State& state) {
  Validate(state, LoaderKind::kMmap, sim::PipelinePolicy::kSerial,
           "DGL-mmap (serial)");
}
void BM_ValidateGinex(benchmark::State& state) {
  Validate(state, LoaderKind::kGinex,
           sim::PipelinePolicy::kPrepOverlapsAggregation,
           "Ginex (prep-pipelined)");
}
void BM_ValidateGids(benchmark::State& state) {
  Validate(state, LoaderKind::kGids, sim::PipelinePolicy::kDecoupled,
           "GIDS (decoupled)");
}

BENCHMARK(BM_ValidateMmap)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ValidateGinex)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ValidateGids)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
