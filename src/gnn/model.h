#ifndef GIDS_GNN_MODEL_H_
#define GIDS_GNN_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/optimizer.h"
#include "gnn/tensor.h"
#include "sampling/minibatch.h"

namespace gids::gnn {

/// Interface of a mini-batch GNN classifier: one convolution per sampled
/// block, logits for the seed nodes. Implemented by GraphSageModel
/// (graphsage_model.h) and GcnModel (gcn.h).
class Model {
 public:
  virtual ~Model() = default;

  /// Forward pass over the batch's blocks; `input_features` has one row
  /// per blocks[0].src_nodes. Returns logits, one row per seed.
  virtual Tensor Forward(const sampling::MiniBatch& batch,
                         const Tensor& input_features) = 0;

  /// One training step (forward, loss, backward, optimizer update);
  /// returns the mini-batch loss.
  virtual double TrainStep(const sampling::MiniBatch& batch,
                           const Tensor& input_features,
                           std::span<const uint32_t> labels,
                           Optimizer& optimizer) = 0;

  virtual std::vector<Tensor*> Params() = 0;
  virtual std::vector<Tensor*> Grads() = 0;
  virtual void ZeroGrad() = 0;
};

}  // namespace gids::gnn

#endif  // GIDS_GNN_MODEL_H_
