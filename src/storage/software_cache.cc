#include "storage/software_cache.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace gids::storage {

SoftwareCache::SoftwareCache(uint64_t capacity_bytes, uint32_t line_bytes,
                             uint64_t seed, bool store_payloads)
    : store_payloads_(store_payloads), line_bytes_(line_bytes), rng_(seed) {
  GIDS_CHECK(line_bytes > 0);
  uint64_t capacity_lines = capacity_bytes / line_bytes;
  GIDS_CHECK(capacity_lines > 0);
  lines_.resize(capacity_lines);
  if (store_payloads_) data_.resize(capacity_lines * line_bytes);
  index_.reserve(capacity_lines * 2);
  free_slots_.reserve(capacity_lines);
  for (size_t s = capacity_lines; s-- > 0;) free_slots_.push_back(s);
}

const std::byte* SoftwareCache::Lookup(uint64_t page) {
  GIDS_CHECK(store_payloads_);
  ++stats_.lookups;
  auto it = index_.find(page);
  if (it == index_.end()) {
    ++stats_.misses;
    // A missing access still consumes one registered future reuse: the
    // window counted this very access when the mini-batch entered the
    // look-ahead window. Without this, miss-path counters never drain and
    // lines pin forever.
    ConsumeReuse(page, kNoSlot);
    return nullptr;
  }
  ++stats_.hits;
  ConsumeReuse(page, it->second);
  return data_.data() + it->second * line_bytes_;
}

bool SoftwareCache::Touch(uint64_t page) {
  ++stats_.lookups;
  auto it = index_.find(page);
  if (it == index_.end()) {
    ++stats_.misses;
    ConsumeReuse(page, kNoSlot);
    return false;
  }
  ++stats_.hits;
  ConsumeReuse(page, it->second);
  return true;
}

void SoftwareCache::ConsumeReuse(uint64_t page, size_t slot) {
  auto reuse = future_reuse_.find(page);
  if (reuse == future_reuse_.end()) return;
  if (reuse->second > 0) --reuse->second;
  if (reuse->second == 0) {
    future_reuse_.erase(reuse);
    if (slot != kNoSlot && lines_[slot].state == LineState::kUse) {
      lines_[slot].state = LineState::kSafeToEvict;
    }
  }
}

size_t SoftwareCache::AcquireSlot(uint64_t page) {
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    // Random eviction with bounded probing: skip USE (pinned) lines.
    bool found = false;
    slot = 0;
    for (int probe = 0; probe < max_probes_; ++probe) {
      size_t candidate = rng_.UniformInt(lines_.size());
      if (lines_[candidate].state == LineState::kSafeToEvict) {
        slot = candidate;
        found = true;
        break;
      }
      ++stats_.pinned_probe_skips;
    }
    if (!found) {
      ++stats_.bypasses;
      return static_cast<size_t>(-1);
    }
    index_.erase(lines_[slot].page);
    ++stats_.evictions;
  }
  lines_[slot].page = page;
  uint32_t reuse = FutureReuseCount(page);
  lines_[slot].state = reuse > 0 ? LineState::kUse : LineState::kSafeToEvict;
  index_.emplace(page, slot);
  ++stats_.insertions;
  return slot;
}

bool SoftwareCache::Insert(uint64_t page, std::span<const std::byte> payload) {
  GIDS_CHECK(store_payloads_);
  GIDS_CHECK(payload.size() == line_bytes_);
  auto it = index_.find(page);
  if (it != index_.end()) {
    std::memcpy(data_.data() + it->second * line_bytes_, payload.data(),
                line_bytes_);
    return true;
  }
  size_t slot = AcquireSlot(page);
  if (slot == static_cast<size_t>(-1)) return false;
  std::memcpy(data_.data() + slot * line_bytes_, payload.data(), line_bytes_);
  return true;
}

bool SoftwareCache::InsertMeta(uint64_t page) {
  if (index_.count(page) > 0) return true;
  return AcquireSlot(page) != static_cast<size_t>(-1);
}

void SoftwareCache::AddFutureReuse(uint64_t page, uint32_t count) {
  if (count == 0) return;
  uint32_t& counter = future_reuse_[page];
  counter += count;
  auto it = index_.find(page);
  if (it != index_.end()) {
    lines_[it->second].state = LineState::kUse;
  }
}

void SoftwareCache::ClearFutureReuse() {
  future_reuse_.clear();
  for (auto& line : lines_) {
    if (line.state == LineState::kUse) line.state = LineState::kSafeToEvict;
  }
}

uint64_t SoftwareCache::pinned_lines() const {
  uint64_t n = 0;
  for (const auto& line : lines_) {
    if (line.state == LineState::kUse) ++n;
  }
  return n;
}

uint32_t SoftwareCache::FutureReuseCount(uint64_t page) const {
  auto it = future_reuse_.find(page);
  return it == future_reuse_.end() ? 0 : it->second;
}

void SoftwareCache::BindMetrics(obs::MetricRegistry* registry,
                                const obs::Labels& labels) const {
  GIDS_CHECK(registry != nullptr);
  using obs::MetricType;
  auto counter = [&](const char* name, const uint64_t* field) {
    registry->RegisterCallback(name, labels, MetricType::kCounter,
                               [field] { return static_cast<double>(*field); });
  };
  counter("gids_cache_lookups_total", &stats_.lookups);
  counter("gids_cache_hits_total", &stats_.hits);
  counter("gids_cache_misses_total", &stats_.misses);
  counter("gids_cache_insertions_total", &stats_.insertions);
  counter("gids_cache_evictions_total", &stats_.evictions);
  counter("gids_cache_pinned_probe_skips_total", &stats_.pinned_probe_skips);
  counter("gids_cache_bypasses_total", &stats_.bypasses);
  registry->RegisterCallback("gids_cache_hit_ratio", labels,
                             MetricType::kGauge,
                             [this] { return stats_.HitRatio(); });
  registry->RegisterCallback(
      "gids_cache_resident_lines", labels, MetricType::kGauge,
      [this] { return static_cast<double>(resident_lines()); });
  registry->RegisterCallback(
      "gids_cache_pinned_lines", labels, MetricType::kGauge,
      [this] { return static_cast<double>(pinned_lines()); });
  registry->RegisterCallback(
      "gids_cache_capacity_lines", labels, MetricType::kGauge,
      [this] { return static_cast<double>(capacity_lines()); });
}

}  // namespace gids::storage
