file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_sampling.dir/bench_fig07_sampling.cc.o"
  "CMakeFiles/bench_fig07_sampling.dir/bench_fig07_sampling.cc.o.d"
  "bench_fig07_sampling"
  "bench_fig07_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
