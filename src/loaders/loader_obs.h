#ifndef GIDS_LOADERS_LOADER_OBS_H_
#define GIDS_LOADERS_LOADER_OBS_H_

#include <atomic>
#include <string>

#include "common/units.h"
#include "loaders/dataloader.h"
#include "obs/exemplar.h"
#include "obs/ledger.h"
#include "obs/metric_registry.h"
#include "obs/time_series.h"
#include "obs/trace_recorder.h"

namespace gids::loaders {

/// Shared observability wiring for dataloaders, so the GIDS loader and the
/// baselines (mmap, Ginex, BaM) export the same per-iteration series and
/// comparisons are apples-to-apples:
///
///  - metrics (label {loader=<name>}): gids_loader_iterations_total,
///    gids_loader_stage_ns_total{stage=...}, gids_loader_e2e_ns_total,
///    gids_loader_sampled_edges_total,
///    gids_loader_gather_pages_total
///    {path=cpu_buffer|gpu_cache|storage|coalesced}
///    (path=cpu_buffer means "served host-side": the constant CPU buffer
///    for GIDS, the OS page cache for mmap, the Belady cache for Ginex;
///    path=coalesced counts page requests folded into a same-page
///    sibling's round-trip by the coalescing gather, 0 unless
///    coalesce_pages is on),
///    and histograms gids_loader_e2e_ns / gids_loader_input_nodes;
///
///  - trace spans in virtual time: one "iteration" span per iteration on
///    track 0 and one span per non-empty stage on the per-stage tracks
///    1..4. Stage spans are laid out sequentially from the iteration
///    start; when a loader's pipelining makes an iteration's stage work
///    exceed its e2e share, the per-track cursor pushes the span right so
///    spans on a track never overlap.
///
/// With either attribution sink set (`timeline` / `exemplars`,
/// OBSERVABILITY.md "Tail-latency attribution"), every iteration's
/// (end time, e2e, cost ledger) sample feeds the sinks, the per-component
/// ledger series (gids_ledger_ns_total{component=...} plus the signed
/// gids_ledger_overlap_credit_ns_total) are exported, and the iteration
/// span carries ledger_* args. With both null, none of that exists and the
/// metric/trace output is byte-identical to the pre-attribution layer.
///
/// All sinks are optional (null pointer disables that sink). Not
/// thread-safe; one observer belongs to one loader's Next() pipeline.
class LoaderObserver {
 public:
  LoaderObserver(obs::MetricRegistry* metrics, obs::TraceRecorder* trace,
                 const std::string& loader_name,
                 obs::TimeSeries* timeline = nullptr,
                 obs::ExemplarReservoir* exemplars = nullptr,
                 obs::ExemplarReservoir* failover_exemplars = nullptr);

  /// Records one delivered iteration: bumps the metric series and lays the
  /// iteration's spans onto the virtual-time timeline.
  void RecordIteration(const IterationStats& stats);

  /// Emits a thread-scoped instant event at the current virtual-clock
  /// position (accumulator group flush, superbatch boundary, ...).
  void Instant(const char* name, obs::TraceArgs args = {});

  obs::MetricRegistry* metrics() const { return metrics_; }
  obs::TraceRecorder* trace() const { return trace_; }
  obs::TimeSeries* timeline() const { return timeline_; }
  obs::ExemplarReservoir* exemplars() const { return exemplars_; }
  obs::ExemplarReservoir* failover_exemplars() const {
    return failover_exemplars_;
  }
  const obs::Labels& labels() const { return labels_; }

  /// Virtual-time position where the next iteration's spans start (the sum
  /// of all recorded iterations' e2e_ns).
  TimeNs clock_ns() const { return clock_; }

 private:
  static constexpr int kIterationTrack = 0;
  static constexpr int kNumStages = 4;  // sampling..training on tracks 1..4

  obs::MetricRegistry* metrics_;
  obs::TraceRecorder* trace_;
  obs::TimeSeries* timeline_;
  obs::ExemplarReservoir* exemplars_;
  // Failover exemplars (FAULTS.md "Durability & failover"): iterations
  // whose gather failed over to a replica, ranked by failover count so
  // `gids_cli report` can name the device failed FROM and replica failed
  // TO for the worst offenders. Only fed when failovers > 0.
  obs::ExemplarReservoir* failover_exemplars_;
  bool attribution_;  // either attribution sink present
  obs::Labels labels_;

  obs::Counter* iterations_total_ = nullptr;
  obs::Counter* stage_ns_total_[kNumStages] = {};
  obs::Counter* e2e_ns_total_ = nullptr;
  obs::Counter* sampled_edges_total_ = nullptr;
  // cpu_buffer, gpu_cache, storage, coalesced
  obs::Counter* gather_pages_total_[4] = {};
  obs::Counter* degraded_nodes_total_ = nullptr;
  obs::Counter* corrupt_nodes_total_ = nullptr;
  obs::HistogramMetric* e2e_ns_hist_ = nullptr;
  obs::HistogramMetric* input_nodes_hist_ = nullptr;

  // Attribution series (created only with metrics_ && attribution_): one
  // counter per positive ledger component, and a signed accumulator behind
  // the overlap-credit callback (credits can exceed the positive residue
  // of a small merged iteration, so the running sum may dip negative).
  obs::Counter* ledger_ns_total_[obs::IterationLedger::kNumComponents - 1] =
      {};
  std::atomic<int64_t> overlap_credit_ns_sum_{0};

  TimeNs clock_ = 0;
  TimeNs lane_cursor_[kNumStages] = {};
  uint64_t iteration_index_ = 0;
};

}  // namespace gids::loaders

#endif  // GIDS_LOADERS_LOADER_OBS_H_
