# Empty compiler generated dependencies file for bench_fig07_sampling.
# This may be replaced when dependencies are built.
