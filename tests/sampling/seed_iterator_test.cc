#include "sampling/seed_iterator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gids::sampling {
namespace {

using graph::NodeId;

std::vector<NodeId> Ids(int n) {
  std::vector<NodeId> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = static_cast<NodeId>(i);
  return ids;
}

TEST(SeedIteratorTest, BatchSizes) {
  SeedIterator it(Ids(10), 4);
  EXPECT_EQ(it.NextBatch().size(), 4u);
  EXPECT_EQ(it.NextBatch().size(), 4u);
  EXPECT_EQ(it.NextBatch().size(), 2u);  // short final batch
  EXPECT_EQ(it.NextBatch().size(), 4u);  // next epoch
}

TEST(SeedIteratorTest, EpochCoversAllIdsExactlyOnce) {
  SeedIterator it(Ids(100), 7);
  std::multiset<NodeId> seen;
  for (uint64_t b = 0; b < it.batches_per_epoch(); ++b) {
    for (NodeId v : it.NextBatch()) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(seen.count(v), 1u);
}

TEST(SeedIteratorTest, EpochsReshuffle) {
  SeedIterator it(Ids(64), 64);
  std::vector<NodeId> first = it.NextBatch();
  std::vector<NodeId> second = it.NextBatch();
  EXPECT_TRUE(std::is_permutation(first.begin(), first.end(), second.begin()));
  EXPECT_NE(first, second);
}

TEST(SeedIteratorTest, EpochCounter) {
  SeedIterator it(Ids(8), 4);
  EXPECT_EQ(it.epoch(), 0u);
  it.NextBatch();
  it.NextBatch();
  EXPECT_EQ(it.epoch(), 0u);
  it.NextBatch();  // wraps
  EXPECT_EQ(it.epoch(), 1u);
}

TEST(SeedIteratorTest, BatchesServedCounter) {
  SeedIterator it(Ids(8), 3);
  for (int i = 0; i < 5; ++i) it.NextBatch();
  EXPECT_EQ(it.batches_served(), 5u);
}

TEST(SeedIteratorTest, DeterministicInSeed) {
  SeedIterator a(Ids(50), 5, 77);
  SeedIterator b(Ids(50), 5, 77);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextBatch(), b.NextBatch());
}

TEST(SeedIteratorTest, BatchLargerThanIds) {
  SeedIterator it(Ids(3), 10);
  EXPECT_EQ(it.NextBatch().size(), 3u);
  EXPECT_EQ(it.batches_per_epoch(), 1u);
}

// Degenerate configurations must abort at construction with an explicit
// message, not serve empty batches forever (empty id set) or divide by
// zero in batches_per_epoch() (zero batch size).
TEST(SeedIteratorDeathTest, EmptyTrainIdsRejectedAtConstruction) {
  EXPECT_DEATH(SeedIterator(std::vector<NodeId>{}, 4),
               "non-empty train-id set");
}

TEST(SeedIteratorDeathTest, ZeroBatchSizeRejectedAtConstruction) {
  EXPECT_DEATH(SeedIterator(Ids(8), 0), "batch_size > 0");
}

// NextBatch is a thin wrapper over NextBatchInto; the two must draw the
// same RNG stream and emit the same ids batch for batch, across epoch
// boundaries (including the reshuffle), so the paths cannot drift.
TEST(SeedIteratorTest, NextBatchMatchesNextBatchIntoBitIdentically) {
  SeedIterator a(Ids(23), 5, 99);
  SeedIterator b(Ids(23), 5, 99);
  std::vector<NodeId> into;
  for (int i = 0; i < 30; ++i) {  // > 6 epochs of 5 batches
    b.NextBatchInto(into);
    EXPECT_EQ(a.NextBatch(), into) << "batch " << i;
  }
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.batches_served(), b.batches_served());
}

}  // namespace
}  // namespace gids::sampling
