#ifndef GIDS_STORAGE_FEATURE_GATHER_H_
#define GIDS_STORAGE_FEATURE_GATHER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/feature_store.h"
#include "graph/types.h"
#include "storage/bam_array.h"

namespace gids::storage {

/// Interface for a host-pinned hot-node feature buffer (implemented by
/// core::ConstantCpuBuffer). Gathers check it before touching the cache or
/// storage: hot nodes are served from CPU memory over PCIe (§3.3).
/// Implementations must be safe for concurrent Contains/Fill calls.
class HotNodeBuffer {
 public:
  virtual ~HotNodeBuffer() = default;
  virtual bool Contains(graph::NodeId node) const = 0;
  /// Copies the node's feature vector into `out` (size >= feature_dim).
  virtual void Fill(graph::NodeId node, std::span<float> out) const = 0;
};

/// Traffic counts for one feature gather, keyed by service path. These are
/// the functional inputs to sim::ComputeAggregationTiming; one "request"
/// is one storage-page-sized access (so nodes with page-spanning features
/// count more than once, matching the paper's I/O accounting).
struct FeatureGatherCounts {
  uint64_t nodes = 0;
  uint64_t cpu_buffer_hits = 0;  // page-equivalents served from CPU buffer
  uint64_t gpu_cache_hits = 0;
  uint64_t storage_reads = 0;
  /// Nodes served incompletely because a storage read exhausted its
  /// retries (FAULTS.md): the failed page slice of the row is zero-filled
  /// and the node is counted here exactly once. 0 unless fault injection
  /// is enabled and a read was dead-lettered.
  uint64_t degraded_nodes = 0;
  /// Nodes served incompletely because a page never verified clean within
  /// its retry budget (Status::DataLoss, INTEGRITY.md): unrepairable
  /// silent corruption. Zero-filled and counted exactly once per node,
  /// disjoint from degraded_nodes' loud-failure accounting.
  uint64_t corrupt_nodes = 0;

  uint64_t total_page_requests() const {
    return cpu_buffer_hits + gpu_cache_hits + storage_reads;
  }
  void Add(const FeatureGatherCounts& o) {
    nodes += o.nodes;
    cpu_buffer_hits += o.cpu_buffer_hits;
    gpu_cache_hits += o.gpu_cache_hits;
    storage_reads += o.storage_reads;
    degraded_nodes += o.degraded_nodes;
    corrupt_nodes += o.corrupt_nodes;
  }
};

/// Gathers node feature vectors through the BaM path: constant CPU buffer
/// (optional) -> GPU software cache -> SSD array. Output rows are float32
/// feature vectors in the order of `nodes`.
///
/// With a ThreadPool the gather runs as a shard-keyed two-phase pipeline
/// that is bit-identical to the serial gather for any thread count:
///   Phase 1 (parallel over node chunks): validate ids, serve hot nodes
///     from the CPU buffer, and bucket every page access by the cache
///     shard that owns it, preserving global node order within each
///     bucket (chunks are contiguous and concatenated in index order).
///   Phase 2 (parallel over shards): replay each shard's access sequence
///     in order against the cache/storage path with a per-shard page
///     scratch buffer, then reduce the per-shard counts.
/// Because every cache shard still sees exactly the access sequence the
/// serial gather would have produced, hits, evictions, and pin drains are
/// independent of the thread count. One gather may run at a time; callers
/// (GidsLoader) serialize gathers and parallelize within them.
///
/// Degraded mode (FAULTS.md): a storage read that exhausted its retries
/// (Status::Unavailable from the fault-injected array) does not fail the
/// gather. The failed page's slice of each affected output row is
/// zero-filled, the node is counted once in counts->degraded_nodes, and
/// the gather completes. Unrepairable silent corruption (Status::DataLoss
/// from a verifying array, INTEGRITY.md) degrades the same way but is
/// counted separately in counts->corrupt_nodes. Hard device errors
/// (kIoError) still abort.
class FeatureGatherer {
 public:
  /// `hot_buffer` may be null (plain BaM gather). `pool` may be null
  /// (serial gather; also the fallback for single-shard caches).
  FeatureGatherer(const graph::FeatureStore* layout, BamArray* array,
                  const HotNodeBuffer* hot_buffer = nullptr,
                  ThreadPool* pool = nullptr);

  const graph::FeatureStore& layout() const { return *layout_; }

  /// Gathers features for `nodes` into `out` (size >= nodes.size() * dim).
  Status Gather(std::span<const graph::NodeId> nodes, std::span<float> out,
                FeatureGatherCounts* counts);

  /// Convenience: gather into a freshly allocated buffer.
  StatusOr<std::vector<float>> Gather(std::span<const graph::NodeId> nodes,
                                      FeatureGatherCounts* counts);

  /// Counting-mode gather: identical cache/CPU-buffer/storage decisions
  /// and counts, no payload movement. Used where only the traffic counts
  /// feed the timing models (terabyte-scale benchmark runs).
  Status GatherCountsOnly(std::span<const graph::NodeId> nodes,
                          FeatureGatherCounts* counts);

 private:
  /// Shared two-phase implementation; `out` == nullptr is counting mode.
  Status GatherImpl(std::span<const graph::NodeId> nodes, float* out,
                    FeatureGatherCounts* counts);

  /// Bucket that owns `page` in phase 2: the cache shard, or a fixed
  /// power-of-two hash bucket when the array is cache-less (the storage
  /// path is commutative, so cache-less bucketing is unconstrained).
  uint32_t BucketFor(uint64_t page) const;

  const graph::FeatureStore* layout_;
  BamArray* array_;
  const HotNodeBuffer* hot_buffer_;
  ThreadPool* pool_;
  uint32_t cacheless_buckets_ = 1;  // power of two
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_FEATURE_GATHER_H_
