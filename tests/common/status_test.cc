#include "common/status.h"

#include <gtest/gtest.h>

namespace gids {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing page");
  EXPECT_EQ(s.ToString(), "NotFound: missing page");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsesMacros(int x, int* out) {
  GIDS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UsesMacros(3, &out).ok());
  EXPECT_EQ(out, 6);
  Status s = UsesMacros(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, ReturnIfError) {
  auto fn = [](bool fail) -> Status {
    GIDS_RETURN_IF_ERROR(fail ? Status::IoError("disk") : Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(fn(true).code(), StatusCode::kIoError);
  EXPECT_EQ(fn(false).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace gids
