file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_request_rate.dir/bench_fig03_request_rate.cc.o"
  "CMakeFiles/bench_fig03_request_rate.dir/bench_fig03_request_rate.cc.o.d"
  "bench_fig03_request_rate"
  "bench_fig03_request_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_request_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
