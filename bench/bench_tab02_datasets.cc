// Reproduces Tables 2 and 3: the dataset catalog (node/edge counts,
// feature dimensions, graph type) and the properties of the scaled proxies
// the benchmark suite actually materializes. Verifies that each proxy
// preserves the published average degree and degree skew.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/common.h"

namespace gids::bench {
namespace {

void BM_DatasetProxy(benchmark::State& state, graph::DatasetSpec spec,
                     double scale) {
  ProxyConfig cfg;
  cfg.spec = spec;
  cfg.scale = scale;
  Rig rig = BuildRig(cfg);
  const graph::Dataset& ds = *rig.dataset;

  double paper_degree = static_cast<double>(spec.paper_num_edges) /
                        static_cast<double>(spec.paper_num_nodes);
  double proxy_degree = static_cast<double>(ds.graph.num_edges()) /
                        std::max<graph::NodeId>(1, ds.graph.num_nodes());

  // Degree skew: edge share held by the top-1% in-degree nodes.
  std::vector<graph::EdgeIdx> degrees;
  degrees.reserve(ds.graph.num_nodes());
  for (graph::NodeId v = 0; v < ds.graph.num_nodes(); ++v) {
    degrees.push_back(ds.graph.in_degree(v));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  graph::EdgeIdx top = 0;
  for (size_t i = 0; i < degrees.size() / 100; ++i) top += degrees[i];
  double skew = static_cast<double>(top) /
                std::max<graph::EdgeIdx>(1, ds.graph.num_edges());

  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.graph.num_edges());
  }
  state.counters["proxy_nodes"] = static_cast<double>(ds.graph.num_nodes());
  state.counters["proxy_edges"] = static_cast<double>(ds.graph.num_edges());
  state.counters["avg_degree"] = proxy_degree;
  state.counters["top1pct_edge_share"] = skew;

  ReportRow("TAB02", spec.name + " nodes",
            static_cast<double>(ds.graph.num_nodes()),
            static_cast<double>(spec.paper_num_nodes) * scale, "nodes");
  ReportRow("TAB02", spec.name + " edges",
            static_cast<double>(ds.graph.num_edges()),
            static_cast<double>(spec.paper_num_edges) * scale, "edges");
  ReportRow("TAB02", spec.name + " avg degree", proxy_degree, paper_degree,
            "edges/node");
  ReportRow("TAB02", spec.name + " feature dim",
            static_cast<double>(ds.features.feature_dim()),
            static_cast<double>(spec.feature_dim), "float32");
  ReportRow("TAB02", spec.name + " top-1% edge share", skew, 0, "fraction");
}

// Table 2 (real-world datasets, scaled proxies).
BENCHMARK_CAPTURE(BM_DatasetProxy, ogbn_papers100M,
                  graph::DatasetSpec::OgbnPapers100M(), kProxyScale)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DatasetProxy, igb_full, graph::DatasetSpec::IgbFull(),
                  kProxyScale)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DatasetProxy, mag240m, graph::DatasetSpec::Mag240M(),
                  kProxyScale)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DatasetProxy, igbh_full, graph::DatasetSpec::IgbhFull(),
                  kProxyScale)
    ->Iterations(1);

// Table 3 (IGB micro-benchmark datasets; tiny and small at full scale).
BENCHMARK_CAPTURE(BM_DatasetProxy, igb_tiny, graph::DatasetSpec::IgbTiny(),
                  1.0)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DatasetProxy, igb_small, graph::DatasetSpec::IgbSmall(),
                  1.0)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DatasetProxy, igb_medium,
                  graph::DatasetSpec::IgbMedium(), 0.1)
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_DatasetProxy, igb_large, graph::DatasetSpec::IgbLarge(),
                  0.01)
    ->Iterations(1);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
