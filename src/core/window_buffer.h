#ifndef GIDS_CORE_WINDOW_BUFFER_H_
#define GIDS_CORE_WINDOW_BUFFER_H_

#include <cstdint>

#include "graph/feature_store.h"
#include "obs/metric_registry.h"
#include "sampling/minibatch.h"
#include "storage/feature_gather.h"
#include "storage/software_cache.h"

namespace gids::core {

/// Window buffering (§3.4, Fig. 6): the GIDS loader samples a configurable
/// number of mini-batches ahead; for every node that will be accessed in
/// those future mini-batches, the per-page future-reuse counter in the GPU
/// software cache is incremented (step 3-4), putting cached lines into the
/// "USE" state so the random eviction policy skips them (step 5). Each
/// actual access during feature aggregation decrements the counter; at
/// zero the line returns to "Safe to Evict".
///
/// Nodes served by the constant CPU buffer never enter the GPU cache, so
/// they are excluded from registration.
class WindowBuffer {
 public:
  WindowBuffer(storage::SoftwareCache* cache,
               const graph::FeatureStore* layout,
               const storage::HotNodeBuffer* hot_buffer = nullptr);

  /// Registers one mini-batch that just became visible in the look-ahead
  /// window. Must be called exactly once per mini-batch before its gather.
  void Register(const sampling::MiniBatch& batch);

  uint64_t registered_batches() const { return registered_batches_; }
  uint64_t registered_pages() const { return registered_pages_; }

  /// GPU-memory footprint of the sampled-node-id lists currently held for
  /// look-ahead (the §3.4 trade-off: deeper windows cost GPU memory).
  uint64_t IdListBytes(const sampling::MiniBatch& batch) const {
    return batch.num_input_nodes() * sizeof(graph::NodeId);
  }

  /// Exposes registration counters through `registry`; the pinned-line
  /// gauge itself lives with the cache (SoftwareCache::BindMetrics).
  void BindMetrics(obs::MetricRegistry* registry,
                   const obs::Labels& labels) const;

 private:
  storage::SoftwareCache* cache_;
  const graph::FeatureStore* layout_;
  const storage::HotNodeBuffer* hot_buffer_;
  uint64_t registered_batches_ = 0;
  uint64_t registered_pages_ = 0;
};

/// Default window depth "based on the system environment" (§3.4): the
/// look-ahead only beats random eviction once it sees further than what
/// the cache would retain anyway (Fig. 11: depth 4 ~ random when the
/// cache holds ~4 mini-batches), so the depth is set to twice the
/// cache-to-minibatch ratio, clamped to [2, 32].
int AutoWindowDepth(uint64_t cache_bytes, uint64_t minibatch_bytes);

}  // namespace gids::core

#endif  // GIDS_CORE_WINDOW_BUFFER_H_
