#include "core/trainer.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "gnn/gat.h"
#include "gnn/gcn.h"
#include "gnn/loss.h"
#include "gnn/optimizer.h"

namespace gids::core {

Trainer::Trainer(const graph::Dataset* dataset, TrainerOptions options)
    : dataset_(dataset), options_(options) {
  GIDS_CHECK(dataset_ != nullptr);
}

StatusOr<TrainRunResult> Trainer::Run(loaders::DataLoader& loader) {
  TrainRunResult result;

  std::unique_ptr<gnn::Model> model;
  std::unique_ptr<gnn::AdamOptimizer> optimizer;
  Rng model_rng(options_.seed);

  auto train_functionally = [&](const loaders::LoaderBatch& lb) -> Status {
    if (lb.features.empty()) {
      return Status::FailedPrecondition(
          "functional training requires materialized features "
          "(loader is in counting mode)");
    }
    if (model == nullptr) {
      int layers = static_cast<int>(lb.batch.blocks.size());
      if (options_.model == ModelKind::kGat) {
        gnn::GatConfig cfg;
        cfg.in_dim = dataset_->features.feature_dim();
        cfg.hidden_dim = options_.hidden_dim;
        cfg.num_classes = options_.num_classes;
        cfg.num_layers = layers;
        model = std::make_unique<gnn::GatModel>(cfg, model_rng);
      } else if (options_.model == ModelKind::kGcn) {
        gnn::GcnConfig cfg;
        cfg.in_dim = dataset_->features.feature_dim();
        cfg.hidden_dim = options_.hidden_dim;
        cfg.num_classes = options_.num_classes;
        cfg.num_layers = layers;
        model = std::make_unique<gnn::GcnModel>(cfg, model_rng);
      } else {
        gnn::GraphSageConfig cfg;
        cfg.in_dim = dataset_->features.feature_dim();
        cfg.hidden_dim = options_.hidden_dim;
        cfg.num_classes = options_.num_classes;
        cfg.num_layers = layers;
        model = std::make_unique<gnn::GraphSageModel>(cfg, model_rng);
      }
      optimizer =
          std::make_unique<gnn::AdamOptimizer>(options_.learning_rate);
    }
    gnn::Tensor inputs = gnn::Tensor::FromData(
        lb.batch.num_input_nodes(), dataset_->features.feature_dim(),
        lb.features);
    std::vector<uint32_t> labels = gnn::SyntheticLabels(
        dataset_->features, lb.batch.seeds, options_.num_classes);
    double loss = model->TrainStep(lb.batch, inputs, labels, *optimizer);
    result.losses.push_back(loss);
    if (options_.track_accuracy) {
      gnn::Tensor logits = model->Forward(lb.batch, inputs);
      result.accuracies.push_back(gnn::Accuracy(logits, labels));
    }
    return Status::OK();
  };

  for (uint64_t i = 0; i < options_.warmup_iterations; ++i) {
    GIDS_ASSIGN_OR_RETURN(loaders::LoaderBatch lb, loader.Next());
    result.warmup.Add(lb.stats);
    if (options_.functional_training) {
      GIDS_RETURN_IF_ERROR(train_functionally(lb));
    }
    loader.Recycle(std::move(lb));
  }
  result.losses.clear();  // report measured-phase losses/accuracies only
  result.accuracies.clear();

  auto wall_start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < options_.measure_iterations; ++i) {
    GIDS_ASSIGN_OR_RETURN(loaders::LoaderBatch lb, loader.Next());
    result.measured.Add(lb.stats);
    result.per_iteration.push_back(lb.stats);
    result.e2e_ns_histogram.Add(static_cast<uint64_t>(lb.stats.e2e_ns));
    if (options_.functional_training) {
      GIDS_RETURN_IF_ERROR(train_functionally(lb));
    }
    loader.Recycle(std::move(lb));
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  result.measured_e2e_ns = result.measured.e2e_ns;
  if (!result.losses.empty()) {
    result.first_loss = result.losses.front();
    result.last_loss = result.losses.back();
  }
  return result;
}

}  // namespace gids::core
