// Reproduces Figure 13: end-to-end GNN training time of the GIDS
// dataloader vs the DGL-mmap, Ginex, and BaM baselines with Samsung
// 980 Pro SSDs (GraphSAGE, 3-layer neighborhood sampling).
//
// Paper anchors (figure caption): GIDS achieves up to 582x, 10.62x, and
// 3.09x speedups over DGL-mmap, Ginex, and BaM respectively. The giant
// DGL gap comes from serial page faults paying the 980 Pro's ~324 us read
// latency per miss; the gains on ogbn-papers100M and MAG240M are far
// smaller because those datasets fit in CPU memory. Per-dataset headline
// speedups below are the caption maxima, attributed to the
// larger-than-memory datasets.
#include "bench/e2e_common.h"

namespace gids::bench {
namespace {

const sim::SsdSpec kSsd = sim::SsdSpec::Samsung980Pro();

void BM_E2E(benchmark::State& state, E2ECase c) {
  RunE2E(state, "FIG13", c, kSsd);
}

// Paper speedups: only the caption maxima are published; we attach them
// to the datasets they come from (the terabyte-scale graphs) and report
// the in-memory datasets without a paper anchor.
BENCHMARK_CAPTURE(BM_E2E, ogbn_papers100M,
                  E2ECase{graph::DatasetSpec::OgbnPapers100M(), 0, 0, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2E, igb_full,
                  E2ECase{graph::DatasetSpec::IgbFull(), 582.0, 10.62, 3.09})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2E, mag240m,
                  E2ECase{graph::DatasetSpec::Mag240M(), 0, 0, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_E2E, igbh_full,
                  E2ECase{graph::DatasetSpec::IgbhFull(), 582.0, 0, 3.09})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
