#include "sampling/hetero_sampler.h"

#include <algorithm>

#include "common/check.h"
#include "common/workspace_pool.h"

namespace gids::sampling {

HeteroNeighborSampler::HeteroNeighborSampler(
    const graph::CscGraph* graph, std::vector<graph::NodeTypeInfo> node_types,
    HeteroSamplerOptions options, uint64_t seed)
    : graph_(graph),
      node_types_(std::move(node_types)),
      options_(std::move(options)),
      seed_(seed) {
  GIDS_CHECK(graph_ != nullptr);
  GIDS_CHECK(!node_types_.empty());
  GIDS_CHECK(!options_.fanouts.empty());
  // Type ranges must be contiguous and cover the graph.
  graph::NodeId covered = 0;
  for (const auto& t : node_types_) {
    GIDS_CHECK(t.offset == covered);
    covered += t.count;
  }
  GIDS_CHECK(covered == graph_->num_nodes());
  for (const auto& layer : options_.fanouts) {
    GIDS_CHECK(layer.size() == node_types_.size());
    for (int f : layer) GIDS_CHECK(f >= 0);
  }
}

size_t HeteroNeighborSampler::TypeOf(graph::NodeId v) const {
  GIDS_DCHECK(v < graph_->num_nodes());
  // Few types (<= ~8): linear scan beats binary search.
  for (size_t i = 0; i < node_types_.size(); ++i) {
    if (v < node_types_[i].offset + node_types_[i].count) return i;
  }
  GIDS_CHECK(false);
  return 0;
}

void HeteroNeighborSampler::SampleAtInto(std::span<const graph::NodeId> seeds,
                                         uint64_t iteration, MiniBatch* out) {
  Rng rng = IterationRng(seed_, iteration);
  out->Reset();
  out->seeds.assign(seeds.begin(), seeds.end());

  const int num_layers = static_cast<int>(options_.fanouts.size());
  if (out->blocks.size() != static_cast<size_t>(num_layers)) {
    out->blocks.resize(num_layers);
    for (Block& b : out->blocks) b.Reset();
  }

  Workspace<graph::NodeId> frontier;
  Workspace<uint64_t> picks;
  PooledFlatMap<graph::NodeId, uint32_t> local;

  frontier.assign(seeds.begin(), seeds.end());

  for (int l = 0; l < num_layers; ++l) {
    const std::vector<int>& layer_fanouts = options_.fanouts[l];
    Block& block = out->blocks[num_layers - 1 - l];
    block.num_dst = static_cast<uint32_t>(frontier.size());
    block.src_nodes.assign(frontier.begin(), frontier.end());

    // Exact upper bound on distinct map entries: every dst plus at most
    // the layer's largest per-type fanout new sources per dst (the old
    // `frontier * 4` guess re-hashed whenever real fanout exceeded 3).
    int max_fanout = *std::max_element(layer_fanouts.begin(),
                                       layer_fanouts.end());
    local.Reset(frontier.size() * (static_cast<size_t>(max_fanout) + 1));
    for (uint32_t i = 0; i < frontier.size(); ++i) {
      local.TryEmplace(frontier[i], i);
    }

    for (uint32_t d = 0; d < block.num_dst; ++d) {
      graph::NodeId v = frontier[d];
      int fanout = layer_fanouts[TypeOf(v)];
      if (fanout == 0) continue;  // this type is not expanded at this hop
      auto nbrs = graph_->in_neighbors(v);
      if (nbrs.empty()) continue;
      auto emit = [&](graph::NodeId u) {
        auto [slot, inserted] = local.TryEmplace(
            u, static_cast<uint32_t>(block.src_nodes.size()));
        if (inserted) block.src_nodes.push_back(u);
        block.edge_src.push_back(*slot);
        block.edge_dst.push_back(d);
      };
      if (nbrs.size() <= static_cast<size_t>(fanout)) {
        for (graph::NodeId u : nbrs) emit(u);
      } else {
        SampleWithoutReplacementInto(nbrs.size(),
                                     static_cast<uint64_t>(fanout), rng, picks);
        for (uint64_t p : picks) emit(nbrs[p]);
      }
    }
    frontier.assign(block.src_nodes.begin(), block.src_nodes.end());
  }
}

}  // namespace gids::sampling
