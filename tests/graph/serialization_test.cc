#include "graph/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"

namespace gids::graph {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("gids_test_") + name))
      .string();
}

struct TempFile {
  explicit TempFile(const char* name) : path(TempPath(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(SerializationTest, SaveLoadRoundTrip) {
  auto built = BuildDataset(DatasetSpec::IgbTiny(), 0.2, 7);
  ASSERT_TRUE(built.ok());
  TempFile file("roundtrip.gids");
  ASSERT_TRUE(SaveDataset(*built, file.path).ok());

  auto loaded = LoadDataset(file.path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->spec.name, built->spec.name);
  EXPECT_EQ(loaded->spec.kind, built->spec.kind);
  EXPECT_EQ(loaded->scale, built->scale);
  EXPECT_EQ(loaded->graph.indptr(), built->graph.indptr());
  EXPECT_EQ(loaded->graph.indices(), built->graph.indices());
  EXPECT_EQ(loaded->train_ids, built->train_ids);
  EXPECT_EQ(loaded->features.num_nodes(), built->features.num_nodes());
  EXPECT_EQ(loaded->features.feature_dim(), built->features.feature_dim());
  EXPECT_EQ(loaded->features.page_bytes(), built->features.page_bytes());
}

TEST(SerializationTest, HeterogeneousNodeTypesRoundTrip) {
  auto built = BuildDataset(DatasetSpec::IgbhFull(), 2e-6, 9);
  ASSERT_TRUE(built.ok());
  TempFile file("hetero.gids");
  ASSERT_TRUE(SaveDataset(*built, file.path).ok());
  auto loaded = LoadDataset(file.path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->node_types.size(), built->node_types.size());
  for (size_t i = 0; i < built->node_types.size(); ++i) {
    EXPECT_EQ(loaded->node_types[i].name, built->node_types[i].name);
    EXPECT_EQ(loaded->node_types[i].offset, built->node_types[i].offset);
    EXPECT_EQ(loaded->node_types[i].count, built->node_types[i].count);
  }
}

TEST(SerializationTest, RejectsMissingFile) {
  auto loaded = LoadDataset("/nonexistent/dir/nothing.gids");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializationTest, RejectsWrongMagic) {
  TempFile file("badmagic.gids");
  std::FILE* f = std::fopen(file.path.c_str(), "wb");
  std::fwrite("NOPE", 1, 4, f);
  std::fclose(f);
  auto loaded = LoadDataset(file.path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, RejectsTruncatedFile) {
  auto built = BuildDataset(DatasetSpec::IgbTiny(), 0.05, 11);
  ASSERT_TRUE(built.ok());
  TempFile file("trunc.gids");
  ASSERT_TRUE(SaveDataset(*built, file.path).ok());
  // Truncate to half.
  auto size = std::filesystem::file_size(file.path);
  std::filesystem::resize_file(file.path, size / 2);
  auto loaded = LoadDataset(file.path);
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializationTest, LoadedFeaturesAreBitIdentical) {
  // The content seed is serialized, so reloaded feature values match the
  // originals bit-for-bit.
  auto built = BuildDataset(DatasetSpec::IgbTiny(), 0.05, 13);
  ASSERT_TRUE(built.ok());
  TempFile file("features.gids");
  ASSERT_TRUE(SaveDataset(*built, file.path).ok());
  auto loaded = LoadDataset(file.path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->features.content_seed(), built->features.content_seed());
  EXPECT_EQ(loaded->features.total_bytes(), built->features.total_bytes());
  for (NodeId v : {0u, 7u, 100u}) {
    for (uint32_t j : {0u, 1u, 1023u}) {
      ASSERT_EQ(loaded->features.ExpectedElement(v, j),
                built->features.ExpectedElement(v, j));
    }
  }
}

TEST(SerializationTest, ReloadedDatasetDrivesIdenticalPipeline) {
  // A saved-and-reloaded dataset must be indistinguishable to the
  // sampling pipeline: same graph, same seeds, same mini-batches.
  auto built = BuildDataset(DatasetSpec::IgbTiny(), 0.1, 21);
  ASSERT_TRUE(built.ok());
  TempFile file("pipeline.gids");
  ASSERT_TRUE(SaveDataset(*built, file.path).ok());
  auto loaded = LoadDataset(file.path);
  ASSERT_TRUE(loaded.ok());

  sampling::NeighborSampler sampler_a(&built->graph, {.fanouts = {5, 5}}, 9);
  sampling::NeighborSampler sampler_b(&loaded->graph, {.fanouts = {5, 5}},
                                      9);
  sampling::SeedIterator seeds_a(built->train_ids, 16, 4);
  sampling::SeedIterator seeds_b(loaded->train_ids, 16, 4);
  for (int i = 0; i < 5; ++i) {
    auto batch_a = sampler_a.Sample(seeds_a.NextBatch());
    auto batch_b = sampler_b.Sample(seeds_b.NextBatch());
    ASSERT_EQ(batch_a.seeds, batch_b.seeds);
    ASSERT_EQ(batch_a.input_nodes(), batch_b.input_nodes());
  }
}

TEST(LoadCscFromRawArraysTest, Int64IndptrInt32Indices) {
  TempFile indptr_file("indptr.bin");
  TempFile indices_file("indices.bin");
  // Graph: 3 nodes; in-neighbors: node0 <- {1,2}, node1 <- {0}, node2 <- {}.
  int64_t indptr[4] = {0, 2, 3, 3};
  int32_t indices[3] = {1, 2, 0};
  std::FILE* f = std::fopen(indptr_file.path.c_str(), "wb");
  std::fwrite(indptr, sizeof(int64_t), 4, f);
  std::fclose(f);
  f = std::fopen(indices_file.path.c_str(), "wb");
  std::fwrite(indices, sizeof(int32_t), 3, f);
  std::fclose(f);

  auto g = LoadCscFromRawArrays(indptr_file.path, indices_file.path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->in_degree(0), 2u);
  EXPECT_EQ(g->in_neighbors(1)[0], 0u);
}

TEST(LoadCscFromRawArraysTest, Int64IndicesAutoDetected) {
  TempFile indptr_file("indptr64.bin");
  TempFile indices_file("indices64.bin");
  int64_t indptr[3] = {0, 1, 2};
  int64_t indices[2] = {1, 0};
  std::FILE* f = std::fopen(indptr_file.path.c_str(), "wb");
  std::fwrite(indptr, sizeof(int64_t), 3, f);
  std::fclose(f);
  f = std::fopen(indices_file.path.c_str(), "wb");
  std::fwrite(indices, sizeof(int64_t), 2, f);
  std::fclose(f);
  auto g = LoadCscFromRawArrays(indptr_file.path, indices_file.path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(LoadCscFromRawArraysTest, RejectsSizeMismatch) {
  TempFile indptr_file("indptr_bad.bin");
  TempFile indices_file("indices_bad.bin");
  int64_t indptr[3] = {0, 2, 4};  // claims 4 edges
  int32_t indices[3] = {0, 1, 0};  // only 3 present
  std::FILE* f = std::fopen(indptr_file.path.c_str(), "wb");
  std::fwrite(indptr, sizeof(int64_t), 3, f);
  std::fclose(f);
  f = std::fopen(indices_file.path.c_str(), "wb");
  std::fwrite(indices, sizeof(int32_t), 3, f);
  std::fclose(f);
  EXPECT_FALSE(LoadCscFromRawArrays(indptr_file.path, indices_file.path).ok());
}

}  // namespace
}  // namespace gids::graph
