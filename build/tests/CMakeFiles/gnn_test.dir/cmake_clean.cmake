file(REMOVE_RECURSE
  "CMakeFiles/gnn_test.dir/gnn/gat_test.cc.o"
  "CMakeFiles/gnn_test.dir/gnn/gat_test.cc.o.d"
  "CMakeFiles/gnn_test.dir/gnn/gcn_test.cc.o"
  "CMakeFiles/gnn_test.dir/gnn/gcn_test.cc.o.d"
  "CMakeFiles/gnn_test.dir/gnn/model_test.cc.o"
  "CMakeFiles/gnn_test.dir/gnn/model_test.cc.o.d"
  "CMakeFiles/gnn_test.dir/gnn/sage_conv_test.cc.o"
  "CMakeFiles/gnn_test.dir/gnn/sage_conv_test.cc.o.d"
  "CMakeFiles/gnn_test.dir/gnn/tensor_test.cc.o"
  "CMakeFiles/gnn_test.dir/gnn/tensor_test.cc.o.d"
  "gnn_test"
  "gnn_test.pdb"
  "gnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
