#include "serving/inference_server.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/check.h"
#include "common/workspace_pool.h"
#include "sim/aggregation_model.h"

namespace gids::serving {

InferenceServer::InferenceServer(const graph::CscGraph* graph,
                                 sampling::Sampler* sampler,
                                 ServingOptions options)
    : options_(std::move(options)),
      graph_(graph),
      sampler_(sampler),
      system_(sim::SystemConfig::Paper(sim::SsdSpec::IntelOptane(),
                                       options_.n_ssd)),
      fs_(graph->num_nodes(), options_.feature_dim),
      queue_(options_.max_queue_depth),
      former_(options_.max_batch_requests, options_.batch_window_ns),
      sched_(options_.service_window_ns) {
  GIDS_CHECK(sampler_ != nullptr);
  GIDS_CHECK_MSG(options_.executor_lanes > 0,
                 "InferenceServer requires executor_lanes > 0");
  GIDS_CHECK(options_.gpu_cache_lines > 0);

  auto dev = std::make_unique<storage::FunctionBlockDevice>(
      fs_.num_pages(), fs_.page_bytes(),
      [this](uint64_t lba, std::span<std::byte> out) {
        fs_.FillPage(lba, out);
      });
  array_ = std::make_unique<storage::StorageArray>(
      std::move(dev), sim::SsdSpec::IntelOptane(), options_.n_ssd);
  storage::FaultOptions faults;
  faults.fault_rate = options_.fault_rate;
  faults.fault_seed = options_.fault_seed;
  faults.corruption_rate = options_.corruption_rate;
  faults.offline_device = options_.offline_device;
  if (faults.enabled()) {
    array_->EnableFaultInjection(faults, storage::RetryPolicy{});
  }
  if (options_.verify_reads) {
    storage::IntegrityOptions integrity;
    integrity.verify_reads = true;
    array_->EnableIntegrity(integrity);
  }
  cache_ = std::make_unique<storage::SoftwareCache>(
      options_.gpu_cache_lines * fs_.page_bytes(), fs_.page_bytes(),
      /*seed=*/options_.seed ^ 0xcac4e, /*store_payloads=*/false,
      options_.cache_shards);
  bam_ = std::make_unique<storage::BamArray>(array_.get(), cache_.get());
  if (options_.host_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.host_threads);
  }
  gatherer_ = std::make_unique<storage::FeatureGatherer>(
      &fs_, bam_.get(), /*hot_buffer=*/nullptr, pool_.get(),
      /*coalesce_pages=*/options_.coalesce_across_requests);

  if (options_.metrics != nullptr) {
    obs::MetricRegistry* reg = options_.metrics;
    obs::Labels labels{{"server", options_.display_name}};
    m_requests_ = reg->GetCounter("gids_serving_requests_total", labels);
    m_shed_ = reg->GetCounter("gids_serving_shed_total", labels);
    m_completed_ = reg->GetCounter("gids_serving_completed_total", labels);
    m_misses_ = reg->GetCounter("gids_serving_deadline_misses_total", labels);
    m_batches_ = reg->GetCounter("gids_serving_batches_total", labels);
    m_queue_depth_ = reg->GetGauge("gids_serving_queue_depth", labels);
    m_dedup_ = reg->GetGauge("gids_serving_dedup_ratio", labels);
    m_occupancy_ = reg->GetHistogram("gids_serving_batch_occupancy", labels);
  }
}

void InferenceServer::Push(TimeNs t, Event::Kind kind, uint64_t payload) {
  Event e;
  e.t = t;
  e.seq = next_seq_++;
  e.kind = kind;
  e.payload = payload;
  events_.push(e);
}

void InferenceServer::OnBatchClosed(FormedBatch batch, TimeNs now) {
  sched_.Enqueue(std::move(batch));
  TryDispatch(now);
}

void InferenceServer::TryDispatch(TimeNs now) {
  while (busy_lanes_ < options_.executor_lanes && !sched_.empty()) {
    FormedBatch batch = sched_.PopNext(now);
    uint64_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = completions_.size();
      completions_.emplace_back();
    }
    TimeNs service_ns = ExecuteBatch(batch, now, &completions_[slot]);
    ++busy_lanes_;
    Push(now + service_ns, Event::kLaneFree, slot);
  }
}

TimeNs InferenceServer::ExecuteBatch(const FormedBatch& batch, TimeNs now,
                                     ExecutedBatch* done) {
  const size_t k = batch.requests.size();
  GIDS_CHECK(k > 0);
  // Pin the storage array's virtual clock to the dispatch instant, so
  // fault onsets are pure functions of the event timeline.
  array_->AdvanceClock(now);

  if (mb_scratch_.size() < k) mb_scratch_.resize(k);
  sampling_ns_scratch_.assign(k, 0);

  // Phase 1 — sampling: every request samples from its id-keyed RNG
  // stream (Sampler::SampleAtInto purity), so the result is independent
  // of which batch or lane the request landed in, and of thread count.
  auto sample_one = [&](size_t i) {
    const Request& r = batch.requests[i];
    sampling::MiniBatch* mb = &mb_scratch_[i];
    sampler_->SampleAtInto(r.seeds, r.id, mb);
    Workspace<uint64_t> layer_edges;
    mb->LayerEdgeCountsInto(layer_edges);
    sampling_ns_scratch_[i] = system_.gpu().SamplingTime(
        layer_edges.data(), static_cast<int>(layer_edges.size()),
        graph_->structure_bytes());
  };
  if (pool_ != nullptr && sampler_->concurrent_safe() && k > 1) {
    pool_->ParallelFor(k, sample_one);
  } else {
    for (size_t i = 0; i < k; ++i) sample_one(i);
  }

  // Phase 2 — gather: one GatherGroup scope per batch (coalescing spans
  // the member requests) or one per request (the per-request baseline).
  // Counting mode: the timing model only needs the traffic counts.
  slice_scratch_.clear();
  for (size_t i = 0; i < k; ++i) {
    slice_scratch_.push_back(storage::GatherSlice{
        std::span<const graph::NodeId>(mb_scratch_[i].input_nodes()),
        std::span<float>()});
  }
  counts_scratch_.assign(k, storage::FeatureGatherCounts{});
  const uint64_t retry_before = array_->retry_penalty_ns_total();
  const uint64_t crc_before = array_->crc_verify_ns_total();
  const uint64_t degraded_before = array_->degraded_penalty_ns_total();
  if (options_.coalesce_across_requests) {
    GIDS_CHECK_OK(gatherer_->GatherGroup(
        slice_scratch_, std::span<storage::FeatureGatherCounts>(
                            counts_scratch_.data(), k)));
  } else {
    for (size_t i = 0; i < k; ++i) {
      GIDS_CHECK_OK(gatherer_->GatherGroup(
          std::span<const storage::GatherSlice>(&slice_scratch_[i], 1),
          std::span<storage::FeatureGatherCounts>(&counts_scratch_[i], 1)));
    }
  }
  const TimeNs retry_penalty_ns = static_cast<TimeNs>(
      array_->retry_penalty_ns_total() - retry_before);
  const TimeNs crc_penalty_ns =
      static_cast<TimeNs>(array_->crc_verify_ns_total() - crc_before);
  const TimeNs degraded_penalty_ns = static_cast<TimeNs>(
      array_->degraded_penalty_ns_total() - degraded_before);

  storage::FeatureGatherCounts group;
  for (const auto& c : counts_scratch_) group.Add(c);
  result_.gather.Add(group);

  // Phase 3 — timing. The three gather service paths run concurrently in
  // the aggregation kernel; sampling overlaps it on the GPU's other
  // engines; per-request GNN compute follows serially.
  sim::AggregationCounts agg;
  agg.gpu_cache_hits = group.gpu_cache_hits;
  agg.cpu_buffer_hits = group.cpu_buffer_hits;
  agg.ssd_reads = group.storage_reads;
  agg.page_bytes = fs_.page_bytes();
  agg.outstanding_accesses = std::max<uint64_t>(
      1, std::min<uint64_t>(group.serviced_page_requests(), 4096));
  sim::AggregationTiming timing = sim::ComputeAggregationTiming(system_, agg);

  TimeNs sampling_sum = 0;
  for (TimeNs s : sampling_ns_scratch_) sampling_sum += s;
  TimeNs train_sum = 0;
  std::vector<TimeNs> train_ns(k, 0);
  for (size_t i = 0; i < k; ++i) {
    train_ns[i] = system_.gpu().TrainTime(mb_scratch_[i].num_input_nodes());
    train_sum += train_ns[i];
  }
  const TimeNs gather_ns =
      timing.total_ns + retry_penalty_ns + degraded_penalty_ns;
  TimeNs service_ns = std::max(gather_ns, sampling_sum) + train_sum;
  if (service_ns < 1) service_ns = 1;
  const TimeNs completion_ns = now + service_ns;

  // The scheduler's rolling estimate sees the batch at dispatch, so the
  // in-flight service time already informs feasibility decisions.
  sched_.RecordService(completion_ns, service_ns);

  // Phase 4 — per-request accounting, decided at dispatch, delivered at
  // the lane-free event. Shared batch costs split into integer shares;
  // each request's ledger balances exactly against its own e2e (queue +
  // batch wait is absorbed by the signed overlap credit).
  done->completion_ns = completion_ns;
  done->outcomes.clear();
  auto share = [&](TimeNs total, size_t i) {
    TimeNs base = total / static_cast<TimeNs>(k);
    TimeNs rem = total % static_cast<TimeNs>(k);
    return base + (static_cast<TimeNs>(i) < rem ? 1 : 0);
  };
  for (size_t i = 0; i < k; ++i) {
    const Request& r = batch.requests[i];
    RequestOutcome out;
    out.id = r.id;
    out.batch_id = batch.id;
    out.arrival_ns = r.arrival_ns;
    out.completion_ns = completion_ns;
    out.on_time = completion_ns <= r.deadline_ns;
    done->outcomes.push_back(out);

    obs::IterationLedger ledger;
    ledger.sampling_ns = sampling_ns_scratch_[i];
    ledger.cache_hit_ns = share(timing.hbm_ns, i);
    ledger.cpu_buffer_ns = share(timing.dram_ns, i);
    ledger.storage_ns = share(timing.ssd_ns, i);
    ledger.retry_backoff_ns = share(retry_penalty_ns - crc_penalty_ns, i);
    ledger.crc_verify_ns = share(crc_penalty_ns, i);
    ledger.degraded_fill_ns = share(degraded_penalty_ns, i);
    ledger.transfer_ns = share(timing.pcie_floor_ns, i);
    ledger.training_ns = train_ns[i];
    const TimeNs e2e_ns = completion_ns - r.arrival_ns;
    ledger.overlap_credit_ns = ledger.PositiveSum() - e2e_ns;
    RecordRequestSample(r, completion_ns, counts_scratch_[i], ledger);
  }
  result_.batch_occupancy.Add(k);
  if (m_occupancy_ != nullptr) m_occupancy_->Observe(k);
  ++result_.batches;
  if (m_batches_ != nullptr) m_batches_->Inc();
  return service_ns;
}

void InferenceServer::RecordRequestSample(
    const Request& r, TimeNs completion_ns,
    const storage::FeatureGatherCounts& counts,
    const obs::IterationLedger& ledger) {
  result_.latency_ns.Add(static_cast<uint64_t>(completion_ns - r.arrival_ns));
  if (options_.latency_timeline == nullptr) return;
  obs::IterationSample s;
  s.iteration = r.id;
  s.end_ns = completion_ns;
  s.e2e_ns = completion_ns - r.arrival_ns;
  s.gpu_cache_hits = counts.gpu_cache_hits;
  s.cpu_buffer_hits = counts.cpu_buffer_hits;
  s.storage_reads = counts.storage_reads;
  s.ledger = ledger;
  options_.latency_timeline->Record(s);
}

ServingRunResult InferenceServer::Run(TrafficGenerator& traffic,
                                      uint64_t num_requests) {
  GIDS_CHECK_MSG(!ran_, "InferenceServer::Run is single-shot");
  ran_ = true;
  if (num_requests == 0) return std::move(result_);

  Request next_arrival = traffic.Next();
  uint64_t generated = 1;
  Push(next_arrival.arrival_ns, Event::kArrival, 0);

  while (!events_.empty()) {
    Event e = events_.top();
    events_.pop();
    switch (e.kind) {
      case Event::kArrival: {
        Request r = std::move(next_arrival);
        if (generated < num_requests) {
          next_arrival = traffic.Next();
          ++generated;
          Push(next_arrival.arrival_ns, Event::kArrival, 0);
        }
        if (m_requests_ != nullptr) m_requests_->Inc();
        if (!queue_.TryAdmit()) {
          if (m_shed_ != nullptr) m_shed_->Inc();
          break;
        }
        if (m_queue_depth_ != nullptr) m_queue_depth_->Set(queue_.depth());
        FormedBatch closed;
        bool opened = false;
        bool closed_by_size = former_.Add(std::move(r), e.t, &closed, &opened);
        if (opened && !closed_by_size) {
          Push(e.t + former_.window_ns(), Event::kWindow,
               former_.generation());
        }
        if (closed_by_size) OnBatchClosed(std::move(closed), e.t);
        break;
      }
      case Event::kWindow: {
        FormedBatch closed;
        if (former_.ExpireWindow(e.payload, e.t, &closed)) {
          OnBatchClosed(std::move(closed), e.t);
        }
        break;
      }
      case Event::kLaneFree: {
        ExecutedBatch& done = completions_[e.payload];
        for (const RequestOutcome& out : done.outcomes) {
          queue_.Release();
          ++result_.completed;
          if (out.on_time) {
            ++result_.on_time;
          } else {
            ++result_.deadline_misses;
            if (m_misses_ != nullptr) m_misses_->Inc();
          }
          result_.outcomes.push_back(out);
        }
        if (m_completed_ != nullptr) m_completed_->Inc(done.outcomes.size());
        if (m_queue_depth_ != nullptr) m_queue_depth_->Set(queue_.depth());
        if (done.completion_ns > result_.last_completion_ns) {
          result_.last_completion_ns = done.completion_ns;
        }
        done.outcomes.clear();
        free_slots_.push_back(e.payload);
        GIDS_CHECK(busy_lanes_ > 0);
        --busy_lanes_;
        TryDispatch(e.t);
        break;
      }
    }
  }

  result_.offered = queue_.offered();
  result_.admitted = queue_.admitted();
  result_.shed = queue_.shed();
  result_.max_queue_depth = queue_.max_depth_seen();
  result_.max_backlog = sched_.max_backlog();
  result_.batches = former_.batches_formed();
  result_.storage_array_reads = array_->total_reads();
  result_.dead_letters = array_->dead_letters_total();
  result_.p50_service_estimate_ns = sched_.EstimateP50();
  result_.p99_service_estimate_ns = sched_.EstimateP99();
  if (m_dedup_ != nullptr) m_dedup_->Set(result_.dedup_ratio());

  // Zero deadline-accounting drift: every offered request is accounted
  // exactly once, and every admitted one completed exactly once.
  GIDS_CHECK(result_.admitted + result_.shed == result_.offered);
  GIDS_CHECK(result_.completed == result_.admitted);
  GIDS_CHECK(result_.on_time + result_.deadline_misses == result_.completed);
  GIDS_CHECK(queue_.depth() == 0);
  return std::move(result_);
}

}  // namespace gids::serving
