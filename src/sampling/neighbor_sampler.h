#ifndef GIDS_SAMPLING_NEIGHBOR_SAMPLER_H_
#define GIDS_SAMPLING_NEIGHBOR_SAMPLER_H_

#include <vector>

#include "common/random.h"
#include "graph/csc_graph.h"
#include "sampling/sampler.h"

namespace gids::sampling {

/// GraphSAGE-style uniform neighborhood sampling (§2.2.2): each hop
/// uniformly samples up to `fanouts[l]` in-neighbors of every frontier
/// node without replacement. `fanouts` is ordered seed-hop first, e.g.
/// {5, 5} samples 5 neighbors of each seed, then 5 of each of those.
struct NeighborSamplerOptions {
  std::vector<int> fanouts;
};

class NeighborSampler : public Sampler {
 public:
  NeighborSampler(const graph::CscGraph* graph,
                  NeighborSamplerOptions options, uint64_t seed = 0x5a3e);

  std::string_view name() const override { return "neighborhood"; }
  int num_layers() const override {
    return static_cast<int>(options_.fanouts.size());
  }

  void SampleAtInto(std::span<const graph::NodeId> seeds, uint64_t iteration,
                    MiniBatch* out) override;

 private:
  const graph::CscGraph* graph_;
  NeighborSamplerOptions options_;
  uint64_t seed_;
};

}  // namespace gids::sampling

#endif  // GIDS_SAMPLING_NEIGHBOR_SAMPLER_H_
