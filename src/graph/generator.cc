#include "graph/generator.h"

#include <bit>
#include <cmath>
#include <vector>

namespace gids::graph {
namespace {

// Draws one R-MAT edge within an n x n adjacency matrix (n a power of two),
// recursing one quadrant per bit level with multiplicative noise.
std::pair<uint64_t, uint64_t> RmatEdge(int levels, const RmatParams& p,
                                       Rng& rng) {
  uint64_t row = 0;
  uint64_t col = 0;
  double a = p.a;
  double b = p.b;
  double c = p.c;
  for (int level = 0; level < levels; ++level) {
    double ab = a + b;
    double abc = a + b + c;
    double r = rng.UniformDouble();
    uint64_t bit = 1ull << (levels - 1 - level);
    if (r >= ab) row |= bit;
    if ((r >= a && r < ab) || r >= abc) col |= bit;
    if (p.noise > 0) {
      // Perturb the quadrant probabilities, then renormalize.
      double na = a * (1.0 - p.noise + 2.0 * p.noise * rng.UniformDouble());
      double nb = b * (1.0 - p.noise + 2.0 * p.noise * rng.UniformDouble());
      double nc = c * (1.0 - p.noise + 2.0 * p.noise * rng.UniformDouble());
      double nd = (1.0 - a - b - c) *
                  (1.0 - p.noise + 2.0 * p.noise * rng.UniformDouble());
      double norm = na + nb + nc + nd;
      a = na / norm;
      b = nb / norm;
      c = nc / norm;
    }
  }
  return {row, col};
}

}  // namespace

StatusOr<CscGraph> GenerateRmat(NodeId num_nodes, EdgeIdx num_edges,
                                const RmatParams& params, Rng& rng) {
  if (num_nodes == 0) return Status::InvalidArgument("num_nodes must be > 0");
  double sum = params.a + params.b + params.c + params.d;
  if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("RMAT probabilities must sum to 1");
  }
  int levels = 64 - std::countl_zero(static_cast<uint64_t>(num_nodes) - 1);
  if (num_nodes == 1) levels = 0;

  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  src.reserve(num_edges);
  dst.reserve(num_edges);
  while (src.size() < num_edges) {
    auto [row, col] = RmatEdge(levels, params, rng);
    if (row >= num_nodes || col >= num_nodes) continue;  // rejection
    src.push_back(static_cast<NodeId>(row));
    dst.push_back(static_cast<NodeId>(col));
  }
  return CscGraph::FromCoo(num_nodes, src, dst);
}

StatusOr<CscGraph> GenerateUniform(NodeId num_nodes, EdgeIdx num_edges,
                                   Rng& rng) {
  if (num_nodes == 0) return Status::InvalidArgument("num_nodes must be > 0");
  std::vector<NodeId> src(num_edges);
  std::vector<NodeId> dst(num_edges);
  for (EdgeIdx i = 0; i < num_edges; ++i) {
    src[i] = static_cast<NodeId>(rng.UniformInt(num_nodes));
    dst[i] = static_cast<NodeId>(rng.UniformInt(num_nodes));
  }
  return CscGraph::FromCoo(num_nodes, src, dst);
}

}  // namespace gids::graph
