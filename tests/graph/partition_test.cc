#include "graph/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generator.h"

namespace gids::graph {
namespace {

TEST(BfsPartitionTest, EveryNodeAssignedExactlyOnce) {
  Rng rng(1);
  auto g = GenerateRmat(2048, 16384, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  auto part = BfsPartition(*g, 8, rng);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->num_parts, 8u);
  EXPECT_EQ(part->part_of.size(), g->num_nodes());
  size_t total = 0;
  for (const auto& m : part->members) total += m.size();
  EXPECT_EQ(total, g->num_nodes());
  for (uint32_t p : part->part_of) EXPECT_LT(p, 8u);
}

TEST(BfsPartitionTest, PartsAreRoughlyBalanced) {
  Rng rng(2);
  auto g = GenerateRmat(4096, 32768, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  auto part = BfsPartition(*g, 16, rng);
  ASSERT_TRUE(part.ok());
  size_t target = g->num_nodes() / 16;
  for (const auto& m : part->members) {
    EXPECT_LE(m.size(), target * 2) << "part too large";
  }
}

TEST(BfsPartitionTest, CutEdgesCountedConsistently) {
  // A two-community graph with one bridge edge: BFS partitioning into two
  // parts should cut very few edges.
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  Rng rng(3);
  auto add_clique_edges = [&](NodeId base, int count) {
    for (int i = 0; i < count * 6; ++i) {
      src.push_back(base + static_cast<NodeId>(rng.UniformInt(count)));
      dst.push_back(base + static_cast<NodeId>(rng.UniformInt(count)));
    }
  };
  add_clique_edges(0, 50);
  add_clique_edges(50, 50);
  src.push_back(0);
  dst.push_back(50);  // bridge
  auto g = CscGraph::FromCoo(100, src, dst);
  ASSERT_TRUE(g.ok());
  auto part = BfsPartition(*g, 2, rng);
  ASSERT_TRUE(part.ok());
  EXPECT_LT(part->CutFraction(*g), 0.25);
}

TEST(BfsPartitionTest, BeatsRandomOnLocality) {
  Rng rng(4);
  auto g = GenerateRmat(4096, 65536, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  auto bfs = BfsPartition(*g, 32, rng);
  auto random = RandomPartition(*g, 32, rng);
  ASSERT_TRUE(bfs.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_LT(bfs->cut_edges, random->cut_edges);
}

TEST(BfsPartitionTest, SinglePartHasNoCut) {
  Rng rng(5);
  auto g = GenerateRmat(256, 2048, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  auto part = BfsPartition(*g, 1, rng);
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->cut_edges, 0u);
  EXPECT_EQ(part->members[0].size(), g->num_nodes());
}

TEST(BfsPartitionTest, RejectsBadArguments) {
  Rng rng(6);
  auto g = GenerateRmat(16, 64, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(BfsPartition(*g, 0, rng).ok());
  EXPECT_FALSE(BfsPartition(*g, 17, rng).ok());
  EXPECT_FALSE(RandomPartition(*g, 0, rng).ok());
}

TEST(RandomPartitionTest, CutFractionNearExpectation) {
  // Random assignment to k parts cuts ~ (1 - 1/k) of edges.
  Rng rng(7);
  auto g = GenerateUniform(4096, 65536, rng);
  ASSERT_TRUE(g.ok());
  auto part = RandomPartition(*g, 8, rng);
  ASSERT_TRUE(part.ok());
  EXPECT_NEAR(part->CutFraction(*g), 1.0 - 1.0 / 8.0, 0.02);
}

class PartCountTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartCountTest, MembersMatchPartOf) {
  Rng rng(100 + GetParam());
  auto g = GenerateRmat(1024, 8192, RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  auto part = BfsPartition(*g, GetParam(), rng);
  ASSERT_TRUE(part.ok());
  for (uint32_t p = 0; p < part->num_parts; ++p) {
    for (NodeId v : part->members[p]) {
      ASSERT_EQ(part->part_of[v], p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartCountTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1024));

}  // namespace
}  // namespace gids::graph
