file(REMOVE_RECURSE
  "libgids_sampling.a"
)
