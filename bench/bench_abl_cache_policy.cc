// Ablation: cache-policy framework under skewed access (CACHING.md).
//
// Replays zipf-skewed seed traces (a deterministic popularity permutation
// of the training ids, inverse-CDF draws at theta = 0.6 / 1.0 / 1.2)
// through the five pluggable policies on a real SoftwareCache instance,
// for both the neighborhood and LADIES samplers (512-node layers here —
// small enough that the layer draws track the seed frontier, so the seed
// skew actually reaches the access stream; at fig15's 4096-node layers
// the draws are near-structural and skew-insensitive). Each policy runs
// its
// natural stack: random = BaM bare cache; window adds depth-8 future
// pinning; pagerank adds the structural hot buffer; belady consumes the
// window look-ahead feed; presample ranks both the hot buffer and the
// admission priorities from a bounded presample pass over the SAME skew
// it will then serve. The headline claim (ISSUE 8): the presample
// policy's combined hit rate matches or beats the PageRank hot buffer on
// zipf >= 1.0 workloads, because it observes the actual access skew
// instead of approximating it structurally.
//
// A second benchmark runs the two ranked policies end-to-end through the
// GIDS loader on a zipf-skewed seed multiset (virtual-time ms/iter and
// gpu-cache hit ratio), exercising the loader-internal presample pass and
// live re-ranking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench/common.h"
#include "core/constant_cpu_buffer.h"
#include "storage/cache_policy.h"
#include "storage/software_cache.h"

namespace gids::bench {
namespace {

constexpr uint64_t kCachePages = 8192;      // matches bench_abl_eviction
constexpr uint64_t kHotBufferNodes = 16384;  // identical budget per policy
constexpr int kTraceIterations = 60;
constexpr int kPresamplePasses = 6;  // epoch repeats in the presample pass
constexpr int kWindowDepth = 8;
const std::vector<uint32_t> kLadiesLayers = {512, 512, 512};
const double kThetas[] = {0.6, 1.0, 1.2};

// Inverse-CDF zipf(theta) over ranks [0, n): rank r is drawn with
// probability proportional to 1/(r+1)^theta. Deterministic in its seed.
class ZipfDraw {
 public:
  ZipfDraw(size_t n, double theta, uint64_t seed) : rng_(seed), cdf_(n) {
    double acc = 0.0;
    for (size_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cdf_[r] = acc;
    }
  }

  size_t Next() {
    double u = rng_.UniformDouble() * cdf_.back();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

// Zipf-skewed seed batches over `popularity` (hottest-first).
std::vector<std::vector<graph::NodeId>> DrawSeedBatches(
    const std::vector<graph::NodeId>& popularity, double theta,
    int iterations, uint32_t batch_size, uint64_t zipf_seed) {
  ZipfDraw draw(popularity.size(), theta, zipf_seed);
  std::vector<std::vector<graph::NodeId>> batches(
      iterations, std::vector<graph::NodeId>(batch_size));
  for (auto& batch : batches) {
    for (auto& v : batch) v = popularity[draw.Next()];
  }
  return batches;
}

// Per-iteration input-node traces from the rig's sampler over the given
// seed batches. `iteration_base` selects the per-iteration sampler RNG
// streams: the presample pass reuses the training epoch's seed sequence
// (FGNN pre-samples the actual epoch) but runs on a disjoint iteration
// window, so its sampled pages are a fresh draw, not a page-level oracle
// of the measured trace.
std::vector<std::vector<graph::NodeId>> SampleTrace(
    Rig& rig, const std::vector<std::vector<graph::NodeId>>& seed_batches,
    uint64_t iteration_base) {
  std::vector<std::vector<graph::NodeId>> trace(seed_batches.size());
  sampling::MiniBatch batch;
  for (size_t i = 0; i < seed_batches.size(); ++i) {
    rig.sampler->SampleAtInto(seed_batches[i], iteration_base + i, &batch);
    trace[i] = batch.input_nodes();
  }
  return trace;
}

// Replays `trace` through a SoftwareCache driven by a fresh policy of
// `kind`, with the policy's natural hot-buffer / window stack. Returns
// the combined hit rate: (CPU-buffer page hits + cache hits) / accesses.
double ReplayPolicy(const std::shared_ptr<const graph::Dataset>& dataset,
                    storage::CachePolicyKind kind,
                    const std::vector<std::vector<graph::NodeId>>& trace,
                    const std::vector<std::vector<graph::NodeId>>&
                        presample_trace) {
  const graph::FeatureStore& fs = dataset->features;
  auto policy = storage::MakeCachePolicy(kind);
  const uint64_t buffer_bytes =
      kHotBufferNodes * fs.feature_bytes_per_node();

  std::optional<core::ConstantCpuBuffer> buffer;
  if (kind == storage::CachePolicyKind::kPageRankHot) {
    policy->IngestHotRanking(CachedPageRankOrder(dataset));
    buffer = core::ConstantCpuBuffer::FromRanking(
        fs, policy->HotNodeRanking(), buffer_bytes);
  } else if (kind == storage::CachePolicyKind::kPresample) {
    std::vector<uint64_t> counts(dataset->graph.num_nodes(), 0);
    for (const auto& iter : presample_trace) {
      for (graph::NodeId v : iter) ++counts[v];
    }
    policy->IngestNodeFrequencies(counts, fs);
    buffer = core::ConstantCpuBuffer::FromRanking(
        fs, policy->HotNodeRanking(), buffer_bytes);
  }

  storage::SoftwareCache cache(kCachePages * fs.page_bytes(),
                               fs.page_bytes(), /*seed=*/3,
                               /*store_payloads=*/false, /*num_shards=*/0,
                               policy.get());
  const int window =
      kind == storage::CachePolicyKind::kRandom ? 0 : kWindowDepth;
  auto register_iter = [&](const std::vector<graph::NodeId>& nodes) {
    for (graph::NodeId v : nodes) {
      if (buffer && buffer->Contains(v)) continue;
      auto range = fs.PagesFor(v);
      for (uint64_t p = range.first; p <= range.last; ++p) {
        cache.AddFutureReuse(p, 1);
      }
    }
  };
  for (int ahead = 0; ahead < window && ahead < (int)trace.size(); ++ahead) {
    register_iter(trace[ahead]);
  }

  uint64_t accesses = 0;
  uint64_t cpu_hits = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    size_t incoming = i + window;
    if (window > 0 && incoming < trace.size()) {
      register_iter(trace[incoming]);
    }
    for (graph::NodeId v : trace[i]) {
      auto range = fs.PagesFor(v);
      for (uint64_t p = range.first; p <= range.last; ++p) {
        ++accesses;
        if (buffer && buffer->Contains(v)) {
          ++cpu_hits;
          continue;
        }
        if (!cache.Touch(p)) cache.InsertMeta(p);
      }
    }
  }
  return accesses == 0
             ? 0.0
             : static_cast<double>(cpu_hits + cache.stats().hits) /
                   static_cast<double>(accesses);
}

void BM_CachePolicyHitRates(benchmark::State& state) {
  const storage::CachePolicyKind kKinds[] = {
      storage::CachePolicyKind::kRandom,
      storage::CachePolicyKind::kWindow,
      storage::CachePolicyKind::kPageRankHot,
      storage::CachePolicyKind::kGinexBelady,
      storage::CachePolicyKind::kPresample,
  };
  ProxyConfig cfg;
  for (auto _ : state) {
    for (int s = 0; s < 2; ++s) {
      Rig rig = s == 0 ? BuildRig(cfg) : BuildLadiesRig(cfg, kLadiesLayers);
      const char* sampler_name = s == 0 ? "neighbor" : "ladies";
      std::vector<graph::NodeId> popularity = rig.dataset->train_ids;
      Rng perm_rng(0x506f70);
      Shuffle(popularity, perm_rng);
      for (int t = 0; t < 3; ++t) {
        const double theta = kThetas[t];
        // Disjoint per-(sampler, theta) iteration windows so sampler
        // streams never collide across traces sharing this rig.
        const uint64_t base = static_cast<uint64_t>(s * 3 + t) * 4096;
        auto seed_batches = DrawSeedBatches(popularity, theta,
                                            kTraceIterations,
                                            cfg.batch_size, 0xa11ce + t);
        auto trace = SampleTrace(rig, seed_batches, base);
        // The presample pass re-samples the epoch's seed sequence
        // kPresamplePasses times on fresh per-iteration RNG streams,
        // averaging out sampler noise in the frequency estimate.
        std::vector<std::vector<graph::NodeId>> tiled;
        for (int p = 0; p < kPresamplePasses; ++p) {
          tiled.insert(tiled.end(), seed_batches.begin(),
                       seed_batches.end());
        }
        auto presample_trace = SampleTrace(rig, tiled, base + 1024);
        double pagerank_hit = 0.0;
        double presample_hit = 0.0;
        for (storage::CachePolicyKind kind : kKinds) {
          double hit =
              ReplayPolicy(rig.dataset, kind, trace, presample_trace);
          char label[96];
          std::snprintf(label, sizeof(label), "%s zipf=%.1f %s hit rate",
                        sampler_name, theta,
                        storage::CachePolicyKindName(kind));
          ReportRow("ABL-CACHEPOLICY", label, hit, 0, "fraction");
          if (kind == storage::CachePolicyKind::kPageRankHot) {
            pagerank_hit = hit;
          } else if (kind == storage::CachePolicyKind::kPresample) {
            presample_hit = hit;
          }
        }
        if (theta >= 1.0) {
          char label[96];
          std::snprintf(label, sizeof(label),
                        "%s zipf=%.1f presample/pagerank", sampler_name,
                        theta);
          ReportRow("ABL-CACHEPOLICY", label, presample_hit / pagerank_hit,
                    1.0, "x");
        }
      }
    }
  }
}

BENCHMARK(BM_CachePolicyHitRates)->Iterations(1)->Unit(benchmark::kMillisecond);

// End-to-end: the two ranked policies through the real GIDS loader on a
// zipf(1.2)-skewed seed multiset (duplicates carry the skew through the
// epoch shuffles). The presample loader runs the loader-internal
// presample pass and live re-ranking (presample_rerank_groups).
void BM_CachePolicyE2E(benchmark::State& state) {
  ProxyConfig cfg;
  for (auto _ : state) {
    Rig base_rig = BuildRig(cfg);
    std::vector<graph::NodeId> popularity = base_rig.dataset->train_ids;
    Rng perm_rng(0x506f70);
    Shuffle(popularity, perm_rng);
    ZipfDraw draw(popularity.size(), 1.2, 0x51e7);
    std::vector<graph::NodeId> skewed(popularity.size());
    for (auto& v : skewed) v = popularity[draw.Next()];

    const storage::CachePolicyKind kKinds[] = {
        storage::CachePolicyKind::kPageRankHot,
        storage::CachePolicyKind::kPresample,
    };
    for (storage::CachePolicyKind kind : kKinds) {
      Rig rig = BuildRig(cfg);
      rig.seeds = std::make_unique<sampling::SeedIterator>(
          skewed, cfg.batch_size, 0x5eed);
      core::GidsOptions opts;
      opts.cache_policy = kind;
      opts.presample_rerank_groups = 4;
      auto loader = MakeLoader(LoaderKind::kGids, rig, &opts);
      auto result = RunProtocol(rig, *loader, /*warmup=*/40, /*measure=*/30);
      const char* name = storage::CachePolicyKindName(kind);
      char label[96];
      std::snprintf(label, sizeof(label), "%s ms/iter (zipf=1.2)", name);
      ReportRow("ABL-CACHEPOLICY-E2E", label, result.mean_iteration_ms(), 0,
                "ms/iter", result.wall_ms);
      std::snprintf(label, sizeof(label), "%s e2e hit ratio (zipf=1.2)",
                    name);
      ReportRow("ABL-CACHEPOLICY", label, result.gpu_cache_hit_ratio(), 0,
                "fraction");
    }
  }
}

BENCHMARK(BM_CachePolicyE2E)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
