#include "storage/io_queue.h"

#include <algorithm>

#include "common/check.h"

namespace gids::storage {

IoQueuePair::IoQueuePair(uint32_t depth) : depth_(depth) {
  GIDS_CHECK(depth > 0);
  submission_.reserve(depth);
  completion_.reserve(depth);
}

Status IoQueuePair::Submit(const IoRequest& request) {
  if (Full()) return Status::ResourceExhausted("submission queue full");
  submission_.push_back(request);
  ++outstanding_;
  ++total_submitted_;
  return Status::OK();
}

std::vector<IoRequest> IoQueuePair::PopSubmitted(uint32_t max) {
  uint32_t take =
      static_cast<uint32_t>(std::min<size_t>(max, submission_.size()));
  std::vector<IoRequest> out(submission_.begin(), submission_.begin() + take);
  submission_.erase(submission_.begin(), submission_.begin() + take);
  return out;
}

void IoQueuePair::Complete(uint64_t tag) {
  GIDS_CHECK(completion_.size() < depth_);
  completion_.push_back(tag);
  ++total_completed_;
}

std::optional<uint64_t> IoQueuePair::PollCompletion() {
  if (completion_.empty()) return std::nullopt;
  uint64_t tag = completion_.front();
  completion_.erase(completion_.begin());
  GIDS_CHECK(outstanding_ > 0);
  --outstanding_;
  return tag;
}

}  // namespace gids::storage
