#ifndef GIDS_SIM_AGGREGATION_MODEL_H_
#define GIDS_SIM_AGGREGATION_MODEL_H_

#include <cstdint>

#include "common/units.h"
#include "sim/system_model.h"

namespace gids::sim {

/// Inputs to the timing model for one feature-aggregation kernel execution
/// (possibly covering several accumulator-merged iterations). All counts
/// are produced *functionally* by the dataloaders — real cache lookups,
/// real redirect decisions — never estimated.
struct AggregationCounts {
  uint64_t gpu_cache_hits = 0;   // served from the HBM software cache
  uint64_t cpu_buffer_hits = 0;  // redirected to the constant CPU buffer
  uint64_t ssd_reads = 0;        // storage accesses (cache-line granularity)
  uint32_t page_bytes = 4096;

  /// Concurrent node accesses the loader keeps in flight during this
  /// execution (the accumulator's accumulated access count; without the
  /// accumulator this is just the single iteration's access count).
  uint64_t outstanding_accesses = 0;

  uint64_t total_requests() const {
    return gpu_cache_hits + cpu_buffer_hits + ssd_reads;
  }
};

/// Timing breakdown for one aggregation kernel execution.
struct AggregationTiming {
  TimeNs total_ns = 0;
  TimeNs ssd_ns = 0;        // storage path completion time (incl. T_i/T_t)
  TimeNs pcie_floor_ns = 0; // lower bound from total PCIe ingress bytes
  TimeNs hbm_ns = 0;        // cache-hit service time
  TimeNs dram_ns = 0;       // CPU-buffer service time (host DRAM reads)

  double ssd_bandwidth_bps = 0;     // achieved SSD array read bandwidth
  double pcie_ingress_bps = 0;      // Fig. 9 metric
  double effective_bandwidth_bps = 0;  // Fig. 10 metric: all feature bytes/t

  uint64_t pcie_ingress_bytes = 0;
  uint64_t feature_bytes = 0;
};

/// Computes the duration of one aggregation kernel execution.
///
/// The three service paths run concurrently on the GPU (different warps
/// issue to SSD, copy from pinned CPU memory, and read the HBM cache), so
/// the execution time is the maximum of the per-path times and the shared
/// PCIe-link floor. Redirecting accesses to the CPU buffer steals warp
/// slots from the SSD submission path, modeled by
/// SystemConfig::redirect_interference (§4.3).
AggregationTiming ComputeAggregationTiming(const SystemModel& system,
                                           const AggregationCounts& counts);

}  // namespace gids::sim

#endif  // GIDS_SIM_AGGREGATION_MODEL_H_
