// Reproduces Figure 9: impact of the dynamic storage access accumulator on
// GPU PCIe ingress bandwidth during feature aggregation, for the BaM
// dataloader and the GIDS dataloader, with two Intel Optane SSDs, batch
// sizes {32, 64, 128}, and fan-out (5, 5) on the IGB-Full proxy.
//
// Paper anchors: BaM reaches 7.6 / 9.4 / 10.1 GB/s without the
// accumulator and 9.8 / 10.4 / 10.6 GB/s with it (peak collective SSD
// bandwidth ~11.6 GB/s); GIDS gains more from the accumulator —
// 1.95x / 1.46x / 1.31x — because cache hits and CPU-buffer redirection
// shrink the storage-bound share of each iteration's accesses.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

struct Fig9Paper {
  double bam_gbps;
  double bam_acc_gbps;
  double gids_speedup;  // GIDS+acc over GIDS-acc
};

Fig9Paper PaperFor(int batch) {
  switch (batch) {
    case 32:
      return {7.6, 9.8, 1.95};
    case 64:
      return {9.4, 10.4, 1.46};
    default:
      return {10.1, 10.6, 1.31};
  }
}

double MeasureIngress(Rig& rig, const core::GidsOptions& opts) {
  auto loader = MakeLoader(LoaderKind::kGids, rig, &opts);
  core::TrainRunResult result = RunProtocol(rig, *loader, /*warmup=*/30,
                                            /*measure=*/30);
  double sum = 0;
  for (const auto& it : result.per_iteration) sum += it.pcie_ingress_bps;
  return sum / result.per_iteration.size() / 1e9;
}

ProxyConfig Fig9Config(int batch) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  cfg.batch_size = batch;
  cfg.fanouts = {5, 5};
  cfg.ssd = sim::SsdSpec::IntelOptane();
  cfg.n_ssd = 2;
  return cfg;
}

void BM_BamAccumulator(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  double plain = 0;
  double with_acc = 0;
  for (auto _ : state) {
    core::GidsOptions bam = core::GidsOptions::Bam();
    Rig rig_plain = BuildRig(Fig9Config(batch));
    plain = MeasureIngress(rig_plain, bam);

    core::GidsOptions bam_acc = core::GidsOptions::Bam();
    bam_acc.use_accumulator = true;
    bam_acc.display_name = "BaM+accumulator";
    Rig rig_acc = BuildRig(Fig9Config(batch));
    with_acc = MeasureIngress(rig_acc, bam_acc);
  }
  Fig9Paper paper = PaperFor(batch);
  state.counters["bam_GBps"] = plain;
  state.counters["bam_acc_GBps"] = with_acc;
  ReportRow("FIG09", "BaM batch=" + std::to_string(batch), plain,
            paper.bam_gbps, "GB/s");
  ReportRow("FIG09", "BaM+accumulator batch=" + std::to_string(batch),
            with_acc, paper.bam_acc_gbps, "GB/s");
}

void BM_GidsAccumulator(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  double without = 0;
  double with_acc = 0;
  for (auto _ : state) {
    core::GidsOptions no_acc;  // window buffering + CPU buffer on
    no_acc.use_accumulator = false;
    no_acc.display_name = "GIDS w/o accumulator";
    Rig rig_no = BuildRig(Fig9Config(batch));
    no_acc.hot_node_order = &CachedPageRankOrder(rig_no.dataset);
    without = MeasureIngress(rig_no, no_acc);

    core::GidsOptions full;
    Rig rig_full = BuildRig(Fig9Config(batch));
    full.hot_node_order = &CachedPageRankOrder(rig_full.dataset);
    with_acc = MeasureIngress(rig_full, full);
  }
  Fig9Paper paper = PaperFor(batch);
  double speedup = with_acc / without;
  state.counters["gids_GBps"] = without;
  state.counters["gids_acc_GBps"] = with_acc;
  state.counters["accumulator_speedup"] = speedup;
  ReportRow("FIG09", "GIDS w/o accumulator batch=" + std::to_string(batch),
            without, 0, "GB/s");
  ReportRow("FIG09", "GIDS batch=" + std::to_string(batch), with_acc, 0,
            "GB/s");
  ReportRow("FIG09",
            "GIDS accumulator speedup batch=" + std::to_string(batch),
            speedup, paper.gids_speedup, "x");
}

BENCHMARK(BM_BamAccumulator)->Arg(32)->Arg(64)->Arg(128)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GidsAccumulator)->Arg(32)->Arg(64)->Arg(128)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
