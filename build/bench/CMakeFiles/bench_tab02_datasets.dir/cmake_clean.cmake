file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_datasets.dir/bench_tab02_datasets.cc.o"
  "CMakeFiles/bench_tab02_datasets.dir/bench_tab02_datasets.cc.o.d"
  "bench_tab02_datasets"
  "bench_tab02_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
