#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace gids {

double Rng::Normal() {
  // Box-Muller transform; guard against log(0).
  double u1 = UniformDouble();
  if (u1 <= 0.0) u1 = 1e-300;
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Rng& rng) {
  std::vector<uint64_t> result;
  result.reserve(std::min(n, k));
  SampleWithoutReplacementInto(n, k, rng, result);
  return result;
}

}  // namespace gids
