#include "bench/common.h"

#include <cstdio>
#include <map>

#include "common/check.h"
#include "graph/pagerank.h"
#include "loaders/ginex_loader.h"
#include "loaders/mmap_loader.h"
#include "obs/json.h"

namespace gids::bench {
namespace {

std::shared_ptr<const graph::Dataset> CachedDataset(
    const graph::DatasetSpec& spec, double scale, uint64_t seed) {
  static std::map<std::string, std::shared_ptr<const graph::Dataset>> cache;
  std::string key = spec.name + "/" + std::to_string(scale) + "/" +
                    std::to_string(seed);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto built = graph::BuildDataset(spec, scale, seed);
  GIDS_CHECK(built.ok());
  auto ds = std::make_shared<graph::Dataset>(std::move(built).value());
  cache.emplace(key, ds);
  return ds;
}

Rig BuildRigCommon(const ProxyConfig& config) {
  Rig rig;
  rig.dataset = CachedDataset(config.spec, config.scale, config.seed);
  sim::SystemConfig sys_cfg = sim::SystemConfig::Paper(config.ssd, config.n_ssd);
  sys_cfg.memory_scale = config.memory_scale;
  rig.system = std::make_unique<sim::SystemModel>(sys_cfg);
  rig.seeds = std::make_unique<sampling::SeedIterator>(
      rig.dataset->train_ids, config.batch_size, config.seed ^ 0x5eed);
  return rig;
}

}  // namespace

Rig BuildRig(const ProxyConfig& config) {
  Rig rig = BuildRigCommon(config);
  rig.sampler = std::make_unique<sampling::NeighborSampler>(
      &rig.dataset->graph,
      sampling::NeighborSamplerOptions{.fanouts = config.fanouts},
      config.seed ^ 0x5a3e);
  return rig;
}

Rig BuildLadiesRig(const ProxyConfig& config,
                   std::vector<uint32_t> layer_sizes) {
  Rig rig = BuildRigCommon(config);
  rig.sampler = std::make_unique<sampling::LadiesSampler>(
      &rig.dataset->graph,
      sampling::LadiesSamplerOptions{.layer_sizes = std::move(layer_sizes)},
      config.seed ^ 0x1ad1e5);
  return rig;
}

const char* LoaderKindName(LoaderKind kind) {
  switch (kind) {
    case LoaderKind::kMmap:
      return "DGL-mmap";
    case LoaderKind::kGinex:
      return "Ginex";
    case LoaderKind::kBam:
      return "BaM";
    case LoaderKind::kGids:
      return "GIDS";
  }
  return "unknown";
}

std::unique_ptr<loaders::DataLoader> MakeLoader(
    LoaderKind kind, Rig& rig, const core::GidsOptions* gids_options) {
  const graph::Dataset* ds = rig.dataset.get();
  switch (kind) {
    case LoaderKind::kMmap:
      return std::make_unique<loaders::MmapLoader>(
          ds, rig.sampler.get(), rig.seeds.get(), rig.system.get(),
          loaders::MmapLoaderOptions{.counting_mode = true});
    case LoaderKind::kGinex:
      return std::make_unique<loaders::GinexLoader>(
          ds, rig.sampler.get(), rig.seeds.get(), rig.system.get(),
          loaders::GinexLoaderOptions{.counting_mode = true});
    case LoaderKind::kBam: {
      core::GidsOptions opts =
          gids_options != nullptr ? *gids_options : core::GidsOptions::Bam();
      opts.counting_mode = true;
      return std::make_unique<core::GidsLoader>(
          ds, rig.sampler.get(), rig.seeds.get(), rig.system.get(), opts);
    }
    case LoaderKind::kGids: {
      core::GidsOptions opts =
          gids_options != nullptr ? *gids_options : core::GidsOptions{};
      opts.counting_mode = true;
      return std::make_unique<core::GidsLoader>(
          ds, rig.sampler.get(), rig.seeds.get(), rig.system.get(), opts);
    }
  }
  GIDS_CHECK(false);
  return nullptr;
}

core::TrainRunResult RunProtocol(Rig& rig, loaders::DataLoader& loader,
                                 uint64_t warmup, uint64_t measure) {
  core::Trainer trainer(
      rig.dataset.get(),
      core::TrainerOptions{.warmup_iterations = warmup,
                           .measure_iterations = measure});
  auto result = trainer.Run(loader);
  GIDS_CHECK(result.ok());
  return std::move(result).value();
}

const std::vector<graph::NodeId>& CachedPageRankOrder(
    const std::shared_ptr<const graph::Dataset>& dataset) {
  static std::map<const graph::Dataset*, std::vector<graph::NodeId>> cache;
  auto it = cache.find(dataset.get());
  if (it != cache.end()) return it->second;
  std::vector<double> score = graph::WeightedReversePageRank(
      dataset->graph, graph::PageRankOptions{});
  auto [ins, _] =
      cache.emplace(dataset.get(), graph::RankNodesByScore(score));
  return ins->second;
}

void ReportRow(const std::string& experiment, const std::string& label,
               double measured, double paper, const std::string& unit,
               double wall_ms, int host_threads, double dedup_ratio,
               int64_t steady_state_allocs) {
  if (paper > 0) {
    std::printf("[%s] %-42s measured=%-12.4g paper=%-10.4g unit=%s\n",
                experiment.c_str(), label.c_str(), measured, paper,
                unit.c_str());
  } else {
    std::printf("[%s] %-42s measured=%-12.4g unit=%s\n", experiment.c_str(),
                label.c_str(), measured, unit.c_str());
  }
  // Machine-readable twin of the row above, one JSON object per line, so
  // result harvesting doesn't have to parse the padded human format.
  std::printf(
      "RESULT_JSON {\"experiment\":\"%s\",\"label\":\"%s\",\"measured\":%s",
      obs::JsonEscape(experiment).c_str(), obs::JsonEscape(label).c_str(),
      obs::JsonNumber(measured).c_str());
  if (paper > 0) {
    std::printf(",\"paper\":%s", obs::JsonNumber(paper).c_str());
  }
  if (wall_ms >= 0) {
    std::printf(",\"wall_ms\":%s", obs::JsonNumber(wall_ms).c_str());
  }
  if (host_threads >= 0) {
    std::printf(",\"host_threads\":%d", host_threads);
  }
  if (dedup_ratio >= 0) {
    std::printf(",\"dedup_ratio\":%s", obs::JsonNumber(dedup_ratio).c_str());
  }
  if (steady_state_allocs >= 0) {
    std::printf(",\"steady_state_allocs\":%lld",
                static_cast<long long>(steady_state_allocs));
  }
  std::printf(",\"unit\":\"%s\"}\n", obs::JsonEscape(unit).c_str());
  std::fflush(stdout);
}

}  // namespace gids::bench
