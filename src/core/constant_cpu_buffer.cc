#include "core/constant_cpu_buffer.h"

#include <algorithm>

#include "common/check.h"
#include "graph/pagerank.h"

namespace gids::core {

const char* HotMetricName(HotMetric metric) {
  switch (metric) {
    case HotMetric::kReversePageRank:
      return "reverse-pagerank";
    case HotMetric::kInDegree:
      return "in-degree";
    case HotMetric::kRandom:
      return "random";
  }
  return "unknown";
}

ConstantCpuBuffer ConstantCpuBuffer::Build(const graph::CscGraph& graph,
                                           const graph::FeatureStore& features,
                                           uint64_t capacity_bytes,
                                           HotMetric metric, uint64_t seed) {
  GIDS_CHECK(graph.num_nodes() == features.num_nodes());
  std::vector<graph::NodeId> order;
  switch (metric) {
    case HotMetric::kReversePageRank: {
      std::vector<double> score =
          graph::WeightedReversePageRank(graph, graph::PageRankOptions{});
      order = graph::RankNodesByScore(score);
      break;
    }
    case HotMetric::kInDegree:
      order = graph::RankNodesByInDegree(graph);
      break;
    case HotMetric::kRandom: {
      order.resize(graph.num_nodes());
      for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) order[v] = v;
      Rng rng(seed);
      Shuffle(order, rng);
      break;
    }
  }

  uint64_t per_node = features.feature_bytes_per_node();
  uint64_t budget_nodes = per_node == 0 ? 0 : capacity_bytes / per_node;
  budget_nodes = std::min<uint64_t>(budget_nodes, order.size());

  std::vector<bool> pinned(features.num_nodes(), false);
  for (uint64_t i = 0; i < budget_nodes; ++i) pinned[order[i]] = true;
  return ConstantCpuBuffer(&features, std::move(pinned), budget_nodes);
}

ConstantCpuBuffer ConstantCpuBuffer::FromNodeSet(
    const graph::FeatureStore& features,
    const std::vector<graph::NodeId>& nodes) {
  std::vector<bool> pinned(features.num_nodes(), false);
  uint64_t count = 0;
  for (graph::NodeId v : nodes) {
    GIDS_CHECK(v < features.num_nodes());
    if (!pinned[v]) {
      pinned[v] = true;
      ++count;
    }
  }
  return ConstantCpuBuffer(&features, std::move(pinned), count);
}

void ConstantCpuBuffer::Fill(graph::NodeId node, std::span<float> out) const {
  GIDS_CHECK(Contains(node));
  features_->FillFeature(node, out);
  if (fills_total_ != nullptr) {
    fills_total_->Inc();
    bytes_served_total_->Inc(features_->feature_bytes_per_node());
  }
}

void ConstantCpuBuffer::BindMetrics(obs::MetricRegistry* registry,
                                    const obs::Labels& labels) {
  GIDS_CHECK(registry != nullptr);
  using obs::MetricType;
  registry->RegisterCallback(
      "gids_cpu_buffer_pinned_nodes", labels, MetricType::kGauge,
      [this] { return static_cast<double>(num_pinned()); });
  registry->RegisterCallback(
      "gids_cpu_buffer_pinned_bytes", labels, MetricType::kGauge,
      [this] { return static_cast<double>(pinned_bytes()); });
  fills_total_ = registry->GetCounter("gids_cpu_buffer_fills_total", labels);
  bytes_served_total_ =
      registry->GetCounter("gids_cpu_buffer_bytes_served_total", labels);
}

}  // namespace gids::core
