// Ablation: cache eviction policies on an identical sampled-access trace.
//
// Replays the same neighborhood-sampling page trace (IGB-Full proxy,
// 8 GB-scaled cache) through four policies:
//   - random eviction (BaM's default),
//   - random + window-buffer pinning (GIDS, depth 8),
//   - LRU (the OS page cache policy),
//   - Belady / MIN with full-trace look-ahead (offline optimal bound).
// This separates how much of GIDS's Fig. 11 gain comes from look-ahead
// pinning specifically, and how far it sits from the offline optimum.
#include <benchmark/benchmark.h>

#include <deque>

#include "bench/common.h"
#include "loaders/belady_cache.h"
#include "loaders/os_page_cache.h"
#include "storage/software_cache.h"

namespace gids::bench {
namespace {

// Per-iteration page traces from the real sampler.
std::vector<std::vector<uint64_t>> CollectTrace(int iterations) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);
  std::vector<std::vector<uint64_t>> trace(iterations);
  for (int i = 0; i < iterations; ++i) {
    auto batch = rig.sampler->Sample(rig.seeds->NextBatch());
    for (graph::NodeId v : batch.input_nodes()) {
      auto range = rig.dataset->features.PagesFor(v);
      for (uint64_t p = range.first; p <= range.last; ++p) {
        trace[i].push_back(p);
      }
    }
  }
  return trace;
}

constexpr uint64_t kCachePages = 8192;  // 8 GB at 1/256 scale / 4 KiB

double RandomPolicy(const std::vector<std::vector<uint64_t>>& trace,
                    int window_depth) {
  storage::SoftwareCache cache(kCachePages * 4096, 4096, /*seed=*/3,
                               /*store_payloads=*/false);
  // Window buffering: register `window_depth` iterations ahead.
  for (int ahead = 0; ahead < window_depth && ahead < (int)trace.size();
       ++ahead) {
    for (uint64_t p : trace[ahead]) cache.AddFutureReuse(p, 1);
  }
  for (size_t i = 0; i < trace.size(); ++i) {
    size_t incoming = i + window_depth;
    if (window_depth > 0 && incoming < trace.size()) {
      for (uint64_t p : trace[incoming]) cache.AddFutureReuse(p, 1);
    }
    for (uint64_t p : trace[i]) {
      if (!cache.Touch(p)) cache.InsertMeta(p);
    }
  }
  return cache.stats().HitRatio();
}

double LruPolicy(const std::vector<std::vector<uint64_t>>& trace) {
  loaders::OsPageCache cache(kCachePages);
  for (const auto& iter : trace) {
    for (uint64_t p : iter) cache.Access(p);
  }
  return static_cast<double>(cache.hits()) /
         static_cast<double>(cache.hits() + cache.faults());
}

double BeladyPolicy(const std::vector<std::vector<uint64_t>>& trace) {
  loaders::BeladyCache cache(kCachePages);
  auto result = cache.ProcessSuperbatch(trace);
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    hits += result.hits_per_iteration[i];
    misses += result.misses_per_iteration[i];
  }
  return static_cast<double>(hits) / static_cast<double>(hits + misses);
}

void BM_EvictionPolicies(benchmark::State& state) {
  double random = 0;
  double window = 0;
  double lru = 0;
  double belady = 0;
  for (auto _ : state) {
    auto trace = CollectTrace(60);
    random = RandomPolicy(trace, 0);
    window = RandomPolicy(trace, 8);
    lru = LruPolicy(trace);
    belady = BeladyPolicy(trace);
  }
  state.counters["random"] = random;
  state.counters["window8"] = window;
  state.counters["lru"] = lru;
  state.counters["belady"] = belady;
  ReportRow("ABL-EVICT", "random eviction hit ratio", random, 0, "fraction");
  ReportRow("ABL-EVICT", "window depth=8 hit ratio", window, 0, "fraction");
  ReportRow("ABL-EVICT", "LRU hit ratio", lru, 0, "fraction");
  ReportRow("ABL-EVICT", "Belady (offline optimal) hit ratio", belady, 0,
            "fraction");
  ReportRow("ABL-EVICT", "window gain over random", window / random, 0, "x");
  ReportRow("ABL-EVICT", "headroom to offline optimal", belady / window, 0,
            "x");
}

BENCHMARK(BM_EvictionPolicies)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
