// Reproduces Figure 11: feature-aggregation performance of the GIDS
// dataloader for different window-buffering depths (0 = plain random
// eviction, 4, 8) with an 8 GB (scaled) GPU software cache on the
// IGB-Full proxy.
//
// Paper anchors: depth 4 improves the cache hit ratio by only ~1.2x
// (most of the previous four mini-batches still fit in the cache even
// under random eviction), while depth 8 improves the hit ratio by ~2.19x
// and feature-aggregation time by ~1.13x.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

struct WindowResult {
  double hit_ratio;
  double agg_ms;
};

WindowResult MeasureWindow(int depth) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);
  core::GidsOptions o;
  o.use_cpu_buffer = false;  // isolate the cache effect
  o.use_window_buffering = depth > 0;
  o.window_depth = depth;
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/40, /*measure=*/40);
  return WindowResult{
      result.gpu_cache_hit_ratio(),
      NsToMs(result.measured.aggregation_ns) /
          static_cast<double>(result.per_iteration.size())};
}

void BM_WindowDepth(benchmark::State& state) {
  WindowResult base{};
  WindowResult d4{};
  WindowResult d8{};
  for (auto _ : state) {
    base = MeasureWindow(0);
    d4 = MeasureWindow(4);
    d8 = MeasureWindow(8);
  }
  state.counters["hit_ratio_depth0"] = base.hit_ratio;
  state.counters["hit_ratio_depth4"] = d4.hit_ratio;
  state.counters["hit_ratio_depth8"] = d8.hit_ratio;
  state.counters["agg_ms_depth0"] = base.agg_ms;
  state.counters["agg_ms_depth8"] = d8.agg_ms;

  ReportRow("FIG11", "hit ratio depth=0", base.hit_ratio, 0, "fraction");
  ReportRow("FIG11", "hit ratio depth=4", d4.hit_ratio, 0, "fraction");
  ReportRow("FIG11", "hit ratio depth=8", d8.hit_ratio, 0, "fraction");
  ReportRow("FIG11", "hit-ratio gain depth=4",
            d4.hit_ratio / std::max(base.hit_ratio, 1e-9), 1.2, "x");
  ReportRow("FIG11", "hit-ratio gain depth=8",
            d8.hit_ratio / std::max(base.hit_ratio, 1e-9), 2.19, "x");
  ReportRow("FIG11", "aggregation speedup depth=4",
            base.agg_ms / std::max(d4.agg_ms, 1e-9), 1.04, "x");
  ReportRow("FIG11", "aggregation speedup depth=8",
            base.agg_ms / std::max(d8.agg_ms, 1e-9), 1.13, "x");
}

BENCHMARK(BM_WindowDepth)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
