# Empty compiler generated dependencies file for gids_loaders.
# This may be replaced when dependencies are built.
