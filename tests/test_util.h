#ifndef GIDS_TESTS_TEST_UTIL_H_
#define GIDS_TESTS_TEST_UTIL_H_

#include <memory>

#include "graph/dataset.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/system_model.h"

namespace gids::testing {

/// A small end-to-end rig shared by the loader tests: a scaled IGB-small
/// proxy, a paper-shaped system model with scaled memory, a neighborhood
/// sampler and a seed iterator.
struct LoaderRig {
  explicit LoaderRig(double dataset_scale = 0.01,
                     double memory_scale = 1.0 / 4096.0,
                     sim::SsdSpec ssd = sim::SsdSpec::IntelOptane(),
                     int n_ssd = 1, uint32_t batch_size = 32,
                     std::vector<int> fanouts = {5, 5}) {
    auto built =
        graph::BuildDataset(graph::DatasetSpec::IgbSmall(), dataset_scale, 7);
    GIDS_CHECK(built.ok());
    dataset = std::make_unique<graph::Dataset>(std::move(built).value());

    sim::SystemConfig cfg = sim::SystemConfig::Paper(std::move(ssd), n_ssd);
    cfg.memory_scale = memory_scale;
    system = std::make_unique<sim::SystemModel>(cfg);

    sampler = std::make_unique<sampling::NeighborSampler>(
        &dataset->graph,
        sampling::NeighborSamplerOptions{.fanouts = std::move(fanouts)}, 11);
    seeds = std::make_unique<sampling::SeedIterator>(dataset->train_ids,
                                                     batch_size, 13);
  }

  std::unique_ptr<graph::Dataset> dataset;
  std::unique_ptr<sim::SystemModel> system;
  std::unique_ptr<sampling::NeighborSampler> sampler;
  std::unique_ptr<sampling::SeedIterator> seeds;
};

}  // namespace gids::testing

#endif  // GIDS_TESTS_TEST_UTIL_H_
