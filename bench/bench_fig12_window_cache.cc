// Reproduces Figure 12: feature-aggregation performance of window
// buffering (depth 16) vs the plain random-eviction cache across GPU
// software cache sizes of 4, 8, and 16 GB (scaled), on the IGB-Full proxy.
//
// Paper anchors: window buffering wins by 1.20x / 1.18x / 1.12x at
// 4 / 8 / 16 GB, and even the 16 GB plain cache performs worse than the
// 4 GB cache with window buffering — the hit ratio with look-ahead
// pinning is governed by the window depth, not the cache size.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

struct CacheResult {
  double hit_ratio;
  double agg_ms;
};

CacheResult MeasureCache(uint64_t cache_gb, bool window) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);
  core::GidsOptions o;
  o.use_cpu_buffer = false;
  o.use_window_buffering = window;
  o.window_depth = 16;
  // Scaled by the same 1/256 proxy rule as the dataset.
  o.gpu_cache_bytes = static_cast<uint64_t>(
      static_cast<double>(cache_gb * kGiB) * kProxyScale);
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/40, /*measure=*/40);
  return CacheResult{
      result.gpu_cache_hit_ratio(),
      NsToMs(result.measured.aggregation_ns) /
          static_cast<double>(result.per_iteration.size())};
}

void BM_WindowVsCacheSize(benchmark::State& state, double paper_speedup) {
  const uint64_t cache_gb = static_cast<uint64_t>(state.range(0));
  CacheResult plain{};
  CacheResult window{};
  for (auto _ : state) {
    plain = MeasureCache(cache_gb, false);
    window = MeasureCache(cache_gb, true);
  }
  state.counters["plain_hit_ratio"] = plain.hit_ratio;
  state.counters["window_hit_ratio"] = window.hit_ratio;
  state.counters["speedup"] = plain.agg_ms / std::max(window.agg_ms, 1e-9);

  std::string size = std::to_string(cache_gb) + "GB";
  ReportRow("FIG12", "plain cache hit ratio " + size, plain.hit_ratio, 0,
            "fraction");
  ReportRow("FIG12", "window-buffered hit ratio " + size, window.hit_ratio,
            0, "fraction");
  ReportRow("FIG12", "window buffering speedup " + size,
            plain.agg_ms / std::max(window.agg_ms, 1e-9), paper_speedup,
            "x");
}

void BM_SmallWindowBeatsLargePlain(benchmark::State& state) {
  CacheResult window4{};
  CacheResult plain16{};
  for (auto _ : state) {
    window4 = MeasureCache(4, true);
    plain16 = MeasureCache(16, false);
  }
  state.counters["window4_agg_ms"] = window4.agg_ms;
  state.counters["plain16_agg_ms"] = plain16.agg_ms;
  ReportRow("FIG12", "4GB+window vs 16GB plain (agg time ratio)",
            plain16.agg_ms / std::max(window4.agg_ms, 1e-9), 1.0,
            "x (>1 reproduces the paper's claim)");
}

BENCHMARK_CAPTURE(BM_WindowVsCacheSize, gb4, 1.20)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WindowVsCacheSize, gb8, 1.18)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WindowVsCacheSize, gb16, 1.12)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SmallWindowBeatsLargePlain)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
