file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_structure_placement.dir/bench_abl_structure_placement.cc.o"
  "CMakeFiles/bench_abl_structure_placement.dir/bench_abl_structure_placement.cc.o.d"
  "bench_abl_structure_placement"
  "bench_abl_structure_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_structure_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
