#ifndef GIDS_OBS_TIME_SERIES_H_
#define GIDS_OBS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "obs/ledger.h"

namespace gids::obs {

/// Windowed aggregator keyed on the *virtual* clock (TimeNs): iterations
/// are rolled into fixed-width windows by completion time, each window
/// keeping rolling counters (iterations, gather traffic, ledger sums) and
/// a Histogram snapshot of e2e latency. Export as a JSON or CSV timeline
/// of throughput, hit ratio, and per-window + rolling (cumulative)
/// p50/p90/p99 e2e latency — the time dimension the whole-run aggregates
/// in MetricRegistry cannot show (OBSERVABILITY.md "Timeline").
///
/// Windows are stored sparsely (only windows that saw an iteration), so a
/// narrow width over a long run costs memory proportional to iterations,
/// not to elapsed virtual time. Merging every window's histogram
/// reproduces the run histogram exactly, which is what makes the rolling
/// quantiles of the last window equal the run's quantiles.
///
/// Not thread-safe: one TimeSeries belongs to one loader's observer, which
/// already serializes RecordIteration.
class TimeSeries {
 public:
  struct Window {
    uint64_t index = 0;       // window start = index * window_ns
    uint64_t iterations = 0;
    uint64_t gpu_cache_hits = 0;
    uint64_t cpu_buffer_hits = 0;
    uint64_t storage_reads = 0;
    Histogram e2e_ns;         // per-window e2e distribution
    IterationLedger ledger;   // per-window component sums

    /// hits / (hits + storage reads), the GPU software-cache hit ratio.
    double hit_ratio() const;
  };

  explicit TimeSeries(TimeNs window_ns);

  /// Folds one completed iteration into the window containing its
  /// completion time (`sample.end_ns`). Completion times may arrive in any
  /// order: epoch loaders record monotonically (the loader clock is
  /// monotone), but the serving tier retires concurrent requests out of
  /// order, and each sample is folded into its owning window regardless
  /// (appending is O(1); a genuinely out-of-order sample pays a sorted
  /// insert). `windows()` stays sorted by index either way.
  void Record(const IterationSample& sample);

  TimeNs window_ns() const { return window_ns_; }
  const std::vector<Window>& windows() const { return windows_; }
  uint64_t total_iterations() const { return total_iterations_; }

  /// The run-level e2e distribution: the merge of every window histogram.
  Histogram MergedHistogram() const;

  /// {"window_ns":..,"windows":[{"index":..,"start_ns":..,"end_ns":..,
  ///   "iterations":..,"throughput_ips":..,"hit_ratio":..,
  ///   "p50_ns":..,"p90_ns":..,"p99_ns":..,
  ///   "rolling_p50_ns":..,"rolling_p90_ns":..,"rolling_p99_ns":..,
  ///   "ledger":{...}}, ...]}
  /// The rolling quantiles are over the merge of all windows up to and
  /// including this one, so the last window's rolling values equal the
  /// run histogram's quantiles.
  std::string ToJson() const;

  /// Same timeline as CSV: one header line, one row per window.
  std::string ToCsv() const;

 private:
  TimeNs window_ns_;
  std::vector<Window> windows_;
  uint64_t total_iterations_ = 0;
};

}  // namespace gids::obs

#endif  // GIDS_OBS_TIME_SERIES_H_
