#include "storage/storage_array.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace gids::storage {
namespace {

std::unique_ptr<StorageArray> MakeArray(int n_ssd, uint64_t pages = 64,
                                        uint32_t page_bytes = 128) {
  auto dev = std::make_unique<FunctionBlockDevice>(
      pages, page_bytes, [](uint64_t lba, std::span<std::byte> out) {
        for (size_t i = 0; i < out.size(); ++i) {
          out[i] = std::byte((lba + i) & 0xff);
        }
      });
  return std::make_unique<StorageArray>(std::move(dev),
                                        sim::SsdSpec::IntelOptane(), n_ssd);
}

TEST(StorageArrayTest, ReadsThroughToDevice) {
  auto arr = MakeArray(2);
  std::vector<std::byte> out(128);
  ASSERT_TRUE(arr->ReadPage(3, out).ok());
  EXPECT_EQ(out[0], std::byte{3});
  EXPECT_EQ(out[1], std::byte{4});
}

TEST(StorageArrayTest, RoundRobinStriping) {
  auto arr = MakeArray(3);
  EXPECT_EQ(arr->DeviceFor(0), 0);
  EXPECT_EQ(arr->DeviceFor(1), 1);
  EXPECT_EQ(arr->DeviceFor(2), 2);
  EXPECT_EQ(arr->DeviceFor(3), 0);
}

TEST(StorageArrayTest, PerDeviceCounters) {
  auto arr = MakeArray(2);
  std::vector<std::byte> out(128);
  for (uint64_t p = 0; p < 10; ++p) {
    ASSERT_TRUE(arr->ReadPage(p, out).ok());
  }
  EXPECT_EQ(arr->total_reads(), 10u);
  EXPECT_EQ(arr->reads_on_device(0), 5u);
  EXPECT_EQ(arr->reads_on_device(1), 5u);
}

TEST(StorageArrayTest, NoteReadCountsWithoutData) {
  auto arr = MakeArray(2);
  arr->NoteRead(0);
  arr->NoteRead(1);
  arr->NoteRead(2);
  EXPECT_EQ(arr->total_reads(), 3u);
  EXPECT_EQ(arr->reads_on_device(0), 2u);
  EXPECT_EQ(arr->reads_on_device(1), 1u);
}

TEST(StorageArrayTest, ResetCounters) {
  auto arr = MakeArray(1);
  arr->NoteRead(0);
  arr->ResetCounters();
  EXPECT_EQ(arr->total_reads(), 0u);
  EXPECT_EQ(arr->reads_on_device(0), 0u);
}

TEST(StorageArrayTest, OutOfRangePropagates) {
  auto arr = MakeArray(1, /*pages=*/4);
  std::vector<std::byte> out(128);
  EXPECT_EQ(arr->ReadPage(4, out).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace gids::storage
