# Empty compiler generated dependencies file for gids_common.
# This may be replaced when dependencies are built.
