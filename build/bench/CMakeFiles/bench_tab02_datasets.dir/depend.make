# Empty dependencies file for bench_tab02_datasets.
# This may be replaced when dependencies are built.
