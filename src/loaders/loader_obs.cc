#include "loaders/loader_obs.h"

#include <algorithm>

namespace gids::loaders {
namespace {

constexpr const char* kStageNames[] = {"sampling", "aggregation", "transfer",
                                       "training"};
constexpr const char* kPathNames[] = {"cpu_buffer", "gpu_cache", "storage",
                                      "coalesced"};

}  // namespace

LoaderObserver::LoaderObserver(obs::MetricRegistry* metrics,
                               obs::TraceRecorder* trace,
                               const std::string& loader_name,
                               obs::TimeSeries* timeline,
                               obs::ExemplarReservoir* exemplars,
                               obs::ExemplarReservoir* failover_exemplars)
    : metrics_(metrics),
      trace_(trace),
      timeline_(timeline),
      exemplars_(exemplars),
      failover_exemplars_(failover_exemplars),
      attribution_(timeline != nullptr || exemplars != nullptr),
      labels_{{"loader", loader_name}} {
  if (metrics_ != nullptr && attribution_) {
    for (int c = 0; c < obs::IterationLedger::kNumComponents - 1; ++c) {
      obs::Labels component_labels = labels_;
      component_labels.emplace_back("component",
                                    obs::IterationLedger::ComponentName(c));
      ledger_ns_total_[c] =
          metrics_->GetCounter("gids_ledger_ns_total", component_labels);
    }
    metrics_->RegisterCallback(
        "gids_ledger_overlap_credit_ns_total", labels_,
        obs::MetricType::kGauge, [this] {
          return static_cast<double>(
              overlap_credit_ns_sum_.load(std::memory_order_relaxed));
        });
  }
  if (metrics_ != nullptr) {
    iterations_total_ =
        metrics_->GetCounter("gids_loader_iterations_total", labels_);
    for (int s = 0; s < kNumStages; ++s) {
      obs::Labels stage_labels = labels_;
      stage_labels.emplace_back("stage", kStageNames[s]);
      stage_ns_total_[s] =
          metrics_->GetCounter("gids_loader_stage_ns_total", stage_labels);
    }
    e2e_ns_total_ = metrics_->GetCounter("gids_loader_e2e_ns_total", labels_);
    sampled_edges_total_ =
        metrics_->GetCounter("gids_loader_sampled_edges_total", labels_);
    for (int p = 0; p < 4; ++p) {
      obs::Labels path_labels = labels_;
      path_labels.emplace_back("path", kPathNames[p]);
      gather_pages_total_[p] =
          metrics_->GetCounter("gids_loader_gather_pages_total", path_labels);
    }
    degraded_nodes_total_ =
        metrics_->GetCounter("gids_storage_degraded_nodes", labels_);
    corrupt_nodes_total_ =
        metrics_->GetCounter("gids_storage_corrupt_nodes", labels_);
    e2e_ns_hist_ = metrics_->GetHistogram("gids_loader_e2e_ns", labels_);
    input_nodes_hist_ =
        metrics_->GetHistogram("gids_loader_input_nodes", labels_);
  }
  if (trace_ != nullptr) {
    trace_->SetTrackName(kIterationTrack, loader_name + " iterations");
    for (int s = 0; s < kNumStages; ++s) {
      trace_->SetTrackName(1 + s, kStageNames[s]);
    }
  }
}

void LoaderObserver::RecordIteration(const IterationStats& stats) {
  if (metrics_ != nullptr) {
    iterations_total_->Inc();
    const TimeNs stage_ns[kNumStages] = {stats.sampling_ns,
                                         stats.aggregation_ns,
                                         stats.transfer_ns, stats.training_ns};
    for (int s = 0; s < kNumStages; ++s) {
      stage_ns_total_[s]->Inc(static_cast<uint64_t>(stage_ns[s]));
    }
    e2e_ns_total_->Inc(static_cast<uint64_t>(stats.e2e_ns));
    sampled_edges_total_->Inc(stats.sampled_edges);
    gather_pages_total_[0]->Inc(stats.gather.cpu_buffer_hits);
    gather_pages_total_[1]->Inc(stats.gather.gpu_cache_hits);
    gather_pages_total_[2]->Inc(stats.gather.storage_reads);
    gather_pages_total_[3]->Inc(stats.gather.coalesced_requests);
    degraded_nodes_total_->Inc(stats.gather.degraded_nodes);
    corrupt_nodes_total_->Inc(stats.gather.corrupt_nodes);
    e2e_ns_hist_->Observe(static_cast<uint64_t>(stats.e2e_ns));
    input_nodes_hist_->Observe(stats.input_nodes);
    if (attribution_) {
      for (int c = 0; c < obs::IterationLedger::kNumComponents - 1; ++c) {
        ledger_ns_total_[c]->Inc(
            static_cast<uint64_t>(stats.ledger.component(c)));
      }
      overlap_credit_ns_sum_.fetch_add(stats.ledger.overlap_credit_ns,
                                       std::memory_order_relaxed);
    }
  }

  if (trace_ != nullptr) {
    const TimeNs t0 = clock_;
    const double iter = static_cast<double>(iteration_index_);
    obs::TraceArgs iteration_args = {
        {"iteration", iter},
        {"input_nodes", static_cast<double>(stats.input_nodes)},
        {"sampled_edges", static_cast<double>(stats.sampled_edges)},
        {"merged_group", static_cast<double>(stats.merged_group)},
        {"gpu_cache_hits", static_cast<double>(stats.gather.gpu_cache_hits)},
        {"cpu_buffer_hits",
         static_cast<double>(stats.gather.cpu_buffer_hits)},
        {"storage_reads", static_cast<double>(stats.gather.storage_reads)}};
    if (attribution_) {
      for (int c = 0; c < obs::IterationLedger::kNumComponents; ++c) {
        iteration_args.emplace_back(
            std::string("ledger_") + obs::IterationLedger::ComponentName(c) +
                "_ns",
            static_cast<double>(stats.ledger.component(c)));
      }
    }
    trace_->AddSpan("iteration", "pipeline", kIterationTrack, t0,
                    t0 + stats.e2e_ns, std::move(iteration_args));
    const TimeNs stage_ns[kNumStages] = {stats.sampling_ns,
                                         stats.aggregation_ns,
                                         stats.transfer_ns, stats.training_ns};
    TimeNs offset = 0;
    for (int s = 0; s < kNumStages; ++s) {
      if (stage_ns[s] <= 0) continue;
      TimeNs start = std::max(t0 + offset, lane_cursor_[s]);
      trace_->AddSpan(kStageNames[s], "stage", 1 + s, start,
                      start + stage_ns[s], {{"iteration", iter}});
      lane_cursor_[s] = start + stage_ns[s];
      offset += stage_ns[s];
    }
  }

  if (attribution_ || failover_exemplars_ != nullptr) {
    obs::IterationSample sample;
    sample.iteration = iteration_index_;
    sample.end_ns = clock_ + stats.e2e_ns;
    sample.e2e_ns = stats.e2e_ns;
    sample.gpu_cache_hits = stats.gather.gpu_cache_hits;
    sample.cpu_buffer_hits = stats.gather.cpu_buffer_hits;
    sample.storage_reads = stats.gather.storage_reads;
    sample.ledger = stats.ledger;
    sample.failovers = stats.failovers;
    sample.failover_device = stats.failover_device;
    sample.failover_replica = stats.failover_replica;
    if (timeline_ != nullptr) timeline_->Record(sample);
    if (exemplars_ != nullptr) exemplars_->Offer(sample);
    if (failover_exemplars_ != nullptr && sample.failovers > 0) {
      failover_exemplars_->Offer(sample);
    }
  }

  clock_ += stats.e2e_ns;
  ++iteration_index_;
}

void LoaderObserver::Instant(const char* name, obs::TraceArgs args) {
  if (trace_ != nullptr) {
    trace_->AddInstant(name, "event", kIterationTrack, clock_,
                       std::move(args));
  }
}

}  // namespace gids::loaders
