# Empty compiler generated dependencies file for bench_fig03_request_rate.
# This may be replaced when dependencies are built.
