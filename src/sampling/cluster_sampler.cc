#include "sampling/cluster_sampler.h"

#include "common/check.h"
#include "common/workspace_pool.h"

namespace gids::sampling {

ClusterGcnSampler::ClusterGcnSampler(const graph::CscGraph* graph,
                                     graph::PartitionResult partition,
                                     ClusterSamplerOptions options,
                                     uint64_t seed)
    : graph_(graph), partition_(std::move(partition)), options_(options),
      seed_(seed) {
  GIDS_CHECK(graph_ != nullptr);
  GIDS_CHECK(options_.num_layers >= 1);
  GIDS_CHECK(options_.clusters_per_batch >= 1);
  GIDS_CHECK(options_.clusters_per_batch <= partition_.num_parts);
  GIDS_CHECK(partition_.part_of.size() == graph_->num_nodes());
}

void ClusterGcnSampler::SampleAtInto(std::span<const graph::NodeId>,
                                     uint64_t iteration, MiniBatch* out) {
  Rng rng = IterationRng(seed_, iteration);
  out->Reset();
  if (out->blocks.size() != static_cast<size_t>(options_.num_layers)) {
    out->blocks.resize(options_.num_layers);
    for (Block& b : out->blocks) b.Reset();
  }

  // Pick distinct clusters uniformly at random.
  Workspace<uint64_t> picks;
  SampleWithoutReplacementInto(partition_.num_parts,
                               options_.clusters_per_batch, rng, picks);

  // Union of member nodes, with local ids (partition members are
  // disjoint, so every node is new).
  PooledFlatMap<graph::NodeId, uint32_t> local;
  size_t member_total = 0;
  for (uint64_t c : picks) member_total += partition_.members[c].size();
  local.Reset(member_total);

  // The induced subgraph is identical for every layer: build layer 0 in
  // place, then copy it into the other recycled blocks.
  Block& block = out->blocks[0];
  for (uint64_t c : picks) {
    for (graph::NodeId v : partition_.members[c]) {
      local.TryEmplace(v, static_cast<uint32_t>(block.src_nodes.size()));
      block.src_nodes.push_back(v);
    }
  }
  block.num_dst = static_cast<uint32_t>(block.src_nodes.size());

  // Induced-subgraph edges (src and dst both inside the cluster union).
  for (uint32_t d = 0; d < block.num_dst; ++d) {
    for (graph::NodeId u : graph_->in_neighbors(block.src_nodes[d])) {
      uint32_t* it = local.Find(u);
      if (it == nullptr) continue;  // edge cut by the partition
      block.edge_src.push_back(*it);
      block.edge_dst.push_back(d);
    }
  }

  out->seeds.assign(block.src_nodes.begin(), block.src_nodes.end());
  for (int l = 1; l < options_.num_layers; ++l) {
    Block& b = out->blocks[l];
    b.src_nodes.assign(block.src_nodes.begin(), block.src_nodes.end());
    b.num_dst = block.num_dst;
    b.edge_src.assign(block.edge_src.begin(), block.edge_src.end());
    b.edge_dst.assign(block.edge_dst.begin(), block.edge_dst.end());
  }
}

}  // namespace gids::sampling
