#ifndef GIDS_BENCH_E2E_COMMON_H_
#define GIDS_BENCH_E2E_COMMON_H_

// Shared implementation for the end-to-end training-time comparisons
// (Figure 13 with Samsung 980 Pro SSDs, Figure 14 with Intel Optane).
// Four dataloaders (DGL-mmap, Ginex, BaM, GIDS) over four real-world
// dataset proxies; Ginex is skipped for heterogeneous graphs, matching
// §4.1. IGBH-Full uses two SSDs (storage capacity, §4.6).

#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {

struct E2ECase {
  graph::DatasetSpec spec;
  double paper_gids_vs_dgl;    // paper's speedup (0 = not reported)
  double paper_gids_vs_ginex;
  double paper_gids_vs_bam;
};

struct E2EMeasurement {
  double ms = 0;       // mean virtual-time ms per measured iteration
  double wall_ms = 0;  // host wall-clock of the measured phase
};

inline E2EMeasurement MeasureE2EIterationMs(LoaderKind kind,
                                            const graph::DatasetSpec& spec,
                                            const sim::SsdSpec& ssd) {
  ProxyConfig cfg;
  cfg.spec = spec;
  cfg.ssd = ssd;
  cfg.n_ssd = spec.name == "IGBH-Full" ? 2 : 1;
  Rig rig = BuildRig(cfg);
  core::GidsOptions opts;  // used by BaM/GIDS only
  if (kind == LoaderKind::kGids) {
    opts.hot_node_order = &CachedPageRankOrder(rig.dataset);
  } else if (kind == LoaderKind::kBam) {
    opts = core::GidsOptions::Bam();
  }
  auto loader = MakeLoader(kind, rig, &opts);
  // Scaled-down analogue of the paper's 1000-warmup / 100-measured
  // protocol (§4.1); warm-up fills the page caches / software cache.
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/250, /*measure=*/30);
  return E2EMeasurement{result.mean_iteration_ms(), result.wall_ms};
}

inline void RunE2E(benchmark::State& state, const char* figure,
                   const E2ECase& c, const sim::SsdSpec& ssd) {
  bool hetero = c.spec.kind == graph::GraphKind::kHeterogeneous;
  E2EMeasurement dgl, ginex, bam, gids;
  for (auto _ : state) {
    dgl = MeasureE2EIterationMs(LoaderKind::kMmap, c.spec, ssd);
    ginex = hetero ? E2EMeasurement{}
                   : MeasureE2EIterationMs(LoaderKind::kGinex, c.spec, ssd);
    bam = MeasureE2EIterationMs(LoaderKind::kBam, c.spec, ssd);
    gids = MeasureE2EIterationMs(LoaderKind::kGids, c.spec, ssd);
  }
  state.counters["dgl_ms"] = dgl.ms;
  state.counters["ginex_ms"] = ginex.ms;
  state.counters["bam_ms"] = bam.ms;
  state.counters["gids_ms"] = gids.ms;
  state.counters["gids_vs_dgl"] = dgl.ms / gids.ms;
  state.counters["gids_vs_bam"] = bam.ms / gids.ms;

  ReportRow(figure, c.spec.name + " DGL-mmap", dgl.ms, 0, "ms/iter",
            dgl.wall_ms);
  if (!hetero) {
    ReportRow(figure, c.spec.name + " Ginex", ginex.ms, 0, "ms/iter",
              ginex.wall_ms);
  }
  ReportRow(figure, c.spec.name + " BaM", bam.ms, 0, "ms/iter", bam.wall_ms);
  ReportRow(figure, c.spec.name + " GIDS", gids.ms, 0, "ms/iter",
            gids.wall_ms);
  ReportRow(figure, c.spec.name + " GIDS speedup vs DGL-mmap",
            dgl.ms / gids.ms, c.paper_gids_vs_dgl, "x");
  if (!hetero) {
    ReportRow(figure, c.spec.name + " GIDS speedup vs Ginex",
              ginex.ms / gids.ms, c.paper_gids_vs_ginex, "x");
  }
  ReportRow(figure, c.spec.name + " GIDS speedup vs BaM", bam.ms / gids.ms,
            c.paper_gids_vs_bam, "x");
}

}  // namespace gids::bench

#endif  // GIDS_BENCH_E2E_COMMON_H_
