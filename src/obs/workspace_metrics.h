#ifndef GIDS_OBS_WORKSPACE_METRICS_H_
#define GIDS_OBS_WORKSPACE_METRICS_H_

#include "common/workspace_pool.h"
#include "obs/metric_registry.h"

namespace gids::obs {

/// Exposes a WorkspacePool through `registry` (pull-style; see
/// OBSERVABILITY.md "Workspace pool"):
///   gids_ws_acquires_total     counter  workspace blocks handed out
///   gids_ws_pool_hits_total    counter  acquires served without malloc
///   gids_ws_allocs_total       counter  acquires that fell through to malloc
///   gids_ws_bytes_outstanding  gauge    bytes currently acquired
///   gids_ws_thread_caches      gauge    live per-thread cache registrations
/// plus one gids_ws_allocs_total{bucket="<bytes>"} series per power-of-two
/// size class, so a bench can prove which class (if any) is still
/// allocating in the steady state. The zero-allocation gate
/// (bench_host_parallelism) asserts gids_ws_allocs_total stays flat after
/// the warmup epoch. Returns a PullBinding whose destruction freezes the
/// entries; the pool must outlive the returned binding.
[[nodiscard]] PullBinding BindWorkspacePoolMetrics(const WorkspacePool& pool,
                                                  MetricRegistry* registry,
                                                  const Labels& labels);

}  // namespace gids::obs

#endif  // GIDS_OBS_WORKSPACE_METRICS_H_
