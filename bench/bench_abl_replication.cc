// Ablation: durability & replication vs availability and overhead
// (FAULTS.md "Durability & failover").
//
// Two sweeps over a 4-SSD array with a device forced offline mid-epoch:
//
//  - Availability: with replication off, reads striped onto the dark
//    device exhaust their retries and zero-fill (degraded nodes); with
//    replication_factor 2 every such read transparently fails over to
//    the page's surviving replica, so the epoch completes with ZERO
//    degraded nodes. The availability row is the fraction of gathered
//    nodes served intact — gated one-sided (higher is better).
//
//  - Overhead: the journaled write path (feature updates + edge deltas
//    per iteration, quorum durability) against the same workload with
//    mutations off, reporting the e2e slowdown and the journal's write
//    amplification. Deterministic like every sweep here: all rows are
//    pure functions of the seeds.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/common.h"

namespace gids::bench {
namespace {

struct AvailabilityRow {
  double availability = 1.0;  // intact nodes / gathered nodes
  double slowdown = 1.0;      // e2e vs healthy single-copy run
  uint64_t degraded_nodes = 0;
  uint64_t failovers = 0;
};

AvailabilityRow MeasureAvailability(int replication_factor, bool outage,
                                    TimeNs* baseline_e2e) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  cfg.n_ssd = 4;
  Rig rig = BuildRig(cfg);
  core::GidsOptions o;
  o.replication_factor = replication_factor;
  if (outage) {
    // Take device 1 offline mid-epoch (after ~a third of the measured
    // virtual time at this scale); the healthy baseline row keeps every
    // device up to anchor the slowdown.
    o.offline_devices = {1};
    o.offline_at_ns = 2 * kNsPerMs;
  }
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/10, /*measure=*/30);

  AvailabilityRow row;
  uint64_t gathered = 0;
  for (const auto& it : result.per_iteration) {
    row.degraded_nodes += it.gather.degraded_nodes;
    gathered += it.input_nodes;
    row.failovers += it.failovers;
  }
  row.availability =
      gathered > 0 ? 1.0 - static_cast<double>(row.degraded_nodes) /
                               static_cast<double>(gathered)
                   : 1.0;
  if (*baseline_e2e == 0) *baseline_e2e = result.measured_e2e_ns;
  row.slowdown = static_cast<double>(result.measured_e2e_ns) /
                 static_cast<double>(*baseline_e2e);
  return row;
}

void BM_ReplicationAvailability(benchmark::State& state) {
  // range 0: healthy single-copy baseline (anchors slowdown);
  // range 1: single-copy with the outage; range 2/3: replicated.
  const int factor = static_cast<int>(state.range(0));
  static TimeNs baseline_e2e = 0;
  AvailabilityRow row;
  for (auto _ : state) {
    row = MeasureAvailability(factor == 0 ? 1 : factor,
                              /*outage=*/factor != 0, &baseline_e2e);
  }
  state.counters["degraded_nodes"] =
      static_cast<double>(row.degraded_nodes);
  state.counters["failovers"] = static_cast<double>(row.failovers);
  char label[80];
  std::snprintf(label, sizeof(label),
                factor == 0 ? "IGB-Full/GIDS x4 healthy R=1"
                            : "IGB-Full/GIDS x4 offline-mid-epoch R=%d",
                factor);
  ReportRow("ABL-REPLICATION-AVAIL", std::string(label) + " availability",
            row.availability, 0, "frac");
  ReportRow("ABL-REPLICATION", std::string(label) + " slowdown",
            row.slowdown, 0, "x");
}

BENCHMARK(BM_ReplicationAvailability)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Journaled write path overhead: mutations per iteration at quorum
// durability on a replicated array, vs the identical read-only run.
struct OverheadRow {
  double slowdown = 1.0;
  double write_amplification = 0.0;
  uint64_t applied = 0;
};

OverheadRow MeasureMutationOverhead(uint32_t updates_per_iter,
                                    TimeNs* baseline_e2e) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  cfg.n_ssd = 4;
  Rig rig = BuildRig(cfg);
  core::GidsOptions o;
  o.replication_factor = 2;
  o.updates_per_iter = updates_per_iter;
  o.edge_ops_per_iter = updates_per_iter / 2;
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/10, /*measure=*/30);

  OverheadRow row;
  auto* gids = dynamic_cast<core::GidsLoader*>(loader.get());
  const storage::StorageArray& array = gids->storage_array();
  if (array.journal_enabled()) {
    row.write_amplification = array.journal()->WriteAmplification();
    row.applied = array.journal()->counters().applied.load();
  }
  if (updates_per_iter == 0) *baseline_e2e = result.measured_e2e_ns;
  row.slowdown = *baseline_e2e > 0
                     ? static_cast<double>(result.measured_e2e_ns) /
                           static_cast<double>(*baseline_e2e)
                     : 1.0;
  return row;
}

void BM_MutationOverhead(benchmark::State& state) {
  const uint32_t updates = static_cast<uint32_t>(state.range(0));
  static TimeNs baseline_e2e = 0;  // filled by the updates-0 row
  OverheadRow row;
  for (auto _ : state) {
    row = MeasureMutationOverhead(updates, &baseline_e2e);
  }
  state.counters["applied"] = static_cast<double>(row.applied);
  char label[80];
  std::snprintf(label, sizeof(label),
                "IGB-Full/GIDS x4 R=2 updates/iter %u", updates);
  ReportRow("ABL-REPLICATION", std::string(label) + " slowdown",
            row.slowdown, 0, "x");
  if (updates > 0) {
    ReportRow("ABL-REPLICATION", std::string(label) + " write-amp",
              row.write_amplification, 0, "x");
  }
}

BENCHMARK(BM_MutationOverhead)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
