#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace gids::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&order](TimeNs) { order.push_back(3); });
  q.ScheduleAt(10, [&order](TimeNs) { order.push_back(1); });
  q.ScheduleAt(20, [&order](TimeNs) { order.push_back(2); });
  TimeNs end = q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(end, 30);
}

TEST(EventQueueTest, SameTimestampIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i](TimeNs) { order.push_back(i); });
  }
  q.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CallbackSeesCurrentTime) {
  EventQueue q;
  TimeNs seen = -1;
  q.ScheduleAt(123, [&seen](TimeNs now) { seen = now; });
  q.RunUntilIdle();
  EXPECT_EQ(seen, 123);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<TimeNs> fired;
  q.ScheduleAt(10, [&](TimeNs now) {
    fired.push_back(now);
    q.ScheduleAfter(5, [&](TimeNs later) { fired.push_back(later); });
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 15}));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<TimeNs> fired;
  q.ScheduleAt(10, [&fired](TimeNs t) { fired.push_back(t); });
  q.ScheduleAt(50, [&fired](TimeNs t) { fired.push_back(t); });
  TimeNs now = q.RunUntil(30);
  EXPECT_EQ(now, 30);
  EXPECT_EQ(fired, std::vector<TimeNs>{10});
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 50}));
}

TEST(EventQueueTest, EmptyAndPending) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.ScheduleAt(1, [](TimeNs) {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntilIdle();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  TimeNs second_fire = 0;
  q.ScheduleAt(100, [&](TimeNs) {
    q.ScheduleAfter(25, [&](TimeNs t) { second_fire = t; });
  });
  q.RunUntilIdle();
  EXPECT_EQ(second_fire, 125);
}

}  // namespace
}  // namespace gids::sim
