file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_accumulator.dir/bench_fig09_accumulator.cc.o"
  "CMakeFiles/bench_fig09_accumulator.dir/bench_fig09_accumulator.cc.o.d"
  "bench_fig09_accumulator"
  "bench_fig09_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
