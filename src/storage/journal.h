#ifndef GIDS_STORAGE_JOURNAL_H_
#define GIDS_STORAGE_JOURNAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "storage/page_integrity.h"
#include "storage/replica_set.h"

namespace gids::storage {

/// When a submitted mutation is acknowledged to the writer
/// (FAULTS.md "Durability & failover").
enum class DurabilityLevel : uint8_t {
  kNone = 0,      // acked at submit; may be lost before it ever journals
  kJournaled = 1, // acked once appended to the in-memory journal tail
  kSynced = 2,    // acked once the home primary's journal synced it
  kQuorum = 3,    // acked once a write quorum of replica journals synced it
};

const char* DurabilityLevelName(DurabilityLevel level);
/// Parses "none" / "journaled" / "synced" / "quorum"; returns false on an
/// unknown name (level is left untouched).
bool ParseDurabilityLevel(std::string_view name, DurabilityLevel* level);

/// Kinds of journaled mutation records.
enum class MutationType : uint8_t {
  kFeatureUpdate = 0,  // overwrite one node's feature row
  kEdgeInsert = 1,     // topology delta: add edge (key -> arg)
  kEdgeDelete = 2,     // topology delta: remove edge (key -> arg)
};

/// One write-ahead-journal record. Feature updates carry the new row bytes
/// in `payload` and their flat-file byte `offset`; edge records carry no
/// payload (the graph-side consumer interprets key/arg as src/dst). Every
/// record is CRC-tagged at append: the sum spans all header fields and the
/// payload and is XORed with the checksummer's LSN tag, so a record
/// replayed at the wrong LSN — or torn by a crash — fails verification.
struct MutationRecord {
  uint64_t lsn = 0;  // 0 at submit = assign the next LSN
  MutationType type = MutationType::kFeatureUpdate;
  uint64_t key = 0;     // node id (feature update) or edge source
  uint64_t arg = 0;     // row version (feature update) or edge destination
  uint64_t offset = 0;  // byte offset into the flat page space (features)
  std::vector<std::byte> payload;
  uint32_t crc = 0;

  /// Replica-placement key: the first page the record touches (features)
  /// or a deterministic hash page (edges). The record's journal fan-out
  /// and write quorum are the replica set of this page.
  uint64_t home_page = 0;
};

/// Knobs of the journaled write path. Virtual-time costs mirror the rest
/// of the simulator: appends, fsyncs, and applies charge the mutation
/// ledger, never the wall clock.
struct JournalOptions {
  DurabilityLevel durability = DurabilityLevel::kQuorum;
  /// Modeled cost of appending one record to one device journal.
  TimeNs append_ns = 500;
  /// Modeled cost of one journal fsync (per device whose tail advanced).
  TimeNs fsync_ns = 10 * kNsPerUs;
  /// Modeled cost of applying one record into the striped pages.
  TimeNs apply_ns = 2 * kNsPerUs;
};

/// Counters of the journal subsystem, all monotonically increasing and
/// atomic (metric snapshots read them while the single-flight group
/// preparation drives the journal).
struct JournalCounters {
  std::atomic<uint64_t> appends{0};          // per-device journal appends
  std::atomic<uint64_t> append_failures{0};  // fan-out to an offline device
  std::atomic<uint64_t> fsyncs{0};           // device syncs that advanced
  std::atomic<uint64_t> synced_records{0};   // record-device sync events
  std::atomic<uint64_t> applied{0};          // records applied to pages
  std::atomic<uint64_t> replayed{0};         // survivors replayed by Recover
  std::atomic<uint64_t> truncated{0};        // records lost to a crash
  std::atomic<uint64_t> torn{0};             // crash-torn records (CRC fail)
  std::atomic<uint64_t> resubmitted{0};      // lost records submitted again
  std::atomic<uint64_t> quorum_stalls{0};    // apply steps blocked on quorum
  std::atomic<uint64_t> crashes{0};
  std::atomic<uint64_t> recovers{0};
  std::atomic<uint64_t> journal_bytes{0};    // bytes appended across devices
  std::atomic<uint64_t> logical_bytes{0};    // payload bytes submitted once
  std::atomic<uint64_t> applied_page_bytes{0};  // page bytes written by apply
  std::atomic<uint64_t> mutation_ns{0};      // total modeled journal time
};

/// The per-device write-ahead journal set and its apply/recovery state
/// machine. One coordinator fronts `n_devices` journals: a submitted
/// record fans out to every device in its home page's replica set, syncs
/// advance per-device durable tails, and a strict-LSN-order applier moves
/// durable records into the striped pages (via the caller's apply hook).
///
/// Determinism contract: every method is driven from the single-flight
/// group-preparation step, and every decision — fan-out, sync, the crash
/// truncation point, replay order — is a pure function of the submitted
/// record stream and the seeds involved. Counters are atomic only so
/// metric snapshots can race the applier safely.
class JournalCoordinator {
 public:
  /// `replicas` may be null (single-copy mode: fan-out is the home page's
  /// primary only, quorum 1). `checksummer` tags record CRCs by LSN and
  /// must outlive the coordinator.
  JournalCoordinator(int n_devices, const JournalOptions& options,
                     const ReplicaSet* replicas,
                     const PageChecksummer* checksummer);

  const JournalOptions& options() const { return options_; }

  /// Appends `rec` to every reachable journal of its home page's replica
  /// set and tracks it for apply. A zero `rec.lsn` is assigned the next
  /// LSN; a nonzero one must name a lost record being resubmitted after
  /// recovery (counted separately). `online(device)` gates each fan-out
  /// append. Returns the assigned LSN; the modeled cost is added to
  /// `mutation_ns`.
  uint64_t Submit(MutationRecord rec, const std::function<bool(int)>& online);

  /// Syncs every reachable device journal: their durable tails advance to
  /// the current end, making the covered records crash-proof (and, once a
  /// quorum of a record's home devices synced it, durable). Returns the
  /// number of device fsyncs that advanced a tail.
  uint64_t SyncAll(const std::function<bool(int)>& online);

  /// The background-applier step: applies up to `budget` durable records
  /// (0 = every ready record) in strict LSN order. A record applies only
  /// when (a) it is the next LSN after the applied watermark — journal
  /// replay is prefix-ordered, so visible state is always a prefix of the
  /// mutation stream — and (b) a write quorum of its home journals synced
  /// it. `apply_fn` performs the page/graph-side mutation and runs once
  /// per applied record, inside the caller's single-flight step.
  uint64_t ApplyReady(uint64_t budget,
                      const std::function<void(const MutationRecord&)>& apply_fn);

  /// Deterministic crash: each device journal keeps its synced prefix plus
  /// an injector-chosen prefix of its unsynced tail (the cut point is a
  /// pure function of `crash_seed` and the device). The record at a cut
  /// that landed mid-tail may additionally be torn — its CRC is damaged
  /// and recovery will discard it. Records surviving on no device are
  /// lost; the writer must resubmit them (MissingLsns) after Recover.
  void Crash(uint64_t crash_seed);

  /// Crash-recovery replay: verifies every surviving record's CRC
  /// (discarding torn ones), marks survivors durable (they are on media),
  /// and counts the records above the applied watermark as replayed. The
  /// applied watermark itself is durable state (checkpointed pages) and
  /// survives the crash untouched. Returns the number of replayed records.
  uint64_t Recover();

  /// LSNs in (applied watermark, through_lsn] that no surviving journal
  /// holds — the records a writer must regenerate and resubmit to unblock
  /// the strict-order applier after a crash.
  std::vector<uint64_t> MissingLsns(uint64_t through_lsn) const;

  /// Highest LSN ever assigned (0 = nothing submitted).
  uint64_t last_lsn() const { return next_lsn_; }
  /// Highest LSN applied into the striped pages.
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  /// Records journaled but not yet applied.
  uint64_t pending_records() const {
    return pending_count_.load(std::memory_order_acquire);
  }

  const JournalCounters& counters() const { return counters_; }
  /// Mutable counters, for the page-side applier to charge
  /// applied_page_bytes (the checkpoint write amplification).
  JournalCounters& mutable_counters() { return counters_; }

  /// Write amplification so far: (journal bytes + applied page bytes) /
  /// logical payload bytes. 0 before the first payload byte.
  double WriteAmplification() const;

  /// Verifies `rec`'s CRC against its recomputed sum.
  bool VerifyRecord(const MutationRecord& rec) const;

 private:
  struct Entry {
    MutationRecord rec;
    uint32_t appended_mask = 0;  // devices holding the record
    uint32_t synced_mask = 0;    // devices whose durable tail covers it
    bool torn = false;           // crash-damaged; Recover discards it
  };
  struct DeviceJournal {
    std::vector<uint64_t> lsns;  // append order
    size_t synced_end = 0;       // records [0, synced_end) are durable
  };

  /// Home replica devices of `rec` (primary-only without a replica set).
  void HomeDevices(const MutationRecord& rec, int* devices, int* count) const;
  uint32_t RecordCrc(const MutationRecord& rec) const;
  /// Serialized size charged per journal append (header + payload).
  static uint64_t RecordBytes(const MutationRecord& rec) {
    return 5 * sizeof(uint64_t) + sizeof(uint32_t) + rec.payload.size();
  }

  int n_devices_;
  JournalOptions options_;
  const ReplicaSet* replicas_;  // null = single copy
  const PageChecksummer* checksummer_;
  std::vector<DeviceJournal> journals_;
  /// Journaled-but-unapplied records, keyed by LSN (apply order).
  std::map<uint64_t, Entry> records_;
  uint64_t next_lsn_ = 0;
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> pending_count_{0};
  JournalCounters counters_;
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_JOURNAL_H_
