#include "obs/workspace_metrics.h"

#include <functional>
#include <string>
#include <utility>

#include "common/check.h"

namespace gids::obs {

PullBinding BindWorkspacePoolMetrics(const WorkspacePool& pool,
                                     MetricRegistry* registry,
                                     const Labels& labels) {
  GIDS_CHECK(registry != nullptr);
  const WorkspacePool* p = &pool;
  PullBinding binding(registry, labels);
  auto bind = [&](const std::string& name, Labels entry_labels,
                  MetricType type, std::function<double()> read) {
    registry->RegisterCallback(name, std::move(entry_labels), type,
                               std::move(read));
    binding.Track(name);
  };
  bind("gids_ws_acquires_total", labels, MetricType::kCounter,
       [p] { return static_cast<double>(p->acquires_total()); });
  bind("gids_ws_pool_hits_total", labels, MetricType::kCounter,
       [p] { return static_cast<double>(p->hits_total()); });
  bind("gids_ws_allocs_total", labels, MetricType::kCounter,
       [p] { return static_cast<double>(p->allocs_total()); });
  bind("gids_ws_bytes_outstanding", labels, MetricType::kGauge,
       [p] { return static_cast<double>(p->bytes_outstanding()); });
  bind("gids_ws_thread_caches", labels, MetricType::kGauge,
       [p] { return static_cast<double>(p->live_thread_caches()); });
  for (uint32_t b = 0; b < WorkspacePool::kNumBuckets; ++b) {
    Labels bucket_labels = labels;
    bucket_labels.emplace_back(
        "bucket", std::to_string(WorkspacePool::BucketBytes(b)));
    bind("gids_ws_allocs_total", std::move(bucket_labels),
         MetricType::kCounter,
         [p, b] { return static_cast<double>(p->allocs_total(b)); });
  }
  return binding;
}

}  // namespace gids::obs
