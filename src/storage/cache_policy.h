#ifndef GIDS_STORAGE_CACHE_POLICY_H_
#define GIDS_STORAGE_CACHE_POLICY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "graph/feature_store.h"
#include "graph/types.h"
#include "obs/metric_registry.h"

namespace gids::storage {

/// Which replacement/admission policy drives the software cache and the
/// static hot-node residency. See CACHING.md for the canonical semantics,
/// determinism guarantees, and a selection decision table.
enum class CachePolicyKind : uint8_t {
  /// BaM §3.4: bounded random probing for a Safe-to-Evict victim, no
  /// admission control, no static residency ranking. The historical
  /// SoftwareCache behavior — every default config maps here or below.
  kRandom = 0,
  /// kRandom plus window-buffer future-reuse pinning (GIDS Fig. 6). The
  /// pin bookkeeping itself lives in the host (WindowBuffer +
  /// SoftwareCache USE states); the policy only names the stack.
  kWindow,
  /// kWindow plus a static CPU hot buffer ranked by a structural metric
  /// (weighted reverse PageRank by default, §3.3). The repo's default.
  kPageRankHot,
  /// Ginex-style Belady: evict the resident page whose next registered
  /// use is farthest in the future (absent = infinitely far); refuse to
  /// admit a page used later than every resident candidate. Needs the
  /// window look-ahead feed (IngestFutureAccess) to see the future.
  kGinexBelady,
  /// FGNN-style pre-sampling: a bounded presample pass counts node
  /// access frequencies, the ranking seeds the static buffer AND
  /// per-page admission priorities (evict the coldest probed victim,
  /// refuse admission when the incoming page is colder still), and live
  /// re-ranking tracks drift.
  kPresample,
};

/// Stable lower-case name ("random", "window", "pagerank", "belady",
/// "presample") — the `gids_cli --cache-policy` vocabulary.
const char* CachePolicyKindName(CachePolicyKind kind);

/// Parses CachePolicyKindName() strings. Returns false on unknown names.
bool ParseCachePolicyKind(std::string_view name, CachePolicyKind* out);

/// Snapshot of policy-side decision counters (exported as
/// gids_cache_policy_*; complements CacheStats, which books the host-side
/// lookup/hit/miss/eviction outcomes).
struct CachePolicyStats {
  uint64_t victim_requests = 0;  ///< SelectVictim calls
  uint64_t victims = 0;          ///< calls that returned a victim slot
  uint64_t probe_skips = 0;      ///< probed-but-pinned lines across calls
  uint64_t bypasses = 0;         ///< no evictable candidate within budget
  uint64_t admit_rejects = 0;    ///< admission control refused the insert
  uint64_t rank_ingests = 0;     ///< rank/frequency tables ingested
  uint64_t rerank_rounds = 0;    ///< ingests after the first (live drift)
  uint64_t ranked_nodes = 0;     ///< nodes with a nonzero rank signal
  uint64_t ranked_pages = 0;     ///< pages with a nonzero priority
  uint64_t future_ingests = 0;   ///< look-ahead registrations ingested
};

/// Replacement/admission strategy plugged into SoftwareCache (victim
/// choice) and read by GidsLoader (static-residency ranking). One policy
/// instance serves every shard of one cache — per-shard mutable state
/// lives in ShardState objects the host stores under its shard locks, so
/// SelectVictim needs no internal locking for the common policies and the
/// per-shard decision streams stay bit-identical at any host_threads /
/// cache_shards combination (the host replays canonical per-shard access
/// sequences; see DESIGN.md §7).
///
/// Policies with cache-global state (Belady future maps, presample
/// priority tables) guard it internally; their per-page decisions are
/// functions of per-page state only, so cross-shard interleaving does not
/// perturb results.
class CachePolicy {
 public:
  /// SelectVictim result meaning "do not insert" (no candidate within the
  /// probe budget, or admission control rejected the incoming page).
  static constexpr size_t kNoVictim = static_cast<size_t>(-1);

  /// Opaque per-shard mutable state (e.g. the probing RNG). Created by
  /// MakeShardState, owned by the host, and always accessed under the
  /// host's shard lock.
  class ShardState {
   public:
    virtual ~ShardState() = default;
  };

  /// Host-provided read view of one shard's lines during a victim choice.
  /// `evictable` is true only for Safe-to-Evict lines (empty and USE/
  /// pinned lines are not candidates); `page` is only meaningful for
  /// non-empty slots.
  class ShardLineView {
   public:
    virtual size_t num_lines() const = 0;
    virtual bool evictable(size_t slot) const = 0;
    virtual uint64_t page(size_t slot) const = 0;

   protected:
    ~ShardLineView() = default;
  };

  virtual ~CachePolicy() = default;

  virtual CachePolicyKind kind() const = 0;
  const char* name() const { return CachePolicyKindName(kind()); }

  /// Creates the per-shard state. `shard_seed` is already mixed per shard
  /// by the host (seed + golden-ratio * shard index) so the default
  /// policy's probing stream reproduces the historical per-shard Rng
  /// exactly.
  virtual std::unique_ptr<ShardState> MakeShardState(uint32_t shard_index,
                                                     uint64_t shard_seed,
                                                     uint64_t num_lines);

  /// Picks the eviction victim for `incoming_page` in a full shard, or
  /// kNoVictim to bypass the insertion. Called under the shard lock.
  /// Implementations must add one to `*probe_skips` per probed line that
  /// was not evictable (the host folds the total into
  /// CacheStats::pinned_probe_skips, preserving the historical books).
  virtual size_t SelectVictim(ShardState& state, const ShardLineView& lines,
                              uint64_t incoming_page, int max_probes,
                              uint64_t* probe_skips) = 0;

  /// Access notification (hit or miss), called under the shard lock once
  /// per Lookup/LookupInto/Touch with the coalesced-group multiplicity
  /// `reuses` (PR 5: a coalesced group touches each distinct page once
  /// but drains `reuses` pins). Belady drains its future queue here.
  virtual void OnAccess(uint64_t page, uint32_t reuses, bool hit);

  /// Placement notifications, called under the shard lock.
  virtual void OnInsert(uint64_t page);
  virtual void OnEvict(uint64_t page);

  /// Look-ahead feed: WindowBuffer::Register reports every page of the
  /// upcoming window in registration order (serial, single-flight — see
  /// DESIGN.md §7 — so the sequence is deterministic). Belady builds its
  /// future-use queues from this; other policies ignore it.
  virtual void IngestFutureAccess(uint64_t page);

  /// Frequency feed: per-node access counts (index = NodeId) from a
  /// presample pass or live gather counters. The presample policy derives
  /// its node ranking (count desc, id asc) and per-page priorities
  /// (sum of member-node counts via layout.PagesFor). Repeat calls
  /// re-rank (tables swap atomically; in-flight decisions use the prior
  /// snapshot).
  virtual void IngestNodeFrequencies(std::span<const uint64_t> node_counts,
                                     const graph::FeatureStore& layout);

  /// Structural-rank feed: a hottest-first node order (e.g. weighted
  /// reverse PageRank) pushed by the host for policies whose residency
  /// ranking is computed outside the policy.
  virtual void IngestHotRanking(std::vector<graph::NodeId> hottest_first);

  /// True when the policy carries a node ranking the host should use to
  /// seed the static CPU buffer (instead of recomputing a structural
  /// metric).
  virtual bool ProvidesHotRanking() const;

  /// Copy of the current hottest-first ranking; empty when none.
  virtual std::vector<graph::NodeId> HotNodeRanking() const;

  CachePolicyStats stats() const;

  /// Exports gids_cache_policy_* counters/gauges. Callback (pull) metrics;
  /// freeze with MetricRegistry::UnbindAll before destroying the policy
  /// (GidsLoader's destructor already does).
  void BindMetrics(obs::MetricRegistry* registry,
                   const obs::Labels& labels) const;

 protected:
  /// Decision counters, updated by implementations (relaxed atomics: the
  /// counters are monotonic tallies, never synchronization).
  struct AtomicStats {
    std::atomic<uint64_t> victim_requests{0};
    std::atomic<uint64_t> victims{0};
    std::atomic<uint64_t> probe_skips{0};
    std::atomic<uint64_t> bypasses{0};
    std::atomic<uint64_t> admit_rejects{0};
    std::atomic<uint64_t> rank_ingests{0};
    std::atomic<uint64_t> rerank_rounds{0};
    std::atomic<uint64_t> ranked_nodes{0};
    std::atomic<uint64_t> ranked_pages{0};
    std::atomic<uint64_t> future_ingests{0};
  };
  AtomicStats stats_;
};

/// Random eviction (kRandom / kWindow / kPageRankHot): bounded random
/// probing for a Safe-to-Evict line on a per-shard xoshiro256** stream —
/// bit-identical to the pre-framework SoftwareCache eviction loop. For
/// kPageRankHot the host ingests the structural ranking via
/// IngestHotRanking and reads it back when pinning the CPU buffer; victim
/// selection is unchanged.
class RandomEvictionPolicy : public CachePolicy {
 public:
  explicit RandomEvictionPolicy(CachePolicyKind kind = CachePolicyKind::kRandom);

  CachePolicyKind kind() const override { return kind_; }
  std::unique_ptr<ShardState> MakeShardState(uint32_t shard_index,
                                             uint64_t shard_seed,
                                             uint64_t num_lines) override;
  size_t SelectVictim(ShardState& state, const ShardLineView& lines,
                      uint64_t incoming_page, int max_probes,
                      uint64_t* probe_skips) override;
  void IngestHotRanking(std::vector<graph::NodeId> hottest_first) override;
  bool ProvidesHotRanking() const override;
  std::vector<graph::NodeId> HotNodeRanking() const override;

 private:
  struct RngState final : ShardState {
    Rng rng;
  };
  CachePolicyKind kind_;
  mutable std::mutex rank_mu_;
  std::vector<graph::NodeId> ranking_;
};

/// Ginex-style Belady replacement over the registered look-ahead window:
/// the victim is the Safe-to-Evict line whose next registered use is
/// farthest away (never-registered pages are infinitely far and win;
/// ties break toward the lowest slot, giving a full deterministic order).
/// Admission control refuses pages whose own next use is farther than the
/// best victim's. Scans the whole shard (max_probes is a probing budget
/// and does not apply); probe_skips stays zero — pinned lines are simply
/// not candidates here, which CACHING.md documents.
class GinexBeladyPolicy : public CachePolicy {
 public:
  CachePolicyKind kind() const override {
    return CachePolicyKind::kGinexBelady;
  }
  size_t SelectVictim(ShardState& state, const ShardLineView& lines,
                      uint64_t incoming_page, int max_probes,
                      uint64_t* probe_skips) override;
  void OnAccess(uint64_t page, uint32_t reuses, bool hit) override;
  void IngestFutureAccess(uint64_t page) override;

 private:
  /// Next-use sequence for `page`, or UINT64_MAX when unregistered.
  uint64_t NextUseLocked(uint64_t page) const;

  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  std::unordered_map<uint64_t, std::deque<uint64_t>> future_;
};

/// FGNN-style pre-sampling policy: IngestNodeFrequencies installs a node
/// ranking (count desc, id asc over all nodes — zero-count nodes rank by
/// ascending id so the static-buffer budget always fills) plus per-page
/// priorities (sum of member-node counts). Victim choice probes like the
/// random policy but keeps the lowest-priority evictable candidate seen
/// within the budget (early-exit on priority zero); admission is refused
/// when the incoming page's priority is strictly below the chosen
/// victim's. Re-ingestion swaps the tables atomically for live re-ranking.
class PresamplePolicy : public CachePolicy {
 public:
  CachePolicyKind kind() const override { return CachePolicyKind::kPresample; }
  std::unique_ptr<ShardState> MakeShardState(uint32_t shard_index,
                                             uint64_t shard_seed,
                                             uint64_t num_lines) override;
  size_t SelectVictim(ShardState& state, const ShardLineView& lines,
                      uint64_t incoming_page, int max_probes,
                      uint64_t* probe_skips) override;
  void IngestNodeFrequencies(std::span<const uint64_t> node_counts,
                             const graph::FeatureStore& layout) override;
  bool ProvidesHotRanking() const override;
  std::vector<graph::NodeId> HotNodeRanking() const override;

  /// Priority of `page` under the current table (0 when unranked) —
  /// exposed for tests and the ablation bench.
  uint64_t PagePriority(uint64_t page) const;

 private:
  struct RngState final : ShardState {
    Rng rng;
  };

  mutable std::mutex rank_mu_;
  std::shared_ptr<const std::vector<uint64_t>> page_priority_;
  std::vector<graph::NodeId> ranking_;
};

/// Factory for `gids_cli --cache-policy` / GidsOptions::cache_policy.
std::unique_ptr<CachePolicy> MakeCachePolicy(CachePolicyKind kind);

}  // namespace gids::storage

#endif  // GIDS_STORAGE_CACHE_POLICY_H_
