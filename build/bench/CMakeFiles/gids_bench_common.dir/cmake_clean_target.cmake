file(REMOVE_RECURSE
  "libgids_bench_common.a"
)
