// End-to-end tests of the per-iteration cost ledger (OBSERVABILITY.md
// "Per-iteration cost ledger"): every loader must satisfy the hard
// invariant ledger.Sum() == e2e_ns exactly, on every iteration, across
// the sampler/fault/integrity/coalescing configuration matrix and at any
// host_threads / cache_shards value. Built into concurrency_test so the
// tsan and asan presets exercise the attribution path too.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/gids_loader.h"
#include "loaders/ginex_loader.h"
#include "loaders/mmap_loader.h"
#include "obs/exemplar.h"
#include "obs/ledger.h"
#include "obs/metric_registry.h"
#include "obs/time_series.h"
#include "sampling/ladies_sampler.h"
#include "tests/test_util.h"

namespace gids::core {
namespace {

// Runs `iters` iterations and checks the exact invariant on each, plus
// returns the per-iteration ledgers for cross-config comparisons.
std::vector<obs::IterationLedger> RunAndCheck(loaders::DataLoader& loader,
                                              int iters) {
  std::vector<obs::IterationLedger> ledgers;
  for (int i = 0; i < iters; ++i) {
    auto batch = loader.Next();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch.ok()) break;
    const loaders::IterationStats& st = batch->stats;
    EXPECT_EQ(st.ledger.Sum(), st.e2e_ns)
        << loader.name() << " iteration " << i << ": positive sum "
        << st.ledger.PositiveSum() << ", credit "
        << st.ledger.overlap_credit_ns;
    EXPECT_GE(st.ledger.sampling_ns, 0);
    EXPECT_GE(st.ledger.storage_ns, 0);
    EXPECT_GE(st.ledger.retry_backoff_ns, 0);
    EXPECT_GE(st.ledger.crc_verify_ns, 0);
    EXPECT_GE(st.ledger.degraded_fill_ns, 0);
    ledgers.push_back(st.ledger);
  }
  return ledgers;
}

struct MatrixConfig {
  std::string name;
  GidsOptions opts;
};

std::vector<MatrixConfig> BuildMatrix() {
  std::vector<MatrixConfig> configs;
  {
    GidsOptions o;
    configs.push_back({"gids_default", o});
  }
  {
    GidsOptions o;
    o.use_accumulator = false;
    o.use_window_buffering = false;
    configs.push_back({"gids_no_accumulator", o});
  }
  {
    GidsOptions o = GidsOptions::Bam();
    configs.push_back({"bam", o});
  }
  {
    GidsOptions o;
    o.coalesce_pages = true;
    configs.push_back({"gids_coalesced", o});
  }
  {
    GidsOptions o;
    o.fault_rate = 0.05;
    o.latency_spike_rate = 0.05;
    o.stuck_queue_rate = 0.01;
    configs.push_back({"gids_faults", o});
  }
  {
    GidsOptions o;
    o.verify_reads = true;
    o.verify_cache_hit = true;
    o.corruption_rate = 0.02;
    o.scrub_pages_per_iter = 4;
    configs.push_back({"gids_integrity", o});
  }
  {
    GidsOptions o;
    o.coalesce_pages = true;
    o.fault_rate = 0.05;
    o.verify_reads = true;
    o.corruption_rate = 0.02;
    o.offline_device = 0;
    configs.push_back({"gids_coalesced_faults_integrity", o});
  }
  {
    GidsOptions o = GidsOptions::Bam();
    o.fault_rate = 0.08;
    o.verify_reads = true;
    configs.push_back({"bam_faults_integrity", o});
  }
  return configs;
}

TEST(LedgerInvariantTest, GidsBamConfigurationMatrix) {
  for (const MatrixConfig& cfg : BuildMatrix()) {
    SCOPED_TRACE(cfg.name);
    gids::testing::LoaderRig rig;
    GidsOptions opts = cfg.opts;
    opts.counting_mode = true;
    GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                      rig.system.get(), opts);
    RunAndCheck(loader, 32);
  }
}

TEST(LedgerInvariantTest, MatrixHoldsWithLadiesSampler) {
  // Same configuration sweep under a different sampler: the ledger is
  // attribution over whatever batches arrive, not neighborhood-specific.
  for (const MatrixConfig& cfg : BuildMatrix()) {
    SCOPED_TRACE(cfg.name);
    gids::testing::LoaderRig rig;
    sampling::LadiesSampler ladies(&rig.dataset->graph,
                                   {.layer_sizes = {48, 48}}, 5);
    GidsOptions opts = cfg.opts;
    opts.counting_mode = true;
    GidsLoader loader(rig.dataset.get(), &ladies, rig.seeds.get(),
                      rig.system.get(), opts);
    RunAndCheck(loader, 16);
  }
}

TEST(LedgerInvariantTest, HoldsAtAnyHostThreadsAndCacheShards) {
  // The exact invariant must hold at every (host_threads, cache_shards)
  // setting, and — since the ledger is derived from virtual-time
  // quantities only — runs differing *only* in host parallelism must
  // produce byte-identical ledgers (the determinism contract; different
  // cache_shards values legitimately change eviction order and therefore
  // the attribution itself).
  std::vector<std::vector<obs::IterationLedger>> runs;
  for (auto [threads, shards] : {std::pair<uint32_t, uint32_t>{1, 8},
                                 {4, 8},
                                 {8, 2}}) {
    gids::testing::LoaderRig rig;
    GidsOptions opts;
    opts.counting_mode = true;
    opts.host_threads = threads;
    opts.cache_shards = shards;
    opts.fault_rate = 0.05;
    opts.verify_reads = true;
    opts.corruption_rate = 0.02;
    opts.coalesce_pages = true;
    GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                      rig.system.get(), opts);
    runs.push_back(RunAndCheck(loader, 24));
  }
  // runs[0] (1 thread) vs runs[1] (4 threads): same shards, so identical.
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (size_t i = 0; i < runs[0].size(); ++i) {
    for (int c = 0; c < obs::IterationLedger::kNumComponents; ++c) {
      EXPECT_EQ(runs[0][i].component(c), runs[1][i].component(c))
          << "iteration " << i << " component "
          << obs::IterationLedger::ComponentName(c);
    }
  }
  // runs[2] only has to satisfy the invariant (checked in RunAndCheck).
  EXPECT_EQ(runs[2].size(), runs[0].size());
}

TEST(LedgerInvariantTest, MmapLoaderBalancesExactly) {
  gids::testing::LoaderRig rig;
  loaders::MmapLoaderOptions opts;
  opts.counting_mode = true;
  loaders::MmapLoader loader(rig.dataset.get(), rig.sampler.get(),
                             rig.seeds.get(), rig.system.get(), opts);
  auto ledgers = RunAndCheck(loader, 24);
  // The mmap pipeline fully serializes, so nothing overlaps.
  for (const auto& led : ledgers) EXPECT_EQ(led.overlap_credit_ns, 0);
}

TEST(LedgerInvariantTest, GinexLoaderBalancesExactly) {
  gids::testing::LoaderRig rig;
  loaders::GinexLoaderOptions opts;
  opts.counting_mode = true;
  opts.superbatch_iterations = 8;
  loaders::GinexLoader loader(rig.dataset.get(), rig.sampler.get(),
                              rig.seeds.get(), rig.system.get(), opts);
  auto ledgers = RunAndCheck(loader, 24);
  // Ginex pipelines sampling+changeset against aggregation: the credit is
  // exactly the min of the two, never negative.
  for (const auto& led : ledgers) EXPECT_GE(led.overlap_credit_ns, 0);
}

TEST(LedgerInvariantTest, FaultsBillIntoFaultComponents) {
  gids::testing::LoaderRig rig;
  GidsOptions opts;
  opts.counting_mode = true;
  opts.use_accumulator = false;
  opts.use_window_buffering = false;
  opts.fault_rate = 0.2;
  opts.verify_reads = true;
  opts.corruption_rate = 0.05;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);
  auto ledgers = RunAndCheck(loader, 32);
  TimeNs backoff = 0;
  TimeNs crc = 0;
  for (const auto& led : ledgers) {
    backoff += led.retry_backoff_ns;
    crc += led.crc_verify_ns;
  }
  // With these rates the run must attribute nonzero fault-path time.
  EXPECT_GT(backoff, 0);
  EXPECT_GT(crc, 0);
}

TEST(LedgerSinkTest, TimelineAndExemplarsMatchTheRun) {
  gids::testing::LoaderRig rig;
  obs::TimeSeries timeline(/*window_ns=*/200 * kNsPerUs);
  obs::ExemplarReservoir exemplars(4);
  GidsOptions opts;
  opts.counting_mode = true;
  opts.timeline = &timeline;
  opts.exemplars = &exemplars;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);

  constexpr int kIterations = 40;
  std::vector<TimeNs> e2e;
  for (int i = 0; i < kIterations; ++i) {
    auto batch = loader.Next();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    e2e.push_back(batch->stats.e2e_ns);
  }

  // Every iteration landed in exactly one window; the merged histogram is
  // the run distribution.
  EXPECT_EQ(timeline.total_iterations(),
            static_cast<uint64_t>(kIterations));
  uint64_t in_windows = 0;
  for (const auto& w : timeline.windows()) in_windows += w.iterations;
  EXPECT_EQ(in_windows, static_cast<uint64_t>(kIterations));
  Histogram merged = timeline.MergedHistogram();
  EXPECT_EQ(merged.count(), static_cast<uint64_t>(kIterations));
  TimeNs max_e2e = 0;
  for (TimeNs v : e2e) max_e2e = std::max(max_e2e, v);
  EXPECT_EQ(merged.max(), static_cast<uint64_t>(max_e2e));

  // The exemplars are exactly the slowest iterations of the run.
  auto snap = exemplars.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(exemplars.offered(), static_cast<uint64_t>(kIterations));
  std::vector<TimeNs> sorted = e2e;
  std::sort(sorted.rbegin(), sorted.rend());
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].e2e_ns, sorted[i]) << i;
    EXPECT_EQ(snap[i].ledger.Sum(), snap[i].e2e_ns);
  }
}

TEST(LedgerSinkTest, LedgerMetricsMatchStatsSums) {
  gids::testing::LoaderRig rig;
  obs::MetricRegistry metrics;
  obs::TimeSeries timeline(1 * kNsPerMs);
  GidsOptions opts;
  opts.counting_mode = true;
  opts.metrics = &metrics;
  opts.timeline = &timeline;  // attribution on => ledger series exported
  opts.fault_rate = 0.1;
  opts.verify_reads = true;
  GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);

  obs::IterationLedger total;
  for (int i = 0; i < 24; ++i) {
    auto batch = loader.Next();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    total.Add(batch->stats.ledger);
  }

  for (int c = 0; c < obs::IterationLedger::kNumComponents - 1; ++c) {
    obs::Counter* counter = metrics.GetCounter(
        "gids_ledger_ns_total",
        {{"loader", "GIDS"},
         {"component", obs::IterationLedger::ComponentName(c)}});
    EXPECT_EQ(counter->value(), static_cast<uint64_t>(total.component(c)))
        << obs::IterationLedger::ComponentName(c);
  }
  // The signed credit is exported as a gauge callback.
  bool saw_credit = false;
  for (const auto& m : metrics.Snapshot()) {
    if (m.name == "gids_ledger_overlap_credit_ns_total") {
      saw_credit = true;
      EXPECT_DOUBLE_EQ(m.value,
                       static_cast<double>(total.overlap_credit_ns));
    }
  }
  EXPECT_TRUE(saw_credit);
}

TEST(LedgerSinkTest, SnapshotAfterLoaderDestructionReadsFrozenValues) {
  // The registry-lifetime contract (MetricRegistry::UnbindAll): loader
  // destructors freeze their pull-style series, so snapshots taken after
  // the loader is gone keep working and keep the final values.
  obs::MetricRegistry metrics;
  std::vector<obs::MetricSnapshot> live;
  {
    gids::testing::LoaderRig rig;
    obs::TimeSeries timeline(1 * kNsPerMs);
    GidsOptions opts;
    opts.counting_mode = true;
    opts.metrics = &metrics;
    opts.timeline = &timeline;
    opts.host_threads = 4;  // thread-pool gauges are pull-style too
    GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                      rig.system.get(), opts);
    for (int i = 0; i < 12; ++i) {
      auto batch = loader.Next();
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    }
    live = metrics.Snapshot();
  }
  // Loader (and its cache/pool/storage components) destroyed: snapshots
  // must neither crash nor drift — every pull-style series now reads its
  // frozen destruction-time value. (Pool gauges may differ from the
  // mid-run `live` reading: background prefetch work drains before the
  // freeze. Owned counters must match exactly.)
  std::vector<obs::MetricSnapshot> frozen = metrics.Snapshot();
  std::vector<obs::MetricSnapshot> again = metrics.Snapshot();
  ASSERT_EQ(frozen.size(), live.size());
  ASSERT_EQ(again.size(), frozen.size());
  for (size_t i = 0; i < frozen.size(); ++i) {
    EXPECT_EQ(frozen[i].name, live[i].name);
    if (frozen[i].type != obs::MetricType::kHistogram) {
      EXPECT_DOUBLE_EQ(again[i].value, frozen[i].value) << frozen[i].name;
      if (frozen[i].type == obs::MetricType::kCounter) {
        EXPECT_GE(frozen[i].value, live[i].value) << frozen[i].name;
      }
    }
  }
  EXPECT_FALSE(metrics.ToJson().empty());
  // Mmap and Ginex freeze their series the same way.
  {
    gids::testing::LoaderRig rig;
    loaders::MmapLoaderOptions mopts;
    mopts.counting_mode = true;
    mopts.metrics = &metrics;
    loaders::MmapLoader mmap(rig.dataset.get(), rig.sampler.get(),
                             rig.seeds.get(), rig.system.get(), mopts);
    ASSERT_TRUE(mmap.Next().ok());
    loaders::GinexLoaderOptions gopts;
    gopts.counting_mode = true;
    gopts.superbatch_iterations = 4;
    gopts.metrics = &metrics;
    loaders::GinexLoader ginex(rig.dataset.get(), rig.sampler.get(),
                               rig.seeds.get(), rig.system.get(), gopts);
    ASSERT_TRUE(ginex.Next().ok());
  }
  EXPECT_FALSE(metrics.Snapshot().empty());
}

}  // namespace
}  // namespace gids::core
