#ifndef GIDS_OBS_TRACE_RECORDER_H_
#define GIDS_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace gids::obs {

/// Numeric arguments attached to a trace event (shown in the
/// chrome://tracing slice detail pane).
using TraceArgs = std::vector<std::pair<std::string, double>>;

/// Records pipeline activity in the simulator's *virtual* time (TimeNs) and
/// exports it as Chrome trace_event JSON (load via chrome://tracing or
/// https://ui.perfetto.dev). Dataloaders emit one complete span ("X" phase
/// event) per pipeline stage per iteration on per-stage tracks, plus
/// instant events ("i") for point-in-time occurrences such as accumulator
/// group flushes and cache evictions. Thread-safe; events may be appended
/// out of timestamp order (the viewers sort).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Names the track `tid` ("Sampling", "Storage+PCIe", ...).
  void SetTrackName(int tid, std::string name);

  /// Appends a complete span [start_ns, end_ns) on track `tid`. Spans with
  /// end <= start are dropped (zero-width slices confuse the viewers).
  void AddSpan(std::string name, std::string category, int tid,
               TimeNs start_ns, TimeNs end_ns, TraceArgs args = {});

  /// Appends a thread-scoped instant event at `ts_ns` on track `tid`.
  void AddInstant(std::string name, std::string category, int tid,
                  TimeNs ts_ns, TraceArgs args = {});

  /// Appends a counter event ("C" phase): chrome://tracing renders these
  /// as a stacked area chart of `value` over time.
  void AddCounter(std::string name, TimeNs ts_ns, double value);

  size_t num_events() const;

  /// The complete document: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  /// Timestamps are exported in microseconds as the format requires.
  std::string ToJson() const;

  Status WriteJson(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X' | 'i' | 'C'
    std::string name;
    std::string category;
    int tid = 0;
    TimeNs ts_ns = 0;
    TimeNs dur_ns = 0;  // 'X' only
    TraceArgs args;
  };

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
};

}  // namespace gids::obs

#endif  // GIDS_OBS_TRACE_RECORDER_H_
