#ifndef GIDS_GRAPH_GENERATOR_H_
#define GIDS_GRAPH_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "graph/csc_graph.h"
#include "graph/types.h"

namespace gids::graph {

/// R-MAT (recursive-matrix) random graph parameters. The default
/// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) produces the heavy-tailed
/// degree distribution characteristic of citation/web graphs like the
/// IGB/MAG datasets; this skew is what makes reverse-PageRank hot-node
/// pinning effective (§3.3).
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Probability noise added per recursion level to avoid exact
  /// self-similarity artifacts.
  double noise = 0.05;
};

/// Generates a directed R-MAT graph with `num_nodes` nodes (need not be a
/// power of two; edges are rejected/remapped into range) and `num_edges`
/// edges, returned in CSC form. Self-loops and multi-edges are kept, as in
/// the standard Graph500 generator.
StatusOr<CscGraph> GenerateRmat(NodeId num_nodes, EdgeIdx num_edges,
                                const RmatParams& params, Rng& rng);

/// Generates a uniform (Erdos-Renyi style) directed multigraph.
StatusOr<CscGraph> GenerateUniform(NodeId num_nodes, EdgeIdx num_edges,
                                   Rng& rng);

}  // namespace gids::graph

#endif  // GIDS_GRAPH_GENERATOR_H_
