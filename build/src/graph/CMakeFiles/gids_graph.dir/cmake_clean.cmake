file(REMOVE_RECURSE
  "CMakeFiles/gids_graph.dir/csc_graph.cc.o"
  "CMakeFiles/gids_graph.dir/csc_graph.cc.o.d"
  "CMakeFiles/gids_graph.dir/dataset.cc.o"
  "CMakeFiles/gids_graph.dir/dataset.cc.o.d"
  "CMakeFiles/gids_graph.dir/feature_store.cc.o"
  "CMakeFiles/gids_graph.dir/feature_store.cc.o.d"
  "CMakeFiles/gids_graph.dir/generator.cc.o"
  "CMakeFiles/gids_graph.dir/generator.cc.o.d"
  "CMakeFiles/gids_graph.dir/pagerank.cc.o"
  "CMakeFiles/gids_graph.dir/pagerank.cc.o.d"
  "CMakeFiles/gids_graph.dir/partition.cc.o"
  "CMakeFiles/gids_graph.dir/partition.cc.o.d"
  "CMakeFiles/gids_graph.dir/serialization.cc.o"
  "CMakeFiles/gids_graph.dir/serialization.cc.o.d"
  "libgids_graph.a"
  "libgids_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gids_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
