// Determinism and fault-parity coverage for the page-coalescing gather
// path (DESIGN.md §10). These tests are compiled into the
// `coalescing`-labelled binary (run under asan-ubsan in tools/check.sh)
// AND into the `concurrency`-labelled binary so the tsan preset hammers
// the same surface under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/gids_loader.h"
#include "graph/feature_store.h"
#include "storage/bam_array.h"
#include "storage/fault_injector.h"
#include "storage/feature_gather.h"
#include "storage/software_cache.h"
#include "storage/storage_array.h"
#include "tests/test_util.h"

namespace gids::storage {
namespace {

struct CoalesceRig {
  CoalesceRig(uint32_t dim, graph::NodeId nodes, uint64_t cache_lines,
              uint32_t num_shards, ThreadPool* pool, bool coalesce,
              const FaultOptions* faults = nullptr,
              const RetryPolicy* retry = nullptr)
      : fs(nodes, dim) {
    auto dev = std::make_unique<FunctionBlockDevice>(
        fs.num_pages(), fs.page_bytes(),
        [this](uint64_t lba, std::span<std::byte> out) {
          fs.FillPage(lba, out);
        });
    array = std::make_unique<StorageArray>(std::move(dev),
                                           sim::SsdSpec::IntelOptane(), 1);
    if (faults != nullptr) {
      array->EnableFaultInjection(*faults, *retry);
    }
    cache = std::make_unique<SoftwareCache>(cache_lines * fs.page_bytes(),
                                            fs.page_bytes(), /*seed=*/0xcac4e,
                                            /*store_payloads=*/true,
                                            num_shards);
    bam = std::make_unique<BamArray>(array.get(), cache.get());
    gatherer = std::make_unique<FeatureGatherer>(&fs, bam.get(),
                                                 /*hot_buffer=*/nullptr, pool,
                                                 coalesce);
  }

  graph::FeatureStore fs;
  std::unique_ptr<StorageArray> array;
  std::unique_ptr<SoftwareCache> cache;
  std::unique_ptr<BamArray> bam;
  std::unique_ptr<FeatureGatherer> gatherer;
};

std::vector<graph::NodeId> SkewedNodeList(graph::NodeId num_nodes,
                                          size_t count, uint64_t seed) {
  // Deterministic pseudo-random list with plenty of repeats and
  // page-mates (half the draws come from a 1/16th hot set), so the
  // coalescing path actually folds work.
  std::vector<graph::NodeId> nodes;
  nodes.reserve(count);
  uint64_t x = seed;
  for (size_t i = 0; i < count; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t draw = x >> 33;
    graph::NodeId range = (i % 2 == 0) ? num_nodes : num_nodes / 16 + 1;
    nodes.push_back(static_cast<graph::NodeId>(draw % range));
  }
  return nodes;
}

void ExpectCountsEqual(const FeatureGatherCounts& a,
                       const FeatureGatherCounts& b, int iter) {
  EXPECT_EQ(a.nodes, b.nodes) << "iteration " << iter;
  EXPECT_EQ(a.cpu_buffer_hits, b.cpu_buffer_hits) << "iteration " << iter;
  EXPECT_EQ(a.gpu_cache_hits, b.gpu_cache_hits) << "iteration " << iter;
  EXPECT_EQ(a.storage_reads, b.storage_reads) << "iteration " << iter;
  EXPECT_EQ(a.coalesced_requests, b.coalesced_requests)
      << "iteration " << iter;
  EXPECT_EQ(a.distinct_pages, b.distinct_pages) << "iteration " << iter;
  EXPECT_EQ(a.degraded_nodes, b.degraded_nodes) << "iteration " << iter;
  EXPECT_EQ(a.corrupt_nodes, b.corrupt_nodes) << "iteration " << iter;
}

// The coalescing determinism contract: a pooled coalescing gather over a
// multi-shard cache is byte- and count-identical to the serial coalescing
// gather, across iterations so cache state evolution matches too.
TEST(CoalescingDeterminismTest, ParallelMatchesSerialBitForBit) {
  constexpr uint32_t kDim = 128;
  constexpr graph::NodeId kNodes = 4096;
  ThreadPool pool(8);
  CoalesceRig serial(kDim, kNodes, /*cache_lines=*/64, /*num_shards=*/4,
                     nullptr, /*coalesce=*/true);
  CoalesceRig parallel(kDim, kNodes, /*cache_lines=*/64, /*num_shards=*/4,
                       &pool, /*coalesce=*/true);

  for (int iter = 0; iter < 10; ++iter) {
    auto nodes = SkewedNodeList(kNodes, 600, /*seed=*/2000 + iter);
    FeatureGatherCounts sc, pc;
    auto sout = serial.gatherer->Gather(nodes, &sc);
    auto pout = parallel.gatherer->Gather(nodes, &pc);
    ASSERT_TRUE(sout.ok());
    ASSERT_TRUE(pout.ok());
    ASSERT_EQ(*sout, *pout) << "iteration " << iter;
    ExpectCountsEqual(sc, pc, iter);
    EXPECT_GT(sc.coalesced_requests, 0u) << "skewed batch never coalesced";
    const CacheStats& ss = serial.cache->stats();
    const CacheStats& ps = parallel.cache->stats();
    EXPECT_EQ(ss.hits, ps.hits);
    EXPECT_EQ(ss.misses, ps.misses);
    EXPECT_EQ(ss.insertions, ps.insertions);
    EXPECT_EQ(ss.evictions, ps.evictions);
    EXPECT_EQ(ss.bypasses, ps.bypasses);
    EXPECT_EQ(serial.array->total_reads(), parallel.array->total_reads());
  }
}

// Thread count and shard count sweeps: for every cache geometry, every
// pool size reproduces that geometry's serial result exactly.
TEST(CoalescingDeterminismTest, ThreadAndShardSweepsBitIdentical) {
  constexpr uint32_t kDim = 128;
  constexpr graph::NodeId kNodes = 2048;
  auto run = [&](ThreadPool* pool, uint32_t shards) {
    CoalesceRig rig(kDim, kNodes, /*cache_lines=*/48, shards, pool,
                    /*coalesce=*/true);
    std::vector<std::vector<float>> outs;
    std::vector<FeatureGatherCounts> counts;
    for (int iter = 0; iter < 6; ++iter) {
      auto nodes = SkewedNodeList(kNodes, 400, /*seed=*/7000 + iter);
      FeatureGatherCounts c;
      auto out = rig.gatherer->Gather(nodes, &c);
      GIDS_CHECK_OK(out.status());
      outs.push_back(std::move(*out));
      counts.push_back(c);
    }
    return std::pair<std::vector<std::vector<float>>,
                     std::vector<FeatureGatherCounts>>(std::move(outs),
                                                       std::move(counts));
  };
  for (uint32_t shards : {1u, 4u, 8u}) {
    auto reference = run(nullptr, shards);
    for (uint32_t threads : {1u, 4u, 8u}) {
      ThreadPool pool(threads);
      auto got = run(&pool, shards);
      ASSERT_EQ(got.first, reference.first)
          << "threads=" << threads << " shards=" << shards;
      for (size_t i = 0; i < got.second.size(); ++i) {
        ExpectCountsEqual(got.second[i], reference.second[i],
                          static_cast<int>(i));
      }
    }
  }
}

// Coalescing changes the traffic books, never the bytes — and it drains
// window-buffer reuse pins exactly like the uncoalesced path (one
// coalesced service consumes all member registrations at once).
TEST(CoalescingDeterminismTest, MatchesUncoalescedPayloadAndPinDrain) {
  constexpr uint32_t kDim = 128;  // 8 nodes per page: node n -> page n/8
  constexpr graph::NodeId kNodes = 512;
  CoalesceRig on(kDim, kNodes, /*cache_lines=*/128, /*num_shards=*/1,
                 nullptr, /*coalesce=*/true);
  CoalesceRig off(kDim, kNodes, /*cache_lines=*/128, /*num_shards=*/1,
                  nullptr, /*coalesce=*/false);

  for (int round = 0; round < 5; ++round) {
    auto nodes = SkewedNodeList(kNodes, 200, /*seed=*/31 + round);
    // Register the window's future-reuse pins the way the loader does:
    // one registration per page-access.
    for (graph::NodeId n : nodes) {
      on.cache->AddFutureReuse(n / 8, 1);
      off.cache->AddFutureReuse(n / 8, 1);
    }
    FeatureGatherCounts oc, fc;
    auto oout = on.gatherer->Gather(nodes, &oc);
    auto fout = off.gatherer->Gather(nodes, &fc);
    ASSERT_TRUE(oout.ok());
    ASSERT_TRUE(fout.ok());
    ASSERT_EQ(*oout, *fout) << "round " << round;
    // Same demand, fewer serviced round-trips.
    EXPECT_EQ(oc.total_page_requests(), fc.total_page_requests());
    EXPECT_LT(oc.serviced_page_requests(), fc.serviced_page_requests());
    EXPECT_EQ(oc.distinct_pages, oc.serviced_page_requests());
    // Every registration consumed on both sides: no leaked pins.
    for (graph::NodeId n : nodes) {
      EXPECT_EQ(on.cache->FutureReuseCount(n / 8), 0u) << "round " << round;
      EXPECT_EQ(off.cache->FutureReuseCount(n / 8), 0u) << "round " << round;
    }
    EXPECT_EQ(on.cache->pinned_lines(), off.cache->pinned_lines());
  }
}

// A page that dead-letters degrades every row that shares it — the exact
// set the uncoalesced gather flags — and the counts agree serial vs
// parallel too.
TEST(CoalescingFaultTest, DegradedPageFansOutToAllSharingRows) {
  constexpr uint32_t kDim = 128;  // 8 nodes per page
  RetryPolicy rp;
  rp.max_retries = 1;
  FaultOptions fo;
  fo.fault_rate = 1.0;  // every attempt fails: all storage pages degrade
  // Rows 0,1,2,4 share page 0; row 3 is alone on page 1.
  std::vector<graph::NodeId> nodes = {0, 1, 2, 9, 1};

  CoalesceRig on(kDim, 512, 16, /*num_shards=*/1, nullptr, true, &fo, &rp);
  CoalesceRig off(kDim, 512, 16, /*num_shards=*/1, nullptr, false, &fo, &rp);
  ThreadPool pool(4);
  CoalesceRig par(kDim, 512, 16, /*num_shards=*/4, &pool, true, &fo, &rp);

  FeatureGatherCounts oc, fc, pc;
  auto oout = on.gatherer->Gather(nodes, &oc);
  auto fout = off.gatherer->Gather(nodes, &fc);
  auto pout = par.gatherer->Gather(nodes, &pc);
  ASSERT_TRUE(oout.ok());
  ASSERT_TRUE(fout.ok());
  ASSERT_TRUE(pout.ok());
  // Every row is degraded in all three configurations.
  EXPECT_EQ(oc.degraded_nodes, nodes.size());
  EXPECT_EQ(fc.degraded_nodes, nodes.size());
  EXPECT_EQ(pc.degraded_nodes, nodes.size());
  EXPECT_EQ(oc.storage_reads, 0u);
  // The coalesced gather attempted each shared page once; the uncoalesced
  // gather re-attempted per row (nothing is cached on failure).
  EXPECT_EQ(on.array->dead_letters_total(), 2u);
  EXPECT_EQ(off.array->dead_letters_total(), nodes.size());
  EXPECT_EQ(par.array->dead_letters_total(), 2u);
  // Zero-fill contract holds for every row.
  for (float v : *oout) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(*oout, *fout);
  EXPECT_EQ(*oout, *pout);
}

// At a moderate fault rate the degraded set is a pure function of
// (seed, page, attempt), so coalesced fan-out must flag exactly the rows
// the uncoalesced gather's duplicate re-reads flag.
TEST(CoalescingFaultTest, ModerateFaultRateParityWithUncoalesced) {
  constexpr uint32_t kDim = 1024;  // node i occupies exactly page i
  RetryPolicy rp;
  rp.max_retries = 1;
  FaultOptions fo;
  fo.fault_rate = 0.4;
  CoalesceRig on(kDim, 64, 16, /*num_shards=*/1, nullptr, true, &fo, &rp);
  CoalesceRig off(kDim, 64, 16, /*num_shards=*/1, nullptr, false, &fo, &rp);

  for (int round = 0; round < 4; ++round) {
    auto nodes = SkewedNodeList(64, 120, /*seed=*/500 + round);
    FeatureGatherCounts oc, fc;
    auto oout = on.gatherer->Gather(nodes, &oc);
    auto fout = off.gatherer->Gather(nodes, &fc);
    ASSERT_TRUE(oout.ok());
    ASSERT_TRUE(fout.ok());
    ASSERT_EQ(*oout, *fout) << "round " << round;
    EXPECT_EQ(oc.degraded_nodes, fc.degraded_nodes) << "round " << round;
    EXPECT_EQ(oc.corrupt_nodes, fc.corrupt_nodes) << "round " << round;
    EXPECT_EQ(oc.total_page_requests(), fc.total_page_requests())
        << "round " << round;
  }
}

// Grouped (accumulator-merged) coalescing gathers keep per-slice
// attribution deterministic under the pool.
TEST(CoalescingDeterminismTest, GatherGroupParallelMatchesSerial) {
  constexpr uint32_t kDim = 128;
  constexpr graph::NodeId kNodes = 2048;
  ThreadPool pool(8);
  CoalesceRig serial(kDim, kNodes, 48, /*num_shards=*/4, nullptr, true);
  CoalesceRig parallel(kDim, kNodes, 48, /*num_shards=*/4, &pool, true);

  auto run = [&](CoalesceRig& rig) {
    std::vector<std::vector<graph::NodeId>> lists;
    for (int s = 0; s < 3; ++s) {
      lists.push_back(SkewedNodeList(kNodes, 150, /*seed=*/9000 + s));
    }
    std::vector<std::vector<float>> outs(lists.size());
    std::vector<GatherSlice> slices;
    for (size_t s = 0; s < lists.size(); ++s) {
      outs[s].resize(lists[s].size() * kDim);
      slices.push_back({lists[s], std::span<float>(outs[s])});
    }
    std::vector<FeatureGatherCounts> per_slice(slices.size());
    GIDS_CHECK_OK(rig.gatherer->GatherGroup(slices, per_slice));
    return std::pair<std::vector<std::vector<float>>,
                     std::vector<FeatureGatherCounts>>(std::move(outs),
                                                       std::move(per_slice));
  };
  auto s = run(serial);
  auto p = run(parallel);
  ASSERT_EQ(s.first, p.first);
  for (size_t i = 0; i < s.second.size(); ++i) {
    ExpectCountsEqual(s.second[i], p.second[i], static_cast<int>(i));
  }
  // Cross-slice folding happened: slices repeat the hot set.
  EXPECT_GT(s.second[1].coalesced_requests + s.second[2].coalesced_requests,
            0u);
}

// --- End-to-end through the loader. -----------------------------------

std::vector<loaders::LoaderBatch> RunLoader(bool coalesce,
                                            uint32_t host_threads,
                                            int num_iterations) {
  gids::testing::LoaderRig rig;
  core::GidsOptions opts;
  opts.coalesce_pages = coalesce;
  opts.host_threads = host_threads;
  core::GidsLoader loader(rig.dataset.get(), rig.sampler.get(),
                          rig.seeds.get(), rig.system.get(), opts);
  std::vector<loaders::LoaderBatch> out;
  for (int i = 0; i < num_iterations; ++i) {
    auto lb = loader.Next();
    GIDS_CHECK(lb.ok());
    out.push_back(std::move(*lb));
  }
  return out;
}

// host_threads must not change anything the loader delivers when
// coalescing is on (batches, features, stats — including the new
// coalesced/distinct counters).
TEST(CoalescingLoaderTest, HostThreadsDoNotChangeResults) {
  auto serial = RunLoader(/*coalesce=*/true, /*host_threads=*/1, 12);
  for (uint32_t threads : {4u, 8u}) {
    auto threaded = RunLoader(/*coalesce=*/true, threads, 12);
    ASSERT_EQ(serial.size(), threaded.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].features, threaded[i].features)
          << "iteration " << i << " threads " << threads;
      EXPECT_EQ(serial[i].batch.seeds, threaded[i].batch.seeds)
          << "iteration " << i;
      ExpectCountsEqual(serial[i].stats.gather, threaded[i].stats.gather,
                        static_cast<int>(i));
      EXPECT_EQ(serial[i].stats.e2e_ns, threaded[i].stats.e2e_ns)
          << "iteration " << i;
    }
  }
}

// Coalescing changes the traffic accounting, never the delivered tensors:
// the same run with the flag off yields byte-identical features and the
// same page-granular demand.
TEST(CoalescingLoaderTest, FeaturesMatchUncoalescedRun) {
  auto off = RunLoader(/*coalesce=*/false, /*host_threads=*/1, 12);
  auto on = RunLoader(/*coalesce=*/true, /*host_threads=*/1, 12);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].batch.seeds, on[i].batch.seeds) << "iteration " << i;
    EXPECT_EQ(off[i].features, on[i].features) << "iteration " << i;
    EXPECT_EQ(off[i].stats.gather.coalesced_requests, 0u);
    EXPECT_LE(on[i].stats.gather.serviced_page_requests(),
              off[i].stats.gather.serviced_page_requests())
        << "iteration " << i;
  }
}

}  // namespace
}  // namespace gids::storage
