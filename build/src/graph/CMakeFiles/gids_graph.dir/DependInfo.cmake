
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csc_graph.cc" "src/graph/CMakeFiles/gids_graph.dir/csc_graph.cc.o" "gcc" "src/graph/CMakeFiles/gids_graph.dir/csc_graph.cc.o.d"
  "/root/repo/src/graph/dataset.cc" "src/graph/CMakeFiles/gids_graph.dir/dataset.cc.o" "gcc" "src/graph/CMakeFiles/gids_graph.dir/dataset.cc.o.d"
  "/root/repo/src/graph/feature_store.cc" "src/graph/CMakeFiles/gids_graph.dir/feature_store.cc.o" "gcc" "src/graph/CMakeFiles/gids_graph.dir/feature_store.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/graph/CMakeFiles/gids_graph.dir/generator.cc.o" "gcc" "src/graph/CMakeFiles/gids_graph.dir/generator.cc.o.d"
  "/root/repo/src/graph/pagerank.cc" "src/graph/CMakeFiles/gids_graph.dir/pagerank.cc.o" "gcc" "src/graph/CMakeFiles/gids_graph.dir/pagerank.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/gids_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/gids_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/serialization.cc" "src/graph/CMakeFiles/gids_graph.dir/serialization.cc.o" "gcc" "src/graph/CMakeFiles/gids_graph.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
