# Empty compiler generated dependencies file for gids_storage.
# This may be replaced when dependencies are built.
