#ifndef GIDS_STORAGE_FEATURE_GATHER_H_
#define GIDS_STORAGE_FEATURE_GATHER_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/workspace_pool.h"
#include "graph/feature_store.h"
#include "graph/types.h"
#include "storage/bam_array.h"

namespace gids::storage {

/// Interface for a host-pinned hot-node feature buffer (implemented by
/// core::ConstantCpuBuffer). Gathers check it before touching the cache or
/// storage: hot nodes are served from CPU memory over PCIe (§3.3).
/// Implementations must be safe for concurrent Contains/Fill calls.
class HotNodeBuffer {
 public:
  virtual ~HotNodeBuffer() = default;
  virtual bool Contains(graph::NodeId node) const = 0;
  /// Copies the node's feature vector into `out` (size >= feature_dim).
  virtual void Fill(graph::NodeId node, std::span<float> out) const = 0;
};

/// Traffic counts for one feature gather, keyed by service path. These are
/// the functional inputs to sim::ComputeAggregationTiming; one "request"
/// is one storage-page-sized access (so nodes with page-spanning features
/// count more than once, matching the paper's I/O accounting).
struct FeatureGatherCounts {
  uint64_t nodes = 0;
  uint64_t cpu_buffer_hits = 0;  // page-equivalents served from CPU buffer
  uint64_t gpu_cache_hits = 0;
  uint64_t storage_reads = 0;
  /// Page requests folded into another request for the same page by the
  /// coalescing gather (§2's GPU-side access coalescing): they reached the
  /// cache/storage path but were satisfied by a sibling's round-trip, so
  /// they appear in total_page_requests() (demand the accumulator merged)
  /// but not in serviced_page_requests() (traffic the devices saw).
  /// Members of a dead-lettered group charge nothing here — a failed
  /// access appears in no traffic counter, with coalescing on or off.
  /// Always 0 with coalescing off.
  uint64_t coalesced_requests = 0;
  /// Distinct pages serviced by the coalescing gather — the number of
  /// successfully serviced coalesced groups, equal to the cache/storage
  /// round-trips actually made (gpu_cache_hits + storage_reads on the
  /// coalescing path; dead-lettered groups count nowhere). 0 with
  /// coalescing off (the grouping is never computed).
  uint64_t distinct_pages = 0;
  /// Nodes served incompletely because a storage read exhausted its
  /// retries (FAULTS.md): the failed page slice of the row is zero-filled
  /// and the node is counted here exactly once. 0 unless fault injection
  /// is enabled and a read was dead-lettered.
  uint64_t degraded_nodes = 0;
  /// Nodes served incompletely because a page never verified clean within
  /// its retry budget (Status::DataLoss, INTEGRITY.md): unrepairable
  /// silent corruption. Zero-filled and counted exactly once per node,
  /// disjoint from degraded_nodes' loud-failure accounting.
  uint64_t corrupt_nodes = 0;

  /// Page-granular demand: every access the mini-batch generated,
  /// including ones coalesced away. This is what the accumulator's
  /// storage-share EMA divides by (Eq. 2) — coalescing lowers the share,
  /// which raises the merge threshold, exactly the feedback the paper's
  /// design wants (fewer SSD reads per merged batch => merge more).
  uint64_t total_page_requests() const {
    return cpu_buffer_hits + gpu_cache_hits + storage_reads +
           coalesced_requests;
  }
  /// Page requests that cost a real round-trip (CPU buffer, cache, or
  /// SSD). This is what bounds in-flight storage traffic
  /// (outstanding_accesses) and what the devices bill for.
  uint64_t serviced_page_requests() const {
    return cpu_buffer_hits + gpu_cache_hits + storage_reads;
  }
  void Add(const FeatureGatherCounts& o) {
    nodes += o.nodes;
    cpu_buffer_hits += o.cpu_buffer_hits;
    gpu_cache_hits += o.gpu_cache_hits;
    storage_reads += o.storage_reads;
    coalesced_requests += o.coalesced_requests;
    distinct_pages += o.distinct_pages;
    degraded_nodes += o.degraded_nodes;
    corrupt_nodes += o.corrupt_nodes;
  }
};

/// One node list and its destination rows within a grouped gather. An
/// empty `out` selects counting mode (no payload movement); all slices of
/// one GatherGroup call must agree on the mode.
struct GatherSlice {
  std::span<const graph::NodeId> nodes;
  std::span<float> out;
};

/// Gathers node feature vectors through the BaM path: constant CPU buffer
/// (optional) -> GPU software cache -> SSD array. Output rows are float32
/// feature vectors in the order of `nodes`.
///
/// With a ThreadPool the gather runs as a shard-keyed two-phase pipeline
/// that is bit-identical to the serial gather for any thread count:
///   Phase 1 (parallel over node chunks): validate ids, serve hot nodes
///     from the CPU buffer, and bucket every page access by the cache
///     shard that owns it, preserving global node order within each
///     bucket (chunks are contiguous and concatenated in index order).
///   Phase 2 (parallel over shards): replay each shard's access sequence
///     in order against the cache/storage path with a per-shard page
///     scratch buffer, then reduce the per-shard counts.
/// Because every cache shard still sees exactly the access sequence the
/// serial gather would have produced, hits, evictions, and pin drains are
/// independent of the thread count. One gather may run at a time; callers
/// (GidsLoader) serialize gathers and parallelize within them.
///
/// Page coalescing (DESIGN.md §10): with `coalesce_pages` on, phase 2
/// groups each shard's replayed access sequence by page (first-occurrence
/// order) and services every distinct page with exactly one cache/storage
/// round-trip, scattering the payload to all requesting output rows.
/// Duplicate nodes in a mini-batch, rows whose features share a page, and
/// repeats across accumulator-merged iterations (GatherGroup) all collapse
/// into one SSD read — the paper's premise that concurrent same-page
/// requests coalesce in the BaM I/O stack (§2). The coalesced service
/// drains all member window-buffer pins at once (BamArray's `reuses`), so
/// end-of-gather cache state matches the uncoalesced books. Grouping is a
/// pure function of the canonical per-shard sequence, so results stay
/// bit-identical at any thread count.
///
/// Degraded mode (FAULTS.md): a storage read that exhausted its retries
/// (Status::Unavailable from the fault-injected array) does not fail the
/// gather. The failed page's slice of each affected output row is
/// zero-filled, the node is counted once in counts->degraded_nodes, and
/// the gather completes. Unrepairable silent corruption (Status::DataLoss
/// from a verifying array, INTEGRITY.md) degrades the same way but is
/// counted separately in counts->corrupt_nodes. Hard device errors
/// (kIoError) still abort. Under coalescing a failed page degrades every
/// row that shares it — the same set an uncoalesced gather flags, because
/// fault outcomes are a pure function of (seed, page, attempt) and nothing
/// is cached on failure, so duplicate uncoalesced re-reads replay the
/// identical outcome.
class FeatureGatherer {
 public:
  /// `hot_buffer` may be null (plain BaM gather). `pool` may be null
  /// (serial gather; also the fallback for single-shard caches).
  /// `coalesce_pages` enables the page-coalescing phase 2 (default off:
  /// every access round-trips individually, the pre-coalescing behaviour).
  FeatureGatherer(const graph::FeatureStore* layout, BamArray* array,
                  const HotNodeBuffer* hot_buffer = nullptr,
                  ThreadPool* pool = nullptr, bool coalesce_pages = false);

  const graph::FeatureStore& layout() const { return *layout_; }

  bool coalesce_pages() const { return coalesce_pages_; }
  /// Not thread-safe against a running gather; flip between gathers only.
  void set_coalesce_pages(bool on) { coalesce_pages_ = on; }

  /// Gathers features for `nodes` into `out` (size >= nodes.size() * dim).
  Status Gather(std::span<const graph::NodeId> nodes, std::span<float> out,
                FeatureGatherCounts* counts);

  /// Convenience: gather into a freshly allocated buffer.
  StatusOr<std::vector<float>> Gather(std::span<const graph::NodeId> nodes,
                                      FeatureGatherCounts* counts);

  /// Counting-mode gather: identical cache/CPU-buffer/storage decisions
  /// and counts, no payload movement. Used where only the traffic counts
  /// feed the timing models (terabyte-scale benchmark runs).
  Status GatherCountsOnly(std::span<const graph::NodeId> nodes,
                          FeatureGatherCounts* counts);

  /// Gathers several node lists as one coalescing scope: the accumulator's
  /// merged iterations present their batches together so repeats *across*
  /// iterations also collapse to one round-trip per distinct page. Slices
  /// are processed in order (slice-major node order), so with coalescing
  /// off this is bit-identical to calling Gather once per slice. All
  /// slices must share one mode (every `out` sized >= nodes * dim, or
  /// every `out` empty for counting).
  ///
  /// `per_slice_counts` (size == slices.size()) receives each slice's
  /// share, added in: a serviced round-trip is charged to the slice of the
  /// group's first requester, later members charge coalesced_requests to
  /// their own slice, and degraded/corrupt rows are counted in their own
  /// slice. Summing the entries yields the group totals.
  Status GatherGroup(std::span<const GatherSlice> slices,
                     std::span<FeatureGatherCounts> per_slice_counts);

 private:
  /// Shared two-phase implementation; empty `out` spans select counting
  /// mode (validated by the public entry points).
  Status GatherImpl(std::span<const GatherSlice> slices,
                    std::span<FeatureGatherCounts> per_slice_counts);

  /// Bucket that owns `page` in phase 2: the cache shard, or a fixed
  /// power-of-two hash bucket when the array is cache-less (the storage
  /// path is commutative, so cache-less bucketing is unconstrained).
  uint32_t BucketFor(uint64_t page) const;

  /// One page access on behalf of one output row (bucket precomputed in
  /// phase 1 so the scatter into per-bucket sequences is a flat copy).
  struct Access {
    uint64_t page;
    uint64_t node;   // index into the slice's `nodes`
    uint32_t slice;  // index into `slices`
    uint32_t bucket;
  };
  /// (slice, node) identifies one output row across the group.
  using RowId = std::pair<uint32_t, uint64_t>;

  struct ChunkScratch {
    Workspace<Access> accesses;      // this chunk's accesses, node order
    Workspace<uint64_t> cpu_hits;    // per slice
    Workspace<uint64_t> per_bucket;  // access count per bucket
    bool bad_node = false;
  };
  struct BucketScratch {
    Workspace<std::byte> page_buf;
    // Coalescing-group scratch: distinct pages in first-occurrence order
    // and their members via counting sort (seq order within each group).
    PooledFlatMap<uint64_t, uint32_t> group_of;  // page -> group id
    Workspace<uint64_t> group_pages;
    Workspace<uint64_t> group_counts;
    Workspace<uint64_t> group_cursor;
    Workspace<uint64_t> members;  // indices into the bucket's seq span
    // Fault paths are rare; plain vectors (empty in the steady state the
    // zero-allocation gate measures).
    std::vector<RowId> degraded;
    std::vector<RowId> corrupt;
  };

  const graph::FeatureStore* layout_;
  BamArray* array_;
  const HotNodeBuffer* hot_buffer_;
  ThreadPool* pool_;
  bool coalesce_pages_ = false;
  uint32_t cacheless_buckets_ = 1;  // power of two

  // Reusable gather scratch, pool-backed so steady-state gathers allocate
  // nothing. gather_mu_ serializes GatherImpl: the loader already runs one
  // gather at a time (class contract above), and the mutex keeps stray
  // concurrent callers correct instead of racing on the scratch.
  std::mutex gather_mu_;
  Workspace<uint64_t> slice_begin_;
  std::vector<ChunkScratch> chunks_;
  Workspace<Access> seq_;          // per-bucket contiguous, node order
  Workspace<uint64_t> bucket_begin_;  // buckets + 1 offsets into seq_
  Workspace<GatherCounts> bucket_gc_;      // buckets x num_slices
  Workspace<uint64_t> bucket_coalesced_;   // buckets x num_slices
  Workspace<uint64_t> bucket_distinct_;    // buckets x num_slices
  std::vector<Status> bucket_status_;
  std::vector<BucketScratch> bucket_scratch_;
  std::vector<RowId> merged_rows_;  // count_union scratch (fault paths)
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_FEATURE_GATHER_H_
