#ifndef GIDS_SERVING_REQUEST_QUEUE_H_
#define GIDS_SERVING_REQUEST_QUEUE_H_

#include <cstdint>

#include "common/check.h"

namespace gids::serving {

/// Admission control for the serving tier: a bounded count of in-system
/// requests (admitted but not yet completed — queued, batching, or
/// executing). An arrival finding the system full is shed immediately and
/// deterministically: shedding is a pure function of the virtual-time
/// arrival/completion interleaving, never of wall-clock races, so the
/// same traffic trace sheds the same request ids on every run.
///
/// Not thread-safe: the server's event loop is single-threaded (worker
/// threads only parallelize inside a batch execution).
class RequestQueue {
 public:
  explicit RequestQueue(uint32_t max_depth) : max_depth_(max_depth) {
    GIDS_CHECK_MSG(max_depth_ > 0,
                   "RequestQueue requires max_depth > 0 "
                   "(a zero-depth queue would shed every request)");
  }

  /// Admission decision for one arrival: true and a slot is taken, or
  /// false and the request is counted shed.
  bool TryAdmit() {
    ++offered_;
    if (depth_ >= max_depth_) {
      ++shed_;
      return false;
    }
    ++depth_;
    ++admitted_;
    if (depth_ > max_depth_seen_) max_depth_seen_ = depth_;
    return true;
  }

  /// Returns one admitted request's slot at completion time.
  void Release() {
    GIDS_CHECK(depth_ > 0);
    --depth_;
  }

  uint32_t depth() const { return depth_; }
  uint32_t max_depth() const { return max_depth_; }
  uint32_t max_depth_seen() const { return max_depth_seen_; }
  uint64_t offered() const { return offered_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t shed() const { return shed_; }

 private:
  uint32_t max_depth_;
  uint32_t depth_ = 0;
  uint32_t max_depth_seen_ = 0;
  uint64_t offered_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace gids::serving

#endif  // GIDS_SERVING_REQUEST_QUEUE_H_
