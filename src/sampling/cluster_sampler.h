#ifndef GIDS_SAMPLING_CLUSTER_SAMPLER_H_
#define GIDS_SAMPLING_CLUSTER_SAMPLER_H_

#include <vector>

#include "common/random.h"
#include "graph/csc_graph.h"
#include "graph/partition.h"
#include "sampling/sampler.h"

namespace gids::sampling {

/// Cluster-GCN-style subgraph sampling (Chiang et al., KDD'19; discussed
/// in §4.7). The graph is pre-partitioned into clusters; each mini-batch
/// is the subgraph induced by a random selection of `clusters_per_batch`
/// clusters, and every GNN layer runs over the same induced subgraph.
///
/// The paper skips evaluating this family because METIS partitioning is
/// impractical at IGB scale; this implementation pairs it with the O(V+E)
/// BFS partitioner (graph/partition.h) as the extension experiment.
///
/// Sample() ignores its `seeds` argument (Cluster-GCN batches are chosen
/// by cluster, not by seed list); the induced subgraph's nodes become the
/// batch's seeds.
struct ClusterSamplerOptions {
  uint32_t clusters_per_batch = 1;
  /// Number of GNN layers; each layer gets an identical induced-subgraph
  /// block.
  int num_layers = 3;
};

class ClusterGcnSampler : public Sampler {
 public:
  ClusterGcnSampler(const graph::CscGraph* graph,
                    graph::PartitionResult partition,
                    ClusterSamplerOptions options, uint64_t seed = 0xc1057e2);

  std::string_view name() const override { return "Cluster-GCN"; }
  int num_layers() const override { return options_.num_layers; }

  void SampleAtInto(std::span<const graph::NodeId> seeds, uint64_t iteration,
                    MiniBatch* out) override;

  const graph::PartitionResult& partition() const { return partition_; }

 private:
  const graph::CscGraph* graph_;
  graph::PartitionResult partition_;
  ClusterSamplerOptions options_;
  uint64_t seed_;
};

}  // namespace gids::sampling

#endif  // GIDS_SAMPLING_CLUSTER_SAMPLER_H_
