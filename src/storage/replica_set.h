#ifndef GIDS_STORAGE_REPLICA_SET_H_
#define GIDS_STORAGE_REPLICA_SET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/check.h"

namespace gids::storage {

/// Knobs of the N-way replica set (FAULTS.md "Durability & failover").
/// The default factor of 1 disables replication entirely: placement,
/// routing, and every read/write decision are then byte-for-byte the
/// single-copy behaviour.
struct ReplicaOptions {
  /// Copies of every page. Replica r of page p lives on striped device
  /// (p + r) mod n_ssd, so replica groups rotate across the array and a
  /// single device loss degrades every group by exactly one copy.
  /// Requires replication_factor <= n_ssd (and <= kMaxReplicas).
  int replication_factor = 1;
  /// Journal syncs required before a mutation counts as durable and may
  /// be applied. 0 picks the majority, floor(replication_factor / 2) + 1.
  /// Lowering it trades durability for write availability under device
  /// loss (a 2-way set with majority quorum stalls writes when either
  /// copy is offline, exactly like a real RF=2 deployment).
  int write_quorum = 0;

  bool enabled() const { return replication_factor > 1; }

  int EffectiveQuorum() const {
    if (write_quorum > 0) return write_quorum;
    return replication_factor / 2 + 1;
  }
};

/// Placement and freshness view of the replica set. Placement is pure
/// arithmetic (no state); the freshness side tracks, per device, the
/// highest journal LSN whose apply reached that device, and per page the
/// LSN of its latest applied mutation. A replica is *fresh* for a page
/// when its applied watermark covers the page's latest mutation — devices
/// that were offline during an apply step lag behind and are skipped by
/// read routing until they catch up (they never do in the current model:
/// offline is permanent for the run).
///
/// Concurrency: NoteApplied runs only inside the single-flight group
/// preparation (the journal applier); IsFresh runs concurrently from the
/// gather threads. A shared mutex keeps the phases race-free without
/// serializing readers against each other.
class ReplicaSet {
 public:
  static constexpr int kMaxReplicas = 8;

  ReplicaSet(int n_devices, const ReplicaOptions& options)
      : n_devices_(n_devices), options_(options) {
    GIDS_CHECK(n_devices_ > 0);
    GIDS_CHECK(options_.replication_factor >= 1);
    GIDS_CHECK(options_.replication_factor <= kMaxReplicas);
    GIDS_CHECK(options_.replication_factor <= n_devices_);
    GIDS_CHECK(options_.EffectiveQuorum() <= options_.replication_factor);
    applied_lsn_ = std::make_unique<std::atomic<uint64_t>[]>(n_devices_);
  }

  int factor() const { return options_.replication_factor; }
  int quorum() const { return options_.EffectiveQuorum(); }
  const ReplicaOptions& options() const { return options_; }

  /// Striped device holding replica `r` of `page` (r = 0 is the primary).
  int Device(uint64_t page, int r) const {
    return static_cast<int>((page + static_cast<uint64_t>(r)) %
                            static_cast<uint64_t>(n_devices_));
  }

  /// Records that the apply of journal record `lsn` (which mutated `page`)
  /// reached device `device`. Called once per online home device by the
  /// applier, in LSN order, inside the single-flight apply step.
  void NoteApplied(uint64_t page, uint64_t lsn, int device) {
    std::lock_guard<std::mutex> lock(page_mu_);
    uint64_t& latest = page_lsn_[page];
    if (lsn > latest) latest = lsn;
    std::atomic<uint64_t>& w = applied_lsn_[device];
    if (lsn > w.load(std::memory_order_relaxed)) {
      w.store(lsn, std::memory_order_release);
    }
  }

  /// True when `device`'s applied watermark covers `page`'s latest applied
  /// mutation (a never-mutated page is fresh everywhere).
  bool IsFresh(uint64_t page, int device) const {
    uint64_t latest;
    {
      std::lock_guard<std::mutex> lock(page_mu_);
      auto it = page_lsn_.find(page);
      if (it == page_lsn_.end()) return true;
      latest = it->second;
    }
    return applied_lsn_[device].load(std::memory_order_acquire) >= latest;
  }

  /// Device `device`'s applied-LSN watermark (0 = nothing applied).
  uint64_t AppliedLsn(int device) const {
    return applied_lsn_[device].load(std::memory_order_acquire);
  }

  /// Freshness/topology-aware read routing: the striped device attempt
  /// `attempt` of a read of `page` should target. Preference order is
  /// healthy-and-fresh replicas in topology order (primary first);
  /// successive attempts cycle through them, so a transient fault on one
  /// copy retries on the next instead of hammering the same device. When
  /// no replica is healthy and fresh the attempt cycles the remaining
  /// (doomed) copies and `quorum_lost`, if given, is set — the read will
  /// dead-letter, which is the only case replication still zero-fills.
  /// `healthy(device)` must be a pure function of configuration and the
  /// virtual clock, never of call order, to keep routing deterministic.
  int RouteAttempt(uint64_t page, uint32_t attempt,
                   const std::function<bool(int)>& healthy, int* replica_out,
                   bool* quorum_lost = nullptr) const;

 private:
  int n_devices_;
  ReplicaOptions options_;
  /// Per-device applied watermark. Atomic so routing can read it while the
  /// applier (single-flight) advances it.
  std::unique_ptr<std::atomic<uint64_t>[]> applied_lsn_;
  /// Latest applied LSN per mutated page. Small (only touched pages) and
  /// guarded: gather threads query it concurrently while the applier owns
  /// the only write phase.
  mutable std::mutex page_mu_;
  std::unordered_map<uint64_t, uint64_t> page_lsn_;
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_REPLICA_SET_H_
