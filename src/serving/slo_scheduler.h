#ifndef GIDS_SERVING_SLO_SCHEDULER_H_
#define GIDS_SERVING_SLO_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "obs/ledger.h"
#include "obs/time_series.h"
#include "serving/request.h"

namespace gids::serving {

/// Orders formed batches for execution by per-request deadline, informed
/// by rolling service-time quantiles read from a PR-6 `obs::TimeSeries`.
///
/// Policy: feasibility-aware earliest-deadline-first. A batch is feasible
/// when its earliest member deadline can still be met if service starts
/// now and takes the rolling p50 service estimate; infeasible batches
/// (already doomed at the median) are deprioritized behind every feasible
/// one, so a hopeless straggler cannot drag fresh requests past their own
/// deadlines — the goodput-maximizing refinement of plain EDF. Within
/// each class the order is (earliest deadline, close time, batch id), a
/// total order, so scheduling is deterministic.
///
/// The scheduler owns the service-time timeline: the server records one
/// sample per executed batch (`RecordService`), and the rolling p50/p99
/// come from the merged histogram — the exact rolling-quantile machinery
/// the offline timeline report uses.
class SloScheduler {
 public:
  explicit SloScheduler(TimeNs service_window_ns);

  void Enqueue(FormedBatch batch);

  bool empty() const { return backlog_.empty(); }
  size_t backlog() const { return backlog_.size(); }
  size_t max_backlog() const { return max_backlog_; }

  /// Pops the next batch to execute at virtual time `now` under the
  /// feasibility-aware EDF order. Backlog must be non-empty.
  FormedBatch PopNext(TimeNs now);

  /// Folds one executed batch's service time into the rolling estimate
  /// (`end_ns` = completion; completions across lanes may be recorded in
  /// any order — the TimeSeries folds them into their owning windows).
  void RecordService(TimeNs completion_ns, TimeNs service_ns);

  /// Rolling service-time quantiles over every recorded batch; 0 before
  /// the first completion (every batch is then feasible — cold-start
  /// optimism, resolved after one service sample).
  TimeNs EstimateP50() const;
  TimeNs EstimateP99() const;

  const obs::TimeSeries& service_timeline() const { return service_; }

 private:
  static TimeNs EarliestDeadline(const FormedBatch& b);

  std::vector<FormedBatch> backlog_;
  size_t max_backlog_ = 0;
  obs::TimeSeries service_;
};

}  // namespace gids::serving

#endif  // GIDS_SERVING_SLO_SCHEDULER_H_
