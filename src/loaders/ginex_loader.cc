#include "loaders/ginex_loader.h"

#include <algorithm>

#include "common/check.h"

namespace gids::loaders {

GinexLoader::GinexLoader(const graph::Dataset* dataset,
                         sampling::Sampler* sampler,
                         sampling::SeedIterator* seeds,
                         const sim::SystemModel* system,
                         GinexLoaderOptions options)
    : dataset_(dataset),
      sampler_(sampler),
      seeds_(seeds),
      system_(system),
      options_(options) {
  GIDS_CHECK(dataset_ != nullptr);
  GIDS_CHECK(sampler_ != nullptr);
  GIDS_CHECK(seeds_ != nullptr);
  GIDS_CHECK(system_ != nullptr);
  GIDS_CHECK(options_.superbatch_iterations > 0);

  uint64_t cpu_bytes = system_->config().scaled_cpu_memory_bytes();
  uint64_t structure = dataset_->structure_bytes();
  uint64_t page_bytes = dataset_->features.page_bytes();
  uint64_t cache_bytes =
      cpu_bytes > structure ? cpu_bytes - structure : page_bytes;
  cache_ = std::make_unique<BeladyCache>(
      std::max<uint64_t>(1, cache_bytes / page_bytes));

  if (options_.metrics != nullptr || options_.trace != nullptr ||
      options_.timeline != nullptr || options_.exemplars != nullptr) {
    observer_ = std::make_unique<LoaderObserver>(
        options_.metrics, options_.trace, std::string(name()),
        options_.timeline, options_.exemplars);
    if (options_.metrics != nullptr) {
      superbatches_total_ = options_.metrics->GetCounter(
          "gids_ginex_superbatches_total", observer_->labels());
      options_.metrics->RegisterCallback(
          "gids_belady_cache_resident_pages", observer_->labels(),
          obs::MetricType::kGauge,
          [this] { return static_cast<double>(cache_->resident_pages()); });
    }
  }
}

GinexLoader::~GinexLoader() {
  if (options_.metrics != nullptr && observer_ != nullptr) {
    options_.metrics->UnbindAll(observer_->labels());
  }
}

void GinexLoader::Recycle(LoaderBatch&& batch) {
  constexpr size_t kMaxBanked = 256;
  batch.batch.Reset();
  batch.features.clear();
  if (batch_free_.size() < kMaxBanked) {
    batch_free_.push_back(std::move(batch.batch));
  }
  if (features_free_.size() < kMaxBanked) {
    features_free_.push_back(std::move(batch.features));
  }
}

void GinexLoader::PrepareSuperbatch() {
  const graph::FeatureStore& fs = dataset_->features;
  const uint32_t n = options_.superbatch_iterations;

  std::vector<LoaderBatch> batches(n);
  for (uint32_t i = 0; i < n && !batch_free_.empty(); ++i) {
    batches[i].batch = std::move(batch_free_.back());
    batch_free_.pop_back();
  }
  if (!options_.counting_mode) {
    for (uint32_t i = 0; i < n && !features_free_.empty(); ++i) {
      batches[i].features = std::move(features_free_.back());
      features_free_.pop_back();
    }
  }
  std::vector<std::vector<uint64_t>>& traces = traces_;
  if (traces.size() != n) traces.resize(n);
  for (auto& t : traces) t.clear();
  for (uint32_t i = 0; i < n; ++i) {
    seeds_->NextBatchInto(seed_scratch_);
    sampler_->SampleInto(seed_scratch_, &batches[i].batch);
    IterationStats& st = batches[i].stats;
    st.sampled_edges = batches[i].batch.total_edges();
    st.input_nodes = batches[i].batch.num_input_nodes();
    st.sampling_ns = system_->cpu().SamplingTime(
        st.sampled_edges, dataset_->graph.structure_bytes());
    for (graph::NodeId v : batches[i].batch.input_nodes()) {
      auto range = fs.PagesFor(v);
      for (uint64_t page = range.first; page <= range.last; ++page) {
        traces[i].push_back(page);
      }
    }
  }

  BeladyCache::SuperbatchResult cache_result =
      cache_->ProcessSuperbatch(traces);

  for (uint32_t i = 0; i < n; ++i) {
    LoaderBatch& lb = batches[i];
    IterationStats& st = lb.stats;
    uint64_t hits = cache_result.hits_per_iteration[i];
    uint64_t misses = cache_result.misses_per_iteration[i];
    st.gather.nodes = st.input_nodes;
    st.gather.cpu_buffer_hits = hits;  // served from the Belady CPU cache
    st.gather.storage_reads = misses;

    // Aggregation: async storage reads for misses, DRAM copies for hits.
    const sim::CpuModel& cpu = system_->cpu();
    TimeNs read_ns = cpu.AsyncReadTime(misses, fs.page_bytes(),
                                       system_->config().ssd,
                                       options_.async_queue_depth);
    TimeNs copy_ns = SecToNs(static_cast<double>(hits * fs.page_bytes()) /
                             cpu.spec().dram_gather_bps);
    st.aggregation_ns = read_ns + copy_ns;

    // Changeset (Belady order) precomputation runs on the CPU alongside
    // sampling; both are pipelined against aggregation.
    TimeNs changeset_ns = static_cast<TimeNs>(traces[i].size()) *
                          options_.changeset_ns_per_access;
    uint64_t batch_bytes = st.input_nodes * fs.feature_bytes_per_node();
    st.transfer_ns = system_->pcie().TransferTime(batch_bytes);
    st.training_ns = system_->gpu().TrainTime(st.input_nodes);
    st.e2e_ns = std::max(st.sampling_ns + changeset_ns, st.aggregation_ns) +
                st.transfer_ns + st.training_ns;
    if (st.aggregation_ns > 0) {
      st.effective_bandwidth_bps =
          static_cast<double>(batch_bytes) / NsToSec(st.aggregation_ns);
    }

    // Cost ledger: changeset precomputation bills as sampling-side CPU
    // work; the overlap credit is exactly the pipelined min(sampling +
    // changeset, aggregation) that the max() above hid.
    obs::IterationLedger& led = st.ledger;
    led.sampling_ns = st.sampling_ns + changeset_ns;
    led.cpu_buffer_ns = copy_ns;
    led.storage_ns = read_ns;
    led.transfer_ns = st.transfer_ns;
    led.training_ns = st.training_ns;
    led.overlap_credit_ns = led.PositiveSum() - st.e2e_ns;

    if (!options_.counting_mode) {
      lb.features.resize(st.input_nodes * fs.feature_dim());
      const auto& nodes = lb.batch.input_nodes();
      for (size_t j = 0; j < nodes.size(); ++j) {
        fs.FillFeature(nodes[j], std::span<float>(
                                     lb.features.data() + j * fs.feature_dim(),
                                     fs.feature_dim()));
      }
    }
    ready_.push_back(std::move(lb));
  }

  if (superbatches_total_ != nullptr) superbatches_total_->Inc();
  if (observer_ != nullptr) {
    uint64_t pages = 0;
    for (const auto& trace : traces) pages += trace.size();
    observer_->Instant("superbatch_prepared",
                       {{"iterations", static_cast<double>(n)},
                        {"page_accesses", static_cast<double>(pages)}});
  }
}

StatusOr<LoaderBatch> GinexLoader::Next() {
  if (dataset_->spec.kind == graph::GraphKind::kHeterogeneous) {
    return Status::Unimplemented(
        "Ginex supports only homogeneous graphs (paper §4.1)");
  }
  if (sampler_->name() != "neighborhood") {
    return Status::Unimplemented(
        "Ginex supports only neighborhood sampling (paper §4.1)");
  }
  if (ready_.empty()) PrepareSuperbatch();
  LoaderBatch out = std::move(ready_.front());
  ready_.pop_front();
  elapsed_ns_ += out.stats.e2e_ns;
  ++iterations_;
  if (observer_ != nullptr) observer_->RecordIteration(out.stats);
  return out;
}

}  // namespace gids::loaders
