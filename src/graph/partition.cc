#include "graph/partition.h"

#include <deque>
#include <numeric>

namespace gids::graph {
namespace {

uint64_t CountCutEdges(const CscGraph& graph,
                       const std::vector<uint32_t>& part_of) {
  uint64_t cut = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (NodeId u : graph.in_neighbors(v)) {
      if (part_of[u] != part_of[v]) ++cut;
    }
  }
  return cut;
}

PartitionResult Finish(const CscGraph& graph, uint32_t num_parts,
                       std::vector<uint32_t> part_of) {
  PartitionResult result;
  result.num_parts = num_parts;
  result.members.resize(num_parts);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    result.members[part_of[v]].push_back(v);
  }
  result.cut_edges = CountCutEdges(graph, part_of);
  result.part_of = std::move(part_of);
  return result;
}

}  // namespace

StatusOr<PartitionResult> BfsPartition(const CscGraph& graph,
                                       uint32_t num_parts, Rng& rng) {
  if (num_parts == 0) return Status::InvalidArgument("num_parts must be > 0");
  const NodeId n = graph.num_nodes();
  if (num_parts > n) {
    return Status::InvalidArgument("more parts than nodes");
  }
  constexpr uint32_t kUnassigned = static_cast<uint32_t>(-1);
  std::vector<uint32_t> part_of(n, kUnassigned);
  // Visit order for picking fresh BFS seeds, shuffled for determinism in
  // the rng rather than node-id bias.
  std::vector<NodeId> seed_order(n);
  std::iota(seed_order.begin(), seed_order.end(), 0u);
  Shuffle(seed_order, rng);

  uint64_t target = (static_cast<uint64_t>(n) + num_parts - 1) / num_parts;
  size_t seed_cursor = 0;
  std::deque<NodeId> frontier;
  uint32_t part = 0;
  uint64_t filled = 0;

  auto next_unassigned = [&]() -> NodeId {
    while (seed_cursor < seed_order.size()) {
      NodeId v = seed_order[seed_cursor];
      if (part_of[v] == kUnassigned) return v;
      ++seed_cursor;
    }
    return kInvalidNode;
  };

  for (NodeId assigned = 0; assigned < n;) {
    if (frontier.empty() || filled >= target) {
      if (filled >= target && part + 1 < num_parts) {
        ++part;
        filled = 0;
        frontier.clear();
      }
      NodeId seed = next_unassigned();
      if (seed == kInvalidNode) break;
      frontier.push_back(seed);
      if (part_of[seed] == kUnassigned) {
        part_of[seed] = part;
        ++assigned;
        ++filled;
      }
    }
    NodeId v = frontier.front();
    frontier.pop_front();
    for (NodeId u : graph.in_neighbors(v)) {
      if (part_of[u] != kUnassigned) continue;
      if (filled >= target && part + 1 < num_parts) break;
      part_of[u] = part;
      ++assigned;
      ++filled;
      frontier.push_back(u);
    }
  }
  // Any stragglers (isolated nodes after the last part filled).
  for (NodeId v = 0; v < n; ++v) {
    if (part_of[v] == kUnassigned) {
      part_of[v] = static_cast<uint32_t>(rng.UniformInt(num_parts));
    }
  }
  return Finish(graph, num_parts, std::move(part_of));
}

StatusOr<PartitionResult> RandomPartition(const CscGraph& graph,
                                          uint32_t num_parts, Rng& rng) {
  if (num_parts == 0) return Status::InvalidArgument("num_parts must be > 0");
  if (num_parts > graph.num_nodes()) {
    return Status::InvalidArgument("more parts than nodes");
  }
  std::vector<uint32_t> part_of(graph.num_nodes());
  for (auto& p : part_of) {
    p = static_cast<uint32_t>(rng.UniformInt(num_parts));
  }
  return Finish(graph, num_parts, std::move(part_of));
}

}  // namespace gids::graph
