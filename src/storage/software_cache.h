#ifndef GIDS_STORAGE_SOFTWARE_CACHE_H_
#define GIDS_STORAGE_SOFTWARE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "obs/metric_registry.h"

namespace gids::storage {

/// Per-line state of the BaM application-defined software cache (§3.4).
/// "USE" lines hold feature vectors with a positive future-reuse counter
/// (window buffering) and are skipped by eviction; "Safe to Evict" lines
/// are fair game for the random eviction policy.
enum class LineState : uint8_t {
  kEmpty = 0,
  kSafeToEvict = 1,
  kUse = 2,
};

struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t pinned_probe_skips = 0;  // eviction probe landed on a USE line
  uint64_t bypasses = 0;            // no evictable line found; not cached

  double HitRatio() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// BaM's application-defined GPU software cache with a customizable
/// eviction policy — the substrate the GIDS window-buffering technique
/// plugs into.
///
/// The cache is fully associative over fixed-size lines (4 KiB storage
/// pages by default). The default eviction policy is BaM's random
/// eviction: a bounded number of random probes looks for a line in the
/// "Safe to Evict" state; if all probes land on pinned (USE) lines the
/// insertion is bypassed (the paper's cache-line contention case, §3.4).
///
/// Window buffering drives the USE/Safe-to-Evict transitions through
/// AddFutureReuse (look-ahead registration, Fig. 6 steps 3-5) and the
/// consume-on-access decrement inside Lookup (Fig. 6's counter drain).
///
/// Line payloads are stored so gathers served from the cache are
/// byte-checkable against the backing device.
class SoftwareCache {
 public:
  /// `store_payloads` = false builds a metadata-only cache (same hits,
  /// misses, eviction and pinning behaviour, no line payload memory); used
  /// by the counting-mode gather path that drives the large-scale timing
  /// benchmarks. Payload accessors (Lookup/Insert) require payload mode;
  /// Touch/InsertMeta work in both.
  SoftwareCache(uint64_t capacity_bytes, uint32_t line_bytes,
                uint64_t seed = 0xcac4e, bool store_payloads = true);

  uint64_t capacity_lines() const { return lines_.size(); }
  uint32_t line_bytes() const { return line_bytes_; }
  uint64_t resident_lines() const { return index_.size(); }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  /// Exposes the cache through `registry` (pull-style: every CacheStats
  /// field plus resident/pinned-line gauges is read at snapshot time, so
  /// the hot paths keep driving only the local struct). `labels` tags the
  /// series, e.g. {{"loader", "GIDS"}}. The registry must outlive the
  /// cache's last snapshot.
  void BindMetrics(obs::MetricRegistry* registry,
                   const obs::Labels& labels) const;

  /// Looks up `page`. On a hit, returns the cached payload and (if the
  /// line has a positive future-reuse counter) consumes one reuse: when
  /// the counter drains to zero the line transitions back to Safe to
  /// Evict. Returns nullptr on miss.
  const std::byte* Lookup(uint64_t page);

  /// True if `page` is resident (no stats or reuse-counter side effects).
  bool Contains(uint64_t page) const { return index_.count(page) > 0; }

  /// Metadata-mode lookup: identical hit/miss/reuse semantics to Lookup
  /// but returns only whether the page was resident.
  bool Touch(uint64_t page);

  /// Metadata-mode insert: identical placement/eviction semantics to
  /// Insert without a payload. Returns true if resident after the call.
  bool InsertMeta(uint64_t page);

  bool store_payloads() const { return store_payloads_; }

  /// Inserts `page` with the given payload (size == line_bytes). If the
  /// cache is full, random probing evicts a Safe-to-Evict victim; after
  /// `max_probes` pinned probes the insertion is bypassed. Inserting a
  /// resident page refreshes its payload.
  /// Returns true if the page is resident after the call.
  bool Insert(uint64_t page, std::span<const std::byte> payload);

  /// Window buffering: registers `count` future reuses of `page`. Applies
  /// to the resident line immediately, or is remembered and applied if the
  /// page is inserted while reuses remain outstanding.
  void AddFutureReuse(uint64_t page, uint32_t count);

  /// Clears all future-reuse counters (dropping all pins).
  void ClearFutureReuse();

  /// Number of lines currently pinned in the USE state.
  uint64_t pinned_lines() const;

  /// Current future-reuse counter for a page (0 if none).
  uint32_t FutureReuseCount(uint64_t page) const;

  int max_probes() const { return max_probes_; }
  void set_max_probes(int p) { max_probes_ = p; }

 private:
  struct Line {
    uint64_t page = 0;
    LineState state = LineState::kEmpty;
  };

  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Decrements `page`'s future-reuse counter (if any); unpins the line at
  /// `slot` when the counter drains. Pass kNoSlot for non-resident pages.
  void ConsumeReuse(uint64_t page, size_t slot);
  /// Shared placement logic; returns the slot or kNoSlot on bypass.
  size_t AcquireSlot(uint64_t page);

  bool store_payloads_;
  uint32_t line_bytes_;
  int max_probes_ = 32;
  std::vector<Line> lines_;
  std::vector<std::byte> data_;                      // slot payloads
  std::unordered_map<uint64_t, size_t> index_;       // page -> slot
  std::unordered_map<uint64_t, uint32_t> future_reuse_;  // page -> count
  std::vector<size_t> free_slots_;
  CacheStats stats_;
  Rng rng_;
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_SOFTWARE_CACHE_H_
