#include "gnn/sage_conv.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/loss.h"

namespace gids::gnn {
namespace {

sampling::Block TwoDstBlock() {
  // src_nodes = {10, 11, 20, 21}; dst = {10, 11};
  // edges: 20->10, 21->10, 20->11.
  sampling::Block b;
  b.src_nodes = {10, 11, 20, 21};
  b.num_dst = 2;
  b.edge_src = {2, 3, 2};
  b.edge_dst = {0, 0, 1};
  return b;
}

TEST(SageConvTest, ForwardShape) {
  Rng rng(1);
  SageConv conv(4, 3, /*apply_relu=*/false, rng);
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::Xavier(4, 4, rng);
  Tensor out = conv.Forward(block, h);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(SageConvTest, MeanAggregationIsExact) {
  // With W_self = 0, W_neigh = I, bias = 0, the output equals the mean of
  // sampled neighbor features.
  Rng rng(2);
  SageConv conv(2, 2, /*apply_relu=*/false, rng);
  for (Tensor* p : conv.Params()) p->Fill(0.0f);
  Tensor* w_neigh = conv.Params()[1];
  (*w_neigh)(0, 0) = 1.0f;
  (*w_neigh)(1, 1) = 1.0f;

  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::FromData(
      4, 2, std::vector<float>{0, 0, 0, 0, 2, 4, 6, 8});
  Tensor out = conv.Forward(block, h);
  // dst 0 aggregates srcs {2,4} and {6,8} -> mean {4,6}.
  EXPECT_FLOAT_EQ(out(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 6.0f);
  // dst 1 aggregates only {2,4}.
  EXPECT_FLOAT_EQ(out(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 4.0f);
}

TEST(SageConvTest, SelfTermIsExact) {
  Rng rng(3);
  SageConv conv(2, 2, /*apply_relu=*/false, rng);
  for (Tensor* p : conv.Params()) p->Fill(0.0f);
  Tensor* w_self = conv.Params()[0];
  (*w_self)(0, 0) = 2.0f;
  (*w_self)(1, 1) = 2.0f;
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::FromData(4, 2,
                              std::vector<float>{1, 2, 3, 4, 0, 0, 0, 0});
  Tensor out = conv.Forward(block, h);
  EXPECT_FLOAT_EQ(out(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(out(1, 1), 8.0f);
}

TEST(SageConvTest, ZeroDegreeDstGetsOnlySelfPlusBias) {
  Rng rng(4);
  SageConv conv(2, 2, /*apply_relu=*/false, rng);
  for (Tensor* p : conv.Params()) p->Fill(0.0f);
  Tensor* bias = conv.Params()[2];
  (*bias)(0, 0) = 0.5f;
  sampling::Block b;
  b.src_nodes = {1};
  b.num_dst = 1;
  Tensor h = Tensor::FromData(1, 2, std::vector<float>{9, 9});
  Tensor out = conv.Forward(b, h);
  EXPECT_FLOAT_EQ(out(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(out(0, 1), 0.0f);
}

// Numerical gradient check: perturb each parameter and input, compare the
// analytic gradient against central differences under a quadratic loss.
TEST(SageConvTest, GradientsMatchNumericalDifferences) {
  Rng rng(5);
  const size_t in_dim = 3;
  const size_t out_dim = 2;
  SageConv conv(in_dim, out_dim, /*apply_relu=*/true, rng);
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::Xavier(4, in_dim, rng);

  auto loss_fn = [&]() {
    Tensor out = conv.Forward(block, h);
    double loss = 0;
    for (size_t i = 0; i < out.size(); ++i) {
      loss += 0.5 * out.data()[i] * out.data()[i];
    }
    return loss;
  };

  // Analytic gradients: dL/dout = out.
  conv.ZeroGrad();
  Tensor out = conv.Forward(block, h);
  Tensor d_src = conv.Backward(block, out);

  const double eps = 1e-3;
  // Check a handful of entries in every parameter tensor.
  auto params = conv.Params();
  auto grads = conv.Grads();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor* p = params[pi];
    for (size_t idx = 0; idx < p->size(); idx += std::max<size_t>(1, p->size() / 5)) {
      float original = p->data()[idx];
      p->data()[idx] = original + eps;
      double plus = loss_fn();
      p->data()[idx] = original - eps;
      double minus = loss_fn();
      p->data()[idx] = original;
      double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(grads[pi]->data()[idx], numeric, 5e-2 + 0.05 * std::abs(numeric))
          << "param " << pi << " index " << idx;
    }
  }
  // Check input gradients.
  for (size_t idx = 0; idx < h.size(); idx += 2) {
    float original = h.data()[idx];
    h.data()[idx] = original + eps;
    double plus = loss_fn();
    h.data()[idx] = original - eps;
    double minus = loss_fn();
    h.data()[idx] = original;
    double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(d_src.data()[idx], numeric, 5e-2 + 0.05 * std::abs(numeric))
        << "input index " << idx;
  }
}

TEST(SageConvTest, ZeroGradClears) {
  Rng rng(6);
  SageConv conv(2, 2, false, rng);
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::Xavier(4, 2, rng);
  Tensor out = conv.Forward(block, h);
  conv.Backward(block, out);
  bool any_nonzero = false;
  for (Tensor* g : conv.Grads()) {
    any_nonzero |= g->L2NormSquared() > 0;
  }
  EXPECT_TRUE(any_nonzero);
  conv.ZeroGrad();
  for (Tensor* g : conv.Grads()) EXPECT_DOUBLE_EQ(g->L2NormSquared(), 0.0);
}

}  // namespace
}  // namespace gids::gnn
