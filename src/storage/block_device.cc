#include "storage/block_device.h"

#include <cstring>
#include <utility>

#include "common/check.h"

namespace gids::storage {

InMemoryBlockDevice::InMemoryBlockDevice(uint64_t num_blocks,
                                         uint32_t block_bytes)
    : num_blocks_(num_blocks), block_bytes_(block_bytes) {
  GIDS_CHECK(block_bytes > 0);
  data_.resize(num_blocks * block_bytes);
}

Status InMemoryBlockDevice::ReadBlock(uint64_t lba,
                                      std::span<std::byte> out) const {
  if (lba >= num_blocks_) return Status::OutOfRange("lba beyond device");
  if (out.size() != block_bytes_) {
    return Status::InvalidArgument("output size must equal block size");
  }
  std::memcpy(out.data(), data_.data() + lba * block_bytes_, block_bytes_);
  return Status::OK();
}

Status InMemoryBlockDevice::WriteBlock(uint64_t lba,
                                       std::span<const std::byte> data) {
  if (lba >= num_blocks_) return Status::OutOfRange("lba beyond device");
  if (data.size() != block_bytes_) {
    return Status::InvalidArgument("input size must equal block size");
  }
  std::memcpy(data_.data() + lba * block_bytes_, data.data(), block_bytes_);
  return Status::OK();
}

FunctionBlockDevice::FunctionBlockDevice(uint64_t num_blocks,
                                         uint32_t block_bytes, FillFn fill)
    : num_blocks_(num_blocks),
      block_bytes_(block_bytes),
      fill_(std::move(fill)) {
  GIDS_CHECK(block_bytes > 0);
  GIDS_CHECK(fill_ != nullptr);
}

Status FunctionBlockDevice::ReadBlock(uint64_t lba,
                                      std::span<std::byte> out) const {
  if (lba >= num_blocks_) return Status::OutOfRange("lba beyond device");
  if (out.size() != block_bytes_) {
    return Status::InvalidArgument("output size must equal block size");
  }
  fill_(lba, out);
  return Status::OK();
}

}  // namespace gids::storage
