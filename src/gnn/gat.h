#ifndef GIDS_GNN_GAT_H_
#define GIDS_GNN_GAT_H_

#include <vector>

#include "common/random.h"
#include "gnn/model.h"
#include "sampling/minibatch.h"

namespace gids::gnn {

/// One single-head Graph Attention convolution (Velickovic et al., cited
/// as [35] in the paper) over a sampled block with implicit self-loops:
///
///   z_v      = W h_v
///   e_{u,v}  = LeakyReLU(a_src . z_u + a_dst . z_v)
///   alpha    = softmax_u over {u in N(v)} ∪ {v} of e_{u,v}
///   h'_v     = act( sum_u alpha_{u,v} z_u + b )
///
/// Full backward pass through the attention softmax. Completes the trio
/// of architectures (SAGE / GCN / GAT) the paper's frameworks provide,
/// all running on the same GIDS-gathered features.
class GatConv {
 public:
  GatConv(size_t in_dim, size_t out_dim, bool apply_relu, Rng& rng,
          float leaky_slope = 0.2f);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  Tensor Forward(const sampling::Block& block, const Tensor& h_src);
  Tensor Backward(const sampling::Block& block, const Tensor& d_out);

  void ZeroGrad();
  /// {W, a_src, a_dst, b}.
  std::vector<Tensor*> Params();
  std::vector<Tensor*> Grads();

 private:
  /// Per-destination edge lists (self loop first), built in Forward.
  struct DstEdges {
    std::vector<uint32_t> src;    // local src indices (self first)
    std::vector<float> pre;      // pre-LeakyReLU attention logits
    std::vector<float> alpha;    // softmax weights
  };

  size_t in_dim_;
  size_t out_dim_;
  bool apply_relu_;
  float leaky_slope_;

  Tensor weight_;   // in_dim x out_dim
  Tensor att_src_;  // 1 x out_dim
  Tensor att_dst_;  // 1 x out_dim
  Tensor bias_;     // 1 x out_dim

  Tensor g_weight_;
  Tensor g_att_src_;
  Tensor g_att_dst_;
  Tensor g_bias_;

  // Forward caches.
  Tensor cached_h_;    // n_src x in_dim (input)
  Tensor cached_z_;    // n_src x out_dim (projected)
  Tensor cached_out_;  // num_dst x out_dim (post-activation)
  std::vector<DstEdges> cached_edges_;
};

/// Stacked GAT classifier mirroring GraphSageModel's structure.
struct GatConfig {
  size_t in_dim = 0;
  size_t hidden_dim = 128;
  size_t num_classes = 16;
  int num_layers = 3;
};

class GatModel : public Model {
 public:
  GatModel(const GatConfig& config, Rng& rng);

  Tensor Forward(const sampling::MiniBatch& batch,
                 const Tensor& input_features) override;
  double TrainStep(const sampling::MiniBatch& batch,
                   const Tensor& input_features,
                   std::span<const uint32_t> labels,
                   Optimizer& optimizer) override;
  std::vector<Tensor*> Params() override;
  std::vector<Tensor*> Grads() override;
  void ZeroGrad() override;

 private:
  GatConfig config_;
  std::vector<GatConv> layers_;
};

}  // namespace gids::gnn

#endif  // GIDS_GNN_GAT_H_
