#ifndef GIDS_GRAPH_PARTITION_H_
#define GIDS_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graph/csc_graph.h"
#include "graph/types.h"

namespace gids::graph {

/// Result of partitioning a graph into roughly equal-size, locality-aware
/// parts.
struct PartitionResult {
  uint32_t num_parts = 0;
  std::vector<uint32_t> part_of;              // node -> part id
  std::vector<std::vector<NodeId>> members;   // part id -> nodes
  uint64_t cut_edges = 0;                     // edges crossing parts

  double CutFraction(const CscGraph& graph) const {
    return graph.num_edges() == 0
               ? 0.0
               : static_cast<double>(cut_edges) /
                     static_cast<double>(graph.num_edges());
  }
};

/// Greedy BFS partitioner: grows each part by breadth-first expansion from
/// random unassigned seeds until it reaches the target size. A lightweight
/// stand-in for METIS (§4.7 notes METIS takes days on IGB-scale graphs;
/// this runs in O(V + E)) that still produces locality: BFS-grown parts
/// have far fewer cut edges than random assignment, which is what
/// subgraph-based samplers like Cluster-GCN rely on.
StatusOr<PartitionResult> BfsPartition(const CscGraph& graph,
                                       uint32_t num_parts, Rng& rng);

/// Control baseline: uniformly random assignment.
StatusOr<PartitionResult> RandomPartition(const CscGraph& graph,
                                          uint32_t num_parts, Rng& rng);

}  // namespace gids::graph

#endif  // GIDS_GRAPH_PARTITION_H_
