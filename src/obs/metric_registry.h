#ifndef GIDS_OBS_METRIC_REGISTRY_H_
#define GIDS_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace gids::obs {

/// (key, value) pairs distinguishing instances of one metric name, e.g.
/// {{"loader", "GIDS"}, {"stage", "sampling"}}. Exported as Prometheus
/// labels / JSON fields. Order-insensitive: the registry sorts them.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. Increments are lock-free; safe to
/// hammer from many threads (see MetricRegistryTest.ConcurrentCounters).
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value that can go up and down (queue depths, thresholds).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Thread-safe value-distribution metric over gids::Histogram (log-bucketed,
/// ~4% relative resolution).
class HistogramMetric {
 public:
  void Observe(uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Add(value);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// One exported metric instance at snapshot time.
struct MetricSnapshot {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  double value = 0;     // counters and gauges
  Histogram histogram;  // histogram metrics only
};

/// Thread-safe registry of named, label-tagged metrics with JSON and
/// Prometheus text exposition.
///
/// Two registration styles:
///  - owned metrics (GetCounter/GetGauge/GetHistogram): the registry
///    creates the metric on first use and returns a stable pointer the
///    caller caches and drives directly from hot paths;
///  - callback metrics (RegisterCallback): the value is pulled from the
///    instrumented component at Snapshot() time, so components with
///    existing local stats structs (CacheStats, queue counters, ...) are
///    exported with zero hot-path overhead. Callbacks must stay valid for
///    the registry's lifetime and are invoked without synchronization
///    against the component, which matches the single-threaded loader
///    pipelines they observe.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the metric with this name + label set, creating it on first
  /// use. Requesting an existing name+labels with a different type aborts
  /// (programming error).
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  HistogramMetric* GetHistogram(const std::string& name, Labels labels = {});

  /// Registers (or replaces) a pull-style metric whose value is read from
  /// `read` at snapshot time. `type` must be kCounter or kGauge.
  void RegisterCallback(const std::string& name, Labels labels,
                        MetricType type, std::function<double()> read);

  /// Materializes every pull-style callback into a frozen final value and
  /// drops the callback, so snapshots taken after the instrumented
  /// component is destroyed read the last observed value instead of
  /// calling into freed memory (the lifetime footgun documented in
  /// OBSERVABILITY.md). The loaders call this from their destructors with
  /// their own label set. A frozen entry can be re-bound by a later
  /// RegisterCallback for the same name + labels.
  void UnbindAll();
  /// Label-filtered variant: freezes only entries whose label set contains
  /// every (key, value) pair of `labels`.
  void UnbindAll(const Labels& labels);
  /// Name + label-filtered variant: freezes only the pull entries with
  /// exactly this metric name whose labels contain every pair of `labels`.
  /// Used by PullBinding to freeze one component's metrics when that
  /// component (not the whole loader) is destroyed.
  void UnbindNamed(const std::string& name, const Labels& labels);

  /// Number of registered metric instances.
  size_t size() const;

  /// Consistent point-in-time view of every metric, sorted by name then
  /// labels.
  std::vector<MetricSnapshot> Snapshot() const;

  /// {"metrics":[{"name":...,"labels":{...},"type":...,...}]}; histograms
  /// carry count/min/max/mean/stddev and p50/p90/p99/p999.
  std::string ToJson() const;

  /// Prometheus text exposition format. Histograms are exported
  /// summary-style by default: quantile series plus _sum and _count.
  /// With `cumulative_buckets` (opt-in, `gids_cli run --prom-buckets`)
  /// they are exported as native Prometheus histograms instead —
  /// cumulative `_bucket{le="..."}` series over the log-bucket boundaries
  /// plus `le="+Inf"`, `_sum` and `_count` — so real Prometheus/Grafana
  /// can aggregate quantiles across runs (histogram_quantile).
  std::string ToPrometheusText(bool cumulative_buckets = false) const;

  Status WriteJson(const std::string& path) const;
  Status WritePrometheusText(const std::string& path,
                             bool cumulative_buckets = false) const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
    std::function<double()> callback;
    /// UnbindAll() replaces a callback with its materialized last value.
    bool frozen = false;
    double frozen_value = 0;
  };

  /// Finds the entry for name+labels or creates one of `type`; aborts on a
  /// type conflict. Caller must hold mu_.
  Entry* FindOrCreateLocked(const std::string& name, Labels labels,
                            MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// RAII handle over a set of pull-style callbacks bound into one registry:
/// destroying (or Unbind()-ing) the binding freezes exactly the named
/// entries via UnbindNamed, so a component whose metrics were bound with
/// RegisterCallback can die before the registry's last snapshot without
/// leaving dangling callbacks (OBSERVABILITY.md "Lifetime"). Move-only;
/// the default-constructed state is empty and freezes nothing. Destroy the
/// binding before (or when) the instrumented component is destroyed.
class PullBinding {
 public:
  PullBinding() = default;
  PullBinding(MetricRegistry* registry, Labels labels)
      : registry_(registry), labels_(std::move(labels)) {}
  PullBinding(const PullBinding&) = delete;
  PullBinding& operator=(const PullBinding&) = delete;
  PullBinding(PullBinding&& o) noexcept
      : registry_(o.registry_),
        labels_(std::move(o.labels_)),
        names_(std::move(o.names_)) {
    o.registry_ = nullptr;
    o.names_.clear();
  }
  PullBinding& operator=(PullBinding&& o) noexcept {
    if (this != &o) {
      Unbind();
      registry_ = o.registry_;
      labels_ = std::move(o.labels_);
      names_ = std::move(o.names_);
      o.registry_ = nullptr;
      o.names_.clear();
    }
    return *this;
  }
  ~PullBinding() { Unbind(); }

  /// Records `name` as owned by this binding. The caller must have
  /// registered the callback under the binding's label set.
  void Track(std::string name) { names_.push_back(std::move(name)); }

  /// Freezes every tracked entry now (idempotent; also safe if the
  /// registry already froze them via UnbindAll).
  void Unbind() {
    if (registry_ == nullptr) return;
    for (const auto& name : names_) registry_->UnbindNamed(name, labels_);
    names_.clear();
    registry_ = nullptr;
  }

  bool bound() const { return registry_ != nullptr; }

 private:
  MetricRegistry* registry_ = nullptr;
  Labels labels_;
  std::vector<std::string> names_;
};

}  // namespace gids::obs

#endif  // GIDS_OBS_METRIC_REGISTRY_H_
