// Conformance suite for the pluggable cache-policy framework
// (CACHING.md): every CachePolicyKind is driven through the same
// contract — deterministic victim streams per seed, equivalence of the
// null-policy default with an explicit RandomEvictionPolicy, pin and
// quarantine survival under eviction pressure, loader-level bit-identity
// across host_threads, presample re-rank reproducibility, and the
// multi-GPU shared-policy mode. Built standalone (label: cachepolicy) so
// tools/check.sh can run it under ASan and the tsan preset alongside the
// concurrency tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/gids_loader.h"
#include "core/multi_gpu.h"
#include "storage/cache_policy.h"
#include "storage/software_cache.h"
#include "tests/test_util.h"

namespace gids::storage {
namespace {

using gids::testing::LoaderRig;

const CachePolicyKind kAllKinds[] = {
    CachePolicyKind::kRandom,        CachePolicyKind::kWindow,
    CachePolicyKind::kPageRankHot,   CachePolicyKind::kGinexBelady,
    CachePolicyKind::kPresample,
};

void ExpectPolicyStatsEqual(const CachePolicyStats& a,
                            const CachePolicyStats& b, const char* what) {
  EXPECT_EQ(a.victim_requests, b.victim_requests) << what;
  EXPECT_EQ(a.victims, b.victims) << what;
  EXPECT_EQ(a.probe_skips, b.probe_skips) << what;
  EXPECT_EQ(a.bypasses, b.bypasses) << what;
  EXPECT_EQ(a.admit_rejects, b.admit_rejects) << what;
  EXPECT_EQ(a.rank_ingests, b.rank_ingests) << what;
  EXPECT_EQ(a.rerank_rounds, b.rerank_rounds) << what;
  EXPECT_EQ(a.ranked_nodes, b.ranked_nodes) << what;
  EXPECT_EQ(a.ranked_pages, b.ranked_pages) << what;
  EXPECT_EQ(a.future_ingests, b.future_ingests) << what;
}

TEST(CachePolicyKindTest, NameParseRoundTrip) {
  for (CachePolicyKind kind : kAllKinds) {
    CachePolicyKind parsed;
    ASSERT_TRUE(ParseCachePolicyKind(CachePolicyKindName(kind), &parsed))
        << CachePolicyKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  CachePolicyKind parsed;
  EXPECT_FALSE(ParseCachePolicyKind("lru", &parsed));
  EXPECT_FALSE(ParseCachePolicyKind("", &parsed));
}

// A fixed mixed access stream (reuse registrations + touches + inserts)
// against a small cache hosting `policy`. Pure function of (policy
// behavior, seed, shards) — the backbone of the determinism checks.
CacheStats DriveStream(CachePolicy* policy, uint64_t seed,
                       uint32_t num_shards) {
  SoftwareCache cache(/*capacity_bytes=*/64 * 4096, /*line_bytes=*/4096,
                      seed, /*store_payloads=*/false, num_shards, policy);
  Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    uint64_t page = rng.UniformInt(400);
    if (i % 3 == 0) cache.AddFutureReuse(page, 1);
    if (!cache.Touch(page)) cache.InsertMeta(page);
  }
  return cache.stats();
}

void ExpectCacheStatsEqual(const CacheStats& a, const CacheStats& b,
                           const char* what) {
  EXPECT_EQ(a.lookups, b.lookups) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.insertions, b.insertions) << what;
  EXPECT_EQ(a.evictions, b.evictions) << what;
  EXPECT_EQ(a.pinned_probe_skips, b.pinned_probe_skips) << what;
  EXPECT_EQ(a.bypasses, b.bypasses) << what;
}

// Same seed, fresh policy instances: the victim stream and every derived
// counter must reproduce exactly, for every policy kind.
TEST(CachePolicyContractTest, DeterministicPerSeed) {
  for (CachePolicyKind kind : kAllKinds) {
    auto p1 = MakeCachePolicy(kind);
    auto p2 = MakeCachePolicy(kind);
    CacheStats s1 = DriveStream(p1.get(), /*seed=*/9, /*num_shards=*/4);
    CacheStats s2 = DriveStream(p2.get(), /*seed=*/9, /*num_shards=*/4);
    ExpectCacheStatsEqual(s1, s2, CachePolicyKindName(kind));
    ExpectPolicyStatsEqual(p1->stats(), p2->stats(),
                           CachePolicyKindName(kind));
    EXPECT_GT(p1->stats().victim_requests, 0u) << CachePolicyKindName(kind);
  }
}

// The default (null) policy is an owned RandomEvictionPolicy and must be
// indistinguishable from an explicit external one — the pre-framework
// eviction stream, bit for bit.
TEST(CachePolicyContractTest, NullPolicyMatchesExplicitRandom) {
  for (uint32_t shards : {1u, 4u}) {
    RandomEvictionPolicy explicit_policy;
    CacheStats with_null = DriveStream(nullptr, /*seed=*/5, shards);
    CacheStats with_explicit =
        DriveStream(&explicit_policy, /*seed=*/5, shards);
    ExpectCacheStatsEqual(with_null, with_explicit, "null vs explicit");
  }
}

// Window-pinned (USE) lines survive eviction pressure under every
// policy: pinned lines are never victim candidates (PR 4/5 contract).
TEST(CachePolicyContractTest, PinnedLinesSurviveEvictionPressure) {
  for (CachePolicyKind kind : kAllKinds) {
    auto policy = MakeCachePolicy(kind);
    SoftwareCache cache(/*capacity_bytes=*/8 * 4096, /*line_bytes=*/4096,
                        /*seed=*/3, /*store_payloads=*/false,
                        /*num_shards=*/1, policy.get());
    for (uint64_t p = 1; p <= 4; ++p) {
      cache.AddFutureReuse(p, 1);
      ASSERT_TRUE(cache.InsertMeta(p)) << CachePolicyKindName(kind);
    }
    for (uint64_t p = 100; p < 140; ++p) cache.InsertMeta(p);
    for (uint64_t p = 1; p <= 4; ++p) {
      EXPECT_TRUE(cache.Touch(p))
          << CachePolicyKindName(kind) << " lost pinned page " << p;
    }
  }
}

// Corrupt-hinted lines quarantine at the verify-hit point under every
// policy, and the cache keeps serving afterwards (PR 4 carry).
TEST(CachePolicyContractTest, QuarantineSurvivesPolicySwap) {
  for (CachePolicyKind kind : kAllKinds) {
    auto policy = MakeCachePolicy(kind);
    SoftwareCache cache(/*capacity_bytes=*/8 * 4096, /*line_bytes=*/4096,
                        /*seed=*/3, /*store_payloads=*/false,
                        /*num_shards=*/1, policy.get());
    cache.EnableIntegrity(/*checksummer=*/nullptr, /*verify_fill=*/false,
                          /*verify_hit=*/true);
    ASSERT_TRUE(cache.InsertMeta(7, /*corrupt_hint=*/true));
    EXPECT_FALSE(cache.Touch(7)) << CachePolicyKindName(kind);
    EXPECT_EQ(cache.stats().quarantines, 1u) << CachePolicyKindName(kind);
    ASSERT_TRUE(cache.InsertMeta(7));
    EXPECT_TRUE(cache.Touch(7)) << CachePolicyKindName(kind);
  }
}

// Belady semantics on a hand-built shard: the victim is the evictable
// line with the farthest next registered use (never-registered wins),
// and admission is refused when the incoming page is used even later.
TEST(GinexBeladyPolicyTest, FarthestNextUseWinsAndColdIncomingIsRejected) {
  struct FakeView final : CachePolicy::ShardLineView {
    std::vector<uint64_t> pages;
    std::vector<bool> evict;
    size_t num_lines() const override { return pages.size(); }
    bool evictable(size_t slot) const override { return evict[slot]; }
    uint64_t page(size_t slot) const override { return pages[slot]; }
  };

  GinexBeladyPolicy policy;
  auto state = policy.MakeShardState(0, /*shard_seed=*/1, /*num_lines=*/3);
  // Future order: page 10 at seq 0, page 20 at seq 1, page 30 at seq 2.
  policy.IngestFutureAccess(10);
  policy.IngestFutureAccess(20);
  policy.IngestFutureAccess(30);

  FakeView view;
  view.pages = {10, 20, 30};
  view.evict = {true, true, true};
  uint64_t skips = 0;

  // Incoming page 10 (next use seq 0): victim is page 30 (farthest).
  size_t victim =
      policy.SelectVictim(*state, view, /*incoming_page=*/10, 4, &skips);
  EXPECT_EQ(victim, 2u);
  EXPECT_EQ(skips, 0u);  // Belady scans, it does not probe

  // Incoming page 99 was never registered (infinitely far): admission
  // control refuses it rather than evicting a sooner-reused resident.
  victim = policy.SelectVictim(*state, view, /*incoming_page=*/99, 4, &skips);
  EXPECT_EQ(victim, CachePolicy::kNoVictim);
  EXPECT_GE(policy.stats().admit_rejects, 1u);

  // Pinned lines are not candidates: with 30 pinned, 20 is farthest.
  view.evict = {true, true, false};
  victim = policy.SelectVictim(*state, view, /*incoming_page=*/10, 4, &skips);
  EXPECT_EQ(victim, 1u);
}

// The presample ranking orders by observed count (desc, id asc) and page
// priorities sum member-node counts; re-ingestion swaps tables and books
// a re-rank round.
TEST(PresamplePolicyTest, FrequencyRankingAndRerank) {
  LoaderRig rig;
  const graph::FeatureStore& fs = rig.dataset->features;
  PresamplePolicy policy;
  std::vector<uint64_t> counts(rig.dataset->graph.num_nodes(), 0);
  counts[3] = 10;
  counts[5] = 25;
  counts[9] = 10;
  policy.IngestNodeFrequencies(counts, fs);

  std::vector<graph::NodeId> ranking = policy.HotNodeRanking();
  ASSERT_EQ(ranking.size(), counts.size());  // full permutation
  EXPECT_EQ(ranking[0], 5u);
  EXPECT_EQ(ranking[1], 3u);  // tie with 9 breaks toward the lower id
  EXPECT_EQ(ranking[2], 9u);
  EXPECT_TRUE(policy.ProvidesHotRanking());
  EXPECT_GT(policy.PagePriority(fs.PagesFor(5).first), 0u);
  EXPECT_EQ(policy.stats().rank_ingests, 1u);
  EXPECT_EQ(policy.stats().rerank_rounds, 0u);

  counts[3] = 100;  // drift: node 3 overtakes node 5
  policy.IngestNodeFrequencies(counts, fs);
  EXPECT_EQ(policy.HotNodeRanking()[0], 3u);
  EXPECT_EQ(policy.stats().rank_ingests, 2u);
  EXPECT_EQ(policy.stats().rerank_rounds, 1u);
}

struct LoaderCapture {
  std::vector<sampling::MiniBatch> batches;
  std::vector<loaders::IterationStats> stats;
  CachePolicyStats policy_stats;
};

LoaderCapture RunLoader(CachePolicyKind kind, uint32_t host_threads,
                        uint32_t cache_shards, int iterations,
                        uint32_t rerank_groups = 0) {
  LoaderRig rig;
  core::GidsOptions opts;
  opts.cache_policy = kind;
  opts.host_threads = host_threads;
  opts.cache_shards = cache_shards;
  opts.presample_iterations = 8;
  opts.presample_rerank_groups = rerank_groups;
  core::GidsLoader loader(rig.dataset.get(), rig.sampler.get(),
                          rig.seeds.get(), rig.system.get(), opts);
  LoaderCapture cap;
  for (int i = 0; i < iterations; ++i) {
    auto lb = loader.Next();
    GIDS_CHECK(lb.ok());
    cap.batches.push_back(lb->batch);
    cap.stats.push_back(lb->stats);
  }
  cap.policy_stats = loader.cache_policy().stats();
  return cap;
}

void ExpectCapturesEqual(const LoaderCapture& a, const LoaderCapture& b,
                         const char* what) {
  ASSERT_EQ(a.batches.size(), b.batches.size()) << what;
  for (size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].seeds, b.batches[i].seeds) << what << " it " << i;
    EXPECT_EQ(a.batches[i].input_nodes(), b.batches[i].input_nodes())
        << what << " it " << i;
    EXPECT_EQ(a.stats[i].e2e_ns, b.stats[i].e2e_ns) << what << " it " << i;
    EXPECT_EQ(a.stats[i].gather.gpu_cache_hits,
              b.stats[i].gather.gpu_cache_hits)
        << what << " it " << i;
    EXPECT_EQ(a.stats[i].gather.cpu_buffer_hits,
              b.stats[i].gather.cpu_buffer_hits)
        << what << " it " << i;
    EXPECT_EQ(a.stats[i].gather.storage_reads, b.stats[i].gather.storage_reads)
        << what << " it " << i;
  }
  ExpectPolicyStatsEqual(a.policy_stats, b.policy_stats, what);
}

// Loader-level bit-identity: for every policy kind, batches, virtual
// times, gather outcomes, and the policy's own decision counters are
// identical across host_threads at a fixed shard count (the per-shard
// canonical replay of DESIGN.md §7 extends to every policy).
TEST(CachePolicyLoaderTest, BitIdenticalAcrossHostThreads) {
  constexpr int kIterations = 20;
  for (CachePolicyKind kind : kAllKinds) {
    LoaderCapture serial = RunLoader(kind, /*host_threads=*/1,
                                     /*cache_shards=*/2, kIterations);
    LoaderCapture parallel = RunLoader(kind, /*host_threads=*/4,
                                       /*cache_shards=*/2, kIterations);
    ExpectCapturesEqual(serial, parallel, CachePolicyKindName(kind));
  }
}

// Changing the shard count re-partitions the victim streams (cache
// totals may legitimately differ) but never perturbs the sampled batches
// or the CPU-buffer outcomes, which are decided before the cache.
TEST(CachePolicyLoaderTest, BatchesIndependentOfShardCount) {
  constexpr int kIterations = 12;
  for (CachePolicyKind kind : kAllKinds) {
    LoaderCapture one = RunLoader(kind, /*host_threads=*/1,
                                  /*cache_shards=*/1, kIterations);
    LoaderCapture four = RunLoader(kind, /*host_threads=*/1,
                                   /*cache_shards=*/4, kIterations);
    ASSERT_EQ(one.batches.size(), four.batches.size());
    for (size_t i = 0; i < one.batches.size(); ++i) {
      EXPECT_EQ(one.batches[i].seeds, four.batches[i].seeds)
          << CachePolicyKindName(kind) << " it " << i;
      EXPECT_EQ(one.batches[i].input_nodes(), four.batches[i].input_nodes())
          << CachePolicyKindName(kind) << " it " << i;
      EXPECT_EQ(one.stats[i].gather.cpu_buffer_hits,
                four.stats[i].gather.cpu_buffer_hits)
          << CachePolicyKindName(kind) << " it " << i;
    }
  }
}

// Live re-ranking is part of the deterministic replay: two identical
// presample loaders with periodic re-ranks produce identical results,
// and the re-ranks actually happen.
TEST(CachePolicyLoaderTest, PresampleRerankIsReproducible) {
  constexpr int kIterations = 24;
  LoaderCapture a = RunLoader(CachePolicyKind::kPresample, 1, 2, kIterations,
                              /*rerank_groups=*/2);
  LoaderCapture b = RunLoader(CachePolicyKind::kPresample, 1, 2, kIterations,
                              /*rerank_groups=*/2);
  ExpectCapturesEqual(a, b, "presample rerank");
  EXPECT_GT(a.policy_stats.rank_ingests, 1u);
  EXPECT_GT(a.policy_stats.rerank_rounds, 0u);
}

// The multi-GPU shared-policy mode: one policy instance across every
// GPU's cache is deterministic and actually exercised (the shared stats
// snapshot books the fleet's decisions).
TEST(CachePolicyMultiGpuTest, SharedPolicyIsDeterministic) {
  LoaderRig rig;
  for (CachePolicyKind kind :
       {CachePolicyKind::kPageRankHot, CachePolicyKind::kPresample}) {
    core::MultiGpuOptions options;
    options.num_gpus = 2;
    options.share_cache_policy = true;
    options.loader.cache_policy = kind;
    options.loader.presample_iterations = 8;
    auto r1 = core::RunMultiGpu(*rig.dataset, *rig.system, {5, 5}, 32, 10,
                                options);
    auto r2 = core::RunMultiGpu(*rig.dataset, *rig.system, {5, 5}, 32, 10,
                                options);
    ASSERT_TRUE(r1.ok() && r2.ok()) << CachePolicyKindName(kind);
    EXPECT_EQ(r1->total_ns, r2->total_ns) << CachePolicyKindName(kind);
    ExpectPolicyStatsEqual(r1->shared_policy_stats, r2->shared_policy_stats,
                           CachePolicyKindName(kind));
    EXPECT_GT(r1->shared_policy_stats.victim_requests, 0u)
        << CachePolicyKindName(kind);
    if (kind == CachePolicyKind::kPresample) {
      EXPECT_GE(r1->shared_policy_stats.rank_ingests, 1u);
    }
  }
}

}  // namespace
}  // namespace gids::storage
