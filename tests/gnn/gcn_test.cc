#include "gnn/gcn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/graphsage_model.h"
#include "gnn/loss.h"
#include "graph/generator.h"
#include "sampling/neighbor_sampler.h"

namespace gids::gnn {
namespace {

sampling::Block TwoDstBlock() {
  // src_nodes = {10, 11, 20}; dst = {10, 11}; edges: 20->10, 20->11.
  sampling::Block b;
  b.src_nodes = {10, 11, 20};
  b.num_dst = 2;
  b.edge_src = {2, 2};
  b.edge_dst = {0, 1};
  return b;
}

TEST(GcnConvTest, ForwardShape) {
  Rng rng(1);
  GcnConv conv(4, 3, /*apply_relu=*/false, rng);
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::Xavier(3, 4, rng);
  Tensor out = conv.Forward(block, h);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(GcnConvTest, SymmetricNormalizationIsExact) {
  // With W = I and b = 0, check the aggregation weights by hand.
  Rng rng(2);
  GcnConv conv(1, 1, /*apply_relu=*/false, rng);
  Tensor* w = conv.Params()[0];
  conv.Params()[1]->Fill(0.0f);
  (*w)(0, 0) = 1.0f;

  sampling::Block block = TwoDstBlock();
  // Degrees (with self loops): dst0: in=1 edge +1 self = 2; dst1: 2.
  // src 20 (local 2): out-degree 2, no self (not in dst prefix).
  // src 10/11: out 0 + self = 1.
  Tensor h = Tensor::FromData(3, 1, std::vector<float>{1, 2, 4});
  Tensor out = conv.Forward(block, h);
  // out0 = h0 * 1/d0 + h2 / sqrt(ds2 * d0) = 1/2 + 4/sqrt(2*2) = 2.5
  EXPECT_NEAR(out(0, 0), 0.5f + 4.0f / 2.0f, 1e-5);
  // out1 = 2/2 + 4/sqrt(2*2) = 3.0
  EXPECT_NEAR(out(1, 0), 1.0f + 2.0f, 1e-5);
}

TEST(GcnConvTest, GradientsMatchNumericalDifferences) {
  Rng rng(3);
  GcnConv conv(3, 2, /*apply_relu=*/true, rng);
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::Xavier(3, 3, rng);

  auto loss_fn = [&]() {
    Tensor out = conv.Forward(block, h);
    double loss = 0;
    for (size_t i = 0; i < out.size(); ++i) {
      loss += 0.5 * out.data()[i] * out.data()[i];
    }
    return loss;
  };

  conv.ZeroGrad();
  Tensor out = conv.Forward(block, h);
  Tensor d_src = conv.Backward(block, out);

  const double eps = 1e-3;
  auto params = conv.Params();
  auto grads = conv.Grads();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor* p = params[pi];
    for (size_t idx = 0; idx < p->size(); ++idx) {
      float original = p->data()[idx];
      p->data()[idx] = original + eps;
      double plus = loss_fn();
      p->data()[idx] = original - eps;
      double minus = loss_fn();
      p->data()[idx] = original;
      double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(grads[pi]->data()[idx], numeric,
                  5e-2 + 0.05 * std::abs(numeric))
          << "param " << pi << " index " << idx;
    }
  }
  for (size_t idx = 0; idx < h.size(); ++idx) {
    float original = h.data()[idx];
    h.data()[idx] = original + eps;
    double plus = loss_fn();
    h.data()[idx] = original - eps;
    double minus = loss_fn();
    h.data()[idx] = original;
    double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(d_src.data()[idx], numeric, 5e-2 + 0.05 * std::abs(numeric))
        << "input index " << idx;
  }
}

TEST(GcnModelTest, ForwardShapeAndParamCount) {
  Rng rng(4);
  auto g = graph::GenerateRmat(256, 4096, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  sampling::NeighborSampler sampler(&*g, {.fanouts = {5, 5}}, 5);
  std::vector<graph::NodeId> seeds = {1, 2, 3};
  sampling::MiniBatch batch = sampler.Sample(seeds);

  GcnConfig cfg;
  cfg.in_dim = 16;
  cfg.hidden_dim = 8;
  cfg.num_classes = 4;
  cfg.num_layers = 2;
  Rng model_rng(6);
  GcnModel model(cfg, model_rng);
  EXPECT_EQ(model.Params().size(), 4u);  // {W, b} per layer

  Tensor inputs = Tensor::Xavier(batch.num_input_nodes(), 16, model_rng);
  Tensor logits = model.Forward(batch, inputs);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 4u);
}

TEST(GcnModelTest, TrainingReducesLoss) {
  Rng rng(7);
  auto g = graph::GenerateRmat(512, 8192, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(512, 32);
  sampling::NeighborSampler sampler(&*g, {.fanouts = {5, 5}}, 8);
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId v = 0; v < 64; ++v) seeds.push_back(v * 7);
  sampling::MiniBatch batch = sampler.Sample(seeds);

  Tensor inputs(batch.num_input_nodes(), 32);
  for (size_t i = 0; i < batch.input_nodes().size(); ++i) {
    fs.FillFeature(batch.input_nodes()[i], inputs.row(i));
  }
  std::vector<uint32_t> labels = SyntheticLabels(fs, seeds, 8);

  GcnConfig cfg;
  cfg.in_dim = 32;
  cfg.hidden_dim = 32;
  cfg.num_classes = 8;
  cfg.num_layers = 2;
  Rng model_rng(9);
  GcnModel model(cfg, model_rng);
  AdamOptimizer opt(1e-2f);
  double first = model.TrainStep(batch, inputs, labels, opt);
  double last = first;
  for (int step = 0; step < 60; ++step) {
    last = model.TrainStep(batch, inputs, labels, opt);
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(ModelInterfaceTest, PolymorphicUse) {
  Rng rng(10);
  GcnConfig gcn_cfg;
  gcn_cfg.in_dim = 8;
  gcn_cfg.num_layers = 1;
  GraphSageConfig sage_cfg;
  sage_cfg.in_dim = 8;
  sage_cfg.num_layers = 1;
  std::vector<std::unique_ptr<Model>> models;
  models.push_back(std::make_unique<GcnModel>(gcn_cfg, rng));
  models.push_back(std::make_unique<GraphSageModel>(sage_cfg, rng));

  sampling::MiniBatch batch;
  sampling::Block block;
  block.src_nodes = {0, 1};
  block.num_dst = 2;
  batch.seeds = {0, 1};
  batch.blocks.push_back(block);
  Tensor inputs = Tensor::Xavier(2, 8, rng);
  for (auto& m : models) {
    Tensor logits = m->Forward(batch, inputs);
    EXPECT_EQ(logits.rows(), 2u);
  }
}

}  // namespace
}  // namespace gids::gnn
