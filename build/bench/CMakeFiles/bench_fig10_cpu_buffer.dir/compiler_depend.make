# Empty compiler generated dependencies file for bench_fig10_cpu_buffer.
# This may be replaced when dependencies are built.
