file(REMOVE_RECURSE
  "libgids_core.a"
)
