file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_datasize.dir/bench_tab04_datasize.cc.o"
  "CMakeFiles/bench_tab04_datasize.dir/bench_tab04_datasize.cc.o.d"
  "bench_tab04_datasize"
  "bench_tab04_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
