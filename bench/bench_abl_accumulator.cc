// Ablation: the dynamic storage access accumulator vs statically merging
// a fixed number of iterations (§3.2: "statically setting the number of
// iterations to merge ... is not straightforward").
//
// Static merge counts are emulated by forcing max_merged_iterations with a
// tiny accumulator target (merge exactly k) and compared against the
// dynamic threshold, on both SSD types — the dynamic policy should track
// the best static setting on each device without per-device tuning.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

double MeasureIngress(sim::SsdSpec ssd, bool dynamic, uint32_t static_merge) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  cfg.batch_size = 32;
  cfg.fanouts = {5, 5};
  cfg.ssd = std::move(ssd);
  cfg.n_ssd = 2;
  Rig rig = BuildRig(cfg);
  core::GidsOptions o = core::GidsOptions::Bam();
  o.use_accumulator = true;
  if (dynamic) {
    o.accumulator_target = 0.95;
    o.max_merged_iterations = 32;
  } else {
    // Static merge of exactly k iterations: an unreachable threshold makes
    // the merge loop always run to the cap, so every group is k wide.
    o.accumulator_target = 0.999999;
    o.max_merged_iterations = static_merge;
  }
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/20, /*measure=*/40);
  double sum = 0;
  for (const auto& it : result.per_iteration) sum += it.pcie_ingress_bps;
  return sum / result.per_iteration.size() / 1e9;
}

void BM_StaticMerge(benchmark::State& state, sim::SsdSpec spec) {
  const uint32_t merge = static_cast<uint32_t>(state.range(0));
  double gbps = 0;
  for (auto _ : state) {
    gbps = MeasureIngress(spec, /*dynamic=*/false, merge);
  }
  state.counters["ingress_GBps"] = gbps;
  ReportRow("ABL-ACC", spec.name + " static merge=" + std::to_string(merge),
            gbps, 0, "GB/s");
}

void BM_DynamicMerge(benchmark::State& state, sim::SsdSpec spec) {
  double gbps = 0;
  for (auto _ : state) {
    gbps = MeasureIngress(spec, /*dynamic=*/true, 0);
  }
  state.counters["ingress_GBps"] = gbps;
  ReportRow("ABL-ACC", spec.name + " dynamic accumulator", gbps, 0, "GB/s");
}

BENCHMARK_CAPTURE(BM_StaticMerge, optane, sim::SsdSpec::IntelOptane())
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DynamicMerge, optane, sim::SsdSpec::IntelOptane())
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StaticMerge, samsung, sim::SsdSpec::Samsung980Pro())
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DynamicMerge, samsung, sim::SsdSpec::Samsung980Pro())
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
