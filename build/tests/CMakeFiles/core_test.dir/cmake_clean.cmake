file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/accumulator_test.cc.o"
  "CMakeFiles/core_test.dir/core/accumulator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/constant_cpu_buffer_test.cc.o"
  "CMakeFiles/core_test.dir/core/constant_cpu_buffer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/gids_loader_test.cc.o"
  "CMakeFiles/core_test.dir/core/gids_loader_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/multi_gpu_test.cc.o"
  "CMakeFiles/core_test.dir/core/multi_gpu_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_invariants_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_invariants_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sampler_matrix_test.cc.o"
  "CMakeFiles/core_test.dir/core/sampler_matrix_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/trainer_test.cc.o"
  "CMakeFiles/core_test.dir/core/trainer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/window_buffer_test.cc.o"
  "CMakeFiles/core_test.dir/core/window_buffer_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
