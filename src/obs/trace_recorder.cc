#include "obs/trace_recorder.h"

#include <cstdio>

#include "obs/json.h"

namespace gids::obs {

void TraceRecorder::SetTrackName(int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_[tid] = std::move(name);
}

void TraceRecorder::AddSpan(std::string name, std::string category, int tid,
                            TimeNs start_ns, TimeNs end_ns, TraceArgs args) {
  if (end_ns <= start_ns) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'X', std::move(name), std::move(category), tid,
                          start_ns, end_ns - start_ns, std::move(args)});
}

void TraceRecorder::AddInstant(std::string name, std::string category,
                               int tid, TimeNs ts_ns, TraceArgs args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'i', std::move(name), std::move(category), tid,
                          ts_ns, 0, std::move(args)});
}

void TraceRecorder::AddCounter(std::string name, TimeNs ts_ns, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{'C', std::move(name), "counter", 0, ts_ns, 0,
                          TraceArgs{{"value", value}}});
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&out, &first](const std::string& event_json) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event_json;
  };

  append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"GIDS dataloader (virtual time)\"}}");
  for (const auto& [tid, name] : track_names_) {
    append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" + JsonEscape(name) +
           "\"}}");
  }

  for (const Event& e : events_) {
    std::string ev = "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
                     JsonEscape(e.category) + "\",\"ph\":\"";
    ev += e.phase;
    ev += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
          ",\"ts\":" + JsonNumber(NsToUs(e.ts_ns));
    if (e.phase == 'X') {
      ev += ",\"dur\":" + JsonNumber(NsToUs(e.dur_ns));
    }
    if (e.phase == 'i') {
      ev += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!e.args.empty()) {
      ev += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) ev += ",";
        first_arg = false;
        ev += "\"" + JsonEscape(key) + "\":" + JsonNumber(value);
      }
      ev += "}";
    }
    ev += "}";
    append(ev);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::string contents = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace gids::obs
