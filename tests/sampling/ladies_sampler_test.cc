#include "sampling/ladies_sampler.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generator.h"
#include "sampling/neighbor_sampler.h"

namespace gids::sampling {
namespace {

using graph::CscGraph;
using graph::NodeId;

TEST(LadiesSamplerTest, LayerBudgetBoundsSampledNodes) {
  Rng rng(1);
  auto g = graph::GenerateRmat(2048, 32768, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  LadiesSampler sampler(&*g, {.layer_sizes = {64, 64}}, 3);
  std::vector<NodeId> seeds;
  for (NodeId v = 0; v < 16; ++v) seeds.push_back(v * 31);
  MiniBatch batch = sampler.Sample(seeds);
  ASSERT_EQ(batch.blocks.size(), 2u);
  // Each block adds at most `budget` new nodes beyond its dst prefix.
  for (const Block& b : batch.blocks) {
    EXPECT_LE(b.src_nodes.size() - b.num_dst, 64u);
  }
}

TEST(LadiesSamplerTest, SeedsAreOutermostDst) {
  Rng rng(2);
  auto g = graph::GenerateRmat(512, 8192, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  LadiesSampler sampler(&*g, {.layer_sizes = {32}}, 5);
  std::vector<NodeId> seeds = {3, 14, 159};
  MiniBatch batch = sampler.Sample(seeds);
  const Block& last = batch.blocks.back();
  ASSERT_EQ(last.num_dst, 3u);
  EXPECT_EQ(last.src_nodes[0], 3u);
  EXPECT_EQ(last.src_nodes[1], 14u);
  EXPECT_EQ(last.src_nodes[2], 159u);
}

TEST(LadiesSamplerTest, EdgesConnectSampledToLayer) {
  Rng rng(3);
  auto g = graph::GenerateRmat(1024, 16384, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  LadiesSampler sampler(&*g, {.layer_sizes = {32, 32}}, 7);
  std::vector<NodeId> seeds = {1, 2, 3, 4};
  MiniBatch batch = sampler.Sample(seeds);
  for (const Block& b : batch.blocks) {
    for (size_t e = 0; e < b.edge_src.size(); ++e) {
      ASSERT_LT(b.edge_src[e], b.src_nodes.size());
      ASSERT_LT(b.edge_dst[e], b.num_dst);
      // Edge must exist in the graph: src is an in-neighbor of dst.
      NodeId src = b.src_nodes[b.edge_src[e]];
      NodeId dst = b.src_nodes[b.edge_dst[e]];
      auto nbrs = g->in_neighbors(dst);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), src), nbrs.end());
    }
  }
}

TEST(LadiesSamplerTest, HighInfluenceNodesSampledMoreOften) {
  // A node that is an in-neighbor of every layer node has maximal
  // importance weight and should be sampled nearly always.
  // Build: hub 0 -> in-neighbor of everyone; plus sparse noise.
  const NodeId n = 200;
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  Rng noise(5);
  for (NodeId v = 1; v < n; ++v) {
    src.push_back(0);
    dst.push_back(v);
    // two random extra in-neighbors
    for (int k = 0; k < 2; ++k) {
      src.push_back(static_cast<NodeId>(1 + noise.UniformInt(n - 1)));
      dst.push_back(v);
    }
  }
  auto g = CscGraph::FromCoo(n, src, dst);
  ASSERT_TRUE(g.ok());
  LadiesSampler sampler(&*g, {.layer_sizes = {8}}, 11);
  int hub_sampled = 0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<NodeId> seeds = {static_cast<NodeId>(1 + t % (n - 1))};
    MiniBatch batch = sampler.Sample(seeds);
    const auto& srcs = batch.blocks[0].src_nodes;
    if (std::find(srcs.begin(), srcs.end(), 0u) != srcs.end()) ++hub_sampled;
  }
  EXPECT_GT(hub_sampled, kTrials * 9 / 10);
}

TEST(LadiesSamplerTest, IncludeSelfKeepsFrontier) {
  Rng rng(6);
  auto g = graph::GenerateRmat(256, 4096, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  LadiesSampler sampler(&*g, {.layer_sizes = {16, 16}, .include_self = true},
                        13);
  std::vector<NodeId> seeds = {9};
  MiniBatch batch = sampler.Sample(seeds);
  // The seed must appear in the input layer (self propagation).
  const auto& inputs = batch.input_nodes();
  EXPECT_NE(std::find(inputs.begin(), inputs.end(), 9u), inputs.end());
}

TEST(LadiesSamplerTest, DeterministicForSameSeed) {
  Rng rng(7);
  auto g = graph::GenerateRmat(512, 8192, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  LadiesSampler a(&*g, {.layer_sizes = {16, 16}}, 99);
  LadiesSampler b(&*g, {.layer_sizes = {16, 16}}, 99);
  std::vector<NodeId> seeds = {4, 5, 6};
  EXPECT_EQ(a.Sample(seeds).input_nodes(), b.Sample(seeds).input_nodes());
}

TEST(LadiesSamplerTest, NameAndLayers) {
  Rng rng(8);
  auto g = graph::GenerateRmat(64, 256, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  LadiesSampler sampler(&*g, {.layer_sizes = {4, 4}});
  EXPECT_EQ(sampler.name(), "LADIES");
  EXPECT_EQ(sampler.num_layers(), 2);
}

TEST(LadiesSamplerTest, LayerWiseTouchesFewerNodesThanNeighborhood) {
  // The motivation for layer-wise sampling: a fixed per-layer budget
  // avoids neighborhood explosion for large batches.
  Rng rng(9);
  auto g = graph::GenerateRmat(4096, 131072, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  std::vector<NodeId> seeds;
  for (NodeId v = 0; v < 256; ++v) seeds.push_back(v * 7);

  LadiesSampler ladies(&*g, {.layer_sizes = {128, 128}}, 15);
  NeighborSampler neighbor(&*g, {.fanouts = {10, 10}}, 15);
  uint64_t ladies_nodes = ladies.Sample(seeds).num_input_nodes();
  uint64_t neighbor_nodes = neighbor.Sample(seeds).num_input_nodes();
  EXPECT_LT(ladies_nodes, neighbor_nodes);
}

}  // namespace
}  // namespace gids::sampling
