#include "sampling/seed_iterator.h"

#include <algorithm>

#include "common/check.h"

namespace gids::sampling {

SeedIterator::SeedIterator(std::vector<graph::NodeId> train_ids,
                           uint32_t batch_size, uint64_t seed)
    : train_ids_(std::move(train_ids)), batch_size_(batch_size), rng_(seed) {
  GIDS_CHECK(!train_ids_.empty());
  GIDS_CHECK(batch_size_ > 0);
  ShuffleEpoch();
}

void SeedIterator::ShuffleEpoch() { Shuffle(train_ids_, rng_); }

std::vector<graph::NodeId> SeedIterator::NextBatch() {
  if (cursor_ >= train_ids_.size()) {
    cursor_ = 0;
    ++epoch_;
    ShuffleEpoch();
  }
  size_t end = std::min(cursor_ + batch_size_, train_ids_.size());
  std::vector<graph::NodeId> batch(train_ids_.begin() + cursor_,
                                   train_ids_.begin() + end);
  cursor_ = end;
  ++batches_served_;
  return batch;
}

}  // namespace gids::sampling
