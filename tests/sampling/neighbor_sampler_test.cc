#include "sampling/neighbor_sampler.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "graph/generator.h"

namespace gids::sampling {
namespace {

using graph::CscGraph;
using graph::NodeId;

CscGraph StarToCenter(NodeId leaves) {
  // Every leaf is an in-neighbor of node 0.
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  for (NodeId v = 1; v <= leaves; ++v) {
    src.push_back(v);
    dst.push_back(0);
  }
  auto g = CscGraph::FromCoo(leaves + 1, src, dst);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// Validates the structural invariants every sampled batch must satisfy.
void CheckBatchInvariants(const MiniBatch& batch,
                          std::span<const NodeId> seeds, int layers) {
  ASSERT_EQ(batch.blocks.size(), static_cast<size_t>(layers));
  // Outermost block's dst prefix is the seeds.
  const Block& last = batch.blocks.back();
  ASSERT_EQ(last.num_dst, seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(last.src_nodes[i], seeds[i]);
  }
  for (size_t l = 0; l < batch.blocks.size(); ++l) {
    const Block& b = batch.blocks[l];
    ASSERT_LE(b.num_dst, b.src_nodes.size());
    // dst prefix of block l equals src_nodes of block l+1.
    if (l + 1 < batch.blocks.size()) {
      const Block& next = batch.blocks[l + 1];
      ASSERT_EQ(b.num_dst, next.src_nodes.size());
      for (uint32_t i = 0; i < b.num_dst; ++i) {
        EXPECT_EQ(b.src_nodes[i], next.src_nodes[i]);
      }
    }
    // Edge endpoints in range; src_nodes unique.
    for (size_t e = 0; e < b.edge_src.size(); ++e) {
      ASSERT_LT(b.edge_src[e], b.src_nodes.size());
      ASSERT_LT(b.edge_dst[e], b.num_dst);
    }
    std::set<NodeId> unique(b.src_nodes.begin(), b.src_nodes.end());
    EXPECT_EQ(unique.size(), b.src_nodes.size());
  }
}

TEST(NeighborSamplerTest, TwoHopExampleFromPaper) {
  // Fig. 2: fanout 3 over two layers from one seed in a dense graph gives
  // at most 1 + 3 + (4 * 3) nodes; with a complete-ish graph exactly
  // 3 edges in the seed block.
  Rng rng(1);
  auto g = graph::GenerateUniform(100, 5000, rng);
  ASSERT_TRUE(g.ok());
  NeighborSampler sampler(&*g, {.fanouts = {3, 3}}, 7);
  std::vector<NodeId> seeds = {5};
  MiniBatch batch = sampler.Sample(seeds);
  CheckBatchInvariants(batch, seeds, 2);
  EXPECT_LE(batch.blocks.back().num_edges(), 3u);
  // Total sampled subgraph size bounded by the fanout expansion.
  EXPECT_LE(batch.num_input_nodes(), 1u + 3u + 12u);
}

TEST(NeighborSamplerTest, FanoutCapsSampledNeighbors) {
  CscGraph g = StarToCenter(50);
  NeighborSampler sampler(&g, {.fanouts = {10}}, 3);
  std::vector<NodeId> seeds = {0};
  MiniBatch batch = sampler.Sample(seeds);
  EXPECT_EQ(batch.blocks[0].num_edges(), 10u);
  // 10 distinct neighbors + the seed.
  EXPECT_EQ(batch.num_input_nodes(), 11u);
}

TEST(NeighborSamplerTest, TakesAllNeighborsWhenFewerThanFanout) {
  CscGraph g = StarToCenter(4);
  NeighborSampler sampler(&g, {.fanouts = {10}}, 3);
  std::vector<NodeId> seeds = {0};
  MiniBatch batch = sampler.Sample(seeds);
  EXPECT_EQ(batch.blocks[0].num_edges(), 4u);
}

TEST(NeighborSamplerTest, SampledNeighborsAreDistinct) {
  // Without-replacement sampling: no duplicate (src, dst) pairs from one
  // destination.
  CscGraph g = StarToCenter(100);
  NeighborSampler sampler(&g, {.fanouts = {20}}, 11);
  std::vector<NodeId> seeds = {0};
  MiniBatch batch = sampler.Sample(seeds);
  std::set<uint32_t> srcs(batch.blocks[0].edge_src.begin(),
                          batch.blocks[0].edge_src.end());
  EXPECT_EQ(srcs.size(), 20u);
}

TEST(NeighborSamplerTest, UniformMarginals) {
  // Every neighbor of the star center should be picked equally often.
  CscGraph g = StarToCenter(20);
  NeighborSampler sampler(&g, {.fanouts = {5}}, 13);
  std::map<NodeId, int> counts;
  constexpr int kTrials = 8000;
  std::vector<NodeId> seeds = {0};
  for (int t = 0; t < kTrials; ++t) {
    MiniBatch batch = sampler.Sample(seeds);
    const Block& b = batch.blocks[0];
    for (uint32_t e = 0; e < b.num_edges(); ++e) {
      counts[b.src_nodes[b.edge_src[e]]]++;
    }
  }
  // Each of 20 leaves expected kTrials * 5/20 times.
  for (NodeId v = 1; v <= 20; ++v) {
    EXPECT_NEAR(counts[v], kTrials / 4, kTrials / 4 * 0.15) << "leaf " << v;
  }
}

TEST(NeighborSamplerTest, ZeroDegreeSeedsYieldNoEdges) {
  auto g = CscGraph::FromCoo(5, {}, {});
  ASSERT_TRUE(g.ok());
  NeighborSampler sampler(&*g, {.fanouts = {5, 5}}, 17);
  std::vector<NodeId> seeds = {0, 3};
  MiniBatch batch = sampler.Sample(seeds);
  EXPECT_EQ(batch.total_edges(), 0u);
  EXPECT_EQ(batch.num_input_nodes(), 2u);
  CheckBatchInvariants(batch, seeds, 2);
}

TEST(NeighborSamplerTest, MultiLayerInvariantsOnRmat) {
  Rng rng(19);
  auto g = graph::GenerateRmat(2048, 32768, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  NeighborSampler sampler(&*g, {.fanouts = {10, 5, 5}}, 23);
  std::vector<NodeId> seeds;
  for (NodeId v = 0; v < 32; ++v) seeds.push_back(v * 11);
  MiniBatch batch = sampler.Sample(seeds);
  CheckBatchInvariants(batch, seeds, 3);
  EXPECT_GE(batch.num_input_nodes(), seeds.size());
}

TEST(NeighborSamplerTest, LayerEdgeCountsMatchBlocks) {
  Rng rng(29);
  auto g = graph::GenerateRmat(512, 8192, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  NeighborSampler sampler(&*g, {.fanouts = {5, 5}}, 31);
  std::vector<NodeId> seeds = {1, 2, 3};
  MiniBatch batch = sampler.Sample(seeds);
  auto counts = batch.LayerEdgeCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], batch.blocks[0].num_edges());
  EXPECT_EQ(counts[1], batch.blocks[1].num_edges());
  EXPECT_EQ(counts[0] + counts[1], batch.total_edges());
}

TEST(NeighborSamplerTest, DeterministicForSameSeed) {
  Rng rng(37);
  auto g = graph::GenerateRmat(512, 8192, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  NeighborSampler a(&*g, {.fanouts = {5, 5}}, 41);
  NeighborSampler b(&*g, {.fanouts = {5, 5}}, 41);
  std::vector<NodeId> seeds = {7, 8};
  MiniBatch ba = a.Sample(seeds);
  MiniBatch bb = b.Sample(seeds);
  EXPECT_EQ(ba.input_nodes(), bb.input_nodes());
  EXPECT_EQ(ba.blocks[0].edge_src, bb.blocks[0].edge_src);
}

TEST(NeighborSamplerTest, NameAndLayers) {
  CscGraph g = StarToCenter(3);
  NeighborSampler sampler(&g, {.fanouts = {2, 2, 2}});
  EXPECT_EQ(sampler.name(), "neighborhood");
  EXPECT_EQ(sampler.num_layers(), 3);
}

}  // namespace
}  // namespace gids::sampling
