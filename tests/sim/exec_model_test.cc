#include <gtest/gtest.h>

#include "sim/cpu_model.h"
#include "sim/gpu_model.h"
#include "sim/link_models.h"
#include "sim/system_model.h"

namespace gids::sim {
namespace {

TEST(CpuModelTest, PrepRatePlateausAtSixteenThreads) {
  // Fig. 3: CPU data preparation cannot exceed ~4.1 M requests/s and
  // plateaus at 16 threads.
  CpuModel cpu(CpuSpec::EpycServer());
  EXPECT_NEAR(cpu.PrepRequestRate(16), 4.1e6, 0.2e6);
  EXPECT_DOUBLE_EQ(cpu.PrepRequestRate(16), cpu.PrepRequestRate(32));
  EXPECT_LT(cpu.PrepRequestRate(1), cpu.PrepRequestRate(8));
  EXPECT_LT(cpu.PrepRequestRate(8), cpu.PrepRequestRate(16));
}

TEST(CpuModelTest, SamplingSlowsOnLargerStructures) {
  CpuModel cpu(CpuSpec::EpycServer());
  uint64_t edges = 1000000;
  TimeNs tiny = cpu.SamplingTime(edges, 5 * kMiB);
  TimeNs small = cpu.SamplingTime(edges, 100 * kMiB);
  TimeNs medium = cpu.SamplingTime(edges, 1 * kGiB);
  EXPECT_LT(tiny, small);
  EXPECT_LT(small, medium);
}

TEST(CpuModelTest, MmapGatherDominatedBySerialFaults) {
  // §2.3: page faults serialize; on the 980 Pro each fault costs the
  // device latency plus the OS fault path.
  CpuModel cpu(CpuSpec::EpycServer());
  SsdSpec samsung = SsdSpec::Samsung980Pro();
  TimeNs t = cpu.MmapGatherTime(0, 1000, samsung);
  TimeNs expected = 1000 * (samsung.read_latency_ns + UsToNs(10));
  EXPECT_NEAR(static_cast<double>(t), static_cast<double>(expected),
              0.01 * expected);
}

TEST(CpuModelTest, MmapHitsAreCheapComparedToFaults) {
  CpuModel cpu(CpuSpec::EpycServer());
  SsdSpec optane = SsdSpec::IntelOptane();
  TimeNs hits_only = cpu.MmapGatherTime(10000 * 4096, 0, optane);
  TimeNs faults_only = cpu.MmapGatherTime(0, 10000, optane);
  EXPECT_LT(hits_only * 10, faults_only);
}

TEST(CpuModelTest, AsyncReadsOverlapLatency) {
  // Ginex-style async reads with queue depth 64 beat serial faulting.
  CpuModel cpu(CpuSpec::EpycServer());
  SsdSpec samsung = SsdSpec::Samsung980Pro();
  TimeNs async64 = cpu.AsyncReadTime(10000, 4096, samsung, 64);
  TimeNs serial = cpu.MmapGatherTime(0, 10000, samsung);
  EXPECT_LT(async64 * 4, serial);
}

TEST(GpuModelTest, TrainTimeMatchesConsumptionRate) {
  // Fig. 3: training kernels consume ~29 M feature vectors/s.
  GpuModel gpu(GpuSpec::A100_40GB());
  TimeNs t = gpu.TrainTime(29000000);
  EXPECT_NEAR(NsToSec(t), 1.0, 0.01);
}

TEST(GpuModelTest, RequestGenFasterThanTrainingConsumption) {
  // Fig. 3's headline: GPU prep (77 M/s) outpaces training (29 M/s),
  // while CPU prep (4.1 M/s) cannot keep up.
  GpuModel gpu(GpuSpec::A100_40GB());
  CpuModel cpu(CpuSpec::EpycServer());
  double gpu_rate = 1e6 / NsToSec(gpu.RequestGenTime(1000000));
  double consume_rate = gpu.spec().train_consume_rate;
  EXPECT_GT(gpu_rate, consume_rate);
  EXPECT_LT(cpu.PrepRequestRate(16), consume_rate);
}

TEST(GpuModelTest, SamplingOccupancyRamp) {
  GpuModel gpu(GpuSpec::A100_40GB());
  // Per-edge cost is higher when the kernel cannot fill the GPU.
  TimeNs small = gpu.SamplingLayerTime(1000, kGiB);
  TimeNs large = gpu.SamplingLayerTime(1000000, kGiB);
  double small_per_edge = static_cast<double>(small) / 1000;
  double large_per_edge = static_cast<double>(large) / 1000000;
  EXPECT_GT(small_per_edge, large_per_edge);
}

TEST(GpuModelTest, SamplingTimeSumsLayers) {
  GpuModel gpu(GpuSpec::A100_40GB());
  uint64_t layers[3] = {1000, 5000, 25000};
  TimeNs total = gpu.SamplingTime(layers, 3, kGiB);
  TimeNs manual = gpu.SamplingLayerTime(1000, kGiB) +
                  gpu.SamplingLayerTime(5000, kGiB) +
                  gpu.SamplingLayerTime(25000, kGiB);
  EXPECT_EQ(total, manual);
}

TEST(GpuModelTest, GpuSamplingAdvantageGrowsWithStructure) {
  // Fig. 7's mechanism: both samplers slow down on larger structures, but
  // the GPU's latency hiding keeps its absolute penalty much smaller, so
  // the CPU-to-GPU time ratio widens with graph size.
  GpuModel gpu(GpuSpec::A100_40GB());
  CpuModel cpu(CpuSpec::EpycServer());
  uint64_t edges = 100000;
  auto ratio_at = [&](uint64_t structure_bytes) {
    return static_cast<double>(cpu.SamplingTime(edges, structure_bytes)) /
           static_cast<double>(
               gpu.SamplingLayerTime(edges, structure_bytes));
  };
  double small_ratio = ratio_at(5 * kMiB);
  double large_ratio = ratio_at(kGiB);
  EXPECT_GT(small_ratio, 1.0);  // GPU wins even on cache-resident graphs
  EXPECT_GT(large_ratio, small_ratio);
  EXPECT_GT(large_ratio, 3.0);  // paper: >3x on IGB-medium
}

TEST(LinkModelTest, TransferTimeIsLinear) {
  LinkModel pcie = LinkModel::PcieGen4x16();
  TimeNs one = pcie.TransferTime(1 * kGiB);
  TimeNs two = pcie.TransferTime(2 * kGiB);
  EXPECT_NEAR(static_cast<double>(two - pcie.base_latency_ns()),
              2.0 * static_cast<double>(one - pcie.base_latency_ns()),
              1e-6 * two);
}

TEST(LinkModelTest, PresetsMatchTable1) {
  EXPECT_NEAR(LinkModel::PcieGen4x16().bandwidth_bps(), 32e9, 1e9);
  EXPECT_NEAR(LinkModel::HbmA100().bandwidth_bps(), 1555e9, 1e9);
}

TEST(LinkModelTest, TrafficAccounting) {
  LinkModel pcie = LinkModel::PcieGen4x16();
  pcie.RecordTraffic(100);
  pcie.RecordTraffic(200);
  EXPECT_EQ(pcie.total_bytes(), 300u);
  pcie.ResetTraffic();
  EXPECT_EQ(pcie.total_bytes(), 0u);
}

TEST(SystemConfigTest, MemoryScaling) {
  SystemConfig cfg = SystemConfig::Paper(SsdSpec::IntelOptane());
  cfg.memory_scale = 1.0 / 256.0;
  EXPECT_EQ(cfg.scaled_cpu_memory_bytes(), cfg.cpu_memory_bytes / 256);
  EXPECT_EQ(cfg.scaled_gpu_cache_bytes(), cfg.gpu_cache_bytes / 256);
}

TEST(SystemModelTest, SsdArrayPeakScales) {
  SystemModel one(SystemConfig::Paper(SsdSpec::IntelOptane(), 1));
  SystemModel two(SystemConfig::Paper(SsdSpec::IntelOptane(), 2));
  EXPECT_DOUBLE_EQ(two.ssd_array_peak_bps(), 2 * one.ssd_array_peak_bps());
}

}  // namespace
}  // namespace gids::sim
