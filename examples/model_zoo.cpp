// Model zoo: GraphSAGE vs GCN vs GAT, all trained through the same GIDS
// dataloader on the same synthetic dataset. Demonstrates that the
// dataloader is model-agnostic (§2.1: frameworks provide many
// message-passing architectures; GIDS only changes how their input
// features arrive) and compares convergence of the three architectures.
//
// Build & run:  ./build/examples/model_zoo
#include <cstdio>

#include "core/gids_loader.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/system_model.h"

namespace {

double RunModel(gids::core::ModelKind kind, const char* name,
                const gids::graph::Dataset& dataset,
                const gids::sim::SystemModel& system) {
  using namespace gids;
  sampling::NeighborSampler sampler(&dataset.graph, {.fanouts = {10, 5}},
                                    /*seed=*/2);
  sampling::SeedIterator seeds(dataset.train_ids, /*batch_size=*/128,
                               /*seed=*/3);
  core::GidsLoader loader(&dataset, &sampler, &seeds, &system, {});

  core::TrainerOptions opts;
  opts.warmup_iterations = 0;
  opts.measure_iterations = 60;
  opts.functional_training = true;
  opts.track_accuracy = true;
  opts.model = kind;
  opts.num_classes = 8;
  opts.hidden_dim = 64;
  core::Trainer trainer(&dataset, opts);
  auto result = trainer.Run(loader);
  GIDS_CHECK_OK(result.status());

  double early_loss = 0;
  double late_loss = 0;
  double late_acc = 0;
  for (int i = 0; i < 10; ++i) {
    early_loss += result->losses[i] / 10;
    late_loss += result->losses[50 + i] / 10;
    late_acc += result->accuracies[50 + i] / 10;
  }
  std::printf("%-10s loss %.3f -> %.3f   batch accuracy %.1f%%\n", name,
              early_loss, late_loss, 100 * late_acc);
  return late_loss;
}

}  // namespace

int main() {
  using namespace gids;
  auto dataset_or = graph::BuildDataset(graph::DatasetSpec::IgbTiny(),
                                        /*scale=*/0.5, /*seed=*/1);
  GIDS_CHECK_OK(dataset_or.status());
  graph::Dataset dataset = std::move(dataset_or).value();
  sim::SystemConfig cfg =
      sim::SystemConfig::Paper(sim::SsdSpec::IntelOptane());
  cfg.memory_scale = 1.0 / 2048.0;
  sim::SystemModel system(cfg);

  std::printf("training 60 iterations of each architecture through GIDS\n"
              "(IGB-tiny proxy, 2-layer sampling, batch 128)\n\n");
  RunModel(core::ModelKind::kGraphSage, "GraphSAGE", dataset, system);
  RunModel(core::ModelKind::kGcn, "GCN", dataset, system);
  RunModel(core::ModelKind::kGat, "GAT", dataset, system);
  std::printf("\nall three consume identical GIDS-gathered mini-batches;\n"
              "only the message-passing update differs.\n");
  return 0;
}
