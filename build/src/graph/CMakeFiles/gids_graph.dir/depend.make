# Empty dependencies file for gids_graph.
# This may be replaced when dependencies are built.
