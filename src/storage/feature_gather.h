#ifndef GIDS_STORAGE_FEATURE_GATHER_H_
#define GIDS_STORAGE_FEATURE_GATHER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/feature_store.h"
#include "graph/types.h"
#include "storage/bam_array.h"

namespace gids::storage {

/// Interface for a host-pinned hot-node feature buffer (implemented by
/// core::ConstantCpuBuffer). Gathers check it before touching the cache or
/// storage: hot nodes are served from CPU memory over PCIe (§3.3).
class HotNodeBuffer {
 public:
  virtual ~HotNodeBuffer() = default;
  virtual bool Contains(graph::NodeId node) const = 0;
  /// Copies the node's feature vector into `out` (size >= feature_dim).
  virtual void Fill(graph::NodeId node, std::span<float> out) const = 0;
};

/// Traffic counts for one feature gather, keyed by service path. These are
/// the functional inputs to sim::ComputeAggregationTiming; one "request"
/// is one storage-page-sized access (so nodes with page-spanning features
/// count more than once, matching the paper's I/O accounting).
struct FeatureGatherCounts {
  uint64_t nodes = 0;
  uint64_t cpu_buffer_hits = 0;  // page-equivalents served from CPU buffer
  uint64_t gpu_cache_hits = 0;
  uint64_t storage_reads = 0;

  uint64_t total_page_requests() const {
    return cpu_buffer_hits + gpu_cache_hits + storage_reads;
  }
  void Add(const FeatureGatherCounts& o) {
    nodes += o.nodes;
    cpu_buffer_hits += o.cpu_buffer_hits;
    gpu_cache_hits += o.gpu_cache_hits;
    storage_reads += o.storage_reads;
  }
};

/// Gathers node feature vectors through the BaM path: constant CPU buffer
/// (optional) -> GPU software cache -> SSD array. Output rows are float32
/// feature vectors in the order of `nodes`.
class FeatureGatherer {
 public:
  /// `hot_buffer` may be null (plain BaM gather).
  FeatureGatherer(const graph::FeatureStore* layout, BamArray* array,
                  const HotNodeBuffer* hot_buffer = nullptr);

  const graph::FeatureStore& layout() const { return *layout_; }

  /// Gathers features for `nodes` into `out` (size >= nodes.size() * dim).
  Status Gather(std::span<const graph::NodeId> nodes, std::span<float> out,
                FeatureGatherCounts* counts);

  /// Convenience: gather into a freshly allocated buffer.
  StatusOr<std::vector<float>> Gather(std::span<const graph::NodeId> nodes,
                                      FeatureGatherCounts* counts);

  /// Counting-mode gather: identical cache/CPU-buffer/storage decisions
  /// and counts, no payload movement. Used where only the traffic counts
  /// feed the timing models (terabyte-scale benchmark runs).
  Status GatherCountsOnly(std::span<const graph::NodeId> nodes,
                          FeatureGatherCounts* counts);

 private:
  const graph::FeatureStore* layout_;
  BamArray* array_;
  const HotNodeBuffer* hot_buffer_;
  std::vector<std::byte> page_buf_;
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_FEATURE_GATHER_H_
