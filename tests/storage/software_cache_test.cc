#include "storage/software_cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace gids::storage {
namespace {

std::vector<std::byte> Payload(uint32_t line_bytes, uint8_t fill) {
  return std::vector<std::byte>(line_bytes, std::byte{fill});
}

TEST(SoftwareCacheTest, MissThenHit) {
  SoftwareCache cache(4 * 64, 64);
  EXPECT_EQ(cache.Lookup(7), nullptr);
  auto p = Payload(64, 0xab);
  EXPECT_TRUE(cache.Insert(7, p));
  const std::byte* line = cache.Lookup(7);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line[0], std::byte{0xab});
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SoftwareCacheTest, CapacityLines) {
  SoftwareCache cache(10 * 128 + 100, 128);
  EXPECT_EQ(cache.capacity_lines(), 10u);
}

TEST(SoftwareCacheTest, EvictsWhenFull) {
  SoftwareCache cache(4 * 64, 64, /*seed=*/1);
  for (uint64_t p = 0; p < 8; ++p) {
    EXPECT_TRUE(cache.Insert(p, Payload(64, static_cast<uint8_t>(p))));
  }
  EXPECT_EQ(cache.resident_lines(), 4u);
  EXPECT_EQ(cache.stats().evictions, 4u);
}

TEST(SoftwareCacheTest, ReinsertRefreshesPayload) {
  SoftwareCache cache(4 * 64, 64);
  ASSERT_TRUE(cache.Insert(1, Payload(64, 0x01)));
  ASSERT_TRUE(cache.Insert(1, Payload(64, 0x02)));
  EXPECT_EQ(cache.resident_lines(), 1u);
  const std::byte* line = cache.Lookup(1);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line[0], std::byte{0x02});
}

TEST(SoftwareCacheTest, PinnedLinesAreNeverEvicted) {
  // The window-buffering invariant (§3.4): lines in the USE state survive
  // arbitrary insertion pressure.
  SoftwareCache cache(8 * 64, 64, /*seed=*/2);
  for (uint64_t p = 0; p < 4; ++p) {
    cache.AddFutureReuse(p, 1);
    ASSERT_TRUE(cache.Insert(p, Payload(64, 0xaa)));
  }
  EXPECT_EQ(cache.pinned_lines(), 4u);
  // Hammer the cache with 200 other pages.
  for (uint64_t p = 100; p < 300; ++p) {
    cache.Insert(p, Payload(64, 0xbb));
  }
  for (uint64_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(cache.Contains(p)) << "pinned page " << p << " was evicted";
  }
}

TEST(SoftwareCacheTest, ReuseCounterDrainsOnLookup) {
  SoftwareCache cache(8 * 64, 64);
  cache.AddFutureReuse(5, 2);
  ASSERT_TRUE(cache.Insert(5, Payload(64, 0x1)));
  EXPECT_EQ(cache.FutureReuseCount(5), 2u);
  EXPECT_EQ(cache.pinned_lines(), 1u);
  cache.Lookup(5);
  EXPECT_EQ(cache.FutureReuseCount(5), 1u);
  EXPECT_EQ(cache.pinned_lines(), 1u);  // still pinned
  cache.Lookup(5);
  EXPECT_EQ(cache.FutureReuseCount(5), 0u);
  EXPECT_EQ(cache.pinned_lines(), 0u);  // back to Safe-to-Evict
}

TEST(SoftwareCacheTest, ReuseRegisteredBeforeInsertionPins) {
  // Fig. 6 ordering: the window registers node IDs before their features
  // are fetched; insertion must pick up the pending counter.
  SoftwareCache cache(8 * 64, 64);
  cache.AddFutureReuse(9, 3);
  ASSERT_TRUE(cache.Insert(9, Payload(64, 0x9)));
  EXPECT_EQ(cache.pinned_lines(), 1u);
}

TEST(SoftwareCacheTest, FullyPinnedCacheBypassesInsertions) {
  SoftwareCache cache(2 * 64, 64, /*seed=*/3);
  cache.AddFutureReuse(0, 1);
  cache.AddFutureReuse(1, 1);
  ASSERT_TRUE(cache.Insert(0, Payload(64, 0)));
  ASSERT_TRUE(cache.Insert(1, Payload(64, 1)));
  EXPECT_FALSE(cache.Insert(2, Payload(64, 2)));
  EXPECT_GT(cache.stats().bypasses, 0u);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(1));
}

TEST(SoftwareCacheTest, ClearFutureReuseUnpinsEverything) {
  SoftwareCache cache(4 * 64, 64);
  cache.AddFutureReuse(0, 5);
  ASSERT_TRUE(cache.Insert(0, Payload(64, 0)));
  EXPECT_EQ(cache.pinned_lines(), 1u);
  cache.ClearFutureReuse();
  EXPECT_EQ(cache.pinned_lines(), 0u);
  EXPECT_EQ(cache.FutureReuseCount(0), 0u);
}

TEST(SoftwareCacheTest, MetadataModeMatchesPayloadModeDecisions) {
  // Touch/InsertMeta must produce the same hit/miss sequence as
  // Lookup/Insert under the same seed and access pattern.
  SoftwareCache with_data(16 * 64, 64, /*seed=*/42, /*store_payloads=*/true);
  SoftwareCache meta_only(16 * 64, 64, /*seed=*/42, /*store_payloads=*/false);
  Rng rng(9);
  auto payload = Payload(64, 0x7);
  for (int i = 0; i < 2000; ++i) {
    uint64_t page = rng.UniformInt(64);
    bool hit_a = with_data.Lookup(page) != nullptr;
    if (!hit_a) with_data.Insert(page, payload);
    bool hit_b = meta_only.Touch(page);
    if (!hit_b) meta_only.InsertMeta(page);
    ASSERT_EQ(hit_a, hit_b) << "diverged at access " << i;
  }
  EXPECT_EQ(with_data.stats().hits, meta_only.stats().hits);
  EXPECT_EQ(with_data.stats().evictions, meta_only.stats().evictions);
}

TEST(SoftwareCacheTest, HitRatioStat) {
  SoftwareCache cache(8 * 64, 64);
  cache.Insert(1, Payload(64, 1));
  cache.Lookup(1);  // hit
  cache.Lookup(2);  // miss
  cache.Lookup(1);  // hit
  EXPECT_NEAR(cache.stats().HitRatio(), 2.0 / 3.0, 1e-9);
}

TEST(SoftwareCacheTest, ResetStats) {
  SoftwareCache cache(8 * 64, 64);
  cache.Lookup(1);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().lookups, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SoftwareCacheTest, StressResidencyNeverExceedsCapacity) {
  SoftwareCache cache(32 * 64, 64, /*seed=*/5, /*store_payloads=*/false);
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    uint64_t page = rng.UniformInt(1000);
    if (!cache.Touch(page)) cache.InsertMeta(page);
    ASSERT_LE(cache.resident_lines(), cache.capacity_lines());
  }
}

class WindowPinStressTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowPinStressTest, CounterConservation) {
  // Register K future uses, then access exactly K times: the counter must
  // be exactly zero afterwards (no leaks, no over-consumption).
  const int k = GetParam();
  SoftwareCache cache(64 * 64, 64, /*seed=*/7, /*store_payloads=*/false);
  cache.AddFutureReuse(3, k);
  cache.InsertMeta(3);
  for (int i = 0; i < k; ++i) {
    EXPECT_TRUE(cache.Touch(3));
    EXPECT_EQ(cache.FutureReuseCount(3), static_cast<uint32_t>(k - 1 - i));
  }
  EXPECT_EQ(cache.pinned_lines(), 0u);
  // Extra accesses must not underflow.
  EXPECT_TRUE(cache.Touch(3));
  EXPECT_EQ(cache.FutureReuseCount(3), 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, WindowPinStressTest,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace gids::storage
