#ifndef GIDS_STORAGE_IO_QUEUE_H_
#define GIDS_STORAGE_IO_QUEUE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"

namespace gids::storage {

/// One NVMe read command as enqueued by a (simulated) GPU thread.
struct IoRequest {
  uint64_t lba = 0;
  uint64_t tag = 0;  // caller-chosen identifier, returned on completion
};

/// A fixed-depth submission/completion queue pair, mirroring the BaM
/// per-queue structures that GPU threads drive directly. The functional
/// role here is admission control (queue depth bounds the number of
/// outstanding requests per queue) and bookkeeping for the accumulator's
/// concurrency accounting.
class IoQueuePair {
 public:
  explicit IoQueuePair(uint32_t depth);

  uint32_t depth() const { return depth_; }
  uint32_t outstanding() const { return outstanding_; }
  bool Full() const { return outstanding_ == depth_; }

  /// Enqueues a request; fails with ResourceExhausted when the submission
  /// queue is full. Callers do not spin here: StorageArray's bounded-retry
  /// loop (FAULTS.md) re-issues failed commands with exponential virtual-
  /// time backoff and dead-letters a read once its retries are exhausted.
  Status Submit(const IoRequest& request);

  /// Device side: pops up to `max` submitted requests for service.
  std::vector<IoRequest> PopSubmitted(uint32_t max);

  /// Device side: posts a completion for `tag`.
  void Complete(uint64_t tag);

  /// Host/GPU side: reaps one completion if available.
  std::optional<uint64_t> PollCompletion();

  uint64_t total_submitted() const { return total_submitted_; }
  uint64_t total_completed() const { return total_completed_; }

 private:
  uint32_t depth_;
  uint32_t outstanding_ = 0;  // submitted, not yet reaped
  std::vector<IoRequest> submission_;
  std::vector<uint64_t> completion_;
  uint64_t total_submitted_ = 0;
  uint64_t total_completed_ = 0;
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_IO_QUEUE_H_
