file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_accumulator.dir/bench_abl_accumulator.cc.o"
  "CMakeFiles/bench_abl_accumulator.dir/bench_abl_accumulator.cc.o.d"
  "bench_abl_accumulator"
  "bench_abl_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
