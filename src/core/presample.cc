#include "core/presample.h"

#include <vector>

#include "common/check.h"
#include "sampling/seed_iterator.h"

namespace gids::core {
namespace {

/// Iteration-key offset for presample RNG streams. Training iterations
/// count up from zero; starting the presample streams here keeps the two
/// families disjoint for any realistic run length.
constexpr uint64_t kPresampleIterationBase = 1ull << 62;

}  // namespace

PresampleResult RunPresamplePass(const graph::Dataset& dataset,
                                 sampling::Sampler& sampler,
                                 uint32_t batch_size, uint64_t seed,
                                 uint32_t iterations,
                                 Workspace<uint64_t>* counts) {
  GIDS_CHECK(counts != nullptr);
  PresampleResult result;
  counts->resize(dataset.graph.num_nodes());
  if (iterations == 0 || dataset.train_ids.empty()) return result;
  // Stateful samplers demand serial, strictly increasing iterations; a
  // presample pass on a side stream would corrupt the training sequence.
  if (!sampler.concurrent_safe()) return result;

  sampling::SeedIterator seeds(dataset.train_ids, batch_size, seed);
  std::vector<graph::NodeId> seed_batch;
  sampling::MiniBatch batch;
  for (uint32_t i = 0; i < iterations; ++i) {
    seeds.NextBatchInto(seed_batch);
    sampler.SampleAtInto(seed_batch, kPresampleIterationBase + i, &batch);
    for (graph::NodeId v : batch.input_nodes()) {
      GIDS_DCHECK(v < counts->size());
      ++(*counts)[v];
      ++result.sampled_nodes;
    }
    ++result.iterations;
  }
  for (uint64_t c : counts->span()) {
    if (c > 0) ++result.distinct_nodes;
  }
  return result;
}

void SeedCachePolicy(storage::CachePolicy* policy,
                     const graph::Dataset& dataset,
                     sampling::Sampler& sampler, uint32_t batch_size,
                     HotMetric hot_metric, uint64_t hot_seed,
                     uint64_t presample_seed, uint32_t presample_iterations,
                     Workspace<uint64_t>* counts) {
  GIDS_CHECK(policy != nullptr);
  switch (policy->kind()) {
    case storage::CachePolicyKind::kPageRankHot:
      policy->IngestHotRanking(
          HotMetricRanking(dataset.graph, hot_metric, hot_seed));
      break;
    case storage::CachePolicyKind::kPresample: {
      Workspace<uint64_t> local;
      Workspace<uint64_t>* table = counts != nullptr ? counts : &local;
      PresampleResult r = RunPresamplePass(dataset, sampler, batch_size,
                                           presample_seed,
                                           presample_iterations, table);
      if (r.iterations > 0) {
        policy->IngestNodeFrequencies(table->span(), dataset.features);
      }
      break;
    }
    case storage::CachePolicyKind::kRandom:
    case storage::CachePolicyKind::kWindow:
    case storage::CachePolicyKind::kGinexBelady:
      break;
  }
}

}  // namespace gids::core
