#!/usr/bin/env python3
"""Bench regression gate: diff RESULT_JSON rows against a committed baseline.

Every bench binary prints one machine-readable line per result row:

    RESULT_JSON {"experiment":"FIG13","label":"...","measured":1.63,
                 "unit":"ms/iter", ...}

The required keys are `experiment`, `label`, `measured`, and `unit`
(`paper`, `wall_ms`, `host_threads`, `dedup_ratio`, `steady_state_allocs`
are optional); rows missing any required key fail the schema check. The
`measured` values are *virtual-time* results — deterministic run to run —
so any drift is a real behavior change, not noise. `wall_ms` is host
wall-clock and is never compared. `steady_state_allocs`, when present, is
the workspace-pool allocation count observed during the measured phase
(after warmup and Prewarm; DESIGN.md §11) and MUST be 0: the
zero-allocation hot-path contract is absolute, so any nonzero value fails
the gate regardless of tolerances.

Usage:

    # Gate: parse logs, compare to the baseline, exit 1 on regression.
    bench_fig13_e2e_samsung > fig13.log
    tools/bench_compare.py --baseline bench/baselines/seed.json fig13.log ...

    # Refresh the baseline from the same logs (e.g. after an intended
    # behavior change; commit the result).
    tools/bench_compare.py --baseline bench/baselines/seed.json --update \
        fig13.log ...

Baseline schema (JSON):

    {"tolerances": {"FIG13": 0.10, "default": 0.10},
     "directions": {"ABL-CACHEPOLICY": "higher"},
     "rows": [{"experiment": ..., "label": ..., "measured": ..., "unit": ...}]}

A row regresses when |measured - baseline| / |baseline| exceeds the
experiment's tolerance (two-sided: silent speedups also fail, so the
baseline stays honest). The optional `directions` map relaxes one side
per experiment: "higher" means higher-is-better (only measured <
baseline * (1 - tol) fails, e.g. hit-rate rows), "lower" means
lower-is-better (only measured > baseline * (1 + tol) fails); the
default "both" keeps the two-sided gate. Rows present in the baseline
but absent from the logs fail as lost coverage — unless the logs carry
NO row at all for that experiment family, in which case the family is
warned about and skipped (comparing a subset of bench logs, or landing a
new bench family before its baseline rows exist, must not fail every
unrelated row). Rows only in the logs are reported but pass (the next
--update picks them up). --update preserves `tolerances` and
`directions` from the existing baseline.
"""

import argparse
import json
import sys

RESULT_PREFIX = "RESULT_JSON "
REQUIRED_KEYS = ("experiment", "label", "measured", "unit")
DEFAULT_TOLERANCE = 0.10


def parse_rows(paths):
    """Extracts and schema-checks RESULT_JSON rows from bench log files."""
    rows = {}
    errors = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line.startswith(RESULT_PREFIX):
                    continue
                where = f"{path}:{lineno}"
                try:
                    obj = json.loads(line[len(RESULT_PREFIX):])
                except json.JSONDecodeError as e:
                    errors.append(f"{where}: unparseable RESULT_JSON: {e}")
                    continue
                missing = [k for k in REQUIRED_KEYS if k not in obj]
                if missing:
                    errors.append(
                        f"{where}: RESULT_JSON missing required key(s) "
                        f"{missing}: {line}")
                    continue
                if not isinstance(obj["measured"], (int, float)):
                    errors.append(f"{where}: 'measured' is not a number")
                    continue
                allocs = obj.get("steady_state_allocs")
                if allocs is not None and allocs != 0:
                    errors.append(
                        f"{where}: steady_state_allocs={allocs!r} — the "
                        f"workspace pool allocated during the measured "
                        f"phase; the zero-allocation contract (DESIGN.md "
                        f"§11) requires 0: {line}")
                    continue
                key = (obj["experiment"], obj["label"])
                if key in rows:
                    errors.append(
                        f"{where}: duplicate row {key[0]!r}/{key[1]!r}")
                    continue
                rows[key] = obj
    return rows, errors


def compare(rows, baseline):
    tolerances = baseline.get("tolerances", {})
    directions = baseline.get("directions", {})
    default_tol = tolerances.get("default", DEFAULT_TOLERANCE)
    failures = []
    skipped_families = {}
    checked = 0
    logged_experiments = {k[0] for k in rows}
    for base in baseline.get("rows", []):
        key = (base["experiment"], base["label"])
        tol = tolerances.get(base["experiment"], default_tol)
        direction = directions.get(base["experiment"], "both")
        row = rows.get(key)
        if row is None:
            if base["experiment"] not in logged_experiments:
                # The whole family was not run (subset compare, or a bench
                # family newer than these logs): warn and skip instead of
                # failing every row of it as lost coverage.
                skipped_families[base["experiment"]] = (
                    skipped_families.get(base["experiment"], 0) + 1)
                continue
            failures.append(
                f"MISSING  [{key[0]}] {key[1]}: in baseline but not in the "
                f"logs (lost coverage)")
            continue
        checked += 1
        want, got = base["measured"], row["measured"]
        if want == 0:
            if got != 0:
                failures.append(
                    f"REGRESS  [{key[0]}] {key[1]}: baseline 0, got {got:g}")
            continue
        rel = (got - want) / abs(want)
        if direction == "higher":
            bad = rel < -tol
        elif direction == "lower":
            bad = rel > tol
        else:
            bad = abs(rel) > tol
        if bad:
            failures.append(
                f"REGRESS  [{key[0]}] {key[1]}: measured {got:g} vs "
                f"baseline {want:g} ({100 * abs(rel):.1f}% > {100 * tol:.0f}%"
                f", direction={direction})")
    new_rows = [k for k in rows if k not in
                {(b["experiment"], b["label"]) for b in
                 baseline.get("rows", [])}]
    return failures, checked, new_rows, skipped_families


def write_baseline(path, rows, tolerances, directions):
    doc = {
        "tolerances": tolerances,
        "directions": directions,
        "rows": [
            {"experiment": k[0], "label": k[1],
             "measured": rows[k]["measured"], "unit": rows[k]["unit"]}
            for k in sorted(rows)
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("logs", nargs="+", help="bench log files to scan")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (bench/baselines/*.json)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the logs instead of "
                         "comparing (keeps existing tolerances)")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="override the default relative tolerance")
    args = ap.parse_args()

    rows, errors = parse_rows(args.logs)
    for e in errors:
        print(f"SCHEMA   {e}", file=sys.stderr)
    if not rows:
        print("no RESULT_JSON rows found in the logs", file=sys.stderr)
        return 1

    if args.update:
        tolerances = {"default": args.tolerance or DEFAULT_TOLERANCE}
        directions = {}
        try:
            with open(args.baseline, "r", encoding="utf-8") as f:
                prior = json.load(f)
            tolerances = prior.get("tolerances", tolerances)
            directions = prior.get("directions", directions)
        except (OSError, json.JSONDecodeError):
            pass
        if args.tolerance is not None:
            tolerances["default"] = args.tolerance
        write_baseline(args.baseline, rows, tolerances, directions)
        print(f"wrote {args.baseline} ({len(rows)} rows)")
        return 1 if errors else 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"cannot read baseline {args.baseline}: {e}", file=sys.stderr)
        return 1

    if args.tolerance is not None:
        baseline.setdefault("tolerances", {})["default"] = args.tolerance
    failures, checked, new_rows, skipped = compare(rows, baseline)
    for f_ in failures:
        print(f_, file=sys.stderr)
    for exp in sorted(skipped):
        print(f"SKIP     [{exp}] family absent from the logs; skipped "
              f"{skipped[exp]} baseline row(s)", file=sys.stderr)
    for k in sorted(new_rows):
        print(f"NEW      [{k[0]}] {k[1]}: not in baseline (run --update to "
              f"adopt)")
    if failures or errors:
        print(f"bench_compare: {len(failures)} regression(s), "
              f"{len(errors)} schema error(s) over {checked} checked row(s)",
              file=sys.stderr)
        return 1
    print(f"bench_compare: {checked} row(s) within tolerance "
          f"({len(new_rows)} new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
