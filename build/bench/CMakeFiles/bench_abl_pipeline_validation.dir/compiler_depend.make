# Empty compiler generated dependencies file for bench_abl_pipeline_validation.
# This may be replaced when dependencies are built.
