// The zero-allocation hot-path contract (DESIGN.md §11): once a loader
// has warmed up and the workspace pool has been prewarmed, a steady-state
// epoch performs zero pool allocations (gids_ws_allocs_total flat, hit
// rate 100%) at every host_threads / cache_shards / sampler combination —
// and pooling is purely an allocation optimization: turning it off (the
// --no-workspace-pool escape hatch) or skipping Recycle() leaves every
// mini-batch, feature buffer, and per-iteration stat bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/workspace_pool.h"
#include "core/gids_loader.h"
#include "obs/metric_registry.h"
#include "sampling/ladies_sampler.h"
#include "tests/test_util.h"

namespace gids::core {
namespace {

using gids::testing::LoaderRig;

enum class SamplerKind { kNeighbor, kLadies };

std::unique_ptr<sampling::Sampler> MakeSampler(const LoaderRig& rig,
                                               SamplerKind kind) {
  if (kind == SamplerKind::kLadies) {
    return std::make_unique<sampling::LadiesSampler>(
        &rig.dataset->graph,
        sampling::LadiesSamplerOptions{.layer_sizes = {48, 48}}, 5);
  }
  return std::make_unique<sampling::NeighborSampler>(
      &rig.dataset->graph,
      sampling::NeighborSamplerOptions{.fanouts = {5, 5}}, 11);
}

struct RunCapture {
  std::vector<loaders::LoaderBatch> iterations;
};

struct RunConfig {
  SamplerKind sampler = SamplerKind::kNeighbor;
  uint32_t host_threads = 1;
  uint32_t cache_shards = 0;  // 0 = automatic policy
  bool workspace_pool = true;
  bool recycle = true;
  bool coalesce_pages = false;
};

RunCapture RunLoader(const RunConfig& cfg, int iterations) {
  // A fresh rig per run: sampler and seed iterator are stateful, and every
  // configuration must start from the same initial state.
  LoaderRig rig;
  std::unique_ptr<sampling::Sampler> sampler = MakeSampler(rig, cfg.sampler);
  GidsOptions opts;
  opts.host_threads = cfg.host_threads;
  opts.cache_shards = cfg.cache_shards;
  opts.workspace_pool = cfg.workspace_pool;
  opts.coalesce_pages = cfg.coalesce_pages;
  GidsLoader loader(rig.dataset.get(), sampler.get(), rig.seeds.get(),
                    rig.system.get(), opts);
  RunCapture cap;
  for (int i = 0; i < iterations; ++i) {
    auto lb = loader.Next();
    GIDS_CHECK(lb.ok());
    cap.iterations.push_back(*lb);  // copy: the original goes back in
    if (cfg.recycle) loader.Recycle(std::move(*lb));
  }
  return cap;
}

void ExpectRunsEqual(const RunCapture& a, const RunCapture& b) {
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    const sampling::MiniBatch& ba = a.iterations[i].batch;
    const sampling::MiniBatch& bb = b.iterations[i].batch;
    EXPECT_EQ(ba.seeds, bb.seeds) << "iteration " << i;
    ASSERT_EQ(ba.blocks.size(), bb.blocks.size()) << "iteration " << i;
    for (size_t l = 0; l < ba.blocks.size(); ++l) {
      EXPECT_EQ(ba.blocks[l].src_nodes, bb.blocks[l].src_nodes)
          << "iteration " << i << " layer " << l;
      EXPECT_EQ(ba.blocks[l].num_dst, bb.blocks[l].num_dst)
          << "iteration " << i << " layer " << l;
      EXPECT_EQ(ba.blocks[l].edge_src, bb.blocks[l].edge_src)
          << "iteration " << i << " layer " << l;
      EXPECT_EQ(ba.blocks[l].edge_dst, bb.blocks[l].edge_dst)
          << "iteration " << i << " layer " << l;
    }
    EXPECT_EQ(a.iterations[i].features, b.iterations[i].features)
        << "iteration " << i;
    const loaders::IterationStats& sa = a.iterations[i].stats;
    const loaders::IterationStats& sb = b.iterations[i].stats;
    EXPECT_EQ(sa.sampling_ns, sb.sampling_ns) << "iteration " << i;
    EXPECT_EQ(sa.aggregation_ns, sb.aggregation_ns) << "iteration " << i;
    EXPECT_EQ(sa.e2e_ns, sb.e2e_ns) << "iteration " << i;
    EXPECT_EQ(sa.gather.gpu_cache_hits, sb.gather.gpu_cache_hits)
        << "iteration " << i;
    EXPECT_EQ(sa.gather.storage_reads, sb.gather.storage_reads)
        << "iteration " << i;
    EXPECT_EQ(sa.gather.coalesced_requests, sb.gather.coalesced_requests)
        << "iteration " << i;
    EXPECT_EQ(sa.ledger.Sum(), sb.ledger.Sum()) << "iteration " << i;
  }
}

// The tentpole gate: after a warmup epoch and a Prewarm(), a full steady
// epoch performs zero pool allocations and every acquire is a hit, at
// every host_threads x cache_shards x sampler combination.
TEST(WorkspaceZeroAllocTest, SteadyStateIsAllocationFree) {
  constexpr int kWarmup = 24;
  constexpr int kMeasure = 24;
  WorkspacePool& pool = WorkspacePool::Default();
  for (SamplerKind sk : {SamplerKind::kNeighbor, SamplerKind::kLadies}) {
    for (uint32_t host_threads : {1u, 4u}) {
      for (uint32_t cache_shards : {0u, 4u}) {
        LoaderRig rig;
        std::unique_ptr<sampling::Sampler> sampler = MakeSampler(rig, sk);
        GidsOptions opts;
        opts.host_threads = host_threads;
        opts.cache_shards = cache_shards;
        GidsLoader loader(rig.dataset.get(), sampler.get(), rig.seeds.get(),
                          rig.system.get(), opts);
        for (int i = 0; i < kWarmup; ++i) {
          auto lb = loader.Next();
          ASSERT_TRUE(lb.ok());
          loader.Recycle(std::move(*lb));
        }
        pool.Prewarm();
        const uint64_t allocs_before = pool.allocs_total();
        const uint64_t acquires_before = pool.acquires_total();
        const uint64_t hits_before = pool.hits_total();
        for (int i = 0; i < kMeasure; ++i) {
          auto lb = loader.Next();
          ASSERT_TRUE(lb.ok());
          loader.Recycle(std::move(*lb));
        }
        const uint64_t allocs = pool.allocs_total() - allocs_before;
        const uint64_t acquires = pool.acquires_total() - acquires_before;
        const uint64_t hits = pool.hits_total() - hits_before;
        EXPECT_EQ(allocs, 0u)
            << "sampler=" << (sk == SamplerKind::kLadies ? "ladies" : "nbr")
            << " host_threads=" << host_threads
            << " cache_shards=" << cache_shards;
        EXPECT_GT(acquires, 0u);
        EXPECT_EQ(hits, acquires)
            << "sampler=" << (sk == SamplerKind::kLadies ? "ladies" : "nbr")
            << " host_threads=" << host_threads
            << " cache_shards=" << cache_shards;
      }
    }
  }
}

// --no-workspace-pool escape hatch: malloc/free passthrough, identical
// results, and every passthrough acquire is counted as an allocation.
TEST(WorkspaceZeroAllocTest, DisablingThePoolIsBitIdentical) {
  constexpr int kIterations = 12;
  RunConfig pooled;
  pooled.host_threads = 4;
  RunConfig unpooled = pooled;
  unpooled.workspace_pool = false;
  RunCapture with_pool = RunLoader(pooled, kIterations);
  RunCapture without_pool = RunLoader(unpooled, kIterations);
  // The unpooled run left the process-wide pool disabled; restore it for
  // the rest of the binary.
  WorkspacePool::Default().set_enabled(true);
  ExpectRunsEqual(with_pool, without_pool);
}

TEST(WorkspaceZeroAllocTest, CoalescingUnaffectedByPooling) {
  constexpr int kIterations = 10;
  RunConfig pooled;
  pooled.coalesce_pages = true;
  pooled.host_threads = 4;
  pooled.cache_shards = 4;
  RunConfig unpooled = pooled;
  unpooled.workspace_pool = false;
  RunCapture with_pool = RunLoader(pooled, kIterations);
  RunCapture without_pool = RunLoader(unpooled, kIterations);
  WorkspacePool::Default().set_enabled(true);
  ExpectRunsEqual(with_pool, without_pool);
}

// Recycle() is an optimization, not a semantic input: dropping every
// consumed batch instead of recycling changes nothing.
TEST(WorkspaceZeroAllocTest, RecyclingDoesNotChangeResults) {
  constexpr int kIterations = 12;
  RunConfig recycled;
  RunConfig dropped = recycled;
  dropped.recycle = false;
  ExpectRunsEqual(RunLoader(recycled, kIterations),
                  RunLoader(dropped, kIterations));
}

// Satellite: the gids_ws_* / gids_host_pool_* pull gauges freeze to their
// final values when the loader (and its thread pool) dies before the
// registry's last snapshot.
TEST(WorkspaceZeroAllocTest, MetricsSurviveLoaderDestruction) {
  obs::MetricRegistry registry;
  {
    LoaderRig rig;
    GidsOptions opts;
    opts.host_threads = 4;
    opts.metrics = &registry;
    GidsLoader loader(rig.dataset.get(), rig.sampler.get(), rig.seeds.get(),
                      rig.system.get(), opts);
    for (int i = 0; i < 4; ++i) {
      auto lb = loader.Next();
      ASSERT_TRUE(lb.ok());
      loader.Recycle(std::move(*lb));
    }
  }
  // The loader and its pool are gone; the snapshot must read frozen
  // values, not dangling callbacks.
  double ws_acquires = -1;
  double pool_threads = -1;
  for (const obs::MetricSnapshot& s : registry.Snapshot()) {
    if (s.name == "gids_ws_acquires_total" && s.labels.size() == 1) {
      ws_acquires = s.value;
    }
    if (s.name == "gids_host_pool_threads") pool_threads = s.value;
  }
  EXPECT_GT(ws_acquires, 0.0);
  EXPECT_EQ(pool_threads, 4.0);
}

}  // namespace
}  // namespace gids::core
