#include "storage/block_device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace gids::storage {
namespace {

TEST(InMemoryBlockDeviceTest, ReadBackWrites) {
  InMemoryBlockDevice dev(8, 512);
  std::vector<std::byte> in(512);
  for (size_t i = 0; i < in.size(); ++i) in[i] = std::byte(i & 0xff);
  ASSERT_TRUE(dev.WriteBlock(3, in).ok());
  std::vector<std::byte> out(512);
  ASSERT_TRUE(dev.ReadBlock(3, out).ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 512), 0);
}

TEST(InMemoryBlockDeviceTest, FreshDeviceIsZeroed) {
  InMemoryBlockDevice dev(2, 64);
  std::vector<std::byte> out(64, std::byte{0xff});
  ASSERT_TRUE(dev.ReadBlock(0, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(InMemoryBlockDeviceTest, BoundsAndSizeChecks) {
  InMemoryBlockDevice dev(4, 128);
  std::vector<std::byte> buf(128);
  EXPECT_EQ(dev.ReadBlock(4, buf).code(), StatusCode::kOutOfRange);
  std::vector<std::byte> wrong(64);
  EXPECT_EQ(dev.ReadBlock(0, wrong).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dev.WriteBlock(9, buf).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dev.WriteBlock(0, wrong).code(), StatusCode::kInvalidArgument);
}

TEST(FunctionBlockDeviceTest, ServesComputedContent) {
  FunctionBlockDevice dev(16, 32, [](uint64_t lba, std::span<std::byte> out) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = std::byte((lba * 7 + i) & 0xff);
    }
  });
  std::vector<std::byte> out(32);
  ASSERT_TRUE(dev.ReadBlock(5, out).ok());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::byte((5 * 7 + i) & 0xff));
  }
}

TEST(FunctionBlockDeviceTest, RereadIsIdentical) {
  FunctionBlockDevice dev(4, 64, [](uint64_t lba, std::span<std::byte> out) {
    for (size_t i = 0; i < out.size(); ++i) out[i] = std::byte(lba ^ i);
  });
  std::vector<std::byte> a(64);
  std::vector<std::byte> b(64);
  ASSERT_TRUE(dev.ReadBlock(2, a).ok());
  ASSERT_TRUE(dev.ReadBlock(2, b).ok());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), 64), 0);
}

TEST(FunctionBlockDeviceTest, Bounds) {
  FunctionBlockDevice dev(2, 16, [](uint64_t, std::span<std::byte>) {});
  std::vector<std::byte> buf(16);
  EXPECT_EQ(dev.ReadBlock(2, buf).code(), StatusCode::kOutOfRange);
  std::vector<std::byte> wrong(8);
  EXPECT_EQ(dev.ReadBlock(0, wrong).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gids::storage
