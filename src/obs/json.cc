#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gids::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    GIDS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value " +
                                     Where());
    }
    return v;
  }

 private:
  std::string Where() const { return "at offset " + std::to_string(pos_); }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON input");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Status::InvalidArgument("unexpected character in JSON " + Where());
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      GIDS_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Status::InvalidArgument("expected ':' in JSON object " +
                                       Where());
      }
      GIDS_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace(std::move(key.string_value), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return v;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or '}' in JSON object " +
                                       Where());
      }
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      GIDS_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return v;
      if (!Consume(',')) {
        return Status::InvalidArgument("expected ',' or ']' in JSON array " +
                                       Where());
      }
    }
  }

  StatusOr<JsonValue> ParseString() {
    if (!Consume('"')) {
      return Status::InvalidArgument("expected '\"' " + Where());
    }
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string_value += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          v.string_value += esc;
          break;
        case 'n':
          v.string_value += '\n';
          break;
        case 'r':
          v.string_value += '\r';
          break;
        case 't':
          v.string_value += '\t';
          break;
        case 'b':
          v.string_value += '\b';
          break;
        case 'f':
          v.string_value += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape " + Where());
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape " + Where());
            }
          }
          // The exporters only emit \u00XX; decode the Latin-1 range and
          // pass anything else through as '?' (fidelity is not needed).
          v.string_value += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Status::InvalidArgument("bad escape character " + Where());
      }
    }
    return Status::InvalidArgument("unterminated JSON string " + Where());
  }

  StatusOr<JsonValue> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.bool_value = true;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      return v;
    }
    return Status::InvalidArgument("bad JSON literal " + Where());
  }

  StatusOr<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Status::InvalidArgument("bad JSON literal " + Where());
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double parsed = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad JSON number '" + token + "'");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace gids::obs
