#include "storage/storage_array.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace gids::storage {

StorageArray::StorageArray(std::unique_ptr<BlockDevice> device,
                           sim::SsdSpec spec, int n_ssd, uint32_t num_queues,
                           uint32_t queue_depth)
    : device_(std::move(device)),
      spec_(std::move(spec)),
      n_ssd_(n_ssd),
      queues_(num_queues, queue_depth) {
  GIDS_CHECK(device_ != nullptr);
  GIDS_CHECK(n_ssd_ > 0);
  per_device_reads_ = std::make_unique<std::atomic<uint64_t>[]>(n_ssd_);
  failovers_from_device_ = std::make_unique<std::atomic<uint64_t>[]>(n_ssd_);
  reads_by_replica_ =
      std::make_unique<std::atomic<uint64_t>[]>(ReplicaSet::kMaxReplicas);
}

void StorageArray::EnableReplication(const ReplicaOptions& options) {
  replicas_ = options.enabled()
                  ? std::make_unique<ReplicaSet>(n_ssd_, options)
                  : nullptr;
}

void StorageArray::EnableJournal(const JournalOptions& options) {
  journal_ = std::make_unique<JournalCoordinator>(
      n_ssd_, options, replicas_.get(), &checksummer_);
}

uint64_t StorageArray::SubmitMutation(MutationRecord rec) {
  GIDS_CHECK(journal_ != nullptr);
  return journal_->Submit(std::move(rec),
                          [this](int d) { return DeviceOnline(d); });
}

uint64_t StorageArray::SyncJournals() {
  GIDS_CHECK(journal_ != nullptr);
  return journal_->SyncAll([this](int d) { return DeviceOnline(d); });
}

uint64_t StorageArray::ApplyJournal(
    uint64_t budget,
    const std::function<void(const MutationRecord&,
                             std::span<const uint64_t> pages)>& on_applied) {
  GIDS_CHECK(journal_ != nullptr);
  std::vector<uint64_t> touched;
  return journal_->ApplyReady(budget, [&](const MutationRecord& rec) {
    ApplyRecordToPages(rec, &touched);
    if (replicas_ != nullptr) {
      // The apply reaches every online home replica; offline copies lag
      // behind (stale) and read routing skips them from now on.
      for (uint64_t page : touched) {
        for (int r = 0; r < replicas_->factor(); ++r) {
          const int d = replicas_->Device(page, r);
          if (DeviceOnline(d)) replicas_->NoteApplied(page, rec.lsn, d);
        }
      }
    }
    if (on_applied) on_applied(rec, touched);
  });
}

void StorageArray::CrashJournal(uint64_t crash_seed) {
  GIDS_CHECK(journal_ != nullptr);
  journal_->Crash(crash_seed);
}

uint64_t StorageArray::RecoverJournal() {
  GIDS_CHECK(journal_ != nullptr);
  return journal_->Recover();
}

Status StorageArray::ReadCleanPage(uint64_t page,
                                   std::span<std::byte> out) const {
  if (journal_ != nullptr) {
    std::shared_lock<std::shared_mutex> lock(overlay_mu_);
    auto it = overlay_.find(page);
    if (it != overlay_.end()) {
      std::memcpy(out.data(), it->second.data(),
                  std::min(out.size(), it->second.size()));
      return Status::OK();
    }
  }
  return device_->ReadBlock(page, out);
}

void StorageArray::ApplyRecordToPages(const MutationRecord& rec,
                                      std::vector<uint64_t>* pages) {
  pages->clear();
  if (rec.payload.empty()) return;  // topology deltas touch no page bytes
  const uint64_t pb = page_bytes();
  std::unique_lock<std::shared_mutex> lock(overlay_mu_);
  uint64_t pos = rec.offset;
  size_t done = 0;
  while (done < rec.payload.size()) {
    const uint64_t page = pos / pb;
    const uint64_t in_page = pos % pb;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(pb - in_page, rec.payload.size() - done));
    std::vector<std::byte>& buf = overlay_[page];
    if (buf.empty()) {
      buf.resize(pb);
      Status s = device_->ReadBlock(page, std::span<std::byte>(buf));
      GIDS_CHECK(s.ok());
    }
    std::memcpy(buf.data() + in_page, rec.payload.data() + done, n);
    done += n;
    pos += n;
    pages->push_back(page);
    // Checkpointing rewrites the whole striped page: that is the
    // write-amplification the ledger reports against logical bytes.
    journal_->mutable_counters().applied_page_bytes.fetch_add(
        pb, std::memory_order_relaxed);
    // Refresh the expected-checksum memo in place: the new bytes are in
    // hand, and a stale memo would make verify-on-read flag the mutation
    // itself as corruption.
    if (checksums_ != nullptr) {
      const uint32_t crc = checksummer_.Checksum(page, buf.data(), buf.size());
      checksums_[page].store((1ull << 32) | crc, std::memory_order_release);
    }
  }
}

void StorageArray::EnableFaultInjection(const FaultOptions& faults,
                                        const RetryPolicy& retry) {
  retry_ = retry;
  injector_ = faults.enabled()
                  ? std::make_unique<FaultInjector>(faults, retry)
                  : nullptr;
}

void StorageArray::EnableIntegrity(const IntegrityOptions& integrity) {
  integrity_ = integrity;
  checksummer_ = PageChecksummer(integrity.crc_seed);
}

void StorageArray::EnsureChecksumTable() {
  std::call_once(checksums_once_, [this] {
    checksums_ = std::make_unique<std::atomic<uint64_t>[]>(num_pages());
  });
}

uint32_t StorageArray::ExpectedChecksum(uint64_t page) {
  EnsureChecksumTable();
  std::atomic<uint64_t>& slot = checksums_[page];
  uint64_t memo = slot.load(std::memory_order_acquire);
  if (memo != 0) return static_cast<uint32_t>(memo);
  // First touch of this page: regenerate ground truth from the device
  // patched with the applied-mutation overlay (corruption is injected
  // above both, so these bytes are the clean, write-time contents) and
  // memoize the sum. Racing threads compute the same value, so the
  // unconditional store is benign.
  thread_local std::vector<std::byte> scratch;
  scratch.resize(page_bytes());
  Status s = ReadCleanPage(page, std::span<std::byte>(scratch));
  GIDS_CHECK(s.ok());
  uint32_t crc = checksummer_.Checksum(page, scratch.data(), scratch.size());
  slot.store((1ull << 32) | crc, std::memory_order_release);
  return crc;
}

Status StorageArray::IssueRead(uint64_t page, std::span<std::byte> out,
                               ReadOutcome* oc) {
  const bool verify = integrity_.verify_reads;
  if (injector_ == nullptr && !verify) {
    // Fault-free fast path: one doorbell, one (optional) device read.
    GIDS_RETURN_IF_ERROR(queues_.RoundTrip(page));
    if (!out.empty()) {
      GIDS_RETURN_IF_ERROR(ReadCleanPage(page, out));
      if (oc != nullptr && integrity_.enabled()) {
        oc->crc = ExpectedChecksum(page);
        oc->crc_known = true;
      }
    }
    CountRead(page, DeviceFor(page));
    return Status::OK();
  }

  // Bounded-retry loop. Every attempt is a fresh NVMe command (its own
  // doorbell); failed attempts back off exponentially in virtual time.
  // All decisions are pure functions of (fault_seed, page, attempt) and
  // the virtual clock, so the loop's counters are identical across runs
  // and thread counts. A checksum mismatch (verify_reads) is a failed
  // attempt like a transient error: the wasted service is charged and the
  // page is re-read. With a replica set installed, each attempt is first
  // routed to a healthy, fresh replica (primary preferred) instead of
  // pinning the page to its striped home — a device taken offline
  // mid-epoch degrades to a failover read, not a zero-fill.
  const int primary = DeviceFor(page);
  const TimeNs base_latency = spec_.read_latency_ns;
  const TimeNs now_ns = clock_ns();
  std::function<bool(int)> healthy;
  if (replicas_ != nullptr) {
    healthy = [this, now_ns](int d) {
      return injector_ == nullptr ||
             !injector_->options().DeviceOffline(d, now_ns);
    };
  }
  TimeNs penalty_ns = 0;  // virtual time beyond one fault-free service
  TimeNs crc_ns = 0;      // checksum-verification share of penalty_ns
  const uint32_t attempts = retry_.max_retries + 1;
  bool saw_mismatch = false;
  bool last_fail_mismatch = false;
  bool quorum_lost = false;
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    GIDS_RETURN_IF_ERROR(queues_.RoundTrip(page));
    int device = primary;
    int replica = 0;
    if (replicas_ != nullptr) {
      device = replicas_->RouteAttempt(page, attempt, healthy, &replica,
                                       &quorum_lost);
    }
    FaultInjector::Attempt a;
    if (injector_ != nullptr) {
      a = injector_->Evaluate(page, device, attempt, base_latency, now_ns);
    }
    if (a.outcome == FaultInjector::Outcome::kOk) {
      bool mismatch = false;
      if (!out.empty()) {
        GIDS_RETURN_IF_ERROR(ReadCleanPage(page, out));
        if (a.corrupt) injector_->Corrupt(page, attempt, out);
      }
      if (verify) {
        verified_reads_total_.fetch_add(1, std::memory_order_relaxed);
        penalty_ns += integrity_.crc_verify_ns;
        crc_ns += integrity_.crc_verify_ns;
        if (!out.empty()) {
          // The injected burst is at most 32 bits, inside CRC-32C's
          // guaranteed detection window: the compare fails exactly when
          // the attempt was corrupt, matching counting mode below.
          mismatch = checksummer_.Checksum(page, out.data(), out.size()) !=
                     ExpectedChecksum(page);
        } else {
          mismatch = a.corrupt;
        }
      }
      if (!mismatch) {
        penalty_ns += a.extra_ns;  // latency spike on the winning attempt
        if (oc != nullptr) {
          // With verification off, corrupt bytes are served silently; the
          // caching layer remembers the taint so later verify points (or
          // the scrubber) can still catch it.
          oc->served_corrupt = a.corrupt;
          oc->served_replica = replica;
          if (!out.empty() && integrity_.enabled()) {
            oc->crc = ExpectedChecksum(page);
            oc->crc_known = true;
          }
        }
        CountRead(page, device);
        if (replicas_ != nullptr) {
          reads_by_replica_[replica].fetch_add(1, std::memory_order_relaxed);
          if (replica != 0) {
            replica_failovers_total_.fetch_add(1, std::memory_order_relaxed);
            failovers_from_device_[primary].fetch_add(
                1, std::memory_order_relaxed);
          }
        }
        if (saw_mismatch) {
          integrity_repairs_total_.fetch_add(1, std::memory_order_relaxed);
        }
        if (penalty_ns > 0) {
          retry_penalty_ns_total_.fetch_add(static_cast<uint64_t>(penalty_ns),
                                            std::memory_order_relaxed);
          if (crc_ns > 0) {
            crc_verify_ns_total_.fetch_add(static_cast<uint64_t>(crc_ns),
                                           std::memory_order_relaxed);
          }
          if (retry_latency_hist_ != nullptr) {
            retry_latency_hist_->Observe(static_cast<uint64_t>(penalty_ns));
          }
        }
        return Status::OK();
      }
      // Served but corrupt: the whole attempt was wasted.
      checksum_mismatches_total_.fetch_add(1, std::memory_order_relaxed);
      saw_mismatch = true;
      last_fail_mismatch = true;
      penalty_ns += base_latency + a.extra_ns;
    } else {
      last_fail_mismatch = false;
      // Failed attempt: charge what the command consumed before failing.
      switch (a.outcome) {
        case FaultInjector::Outcome::kTimeout:
          timeouts_total_.fetch_add(1, std::memory_order_relaxed);
          penalty_ns += base_latency + a.extra_ns;  // held to the deadline
          break;
        case FaultInjector::Outcome::kTransient:
        case FaultInjector::Outcome::kOffline:
          penalty_ns += base_latency;  // completed with an error status
          break;
        case FaultInjector::Outcome::kOk:
          break;  // unreachable
      }
    }
    if (attempt + 1 < attempts) {
      retries_total_.fetch_add(1, std::memory_order_relaxed);
      TimeNs backoff = retry_.BackoffNs(attempt);
      retry_backoff_ns_total_.fetch_add(static_cast<uint64_t>(backoff),
                                        std::memory_order_relaxed);
      penalty_ns += backoff;
    }
  }
  dead_letters_total_.fetch_add(1, std::memory_order_relaxed);
  if (quorum_lost) {
    replica_quorum_lost_total_.fetch_add(1, std::memory_order_relaxed);
  }
  retry_penalty_ns_total_.fetch_add(static_cast<uint64_t>(penalty_ns),
                                    std::memory_order_relaxed);
  if (crc_ns > 0) {
    crc_verify_ns_total_.fetch_add(static_cast<uint64_t>(crc_ns),
                                   std::memory_order_relaxed);
  }
  // The non-CRC remainder of a dead-lettered read's penalty is the cost of
  // the attempts wasted on a page the caller will zero-fill (degraded
  // service). The ledger attributes it separately from ordinary retries.
  degraded_penalty_ns_total_.fetch_add(
      static_cast<uint64_t>(penalty_ns - crc_ns), std::memory_order_relaxed);
  if (retry_latency_hist_ != nullptr) {
    retry_latency_hist_->Observe(static_cast<uint64_t>(penalty_ns));
  }
  if (last_fail_mismatch) {
    data_loss_total_.fetch_add(1, std::memory_order_relaxed);
    return Status::DataLoss("page " + std::to_string(page) + ": " +
                            std::to_string(attempts) +
                            " attempts failed verification (unrepairable)");
  }
  return Status::Unavailable("page " + std::to_string(page) + ": " +
                             std::to_string(attempts) +
                             " attempts failed (dead-lettered)");
}

Status StorageArray::ReadPage(uint64_t page, std::span<std::byte> out,
                              ReadOutcome* oc) {
  GIDS_CHECK(!out.empty());
  return IssueRead(page, out, oc);
}

void StorageArray::BindMetrics(obs::MetricRegistry* registry,
                               const obs::Labels& labels,
                               bool attribution_series) {
  GIDS_CHECK(registry != nullptr);
  using obs::MetricType;
  registry->RegisterCallback(
      "gids_storage_reads_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(total_reads_); });
  for (int d = 0; d < n_ssd_; ++d) {
    obs::Labels device_labels = labels;
    device_labels.emplace_back("device", std::to_string(d));
    registry->RegisterCallback(
        "gids_storage_device_reads_total", std::move(device_labels),
        MetricType::kCounter,
        [this, d] { return static_cast<double>(reads_on_device(d)); });
  }
  registry->RegisterCallback(
      "gids_io_doorbells_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(queues_.total_submissions()); });
  registry->RegisterCallback(
      "gids_io_queue_outstanding", labels, MetricType::kGauge,
      [this] { return static_cast<double>(queues_.outstanding()); });
  registry->RegisterCallback(
      "gids_io_queue_capacity", labels, MetricType::kGauge,
      [this] { return static_cast<double>(queue_capacity()); });
  registry->RegisterCallback(
      "gids_storage_retries_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(retries_total()); });
  registry->RegisterCallback(
      "gids_storage_timeouts_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(timeouts_total()); });
  registry->RegisterCallback(
      "gids_storage_dead_letters_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(dead_letters_total()); });
  registry->RegisterCallback(
      "gids_storage_retry_backoff_ns_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(retry_backoff_ns_total()); });
  registry->RegisterCallback(
      "gids_storage_faults_injected_total", labels, MetricType::kCounter,
      [this] {
        return injector_ != nullptr
                   ? static_cast<double>(injector_->faults_injected())
                   : 0.0;
      });
  registry->RegisterCallback(
      "gids_storage_pages_corrupted_total", labels, MetricType::kCounter,
      [this] {
        return injector_ != nullptr
                   ? static_cast<double>(injector_->pages_corrupted())
                   : 0.0;
      });
  registry->RegisterCallback(
      "gids_storage_verified_reads_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(verified_reads_total()); });
  registry->RegisterCallback(
      "gids_storage_checksum_mismatches_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(checksum_mismatches_total()); });
  registry->RegisterCallback(
      "gids_storage_integrity_repairs_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(integrity_repairs_total()); });
  registry->RegisterCallback(
      "gids_storage_data_loss_total", labels, MetricType::kCounter,
      [this] { return static_cast<double>(data_loss_total()); });
  if (attribution_series) {
    registry->RegisterCallback(
        "gids_storage_crc_verify_ns_total", labels, MetricType::kCounter,
        [this] { return static_cast<double>(crc_verify_ns_total()); });
    registry->RegisterCallback(
        "gids_storage_degraded_penalty_ns_total", labels, MetricType::kCounter,
        [this] { return static_cast<double>(degraded_penalty_ns_total()); });
  }
  // Replication and journal families are bound only when the subsystem is
  // enabled, so defaults-off runs keep their exact metric set (and their
  // bit-identical RESULT_JSON).
  if (replicas_ != nullptr) {
    registry->RegisterCallback(
        "gids_replica_failovers_total", labels, MetricType::kCounter,
        [this] { return static_cast<double>(replica_failovers_total()); });
    registry->RegisterCallback(
        "gids_replica_quorum_lost_total", labels, MetricType::kCounter,
        [this] { return static_cast<double>(replica_quorum_lost_total()); });
    for (int r = 0; r < replicas_->factor(); ++r) {
      obs::Labels replica_labels = labels;
      replica_labels.emplace_back("replica", std::to_string(r));
      registry->RegisterCallback(
          "gids_replica_reads_total", std::move(replica_labels),
          MetricType::kCounter,
          [this, r] { return static_cast<double>(reads_by_replica(r)); });
    }
    for (int d = 0; d < n_ssd_; ++d) {
      obs::Labels device_labels = labels;
      device_labels.emplace_back("device", std::to_string(d));
      registry->RegisterCallback(
          "gids_replica_failovers_from_total", std::move(device_labels),
          MetricType::kCounter,
          [this, d] { return static_cast<double>(failovers_from_device(d)); });
    }
  }
  if (journal_ != nullptr) {
    const JournalCounters& jc = journal_->counters();
    struct Series {
      const char* name;
      const std::atomic<uint64_t>* value;
    };
    const Series series[] = {
        {"gids_journal_appends_total", &jc.appends},
        {"gids_journal_append_failures_total", &jc.append_failures},
        {"gids_journal_fsyncs_total", &jc.fsyncs},
        {"gids_journal_applied_total", &jc.applied},
        {"gids_journal_replayed_total", &jc.replayed},
        {"gids_journal_truncated_total", &jc.truncated},
        {"gids_journal_torn_total", &jc.torn},
        {"gids_journal_resubmitted_total", &jc.resubmitted},
        {"gids_journal_quorum_stalls_total", &jc.quorum_stalls},
        {"gids_journal_crashes_total", &jc.crashes},
        {"gids_journal_recovers_total", &jc.recovers},
        {"gids_journal_mutation_ns_total", &jc.mutation_ns},
    };
    for (const Series& s : series) {
      const std::atomic<uint64_t>* v = s.value;
      registry->RegisterCallback(s.name, labels, MetricType::kCounter, [v] {
        return static_cast<double>(v->load(std::memory_order_relaxed));
      });
    }
    registry->RegisterCallback(
        "gids_journal_pending_records", labels, MetricType::kGauge, [this] {
          return static_cast<double>(journal_->pending_records());
        });
    registry->RegisterCallback(
        "gids_journal_write_amplification", labels, MetricType::kGauge,
        [this] { return journal_->WriteAmplification(); });
  }
  request_bytes_hist_ =
      registry->GetHistogram("gids_storage_request_bytes", labels);
  retry_latency_hist_ =
      registry->GetHistogram("gids_storage_retry_latency_ns", labels);
}

void StorageArray::ResetCounters() {
  total_reads_.store(0, std::memory_order_relaxed);
  retries_total_.store(0, std::memory_order_relaxed);
  timeouts_total_.store(0, std::memory_order_relaxed);
  dead_letters_total_.store(0, std::memory_order_relaxed);
  retry_backoff_ns_total_.store(0, std::memory_order_relaxed);
  retry_penalty_ns_total_.store(0, std::memory_order_relaxed);
  crc_verify_ns_total_.store(0, std::memory_order_relaxed);
  degraded_penalty_ns_total_.store(0, std::memory_order_relaxed);
  verified_reads_total_.store(0, std::memory_order_relaxed);
  checksum_mismatches_total_.store(0, std::memory_order_relaxed);
  integrity_repairs_total_.store(0, std::memory_order_relaxed);
  data_loss_total_.store(0, std::memory_order_relaxed);
  replica_failovers_total_.store(0, std::memory_order_relaxed);
  replica_quorum_lost_total_.store(0, std::memory_order_relaxed);
  for (int d = 0; d < n_ssd_; ++d) {
    per_device_reads_[d].store(0, std::memory_order_relaxed);
    failovers_from_device_[d].store(0, std::memory_order_relaxed);
  }
  for (int r = 0; r < ReplicaSet::kMaxReplicas; ++r) {
    reads_by_replica_[r].store(0, std::memory_order_relaxed);
  }
}

}  // namespace gids::storage
