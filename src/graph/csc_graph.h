#ifndef GIDS_GRAPH_CSC_GRAPH_H_
#define GIDS_GRAPH_CSC_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "graph/types.h"

namespace gids::graph {

/// Directed graph in Compressed Sparse Column format, the layout DGL's
/// GPU samplers consume: for each node v, `in_neighbors(v)` lists the
/// sources of v's incoming edges. Neighborhood sampling expands a seed by
/// sampling from its in-neighbors (the "reverse" direction used for
/// message passing toward the seed).
class CscGraph {
 public:
  CscGraph() = default;

  /// Builds from raw CSC arrays. `indptr` must have num_nodes + 1 entries,
  /// be non-decreasing, start at 0 and end at indices.size().
  static StatusOr<CscGraph> FromCsc(std::vector<EdgeIdx> indptr,
                                    std::vector<NodeId> indices);

  /// Builds from a COO edge list (src -> dst): indices of column `dst`
  /// hold all `src` values. Nodes are [0, num_nodes).
  static StatusOr<CscGraph> FromCoo(NodeId num_nodes,
                                    std::span<const NodeId> src,
                                    std::span<const NodeId> dst);

  NodeId num_nodes() const {
    return indptr_.empty() ? 0 : static_cast<NodeId>(indptr_.size() - 1);
  }
  EdgeIdx num_edges() const { return indices_.size(); }

  EdgeIdx in_degree(NodeId v) const {
    GIDS_DCHECK(v < num_nodes());
    return indptr_[v + 1] - indptr_[v];
  }

  std::span<const NodeId> in_neighbors(NodeId v) const {
    GIDS_DCHECK(v < num_nodes());
    return std::span<const NodeId>(indices_.data() + indptr_[v],
                                   indptr_[v + 1] - indptr_[v]);
  }

  const std::vector<EdgeIdx>& indptr() const { return indptr_; }
  const std::vector<NodeId>& indices() const { return indices_; }

  /// In-memory footprint of the structure arrays (what gets pinned in CPU
  /// memory by GIDS, §3.5).
  uint64_t structure_bytes() const {
    return indptr_.size() * sizeof(EdgeIdx) + indices_.size() * sizeof(NodeId);
  }

  /// Out-degrees (computed by one pass over indices).
  std::vector<EdgeIdx> OutDegrees() const;

  /// Maximum in-degree.
  EdgeIdx MaxInDegree() const;

 private:
  CscGraph(std::vector<EdgeIdx> indptr, std::vector<NodeId> indices)
      : indptr_(std::move(indptr)), indices_(std::move(indices)) {}

  std::vector<EdgeIdx> indptr_;
  std::vector<NodeId> indices_;
};

}  // namespace gids::graph

#endif  // GIDS_GRAPH_CSC_GRAPH_H_
