#ifndef GIDS_CORE_ACCUMULATOR_H_
#define GIDS_CORE_ACCUMULATOR_H_

#include <cstdint>

#include "sim/analytic.h"
#include "sim/ssd_model.h"
#include "storage/feature_gather.h"

namespace gids::core {

/// The dynamic storage access accumulator (§3.2). From the SSD's measured
/// characteristics it computes, via the paper's Eq. 2-3 model, how many
/// *storage-bound* accesses must overlap to sustain `target_fraction` of
/// peak IOPs; the GIDS loader then merges the data preparation of future
/// iterations until the accumulated accesses cross the threshold.
///
/// Because some accesses are redirected to the GPU software cache or the
/// constant CPU buffer, the accumulator tracks the observed SSD share of
/// recent traffic and inflates the threshold so that the accesses that do
/// reach the SSDs still meet the Eq. 2-3 requirement (§3.2 last paragraph).
class StorageAccessAccumulator {
 public:
  struct Params {
    double target_fraction = 0.95;
    sim::AccumulatorModelParams model;  // T_i, T_t, n_ssd
    /// Exponential smoothing factor for the observed SSD share.
    double share_smoothing = 0.5;
    /// Lower bound on the smoothed SSD share (keeps the threshold finite
    /// when nearly all traffic is redirected).
    double min_ssd_share = 0.02;
  };

  StorageAccessAccumulator(const sim::SsdSpec& spec, Params params);

  /// Eq. 2-3 threshold on *storage-bound* overlapping accesses.
  uint64_t base_threshold() const { return base_threshold_; }

  /// Threshold on total node-page accesses, inflated by the estimated
  /// redirect rate so the storage-bound share still meets base_threshold.
  uint64_t CurrentThreshold() const;

  /// Feeds back the functional traffic counts of a completed aggregation
  /// group to update the SSD-share estimate.
  void Observe(const storage::FeatureGatherCounts& counts);

  double ssd_share_estimate() const { return ssd_share_; }

 private:
  Params params_;
  uint64_t base_threshold_;
  double ssd_share_ = 1.0;
};

}  // namespace gids::core

#endif  // GIDS_CORE_ACCUMULATOR_H_
