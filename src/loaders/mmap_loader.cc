#include "loaders/mmap_loader.h"

#include <algorithm>

#include "common/check.h"

namespace gids::loaders {

MmapLoader::MmapLoader(const graph::Dataset* dataset,
                       sampling::Sampler* sampler,
                       sampling::SeedIterator* seeds,
                       const sim::SystemModel* system,
                       MmapLoaderOptions options)
    : dataset_(dataset),
      sampler_(sampler),
      seeds_(seeds),
      system_(system),
      options_(options) {
  GIDS_CHECK(dataset_ != nullptr);
  GIDS_CHECK(sampler_ != nullptr);
  GIDS_CHECK(seeds_ != nullptr);
  GIDS_CHECK(system_ != nullptr);

  // The OS page cache gets whatever CPU memory the pinned graph structure
  // leaves free (§2.3: structure in CPU memory, features mmap'd).
  uint64_t cpu_bytes = system_->config().scaled_cpu_memory_bytes();
  uint64_t structure = dataset_->structure_bytes();
  uint64_t page_bytes = dataset_->features.page_bytes();
  uint64_t cache_bytes =
      cpu_bytes > structure ? cpu_bytes - structure : page_bytes;
  uint64_t capacity_pages = std::max<uint64_t>(1, cache_bytes / page_bytes);
  page_cache_ = std::make_unique<OsPageCache>(capacity_pages);

  if (options_.metrics != nullptr || options_.trace != nullptr ||
      options_.timeline != nullptr || options_.exemplars != nullptr) {
    observer_ = std::make_unique<LoaderObserver>(
        options_.metrics, options_.trace, std::string(name()),
        options_.timeline, options_.exemplars);
    if (options_.metrics != nullptr) {
      options_.metrics->RegisterCallback(
          "gids_os_page_cache_resident_pages", observer_->labels(),
          obs::MetricType::kGauge, [this] {
            return static_cast<double>(page_cache_->resident_pages());
          });
    }
  }
}

MmapLoader::~MmapLoader() {
  if (options_.metrics != nullptr && observer_ != nullptr) {
    options_.metrics->UnbindAll(observer_->labels());
  }
}

void MmapLoader::Recycle(LoaderBatch&& batch) {
  constexpr size_t kMaxBanked = 256;
  batch.batch.Reset();
  batch.features.clear();
  if (batch_free_.size() < kMaxBanked) {
    batch_free_.push_back(std::move(batch.batch));
  }
  if (features_free_.size() < kMaxBanked) {
    features_free_.push_back(std::move(batch.features));
  }
}

StatusOr<LoaderBatch> MmapLoader::Next() {
  LoaderBatch out;
  if (!batch_free_.empty()) {
    out.batch = std::move(batch_free_.back());
    batch_free_.pop_back();
  }
  if (!features_free_.empty()) {
    out.features = std::move(features_free_.back());
    features_free_.pop_back();
  }
  seeds_->NextBatchInto(seed_scratch_);
  sampler_->SampleInto(seed_scratch_, &out.batch);

  IterationStats& st = out.stats;
  st.sampled_edges = out.batch.total_edges();
  st.input_nodes = out.batch.num_input_nodes();
  st.sampling_ns = system_->cpu().SamplingTime(
      st.sampled_edges, dataset_->graph.structure_bytes());

  // Feature aggregation via the mmap'd file: walk every page of every
  // input node through the OS page cache model.
  const graph::FeatureStore& fs = dataset_->features;
  uint64_t hits = 0;
  uint64_t faults = 0;
  for (graph::NodeId v : out.batch.input_nodes()) {
    auto range = fs.PagesFor(v);
    for (uint64_t page = range.first; page <= range.last; ++page) {
      if (page_cache_->Access(page)) {
        ++hits;
      } else {
        ++faults;
      }
    }
  }
  st.gather.nodes = st.input_nodes;
  st.gather.cpu_buffer_hits = hits;  // served from the OS page cache
  st.gather.storage_reads = faults;
  uint64_t batch_bytes = st.input_nodes * fs.feature_bytes_per_node();
  st.aggregation_ns = system_->cpu().MmapGatherTime(
      batch_bytes, faults, system_->config().ssd);
  st.transfer_ns = system_->pcie().TransferTime(batch_bytes);
  st.training_ns = system_->gpu().TrainTime(st.input_nodes);

  // All stages serialize in the mmap pipeline (Fig. 5's stacked bars).
  st.e2e_ns =
      st.sampling_ns + st.aggregation_ns + st.transfer_ns + st.training_ns;
  if (st.aggregation_ns > 0) {
    st.effective_bandwidth_bps = static_cast<double>(batch_bytes) /
                                 NsToSec(st.aggregation_ns);
  }

  // Cost ledger: the aggregation stage splits into the page-cache copy
  // floor (what a fully resident run would cost) and the fault-driven
  // storage residual; every stage serializes, so no overlap credit.
  obs::IterationLedger& led = st.ledger;
  led.sampling_ns = st.sampling_ns;
  led.cpu_buffer_ns = std::min(
      st.aggregation_ns,
      system_->cpu().MmapGatherTime(batch_bytes, 0, system_->config().ssd));
  led.storage_ns = st.aggregation_ns - led.cpu_buffer_ns;
  led.transfer_ns = st.transfer_ns;
  led.training_ns = st.training_ns;
  led.overlap_credit_ns = led.PositiveSum() - st.e2e_ns;

  if (!options_.counting_mode) {
    out.features.resize(st.input_nodes * fs.feature_dim());
    const auto& nodes = out.batch.input_nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
      fs.FillFeature(nodes[i],
                     std::span<float>(out.features.data() + i * fs.feature_dim(),
                                      fs.feature_dim()));
    }
  }

  elapsed_ns_ += st.e2e_ns;
  ++iterations_;
  if (observer_ != nullptr) observer_->RecordIteration(st);
  return out;
}

}  // namespace gids::loaders
