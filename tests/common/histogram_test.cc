#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace gids {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_NEAR(h.Percentile(0.5), 42.0, 3.0);
}

TEST(HistogramTest, ExactMeanAndBounds) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) h.Add(rng.UniformInt(100000));
  double prev = 0;
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(prev, static_cast<double>(h.max()));
}

TEST(HistogramTest, PercentileApproximatesUniform) {
  Histogram h;
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) h.Add(rng.UniformInt(1 << 20));
  // Log-bucketing gives ~6% relative resolution.
  EXPECT_NEAR(h.Percentile(0.5), (1 << 19), (1 << 19) * 0.10);
  EXPECT_NEAR(h.Percentile(0.9), 0.9 * (1 << 20), (1 << 20) * 0.10);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, StdDevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Add(7);
  EXPECT_NEAR(h.StdDev(), 0.0, 1e-9);
}

TEST(HistogramTest, StdDevOfTwoPoint) {
  Histogram h;
  h.Add(0);
  h.Add(10);
  EXPECT_NEAR(h.StdDev(), 5.0, 1e-9);
}

TEST(HistogramTest, HandlesLargeValues) {
  Histogram h;
  h.Add(1ull << 50);
  h.Add(1ull << 51);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 1ull << 51);
  EXPECT_GE(h.Percentile(1.0), static_cast<double>(1ull << 50));
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

TEST(HistogramTest, PercentileExtremesAreExactBounds) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) h.Add(100 + rng.UniformInt(100000));
  // p=0 and p=1 must report the exact observed extremes, not bucket
  // boundaries (interpolation would otherwise over/undershoot).
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), static_cast<double>(h.min()));
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), static_cast<double>(h.max()));
  // Out-of-range p clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), static_cast<double>(h.min()));
  EXPECT_DOUBLE_EQ(h.Percentile(1.5), static_cast<double>(h.max()));
}

TEST(HistogramTest, PercentileNeverLeavesObservedRange) {
  Histogram h;
  // All mass in one bucket whose upper bound far exceeds max().
  for (int i = 0; i < 3; ++i) h.Add(1000);
  for (double p : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, static_cast<double>(h.min())) << "p=" << p;
    EXPECT_LE(v, static_cast<double>(h.max())) << "p=" << p;
  }
}

TEST(HistogramTest, EmptyPercentileEdges) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);
}

TEST(HistogramTest, ToJsonEmpty) {
  Histogram h;
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\":0"), std::string::npos) << json;
}

TEST(HistogramTest, MergeEmptyIntoEmptyStaysEmpty) {
  Histogram a;
  Histogram b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), 0.0);
}

TEST(HistogramTest, MergeEmptyIntoPopulatedIsIdentity) {
  Histogram a;
  Histogram empty;
  for (uint64_t v : {10u, 20u, 30u}) a.Add(v);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(HistogramTest, MergePopulatedIntoEmptyCopies) {
  Histogram a;
  Histogram b;
  for (uint64_t v : {100u, 200u}) b.Add(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 200u);
  EXPECT_DOUBLE_EQ(a.Mean(), 150.0);
  EXPECT_NEAR(a.StdDev(), 50.0, 1e-9);
}

TEST(HistogramTest, SelfMergeDoublesEveryMoment) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  double mean = h.Mean();
  double stddev = h.StdDev();
  h.Merge(h);
  EXPECT_EQ(h.count(), 200u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), mean);
  EXPECT_NEAR(h.StdDev(), stddev, 1e-6);
}

TEST(HistogramTest, MergeAfterClearMatchesFresh) {
  Histogram a;
  a.Add(1 << 20);  // large value: min/max must not leak through Clear
  a.Clear();
  Histogram b;
  b.Add(50);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 50u);
  EXPECT_EQ(a.max(), 50u);
}

TEST(HistogramTest, NonEmptyBucketsCoverAllCounts) {
  Histogram h;
  for (uint64_t v : {1u, 1u, 17u, 300u, 300u, 70000u}) h.Add(v);
  auto buckets = h.NonEmptyBuckets();
  ASSERT_FALSE(buckets.empty());
  uint64_t total = 0;
  uint64_t prev_bound = 0;
  for (const auto& b : buckets) {
    EXPECT_GT(b.count, 0u);
    EXPECT_GT(b.upper_bound, prev_bound);  // strictly increasing
    prev_bound = b.upper_bound;
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
  // Inclusive upper bounds: every observed value fits under the last one.
  EXPECT_GE(buckets.back().upper_bound, h.max());
  EXPECT_TRUE(Histogram().NonEmptyBuckets().empty());
}

TEST(HistogramTest, ToJsonCarriesSummaryFields) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(64);
  std::string json = h.ToJson();
  for (const char* key :
       {"\"count\":10", "\"min\":64", "\"max\":64", "\"mean\":", "\"stddev\":",
        "\"p50\":", "\"p90\":", "\"p99\":", "\"p999\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

}  // namespace
}  // namespace gids
