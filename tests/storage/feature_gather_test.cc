#include "storage/feature_gather.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "graph/feature_store.h"
#include "storage/bam_array.h"
#include "storage/software_cache.h"

namespace gids::storage {
namespace {

struct GatherRig {
  explicit GatherRig(uint32_t dim, graph::NodeId nodes = 100,
                     uint64_t cache_bytes = 16 * 4096,
                     const HotNodeBuffer* hot = nullptr)
      : fs(nodes, dim) {
    auto dev = std::make_unique<FunctionBlockDevice>(
        fs.num_pages(), fs.page_bytes(),
        [this](uint64_t lba, std::span<std::byte> out) {
          fs.FillPage(lba, out);
        });
    array = std::make_unique<StorageArray>(std::move(dev),
                                           sim::SsdSpec::IntelOptane(), 1);
    cache = std::make_unique<SoftwareCache>(cache_bytes, fs.page_bytes());
    bam = std::make_unique<BamArray>(array.get(), cache.get());
    gatherer = std::make_unique<FeatureGatherer>(&fs, bam.get(), hot);
  }

  graph::FeatureStore fs;
  std::unique_ptr<StorageArray> array;
  std::unique_ptr<SoftwareCache> cache;
  std::unique_ptr<BamArray> bam;
  std::unique_ptr<FeatureGatherer> gatherer;
};

// A trivial hot buffer pinning even-numbered nodes.
class EvenHotBuffer : public HotNodeBuffer {
 public:
  explicit EvenHotBuffer(const graph::FeatureStore* fs) : fs_(fs) {}
  bool Contains(graph::NodeId node) const override { return node % 2 == 0; }
  void Fill(graph::NodeId node, std::span<float> out) const override {
    fs_->FillFeature(node, out);
  }

 private:
  const graph::FeatureStore* fs_;
};

class GatherFidelityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GatherFidelityTest, BytesMatchGroundTruth) {
  // End-to-end byte fidelity: features gathered through device + cache
  // must equal the FeatureStore's ground truth for every layout class.
  GatherRig rig(GetParam());
  std::vector<graph::NodeId> nodes = {0, 17, 3, 17, 99, 50, 1};
  FeatureGatherCounts counts;
  auto gathered = rig.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(gathered.ok());
  const uint32_t dim = rig.fs.feature_dim();
  std::vector<float> expected(dim);
  for (size_t i = 0; i < nodes.size(); ++i) {
    rig.fs.FillFeature(nodes[i], expected);
    for (uint32_t j = 0; j < dim; ++j) {
      ASSERT_EQ((*gathered)[i * dim + j], expected[j])
          << "node " << nodes[i] << " elem " << j;
    }
  }
  EXPECT_EQ(counts.nodes, nodes.size());
}

INSTANTIATE_TEST_SUITE_P(PaperDims, GatherFidelityTest,
                         ::testing::Values(128, 768, 1024));

TEST(FeatureGatherTest, RepeatGatherHitsCache) {
  GatherRig rig(1024);
  std::vector<graph::NodeId> nodes = {1, 2, 3, 4};
  FeatureGatherCounts first;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &first).ok());
  EXPECT_EQ(first.storage_reads, 4u);
  EXPECT_EQ(first.gpu_cache_hits, 0u);
  FeatureGatherCounts second;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &second).ok());
  EXPECT_EQ(second.storage_reads, 0u);
  EXPECT_EQ(second.gpu_cache_hits, 4u);
}

TEST(FeatureGatherTest, SubPageNodesShareAPage) {
  // dim 128: 8 nodes per page; gathering 8 page-mates costs one storage
  // read plus seven cache hits.
  GatherRig rig(128);
  std::vector<graph::NodeId> nodes(8);
  std::iota(nodes.begin(), nodes.end(), 0u);
  FeatureGatherCounts counts;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &counts).ok());
  EXPECT_EQ(counts.storage_reads, 1u);
  EXPECT_EQ(counts.gpu_cache_hits, 7u);
}

TEST(FeatureGatherTest, PageSpanningNodesCostMore) {
  // dim 768: pages-per-node = 1.5, so 4 aligned nodes touch 6 pages.
  GatherRig rig(768);
  std::vector<graph::NodeId> nodes = {0, 1, 2, 3};
  FeatureGatherCounts counts;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &counts).ok());
  EXPECT_EQ(counts.total_page_requests(), 6u);
}

TEST(FeatureGatherTest, HotBufferRedirects) {
  graph::FeatureStore probe(100, 1024);
  EvenHotBuffer hot(&probe);
  GatherRig rig(1024, 100, 16 * 4096, &hot);
  std::vector<graph::NodeId> nodes = {0, 1, 2, 3};
  FeatureGatherCounts counts;
  auto gathered = rig.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(gathered.ok());
  EXPECT_EQ(counts.cpu_buffer_hits, 2u);
  EXPECT_EQ(counts.storage_reads, 2u);
  // Hot-buffer bytes are also correct.
  std::vector<float> expected(1024);
  rig.fs.FillFeature(0, expected);
  for (uint32_t j = 0; j < 1024; ++j) {
    ASSERT_EQ((*gathered)[j], expected[j]);
  }
}

TEST(FeatureGatherTest, HotNodesNeverPolluteGpuCache) {
  graph::FeatureStore probe(100, 1024);
  EvenHotBuffer hot(&probe);
  GatherRig rig(1024, 100, 16 * 4096, &hot);
  std::vector<graph::NodeId> nodes = {0, 2, 4, 6};
  FeatureGatherCounts counts;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &counts).ok());
  EXPECT_EQ(rig.cache->resident_lines(), 0u);
}

TEST(FeatureGatherTest, OutOfRangeNode) {
  GatherRig rig(128);
  std::vector<graph::NodeId> nodes = {1000};
  FeatureGatherCounts counts;
  std::vector<float> out(128);
  EXPECT_EQ(rig.gatherer->Gather(nodes, std::span<float>(out), &counts).code(),
            StatusCode::kOutOfRange);
}

TEST(FeatureGatherTest, SmallOutputBufferRejected) {
  GatherRig rig(128);
  std::vector<graph::NodeId> nodes = {1, 2};
  std::vector<float> out(128);  // room for one node only
  FeatureGatherCounts counts;
  EXPECT_EQ(rig.gatherer->Gather(nodes, std::span<float>(out), &counts).code(),
            StatusCode::kInvalidArgument);
}

TEST(FeatureGatherTest, CountsOnlyMatchesFullGather) {
  // The counting-mode path must make identical traffic decisions.
  GatherRig full_rig(1024, 200, 8 * 4096);
  GatherRig count_rig(1024, 200, 8 * 4096);
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<graph::NodeId> nodes;
    for (int i = 0; i < 16; ++i) {
      nodes.push_back(static_cast<graph::NodeId>(rng.UniformInt(200)));
    }
    FeatureGatherCounts a;
    FeatureGatherCounts b;
    ASSERT_TRUE(full_rig.gatherer->Gather(nodes, &a).ok());
    ASSERT_TRUE(count_rig.gatherer->GatherCountsOnly(nodes, &b).ok());
    ASSERT_EQ(a.gpu_cache_hits, b.gpu_cache_hits) << "round " << round;
    ASSERT_EQ(a.storage_reads, b.storage_reads) << "round " << round;
  }
}

// --- Page coalescing (DESIGN.md §10). ---------------------------------

TEST(CoalescingGatherTest, RepeatedNodeServedOnce) {
  // dim 1024: node i occupies exactly page i. The same node three times
  // costs one storage round-trip; the two duplicates are folded away, not
  // served as cache hits.
  GatherRig rig(1024);
  rig.gatherer->set_coalesce_pages(true);
  std::vector<graph::NodeId> nodes = {5, 5, 5};
  FeatureGatherCounts counts;
  auto out = rig.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(counts.storage_reads, 1u);
  EXPECT_EQ(counts.gpu_cache_hits, 0u);
  EXPECT_EQ(counts.coalesced_requests, 2u);
  EXPECT_EQ(counts.distinct_pages, 1u);
  EXPECT_EQ(counts.total_page_requests(), 3u);
  EXPECT_EQ(counts.serviced_page_requests(), 1u);
  // The one payload fans out to every requesting row.
  std::vector<float> expected(1024);
  rig.fs.FillFeature(5, expected);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (uint32_t j = 0; j < 1024; ++j) {
      ASSERT_EQ((*out)[i * 1024 + j], expected[j]) << "row " << i;
    }
  }
}

TEST(CoalescingGatherTest, PageSpanningRowsShareBoundaryPages) {
  // dim 768: nodes 0..3 generate 6 page accesses over 3 distinct pages
  // (each interior page is shared by two adjacent rows). Coalescing must
  // service each page once and still fill both rows' slices correctly.
  GatherRig rig(768);
  rig.gatherer->set_coalesce_pages(true);
  std::vector<graph::NodeId> nodes = {0, 1, 2, 3};
  FeatureGatherCounts counts;
  auto out = rig.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(counts.total_page_requests(), 6u);
  EXPECT_EQ(counts.serviced_page_requests(), 3u);
  EXPECT_EQ(counts.coalesced_requests, 3u);
  EXPECT_EQ(counts.distinct_pages, 3u);

  // Byte-identical to the uncoalesced gather of the same batch.
  GatherRig plain(768);
  FeatureGatherCounts pc;
  auto pout = plain.gatherer->Gather(nodes, &pc);
  ASSERT_TRUE(pout.ok());
  EXPECT_EQ(*out, *pout);
  EXPECT_EQ(pc.total_page_requests(), counts.total_page_requests());
  EXPECT_EQ(pc.coalesced_requests, 0u);
}

TEST(CoalescingGatherTest, OffByDefaultAndCountersStayZero) {
  GatherRig rig(128);
  EXPECT_FALSE(rig.gatherer->coalesce_pages());
  std::vector<graph::NodeId> nodes = {0, 1, 0, 9, 9, 9};
  FeatureGatherCounts counts;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &counts).ok());
  EXPECT_EQ(counts.coalesced_requests, 0u);
  EXPECT_EQ(counts.distinct_pages, 0u);
  EXPECT_EQ(counts.total_page_requests(), counts.serviced_page_requests());
}

TEST(CoalescingGatherTest, CountsOnlyMatchesFullGather) {
  GatherRig full_rig(1024, 200, 8 * 4096);
  GatherRig count_rig(1024, 200, 8 * 4096);
  full_rig.gatherer->set_coalesce_pages(true);
  count_rig.gatherer->set_coalesce_pages(true);
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    std::vector<graph::NodeId> nodes;
    for (int i = 0; i < 16; ++i) {
      nodes.push_back(static_cast<graph::NodeId>(rng.UniformInt(200)));
    }
    FeatureGatherCounts a;
    FeatureGatherCounts b;
    ASSERT_TRUE(full_rig.gatherer->Gather(nodes, &a).ok());
    ASSERT_TRUE(count_rig.gatherer->GatherCountsOnly(nodes, &b).ok());
    ASSERT_EQ(a.gpu_cache_hits, b.gpu_cache_hits) << "round " << round;
    ASSERT_EQ(a.storage_reads, b.storage_reads) << "round " << round;
    ASSERT_EQ(a.coalesced_requests, b.coalesced_requests) << "round " << round;
    ASSERT_EQ(a.distinct_pages, b.distinct_pages) << "round " << round;
  }
}

TEST(GatherGroupTest, MatchesPerSliceGathersWhenCoalescingOff) {
  // With coalescing off, one grouped call over two slices is bit-identical
  // (bytes and per-slice counts) to two sequential Gather calls.
  GatherRig grouped(1024, 100, 8 * 4096);
  GatherRig sequential(1024, 100, 8 * 4096);
  std::vector<graph::NodeId> first = {3, 7, 3, 50};
  std::vector<graph::NodeId> second = {7, 12, 3};
  const uint32_t dim = 1024;

  std::vector<float> out_a(first.size() * dim);
  std::vector<float> out_b(second.size() * dim);
  std::vector<GatherSlice> slices = {{first, std::span<float>(out_a)},
                                     {second, std::span<float>(out_b)}};
  std::vector<FeatureGatherCounts> per_slice(2);
  ASSERT_TRUE(grouped.gatherer->GatherGroup(slices, per_slice).ok());

  FeatureGatherCounts ca, cb;
  auto ref_a = sequential.gatherer->Gather(first, &ca);
  auto ref_b = sequential.gatherer->Gather(second, &cb);
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(ref_b.ok());
  EXPECT_EQ(out_a, *ref_a);
  EXPECT_EQ(out_b, *ref_b);
  EXPECT_EQ(per_slice[0].storage_reads, ca.storage_reads);
  EXPECT_EQ(per_slice[0].gpu_cache_hits, ca.gpu_cache_hits);
  EXPECT_EQ(per_slice[1].storage_reads, cb.storage_reads);
  EXPECT_EQ(per_slice[1].gpu_cache_hits, cb.gpu_cache_hits);
  EXPECT_EQ(per_slice[0].nodes, first.size());
  EXPECT_EQ(per_slice[1].nodes, second.size());
}

TEST(GatherGroupTest, CoalescesAcrossSlices) {
  // The accumulator-merged case: the same node in two merged iterations
  // costs one round-trip. The serviced read is charged to the slice of the
  // first requester; the later slice books a coalesced request.
  GatherRig rig(1024);
  rig.gatherer->set_coalesce_pages(true);
  std::vector<graph::NodeId> first = {7};
  std::vector<graph::NodeId> second = {7};
  std::vector<float> out_a(1024);
  std::vector<float> out_b(1024);
  std::vector<GatherSlice> slices = {{first, std::span<float>(out_a)},
                                     {second, std::span<float>(out_b)}};
  std::vector<FeatureGatherCounts> per_slice(2);
  ASSERT_TRUE(rig.gatherer->GatherGroup(slices, per_slice).ok());

  EXPECT_EQ(per_slice[0].storage_reads, 1u);
  EXPECT_EQ(per_slice[0].distinct_pages, 1u);
  EXPECT_EQ(per_slice[0].coalesced_requests, 0u);
  EXPECT_EQ(per_slice[1].storage_reads, 0u);
  EXPECT_EQ(per_slice[1].gpu_cache_hits, 0u);
  EXPECT_EQ(per_slice[1].coalesced_requests, 1u);
  EXPECT_EQ(rig.array->total_reads(), 1u);

  std::vector<float> expected(1024);
  rig.fs.FillFeature(7, expected);
  EXPECT_EQ(out_a, expected);
  EXPECT_EQ(out_b, expected);
}

TEST(GatherGroupTest, RejectsMixedModesAndBadSizes) {
  GatherRig rig(128);
  std::vector<graph::NodeId> nodes = {1, 2};
  std::vector<float> out(2 * 128);
  std::vector<GatherSlice> mixed = {{nodes, std::span<float>(out)},
                                    {nodes, {}}};
  std::vector<FeatureGatherCounts> per_slice(2);
  EXPECT_EQ(rig.gatherer->GatherGroup(mixed, per_slice).code(),
            StatusCode::kInvalidArgument);

  std::vector<float> small(128);  // room for one of the two nodes
  std::vector<GatherSlice> short_buf = {{nodes, std::span<float>(small)}};
  std::vector<FeatureGatherCounts> one(1);
  EXPECT_EQ(rig.gatherer->GatherGroup(short_buf, one).code(),
            StatusCode::kInvalidArgument);

  std::vector<GatherSlice> ok_slices = {{nodes, std::span<float>(out)}};
  EXPECT_EQ(rig.gatherer->GatherGroup(ok_slices, per_slice).code(),
            StatusCode::kInvalidArgument);  // counts span size mismatch
}

TEST(BamArrayTest, CachelessArrayAlwaysReadsStorage) {
  graph::FeatureStore fs(10, 1024);
  auto dev = std::make_unique<FunctionBlockDevice>(
      fs.num_pages(), fs.page_bytes(),
      [&fs](uint64_t lba, std::span<std::byte> out) { fs.FillPage(lba, out); });
  StorageArray arr(std::move(dev), sim::SsdSpec::IntelOptane(), 1);
  BamArray bam(&arr, nullptr);
  std::vector<std::byte> out(4096);
  GatherCounts counts;
  ASSERT_TRUE(bam.ReadPage(3, out, &counts).ok());
  ASSERT_TRUE(bam.ReadPage(3, out, &counts).ok());
  EXPECT_EQ(counts.storage_reads, 2u);
  EXPECT_EQ(counts.cache_hits, 0u);
}

}  // namespace
}  // namespace gids::storage
