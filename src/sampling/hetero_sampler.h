#ifndef GIDS_SAMPLING_HETERO_SAMPLER_H_
#define GIDS_SAMPLING_HETERO_SAMPLER_H_

#include <vector>

#include "common/random.h"
#include "graph/csc_graph.h"
#include "graph/dataset.h"
#include "sampling/sampler.h"

namespace gids::sampling {

/// Neighborhood sampling for heterogeneous graphs (IGBH-Full, MAG240M):
/// the fan-out applied when expanding a destination node depends on that
/// node's type, mirroring DGL's per-edge-type fanout dicts. Node types
/// are the contiguous id ranges of graph::NodeTypeInfo (paper/author/
/// institute/fos in the IGBH proxy).
struct HeteroSamplerOptions {
  /// fanouts[layer][type_index]: maximum sampled in-neighbors of a
  /// destination node of that type at that hop (seed-hop first). Every
  /// inner vector must have one entry per node type.
  std::vector<std::vector<int>> fanouts;
};

class HeteroNeighborSampler : public Sampler {
 public:
  HeteroNeighborSampler(const graph::CscGraph* graph,
                        std::vector<graph::NodeTypeInfo> node_types,
                        HeteroSamplerOptions options, uint64_t seed = 0x4e7e);

  std::string_view name() const override { return "hetero-neighborhood"; }
  int num_layers() const override {
    return static_cast<int>(options_.fanouts.size());
  }

  void SampleAtInto(std::span<const graph::NodeId> seeds, uint64_t iteration,
                    MiniBatch* out) override;

  /// Index into node_types for a node id (by range lookup).
  size_t TypeOf(graph::NodeId v) const;

 private:
  const graph::CscGraph* graph_;
  std::vector<graph::NodeTypeInfo> node_types_;
  HeteroSamplerOptions options_;
  uint64_t seed_;
};

}  // namespace gids::sampling

#endif  // GIDS_SAMPLING_HETERO_SAMPLER_H_
