// Host data-preparation parallelism sweep: runs the GIDS loader over the
// same workload with host_threads in {1, 2, 4, 8} and reports the host
// wall-clock time of the measured phase plus the speedup over the serial
// configuration.
//
// This is a *host* benchmark, not a paper figure: the paper's pipeline is
// GPU-initiated, but this repo's functional proxy prepares every
// iteration on the CPU, and the sharded cache + chunked gather +
// per-iteration RNG streams are designed so the prepared batches are
// bit-identical at every thread count. The bench asserts that invariant
// (a fingerprint over every mini-batch and its stats must match the
// serial run) before reporting any timing, so a speedup can never come
// from doing different work.
//
// Speedups scale with the cores actually available; on a single-core
// machine the sweep degenerates to ~1x, which is reported honestly.
//
// The sweep also enforces the zero-allocation hot-path contract
// (DESIGN.md §11): consumed batches are recycled, the workspace pool is
// prewarmed after warm-up, and every row reports `steady_state_allocs` —
// the pool-allocation delta across the measured phase — which
// tools/bench_compare.py requires to be exactly 0.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/common.h"
#include "common/check.h"
#include "common/workspace_pool.h"

namespace gids::bench {
namespace {

// 64-bit FNV-1a over the full content of a prepared iteration: seeds,
// every block's node/edge arrays, and the virtual-time stats. Any
// divergence between thread counts — ordering, sampling, cache behaviour
// — lands in this hash.
class Fingerprint {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }

  void MixBatch(const loaders::LoaderBatch& lb) {
    for (auto s : lb.batch.seeds) Mix(s);
    for (const auto& block : lb.batch.blocks) {
      Mix(block.num_dst);
      for (auto n : block.src_nodes) Mix(n);
      for (auto e : block.edge_src) Mix(e);
      for (auto e : block.edge_dst) Mix(e);
    }
    const auto& st = lb.stats;
    Mix(static_cast<uint64_t>(st.sampling_ns));
    Mix(static_cast<uint64_t>(st.aggregation_ns));
    Mix(static_cast<uint64_t>(st.e2e_ns));
    Mix(st.gather.nodes);
    Mix(st.gather.cpu_buffer_hits);
    Mix(st.gather.gpu_cache_hits);
    Mix(st.gather.storage_reads);
    Mix(st.sampled_edges);
    Mix(st.input_nodes);
    Mix(st.merged_group);
  }

  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

struct SweepPoint {
  uint32_t host_threads;
  double wall_ms;
  uint64_t fingerprint;
  uint64_t steady_state_allocs;
};

SweepPoint RunPoint(const ProxyConfig& cfg, uint32_t host_threads,
                    uint64_t warmup, uint64_t measure) {
  // A fresh rig per point: the sampler and seed iterator are stateful, so
  // every thread count must start from the same initial state for the
  // fingerprints to be comparable.
  Rig rig = BuildRig(cfg);
  core::GidsOptions opts;
  opts.host_threads = host_threads;
  auto loader = MakeLoader(LoaderKind::kGids, rig, &opts);

  // Warm-up (outside the timed window, like RunProtocol) still feeds the
  // fingerprint: cache state after warm-up must match across thread
  // counts for the measured phase to be comparable at all. Consumed
  // batches are recycled back to the loader, and the workspace pool is
  // prewarmed after warm-up, so the measured phase exercises the
  // zero-allocation hot path (DESIGN.md §11); Recycle() is semantics-free,
  // so the fingerprints are unaffected.
  Fingerprint fp;
  for (uint64_t i = 0; i < warmup; ++i) {
    auto lb = loader->Next();
    GIDS_CHECK(lb.ok());
    fp.MixBatch(*lb);
    loader->Recycle(std::move(*lb));
  }
  WorkspacePool& ws_pool = WorkspacePool::Default();
  ws_pool.Prewarm();
  const uint64_t allocs_before = ws_pool.allocs_total();
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < measure; ++i) {
    auto lb = loader->Next();
    GIDS_CHECK(lb.ok());
    fp.MixBatch(*lb);
    loader->Recycle(std::move(*lb));
  }
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return SweepPoint{host_threads, wall_ms, fp.value(),
                    ws_pool.allocs_total() - allocs_before};
}

void BM_HostParallelism(benchmark::State& state) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbSmall();
  cfg.scale = 0.05;
  cfg.memory_scale = 0.05;
  cfg.batch_size = 1024;
  cfg.fanouts = {10, 5, 5};

  constexpr uint64_t kWarmup = 4;
  constexpr uint64_t kMeasure = 24;
  const std::vector<uint32_t> kThreadCounts = {1, 2, 4, 8};

  std::vector<SweepPoint> points;
  for (auto _ : state) {
    points.clear();
    for (uint32_t t : kThreadCounts) {
      points.push_back(RunPoint(cfg, t, kWarmup, kMeasure));
    }
  }

  // Determinism gate: every thread count must have produced bit-identical
  // batches and stats. A timing report over divergent work is meaningless.
  for (const SweepPoint& p : points) {
    GIDS_CHECK(p.fingerprint == points.front().fingerprint);
  }

  const double serial_ms = points.front().wall_ms;
  for (const SweepPoint& p : points) {
    double speedup = p.wall_ms > 0 ? serial_ms / p.wall_ms : 0.0;
    std::string label =
        "GIDS data prep, " + std::to_string(p.host_threads) + " threads";
    state.counters["t" + std::to_string(p.host_threads) + "_ms"] = p.wall_ms;
    ReportRow("HOSTPAR", label + " wall", p.wall_ms / kMeasure, 0, "ms/iter",
              p.wall_ms, static_cast<int>(p.host_threads), -1.0,
              static_cast<int64_t>(p.steady_state_allocs));
    ReportRow("HOSTPAR", label + " speedup vs serial", speedup, 0,
              "x (bounded by available cores)", p.wall_ms,
              static_cast<int>(p.host_threads));
    // Deterministic twin of the steady_state_allocs field above, baselined
    // at 0 in bench/baselines/seed.json so the zero-allocation contract is
    // also covered by the lost-row check: any allocation during the
    // measured phase — or the row disappearing — fails the gate.
    ReportRow("HOSTPAR", label + " steady-state allocs",
              static_cast<double>(p.steady_state_allocs), 0, "allocs", -1.0,
              static_cast<int>(p.host_threads), -1.0,
              static_cast<int64_t>(p.steady_state_allocs));
  }
  ReportRow("HOSTPAR", "batches bit-identical across thread counts", 1, 0,
            "bool");
}

BENCHMARK(BM_HostParallelism)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
