#ifndef GIDS_GRAPH_FEATURE_STORE_H_
#define GIDS_GRAPH_FEATURE_STORE_H_

#include <cstdint>
#include <span>

#include "common/check.h"
#include "common/status.h"
#include "graph/types.h"

namespace gids::graph {

/// Describes how the N x D float32 node-feature matrix is laid out on
/// storage: features are stored back-to-back, and storage is accessed in
/// fixed-size pages (the BaM cache-line granularity, 4 KiB by default).
///
/// A node's feature vector may occupy a fraction of a page (dim 128 ->
/// 512 B, 8 nodes/page, as in ogbn-papers100M), exactly one page (dim
/// 1024, as in IGB), or span pages (dim 768 -> 3 KiB, as in MAG240M).
///
/// Feature *contents* are synthetic and deterministic: element j of node v
/// is a pure function of (v, j), so both the functional block device and
/// in-memory verifiers regenerate identical bytes (see ExpectedElement).
class FeatureStore {
 public:
  FeatureStore(NodeId num_nodes, uint32_t feature_dim,
               uint32_t page_bytes = 4096, uint64_t content_seed = 0xfea7)
      : num_nodes_(num_nodes),
        feature_dim_(feature_dim),
        page_bytes_(page_bytes),
        content_seed_(content_seed) {
    GIDS_CHECK(feature_dim > 0);
    GIDS_CHECK(page_bytes > 0 && page_bytes % sizeof(float) == 0);
  }

  NodeId num_nodes() const { return num_nodes_; }
  uint32_t feature_dim() const { return feature_dim_; }
  uint32_t page_bytes() const { return page_bytes_; }
  uint64_t content_seed() const { return content_seed_; }

  uint64_t feature_bytes_per_node() const {
    return static_cast<uint64_t>(feature_dim_) * sizeof(float);
  }
  uint64_t total_bytes() const {
    return feature_bytes_per_node() * num_nodes_;
  }
  uint64_t num_pages() const {
    return (total_bytes() + page_bytes_ - 1) / page_bytes_;
  }

  /// Byte offset of node v's feature vector within the flat feature file.
  uint64_t ByteOffset(NodeId v) const {
    GIDS_DCHECK(v < num_nodes_);
    return static_cast<uint64_t>(v) * feature_bytes_per_node();
  }

  /// First and last (inclusive) page touched by node v's feature vector.
  struct PageRange {
    uint64_t first;
    uint64_t last;
    uint64_t count() const { return last - first + 1; }
  };
  PageRange PagesFor(NodeId v) const {
    uint64_t begin = ByteOffset(v);
    uint64_t end = begin + feature_bytes_per_node() - 1;
    return PageRange{begin / page_bytes_, end / page_bytes_};
  }

  /// Average pages touched per gathered node (>= 1; the I/O amplification
  /// factor for sub-page and page-spanning feature dims).
  double PagesPerNode() const;

  /// Deterministic synthetic value of feature element (v, j), in
  /// [-0.5, 0.5).
  float ExpectedElement(NodeId v, uint32_t j) const;

  /// Versioned variant for the journaled write path (FAULTS.md
  /// "Durability & failover"): the synthetic value of element (v, j)
  /// after `version` feature updates of node v. Version 0 is
  /// ExpectedElement exactly; higher versions fold the version into the
  /// mix, so every update writes a deterministic, distinct row that any
  /// verifier can regenerate from (v, version) alone.
  float ExpectedElementAt(NodeId v, uint32_t j, uint64_t version) const;

  /// Writes node v's full feature vector into `out` (size >= feature_dim).
  void FillFeature(NodeId v, std::span<float> out) const;

  /// Versioned FillFeature (see ExpectedElementAt).
  void FillFeatureAt(NodeId v, uint64_t version, std::span<float> out) const;

  /// Regenerates the raw bytes of storage page `page` into `out`
  /// (size == page_bytes). Bytes past the end of the feature file are
  /// zero-filled. This is the ground truth the synthetic block device
  /// serves, byte-identical to FillFeature's view.
  void FillPage(uint64_t page, std::span<std::byte> out) const;

 private:
  NodeId num_nodes_;
  uint32_t feature_dim_;
  uint32_t page_bytes_;
  uint64_t content_seed_;
};

}  // namespace gids::graph

#endif  // GIDS_GRAPH_FEATURE_STORE_H_
