# Empty dependencies file for bench_fig12_window_cache.
# This may be replaced when dependencies are built.
