file(REMOVE_RECURSE
  "CMakeFiles/gids_gnn.dir/gat.cc.o"
  "CMakeFiles/gids_gnn.dir/gat.cc.o.d"
  "CMakeFiles/gids_gnn.dir/gcn.cc.o"
  "CMakeFiles/gids_gnn.dir/gcn.cc.o.d"
  "CMakeFiles/gids_gnn.dir/graphsage_model.cc.o"
  "CMakeFiles/gids_gnn.dir/graphsage_model.cc.o.d"
  "CMakeFiles/gids_gnn.dir/loss.cc.o"
  "CMakeFiles/gids_gnn.dir/loss.cc.o.d"
  "CMakeFiles/gids_gnn.dir/optimizer.cc.o"
  "CMakeFiles/gids_gnn.dir/optimizer.cc.o.d"
  "CMakeFiles/gids_gnn.dir/sage_conv.cc.o"
  "CMakeFiles/gids_gnn.dir/sage_conv.cc.o.d"
  "CMakeFiles/gids_gnn.dir/tensor.cc.o"
  "CMakeFiles/gids_gnn.dir/tensor.cc.o.d"
  "libgids_gnn.a"
  "libgids_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gids_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
