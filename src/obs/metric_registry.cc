#include "obs/metric_registry.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "obs/json.h"

namespace gids::obs {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

Labels Sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// name{k="v",...} — the Prometheus series syntax, also used as the
/// instance key in JSON output.
std::string SeriesName(const std::string& name, const Labels& labels,
                       const std::string& extra_label = "") {
  if (labels.empty() && extra_label.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + JsonEscape(v) + "\"";
  }
  if (!extra_label.empty()) {
    if (!first) out += ",";
    out += extra_label;
  }
  out += "}";
  return out;
}

}  // namespace

MetricRegistry::Entry* MetricRegistry::FindOrCreateLocked(
    const std::string& name, Labels labels, MetricType type) {
  labels = Sorted(std::move(labels));
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      GIDS_CHECK(e->type == type);  // one name+labels, one type
      return e.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->type = type;
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricRegistry::GetCounter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, std::move(labels), MetricType::kCounter);
  GIDS_CHECK(e->callback == nullptr);
  if (e->counter == nullptr) e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, std::move(labels), MetricType::kGauge);
  GIDS_CHECK(e->callback == nullptr);
  if (e->gauge == nullptr) e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

HistogramMetric* MetricRegistry::GetHistogram(const std::string& name,
                                              Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e =
      FindOrCreateLocked(name, std::move(labels), MetricType::kHistogram);
  if (e->histogram == nullptr) {
    e->histogram = std::make_unique<HistogramMetric>();
  }
  return e->histogram.get();
}

void MetricRegistry::RegisterCallback(const std::string& name, Labels labels,
                                      MetricType type,
                                      std::function<double()> read) {
  GIDS_CHECK(type != MetricType::kHistogram);
  GIDS_CHECK(read != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, std::move(labels), type);
  GIDS_CHECK(e->counter == nullptr && e->gauge == nullptr);
  e->callback = std::move(read);
  e->frozen = false;  // a new component re-binds a previously frozen entry
}

void MetricRegistry::UnbindAll() { UnbindAll(Labels{}); }

void MetricRegistry::UnbindAll(const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->callback == nullptr) continue;
    bool match = true;
    for (const auto& want : labels) {
      if (std::find(e->labels.begin(), e->labels.end(), want) ==
          e->labels.end()) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    e->frozen_value = e->callback();
    e->frozen = true;
    e->callback = nullptr;
  }
}

void MetricRegistry::UnbindNamed(const std::string& name,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->callback == nullptr || e->name != name) continue;
    bool match = true;
    for (const auto& want : labels) {
      if (std::find(e->labels.begin(), e->labels.end(), want) ==
          e->labels.end()) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    e->frozen_value = e->callback();
    e->frozen = true;
    e->callback = nullptr;
  }
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot s;
    s.name = e->name;
    s.labels = e->labels;
    s.type = e->type;
    if (e->callback != nullptr) {
      s.value = e->callback();
    } else if (e->frozen) {
      s.value = e->frozen_value;
    } else if (e->counter != nullptr) {
      s.value = static_cast<double>(e->counter->value());
    } else if (e->gauge != nullptr) {
      s.value = e->gauge->value();
    } else if (e->histogram != nullptr) {
      s.histogram = e->histogram->snapshot();
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return out;
}

std::string MetricRegistry::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& s : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"type\":\"";
    out += MetricTypeName(s.type);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out += ",";
      first_label = false;
      out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "}";
    if (s.type == MetricType::kHistogram) {
      out += ",\"histogram\":" + s.histogram.ToJson();
    } else {
      out += ",\"value\":" + JsonNumber(s.value);
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string MetricRegistry::ToPrometheusText(bool cumulative_buckets) const {
  std::string out;
  std::string last_name;
  for (const MetricSnapshot& s : Snapshot()) {
    if (s.name != last_name) {
      out += "# TYPE " + s.name + " ";
      out += s.type == MetricType::kHistogram
                 ? (cumulative_buckets ? "histogram" : "summary")
                 : MetricTypeName(s.type);
      out += "\n";
      last_name = s.name;
    }
    if (s.type != MetricType::kHistogram) {
      out += SeriesName(s.name, s.labels) + " " + JsonNumber(s.value) + "\n";
      continue;
    }
    const Histogram& h = s.histogram;
    if (cumulative_buckets) {
      // Native Prometheus histogram exposition: cumulative counts with
      // inclusive upper bounds, one series per non-empty log bucket (the
      // cumulative sums make the skipped empty buckets redundant).
      uint64_t cumulative = 0;
      for (const Histogram::Bucket& b : h.NonEmptyBuckets()) {
        cumulative += b.count;
        out += SeriesName(
                   s.name + "_bucket", s.labels,
                   "le=\"" +
                       JsonNumber(static_cast<double>(b.upper_bound)) +
                       "\"") +
               " " + JsonNumber(static_cast<double>(cumulative)) + "\n";
      }
      out += SeriesName(s.name + "_bucket", s.labels, "le=\"+Inf\"") + " " +
             JsonNumber(static_cast<double>(h.count())) + "\n";
    } else {
      for (double q : {0.5, 0.9, 0.99, 0.999}) {
        out += SeriesName(s.name, s.labels,
                          "quantile=\"" + JsonNumber(q) + "\"") +
               " " + JsonNumber(h.Percentile(q)) + "\n";
      }
    }
    out += SeriesName(s.name + "_sum", s.labels) + " " +
           JsonNumber(h.Mean() * static_cast<double>(h.count())) + "\n";
    out += SeriesName(s.name + "_count", s.labels) + " " +
           JsonNumber(static_cast<double>(h.count())) + "\n";
  }
  return out;
}

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

Status MetricRegistry::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

Status MetricRegistry::WritePrometheusText(const std::string& path,
                                           bool cumulative_buckets) const {
  return WriteFile(path, ToPrometheusText(cumulative_buckets));
}

}  // namespace gids::obs
