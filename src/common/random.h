#ifndef GIDS_COMMON_RANDOM_H_
#define GIDS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace gids {

/// SplitMix64: used for seeding and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: the library-wide deterministic PRNG. All GIDS randomness
/// (graph generation, sampling, eviction) flows through seeded instances of
/// this class so experiments are reproducible bit-for-bit.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9f0c1e2d3b4a5968ull) { Seed(seed); }

  /// Re-seeds the generator state from a single 64-bit seed via SplitMix64.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound) {
    GIDS_DCHECK(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    GIDS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (uncached; fine for our use).
  double Normal();

  /// Exponential with mean 1 via inverse CDF (-log(1 - u)); scale by the
  /// desired mean at the call site. Always finite and > 0.
  double Exponential();

  /// Poisson-distributed count with the given mean (> 0). Knuth's
  /// product-of-uniforms method, O(mean) draws — fine for the per-step
  /// arrival counts (mean of a few) the traffic generator needs.
  uint64_t Poisson(double mean);

  /// Forks an independently-seeded child generator; children with distinct
  /// `stream` values produce decorrelated sequences.
  Rng Fork(uint64_t stream) const {
    SplitMix64 sm(state_[0] ^ (stream * 0x9e3779b97f4a7c15ull) ^ state_[3]);
    return Rng(sm.Next());
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// The RNG for iteration `iteration` of a deterministic stream rooted at
/// `seed`: each iteration gets an independent, reproducible generator, so
/// work items (e.g. the sampler calls for accumulator-merged future
/// iterations) can run concurrently and out of order without changing any
/// iteration's random sequence.
inline Rng IterationRng(uint64_t seed, uint64_t iteration) {
  return Rng(seed ^ SplitMix64(iteration).Next());
}

/// Fisher-Yates shuffle of `items` using `rng`.
template <typename T>
void Shuffle(std::vector<T>& items, Rng& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    size_t j = rng.UniformInt(i);
    std::swap(items[i - 1], items[j]);
  }
}

/// Samples `k` distinct values uniformly from [0, n) without replacement
/// into `out` (cleared first). If k >= n, emits all of [0, n) in order.
/// Floyd's algorithm; the duplicate check is a linear scan over the <= k
/// values emitted so far, which beats a hash set for the fanout-sized k
/// (~10) the samplers use and allocates nothing when `out` has capacity.
/// Draws exactly the same UniformInt sequence — and emits exactly the same
/// values — as the std::vector overload below.
template <typename OutVec>
void SampleWithoutReplacementInto(uint64_t n, uint64_t k, Rng& rng,
                                  OutVec& out) {
  out.clear();
  if (k >= n) {
    for (uint64_t v = 0; v < n; ++v) out.push_back(v);
    return;
  }
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng.UniformInt(j + 1);
    bool dup = false;
    for (uint64_t prev : out) {
      if (prev == t) {
        dup = true;
        break;
      }
    }
    // When t collides with an earlier pick, Floyd's substitutes j itself —
    // j is new by construction (every earlier value is < j).
    out.push_back(dup ? j : t);
  }
}

/// Samples `k` distinct values uniformly from [0, n) without replacement.
/// If k >= n, returns all of [0, n) in order. Uses Floyd's algorithm for
/// small k relative to n, reservoir-free and O(k) expected.
std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Rng& rng);

/// Zipf(s) distribution over ranks [0, n): P(rank = r) proportional to
/// 1 / (r + 1)^s, rank 0 the most popular. s == 0 degenerates to uniform.
/// Sampling is inverse-CDF via binary search over a precomputed table —
/// O(n) memory once, O(log n) per draw, exact (no rejection, no harmonic
/// approximation), and bit-deterministic for a given (n, s, rng stream).
/// The serving traffic generator maps ranks onto seed-node ids so popular
/// nodes recur across concurrent requests (the skew GatherGroup exploits).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  uint64_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Draws one rank in [0, n()).
  uint64_t Sample(Rng& rng) const;

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), cdf_.back() == 1.0
};

}  // namespace gids

#endif  // GIDS_COMMON_RANDOM_H_
