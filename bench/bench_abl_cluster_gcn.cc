// Extension experiment: subgraph-based (Cluster-GCN) sampling through the
// GIDS dataloader (§4.7). The paper declined to evaluate this family
// because METIS partitioning takes days at IGB scale; here the O(V+E) BFS
// partitioner replaces METIS, and the GIDS pipeline runs unmodified on
// the induced-subgraph batches. Reports partition quality (cut fraction
// vs a random partition) and GIDS-vs-BaM aggregation time on the
// Cluster-GCN access pattern.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "sampling/cluster_sampler.h"

namespace gids::bench {
namespace {

void BM_PartitionQuality(benchmark::State& state) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);
  double bfs_cut = 0;
  double random_cut = 0;
  for (auto _ : state) {
    Rng rng(5);
    auto bfs = graph::BfsPartition(rig.dataset->graph, 64, rng);
    auto random = graph::RandomPartition(rig.dataset->graph, 64, rng);
    GIDS_CHECK(bfs.ok());
    GIDS_CHECK(random.ok());
    bfs_cut = bfs->CutFraction(rig.dataset->graph);
    random_cut = random->CutFraction(rig.dataset->graph);
  }
  state.counters["bfs_cut"] = bfs_cut;
  state.counters["random_cut"] = random_cut;
  ReportRow("ABL-CGCN", "BFS partition cut fraction (64 parts)", bfs_cut, 0,
            "fraction");
  ReportRow("ABL-CGCN", "random partition cut fraction", random_cut, 0,
            "fraction");
}

double MeasureClusterE2E(bool gids) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  Rig rig = BuildRig(cfg);
  Rng rng(7);
  auto partition = graph::BfsPartition(rig.dataset->graph, 256, rng);
  GIDS_CHECK(partition.ok());
  auto sampler = std::make_unique<sampling::ClusterGcnSampler>(
      &rig.dataset->graph, std::move(partition).value(),
      sampling::ClusterSamplerOptions{.clusters_per_batch = 1,
                                      .num_layers = 3},
      9);
  rig.sampler = std::move(sampler);
  core::GidsOptions o = gids ? core::GidsOptions{} : core::GidsOptions::Bam();
  if (gids) o.hot_node_order = &CachedPageRankOrder(rig.dataset);
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/40, /*measure=*/30);
  return result.mean_iteration_ms();
}

void BM_ClusterGcnThroughGids(benchmark::State& state) {
  double gids_ms = 0;
  double bam_ms = 0;
  for (auto _ : state) {
    gids_ms = MeasureClusterE2E(true);
    bam_ms = MeasureClusterE2E(false);
  }
  state.counters["gids_ms"] = gids_ms;
  state.counters["bam_ms"] = bam_ms;
  ReportRow("ABL-CGCN", "Cluster-GCN through GIDS", gids_ms, 0, "ms/iter");
  ReportRow("ABL-CGCN", "Cluster-GCN through BaM", bam_ms, 0, "ms/iter");
  ReportRow("ABL-CGCN", "GIDS speedup on Cluster-GCN batches",
            bam_ms / gids_ms, 0, "x");
}

BENCHMARK(BM_PartitionQuality)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClusterGcnThroughGids)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
