#ifndef GIDS_SIM_SSD_MODEL_H_
#define GIDS_SIM_SSD_MODEL_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/units.h"

namespace gids::sim {

/// Parameters of one NVMe SSD, as measured by the paper (§4.2): 4 KiB IO
/// granularity, per-request read latency, and peak random-read IOPs.
///
/// The device is modeled as `internal_parallelism()` independent service
/// channels, each completing one request per `read_latency_ns`. This makes
/// the sustained throughput k / L = peak IOPs while reproducing the key
/// property the GIDS accumulator exploits: bandwidth collapses when fewer
/// than ~k requests are kept in flight.
struct SsdSpec {
  std::string name;
  double peak_read_iops = 0;      // at io_size_bytes granularity
  TimeNs read_latency_ns = 0;     // per-request latency seen by the host
  uint32_t io_size_bytes = 4096;  // cache-line / page granularity
  uint64_t capacity_bytes = 2ull * 1024 * 1024 * 1024 * 1024;
  /// Relative std-dev of the per-request service time (the paper notes
  /// "high variance in latency"); sampled lognormally.
  double latency_sigma = 0.25;

  /// Number of requests the device can usefully overlap: k = IOPs * latency.
  uint64_t internal_parallelism() const;
  /// Peak sequential-equivalent read bandwidth in bytes/second.
  double peak_read_bandwidth_bps() const {
    return peak_read_iops * static_cast<double>(io_size_bytes);
  }

  /// Intel Optane SSD (PCIe Gen4): 11 us latency, 1.5 M IOPs @ 4 KiB.
  static SsdSpec IntelOptane();
  /// Samsung 980 Pro (NAND flash): 324 us latency, 700 K IOPs @ 4 KiB.
  static SsdSpec Samsung980Pro();
};

/// Result of simulating a batch of reads against one or more SSDs.
struct SsdBatchResult {
  TimeNs duration_ns = 0;        // submission of first to completion of last
  uint64_t requests = 0;         // total requests serviced
  double achieved_iops = 0;      // aggregate across all simulated SSDs
  double bandwidth_bps = 0;      // aggregate bytes/second
};

/// Discrete-event model of a single NVMe SSD's read path.
///
/// Two request-arrival disciplines are provided, matching how the paper's
/// microbenchmarks and dataloaders drive the device:
///  - `SimulateBurst`:     N requests all submitted at t = 0 (one GPU kernel
///                          with N threads, Fig. 8's measured curve).
///  - `SimulateClosedLoop`: at most Q requests kept outstanding; a new
///                          request is submitted whenever one completes
///                          (the accumulator's steady state, Fig. 9).
///
/// Both are exact event-driven simulations over a min-heap of channel
/// free-times with lognormal service-time jitter, not closed forms.
class SsdModel {
 public:
  explicit SsdModel(SsdSpec spec, uint64_t seed = 0x55d0);

  const SsdSpec& spec() const { return spec_; }

  /// Simulates `n` reads submitted simultaneously at t = 0.
  SsdBatchResult SimulateBurst(uint64_t n);

  /// Simulates `n` reads with a closed-loop window of `concurrency`
  /// outstanding requests.
  SsdBatchResult SimulateClosedLoop(uint64_t n, uint64_t concurrency);

  /// Deterministic expected service time for one request (mean), used by
  /// callers that want latency without jitter.
  TimeNs mean_service_ns() const { return spec_.read_latency_ns; }

 private:
  TimeNs SampleServiceTime();

  SsdSpec spec_;
  Rng rng_;
};

/// Simulates `n` reads striped round-robin over `n_ssd` identical devices,
/// with the closed-loop window `concurrency` distributed across devices
/// like the request share (the first `concurrency % n_ssd` devices carry
/// one extra outstanding request). When `concurrency < n_ssd` only
/// `concurrency` devices are active — fewer outstanding requests than
/// devices cannot keep every device busy. Returns the aggregate result
/// (duration = slowest device).
SsdBatchResult SimulateStripedClosedLoop(const SsdSpec& spec, int n_ssd,
                                         uint64_t n, uint64_t concurrency,
                                         uint64_t seed = 0x57717e);

}  // namespace gids::sim

#endif  // GIDS_SIM_SSD_MODEL_H_
