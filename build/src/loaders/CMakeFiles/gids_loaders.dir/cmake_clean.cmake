file(REMOVE_RECURSE
  "CMakeFiles/gids_loaders.dir/belady_cache.cc.o"
  "CMakeFiles/gids_loaders.dir/belady_cache.cc.o.d"
  "CMakeFiles/gids_loaders.dir/ginex_loader.cc.o"
  "CMakeFiles/gids_loaders.dir/ginex_loader.cc.o.d"
  "CMakeFiles/gids_loaders.dir/mmap_loader.cc.o"
  "CMakeFiles/gids_loaders.dir/mmap_loader.cc.o.d"
  "CMakeFiles/gids_loaders.dir/os_page_cache.cc.o"
  "CMakeFiles/gids_loaders.dir/os_page_cache.cc.o.d"
  "libgids_loaders.a"
  "libgids_loaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gids_loaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
