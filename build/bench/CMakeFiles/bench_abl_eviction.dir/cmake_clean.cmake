file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_eviction.dir/bench_abl_eviction.cc.o"
  "CMakeFiles/bench_abl_eviction.dir/bench_abl_eviction.cc.o.d"
  "bench_abl_eviction"
  "bench_abl_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
