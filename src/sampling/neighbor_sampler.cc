#include "sampling/neighbor_sampler.h"

#include <algorithm>

#include "common/check.h"
#include "common/workspace_pool.h"

namespace gids::sampling {

NeighborSampler::NeighborSampler(const graph::CscGraph* graph,
                                 NeighborSamplerOptions options, uint64_t seed)
    : graph_(graph), options_(std::move(options)), seed_(seed) {
  GIDS_CHECK(graph_ != nullptr);
  GIDS_CHECK(!options_.fanouts.empty());
  for (int f : options_.fanouts) GIDS_CHECK(f > 0);
}

void NeighborSampler::SampleAtInto(std::span<const graph::NodeId> seeds,
                                   uint64_t iteration, MiniBatch* out) {
  Rng rng = IterationRng(seed_, iteration);
  out->Reset();
  out->seeds.assign(seeds.begin(), seeds.end());

  const int num_layers = static_cast<int>(options_.fanouts.size());
  if (out->blocks.size() != static_cast<size_t>(num_layers)) {
    out->blocks.resize(num_layers);
    for (Block& b : out->blocks) b.Reset();
  }

  // Per-call pooled scratch (SampleAtInto must stay concurrent-safe, so no
  // member scratch); steady-state acquires hit the thread cache.
  Workspace<graph::NodeId> frontier;
  Workspace<uint64_t> picks;
  PooledFlatMap<graph::NodeId, uint32_t> local;

  frontier.assign(seeds.begin(), seeds.end());

  // Expand outward from the seeds, writing each hop directly into its
  // final slot: hop l (seed side) is blocks[num_layers - 1 - l], so
  // blocks[0] ends up input-most with no reverse copy.
  for (int l = 0; l < num_layers; ++l) {
    const int fanout = options_.fanouts[l];
    Block& block = out->blocks[num_layers - 1 - l];
    block.num_dst = static_cast<uint32_t>(frontier.size());
    block.src_nodes.assign(frontier.begin(), frontier.end());  // dst prefix
    // Exact upper bounds: every dst contributes at most `fanout` edges,
    // and the local map holds at most dst + dst*fanout distinct nodes.
    block.edge_src.reserve(static_cast<size_t>(block.num_dst) * fanout);
    block.edge_dst.reserve(static_cast<size_t>(block.num_dst) * fanout);
    local.Reset(frontier.size() * (static_cast<size_t>(fanout) + 1));
    for (uint32_t i = 0; i < frontier.size(); ++i) {
      local.TryEmplace(frontier[i], i);
    }

    for (uint32_t d = 0; d < block.num_dst; ++d) {
      graph::NodeId v = frontier[d];
      auto nbrs = graph_->in_neighbors(v);
      if (nbrs.empty()) continue;
      auto emit = [&](graph::NodeId u) {
        auto [slot, inserted] =
            local.TryEmplace(u, static_cast<uint32_t>(block.src_nodes.size()));
        if (inserted) block.src_nodes.push_back(u);
        block.edge_src.push_back(*slot);
        block.edge_dst.push_back(d);
      };
      if (nbrs.size() <= static_cast<size_t>(fanout)) {
        for (graph::NodeId u : nbrs) emit(u);
      } else {
        SampleWithoutReplacementInto(nbrs.size(),
                                     static_cast<uint64_t>(fanout), rng, picks);
        for (uint64_t p : picks) emit(nbrs[p]);
      }
    }
    // Next hop expands every node seen so far.
    frontier.assign(block.src_nodes.begin(), block.src_nodes.end());
  }
}

}  // namespace gids::sampling
