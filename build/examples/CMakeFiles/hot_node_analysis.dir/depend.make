# Empty dependencies file for hot_node_analysis.
# This may be replaced when dependencies are built.
