# Empty compiler generated dependencies file for bench_abl_ssd_scaling.
# This may be replaced when dependencies are built.
