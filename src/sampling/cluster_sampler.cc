#include "sampling/cluster_sampler.h"

#include <unordered_map>

#include "common/check.h"

namespace gids::sampling {

ClusterGcnSampler::ClusterGcnSampler(const graph::CscGraph* graph,
                                     graph::PartitionResult partition,
                                     ClusterSamplerOptions options,
                                     uint64_t seed)
    : graph_(graph), partition_(std::move(partition)), options_(options),
      seed_(seed) {
  GIDS_CHECK(graph_ != nullptr);
  GIDS_CHECK(options_.num_layers >= 1);
  GIDS_CHECK(options_.clusters_per_batch >= 1);
  GIDS_CHECK(options_.clusters_per_batch <= partition_.num_parts);
  GIDS_CHECK(partition_.part_of.size() == graph_->num_nodes());
}

MiniBatch ClusterGcnSampler::SampleAt(std::span<const graph::NodeId>,
                                      uint64_t iteration) {
  Rng rng = IterationRng(seed_, iteration);
  // Pick distinct clusters uniformly at random.
  std::vector<uint64_t> picks = SampleWithoutReplacement(
      partition_.num_parts, options_.clusters_per_batch, rng);

  // Union of member nodes, with local ids.
  std::vector<graph::NodeId> nodes;
  std::unordered_map<graph::NodeId, uint32_t> local;
  for (uint64_t c : picks) {
    for (graph::NodeId v : partition_.members[c]) {
      local.emplace(v, static_cast<uint32_t>(nodes.size()));
      nodes.push_back(v);
    }
  }

  // Induced-subgraph edges (src and dst both inside the cluster union).
  Block block;
  block.src_nodes = nodes;
  block.num_dst = static_cast<uint32_t>(nodes.size());
  for (uint32_t d = 0; d < nodes.size(); ++d) {
    for (graph::NodeId u : graph_->in_neighbors(nodes[d])) {
      auto it = local.find(u);
      if (it == local.end()) continue;  // edge cut by the partition
      block.edge_src.push_back(it->second);
      block.edge_dst.push_back(d);
    }
  }

  MiniBatch batch;
  batch.seeds = nodes;
  batch.blocks.assign(options_.num_layers, block);
  return batch;
}

}  // namespace gids::sampling
