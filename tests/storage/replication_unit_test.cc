// The N-way replica set (FAULTS.md "Durability & failover"): rotated
// striped placement, freshness/topology-aware read routing, and the
// StorageArray failover integration — a read whose primary is offline is
// transparently served by a surviving replica instead of zero-filling,
// and only quorum loss (every copy dark or stale) still dead-letters.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "graph/feature_store.h"
#include "storage/block_device.h"
#include "storage/fault_injector.h"
#include "storage/replica_set.h"
#include "storage/storage_array.h"

namespace gids::storage {
namespace {

const std::function<bool(int)> kAllHealthy = [](int) { return true; };

TEST(ReplicaSetTest, PlacementRotatesAcrossTheArray) {
  ReplicaOptions ro;
  ro.replication_factor = 3;
  ReplicaSet replicas(4, ro);
  for (uint64_t page = 0; page < 16; ++page) {
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(replicas.Device(page, r),
                static_cast<int>((page + static_cast<uint64_t>(r)) % 4));
    }
  }
  EXPECT_EQ(replicas.factor(), 3);
  EXPECT_EQ(replicas.quorum(), 2);  // majority by default
  ReplicaOptions relaxed = ro;
  relaxed.write_quorum = 1;
  EXPECT_EQ(ReplicaSet(4, relaxed).quorum(), 1);
}

TEST(ReplicaSetTest, RoutingPrefersThePrimaryAndCyclesReplicas) {
  ReplicaOptions ro;
  ro.replication_factor = 2;
  ReplicaSet replicas(4, ro);
  int replica = -1;
  bool quorum_lost = false;
  EXPECT_EQ(replicas.RouteAttempt(5, 0, kAllHealthy, &replica, &quorum_lost),
            1);  // page 5's primary is device 1
  EXPECT_EQ(replica, 0);
  EXPECT_FALSE(quorum_lost);
  // Successive attempts cycle the healthy copies instead of hammering one.
  EXPECT_EQ(replicas.RouteAttempt(5, 1, kAllHealthy, &replica), 2);
  EXPECT_EQ(replica, 1);
  EXPECT_EQ(replicas.RouteAttempt(5, 2, kAllHealthy, &replica), 1);
  EXPECT_EQ(replica, 0);
}

TEST(ReplicaSetTest, RoutingSkipsUnhealthyAndStaleReplicas) {
  ReplicaOptions ro;
  ro.replication_factor = 2;
  ReplicaSet replicas(4, ro);
  const auto device1_down = [](int d) { return d != 1; };

  // Unhealthy primary: the first attempt already lands on the replica.
  int replica = -1;
  bool quorum_lost = false;
  EXPECT_EQ(replicas.RouteAttempt(5, 0, device1_down, &replica, &quorum_lost),
            2);
  EXPECT_EQ(replica, 1);
  EXPECT_FALSE(quorum_lost);

  // Stale replica: the apply of LSN 3 for page 5 reached device 1 only, so
  // device 2 lags and healthy routing pins the fresh primary.
  replicas.NoteApplied(/*page=*/5, /*lsn=*/3, /*device=*/1);
  EXPECT_TRUE(replicas.IsFresh(5, 1));
  EXPECT_FALSE(replicas.IsFresh(5, 2));
  EXPECT_TRUE(replicas.IsFresh(/*page=*/9, 2));  // never-mutated page
  EXPECT_EQ(replicas.RouteAttempt(5, 0, kAllHealthy, &replica), 1);
  EXPECT_EQ(replicas.RouteAttempt(5, 1, kAllHealthy, &replica), 1);

  // Fresh primary down + stale replica: no healthy fresh copy remains —
  // the attempt cycles the doomed copies and reports quorum loss.
  quorum_lost = false;
  replicas.RouteAttempt(5, 0, device1_down, &replica, &quorum_lost);
  EXPECT_TRUE(quorum_lost);
}

// FeatureStore-backed array, the idiom of failure_injection_test.cc: the
// backing device regenerates deterministic page bytes so functional reads
// can be checked for byte-identity after a failover.
struct ReplicatedRig {
  ReplicatedRig(int n_ssd, int factor, std::vector<int> offline,
                TimeNs offline_at_ns = 0)
      : fs(256, 256) {
    auto dev = std::make_unique<FunctionBlockDevice>(
        fs.num_pages(), fs.page_bytes(),
        [this](uint64_t lba, std::span<std::byte> out) {
          fs.FillPage(lba, out);
        });
    array = std::make_unique<StorageArray>(std::move(dev),
                                           sim::SsdSpec::IntelOptane(), n_ssd);
    FaultOptions faults;
    faults.offline_devices = std::move(offline);
    faults.offline_at_ns = offline_at_ns;
    array->EnableFaultInjection(faults, RetryPolicy{});
    ReplicaOptions ro;
    ro.replication_factor = factor;
    array->EnableReplication(ro);
  }

  graph::FeatureStore fs;
  std::unique_ptr<StorageArray> array;
};

TEST(ReplicationTest, ReadFailsOverToSurvivingReplica) {
  ReplicatedRig rig(/*n_ssd=*/4, /*factor=*/2, /*offline=*/{1});
  // Page 5's primary is the dark device 1; its replica lives on device 2.
  std::vector<std::byte> got(rig.array->page_bytes());
  StorageArray::ReadOutcome oc;
  ASSERT_TRUE(rig.array->ReadPage(5, got, &oc).ok());
  EXPECT_EQ(oc.served_replica, 1);
  std::vector<std::byte> want(rig.array->page_bytes());
  rig.fs.FillPage(5, want);
  EXPECT_EQ(got, want);  // failover serves the same bytes, not zero-fill

  EXPECT_GE(rig.array->replica_failovers_total(), 1u);
  EXPECT_GE(rig.array->failovers_from_device(1), 1u);
  EXPECT_GE(rig.array->reads_by_replica(1), 1u);
  EXPECT_EQ(rig.array->replica_quorum_lost_total(), 0u);
  EXPECT_EQ(rig.array->dead_letters_total(), 0u);

  // A page owned by a healthy device still reads from its primary.
  StorageArray::ReadOutcome primary_oc;
  ASSERT_TRUE(rig.array->ReadPage(4, got, &primary_oc).ok());
  EXPECT_EQ(primary_oc.served_replica, 0);
}

TEST(ReplicationTest, QuorumLossStillDeadLetters) {
  // Both copies of page 5 (devices 1 and 2) are dark: replication cannot
  // save it, and the read dead-letters exactly like the unreplicated path.
  ReplicatedRig rig(/*n_ssd=*/4, /*factor=*/2, /*offline=*/{1, 2});
  std::vector<std::byte> got(rig.array->page_bytes());
  Status s = rig.array->ReadPage(5, got, nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_GE(rig.array->replica_quorum_lost_total(), 1u);
  EXPECT_GE(rig.array->dead_letters_total(), 1u);

  // Page 7 (devices 3 and 0) is untouched by the outage.
  StorageArray::ReadOutcome oc;
  ASSERT_TRUE(rig.array->ReadPage(7, got, &oc).ok());
  EXPECT_EQ(oc.served_replica, 0);
}

TEST(ReplicationTest, OfflineOnsetGatesFailoverOnTheVirtualClock) {
  ReplicatedRig rig(/*n_ssd=*/4, /*factor=*/2, /*offline=*/{1},
                    /*offline_at_ns=*/5 * kNsPerUs);
  std::vector<std::byte> got(rig.array->page_bytes());
  StorageArray::ReadOutcome oc;
  // Before the onset instant the device is healthy: primary serves.
  ASSERT_TRUE(rig.array->ReadPage(5, got, &oc).ok());
  EXPECT_EQ(oc.served_replica, 0);
  EXPECT_EQ(rig.array->replica_failovers_total(), 0u);

  rig.array->AdvanceClock(5 * kNsPerUs);
  ASSERT_TRUE(rig.array->ReadPage(5, got, &oc).ok());
  EXPECT_EQ(oc.served_replica, 1);
  EXPECT_GE(rig.array->replica_failovers_total(), 1u);
}

TEST(ReplicationTest, FailoverCountersAreDeterministic) {
  const auto run = [] {
    ReplicatedRig rig(4, 2, {1});
    std::vector<std::byte> buf(rig.array->page_bytes());
    for (uint64_t page = 0; page < 64; ++page) {
      (void)rig.array->ReadPage(page, buf, nullptr);
    }
    return std::vector<uint64_t>{
        rig.array->replica_failovers_total(),
        rig.array->replica_quorum_lost_total(),
        rig.array->failovers_from_device(1),
        rig.array->reads_by_replica(0),
        rig.array->reads_by_replica(1),
        rig.array->retries_total(),
    };
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gids::storage
