# Empty dependencies file for bench_fig08_ssd_model.
# This may be replaced when dependencies are built.
