#include "storage/queue_manager.h"

#include <gtest/gtest.h>

namespace gids::storage {
namespace {

TEST(QueueManagerTest, GeometryAndDepth) {
  QueueManager qm(4, 16);
  EXPECT_EQ(qm.num_queues(), 4u);
  EXPECT_EQ(qm.depth_per_queue(), 16u);
  EXPECT_EQ(qm.total_depth(), 64u);
}

TEST(QueueManagerTest, RoundTripCompletesCleanly) {
  QueueManager qm(2, 4);
  for (uint64_t lba = 0; lba < 100; ++lba) {
    ASSERT_TRUE(qm.RoundTrip(lba).ok());
  }
  EXPECT_EQ(qm.total_submissions(), 100u);
  for (uint32_t q = 0; q < qm.num_queues(); ++q) {
    EXPECT_EQ(qm.queue(q).outstanding(), 0u);
  }
}

TEST(QueueManagerTest, RoundRobinSpreadsLoad) {
  QueueManager qm(4, 8);
  for (uint64_t lba = 0; lba < 40; ++lba) {
    ASSERT_TRUE(qm.RoundTrip(lba).ok());
  }
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(qm.queue(q).total_submitted(), 10u);
  }
}

TEST(QueueManagerTest, FullQueueRejectsWithoutAdvancingCursor) {
  QueueManager qm(2, 1);
  // Fill queue 0 from the device side so the next RoundTrip submission is
  // rejected by admission control.
  ASSERT_TRUE(qm.mutable_queue(0).Submit({.lba = 99, .tag = 1000}).ok());
  EXPECT_EQ(qm.RoundTrip(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(qm.total_submissions(), 0u);
  // Drain the stuck command; the retry must land on queue 0 again — a
  // failed submission leaves the round-robin cursor where it was instead
  // of silently skipping to queue 1.
  auto popped = qm.mutable_queue(0).PopSubmitted(1);
  ASSERT_EQ(popped.size(), 1u);
  qm.mutable_queue(0).Complete(popped[0].tag);
  ASSERT_TRUE(qm.mutable_queue(0).PollCompletion().has_value());
  ASSERT_TRUE(qm.RoundTrip(1).ok());
  EXPECT_EQ(qm.queue(0).total_submitted(), 2u);  // stuck fill + the retry
  EXPECT_EQ(qm.queue(1).total_submitted(), 0u);
  // Round-robin resumes normally after the successful retry.
  ASSERT_TRUE(qm.RoundTrip(2).ok());
  EXPECT_EQ(qm.queue(1).total_submitted(), 1u);
  EXPECT_EQ(qm.total_submissions(), 2u);
}

TEST(QueueManagerTest, DepthOneWorks) {
  QueueManager qm(1, 1);
  ASSERT_TRUE(qm.RoundTrip(7).ok());
  ASSERT_TRUE(qm.RoundTrip(8).ok());
  EXPECT_EQ(qm.total_submissions(), 2u);
}

}  // namespace
}  // namespace gids::storage
