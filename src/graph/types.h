#ifndef GIDS_GRAPH_TYPES_H_
#define GIDS_GRAPH_TYPES_H_

#include <cstdint>

namespace gids::graph {

/// Node identifier. 32 bits is sufficient for the scaled dataset proxies
/// (the full-scale terabyte graphs are represented by their generators'
/// parameters, never materialized).
using NodeId = uint32_t;

/// Index into edge arrays (can exceed 2^32 for the largest proxies).
using EdgeIdx = uint64_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

}  // namespace gids::graph

#endif  // GIDS_GRAPH_TYPES_H_
