#ifndef GIDS_OBS_POOL_METRICS_H_
#define GIDS_OBS_POOL_METRICS_H_

#include "common/thread_pool.h"
#include "obs/metric_registry.h"

namespace gids::obs {

/// Exposes a ThreadPool through `registry` (pull-style; see
/// OBSERVABILITY.md "Host thread pool"):
///   gids_host_pool_threads          gauge    worker count
///   gids_host_pool_queue_depth      gauge    queued, unclaimed tasks
///   gids_host_pool_busy_workers     gauge    workers executing a task
///   gids_host_pool_utilization      gauge    busy_workers / threads
///   gids_host_pool_tasks_total      counter  tasks executed by workers
///   gids_host_pool_chunks_total     counter  ParallelFor chunks executed
/// The pool must outlive the registry's last snapshot.
void BindThreadPoolMetrics(const ThreadPool& pool, MetricRegistry* registry,
                           const Labels& labels);

}  // namespace gids::obs

#endif  // GIDS_OBS_POOL_METRICS_H_
