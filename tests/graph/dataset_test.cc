#include "graph/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace gids::graph {
namespace {

TEST(DatasetSpecTest, Table2Catalog) {
  auto specs = DatasetSpec::RealWorld();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "ogbn-papers100M");
  EXPECT_EQ(specs[0].paper_num_nodes, 111059956ull);
  EXPECT_EQ(specs[0].paper_num_edges, 1615685872ull);
  EXPECT_EQ(specs[0].feature_dim, 128u);
  EXPECT_EQ(specs[1].name, "IGB-Full");
  EXPECT_EQ(specs[1].paper_num_nodes, 269364174ull);
  EXPECT_EQ(specs[1].feature_dim, 1024u);
  EXPECT_EQ(specs[2].name, "MAG240M");
  EXPECT_EQ(specs[2].kind, GraphKind::kHeterogeneous);
  EXPECT_EQ(specs[2].feature_dim, 768u);
  EXPECT_EQ(specs[3].name, "IGBH-Full");
  EXPECT_EQ(specs[3].paper_num_edges, 5812005639ull);
}

TEST(DatasetSpecTest, Table3Catalog) {
  auto specs = DatasetSpec::IgbMicro();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].paper_num_nodes, 100000ull);
  EXPECT_EQ(specs[1].paper_num_nodes, 1000000ull);
  EXPECT_EQ(specs[2].paper_num_nodes, 10000000ull);
  EXPECT_EQ(specs[3].paper_num_nodes, 100000000ull);
  for (const auto& s : specs) EXPECT_EQ(s.feature_dim, 1024u);
}

TEST(DatasetSpecTest, PaperSizeAccounting) {
  DatasetSpec igb = DatasetSpec::IgbFull();
  // Feature data ~1.1 TB (94.7% of ~1084 GB total in Table 4).
  double feature_gb = static_cast<double>(igb.paper_feature_bytes()) / 1e9;
  EXPECT_NEAR(feature_gb, 1103.0, 10.0);
  double structure_gb =
      static_cast<double>(igb.paper_structure_bytes()) / 1e9;
  EXPECT_NEAR(structure_gb, 63.9, 2.0);
  // Feature share dominates, as in Table 4.
  EXPECT_GT(feature_gb / (feature_gb + structure_gb), 0.9);
}

TEST(BuildDatasetTest, ScaledProxyPreservesAverageDegree) {
  auto ds = BuildDataset(DatasetSpec::IgbSmall(), 0.05, 11);
  ASSERT_TRUE(ds.ok());
  double paper_degree = 12070502.0 / 1000000.0;
  double proxy_degree = static_cast<double>(ds->graph.num_edges()) /
                        ds->graph.num_nodes();
  EXPECT_NEAR(proxy_degree, paper_degree, 0.1);
  EXPECT_NEAR(ds->graph.num_nodes(), 50000, 100);
}

TEST(BuildDatasetTest, FeatureStoreMatchesSpec) {
  auto ds = BuildDataset(DatasetSpec::OgbnPapers100M(), 0.001, 12);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->features.feature_dim(), 128u);
  EXPECT_EQ(ds->features.num_nodes(), ds->graph.num_nodes());
}

TEST(BuildDatasetTest, Mag240MProxyUsesByteEquivalentDim) {
  // MAG240M ships fp16 features for ~half its nodes; the proxy preserves
  // the on-disk footprint with a 192-dim float32 store (see
  // DatasetSpec::proxy_feature_dim) while Table 2 reports the nominal 768.
  auto ds = BuildDataset(DatasetSpec::Mag240M(), 1e-4, 19);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->spec.feature_dim, 768u);
  EXPECT_EQ(ds->features.feature_dim(), 192u);
  // Byte-equivalence: 192 * 4 == 768 * 2 * 0.5 coverage.
  double disk_bytes_per_node = 768 * 2 * ds->spec.disk_feature_coverage;
  EXPECT_NEAR(ds->features.feature_bytes_per_node(), disk_bytes_per_node,
              disk_bytes_per_node * 0.01);
}

TEST(BuildDatasetTest, TrainIdsAreValidAndDistinct) {
  auto ds = BuildDataset(DatasetSpec::IgbTiny(), 0.5, 13);
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ds->train_ids.size(),
              ds->spec.train_fraction * ds->graph.num_nodes(),
              ds->graph.num_nodes() * 0.01);
  std::set<NodeId> unique(ds->train_ids.begin(), ds->train_ids.end());
  EXPECT_EQ(unique.size(), ds->train_ids.size());
  for (NodeId v : ds->train_ids) EXPECT_LT(v, ds->graph.num_nodes());
}

TEST(BuildDatasetTest, DeterministicInSeed) {
  auto a = BuildDataset(DatasetSpec::IgbTiny(), 0.2, 99);
  auto b = BuildDataset(DatasetSpec::IgbTiny(), 0.2, 99);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.indices(), b->graph.indices());
  EXPECT_EQ(a->train_ids, b->train_ids);
}

TEST(BuildDatasetTest, HeterogeneousNodeTypesCoverGraph) {
  auto ds = BuildDataset(DatasetSpec::IgbhFull(), 1e-5, 14);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->node_types.size(), 4u);
  NodeId covered = 0;
  for (const auto& t : ds->node_types) {
    EXPECT_EQ(t.offset, covered);
    covered += t.count;
  }
  EXPECT_EQ(covered, ds->graph.num_nodes());
}

TEST(BuildDatasetTest, HomogeneousHasNoNodeTypes) {
  auto ds = BuildDataset(DatasetSpec::IgbTiny(), 0.1, 15);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->node_types.empty());
}

TEST(BuildDatasetTest, RejectsBadScale) {
  EXPECT_FALSE(BuildDataset(DatasetSpec::IgbTiny(), 0.0, 1).ok());
  EXPECT_FALSE(BuildDataset(DatasetSpec::IgbTiny(), 1.5, 1).ok());
  EXPECT_FALSE(BuildDataset(DatasetSpec::IgbTiny(), -0.1, 1).ok());
}

TEST(BuildDatasetTest, MinimumNodeFloor) {
  // Extremely small scales clamp to >= 1024 nodes.
  auto ds = BuildDataset(DatasetSpec::IgbTiny(), 1e-6, 16);
  ASSERT_TRUE(ds.ok());
  EXPECT_GE(ds->graph.num_nodes(), 1024u);
}

TEST(BuildDatasetTest, SizeAccountingConsistent) {
  auto ds = BuildDataset(DatasetSpec::IgbSmall(), 0.02, 17);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->total_bytes(), ds->feature_bytes() + ds->structure_bytes());
  EXPECT_EQ(ds->feature_bytes(), ds->features.total_bytes());
  // Features dominate for IGB-style dims (Table 4).
  EXPECT_GT(static_cast<double>(ds->feature_bytes()) / ds->total_bytes(),
            0.9);
}

}  // namespace
}  // namespace gids::graph
