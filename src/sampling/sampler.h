#ifndef GIDS_SAMPLING_SAMPLER_H_
#define GIDS_SAMPLING_SAMPLER_H_

#include <span>
#include <string_view>

#include "graph/types.h"
#include "sampling/minibatch.h"

namespace gids::sampling {

/// Interface shared by the sampling strategies (uniform neighborhood
/// sampling and LADIES layer-wise sampling). Samplers are deterministic in
/// their construction seed; the same seed and seed-node sequence yields the
/// same mini-batches regardless of which dataloader drives them, which is
/// what makes cross-dataloader comparisons apples-to-apples.
class Sampler {
 public:
  virtual ~Sampler() = default;

  virtual std::string_view name() const = 0;
  virtual int num_layers() const = 0;

  /// Builds the computational graph for one batch of seed nodes.
  virtual MiniBatch Sample(std::span<const graph::NodeId> seeds) = 0;
};

}  // namespace gids::sampling

#endif  // GIDS_SAMPLING_SAMPLER_H_
