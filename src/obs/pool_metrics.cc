#include "obs/pool_metrics.h"

#include "common/check.h"

namespace gids::obs {

void BindThreadPoolMetrics(const ThreadPool& pool, MetricRegistry* registry,
                           const Labels& labels) {
  GIDS_CHECK(registry != nullptr);
  const ThreadPool* p = &pool;
  registry->RegisterCallback(
      "gids_host_pool_threads", labels, MetricType::kGauge,
      [p] { return static_cast<double>(p->num_threads()); });
  registry->RegisterCallback(
      "gids_host_pool_queue_depth", labels, MetricType::kGauge,
      [p] { return static_cast<double>(p->queue_depth()); });
  registry->RegisterCallback(
      "gids_host_pool_busy_workers", labels, MetricType::kGauge,
      [p] { return static_cast<double>(p->busy_workers()); });
  registry->RegisterCallback(
      "gids_host_pool_utilization", labels, MetricType::kGauge, [p] {
        return static_cast<double>(p->busy_workers()) /
               static_cast<double>(p->num_threads());
      });
  registry->RegisterCallback(
      "gids_host_pool_tasks_total", labels, MetricType::kCounter,
      [p] { return static_cast<double>(p->tasks_executed()); });
  registry->RegisterCallback(
      "gids_host_pool_chunks_total", labels, MetricType::kCounter,
      [p] { return static_cast<double>(p->chunks_executed()); });
}

}  // namespace gids::obs
