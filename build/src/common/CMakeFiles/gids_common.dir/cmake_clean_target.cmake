file(REMOVE_RECURSE
  "libgids_common.a"
)
