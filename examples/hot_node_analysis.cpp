// Hot-node analysis: sizing the constant CPU buffer (§3.3).
//
// Ranks the nodes of an IGB-style graph by weighted reverse PageRank,
// replays a real neighborhood-sampling access trace against candidate
// pin-fractions, and reports how much feature-aggregation traffic each
// buffer size would redirect from the SSDs to CPU memory — the quantity
// that decides the Fig. 10 bandwidth amplification. Also compares ranking
// metrics (reverse PageRank vs in-degree vs random).
//
// Build & run:  ./build/examples/hot_node_analysis
#include <cstdio>
#include <vector>

#include "graph/dataset.h"
#include "graph/pagerank.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/ssd_model.h"

int main() {
  using namespace gids;

  auto dataset_or = graph::BuildDataset(graph::DatasetSpec::IgbFull(),
                                        1.0 / 512.0, /*seed=*/5);
  GIDS_CHECK_OK(dataset_or.status());
  graph::Dataset dataset = std::move(dataset_or).value();
  const graph::NodeId n = dataset.graph.num_nodes();
  std::printf("IGB-Full proxy: %u nodes, %llu edges\n\n", n,
              static_cast<unsigned long long>(dataset.graph.num_edges()));

  // Collect a functional access trace from the sampler.
  sampling::NeighborSampler sampler(&dataset.graph, {.fanouts = {10, 5, 5}},
                                    7);
  sampling::SeedIterator seeds(dataset.train_ids, 32, 9);
  std::vector<uint64_t> access_count(n, 0);
  uint64_t total_accesses = 0;
  for (int iter = 0; iter < 200; ++iter) {
    auto batch = sampler.Sample(seeds.NextBatch());
    for (graph::NodeId v : batch.input_nodes()) {
      ++access_count[v];
      ++total_accesses;
    }
  }

  // Candidate rankings.
  std::vector<double> pr_score =
      graph::WeightedReversePageRank(dataset.graph, {});
  std::vector<graph::NodeId> by_pagerank = graph::RankNodesByScore(pr_score);
  std::vector<graph::NodeId> by_degree =
      graph::RankNodesByInDegree(dataset.graph);
  std::vector<graph::NodeId> by_random(n);
  for (graph::NodeId v = 0; v < n; ++v) by_random[v] = v;
  Rng rng(11);
  Shuffle(by_random, rng);

  auto captured_share = [&](const std::vector<graph::NodeId>& order,
                            double fraction) {
    uint64_t captured = 0;
    size_t pinned = static_cast<size_t>(fraction * n);
    for (size_t i = 0; i < pinned; ++i) captured += access_count[order[i]];
    return static_cast<double>(captured) / total_accesses;
  };

  std::printf("%-10s %16s %16s %16s\n", "pinned", "reverse-PR",
              "in-degree", "random");
  for (double fraction : {0.01, 0.05, 0.10, 0.20, 0.40}) {
    std::printf("%8.0f%% %15.1f%% %15.1f%% %15.1f%%\n", fraction * 100,
                100 * captured_share(by_pagerank, fraction),
                100 * captured_share(by_degree, fraction),
                100 * captured_share(by_random, fraction));
  }

  // Translate capture share into the §3.3 bandwidth amplification for a
  // single Optane SSD (effective bw ~= ssd_peak / storage_share).
  double ssd_peak = sim::SsdSpec::IntelOptane().peak_read_bandwidth_bps();
  std::printf("\nimplied effective aggregation bandwidth (1x Optane):\n");
  for (double fraction : {0.10, 0.20}) {
    double share = captured_share(by_pagerank, fraction);
    double effective = ssd_peak / (1.0 - share) / 1e9;
    std::printf("  %2.0f%% buffer by reverse-PR: ~%.1f GB/s (%.2fx)\n",
                fraction * 100, effective, effective / (ssd_peak / 1e9));
  }
  std::printf("\nPCIe Gen4 x16 ceiling: 32 GB/s\n");
  return 0;
}
