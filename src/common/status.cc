#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gids {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

namespace internal_status {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored StatusOr: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace gids
