// Host-performance microbenchmarks of the core data structures (real
// wall-clock throughput of this library's code, not virtual-time results):
// software-cache operations, sampler throughput, R-MAT generation,
// reverse PageRank, Belady replay, and the event-driven SSD simulator.
// Useful for regression-tracking the implementation itself.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/generator.h"
#include "graph/pagerank.h"
#include "loaders/belady_cache.h"
#include "loaders/os_page_cache.h"
#include "sampling/neighbor_sampler.h"
#include "sim/ssd_model.h"
#include "storage/software_cache.h"

namespace gids {
namespace {

void BM_SoftwareCacheTouchInsert(benchmark::State& state) {
  storage::SoftwareCache cache(
      static_cast<uint64_t>(state.range(0)) * 4096, 4096, /*seed=*/1,
      /*store_payloads=*/false);
  Rng rng(2);
  uint64_t space = state.range(0) * 8;  // 12.5% fits
  for (auto _ : state) {
    uint64_t page = rng.UniformInt(space);
    if (!cache.Touch(page)) cache.InsertMeta(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftwareCacheTouchInsert)->Arg(1 << 10)->Arg(1 << 16);

void BM_SoftwareCacheWithPinning(benchmark::State& state) {
  storage::SoftwareCache cache(4096 * 4096, 4096, 1, false);
  Rng rng(3);
  for (auto _ : state) {
    uint64_t page = rng.UniformInt(32768);
    cache.AddFutureReuse(page, 1);
    if (!cache.Touch(page)) cache.InsertMeta(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftwareCacheWithPinning);

void BM_OsPageCacheLru(benchmark::State& state) {
  loaders::OsPageCache cache(1 << 14);
  Rng rng(4);
  for (auto _ : state) {
    cache.Access(rng.UniformInt(1 << 17));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OsPageCacheLru);

void BM_NeighborSampling(benchmark::State& state) {
  Rng rng(5);
  auto g = graph::GenerateRmat(1 << 17, 1 << 21, graph::RmatParams{}, rng);
  GIDS_CHECK(g.ok());
  sampling::NeighborSampler sampler(&*g, {.fanouts = {10, 5, 5}}, 6);
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId v = 0; v < 64; ++v) seeds.push_back(v * 31);
  uint64_t edges = 0;
  for (auto _ : state) {
    auto batch = sampler.Sample(seeds);
    edges += batch.total_edges();
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(edges));
  state.counters["edges_per_batch"] =
      static_cast<double>(edges) / state.iterations();
}
BENCHMARK(BM_NeighborSampling);

void BM_RmatGeneration(benchmark::State& state) {
  const uint64_t edges = static_cast<uint64_t>(state.range(0));
  uint64_t seed = 7;
  for (auto _ : state) {
    Rng rng(seed++);
    auto g = graph::GenerateRmat(1 << 16, edges, graph::RmatParams{}, rng);
    GIDS_CHECK(g.ok());
    benchmark::DoNotOptimize(g->num_edges());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(edges));
}
BENCHMARK(BM_RmatGeneration)->Arg(1 << 18)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

void BM_ReversePageRank(benchmark::State& state) {
  Rng rng(8);
  auto g = graph::GenerateRmat(1 << 16, 1 << 20, graph::RmatParams{}, rng);
  GIDS_CHECK(g.ok());
  graph::PageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0;  // fixed work per call
  for (auto _ : state) {
    auto score = graph::WeightedReversePageRank(*g, opts);
    benchmark::DoNotOptimize(score);
  }
  state.SetItemsProcessed(state.iterations() * 10 * (1 << 20));
  state.SetLabel("items = edge-updates");
}
BENCHMARK(BM_ReversePageRank)->Unit(benchmark::kMillisecond);

void BM_BeladyReplay(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::vector<uint64_t>> trace(16);
  for (auto& iter : trace) {
    for (int i = 0; i < 4096; ++i) iter.push_back(rng.UniformInt(1 << 16));
  }
  for (auto _ : state) {
    loaders::BeladyCache cache(1 << 13);
    auto r = cache.ProcessSuperbatch(trace);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * 16 * 4096);
}
BENCHMARK(BM_BeladyReplay)->Unit(benchmark::kMillisecond);

void BM_SsdEventSimulation(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  uint64_t seed = 10;
  for (auto _ : state) {
    sim::SsdModel model(sim::SsdSpec::IntelOptane(), seed++);
    auto r = model.SimulateClosedLoop(n, 1024);
    benchmark::DoNotOptimize(r.duration_ns);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SsdEventSimulation)->Arg(1 << 14)->Arg(1 << 18)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids

BENCHMARK_MAIN();
