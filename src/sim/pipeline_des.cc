#include "sim/pipeline_des.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/check.h"

namespace gids::sim {
namespace {

// GPU-sampling look-ahead window for the decoupled policy (how many
// future iterations the accumulator may prepare ahead of training).
constexpr size_t kDecoupledLookahead = 16;

struct Scheduler {
  std::vector<TaskInterval>* timeline;

  TimeNs Run(TimeNs& resource_free, TimeNs ready, TimeNs duration,
             TimeNs* busy, TaskInterval::Resource resource,
             const char* stage, uint32_t iteration) {
    TimeNs start = std::max(resource_free, ready);
    resource_free = start + duration;
    *busy += duration;
    if (timeline != nullptr && duration > 0) {
      timeline->push_back(TaskInterval{resource, stage, iteration, start,
                                       resource_free});
    }
    return resource_free;  // completion time
  }
};

}  // namespace

PipelineResult SimulatePipeline(std::span<const StageCosts> iterations,
                                PipelinePolicy policy,
                                std::vector<TaskInterval>* timeline) {
  PipelineResult result;
  const size_t n = iterations.size();
  if (n == 0) return result;

  TimeNs cpu_free = 0;
  TimeNs io_free = 0;
  TimeNs gpu_free = 0;
  Scheduler sched{timeline};
  using R = TaskInterval::Resource;

  switch (policy) {
    case PipelinePolicy::kSerial: {
      TimeNs t = 0;
      for (size_t i = 0; i < n; ++i) {
        const StageCosts& it = iterations[i];
        uint32_t idx = static_cast<uint32_t>(i);
        t = sched.Run(cpu_free, t, it.sampling_ns, &result.cpu_busy_ns,
                      R::kCpu, "sampling", idx);
        t = sched.Run(io_free, t, it.aggregation_ns + it.transfer_ns,
                      &result.io_busy_ns, R::kIo, "aggregation+transfer",
                      idx);
        t = sched.Run(gpu_free, t, it.training_ns, &result.gpu_busy_ns,
                      R::kGpu, "training", idx);
      }
      result.makespan_ns = t;
      break;
    }

    case PipelinePolicy::kPrepOverlapsAggregation: {
      TimeNs end = 0;
      for (size_t i = 0; i < n; ++i) {
        const StageCosts& it = iterations[i];
        uint32_t idx = static_cast<uint32_t>(i);
        // CPU samples iteration i as soon as the CPU is free (runs ahead
        // of aggregation/training of earlier iterations).
        TimeNs sampled = sched.Run(cpu_free, 0, it.sampling_ns,
                                   &result.cpu_busy_ns, R::kCpu, "sampling",
                                   idx);
        TimeNs transferred =
            sched.Run(io_free, sampled, it.aggregation_ns + it.transfer_ns,
                      &result.io_busy_ns, R::kIo, "aggregation+transfer",
                      idx);
        end = sched.Run(gpu_free, transferred, it.training_ns,
                        &result.gpu_busy_ns, R::kGpu, "training", idx);
      }
      result.makespan_ns = end;
      break;
    }

    case PipelinePolicy::kDecoupled: {
      std::vector<TimeNs> sampled(n, 0);
      size_t next_sample = 0;
      TimeNs end = 0;
      for (size_t i = 0; i < n; ++i) {
        // GPU sampling kernels run ahead up to the look-ahead window,
        // FIFO with training kernels on the same GPU.
        size_t horizon = std::min(n, i + kDecoupledLookahead);
        for (; next_sample < horizon; ++next_sample) {
          sampled[next_sample] = sched.Run(
              gpu_free, 0, iterations[next_sample].sampling_ns,
              &result.gpu_busy_ns, R::kGpu, "sampling",
              static_cast<uint32_t>(next_sample));
        }
        TimeNs aggregated = sched.Run(
            io_free, sampled[i],
            iterations[i].aggregation_ns + iterations[i].transfer_ns,
            &result.io_busy_ns, R::kIo, "aggregation+transfer",
            static_cast<uint32_t>(i));
        end = sched.Run(gpu_free, aggregated, iterations[i].training_ns,
                        &result.gpu_busy_ns, R::kGpu, "training",
                        static_cast<uint32_t>(i));
      }
      result.makespan_ns = end;
      break;
    }
  }
  GIDS_CHECK(result.makespan_ns >= 0);
  return result;
}

Status WriteChromeTrace(std::span<const TaskInterval> timeline,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer(f, &std::fclose);

  auto track = [](TaskInterval::Resource r) {
    switch (r) {
      case TaskInterval::Resource::kCpu:
        return 1;
      case TaskInterval::Resource::kIo:
        return 2;
      case TaskInterval::Resource::kGpu:
        return 3;
    }
    return 0;
  };
  std::fprintf(f, "{\"traceEvents\":[\n");
  std::fprintf(f,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"GIDS pipeline (virtual time)\"}},\n");
  const char* names[] = {"", "CPU", "Storage+PCIe", "GPU"};
  for (int tid = 1; tid <= 3; ++tid) {
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%d,\"args\":{\"name\":\"%s\"}},\n",
                 tid, names[tid]);
  }
  for (size_t i = 0; i < timeline.size(); ++i) {
    const TaskInterval& t = timeline[i];
    // Chrome tracing uses microseconds.
    std::fprintf(f,
                 "{\"name\":\"%s #%u\",\"cat\":\"stage\",\"ph\":\"X\","
                 "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}%s\n",
                 t.stage, t.iteration, track(t.resource),
                 NsToUs(t.start_ns), NsToUs(t.end_ns - t.start_ns),
                 i + 1 == timeline.size() ? "" : ",");
  }
  std::fprintf(f, "]}\n");
  if (std::fflush(f) != 0) return Status::IoError("flush failed");
  return Status::OK();
}

}  // namespace gids::sim
