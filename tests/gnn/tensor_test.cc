#include "gnn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gids::gnn {
namespace {

TEST(TensorTest, ZerosAndShape) {
  Tensor t = Tensor::Zeros(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(t(i, j), 0.0f);
  }
}

TEST(TensorTest, FromDataRoundTrip) {
  std::vector<float> data = {1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::FromData(2, 3, data);
  EXPECT_EQ(t(0, 0), 1.0f);
  EXPECT_EQ(t(0, 2), 3.0f);
  EXPECT_EQ(t(1, 0), 4.0f);
  EXPECT_EQ(t(1, 2), 6.0f);
}

TEST(TensorTest, XavierBoundsAndSpread) {
  Rng rng(1);
  Tensor t = Tensor::Xavier(64, 64, rng);
  double bound = std::sqrt(6.0 / 128.0);
  double sum = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t.data()[i]), bound);
    sum += t.data()[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.02);
}

TEST(TensorTest, FillAxpyScale) {
  Tensor a = Tensor::Zeros(2, 2);
  a.Fill(1.0f);
  Tensor b = Tensor::Zeros(2, 2);
  b.Fill(2.0f);
  a.Axpy(b, 0.5f);
  EXPECT_EQ(a(0, 0), 2.0f);
  a.Scale(0.25f);
  EXPECT_EQ(a(1, 1), 0.5f);
}

TEST(TensorTest, L2NormSquared) {
  Tensor t = Tensor::FromData(1, 3, std::vector<float>{3, 0, 4});
  EXPECT_DOUBLE_EQ(t.L2NormSquared(), 25.0);
}

TEST(MatmulTest, KnownProduct) {
  Tensor a = Tensor::FromData(2, 3, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = Matmul(a, b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_EQ(c(0, 0), 58.0f);
  EXPECT_EQ(c(0, 1), 64.0f);
  EXPECT_EQ(c(1, 0), 139.0f);
  EXPECT_EQ(c(1, 1), 154.0f);
}

TEST(MatmulTest, IdentityIsNoop) {
  Tensor eye = Tensor::Zeros(3, 3);
  for (int i = 0; i < 3; ++i) eye(i, i) = 1.0f;
  Rng rng(2);
  Tensor a = Tensor::Xavier(3, 3, rng);
  Tensor c = Matmul(a, eye);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(c.data()[i], a.data()[i]);
  }
}

TEST(MatmulTest, TransposedVariantsAgree) {
  Rng rng(3);
  Tensor a = Tensor::Xavier(4, 5, rng);
  Tensor b = Tensor::Xavier(4, 6, rng);
  // MatmulTN(a, b) == Matmul(a^T, b).
  Tensor at = Tensor::Zeros(5, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 5; ++j) at(j, i) = a(i, j);
  }
  Tensor expected = Matmul(at, b);
  Tensor got = MatmulTN(a, b);
  ASSERT_EQ(got.rows(), 5u);
  ASSERT_EQ(got.cols(), 6u);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-5);
  }
}

TEST(MatmulTest, NtVariantAgrees) {
  Rng rng(4);
  Tensor a = Tensor::Xavier(3, 5, rng);
  Tensor b = Tensor::Xavier(4, 5, rng);
  Tensor bt = Tensor::Zeros(5, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 5; ++j) bt(j, i) = b(i, j);
  }
  Tensor expected = Matmul(a, bt);
  Tensor got = MatmulNT(a, b);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-5);
  }
}

TEST(ReluTest, ClampsNegatives) {
  Tensor t = Tensor::FromData(1, 4, std::vector<float>{-1, 0, 2, -3});
  ReluInPlace(t);
  EXPECT_EQ(t(0, 0), 0.0f);
  EXPECT_EQ(t(0, 1), 0.0f);
  EXPECT_EQ(t(0, 2), 2.0f);
  EXPECT_EQ(t(0, 3), 0.0f);
}

TEST(ReluTest, BackwardMasksByOutput) {
  Tensor y = Tensor::FromData(1, 3, std::vector<float>{0, 2, 0});
  Tensor dy = Tensor::FromData(1, 3, std::vector<float>{5, 5, 5});
  Tensor dx = ReluBackward(dy, y);
  EXPECT_EQ(dx(0, 0), 0.0f);
  EXPECT_EQ(dx(0, 1), 5.0f);
  EXPECT_EQ(dx(0, 2), 0.0f);
}

}  // namespace
}  // namespace gids::gnn
