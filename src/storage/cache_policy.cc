#include "storage/cache_policy.h"

#include <algorithm>
#include <utility>

#include "common/status.h"

namespace gids::storage {
namespace {

struct KindName {
  CachePolicyKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {CachePolicyKind::kRandom, "random"},
    {CachePolicyKind::kWindow, "window"},
    {CachePolicyKind::kPageRankHot, "pagerank"},
    {CachePolicyKind::kGinexBelady, "belady"},
    {CachePolicyKind::kPresample, "presample"},
};

}  // namespace

const char* CachePolicyKindName(CachePolicyKind kind) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

bool ParseCachePolicyKind(std::string_view name, CachePolicyKind* out) {
  for (const KindName& kn : kKindNames) {
    if (name == kn.name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

std::unique_ptr<CachePolicy::ShardState> CachePolicy::MakeShardState(
    uint32_t /*shard_index*/, uint64_t /*shard_seed*/, uint64_t /*num_lines*/) {
  return std::make_unique<ShardState>();
}

void CachePolicy::OnAccess(uint64_t /*page*/, uint32_t /*reuses*/,
                           bool /*hit*/) {}
void CachePolicy::OnInsert(uint64_t /*page*/) {}
void CachePolicy::OnEvict(uint64_t /*page*/) {}
void CachePolicy::IngestFutureAccess(uint64_t /*page*/) {}
void CachePolicy::IngestNodeFrequencies(
    std::span<const uint64_t> /*node_counts*/,
    const graph::FeatureStore& /*layout*/) {}
void CachePolicy::IngestHotRanking(
    std::vector<graph::NodeId> /*hottest_first*/) {}
bool CachePolicy::ProvidesHotRanking() const { return false; }
std::vector<graph::NodeId> CachePolicy::HotNodeRanking() const { return {}; }

CachePolicyStats CachePolicy::stats() const {
  CachePolicyStats out;
  out.victim_requests = stats_.victim_requests.load(std::memory_order_relaxed);
  out.victims = stats_.victims.load(std::memory_order_relaxed);
  out.probe_skips = stats_.probe_skips.load(std::memory_order_relaxed);
  out.bypasses = stats_.bypasses.load(std::memory_order_relaxed);
  out.admit_rejects = stats_.admit_rejects.load(std::memory_order_relaxed);
  out.rank_ingests = stats_.rank_ingests.load(std::memory_order_relaxed);
  out.rerank_rounds = stats_.rerank_rounds.load(std::memory_order_relaxed);
  out.ranked_nodes = stats_.ranked_nodes.load(std::memory_order_relaxed);
  out.ranked_pages = stats_.ranked_pages.load(std::memory_order_relaxed);
  out.future_ingests = stats_.future_ingests.load(std::memory_order_relaxed);
  return out;
}

void CachePolicy::BindMetrics(obs::MetricRegistry* registry,
                              const obs::Labels& labels) const {
  GIDS_CHECK(registry != nullptr);
  using obs::MetricType;
  auto counter = [&](const char* name, uint64_t CachePolicyStats::* field) {
    registry->RegisterCallback(
        name, labels, MetricType::kCounter,
        [this, field] { return static_cast<double>(stats().*field); });
  };
  counter("gids_cache_policy_victim_requests_total",
          &CachePolicyStats::victim_requests);
  counter("gids_cache_policy_victims_total", &CachePolicyStats::victims);
  counter("gids_cache_policy_probe_skips_total",
          &CachePolicyStats::probe_skips);
  counter("gids_cache_policy_bypasses_total", &CachePolicyStats::bypasses);
  counter("gids_cache_policy_admit_rejects_total",
          &CachePolicyStats::admit_rejects);
  counter("gids_cache_policy_rank_ingests_total",
          &CachePolicyStats::rank_ingests);
  counter("gids_cache_policy_rerank_rounds_total",
          &CachePolicyStats::rerank_rounds);
  counter("gids_cache_policy_future_ingests_total",
          &CachePolicyStats::future_ingests);
  registry->RegisterCallback(
      "gids_cache_policy_ranked_nodes", labels, MetricType::kGauge,
      [this] { return static_cast<double>(stats().ranked_nodes); });
  registry->RegisterCallback(
      "gids_cache_policy_ranked_pages", labels, MetricType::kGauge,
      [this] { return static_cast<double>(stats().ranked_pages); });
}

// ---------------------------------------------------------------------------
// RandomEvictionPolicy

RandomEvictionPolicy::RandomEvictionPolicy(CachePolicyKind kind)
    : kind_(kind) {
  GIDS_CHECK(kind == CachePolicyKind::kRandom ||
             kind == CachePolicyKind::kWindow ||
             kind == CachePolicyKind::kPageRankHot);
}

std::unique_ptr<CachePolicy::ShardState> RandomEvictionPolicy::MakeShardState(
    uint32_t /*shard_index*/, uint64_t shard_seed, uint64_t /*num_lines*/) {
  auto state = std::make_unique<RngState>();
  state->rng = Rng(shard_seed);
  return state;
}

size_t RandomEvictionPolicy::SelectVictim(ShardState& state,
                                          const ShardLineView& lines,
                                          uint64_t /*incoming_page*/,
                                          int max_probes,
                                          uint64_t* probe_skips) {
  stats_.victim_requests.fetch_add(1, std::memory_order_relaxed);
  Rng& rng = static_cast<RngState&>(state).rng;
  for (int probe = 0; probe < max_probes; ++probe) {
    size_t candidate = rng.UniformInt(lines.num_lines());
    if (lines.evictable(candidate)) {
      stats_.victims.fetch_add(1, std::memory_order_relaxed);
      return candidate;
    }
    ++*probe_skips;
    stats_.probe_skips.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.bypasses.fetch_add(1, std::memory_order_relaxed);
  return kNoVictim;
}

void RandomEvictionPolicy::IngestHotRanking(
    std::vector<graph::NodeId> hottest_first) {
  std::lock_guard<std::mutex> lock(rank_mu_);
  ranking_ = std::move(hottest_first);
  stats_.rank_ingests.fetch_add(1, std::memory_order_relaxed);
  stats_.ranked_nodes.store(ranking_.size(), std::memory_order_relaxed);
}

bool RandomEvictionPolicy::ProvidesHotRanking() const {
  std::lock_guard<std::mutex> lock(rank_mu_);
  return !ranking_.empty();
}

std::vector<graph::NodeId> RandomEvictionPolicy::HotNodeRanking() const {
  std::lock_guard<std::mutex> lock(rank_mu_);
  return ranking_;
}

// ---------------------------------------------------------------------------
// GinexBeladyPolicy

uint64_t GinexBeladyPolicy::NextUseLocked(uint64_t page) const {
  auto it = future_.find(page);
  if (it == future_.end() || it->second.empty()) return UINT64_MAX;
  return it->second.front();
}

size_t GinexBeladyPolicy::SelectVictim(ShardState& /*state*/,
                                       const ShardLineView& lines,
                                       uint64_t incoming_page,
                                       int /*max_probes*/,
                                       uint64_t* /*probe_skips*/) {
  stats_.victim_requests.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  size_t victim = kNoVictim;
  uint64_t victim_next = 0;
  const size_t n = lines.num_lines();
  for (size_t slot = 0; slot < n; ++slot) {
    if (!lines.evictable(slot)) continue;
    uint64_t next = NextUseLocked(lines.page(slot));
    if (victim == kNoVictim || next > victim_next) {
      victim = slot;
      victim_next = next;
      if (next == UINT64_MAX) break;  // cannot do better; lowest such slot
    }
  }
  if (victim == kNoVictim) {
    stats_.bypasses.fetch_add(1, std::memory_order_relaxed);
    return kNoVictim;
  }
  // Belady admission: caching a page whose next use is farther than the
  // best victim's can only displace a sooner-needed page.
  if (NextUseLocked(incoming_page) > victim_next) {
    stats_.admit_rejects.fetch_add(1, std::memory_order_relaxed);
    return kNoVictim;
  }
  stats_.victims.fetch_add(1, std::memory_order_relaxed);
  return victim;
}

void GinexBeladyPolicy::OnAccess(uint64_t page, uint32_t reuses,
                                 bool /*hit*/) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = future_.find(page);
  if (it == future_.end()) return;
  for (uint32_t i = 0; i < reuses && !it->second.empty(); ++i) {
    it->second.pop_front();
  }
  if (it->second.empty()) future_.erase(it);
}

void GinexBeladyPolicy::IngestFutureAccess(uint64_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  future_[page].push_back(next_seq_++);
  stats_.future_ingests.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// PresamplePolicy

std::unique_ptr<CachePolicy::ShardState> PresamplePolicy::MakeShardState(
    uint32_t /*shard_index*/, uint64_t shard_seed, uint64_t /*num_lines*/) {
  auto state = std::make_unique<RngState>();
  state->rng = Rng(shard_seed);
  return state;
}

size_t PresamplePolicy::SelectVictim(ShardState& state,
                                     const ShardLineView& lines,
                                     uint64_t incoming_page, int max_probes,
                                     uint64_t* probe_skips) {
  stats_.victim_requests.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const std::vector<uint64_t>> prio;
  {
    std::lock_guard<std::mutex> lock(rank_mu_);
    prio = page_priority_;
  }
  auto priority_of = [&prio](uint64_t page) -> uint64_t {
    if (prio == nullptr || page >= prio->size()) return 0;
    return (*prio)[page];
  };
  Rng& rng = static_cast<RngState&>(state).rng;
  size_t victim = kNoVictim;
  uint64_t victim_prio = 0;
  for (int probe = 0; probe < max_probes; ++probe) {
    size_t candidate = rng.UniformInt(lines.num_lines());
    if (!lines.evictable(candidate)) {
      ++*probe_skips;
      stats_.probe_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    uint64_t p = priority_of(lines.page(candidate));
    if (victim == kNoVictim || p < victim_prio) {
      victim = candidate;
      victim_prio = p;
      if (p == 0) break;  // coldest possible; stop probing
    }
  }
  if (victim == kNoVictim) {
    stats_.bypasses.fetch_add(1, std::memory_order_relaxed);
    return kNoVictim;
  }
  // Admission control: never displace a hotter resident with a colder
  // incoming page.
  if (priority_of(incoming_page) < victim_prio) {
    stats_.admit_rejects.fetch_add(1, std::memory_order_relaxed);
    return kNoVictim;
  }
  stats_.victims.fetch_add(1, std::memory_order_relaxed);
  return victim;
}

void PresamplePolicy::IngestNodeFrequencies(
    std::span<const uint64_t> node_counts, const graph::FeatureStore& layout) {
  // Page priorities: sum of member-node counts.
  auto prio = std::make_shared<std::vector<uint64_t>>(layout.num_pages(), 0);
  const size_t n = std::min<size_t>(node_counts.size(), layout.num_nodes());
  uint64_t nonzero_nodes = 0;
  for (size_t v = 0; v < n; ++v) {
    if (node_counts[v] == 0) continue;
    ++nonzero_nodes;
    auto pr = layout.PagesFor(static_cast<graph::NodeId>(v));
    for (uint64_t page = pr.first; page <= pr.last; ++page) {
      (*prio)[page] += node_counts[v];
    }
  }
  uint64_t nonzero_pages = 0;
  for (uint64_t p : *prio) {
    if (p > 0) ++nonzero_pages;
  }
  // Node ranking: count desc, id asc. Zero-count nodes keep ascending-id
  // order at the tail so a static-buffer budget larger than the observed
  // hot set still fills deterministically.
  std::vector<graph::NodeId> ranking(layout.num_nodes());
  for (size_t v = 0; v < ranking.size(); ++v) {
    ranking[v] = static_cast<graph::NodeId>(v);
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     uint64_t ca = a < n ? node_counts[a] : 0;
                     uint64_t cb = b < n ? node_counts[b] : 0;
                     if (ca != cb) return ca > cb;
                     return a < b;
                   });
  {
    std::lock_guard<std::mutex> lock(rank_mu_);
    if (page_priority_ != nullptr) {
      stats_.rerank_rounds.fetch_add(1, std::memory_order_relaxed);
    }
    page_priority_ = std::move(prio);
    ranking_ = std::move(ranking);
  }
  stats_.rank_ingests.fetch_add(1, std::memory_order_relaxed);
  stats_.ranked_nodes.store(nonzero_nodes, std::memory_order_relaxed);
  stats_.ranked_pages.store(nonzero_pages, std::memory_order_relaxed);
}

bool PresamplePolicy::ProvidesHotRanking() const {
  std::lock_guard<std::mutex> lock(rank_mu_);
  return !ranking_.empty();
}

std::vector<graph::NodeId> PresamplePolicy::HotNodeRanking() const {
  std::lock_guard<std::mutex> lock(rank_mu_);
  return ranking_;
}

uint64_t PresamplePolicy::PagePriority(uint64_t page) const {
  std::lock_guard<std::mutex> lock(rank_mu_);
  if (page_priority_ == nullptr || page >= page_priority_->size()) return 0;
  return (*page_priority_)[page];
}

// ---------------------------------------------------------------------------

std::unique_ptr<CachePolicy> MakeCachePolicy(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kRandom:
    case CachePolicyKind::kWindow:
    case CachePolicyKind::kPageRankHot:
      return std::make_unique<RandomEvictionPolicy>(kind);
    case CachePolicyKind::kGinexBelady:
      return std::make_unique<GinexBeladyPolicy>();
    case CachePolicyKind::kPresample:
      return std::make_unique<PresamplePolicy>();
  }
  GIDS_CHECK(false);
  return nullptr;
}

}  // namespace gids::storage
