#ifndef GIDS_GNN_OPTIMIZER_H_
#define GIDS_GNN_OPTIMIZER_H_

#include <vector>

#include "gnn/tensor.h"

namespace gids::gnn {

/// Optimizer interface over flat parameter/gradient lists.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update step; params[i] is updated from grads[i].
  virtual void Step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) = 0;
};

/// SGD with optional momentum.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(float lr, float momentum = 0.0f)
      : lr_(lr), momentum_(momentum) {}

  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba), the optimizer DGL examples default to.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                         float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace gids::gnn

#endif  // GIDS_GNN_OPTIMIZER_H_
