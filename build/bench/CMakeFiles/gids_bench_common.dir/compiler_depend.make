# Empty compiler generated dependencies file for gids_bench_common.
# This may be replaced when dependencies are built.
