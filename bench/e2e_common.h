#ifndef GIDS_BENCH_E2E_COMMON_H_
#define GIDS_BENCH_E2E_COMMON_H_

// Shared implementation for the end-to-end training-time comparisons
// (Figure 13 with Samsung 980 Pro SSDs, Figure 14 with Intel Optane).
// Four dataloaders (DGL-mmap, Ginex, BaM, GIDS) over four real-world
// dataset proxies; Ginex is skipped for heterogeneous graphs, matching
// §4.1. IGBH-Full uses two SSDs (storage capacity, §4.6).

#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {

struct E2ECase {
  graph::DatasetSpec spec;
  double paper_gids_vs_dgl;    // paper's speedup (0 = not reported)
  double paper_gids_vs_ginex;
  double paper_gids_vs_bam;
};

inline double MeasureE2EIterationMs(LoaderKind kind,
                                    const graph::DatasetSpec& spec,
                                    const sim::SsdSpec& ssd) {
  ProxyConfig cfg;
  cfg.spec = spec;
  cfg.ssd = ssd;
  cfg.n_ssd = spec.name == "IGBH-Full" ? 2 : 1;
  Rig rig = BuildRig(cfg);
  core::GidsOptions opts;  // used by BaM/GIDS only
  if (kind == LoaderKind::kGids) {
    opts.hot_node_order = &CachedPageRankOrder(rig.dataset);
  } else if (kind == LoaderKind::kBam) {
    opts = core::GidsOptions::Bam();
  }
  auto loader = MakeLoader(kind, rig, &opts);
  // Scaled-down analogue of the paper's 1000-warmup / 100-measured
  // protocol (§4.1); warm-up fills the page caches / software cache.
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/250, /*measure=*/30);
  return result.mean_iteration_ms();
}

inline void RunE2E(benchmark::State& state, const char* figure,
                   const E2ECase& c, const sim::SsdSpec& ssd) {
  bool hetero = c.spec.kind == graph::GraphKind::kHeterogeneous;
  double dgl_ms = 0;
  double ginex_ms = 0;
  double bam_ms = 0;
  double gids_ms = 0;
  for (auto _ : state) {
    dgl_ms = MeasureE2EIterationMs(LoaderKind::kMmap, c.spec, ssd);
    ginex_ms = hetero ? 0
                      : MeasureE2EIterationMs(LoaderKind::kGinex, c.spec, ssd);
    bam_ms = MeasureE2EIterationMs(LoaderKind::kBam, c.spec, ssd);
    gids_ms = MeasureE2EIterationMs(LoaderKind::kGids, c.spec, ssd);
  }
  state.counters["dgl_ms"] = dgl_ms;
  state.counters["ginex_ms"] = ginex_ms;
  state.counters["bam_ms"] = bam_ms;
  state.counters["gids_ms"] = gids_ms;
  state.counters["gids_vs_dgl"] = dgl_ms / gids_ms;
  state.counters["gids_vs_bam"] = bam_ms / gids_ms;

  ReportRow(figure, c.spec.name + " DGL-mmap", dgl_ms, 0, "ms/iter");
  if (!hetero) {
    ReportRow(figure, c.spec.name + " Ginex", ginex_ms, 0, "ms/iter");
  }
  ReportRow(figure, c.spec.name + " BaM", bam_ms, 0, "ms/iter");
  ReportRow(figure, c.spec.name + " GIDS", gids_ms, 0, "ms/iter");
  ReportRow(figure, c.spec.name + " GIDS speedup vs DGL-mmap",
            dgl_ms / gids_ms, c.paper_gids_vs_dgl, "x");
  if (!hetero) {
    ReportRow(figure, c.spec.name + " GIDS speedup vs Ginex",
              ginex_ms / gids_ms, c.paper_gids_vs_ginex, "x");
  }
  ReportRow(figure, c.spec.name + " GIDS speedup vs BaM", bam_ms / gids_ms,
            c.paper_gids_vs_bam, "x");
}

}  // namespace gids::bench

#endif  // GIDS_BENCH_E2E_COMMON_H_
