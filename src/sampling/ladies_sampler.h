#ifndef GIDS_SAMPLING_LADIES_SAMPLER_H_
#define GIDS_SAMPLING_LADIES_SAMPLER_H_

#include <atomic>
#include <vector>

#include "common/random.h"
#include "graph/csc_graph.h"
#include "sampling/sampler.h"

namespace gids::sampling {

/// LADIES layer-dependent importance sampling (Zou et al., NeurIPS'19;
/// §4.7 of the GIDS paper). Instead of sampling neighbors per node, each
/// layer samples a fixed budget of nodes for the *whole layer* from the
/// union of the current layer's in-neighborhoods, with probability
/// proportional to the squared row-normalized adjacency column:
///     p(u) ∝ Σ_{v in layer} (1 / in_degree(v))^2  over edges (u -> v).
/// Sampled nodes are connected to every current-layer node they neighbor.
struct LadiesSamplerOptions {
  /// Per-layer node budgets, seed-hop first (like fanouts).
  std::vector<uint32_t> layer_sizes;
  /// Keep current-layer nodes in the next layer's source set (standard
  /// LADIES keeps them so self information propagates).
  bool include_self = true;
};

class LadiesSampler : public Sampler {
 public:
  LadiesSampler(const graph::CscGraph* graph, LadiesSamplerOptions options,
                uint64_t seed = 0x1ad1e5);

  std::string_view name() const override { return "LADIES"; }
  int num_layers() const override {
    return static_cast<int>(options_.layer_sizes.size());
  }

  void SampleAtInto(std::span<const graph::NodeId> seeds, uint64_t iteration,
                    MiniBatch* out) override;

 private:
  const graph::CscGraph* graph_;
  LadiesSamplerOptions options_;
  uint64_t seed_;
  /// Cross-iteration high-water marks of the candidate-union size per
  /// layer (seed-hop first). Sizing the weight table from the observed
  /// peak instead of the old `frontier * 8` guess stops steady-state
  /// re-growth; relaxed atomics because SampleAtInto runs concurrently.
  mutable std::vector<std::atomic<uint64_t>> weight_hwm_;
};

}  // namespace gids::sampling

#endif  // GIDS_SAMPLING_LADIES_SAMPLER_H_
