#include "gnn/gat.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "gnn/loss.h"

namespace gids::gnn {

GatConv::GatConv(size_t in_dim, size_t out_dim, bool apply_relu, Rng& rng,
                 float leaky_slope)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      apply_relu_(apply_relu),
      leaky_slope_(leaky_slope),
      weight_(Tensor::Xavier(in_dim, out_dim, rng)),
      att_src_(Tensor::Xavier(1, out_dim, rng)),
      att_dst_(Tensor::Xavier(1, out_dim, rng)),
      bias_(1, out_dim),
      g_weight_(in_dim, out_dim),
      g_att_src_(1, out_dim),
      g_att_dst_(1, out_dim),
      g_bias_(1, out_dim) {}

Tensor GatConv::Forward(const sampling::Block& block, const Tensor& h_src) {
  GIDS_CHECK(h_src.rows() == block.src_nodes.size());
  GIDS_CHECK(h_src.cols() == in_dim_);
  const size_t n_src = block.src_nodes.size();
  const uint32_t num_dst = block.num_dst;

  Tensor z = Matmul(h_src, weight_);  // n_src x out_dim

  // Attention dot products per node.
  std::vector<float> s_src(n_src, 0.0f);
  std::vector<float> s_dst(num_dst, 0.0f);
  for (size_t i = 0; i < n_src; ++i) {
    const float* zi = z.data() + i * out_dim_;
    float acc = 0;
    for (size_t j = 0; j < out_dim_; ++j) acc += zi[j] * att_src_(0, j);
    s_src[i] = acc;
  }
  for (uint32_t d = 0; d < num_dst; ++d) {
    const float* zd = z.data() + static_cast<size_t>(d) * out_dim_;
    float acc = 0;
    for (size_t j = 0; j < out_dim_; ++j) acc += zd[j] * att_dst_(0, j);
    s_dst[d] = acc;
  }

  // Group edges by destination, self loop first.
  cached_edges_.assign(num_dst, DstEdges{});
  for (uint32_t d = 0; d < num_dst; ++d) {
    cached_edges_[d].src.push_back(d);  // self loop
  }
  for (size_t e = 0; e < block.edge_src.size(); ++e) {
    cached_edges_[block.edge_dst[e]].src.push_back(block.edge_src[e]);
  }

  Tensor out(num_dst, out_dim_);
  for (uint32_t d = 0; d < num_dst; ++d) {
    DstEdges& edges = cached_edges_[d];
    const size_t k = edges.src.size();
    edges.pre.resize(k);
    edges.alpha.resize(k);
    float max_logit = -std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < k; ++i) {
      float pre = s_src[edges.src[i]] + s_dst[d];
      edges.pre[i] = pre;
      float activated = pre > 0 ? pre : leaky_slope_ * pre;
      edges.alpha[i] = activated;  // reuse as post-LeakyReLU logit for now
      max_logit = std::max(max_logit, activated);
    }
    float denom = 0;
    for (size_t i = 0; i < k; ++i) {
      edges.alpha[i] = std::exp(edges.alpha[i] - max_logit);
      denom += edges.alpha[i];
    }
    float* out_row = out.data() + static_cast<size_t>(d) * out_dim_;
    for (size_t i = 0; i < k; ++i) {
      edges.alpha[i] /= denom;
      const float* zs = z.data() + static_cast<size_t>(edges.src[i]) * out_dim_;
      for (size_t j = 0; j < out_dim_; ++j) {
        out_row[j] += edges.alpha[i] * zs[j];
      }
    }
    for (size_t j = 0; j < out_dim_; ++j) out_row[j] += bias_(0, j);
  }
  if (apply_relu_) ReluInPlace(out);

  cached_h_ = h_src;
  cached_z_ = std::move(z);
  cached_out_ = out;
  return out;
}

Tensor GatConv::Backward(const sampling::Block& block, const Tensor& d_out) {
  const uint32_t num_dst = block.num_dst;
  GIDS_CHECK(d_out.rows() == num_dst);
  GIDS_CHECK(cached_edges_.size() == num_dst);
  const size_t n_src = block.src_nodes.size();

  Tensor dz_total(n_src, out_dim_);
  std::vector<float> ds_src(n_src, 0.0f);
  std::vector<float> ds_dst(num_dst, 0.0f);

  Tensor g = apply_relu_ ? ReluBackward(d_out, cached_out_) : d_out;

  for (uint32_t d = 0; d < num_dst; ++d) {
    const DstEdges& edges = cached_edges_[d];
    const size_t k = edges.src.size();
    const float* g_row = g.data() + static_cast<size_t>(d) * out_dim_;

    // d(bias).
    for (size_t j = 0; j < out_dim_; ++j) g_bias_(0, j) += g_row[j];

    // d(alpha_i) = g . z_{src_i}; aggregation part of d(z_{src_i}).
    std::vector<float> d_alpha(k);
    for (size_t i = 0; i < k; ++i) {
      const float* zs =
          cached_z_.data() + static_cast<size_t>(edges.src[i]) * out_dim_;
      float* dzs =
          dz_total.data() + static_cast<size_t>(edges.src[i]) * out_dim_;
      float acc = 0;
      for (size_t j = 0; j < out_dim_; ++j) {
        acc += g_row[j] * zs[j];
        dzs[j] += edges.alpha[i] * g_row[j];
      }
      d_alpha[i] = acc;
    }

    // Softmax backward: de_i = alpha_i (d_alpha_i - sum_t alpha_t d_alpha_t).
    float dot = 0;
    for (size_t i = 0; i < k; ++i) dot += edges.alpha[i] * d_alpha[i];
    for (size_t i = 0; i < k; ++i) {
      float de = edges.alpha[i] * (d_alpha[i] - dot);
      // LeakyReLU backward on the raw logit.
      float dpre = edges.pre[i] > 0 ? de : leaky_slope_ * de;
      ds_src[edges.src[i]] += dpre;
      ds_dst[d] += dpre;
    }
  }

  // s_src_i = z_i . a_src; s_dst_d = z_d . a_dst.
  for (size_t i = 0; i < n_src; ++i) {
    const float* zi = cached_z_.data() + i * out_dim_;
    float* dzi = dz_total.data() + i * out_dim_;
    for (size_t j = 0; j < out_dim_; ++j) {
      dzi[j] += ds_src[i] * att_src_(0, j);
      g_att_src_(0, j) += ds_src[i] * zi[j];
    }
  }
  for (uint32_t d = 0; d < num_dst; ++d) {
    const float* zd = cached_z_.data() + static_cast<size_t>(d) * out_dim_;
    float* dzd = dz_total.data() + static_cast<size_t>(d) * out_dim_;
    for (size_t j = 0; j < out_dim_; ++j) {
      dzd[j] += ds_dst[d] * att_dst_(0, j);
      g_att_dst_(0, j) += ds_dst[d] * zd[j];
    }
  }

  // z = h W.
  g_weight_.Axpy(MatmulTN(cached_h_, dz_total), 1.0f);
  return MatmulNT(dz_total, weight_);
}

void GatConv::ZeroGrad() {
  g_weight_.Fill(0.0f);
  g_att_src_.Fill(0.0f);
  g_att_dst_.Fill(0.0f);
  g_bias_.Fill(0.0f);
}

std::vector<Tensor*> GatConv::Params() {
  return {&weight_, &att_src_, &att_dst_, &bias_};
}
std::vector<Tensor*> GatConv::Grads() {
  return {&g_weight_, &g_att_src_, &g_att_dst_, &g_bias_};
}

GatModel::GatModel(const GatConfig& config, Rng& rng) : config_(config) {
  GIDS_CHECK(config.num_layers >= 1);
  GIDS_CHECK(config.in_dim > 0);
  layers_.reserve(config.num_layers);
  for (int l = 0; l < config.num_layers; ++l) {
    size_t in = l == 0 ? config.in_dim : config.hidden_dim;
    size_t out =
        l + 1 == config.num_layers ? config.num_classes : config.hidden_dim;
    layers_.emplace_back(in, out, l + 1 != config.num_layers, rng);
  }
}

Tensor GatModel::Forward(const sampling::MiniBatch& batch,
                         const Tensor& input_features) {
  GIDS_CHECK(batch.blocks.size() == layers_.size());
  Tensor h = input_features;
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l].Forward(batch.blocks[l], h);
  }
  return h;
}

double GatModel::TrainStep(const sampling::MiniBatch& batch,
                           const Tensor& input_features,
                           std::span<const uint32_t> labels,
                           Optimizer& optimizer) {
  ZeroGrad();
  Tensor logits = Forward(batch, input_features);
  Tensor d_logits;
  double loss = SoftmaxCrossEntropy(logits, labels, &d_logits);
  Tensor grad = d_logits;
  for (size_t l = layers_.size(); l-- > 0;) {
    grad = layers_[l].Backward(batch.blocks[l], grad);
  }
  optimizer.Step(Params(), Grads());
  return loss;
}

std::vector<Tensor*> GatModel::Params() {
  std::vector<Tensor*> out;
  for (GatConv& layer : layers_) {
    for (Tensor* p : layer.Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> GatModel::Grads() {
  std::vector<Tensor*> out;
  for (GatConv& layer : layers_) {
    for (Tensor* g : layer.Grads()) out.push_back(g);
  }
  return out;
}

void GatModel::ZeroGrad() {
  for (GatConv& layer : layers_) layer.ZeroGrad();
}

}  // namespace gids::gnn
