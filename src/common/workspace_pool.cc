#include "common/workspace_pool.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

namespace gids {
namespace {

std::byte* AllocBlock(size_t bytes) {
  void* p = std::malloc(bytes);
  GIDS_CHECK(p != nullptr);
  return static_cast<std::byte*>(p);
}

}  // namespace

/// Per-thread stash of blocks for the Default() pool, so steady-state
/// acquire/release on worker threads touches no lock. Registered threads
/// flush back to the global free lists on thread exit; Default() is leaked
/// so that flush always finds the pool alive.
struct WorkspaceThreadCache {
  std::byte* slots[WorkspacePool::kNumBuckets]
                  [WorkspacePool::kThreadCacheSlots] = {};
  size_t count[WorkspacePool::kNumBuckets] = {};
  bool registered = false;

  void Register(WorkspacePool* pool) {
    if (!registered) {
      registered = true;
      pool->live_thread_caches_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ~WorkspaceThreadCache() {
    WorkspacePool& pool = WorkspacePool::Default();
    for (uint32_t b = 0; b < WorkspacePool::kNumBuckets; ++b) {
      for (size_t i = 0; i < count[b]; ++i) pool.PushGlobal(b, slots[b][i]);
      count[b] = 0;
    }
    if (registered) {
      pool.live_thread_caches_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

namespace {
thread_local WorkspaceThreadCache t_cache;
}  // namespace

WorkspacePool& WorkspacePool::Default() {
  static WorkspacePool* pool = new WorkspacePool();  // leaked; see class doc
  return *pool;
}

WorkspacePool::~WorkspacePool() {
  for (auto& bucket : buckets_) {
    for (std::byte* p : bucket.free_list) std::free(p);
    bucket.free_list.clear();
  }
}

uint32_t WorkspacePool::BucketFor(size_t bytes) {
  if (bytes <= kMinBlockBytes) return 0;
  uint32_t b = static_cast<uint32_t>(
      std::bit_width(bytes - 1) - std::bit_width(kMinBlockBytes - 1));
  return b < kNumBuckets ? b : kNumBuckets;
}

std::byte* WorkspacePool::PopGlobal(uint32_t bucket) {
  BucketState& bs = buckets_[bucket];
  std::lock_guard<std::mutex> lock(bs.mu);
  if (bs.free_list.empty()) return nullptr;
  std::byte* p = bs.free_list.back();
  bs.free_list.pop_back();
  return p;
}

void WorkspacePool::PushGlobal(uint32_t bucket, std::byte* p) {
  BucketState& bs = buckets_[bucket];
  std::lock_guard<std::mutex> lock(bs.mu);
  bs.free_list.push_back(p);
}

WorkspacePool::Block WorkspacePool::Acquire(size_t min_bytes) {
  if (min_bytes == 0) return {};
  acquires_.fetch_add(1, std::memory_order_relaxed);

  if (!enabled()) {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    bytes_outstanding_.fetch_add(min_bytes, std::memory_order_relaxed);
    return {AllocBlock(min_bytes), min_bytes, 0, /*pooled=*/false};
  }

  uint32_t bucket = BucketFor(min_bytes);
  if (bucket >= kNumBuckets) {  // oversize: unpooled one-shot allocation
    allocs_.fetch_add(1, std::memory_order_relaxed);
    bytes_outstanding_.fetch_add(min_bytes, std::memory_order_relaxed);
    return {AllocBlock(min_bytes), min_bytes, 0, /*pooled=*/false};
  }

  BucketState& bs = buckets_[bucket];
  bytes_outstanding_.fetch_add(BucketBytes(bucket), std::memory_order_relaxed);
  uint64_t out = bs.outstanding.fetch_add(1, std::memory_order_relaxed) + 1;
  AtomicFetchMax(bs.outstanding_hwm, out);

  Block blk{nullptr, BucketBytes(bucket), bucket, /*pooled=*/true};
  if (this == &Default()) {
    t_cache.Register(this);
    if (t_cache.count[bucket] > 0) {
      blk.data = t_cache.slots[bucket][--t_cache.count[bucket]];
      hits_.fetch_add(1, std::memory_order_relaxed);
      return blk;
    }
  }
  if (std::byte* p = PopGlobal(bucket)) {
    blk.data = p;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return blk;
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  bs.allocs.fetch_add(1, std::memory_order_relaxed);
  bs.created.fetch_add(1, std::memory_order_relaxed);
  blk.data = AllocBlock(blk.bytes);
  return blk;
}

void WorkspacePool::Release(Block b) {
  if (b.data == nullptr) return;
  bytes_outstanding_.fetch_sub(b.bytes, std::memory_order_relaxed);
  if (!b.pooled) {
    std::free(b.data);
    return;
  }
  buckets_[b.bucket].outstanding.fetch_sub(1, std::memory_order_relaxed);
  if (this == &Default() &&
      t_cache.count[b.bucket] < kThreadCacheSlots) {
    t_cache.Register(this);
    t_cache.slots[b.bucket][t_cache.count[b.bucket]++] = b.data;
    return;
  }
  PushGlobal(b.bucket, b.data);
}

void WorkspacePool::Prewarm() {
  if (!enabled()) return;
  uint64_t threads = live_thread_caches_.load(std::memory_order_relaxed) + 1;
  // Demand a class must cover: its own concurrent high-water mark, plus the
  // mark of the class below (a steady-state request that crosses one pow2
  // boundary after warmup lands here), plus every thread cache full of this
  // class — cached blocks are invisible to other threads, so the global
  // list must be able to satisfy peak demand even if each live thread has
  // stranded kThreadCacheSlots blocks.
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    uint64_t hwm = buckets_[b].outstanding_hwm.load(std::memory_order_relaxed);
    if (b > 0) {
      hwm = std::max(
          hwm, buckets_[b - 1].outstanding_hwm.load(std::memory_order_relaxed));
    }
    if (hwm == 0) continue;
    uint64_t want = hwm + threads * kThreadCacheSlots;
    uint64_t have = buckets_[b].created.load(std::memory_order_relaxed);
    for (; have < want; ++have) {
      buckets_[b].created.fetch_add(1, std::memory_order_relaxed);
      PushGlobal(b, AllocBlock(BucketBytes(b)));
    }
  }
}

void WorkspacePool::FlushThreadCache() {
  if (this != &Default()) return;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    for (size_t i = 0; i < t_cache.count[b]; ++i) {
      PushGlobal(b, t_cache.slots[b][i]);
    }
    t_cache.count[b] = 0;
  }
}

}  // namespace gids
