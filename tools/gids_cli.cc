// gids_cli — command-line driver for the GIDS reproduction.
//
//   gids_cli generate --dataset IGB-Full --scale 0.0039 --out igb.gids
//   gids_cli info     --in igb.gids
//   gids_cli run      --dataset IGB-Full --scale 0.0039 --loader gids
//                     --ssd optane --n-ssd 1 --batch 16 --fanout 10,5,5
//                     --warmup 100 --measure 30 [--csv iters.csv]
//                     [--metrics-json=metrics.json] [--metrics-prom=out.prom]
//                     [--prom-buckets] [--trace-json=trace.json]
//                     [--timeline-json=t.json] [--timeline-csv=t.csv]
//                     [--timeline-window-us 1000] [--report-top-k 5]
//                     [--no-accumulator] [--no-window] [--no-cpu-buffer]
//                     [--cpu-buffer-frac 0.1] [--window-depth 8]
//                     [--host-threads 8] [--prefetch-depth 1]
//                     [--no-workspace-pool]
//   gids_cli report   --in t.json [--report-top-k 5]
//
// `run` accepts either --dataset/--scale (generate on the fly) or
// --in <file.gids> (load a saved proxy). Prints a per-stage summary and,
// with --csv, writes per-iteration virtual-time stats for plotting.
// `report` renders a --timeline-json document as the tail-latency
// attribution report (windowed timeline + top-K slowest iterations with
// their dominant cost-ledger component; see OBSERVABILITY.md).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/gids_loader.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "graph/pagerank.h"
#include "graph/serialization.h"
#include "loaders/ginex_loader.h"
#include "loaders/mmap_loader.h"
#include "obs/exemplar.h"
#include "obs/metric_registry.h"
#include "obs/report.h"
#include "obs/time_series.h"
#include "obs/trace_recorder.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/pipeline_des.h"
#include "sim/system_model.h"
#include "storage/cache_policy.h"

namespace {

using namespace gids;

// --- Minimal flag parsing: --key value, --key=value, and boolean --key.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      std::string key = arg.substr(2);
      size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }
  bool GetBool(const std::string& key) const {
    return values_.count(key) > 0;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

StatusOr<graph::DatasetSpec> SpecByName(const std::string& name) {
  for (const auto& spec : graph::DatasetSpec::RealWorld()) {
    if (spec.name == name) return spec;
  }
  for (const auto& spec : graph::DatasetSpec::IgbMicro()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset '" + name +
                          "' (see bench_tab02_datasets for the catalog)");
}

StatusOr<graph::Dataset> ResolveDataset(const Flags& flags) {
  if (flags.Has("in")) {
    return graph::LoadDataset(flags.Get("in", ""));
  }
  GIDS_ASSIGN_OR_RETURN(graph::DatasetSpec spec,
                        SpecByName(flags.Get("dataset", "IGB-tiny")));
  return graph::BuildDataset(spec, flags.GetDouble("scale", 1.0 / 256),
                             static_cast<uint64_t>(flags.GetInt("seed", 42)));
}

std::vector<int> ParseFanout(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

int CmdGenerate(const Flags& flags) {
  auto dataset = ResolveDataset(flags);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::string out = flags.Get("out", "dataset.gids");
  Status s = graph::SaveDataset(*dataset, out);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u nodes, %llu edges, dim %u\n", out.c_str(),
              dataset->graph.num_nodes(),
              static_cast<unsigned long long>(dataset->graph.num_edges()),
              dataset->features.feature_dim());
  return 0;
}

int CmdInfo(const Flags& flags) {
  auto dataset = graph::LoadDataset(flags.Get("in", ""));
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const graph::Dataset& ds = *dataset;
  std::printf("name:           %s (scale %.6f)\n", ds.spec.name.c_str(),
              ds.scale);
  std::printf("kind:           %s\n",
              ds.spec.kind == graph::GraphKind::kHeterogeneous
                  ? "heterogeneous"
                  : "homogeneous");
  std::printf("nodes:          %u\n", ds.graph.num_nodes());
  std::printf("edges:          %llu\n",
              static_cast<unsigned long long>(ds.graph.num_edges()));
  std::printf("feature dim:    %u (%.2f GB total)\n",
              ds.features.feature_dim(),
              static_cast<double>(ds.feature_bytes()) / 1e9);
  std::printf("structure:      %.2f MB (pinned in CPU memory)\n",
              static_cast<double>(ds.structure_bytes()) / 1e6);
  std::printf("train ids:      %zu\n", ds.train_ids.size());
  for (const auto& t : ds.node_types) {
    std::printf("node type:      %-14s [%u, %u)\n", t.name.c_str(), t.offset,
                t.offset + t.count);
  }
  return 0;
}

int CmdRun(const Flags& flags) {
  auto dataset_or = ResolveDataset(flags);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  graph::Dataset dataset = std::move(dataset_or).value();

  std::string ssd_name = flags.Get("ssd", "optane");
  sim::SsdSpec ssd = ssd_name == "samsung" ? sim::SsdSpec::Samsung980Pro()
                                           : sim::SsdSpec::IntelOptane();
  sim::SystemConfig cfg = sim::SystemConfig::Paper(
      ssd, static_cast<int>(flags.GetInt("n-ssd", 1)));
  cfg.memory_scale = flags.GetDouble("memory-scale", dataset.scale);
  sim::SystemModel system(cfg);

  sampling::NeighborSampler sampler(
      &dataset.graph,
      {.fanouts = ParseFanout(flags.Get("fanout", "10,5,5"))},
      static_cast<uint64_t>(flags.GetInt("seed", 42)) ^ 0x5a3e);
  sampling::SeedIterator seeds(
      dataset.train_ids, static_cast<uint32_t>(flags.GetInt("batch", 16)),
      static_cast<uint64_t>(flags.GetInt("seed", 42)) ^ 0x5eed);

  // Observability sinks (see OBSERVABILITY.md). Created whenever an
  // export path was requested; the loaders self-instrument against them.
  obs::MetricRegistry metrics;
  obs::TraceRecorder trace;
  obs::MetricRegistry* metrics_ptr =
      flags.Has("metrics-json") || flags.Has("metrics-prom") ? &metrics
                                                             : nullptr;
  obs::TraceRecorder* trace_ptr =
      flags.Has("trace-json") ? &trace : nullptr;

  // Tail-latency attribution sinks (OBSERVABILITY.md): a windowed
  // time-series over the virtual clock plus a top-K reservoir of the
  // slowest iterations. Only created when a timeline export was requested,
  // so runs without one keep their exact metric/trace output.
  const bool want_timeline =
      flags.Has("timeline-json") || flags.Has("timeline-csv");
  const size_t report_top_k = static_cast<size_t>(
      std::max<long>(1, flags.GetInt("report-top-k", 5)));
  std::unique_ptr<obs::TimeSeries> timeline;
  std::unique_ptr<obs::ExemplarReservoir> exemplars;
  std::unique_ptr<obs::ExemplarReservoir> failover_exemplars;
  if (want_timeline) {
    timeline = std::make_unique<obs::TimeSeries>(
        UsToNs(flags.GetDouble("timeline-window-us", 1000.0)));
    exemplars = std::make_unique<obs::ExemplarReservoir>(report_top_k);
  }

  std::string kind = flags.Get("loader", "gids");
  std::unique_ptr<loaders::DataLoader> loader;
  std::vector<graph::NodeId> hot_order;
  if (kind == "mmap") {
    loader = std::make_unique<loaders::MmapLoader>(
        &dataset, &sampler, &seeds, &system,
        loaders::MmapLoaderOptions{.counting_mode = true,
                                   .metrics = metrics_ptr,
                                   .trace = trace_ptr,
                                   .timeline = timeline.get(),
                                   .exemplars = exemplars.get()});
  } else if (kind == "ginex") {
    loaders::GinexLoaderOptions gopts;
    gopts.counting_mode = true;
    gopts.metrics = metrics_ptr;
    gopts.trace = trace_ptr;
    gopts.timeline = timeline.get();
    gopts.exemplars = exemplars.get();
    loader = std::make_unique<loaders::GinexLoader>(&dataset, &sampler,
                                                    &seeds, &system, gopts);
  } else if (kind == "bam" || kind == "gids") {
    core::GidsOptions opts =
        kind == "bam" ? core::GidsOptions::Bam() : core::GidsOptions{};
    opts.counting_mode = true;
    if (flags.GetBool("no-accumulator")) opts.use_accumulator = false;
    if (flags.GetBool("no-window")) opts.use_window_buffering = false;
    if (flags.GetBool("no-cpu-buffer")) opts.use_cpu_buffer = false;
    opts.cpu_buffer_fraction = flags.GetDouble("cpu-buffer-frac", 0.10);
    opts.window_depth =
        static_cast<int>(flags.GetInt("window-depth", 8));
    opts.host_threads =
        static_cast<uint32_t>(flags.GetInt("host-threads", 1));
    opts.prefetch_depth =
        static_cast<uint32_t>(flags.GetInt("prefetch-depth", 0));
    opts.coalesce_pages = flags.GetBool("coalesce-pages");
    // Escape hatch for the size-bucketed workspace pool (DESIGN.md §11):
    // every scratch acquire falls back to plain malloc/free. Results are
    // bit-identical either way.
    if (flags.GetBool("no-workspace-pool")) opts.workspace_pool = false;
    // Storage fault injection & retry policy (FAULTS.md).
    opts.fault_rate = flags.GetDouble("fault-rate", 0.0);
    opts.fault_seed =
        static_cast<uint64_t>(flags.GetInt("fault-seed", 0xfa017));
    opts.latency_spike_rate = flags.GetDouble("latency-spike-rate", 0.0);
    opts.latency_spike_ns =
        UsToNs(flags.GetDouble("latency-spike-us", 500.0));
    opts.stuck_queue_rate = flags.GetDouble("stuck-queue-rate", 0.0);
    opts.offline_device =
        static_cast<int>(flags.GetInt("offline-device", -1));
    if (flags.Has("offline-devices")) {
      opts.offline_devices = ParseFanout(flags.Get("offline-devices", ""));
    }
    opts.offline_at_ns = UsToNs(flags.GetDouble("offline-at-us", 0.0));
    opts.io_max_retries =
        static_cast<uint32_t>(flags.GetInt("io-max-retries", 4));
    opts.io_timeout_ns = UsToNs(flags.GetDouble("io-timeout-us", 1000.0));
    opts.io_backoff_ns = UsToNs(flags.GetDouble("io-backoff-us", 20.0));
    // End-to-end data integrity (INTEGRITY.md).
    opts.corruption_rate = flags.GetDouble("corruption-rate", 0.0);
    opts.crc_seed =
        static_cast<uint64_t>(flags.GetInt("crc-seed", 0xc3c32c));
    opts.verify_reads = flags.GetBool("verify-reads");
    opts.verify_cache_fill = flags.GetBool("verify-cache-fill");
    opts.verify_cache_hit = flags.GetBool("verify-cache-hit");
    opts.scrub_pages_per_iter =
        static_cast<uint32_t>(flags.GetInt("scrub-pages-per-iter", 0));
    // Durability & replication (FAULTS.md "Durability & failover").
    opts.replication_factor =
        static_cast<int>(flags.GetInt("replication-factor", 1));
    opts.write_quorum = static_cast<int>(flags.GetInt("write-quorum", 0));
    opts.updates_per_iter =
        static_cast<uint32_t>(flags.GetInt("updates-per-iter", 0));
    opts.edge_ops_per_iter =
        static_cast<uint32_t>(flags.GetInt("edge-ops-per-iter", 0));
    opts.mutation_seed = static_cast<uint64_t>(
        flags.GetInt("mutation-seed", 0x6d7574a73ll));
    opts.durability = flags.Get("durability", "quorum");
    opts.journal_apply_budget =
        static_cast<uint64_t>(flags.GetInt("journal-apply-budget", 0));
    opts.crash_at_group =
        static_cast<int>(flags.GetInt("crash-at-group", -1));
    opts.crash_seed =
        static_cast<uint64_t>(flags.GetInt("crash-seed", 0xc4a54));
    if (want_timeline && opts.replication_factor > 1) {
      failover_exemplars = std::make_unique<obs::ExemplarReservoir>(
          report_top_k, obs::ExemplarReservoir::RankBy::kMostFailovers);
      opts.failover_exemplars = failover_exemplars.get();
    }
    // Cache policy selection (CACHING.md). The default keeps the kind the
    // loader preset chose (pagerank for gids, random for bam).
    if (flags.Has("cache-policy")) {
      std::string policy_name = flags.Get("cache-policy", "");
      storage::CachePolicyKind policy_kind;
      if (!storage::ParseCachePolicyKind(policy_name, &policy_kind)) {
        std::fprintf(stderr,
                     "unknown --cache-policy '%s' (random, window, "
                     "pagerank, belady, presample)\n",
                     policy_name.c_str());
        return 2;
      }
      opts.cache_policy = policy_kind;
      std::printf("cache policy: %s\n",
                  storage::CachePolicyKindName(policy_kind));
    }
    opts.presample_iterations =
        static_cast<uint32_t>(flags.GetInt("presample-iters", 32));
    opts.presample_seed =
        static_cast<uint64_t>(flags.GetInt("presample-seed", 0x9e5a));
    opts.presample_rerank_groups =
        static_cast<uint32_t>(flags.GetInt("presample-rerank-groups", 0));
    if (opts.use_cpu_buffer &&
        opts.cache_policy != storage::CachePolicyKind::kPresample) {
      // The presample policy ranks the buffer itself; every other kind
      // pins by the precomputed PageRank order, as before.
      auto score = graph::WeightedReversePageRank(dataset.graph, {});
      hot_order = graph::RankNodesByScore(score);
      opts.hot_node_order = &hot_order;
    }
    opts.metrics = metrics_ptr;
    opts.trace = trace_ptr;
    opts.timeline = timeline.get();
    opts.exemplars = exemplars.get();
    loader = std::make_unique<core::GidsLoader>(&dataset, &sampler, &seeds,
                                                &system, opts);
  } else {
    std::fprintf(stderr, "unknown loader '%s' (mmap|ginex|bam|gids)\n",
                 kind.c_str());
    return 2;
  }

  core::Trainer trainer(
      &dataset,
      {.warmup_iterations =
           static_cast<uint64_t>(flags.GetInt("warmup", 100)),
       .measure_iterations =
           static_cast<uint64_t>(flags.GetInt("measure", 30))});
  auto result = trainer.Run(*loader);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const loaders::IterationStats& m = result->measured;
  uint64_t n = result->per_iteration.size();
  std::printf("loader:       %s on %s x%d\n",
              std::string(loader->name()).c_str(), ssd.name.c_str(),
              cfg.n_ssd);
  std::printf("iterations:   %llu measured (after %ld warm-up)\n",
              static_cast<unsigned long long>(n), flags.GetInt("warmup", 100));
  std::printf("e2e:          %.3f virtual ms/iter\n",
              result->mean_iteration_ms());
  std::printf("  sampling    %.3f ms/iter\n", NsToMs(m.sampling_ns) / n);
  std::printf("  aggregation %.3f ms/iter\n", NsToMs(m.aggregation_ns) / n);
  std::printf("  transfer    %.3f ms/iter\n", NsToMs(m.transfer_ns) / n);
  std::printf("  training    %.3f ms/iter\n", NsToMs(m.training_ns) / n);
  std::printf("traffic:      %llu cache hits, %llu CPU-buffer hits, "
              "%llu storage reads\n",
              static_cast<unsigned long long>(m.gather.gpu_cache_hits),
              static_cast<unsigned long long>(m.gather.cpu_buffer_hits),
              static_cast<unsigned long long>(m.gather.storage_reads));
  std::printf("cache hit:    %.1f%%\n",
              100.0 * result->gpu_cache_hit_ratio());
  if (m.gather.degraded_nodes > 0) {
    std::printf("degraded:     %llu nodes zero-filled after exhausted "
                "retries (see FAULTS.md)\n",
                static_cast<unsigned long long>(m.gather.degraded_nodes));
  }
  if (m.gather.corrupt_nodes > 0) {
    std::printf("corrupt:      %llu nodes zero-filled after unrepairable "
                "checksum mismatches (see INTEGRITY.md)\n",
                static_cast<unsigned long long>(m.gather.corrupt_nodes));
  }
  std::string journal_json;
  if (auto* gids = dynamic_cast<core::GidsLoader*>(loader.get());
      gids != nullptr) {
    const storage::StorageArray& sa = gids->storage_array();
    if (sa.verified_reads_total() > 0) {
      std::printf("integrity:    %llu reads verified, %llu mismatches, "
                  "%llu repaired, %llu lost (see INTEGRITY.md)\n",
                  static_cast<unsigned long long>(sa.verified_reads_total()),
                  static_cast<unsigned long long>(
                      sa.checksum_mismatches_total()),
                  static_cast<unsigned long long>(
                      sa.integrity_repairs_total()),
                  static_cast<unsigned long long>(sa.data_loss_total()));
    }
    if (sa.replica_set() != nullptr) {
      std::printf("replication:  factor %d, %llu reads failed over, "
                  "%llu lost quorum (see FAULTS.md)\n",
                  sa.replica_set()->options().replication_factor,
                  static_cast<unsigned long long>(
                      sa.replica_failovers_total()),
                  static_cast<unsigned long long>(
                      sa.replica_quorum_lost_total()));
    }
    if (sa.journal_enabled()) {
      const storage::JournalCounters& jc = sa.journal()->counters();
      std::printf("journal:      %llu appends, %llu fsyncs, %llu applied, "
                  "%llu replayed, %llu resubmitted, write amp %.2f\n",
                  static_cast<unsigned long long>(jc.appends.load()),
                  static_cast<unsigned long long>(jc.fsyncs.load()),
                  static_cast<unsigned long long>(jc.applied.load()),
                  static_cast<unsigned long long>(jc.replayed.load()),
                  static_cast<unsigned long long>(jc.resubmitted.load()),
                  sa.journal()->WriteAmplification());
      char jbuf[512];
      std::snprintf(
          jbuf, sizeof(jbuf),
          "{\"appends\":%llu,\"fsyncs\":%llu,\"applied\":%llu,"
          "\"replayed\":%llu,\"truncated\":%llu,\"torn\":%llu,"
          "\"resubmitted\":%llu,\"quorum_stalls\":%llu,\"crashes\":%llu,"
          "\"recovers\":%llu,\"pending\":%llu,\"write_amplification\":%.4f}",
          static_cast<unsigned long long>(jc.appends.load()),
          static_cast<unsigned long long>(jc.fsyncs.load()),
          static_cast<unsigned long long>(jc.applied.load()),
          static_cast<unsigned long long>(jc.replayed.load()),
          static_cast<unsigned long long>(jc.truncated.load()),
          static_cast<unsigned long long>(jc.torn.load()),
          static_cast<unsigned long long>(jc.resubmitted.load()),
          static_cast<unsigned long long>(jc.quorum_stalls.load()),
          static_cast<unsigned long long>(jc.crashes.load()),
          static_cast<unsigned long long>(jc.recovers.load()),
          static_cast<unsigned long long>(sa.journal()->pending_records()),
          sa.journal()->WriteAmplification());
      journal_json = jbuf;
    }
  }

  if (flags.Has("metrics-json")) {
    std::string path = flags.Get("metrics-json", "metrics.json");
    Status s = metrics.WriteJson(path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu series)\n", path.c_str(),
                metrics.Snapshot().size());
  }
  if (flags.Has("metrics-prom")) {
    std::string path = flags.Get("metrics-prom", "metrics.prom");
    // --prom-buckets switches histograms from quantile summaries to native
    // cumulative _bucket{le=...} exposition (OBSERVABILITY.md).
    Status s = metrics.WritePrometheusText(path, flags.GetBool("prom-buckets"));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu series)\n", path.c_str(),
                metrics.Snapshot().size());
  }
  if (flags.Has("trace-json")) {
    std::string path = flags.Get("trace-json", "trace.json");
    Status s = trace.WriteJson(path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events; open in chrome://tracing)\n",
                path.c_str(), trace.num_events());
  }
  if (flags.Has("timeline-json")) {
    std::string path = flags.Get("timeline-json", "timeline.json");
    obs::TimelineExtras extras;
    extras.failover_exemplars = failover_exemplars.get();
    extras.journal_json = journal_json;
    Status s = obs::WriteTimelineJson(path, std::string(loader->name()),
                                      *timeline, *exemplars, &extras);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu windows, %zu exemplars; render with "
                "`gids_cli report --in %s`)\n",
                path.c_str(), timeline->windows().size(), exemplars->size(),
                path.c_str());
  }
  if (flags.Has("timeline-csv")) {
    std::string path = flags.Get("timeline-csv", "timeline.csv");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::string csv = timeline->ToCsv();
    size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
    int close_rc = std::fclose(f);
    if (written != csv.size() || close_rc != 0) {
      std::fprintf(stderr, "short write to %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu windows)\n", path.c_str(),
                timeline->windows().size());
  }

  if (flags.Has("trace")) {
    // Replay the measured stage costs through the pipeline DES and export
    // a chrome://tracing timeline of the run.
    std::vector<sim::StageCosts> stages;
    for (const auto& st : result->per_iteration) {
      stages.push_back(sim::StageCosts{.sampling_ns = st.sampling_ns,
                                       .aggregation_ns = st.aggregation_ns,
                                       .transfer_ns = st.transfer_ns,
                                       .training_ns = st.training_ns});
    }
    sim::PipelinePolicy policy =
        kind == "mmap" ? sim::PipelinePolicy::kSerial
        : kind == "ginex"
            ? sim::PipelinePolicy::kPrepOverlapsAggregation
            : sim::PipelinePolicy::kDecoupled;
    std::vector<sim::TaskInterval> timeline;
    sim::PipelineResult des = sim::SimulatePipeline(stages, policy, &timeline);
    std::string path = flags.Get("trace", "pipeline_trace.json");
    Status s = sim::WriteChromeTrace(timeline, path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (makespan %.3f ms; GPU %.0f%% / IO %.0f%% / "
                "CPU %.0f%% utilized)\n",
                path.c_str(), NsToMs(des.makespan_ns),
                100 * des.gpu_utilization(), 100 * des.io_utilization(),
                100 * des.cpu_utilization());
  }

  if (flags.Has("csv")) {
    std::string path = flags.Get("csv", "iterations.csv");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "iter,e2e_ms,sampling_ms,aggregation_ms,transfer_ms,"
                 "training_ms,input_nodes,cache_hits,cpu_buffer_hits,"
                 "storage_reads,merged_group\n");
    for (size_t i = 0; i < result->per_iteration.size(); ++i) {
      const auto& st = result->per_iteration[i];
      std::fprintf(
          f, "%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%llu,%llu,%llu,%llu,%u\n", i,
          NsToMs(st.e2e_ns), NsToMs(st.sampling_ns),
          NsToMs(st.aggregation_ns), NsToMs(st.transfer_ns),
          NsToMs(st.training_ns),
          static_cast<unsigned long long>(st.input_nodes),
          static_cast<unsigned long long>(st.gather.gpu_cache_hits),
          static_cast<unsigned long long>(st.gather.cpu_buffer_hits),
          static_cast<unsigned long long>(st.gather.storage_reads),
          st.merged_group);
    }
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int CmdReport(const Flags& flags) {
  std::string path = flags.Get("in", "");
  if (path.empty()) {
    std::fprintf(stderr, "report requires --in <timeline.json>\n");
    return 2;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string doc;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    doc.append(buf, got);
  }
  std::fclose(f);
  auto report = obs::RenderTimelineReport(
      doc, static_cast<size_t>(
               std::max<long>(1, flags.GetInt("report-top-k", 5))));
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->c_str(), stdout);
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: gids_cli <generate|info|run|report> [--flags]\n"
      "  generate --dataset NAME --scale S [--seed N] --out FILE\n"
      "  info     --in FILE\n"
      "  report   --in TIMELINE.json [--report-top-k K]\n"
      "           (tail-latency attribution from a --timeline-json run)\n"
      "  run      (--dataset NAME --scale S | --in FILE)\n"
      "           --loader mmap|ginex|bam|gids --ssd optane|samsung\n"
      "           [--n-ssd N --batch B --fanout a,b,c --warmup W\n"
      "            --measure M --csv FILE --trace FILE.json\n"
      "            --metrics-json FILE --metrics-prom FILE\n"
      "            --prom-buckets (cumulative _bucket{le=...} exposition)\n"
      "            --trace-json FILE (per-iteration virtual-time spans)\n"
      "            --timeline-json FILE --timeline-csv FILE\n"
      "            --timeline-window-us U --report-top-k K\n"
      "            (windowed timeline + cost-ledger exemplars;\n"
      "             OBSERVABILITY.md)\n"
      "            --no-accumulator --no-window --no-cpu-buffer\n"
      "            --cpu-buffer-frac F --window-depth D\n"
      "            --host-threads N (parallel data prep, bam/gids)\n"
      "            --prefetch-depth P (async group prefetch, bam/gids)\n"
      "            --coalesce-pages (one round-trip per distinct page)\n"
      "            --no-workspace-pool (scratch via plain malloc/free;\n"
      "             bit-identical escape hatch, DESIGN.md §11)\n"
      "            --cache-policy random|window|pagerank|belady|presample\n"
      "            --presample-iters N --presample-seed N\n"
      "            --presample-rerank-groups G\n"
      "            (cache replacement/admission policy; see CACHING.md)\n"
      "            --fault-rate F --fault-seed N (storage fault injection)\n"
      "            --latency-spike-rate F --latency-spike-us U\n"
      "            --stuck-queue-rate F --offline-device D\n"
      "            --offline-devices D1,D2 --offline-at-us U\n"
      "            (outage set + virtual-time onset; see FAULTS.md)\n"
      "            --io-max-retries R --io-timeout-us U --io-backoff-us U\n"
      "            (retry/degraded-mode policy; see FAULTS.md)\n"
      "            --replication-factor R --write-quorum Q\n"
      "            --updates-per-iter N --edge-ops-per-iter N\n"
      "            --mutation-seed N --durability "
      "none|journaled|synced|quorum\n"
      "            --journal-apply-budget B --crash-at-group G "
      "--crash-seed N\n"
      "            (durability, replication & failover; FAULTS.md)\n"
      "            --corruption-rate F --crc-seed N --verify-reads\n"
      "            --verify-cache-fill --verify-cache-hit\n"
      "            --scrub-pages-per-iter P\n"
      "            (checksums & silent-corruption repair; INTEGRITY.md)]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  Flags flags(argc, argv, 2);
  std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "report") return CmdReport(flags);
  Usage();
  return 2;
}
