#include "sim/aggregation_model.h"

#include <gtest/gtest.h>

namespace gids::sim {
namespace {

SystemModel OptaneSystem(int n_ssd = 1) {
  return SystemModel(SystemConfig::Paper(SsdSpec::IntelOptane(), n_ssd));
}

TEST(AggregationModelTest, EmptyCountsAreFree) {
  SystemModel sys = OptaneSystem();
  AggregationTiming t = ComputeAggregationTiming(sys, AggregationCounts{});
  EXPECT_EQ(t.total_ns, 0);
}

TEST(AggregationModelTest, PureSsdTrafficBoundedByPeak) {
  SystemModel sys = OptaneSystem();
  AggregationCounts c;
  c.ssd_reads = 1000000;
  c.outstanding_accesses = 100000;
  AggregationTiming t = ComputeAggregationTiming(sys, c);
  EXPECT_LE(t.ssd_bandwidth_bps, 1.02 * sys.ssd_array_peak_bps());
  EXPECT_GT(t.ssd_bandwidth_bps, 0.9 * sys.ssd_array_peak_bps());
}

TEST(AggregationModelTest, LowConcurrencyHurtsBandwidth) {
  SystemModel sys = OptaneSystem();
  AggregationCounts starved;
  starved.ssd_reads = 100000;
  starved.outstanding_accesses = 4;
  AggregationCounts saturated = starved;
  saturated.outstanding_accesses = 10000;
  double bw_starved =
      ComputeAggregationTiming(sys, starved).ssd_bandwidth_bps;
  double bw_saturated =
      ComputeAggregationTiming(sys, saturated).ssd_bandwidth_bps;
  EXPECT_LT(bw_starved * 2, bw_saturated);
}

TEST(AggregationModelTest, CpuBufferRaisesEffectiveBandwidthBeyondSsd) {
  // The §3.3 effect: redirecting hot traffic to the CPU buffer lifts
  // effective bandwidth above the single-SSD peak, toward PCIe.
  SystemModel sys = OptaneSystem();
  AggregationCounts ssd_only;
  ssd_only.ssd_reads = 1000000;
  ssd_only.outstanding_accesses = 100000;

  AggregationCounts redirected;
  redirected.ssd_reads = 300000;
  redirected.cpu_buffer_hits = 700000;
  redirected.outstanding_accesses = 100000;

  double eff_ssd =
      ComputeAggregationTiming(sys, ssd_only).effective_bandwidth_bps;
  double eff_buf =
      ComputeAggregationTiming(sys, redirected).effective_bandwidth_bps;
  EXPECT_GT(eff_buf, 2.0 * eff_ssd);
  EXPECT_GT(eff_buf, sys.ssd_array_peak_bps());
  EXPECT_LE(eff_buf, sys.pcie().bandwidth_bps() * 1.01);
}

TEST(AggregationModelTest, CacheHitsRideForFree) {
  // GPU-cache hits do not consume PCIe; they raise effective bandwidth
  // above the ingress bandwidth (the Fig. 10 baseline's 6.6 > 5.8 GB/s).
  SystemModel sys = OptaneSystem();
  AggregationCounts c;
  c.ssd_reads = 900000;
  c.gpu_cache_hits = 100000;
  c.outstanding_accesses = 100000;
  AggregationTiming t = ComputeAggregationTiming(sys, c);
  EXPECT_GT(t.effective_bandwidth_bps, t.pcie_ingress_bps);
  EXPECT_GT(t.effective_bandwidth_bps, sys.ssd_array_peak_bps());
}

TEST(AggregationModelTest, PcieFloorCapsIngress) {
  SystemModel sys = OptaneSystem(8);  // 8 Optane SSDs ~ 49 GB/s > PCIe
  AggregationCounts c;
  c.ssd_reads = 4000000;
  c.outstanding_accesses = 1000000;
  AggregationTiming t = ComputeAggregationTiming(sys, c);
  EXPECT_LE(t.pcie_ingress_bps, sys.pcie().bandwidth_bps() * 1.01);
}

TEST(AggregationModelTest, RedirectInterferenceSlowsSsdPath) {
  // §4.3: warps copying CPU-buffer data cannot enqueue storage accesses,
  // so the same SSD traffic takes slightly longer when a large share of
  // accesses is redirected.
  SystemConfig cfg = SystemConfig::Paper(SsdSpec::IntelOptane());
  cfg.redirect_interference = 0.3;
  SystemModel sys(cfg);

  AggregationCounts no_redirect;
  no_redirect.ssd_reads = 100000;
  no_redirect.outstanding_accesses = 2000;

  AggregationCounts with_redirect = no_redirect;
  with_redirect.cpu_buffer_hits = 100000;  // 50% redirect share
  // Same total outstanding; the SSD-bound share of the window shrinks.

  TimeNs t_plain = ComputeAggregationTiming(sys, no_redirect).ssd_ns;
  TimeNs t_redirect = ComputeAggregationTiming(sys, with_redirect).ssd_ns;
  EXPECT_GE(t_redirect, t_plain);
}

TEST(AggregationModelTest, FeatureByteAccounting) {
  SystemModel sys = OptaneSystem();
  AggregationCounts c;
  c.ssd_reads = 10;
  c.cpu_buffer_hits = 20;
  c.gpu_cache_hits = 30;
  c.outstanding_accesses = 60;
  AggregationTiming t = ComputeAggregationTiming(sys, c);
  EXPECT_EQ(t.pcie_ingress_bytes, (10u + 20u) * 4096u);
  EXPECT_EQ(t.feature_bytes, 60u * 4096u);
}

TEST(AggregationModelTest, EventDrivenAgreesWithEstimate) {
  SystemConfig cfg = SystemConfig::Paper(SsdSpec::IntelOptane(), 2);
  SystemModel estimate_sys(cfg);
  cfg.event_driven_ssd = true;
  SystemModel des_sys(cfg);

  AggregationCounts c;
  c.ssd_reads = 50000;
  c.cpu_buffer_hits = 20000;
  c.gpu_cache_hits = 10000;
  c.outstanding_accesses = 4000;
  AggregationTiming est = ComputeAggregationTiming(estimate_sys, c);
  AggregationTiming des = ComputeAggregationTiming(des_sys, c);
  EXPECT_NEAR(static_cast<double>(des.total_ns),
              static_cast<double>(est.total_ns), 0.12 * est.total_ns);
  EXPECT_NEAR(des.effective_bandwidth_bps, est.effective_bandwidth_bps,
              0.12 * est.effective_bandwidth_bps);
}

class MoreSsdsTest : public ::testing::TestWithParam<int> {};

TEST_P(MoreSsdsTest, SsdBandwidthScalesUntilPcie) {
  SystemModel sys = OptaneSystem(GetParam());
  AggregationCounts c;
  c.ssd_reads = 2000000;
  c.outstanding_accesses = 500000;
  AggregationTiming t = ComputeAggregationTiming(sys, c);
  double expected =
      std::min(sys.ssd_array_peak_bps(), sys.pcie().bandwidth_bps());
  EXPECT_NEAR(t.ssd_bandwidth_bps, expected, 0.1 * expected);
}

INSTANTIATE_TEST_SUITE_P(SsdScaling, MoreSsdsTest,
                         ::testing::Values(1, 2, 4, 5, 8, 10));

}  // namespace
}  // namespace gids::sim
