#include "common/workspace_pool.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace gids {
namespace {

TEST(WorkspacePoolTest, BucketForRoundsUpToPowerOfTwoClasses) {
  EXPECT_EQ(WorkspacePool::BucketFor(1), 0u);
  EXPECT_EQ(WorkspacePool::BucketFor(64), 0u);
  EXPECT_EQ(WorkspacePool::BucketFor(65), 1u);
  EXPECT_EQ(WorkspacePool::BucketFor(128), 1u);
  EXPECT_EQ(WorkspacePool::BucketFor(129), 2u);
  EXPECT_EQ(WorkspacePool::BucketFor(1 << 20), 14u);
  // Above the largest class the request is served unpooled.
  size_t max_class = WorkspacePool::BucketBytes(WorkspacePool::kNumBuckets - 1);
  EXPECT_EQ(WorkspacePool::BucketFor(max_class),
            WorkspacePool::kNumBuckets - 1);
  EXPECT_EQ(WorkspacePool::BucketFor(max_class + 1), WorkspacePool::kNumBuckets);
}

TEST(WorkspacePoolTest, ReleaseThenAcquireIsAHit) {
  WorkspacePool pool;
  WorkspacePool::Block a = pool.Acquire(100);
  EXPECT_EQ(a.bytes, 128u);
  EXPECT_TRUE(a.pooled);
  EXPECT_EQ(pool.allocs_total(), 1u);
  EXPECT_EQ(pool.hits_total(), 0u);
  std::byte* data = a.data;
  pool.Release(a);
  EXPECT_EQ(pool.bytes_outstanding(), 0u);

  WorkspacePool::Block b = pool.Acquire(70);  // same class
  EXPECT_EQ(b.data, data);
  EXPECT_EQ(pool.hits_total(), 1u);
  EXPECT_EQ(pool.allocs_total(), 1u);
  EXPECT_EQ(pool.acquires_total(), 2u);
  pool.Release(b);
}

TEST(WorkspacePoolTest, DisabledModeIsMallocPassthrough) {
  WorkspacePool pool;
  pool.set_enabled(false);
  WorkspacePool::Block a = pool.Acquire(100);
  EXPECT_FALSE(a.pooled);
  EXPECT_EQ(a.bytes, 100u);
  pool.Release(a);
  WorkspacePool::Block b = pool.Acquire(100);
  EXPECT_FALSE(b.pooled);
  pool.Release(b);
  EXPECT_EQ(pool.allocs_total(), 2u);  // nothing is ever reused
  EXPECT_EQ(pool.hits_total(), 0u);
  EXPECT_EQ(pool.bytes_outstanding(), 0u);
}

TEST(WorkspacePoolTest, PerBucketAllocCountsTrackClasses) {
  WorkspacePool pool;
  pool.Release(pool.Acquire(64));    // bucket 0
  pool.Release(pool.Acquire(1000));  // bucket 4 (1024)
  pool.Release(pool.Acquire(1024));  // bucket 4 again: reuse
  EXPECT_EQ(pool.allocs_total(0), 1u);
  EXPECT_EQ(pool.allocs_total(4), 1u);
  EXPECT_EQ(pool.allocs_total(), 2u);
  EXPECT_EQ(pool.hits_total(), 1u);
}

TEST(WorkspacePoolTest, PrewarmMakesSteadyStateAllocationFree) {
  WorkspacePool pool;
  // Warmup phase: acquire a peak of three concurrent 4 KiB blocks.
  std::vector<WorkspacePool::Block> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.Acquire(4096));
  for (auto& b : held) pool.Release(b);
  held.clear();
  pool.Prewarm();

  uint64_t allocs_before = pool.allocs_total();
  for (int iter = 0; iter < 100; ++iter) {
    for (int i = 0; i < 3; ++i) held.push_back(pool.Acquire(4096));
    // One request crossing a single pow2 class upward must also be free.
    WorkspacePool::Block up = pool.Acquire(5000);
    pool.Release(up);
    for (auto& b : held) pool.Release(b);
    held.clear();
  }
  EXPECT_EQ(pool.allocs_total(), allocs_before);
}

TEST(WorkspacePoolTest, DefaultPoolThreadCacheServesRepeatAcquires) {
  WorkspacePool& pool = WorkspacePool::Default();
  // Prime this thread's cache, then measure a reuse cycle by deltas (the
  // default pool's counters are shared process-wide).
  pool.Release(pool.Acquire(256));
  uint64_t hits = pool.hits_total();
  uint64_t allocs = pool.allocs_total();
  for (int i = 0; i < 10; ++i) pool.Release(pool.Acquire(256));
  EXPECT_EQ(pool.hits_total(), hits + 10);
  EXPECT_EQ(pool.allocs_total(), allocs);
  EXPECT_GE(pool.live_thread_caches(), 1u);
}

TEST(WorkspacePoolTest, ConcurrentAcquireReleaseKeepsBooks) {
  WorkspacePool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        WorkspacePool::Block b = pool.Acquire(64u << (t % 4));
        b.data[0] = std::byte{1};
        pool.Release(b);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.acquires_total(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(pool.hits_total() + pool.allocs_total(), pool.acquires_total());
  EXPECT_EQ(pool.bytes_outstanding(), 0u);
}

TEST(WorkspaceTest, ResizeValueInitializesLikeVector) {
  WorkspacePool pool;
  {
    Workspace<uint32_t> w(&pool);
    w.resize(100);
    for (uint32_t v : w) EXPECT_EQ(v, 0u);
    for (size_t i = 0; i < w.size(); ++i) w[i] = 0xdeadbeef;
  }
  {
    // A second workspace reusing the same recycled block must still read
    // zeros after resize — the pooled/unpooled bit-identity contract.
    Workspace<uint32_t> w(&pool);
    w.resize(100);
    for (uint32_t v : w) EXPECT_EQ(v, 0u);
  }
}

TEST(WorkspaceTest, PushBackGrowsAcrossClassesPreservingContents) {
  WorkspacePool pool;
  Workspace<uint64_t> w(&pool);
  for (uint64_t i = 0; i < 10000; ++i) w.push_back(i * 3);
  ASSERT_EQ(w.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) ASSERT_EQ(w[i], i * 3);
}

TEST(WorkspaceTest, ClearKeepsCapacityForReuse) {
  WorkspacePool pool;
  Workspace<int> w(&pool);
  w.resize(1000);
  size_t cap = w.capacity();
  uint64_t allocs = pool.allocs_total();
  for (int iter = 0; iter < 50; ++iter) {
    w.clear();
    for (int i = 0; i < 1000; ++i) w.push_back(i);
  }
  EXPECT_EQ(w.capacity(), cap);
  EXPECT_EQ(pool.allocs_total(), allocs);
}

TEST(WorkspaceTest, MoveTransfersOwnership) {
  WorkspacePool pool;
  Workspace<int> a(&pool);
  a.push_back(7);
  Workspace<int> b(std::move(a));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(a.size(), 0u);
  a = std::move(b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 7);
}

TEST(WorkspaceTest, AssignFillAndRange) {
  WorkspacePool pool;
  Workspace<int> w(&pool);
  w.assign(5, 42);
  ASSERT_EQ(w.size(), 5u);
  for (int v : w) EXPECT_EQ(v, 42);
  std::vector<int> src = {1, 2, 3};
  w.assign(src.begin(), src.end());
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[2], 3);
}

TEST(PooledFlatMapTest, TryEmplaceMatchesUnorderedMapContract) {
  WorkspacePool pool;
  PooledFlatMap<uint32_t, uint32_t> map(&pool);
  map.Reset(4);
  auto [slot, inserted] = map.TryEmplace(17, 100);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 100u);
  auto [again, inserted2] = map.TryEmplace(17, 999);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*again, 100u);  // existing value wins, like try_emplace
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(17), 100u);
  EXPECT_EQ(map.Find(18), nullptr);
}

TEST(PooledFlatMapTest, GrowsPastResetHintAndKeepsAllEntries) {
  WorkspacePool pool;
  PooledFlatMap<uint64_t, uint32_t> map(&pool);
  map.Reset(2);  // force several rehashes
  constexpr uint32_t kN = 5000;
  for (uint32_t i = 0; i < kN; ++i) {
    auto [slot, inserted] = map.TryEmplace(i * 977, i);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(*slot, i);
  }
  EXPECT_EQ(map.size(), kN);
  for (uint32_t i = 0; i < kN; ++i) {
    auto* v = map.Find(i * 977);
    ASSERT_NE(v, nullptr);
    ASSERT_EQ(*v, i);
  }
}

TEST(PooledFlatMapTest, ResetClearsEntries) {
  WorkspacePool pool;
  PooledFlatMap<uint32_t, int> map(&pool);
  map.Reset(8);
  map.TryEmplace(1, 10);
  map.Reset(8);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(1), nullptr);
}

}  // namespace
}  // namespace gids
