#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gids {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&touched](size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunkedCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(100);
  pool.ParallelForChunked(100, [&touched](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { counter++; });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker executes in FIFO order.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { counter++; });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace gids
