#ifndef GIDS_STORAGE_QUEUE_MANAGER_H_
#define GIDS_STORAGE_QUEUE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "storage/io_queue.h"

namespace gids::storage {

/// The per-GPU set of NVMe submission/completion queue pairs that BaM
/// threads drive directly (BaM allocates queues in GPU memory and shards
/// them across thread blocks). Requests are spread round-robin; the
/// aggregate queue depth bounds how many storage accesses can be in
/// flight, which caps what the accumulator can usefully maintain.
class QueueManager {
 public:
  QueueManager(uint32_t num_queues, uint32_t depth_per_queue);

  uint32_t num_queues() const {
    return static_cast<uint32_t>(queues_.size());
  }
  uint32_t depth_per_queue() const { return depth_per_queue_; }
  uint64_t total_depth() const {
    return static_cast<uint64_t>(queues_.size()) * depth_per_queue_;
  }

  /// Functionally drives one read through a queue pair: submit on the
  /// round-robin queue, device pops and completes, completion reaped.
  /// The data plane is synchronous (bytes move in StorageArray); this
  /// exercises the admission path and counts doorbell traffic.
  ///
  /// Thread-safe; concurrent callers serialize on an internal mutex.
  /// Which queue a given request lands on then depends on arrival order,
  /// but nothing exported does: the doorbell total is an atomic sum and
  /// every queue completes synchronously inside the call.
  Status RoundTrip(uint64_t lba);

  uint64_t total_submissions() const {
    return total_submissions_.load(std::memory_order_relaxed);
  }
  const IoQueuePair& queue(uint32_t i) const { return queues_[i]; }

  /// Device-side access to a queue pair (filling a queue externally,
  /// draining stuck commands in tests). The caller must not race this
  /// against concurrent RoundTrip calls on the same queue.
  IoQueuePair& mutable_queue(uint32_t i) { return queues_[i]; }

  /// Requests currently submitted but not yet reaped, summed over queues.
  uint64_t outstanding() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t n = 0;
    for (const IoQueuePair& q : queues_) n += q.outstanding();
    return n;
  }

 private:
  uint32_t depth_per_queue_;
  std::vector<IoQueuePair> queues_;
  mutable std::mutex mu_;  // guards queues_, cursor_, next_tag_
  uint32_t cursor_ = 0;
  std::atomic<uint64_t> total_submissions_{0};
  uint64_t next_tag_ = 0;
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_QUEUE_MANAGER_H_
