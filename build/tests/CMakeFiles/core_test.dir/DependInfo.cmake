
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/accumulator_test.cc" "tests/CMakeFiles/core_test.dir/core/accumulator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/accumulator_test.cc.o.d"
  "/root/repo/tests/core/constant_cpu_buffer_test.cc" "tests/CMakeFiles/core_test.dir/core/constant_cpu_buffer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/constant_cpu_buffer_test.cc.o.d"
  "/root/repo/tests/core/gids_loader_test.cc" "tests/CMakeFiles/core_test.dir/core/gids_loader_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/gids_loader_test.cc.o.d"
  "/root/repo/tests/core/multi_gpu_test.cc" "tests/CMakeFiles/core_test.dir/core/multi_gpu_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/multi_gpu_test.cc.o.d"
  "/root/repo/tests/core/pipeline_invariants_test.cc" "tests/CMakeFiles/core_test.dir/core/pipeline_invariants_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipeline_invariants_test.cc.o.d"
  "/root/repo/tests/core/sampler_matrix_test.cc" "tests/CMakeFiles/core_test.dir/core/sampler_matrix_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sampler_matrix_test.cc.o.d"
  "/root/repo/tests/core/trainer_test.cc" "tests/CMakeFiles/core_test.dir/core/trainer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/trainer_test.cc.o.d"
  "/root/repo/tests/core/window_buffer_test.cc" "tests/CMakeFiles/core_test.dir/core/window_buffer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/window_buffer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gids_core.dir/DependInfo.cmake"
  "/root/repo/build/src/loaders/CMakeFiles/gids_loaders.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gids_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gids_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/gids_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gids_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
