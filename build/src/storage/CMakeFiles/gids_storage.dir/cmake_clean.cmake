file(REMOVE_RECURSE
  "CMakeFiles/gids_storage.dir/bam_array.cc.o"
  "CMakeFiles/gids_storage.dir/bam_array.cc.o.d"
  "CMakeFiles/gids_storage.dir/block_device.cc.o"
  "CMakeFiles/gids_storage.dir/block_device.cc.o.d"
  "CMakeFiles/gids_storage.dir/feature_gather.cc.o"
  "CMakeFiles/gids_storage.dir/feature_gather.cc.o.d"
  "CMakeFiles/gids_storage.dir/io_queue.cc.o"
  "CMakeFiles/gids_storage.dir/io_queue.cc.o.d"
  "CMakeFiles/gids_storage.dir/queue_manager.cc.o"
  "CMakeFiles/gids_storage.dir/queue_manager.cc.o.d"
  "CMakeFiles/gids_storage.dir/software_cache.cc.o"
  "CMakeFiles/gids_storage.dir/software_cache.cc.o.d"
  "CMakeFiles/gids_storage.dir/storage_array.cc.o"
  "CMakeFiles/gids_storage.dir/storage_array.cc.o.d"
  "libgids_storage.a"
  "libgids_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gids_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
