# Empty dependencies file for bench_fig14_e2e_optane.
# This may be replaced when dependencies are built.
