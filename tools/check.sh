#!/usr/bin/env bash
# Builds and tests both configurations: the default RelWithDebInfo tree and
# the ASan/UBSan tree (CMakePresets.json). Run from the repository root:
#
#   tools/check.sh            # both presets
#   tools/check.sh default    # one preset
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan-ubsan)
fi

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "=== all presets passed"
