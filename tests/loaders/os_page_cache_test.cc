#include "loaders/os_page_cache.h"

#include <gtest/gtest.h>

namespace gids::loaders {
namespace {

TEST(OsPageCacheTest, ColdAccessFaults) {
  OsPageCache cache(4);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_EQ(cache.faults(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(OsPageCacheTest, WarmAccessHits) {
  OsPageCache cache(4);
  cache.Access(1);
  EXPECT_TRUE(cache.Access(1));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(OsPageCacheTest, CapacityEnforced) {
  OsPageCache cache(3);
  for (uint64_t p = 0; p < 10; ++p) cache.Access(p);
  EXPECT_EQ(cache.resident_pages(), 3u);
}

TEST(OsPageCacheTest, LruEvictionOrder) {
  OsPageCache cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);  // 1 becomes MRU
  cache.Access(3);  // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(OsPageCacheTest, WorkingSetWithinCapacityNeverFaultsAgain) {
  OsPageCache cache(16);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = 0; p < 16; ++p) cache.Access(p);
  }
  EXPECT_EQ(cache.faults(), 16u);
  EXPECT_EQ(cache.hits(), 32u);
}

TEST(OsPageCacheTest, ScanLargerThanCapacityAlwaysFaults) {
  // Sequential scan over 2x capacity with LRU: zero hits (the classic
  // mmap thrashing regime of §2.3).
  OsPageCache cache(8);
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = 0; p < 16; ++p) cache.Access(p);
  }
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.faults(), 48u);
}

TEST(OsPageCacheTest, ResetStatsKeepsResidency) {
  OsPageCache cache(4);
  cache.Access(7);
  cache.ResetStats();
  EXPECT_EQ(cache.faults(), 0u);
  EXPECT_TRUE(cache.Contains(7));
  EXPECT_TRUE(cache.Access(7));
}

}  // namespace
}  // namespace gids::loaders
