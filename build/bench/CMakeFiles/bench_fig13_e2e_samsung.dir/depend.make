# Empty dependencies file for bench_fig13_e2e_samsung.
# This may be replaced when dependencies are built.
