// Reproduces Figure 15: feature-aggregation time of the DGL, BaM, and
// GIDS dataloaders for neighborhood sampling and LADIES layer-wise
// sampling on the IGB-Full proxy (512 GB CPU memory pinned, 8 GB GPU
// cache; Ginex cannot run LADIES and is excluded, §4.7).
//
// Paper anchors: with LADIES, GIDS achieves a 412x speedup over the DGL
// dataloader and 1.92x over BaM.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

// Per-layer node budgets for LADIES chosen to match the neighborhood
// sampler's per-iteration feature-request volume at the proxy scale.
const std::vector<uint32_t> kLadiesLayers = {4096, 4096, 4096};

double MeasureAggregationMs(LoaderKind kind, bool ladies,
                            const sim::SsdSpec& ssd) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  cfg.ssd = ssd;
  Rig rig = ladies ? BuildLadiesRig(cfg, kLadiesLayers) : BuildRig(cfg);
  core::GidsOptions opts;
  if (kind == LoaderKind::kGids) {
    opts.hot_node_order = &CachedPageRankOrder(rig.dataset);
  } else if (kind == LoaderKind::kBam) {
    opts = core::GidsOptions::Bam();
  }
  auto loader = MakeLoader(kind, rig, &opts);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/60, /*measure=*/30);
  return NsToMs(result.measured.aggregation_ns) /
         static_cast<double>(result.per_iteration.size());
}

void BM_AggregationBySampler(benchmark::State& state, bool ladies,
                             sim::SsdSpec ssd, double paper_dgl_speedup,
                             double paper_bam_speedup) {
  double dgl = 0;
  double bam = 0;
  double gids = 0;
  for (auto _ : state) {
    dgl = MeasureAggregationMs(LoaderKind::kMmap, ladies, ssd);
    bam = MeasureAggregationMs(LoaderKind::kBam, ladies, ssd);
    gids = MeasureAggregationMs(LoaderKind::kGids, ladies, ssd);
  }
  const char* mode = ladies ? "LADIES" : "neighborhood";
  state.counters["dgl_ms"] = dgl;
  state.counters["bam_ms"] = bam;
  state.counters["gids_ms"] = gids;
  ReportRow("FIG15", std::string(mode) + " DGL-mmap aggregation", dgl, 0,
            "ms/iter");
  ReportRow("FIG15", std::string(mode) + " BaM aggregation", bam, 0,
            "ms/iter");
  ReportRow("FIG15", std::string(mode) + " GIDS aggregation", gids, 0,
            "ms/iter");
  ReportRow("FIG15", std::string(mode) + " GIDS speedup vs DGL", dgl / gids,
            paper_dgl_speedup, "x");
  ReportRow("FIG15", std::string(mode) + " GIDS speedup vs BaM", bam / gids,
            paper_bam_speedup, "x");
}

BENCHMARK_CAPTURE(BM_AggregationBySampler, neighborhood_980pro, false,
                  sim::SsdSpec::Samsung980Pro(), 0, 0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AggregationBySampler, ladies_980pro, true,
                  sim::SsdSpec::Samsung980Pro(), 412.0, 1.92)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
