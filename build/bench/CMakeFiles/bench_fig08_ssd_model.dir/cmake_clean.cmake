file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_ssd_model.dir/bench_fig08_ssd_model.cc.o"
  "CMakeFiles/bench_fig08_ssd_model.dir/bench_fig08_ssd_model.cc.o.d"
  "bench_fig08_ssd_model"
  "bench_fig08_ssd_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_ssd_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
