#include "storage/feature_gather.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "graph/feature_store.h"
#include "storage/bam_array.h"
#include "storage/software_cache.h"

namespace gids::storage {
namespace {

struct GatherRig {
  explicit GatherRig(uint32_t dim, graph::NodeId nodes = 100,
                     uint64_t cache_bytes = 16 * 4096,
                     const HotNodeBuffer* hot = nullptr)
      : fs(nodes, dim) {
    auto dev = std::make_unique<FunctionBlockDevice>(
        fs.num_pages(), fs.page_bytes(),
        [this](uint64_t lba, std::span<std::byte> out) {
          fs.FillPage(lba, out);
        });
    array = std::make_unique<StorageArray>(std::move(dev),
                                           sim::SsdSpec::IntelOptane(), 1);
    cache = std::make_unique<SoftwareCache>(cache_bytes, fs.page_bytes());
    bam = std::make_unique<BamArray>(array.get(), cache.get());
    gatherer = std::make_unique<FeatureGatherer>(&fs, bam.get(), hot);
  }

  graph::FeatureStore fs;
  std::unique_ptr<StorageArray> array;
  std::unique_ptr<SoftwareCache> cache;
  std::unique_ptr<BamArray> bam;
  std::unique_ptr<FeatureGatherer> gatherer;
};

// A trivial hot buffer pinning even-numbered nodes.
class EvenHotBuffer : public HotNodeBuffer {
 public:
  explicit EvenHotBuffer(const graph::FeatureStore* fs) : fs_(fs) {}
  bool Contains(graph::NodeId node) const override { return node % 2 == 0; }
  void Fill(graph::NodeId node, std::span<float> out) const override {
    fs_->FillFeature(node, out);
  }

 private:
  const graph::FeatureStore* fs_;
};

class GatherFidelityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GatherFidelityTest, BytesMatchGroundTruth) {
  // End-to-end byte fidelity: features gathered through device + cache
  // must equal the FeatureStore's ground truth for every layout class.
  GatherRig rig(GetParam());
  std::vector<graph::NodeId> nodes = {0, 17, 3, 17, 99, 50, 1};
  FeatureGatherCounts counts;
  auto gathered = rig.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(gathered.ok());
  const uint32_t dim = rig.fs.feature_dim();
  std::vector<float> expected(dim);
  for (size_t i = 0; i < nodes.size(); ++i) {
    rig.fs.FillFeature(nodes[i], expected);
    for (uint32_t j = 0; j < dim; ++j) {
      ASSERT_EQ((*gathered)[i * dim + j], expected[j])
          << "node " << nodes[i] << " elem " << j;
    }
  }
  EXPECT_EQ(counts.nodes, nodes.size());
}

INSTANTIATE_TEST_SUITE_P(PaperDims, GatherFidelityTest,
                         ::testing::Values(128, 768, 1024));

TEST(FeatureGatherTest, RepeatGatherHitsCache) {
  GatherRig rig(1024);
  std::vector<graph::NodeId> nodes = {1, 2, 3, 4};
  FeatureGatherCounts first;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &first).ok());
  EXPECT_EQ(first.storage_reads, 4u);
  EXPECT_EQ(first.gpu_cache_hits, 0u);
  FeatureGatherCounts second;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &second).ok());
  EXPECT_EQ(second.storage_reads, 0u);
  EXPECT_EQ(second.gpu_cache_hits, 4u);
}

TEST(FeatureGatherTest, SubPageNodesShareAPage) {
  // dim 128: 8 nodes per page; gathering 8 page-mates costs one storage
  // read plus seven cache hits.
  GatherRig rig(128);
  std::vector<graph::NodeId> nodes(8);
  std::iota(nodes.begin(), nodes.end(), 0u);
  FeatureGatherCounts counts;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &counts).ok());
  EXPECT_EQ(counts.storage_reads, 1u);
  EXPECT_EQ(counts.gpu_cache_hits, 7u);
}

TEST(FeatureGatherTest, PageSpanningNodesCostMore) {
  // dim 768: pages-per-node = 1.5, so 4 aligned nodes touch 6 pages.
  GatherRig rig(768);
  std::vector<graph::NodeId> nodes = {0, 1, 2, 3};
  FeatureGatherCounts counts;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &counts).ok());
  EXPECT_EQ(counts.total_page_requests(), 6u);
}

TEST(FeatureGatherTest, HotBufferRedirects) {
  graph::FeatureStore probe(100, 1024);
  EvenHotBuffer hot(&probe);
  GatherRig rig(1024, 100, 16 * 4096, &hot);
  std::vector<graph::NodeId> nodes = {0, 1, 2, 3};
  FeatureGatherCounts counts;
  auto gathered = rig.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(gathered.ok());
  EXPECT_EQ(counts.cpu_buffer_hits, 2u);
  EXPECT_EQ(counts.storage_reads, 2u);
  // Hot-buffer bytes are also correct.
  std::vector<float> expected(1024);
  rig.fs.FillFeature(0, expected);
  for (uint32_t j = 0; j < 1024; ++j) {
    ASSERT_EQ((*gathered)[j], expected[j]);
  }
}

TEST(FeatureGatherTest, HotNodesNeverPolluteGpuCache) {
  graph::FeatureStore probe(100, 1024);
  EvenHotBuffer hot(&probe);
  GatherRig rig(1024, 100, 16 * 4096, &hot);
  std::vector<graph::NodeId> nodes = {0, 2, 4, 6};
  FeatureGatherCounts counts;
  ASSERT_TRUE(rig.gatherer->Gather(nodes, &counts).ok());
  EXPECT_EQ(rig.cache->resident_lines(), 0u);
}

TEST(FeatureGatherTest, OutOfRangeNode) {
  GatherRig rig(128);
  std::vector<graph::NodeId> nodes = {1000};
  FeatureGatherCounts counts;
  std::vector<float> out(128);
  EXPECT_EQ(rig.gatherer->Gather(nodes, std::span<float>(out), &counts).code(),
            StatusCode::kOutOfRange);
}

TEST(FeatureGatherTest, SmallOutputBufferRejected) {
  GatherRig rig(128);
  std::vector<graph::NodeId> nodes = {1, 2};
  std::vector<float> out(128);  // room for one node only
  FeatureGatherCounts counts;
  EXPECT_EQ(rig.gatherer->Gather(nodes, std::span<float>(out), &counts).code(),
            StatusCode::kInvalidArgument);
}

TEST(FeatureGatherTest, CountsOnlyMatchesFullGather) {
  // The counting-mode path must make identical traffic decisions.
  GatherRig full_rig(1024, 200, 8 * 4096);
  GatherRig count_rig(1024, 200, 8 * 4096);
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<graph::NodeId> nodes;
    for (int i = 0; i < 16; ++i) {
      nodes.push_back(static_cast<graph::NodeId>(rng.UniformInt(200)));
    }
    FeatureGatherCounts a;
    FeatureGatherCounts b;
    ASSERT_TRUE(full_rig.gatherer->Gather(nodes, &a).ok());
    ASSERT_TRUE(count_rig.gatherer->GatherCountsOnly(nodes, &b).ok());
    ASSERT_EQ(a.gpu_cache_hits, b.gpu_cache_hits) << "round " << round;
    ASSERT_EQ(a.storage_reads, b.storage_reads) << "round " << round;
  }
}

TEST(BamArrayTest, CachelessArrayAlwaysReadsStorage) {
  graph::FeatureStore fs(10, 1024);
  auto dev = std::make_unique<FunctionBlockDevice>(
      fs.num_pages(), fs.page_bytes(),
      [&fs](uint64_t lba, std::span<std::byte> out) { fs.FillPage(lba, out); });
  StorageArray arr(std::move(dev), sim::SsdSpec::IntelOptane(), 1);
  BamArray bam(&arr, nullptr);
  std::vector<std::byte> out(4096);
  GatherCounts counts;
  ASSERT_TRUE(bam.ReadPage(3, out, &counts).ok());
  ASSERT_TRUE(bam.ReadPage(3, out, &counts).ok());
  EXPECT_EQ(counts.storage_reads, 2u);
  EXPECT_EQ(counts.cache_hits, 0u);
}

}  // namespace
}  // namespace gids::storage
