#!/usr/bin/env bash
# Documentation lint, run as part of tools/check.sh:
#
#   1. Every relative markdown link in tracked *.md files must resolve to
#      a file or directory in the repository (http(s)/mailto/anchor-only
#      links are skipped; "#section" fragments are stripped first).
#   2. Every GidsOptions field (src/core/gids_loader.h), every
#      FaultOptions field (src/storage/fault_injector.h), every
#      IntegrityOptions field (src/storage/page_integrity.h), every
#      ServingOptions field (src/serving/inference_server.h), and every
#      gids_cli flag (tools/gids_cli.cc) must be mentioned in README.md,
#      FAULTS.md, INTEGRITY.md or CACHING.md, so new knobs cannot land
#      undocumented.
#   3. Every cache-policy name in the parse table
#      (src/storage/cache_policy.cc) must appear in the corpus, and the
#      CachePolicyKind enum (src/storage/cache_policy.h) must have
#      exactly as many enumerators as the parse table has names — a new
#      policy cannot land unnamed or undocumented.
#
#   tools/docs_lint.sh            # lint everything
set -euo pipefail

cd "$(dirname "$0")/.."
fail=0

# --- 1. intra-repo markdown links -----------------------------------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Markdown inline links: [text](target). One match per line via grep -o.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"                    # strip "#anchor"
    [ -n "$path" ] || continue
    case "$path" in
      /*) resolved=".$path" ;;              # repo-absolute
      *)  resolved="$dir/$path" ;;
    esac
    if [ ! -e "$resolved" ]; then
      echo "docs-lint: dead link in $md -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

# --- 2. every knob is documented ------------------------------------------
doc_corpus=$(cat README.md FAULTS.md INTEGRITY.md CACHING.md)

# Option-struct fields: lines like "  <type> name = default;" inside the
# struct. Take the identifier immediately left of '='.
struct_fields() {  # struct_fields <StructName> <header>
  awk "/^struct $1 \\{/,/^\\};/" "$2" |
    grep -E '^  [A-Za-z_].*=.*;' |
    sed -E 's/ *=.*$//; s/.*[ *&]//'
}
fields=""
for spec in "GidsOptions src/core/gids_loader.h" \
            "FaultOptions src/storage/fault_injector.h" \
            "IntegrityOptions src/storage/page_integrity.h" \
            "ServingOptions src/serving/inference_server.h"; do
  set -- $spec
  for field in $(struct_fields "$1" "$2"); do
    fields="$fields $field"
    if ! grep -qw -- "$field" <<<"$doc_corpus"; then
      echo "docs-lint: $1::$field not documented in README.md, FAULTS.md or INTEGRITY.md"
      fail=1
    fi
  done
done

# gids_cli flags: every name passed to the Flags accessors.
flags=$(grep -oE 'flags\.(Get|Has)[A-Za-z]*\("[^"]+"' tools/gids_cli.cc |
  grep -oE '"[^"]+"' | tr -d '"' | sort -u)
for flag in $flags; do
  if ! grep -q -- "--$flag" <<<"$doc_corpus"; then
    echo "docs-lint: gids_cli flag --$flag not documented in README.md, FAULTS.md or INTEGRITY.md"
    fail=1
  fi
done

# --- 3. cache policies are named and documented ---------------------------
# Parse-table names in src/storage/cache_policy.cc: {CachePolicyKind::kX,
# "name"} entries. Every name must appear in the doc corpus (CACHING.md is
# the canonical home), and the CachePolicyKind enum must not have grown an
# enumerator without a parse-table name.
policy_names=$(grep -oE '\{CachePolicyKind::k[A-Za-z]+, "[a-z]+"\}' \
    src/storage/cache_policy.cc | grep -oE '"[a-z]+"' | tr -d '"')
for name in $policy_names; do
  if ! grep -qw -- "$name" <<<"$doc_corpus"; then
    echo "docs-lint: cache policy \"$name\" not documented in README.md or CACHING.md"
    fail=1
  fi
done
enum_count=$(awk '/^enum class CachePolicyKind/,/^\};/' \
    src/storage/cache_policy.h | grep -cE '^  k[A-Za-z]+')
name_count=$(wc -w <<<"$policy_names")
if [ "$enum_count" -ne "$name_count" ]; then
  echo "docs-lint: CachePolicyKind has $enum_count enumerators but the parse table in src/storage/cache_policy.cc names $name_count"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs-lint: FAILED"
  exit 1
fi
echo "docs-lint: OK ($(git ls-files '*.md' | wc -l) markdown files, $(wc -w <<<"$fields") option fields, $(wc -w <<<"$flags") CLI flags)"
