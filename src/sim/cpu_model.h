#ifndef GIDS_SIM_CPU_MODEL_H_
#define GIDS_SIM_CPU_MODEL_H_

#include <cstdint>

#include "common/units.h"
#include "sim/ssd_model.h"

namespace gids::sim {

/// Host-CPU execution model (AMD EPYC 7702-class, Table 1), calibrated to
/// the paper's measurements:
///  - Fig. 3: the CPU data-preparation stages generate at most ~4.1 M
///    feature-vector requests/s, plateauing at 16 threads.
///  - Fig. 7: CPU graph sampling slows as the structure outgrows the
///    effective last-level cache (EPYC L3 is CCX-partitioned, so the
///    effective random-access LLC per sampler is far below the nominal
///    256 MB).
///  - §2.3: memory-mapped feature access page-faults synchronously; the
///    fault path (trap + OS handling + device read) is serialized per
///    gather thread.
struct CpuSpec {
  int num_cores = 64;
  int sampler_threads = 16;           // paper: rate plateaus at 16 threads
  double prep_rate_per_thread = 256e3;  // feature requests/s (Fig. 3)
  int prep_thread_plateau = 16;

  TimeNs edge_sample_base_ns = 70;    // per edge, per thread, in-cache
  TimeNs edge_sample_miss_ns = 260;   // extra DRAM-latency cost on LLC miss
  uint64_t effective_llc_bytes = 32ull * 1024 * 1024;

  TimeNs page_fault_software_ns = UsToNs(10);  // trap + OS page-fault path
  int mmap_fault_concurrency = 1;     // numpy-memmap gather is serial
  /// Single-threaded fancy-index gather rate out of the page cache
  /// (NumPy-style row gather, not a bulk memcpy).
  double dram_gather_bps = 10e9;

  static CpuSpec EpycServer() { return CpuSpec{}; }
};

/// Timing functions derived from CpuSpec.
class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec) : spec_(spec) {}
  const CpuSpec& spec() const { return spec_; }

  /// Feature-vector request generation rate of the CPU data-preparation
  /// stages with `threads` workers (Fig. 3 series).
  double PrepRequestRate(int threads) const;

  /// Time for the CPU sampler to traverse `edges_traversed` edges of a
  /// graph whose structure occupies `structure_bytes`, using
  /// `spec.sampler_threads` workers (Fig. 7 CPU series).
  TimeNs SamplingTime(uint64_t edges_traversed,
                      uint64_t structure_bytes) const;

  /// Per-edge aggregate cost (all threads combined) for the same model.
  double EdgeCostNs(uint64_t structure_bytes) const;

  /// Time for the mmap-based gather path: `copy_bytes` of feature data
  /// copied out of the page cache plus `faulting_pages` synchronous page
  /// faults against `ssd` (the DGL-mmap baseline's aggregation stage).
  TimeNs MmapGatherTime(uint64_t copy_bytes, uint64_t faulting_pages,
                        const SsdSpec& ssd) const;

  /// Time for a CPU-initiated asynchronous read path with queue depth `qd`
  /// (Ginex-style pipelined reads via e.g. io_uring / async workers).
  TimeNs AsyncReadTime(uint64_t pages, uint32_t page_bytes, const SsdSpec& ssd,
                       uint64_t qd) const;

 private:
  CpuSpec spec_;
};

}  // namespace gids::sim

#endif  // GIDS_SIM_CPU_MODEL_H_
