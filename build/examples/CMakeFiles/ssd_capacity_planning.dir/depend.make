# Empty dependencies file for ssd_capacity_planning.
# This may be replaced when dependencies are built.
