#ifndef GIDS_COMMON_THREAD_POOL_H_
#define GIDS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gids {

/// Fixed-size worker pool used by the CPU-side samplers and gather paths
/// (the baseline DGL dataloader runs data preparation on host threads).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Splits [0, n) into one contiguous chunk per worker and runs
  /// fn(begin, end) for each chunk; waits for completion.
  void ParallelForChunked(
      size_t n, const std::function<void(size_t begin, size_t end)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace gids

#endif  // GIDS_COMMON_THREAD_POOL_H_
