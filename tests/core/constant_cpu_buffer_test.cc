#include "core/constant_cpu_buffer.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/pagerank.h"

namespace gids::core {
namespace {

TEST(ConstantCpuBufferTest, PinsWithinByteBudget) {
  Rng rng(1);
  auto g = graph::GenerateRmat(1024, 16384, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(1024, 1024);  // 4 KiB per node
  uint64_t budget = 100 * 4096;
  ConstantCpuBuffer buf = ConstantCpuBuffer::Build(
      *g, fs, budget, HotMetric::kReversePageRank);
  EXPECT_EQ(buf.num_pinned(), 100u);
  EXPECT_LE(buf.pinned_bytes(), budget);
}

TEST(ConstantCpuBufferTest, ReversePageRankPinsTheHottestNodes) {
  Rng rng(2);
  auto g = graph::GenerateRmat(2048, 32768, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(2048, 1024);
  ConstantCpuBuffer buf = ConstantCpuBuffer::Build(
      *g, fs, 200 * 4096, HotMetric::kReversePageRank);
  auto score = graph::WeightedReversePageRank(*g, graph::PageRankOptions{});
  auto order = graph::RankNodesByScore(score);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(buf.Contains(order[i])) << "rank " << i;
  }
  EXPECT_FALSE(buf.Contains(order.back()));
}

TEST(ConstantCpuBufferTest, FillReturnsGroundTruth) {
  Rng rng(3);
  auto g = graph::GenerateRmat(256, 2048, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(256, 64);
  ConstantCpuBuffer buf =
      ConstantCpuBuffer::Build(*g, fs, fs.total_bytes(), HotMetric::kInDegree);
  ASSERT_EQ(buf.num_pinned(), 256u);
  std::vector<float> got(64);
  std::vector<float> expected(64);
  buf.Fill(77, got);
  fs.FillFeature(77, expected);
  EXPECT_EQ(got, expected);
}

TEST(ConstantCpuBufferTest, FromNodeSetDeduplicates) {
  graph::FeatureStore fs(100, 64);
  ConstantCpuBuffer buf =
      ConstantCpuBuffer::FromNodeSet(fs, {1, 2, 2, 3, 1});
  EXPECT_EQ(buf.num_pinned(), 3u);
  EXPECT_TRUE(buf.Contains(1));
  EXPECT_TRUE(buf.Contains(2));
  EXPECT_TRUE(buf.Contains(3));
  EXPECT_FALSE(buf.Contains(4));
}

TEST(ConstantCpuBufferTest, RandomMetricPinsBudgetedCount) {
  Rng rng(4);
  auto g = graph::GenerateRmat(512, 4096, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(512, 1024);
  ConstantCpuBuffer buf =
      ConstantCpuBuffer::Build(*g, fs, 50 * 4096, HotMetric::kRandom);
  EXPECT_EQ(buf.num_pinned(), 50u);
}

TEST(ConstantCpuBufferTest, MetricNames) {
  EXPECT_STREQ(HotMetricName(HotMetric::kReversePageRank),
               "reverse-pagerank");
  EXPECT_STREQ(HotMetricName(HotMetric::kInDegree), "in-degree");
  EXPECT_STREQ(HotMetricName(HotMetric::kRandom), "random");
}

TEST(ConstantCpuBufferTest, ReversePageRankCapturesMoreTrafficThanRandom) {
  // The Fig. 10 mechanism: for equal budgets, reverse-PageRank pinning
  // redirects more sampled-access traffic than random pinning.
  Rng rng(5);
  auto g = graph::GenerateRmat(4096, 65536, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(4096, 1024);
  uint64_t budget = 400 * 4096;  // ~10%
  ConstantCpuBuffer by_rank = ConstantCpuBuffer::Build(
      *g, fs, budget, HotMetric::kReversePageRank);
  ConstantCpuBuffer by_random =
      ConstantCpuBuffer::Build(*g, fs, budget, HotMetric::kRandom);

  uint64_t rank_hits = 0;
  uint64_t random_hits = 0;
  uint64_t accesses = 0;
  for (int t = 0; t < 30000; ++t) {
    graph::NodeId seed = static_cast<graph::NodeId>(rng.UniformInt(4096));
    auto nbrs = g->in_neighbors(seed);
    if (nbrs.empty()) continue;
    graph::NodeId u = nbrs[rng.UniformInt(nbrs.size())];
    ++accesses;
    if (by_rank.Contains(u)) ++rank_hits;
    if (by_random.Contains(u)) ++random_hits;
  }
  ASSERT_GT(accesses, 0u);
  EXPECT_GT(rank_hits, 2 * random_hits);
}

}  // namespace
}  // namespace gids::core
