#include "storage/feature_gather.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace gids::storage {

FeatureGatherer::FeatureGatherer(const graph::FeatureStore* layout,
                                 BamArray* array,
                                 const HotNodeBuffer* hot_buffer,
                                 ThreadPool* pool)
    : layout_(layout), array_(array), hot_buffer_(hot_buffer), pool_(pool) {
  GIDS_CHECK(layout_ != nullptr);
  GIDS_CHECK(array_ != nullptr);
  GIDS_CHECK(layout_->page_bytes() == array_->page_bytes());
  if (array_->cache() == nullptr && pool_ != nullptr) {
    while (cacheless_buckets_ < pool_->num_threads() * 2 &&
           cacheless_buckets_ < 64) {
      cacheless_buckets_ *= 2;
    }
  }
}

uint32_t FeatureGatherer::BucketFor(uint64_t page) const {
  const SoftwareCache* cache = array_->cache();
  if (cache != nullptr) return cache->ShardFor(page);
  return static_cast<uint32_t>((page * 0x9e3779b97f4a7c15ull) >> 32) &
         (cacheless_buckets_ - 1);
}

Status FeatureGatherer::GatherImpl(std::span<const graph::NodeId> nodes,
                                   float* out, FeatureGatherCounts* counts) {
  GIDS_CHECK(counts != nullptr);
  const size_t n = nodes.size();
  if (n == 0) return Status::OK();
  const uint32_t dim = layout_->feature_dim();
  const uint64_t page_bytes = layout_->page_bytes();
  const uint64_t feat_bytes = layout_->feature_bytes_per_node();
  const SoftwareCache* cache = array_->cache();
  const uint32_t buckets =
      cache != nullptr ? cache->num_shards() : cacheless_buckets_;

  // A single page access on behalf of one output row. Buckets collect
  // accesses in global node order so each cache shard replays exactly the
  // sequence the serial gather would have issued.
  struct Access {
    uint64_t page;
    size_t node;  // index into `nodes`
  };
  struct ChunkOut {
    std::vector<std::vector<Access>> per_bucket;
    uint64_t cpu_hits = 0;
    size_t first_bad = std::numeric_limits<size_t>::max();
  };

  const size_t workers = pool_ != nullptr ? pool_->num_threads() : 1;
  const size_t target_chunks = std::min(
      n, std::max<size_t>(1, workers * ThreadPool::kChunksPerWorker));
  const size_t chunk_size = (n + target_chunks - 1) / target_chunks;
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  std::vector<ChunkOut> chunks(num_chunks);
  auto phase1 = [&](size_t c) {
    ChunkOut& co = chunks[c];
    co.per_bucket.resize(buckets);
    const size_t begin = c * chunk_size;
    const size_t end = std::min(n, begin + chunk_size);
    for (size_t i = begin; i < end; ++i) {
      graph::NodeId v = nodes[i];
      if (v >= layout_->num_nodes()) {
        co.first_bad = std::min(co.first_bad, i);
        continue;
      }
      auto range = layout_->PagesFor(v);
      if (hot_buffer_ != nullptr && hot_buffer_->Contains(v)) {
        if (out != nullptr) {
          hot_buffer_->Fill(v, std::span<float>(out + i * dim, dim));
        }
        // Account the same page-granularity traffic this node would have
        // cost on the storage path, now crossing PCIe from host DRAM.
        co.cpu_hits += range.count();
        continue;
      }
      for (uint64_t page = range.first; page <= range.last; ++page) {
        co.per_bucket[BucketFor(page)].push_back(Access{page, i});
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(num_chunks, phase1);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) phase1(c);
  }

  for (const ChunkOut& co : chunks) {
    if (co.first_bad != std::numeric_limits<size_t>::max()) {
      return Status::OutOfRange("node id beyond feature store");
    }
  }

  // Concatenate chunk buckets in chunk order: chunks cover contiguous,
  // increasing node ranges, so this restores global node order per bucket.
  std::vector<std::vector<Access>> seq(buckets);
  for (uint32_t b = 0; b < buckets; ++b) {
    size_t total = 0;
    for (const ChunkOut& co : chunks) total += co.per_bucket[b].size();
    seq[b].reserve(total);
    for (const ChunkOut& co : chunks) {
      seq[b].insert(seq[b].end(), co.per_bucket[b].begin(),
                    co.per_bucket[b].end());
    }
  }

  struct BucketOut {
    GatherCounts gc;
    Status status = Status::OK();
    std::vector<size_t> degraded;  // node indices with a dead-lettered page
    std::vector<size_t> corrupt;   // node indices with an unrepairable page
  };
  std::vector<BucketOut> bucket_out(buckets);
  auto phase2 = [&](size_t b) {
    BucketOut& bo = bucket_out[b];
    std::vector<std::byte> page_buf(out != nullptr ? page_bytes : 0);
    for (const Access& a : seq[b]) {
      GatherCounts gc;
      bool degraded = false;
      bool corrupt = false;
      if (out != nullptr) {
        Status s = array_->ReadPage(
            a.page, std::span<std::byte>(page_buf.data(), page_bytes), &gc);
        if (s.code() == StatusCode::kUnavailable) {
          // Retries exhausted (FAULTS.md): serve the page as zeroes and
          // flag the node rather than failing the whole gather.
          degraded = true;
        } else if (s.code() == StatusCode::kDataLoss) {
          // Never verified clean (INTEGRITY.md): same zero-fill
          // degradation, separate accounting.
          corrupt = true;
        } else if (!s.ok()) {
          bo.status = std::move(s);
          return;
        }
      } else {
        Status s = array_->TouchPage(a.page, &gc);
        if (s.code() == StatusCode::kUnavailable) {
          degraded = true;
        } else if (s.code() == StatusCode::kDataLoss) {
          corrupt = true;
        } else if (!s.ok()) {
          bo.status = std::move(s);
          return;
        }
      }
      bo.gc.cache_hits += gc.cache_hits;
      bo.gc.storage_reads += gc.storage_reads;
      if (degraded) bo.degraded.push_back(a.node);
      if (corrupt) bo.corrupt.push_back(a.node);
      if (out != nullptr) {
        graph::NodeId v = nodes[a.node];
        uint64_t node_begin = layout_->ByteOffset(v);
        std::byte* row_bytes =
            reinterpret_cast<std::byte*>(out + a.node * dim);
        uint64_t page_begin = a.page * page_bytes;
        uint64_t lo = std::max(node_begin, page_begin);
        uint64_t hi =
            std::min(node_begin + feat_bytes, page_begin + page_bytes);
        if (degraded || corrupt) {
          std::memset(row_bytes + (lo - node_begin), 0, hi - lo);
        } else {
          std::memcpy(row_bytes + (lo - node_begin),
                      page_buf.data() + (lo - page_begin), hi - lo);
        }
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(buckets, phase2);
  } else {
    for (uint32_t b = 0; b < buckets; ++b) phase2(b);
  }

  for (uint32_t b = 0; b < buckets; ++b) {
    if (!bucket_out[b].status.ok()) return bucket_out[b].status;
  }

  counts->nodes += n;
  for (const ChunkOut& co : chunks) counts->cpu_buffer_hits += co.cpu_hits;
  for (const BucketOut& bo : bucket_out) {
    counts->gpu_cache_hits += bo.gc.cache_hits;
    counts->storage_reads += bo.gc.storage_reads;
  }
  // A node's pages may land in different buckets, so union the per-bucket
  // degraded/corrupt indices to count each affected node exactly once.
  // The union is order-independent: the count is identical at every
  // thread count.
  auto count_union = [&](std::vector<size_t> BucketOut::* field,
                         uint64_t FeatureGatherCounts::* counter) {
    bool any = false;
    for (const BucketOut& bo : bucket_out) any |= !(bo.*field).empty();
    if (!any) return;
    std::vector<size_t> merged;
    for (const BucketOut& bo : bucket_out) {
      merged.insert(merged.end(), (bo.*field).begin(), (bo.*field).end());
    }
    std::sort(merged.begin(), merged.end());
    counts->*counter += static_cast<uint64_t>(
        std::unique(merged.begin(), merged.end()) - merged.begin());
  };
  count_union(&BucketOut::degraded, &FeatureGatherCounts::degraded_nodes);
  count_union(&BucketOut::corrupt, &FeatureGatherCounts::corrupt_nodes);
  return Status::OK();
}

Status FeatureGatherer::Gather(std::span<const graph::NodeId> nodes,
                               std::span<float> out,
                               FeatureGatherCounts* counts) {
  const uint32_t dim = layout_->feature_dim();
  if (out.size() < nodes.size() * dim) {
    return Status::InvalidArgument("output buffer too small");
  }
  return GatherImpl(nodes, out.data(), counts);
}

Status FeatureGatherer::GatherCountsOnly(
    std::span<const graph::NodeId> nodes, FeatureGatherCounts* counts) {
  return GatherImpl(nodes, nullptr, counts);
}

StatusOr<std::vector<float>> FeatureGatherer::Gather(
    std::span<const graph::NodeId> nodes, FeatureGatherCounts* counts) {
  std::vector<float> out(nodes.size() * layout_->feature_dim());
  GIDS_RETURN_IF_ERROR(Gather(nodes, std::span<float>(out), counts));
  return out;
}

}  // namespace gids::storage
