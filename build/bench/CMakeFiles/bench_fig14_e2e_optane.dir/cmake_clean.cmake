file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_e2e_optane.dir/bench_fig14_e2e_optane.cc.o"
  "CMakeFiles/bench_fig14_e2e_optane.dir/bench_fig14_e2e_optane.cc.o.d"
  "bench_fig14_e2e_optane"
  "bench_fig14_e2e_optane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_e2e_optane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
