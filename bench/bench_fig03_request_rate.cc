// Reproduces Figure 3: feature-vector request generation rate of the data
// preparation stages on CPU (1..32 threads) vs GPU, against the request
// consumption rate of the GPU training kernels, on IGB-small.
//
// Paper anchors: CPU prep plateaus at ~4.1 M req/s with 16 threads; GPU
// prep generates ~77 M req/s; training consumes ~29 M req/s. The headline
// is the ordering: CPU prep < consumption < GPU prep, which is why GIDS
// moves data preparation to the GPU.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

// Functional workload: sample mini-batches on IGB-small and count the
// feature requests generated, then convert to a rate via the calibrated
// execution models.
void BM_CpuPrepRate(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbSmall();
  cfg.scale = 0.25;
  cfg.batch_size = 256;
  Rig rig = BuildRig(cfg);
  sim::CpuSpec cpu_spec = sim::CpuSpec::EpycServer();
  double rate = 0;
  for (auto _ : state) {
    sim::CpuModel cpu(cpu_spec);
    // Generate requests functionally to confirm the pipeline produces
    // them; the rate comes from the calibrated model.
    auto batch = rig.sampler->Sample(rig.seeds->NextBatch());
    benchmark::DoNotOptimize(batch.num_input_nodes());
    rate = cpu.PrepRequestRate(threads);
  }
  state.counters["requests_per_sec"] = rate;
  double paper = threads >= 16 ? 4.1e6 : 0;
  ReportRow("FIG03", "CPU prep, " + std::to_string(threads) + " threads",
            rate / 1e6, paper / 1e6, "Mreq/s");
}

void BM_GpuPrepRate(benchmark::State& state) {
  sim::GpuModel gpu(sim::GpuSpec::A100_40GB());
  double rate = 0;
  for (auto _ : state) {
    rate = 1e6 / NsToSec(gpu.RequestGenTime(1000000));
  }
  state.counters["requests_per_sec"] = rate;
  ReportRow("FIG03", "GPU prep", rate / 1e6, 77.0, "Mreq/s");
}

void BM_GpuConsumptionRate(benchmark::State& state) {
  sim::GpuModel gpu(sim::GpuSpec::A100_40GB());
  double rate = 0;
  for (auto _ : state) {
    rate = gpu.spec().train_consume_rate;
  }
  state.counters["requests_per_sec"] = rate;
  ReportRow("FIG03", "GPU training consumption", rate / 1e6, 29.0, "Mreq/s");
}

BENCHMARK(BM_CpuPrepRate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1);
BENCHMARK(BM_GpuPrepRate)->Iterations(1);
BENCHMARK(BM_GpuConsumptionRate)->Iterations(1);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
