#include "obs/ledger.h"

#include "common/check.h"
#include "obs/json.h"

namespace gids::obs {

namespace {

constexpr const char* kComponentNames[IterationLedger::kNumComponents] = {
    "sampling",      "cache_hit",  "cpu_buffer",    "storage",
    "retry_backoff", "crc_verify", "degraded_fill", "transfer",
    "training",      "mutation",   "overlap_credit"};

}  // namespace

const char* IterationLedger::ComponentName(int i) {
  GIDS_CHECK(i >= 0 && i < kNumComponents);
  return kComponentNames[i];
}

TimeNs IterationLedger::component(int i) const {
  switch (i) {
    case 0: return sampling_ns;
    case 1: return cache_hit_ns;
    case 2: return cpu_buffer_ns;
    case 3: return storage_ns;
    case 4: return retry_backoff_ns;
    case 5: return crc_verify_ns;
    case 6: return degraded_fill_ns;
    case 7: return transfer_ns;
    case 8: return training_ns;
    case 9: return mutation_ns;
    case 10: return overlap_credit_ns;
  }
  GIDS_CHECK(false);
  return 0;
}

int IterationLedger::DominantComponent() const {
  int best = 0;
  TimeNs best_v = component(0);
  for (int i = 1; i < kNumComponents - 1; ++i) {  // overlap_credit excluded
    if (component(i) > best_v) {
      best = i;
      best_v = component(i);
    }
  }
  return best;
}

std::string IterationLedger::ToJson() const {
  std::string out = "{";
  for (int i = 0; i < kNumComponents; ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += kComponentNames[i];
    out += "_ns\":" + JsonNumber(static_cast<double>(component(i)));
  }
  out += "}";
  return out;
}

}  // namespace gids::obs
