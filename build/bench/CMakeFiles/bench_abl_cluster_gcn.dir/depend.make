# Empty dependencies file for bench_abl_cluster_gcn.
# This may be replaced when dependencies are built.
