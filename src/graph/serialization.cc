#include "graph/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace gids::graph {
namespace {

constexpr char kMagic[4] = {'G', 'I', 'D', 'S'};
constexpr uint32_t kVersion = 1;

// RAII FILE handle.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t bytes) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    return Status::IoError("short read / truncated file");
  }
  return Status::OK();
}

template <typename T>
Status WritePod(std::FILE* f, const T& value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
Status ReadPod(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

Status WriteString(std::FILE* f, const std::string& s) {
  GIDS_RETURN_IF_ERROR(WritePod<uint64_t>(f, s.size()));
  return WriteBytes(f, s.data(), s.size());
}

Status ReadString(std::FILE* f, std::string* s) {
  uint64_t len = 0;
  GIDS_RETURN_IF_ERROR(ReadPod(f, &len));
  if (len > (1ull << 20)) return Status::IoError("implausible string length");
  s->resize(len);
  return ReadBytes(f, s->data(), len);
}

template <typename T>
Status WriteVector(std::FILE* f, const std::vector<T>& v) {
  GIDS_RETURN_IF_ERROR(WritePod<uint64_t>(f, v.size()));
  return WriteBytes(f, v.data(), v.size() * sizeof(T));
}

template <typename T>
Status ReadVector(std::FILE* f, std::vector<T>* v, uint64_t max_elems) {
  uint64_t len = 0;
  GIDS_RETURN_IF_ERROR(ReadPod(f, &len));
  if (len > max_elems) return Status::IoError("implausible array length");
  v->resize(len);
  return ReadBytes(f, v->data(), len * sizeof(T));
}

constexpr uint64_t kMaxElems = 1ull << 36;  // 64 G entries sanity bound

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  File f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  GIDS_RETURN_IF_ERROR(WriteBytes(f.get(), kMagic, sizeof(kMagic)));
  GIDS_RETURN_IF_ERROR(WritePod(f.get(), kVersion));

  const DatasetSpec& s = dataset.spec;
  GIDS_RETURN_IF_ERROR(WriteString(f.get(), s.name));
  GIDS_RETURN_IF_ERROR(
      WritePod<uint8_t>(f.get(), static_cast<uint8_t>(s.kind)));
  GIDS_RETURN_IF_ERROR(WritePod(f.get(), s.paper_num_nodes));
  GIDS_RETURN_IF_ERROR(WritePod(f.get(), s.paper_num_edges));
  GIDS_RETURN_IF_ERROR(WritePod(f.get(), s.feature_dim));
  GIDS_RETURN_IF_ERROR(WritePod(f.get(), s.proxy_feature_dim));
  GIDS_RETURN_IF_ERROR(WritePod(f.get(), s.train_fraction));
  GIDS_RETURN_IF_ERROR(WritePod(f.get(), dataset.scale));

  GIDS_RETURN_IF_ERROR(WriteVector(f.get(), dataset.graph.indptr()));
  GIDS_RETURN_IF_ERROR(WriteVector(f.get(), dataset.graph.indices()));

  GIDS_RETURN_IF_ERROR(
      WritePod<uint32_t>(f.get(), dataset.features.num_nodes()));
  GIDS_RETURN_IF_ERROR(
      WritePod<uint32_t>(f.get(), dataset.features.feature_dim()));
  GIDS_RETURN_IF_ERROR(
      WritePod<uint32_t>(f.get(), dataset.features.page_bytes()));
  GIDS_RETURN_IF_ERROR(
      WritePod<uint64_t>(f.get(), dataset.features.content_seed()));

  GIDS_RETURN_IF_ERROR(WriteVector(f.get(), dataset.train_ids));

  GIDS_RETURN_IF_ERROR(
      WritePod<uint64_t>(f.get(), dataset.node_types.size()));
  for (const NodeTypeInfo& t : dataset.node_types) {
    GIDS_RETURN_IF_ERROR(WriteString(f.get(), t.name));
    GIDS_RETURN_IF_ERROR(WritePod(f.get(), t.offset));
    GIDS_RETURN_IF_ERROR(WritePod(f.get(), t.count));
  }
  if (std::fflush(f.get()) != 0) return Status::IoError("flush failed");
  return Status::OK();
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  char magic[4];
  GIDS_RETURN_IF_ERROR(ReadBytes(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + " is not a GIDS dataset file");
  }
  uint32_t version = 0;
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported dataset file version " +
                                   std::to_string(version));
  }

  Dataset ds;
  uint8_t kind = 0;
  GIDS_RETURN_IF_ERROR(ReadString(f.get(), &ds.spec.name));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &kind));
  ds.spec.kind = static_cast<GraphKind>(kind);
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &ds.spec.paper_num_nodes));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &ds.spec.paper_num_edges));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &ds.spec.feature_dim));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &ds.spec.proxy_feature_dim));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &ds.spec.train_fraction));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &ds.scale));

  std::vector<EdgeIdx> indptr;
  std::vector<NodeId> indices;
  GIDS_RETURN_IF_ERROR(ReadVector(f.get(), &indptr, kMaxElems));
  GIDS_RETURN_IF_ERROR(ReadVector(f.get(), &indices, kMaxElems));
  GIDS_ASSIGN_OR_RETURN(ds.graph, CscGraph::FromCsc(std::move(indptr),
                                                    std::move(indices)));

  uint32_t num_nodes = 0;
  uint32_t dim = 0;
  uint32_t page_bytes = 0;
  uint64_t content_seed = 0;
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &num_nodes));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &dim));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &page_bytes));
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &content_seed));
  if (num_nodes != ds.graph.num_nodes()) {
    return Status::IoError("feature store / graph node count mismatch");
  }
  if (dim == 0 || page_bytes == 0 || page_bytes % sizeof(float) != 0) {
    return Status::IoError("corrupt feature store parameters");
  }
  ds.features = FeatureStore(num_nodes, dim, page_bytes, content_seed);

  GIDS_RETURN_IF_ERROR(ReadVector(f.get(), &ds.train_ids, kMaxElems));
  for (NodeId v : ds.train_ids) {
    if (v >= ds.graph.num_nodes()) {
      return Status::IoError("train id out of range");
    }
  }

  uint64_t num_types = 0;
  GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &num_types));
  if (num_types > 4096) return Status::IoError("implausible node type count");
  for (uint64_t i = 0; i < num_types; ++i) {
    NodeTypeInfo t;
    GIDS_RETURN_IF_ERROR(ReadString(f.get(), &t.name));
    GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &t.offset));
    GIDS_RETURN_IF_ERROR(ReadPod(f.get(), &t.count));
    ds.node_types.push_back(std::move(t));
  }
  return ds;
}

StatusOr<CscGraph> LoadCscFromRawArrays(const std::string& indptr_path,
                                        const std::string& indices_path) {
  File fp(std::fopen(indptr_path.c_str(), "rb"));
  if (fp == nullptr) return Status::IoError("cannot open " + indptr_path);
  std::fseek(fp.get(), 0, SEEK_END);
  long fp_bytes = std::ftell(fp.get());
  std::fseek(fp.get(), 0, SEEK_SET);
  if (fp_bytes <= 0 || fp_bytes % sizeof(int64_t) != 0) {
    return Status::InvalidArgument("indptr file must hold int64 entries");
  }
  std::vector<EdgeIdx> indptr(fp_bytes / sizeof(int64_t));
  GIDS_RETURN_IF_ERROR(
      ReadBytes(fp.get(), indptr.data(), static_cast<size_t>(fp_bytes)));

  File fi(std::fopen(indices_path.c_str(), "rb"));
  if (fi == nullptr) return Status::IoError("cannot open " + indices_path);
  std::fseek(fi.get(), 0, SEEK_END);
  long fi_bytes = std::ftell(fi.get());
  std::fseek(fi.get(), 0, SEEK_SET);
  if (fi_bytes < 0) return Status::IoError("cannot stat " + indices_path);
  uint64_t num_edges = indptr.empty() ? 0 : indptr.back();

  std::vector<NodeId> indices(num_edges);
  if (static_cast<uint64_t>(fi_bytes) == num_edges * sizeof(int32_t)) {
    GIDS_RETURN_IF_ERROR(
        ReadBytes(fi.get(), indices.data(), static_cast<size_t>(fi_bytes)));
  } else if (static_cast<uint64_t>(fi_bytes) == num_edges * sizeof(int64_t)) {
    std::vector<int64_t> wide(num_edges);
    GIDS_RETURN_IF_ERROR(
        ReadBytes(fi.get(), wide.data(), static_cast<size_t>(fi_bytes)));
    for (uint64_t i = 0; i < num_edges; ++i) {
      if (wide[i] < 0 || wide[i] > 0xffffffffll) {
        return Status::InvalidArgument("node id exceeds 32-bit range");
      }
      indices[i] = static_cast<NodeId>(wide[i]);
    }
  } else {
    return Status::InvalidArgument(
        "indices file size matches neither int32 nor int64 edge count");
  }
  return CscGraph::FromCsc(std::move(indptr), std::move(indices));
}

}  // namespace gids::graph
