file(REMOVE_RECURSE
  "CMakeFiles/hot_node_analysis.dir/hot_node_analysis.cpp.o"
  "CMakeFiles/hot_node_analysis.dir/hot_node_analysis.cpp.o.d"
  "hot_node_analysis"
  "hot_node_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_node_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
