# Empty compiler generated dependencies file for terabyte_scale_training.
# This may be replaced when dependencies are built.
