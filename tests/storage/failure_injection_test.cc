#include <gtest/gtest.h>

#include <memory>

#include "graph/feature_store.h"
#include "storage/bam_array.h"
#include "storage/feature_gather.h"
#include "storage/software_cache.h"
#include "storage/storage_array.h"

namespace gids::storage {
namespace {

/// Wraps a device and fails every `period`-th read with an IO error —
/// models a flaky NVMe link. Used to verify errors surface as Status all
/// the way up the gather stack instead of corrupting data or crashing.
class FlakyBlockDevice : public BlockDevice {
 public:
  FlakyBlockDevice(std::unique_ptr<BlockDevice> inner, uint64_t period)
      : inner_(std::move(inner)), period_(period) {}

  uint32_t block_bytes() const override { return inner_->block_bytes(); }
  uint64_t num_blocks() const override { return inner_->num_blocks(); }

  Status ReadBlock(uint64_t lba, std::span<std::byte> out) const override {
    ++reads_;
    if (reads_ % period_ == 0) {
      return Status::IoError("injected device failure");
    }
    return inner_->ReadBlock(lba, out);
  }

  uint64_t reads() const { return reads_; }

 private:
  std::unique_ptr<BlockDevice> inner_;
  uint64_t period_;
  mutable uint64_t reads_ = 0;
};

struct FlakyRig {
  explicit FlakyRig(uint64_t period) : fs(64, 1024) {
    auto real = std::make_unique<FunctionBlockDevice>(
        fs.num_pages(), fs.page_bytes(),
        [this](uint64_t lba, std::span<std::byte> out) {
          fs.FillPage(lba, out);
        });
    array = std::make_unique<StorageArray>(
        std::make_unique<FlakyBlockDevice>(std::move(real), period),
        sim::SsdSpec::IntelOptane(), 1);
    cache = std::make_unique<SoftwareCache>(16 * 4096, 4096);
    bam = std::make_unique<BamArray>(array.get(), cache.get());
    gatherer = std::make_unique<FeatureGatherer>(&fs, bam.get());
  }

  graph::FeatureStore fs;
  std::unique_ptr<StorageArray> array;
  std::unique_ptr<SoftwareCache> cache;
  std::unique_ptr<BamArray> bam;
  std::unique_ptr<FeatureGatherer> gatherer;
};

TEST(FailureInjectionTest, ErrorSurfacesThroughGather) {
  FlakyRig rig(/*period=*/3);
  std::vector<graph::NodeId> nodes = {0, 1, 2, 3, 4, 5};
  storage::FeatureGatherCounts counts;
  std::vector<float> out(nodes.size() * 1024);
  Status s = rig.gatherer->Gather(nodes, std::span<float>(out), &counts);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, SuccessfulReadsBeforeFailureAreCorrect) {
  FlakyRig rig(/*period=*/1000);  // fail far beyond this test's reads
  std::vector<graph::NodeId> nodes = {7, 9};
  storage::FeatureGatherCounts counts;
  auto gathered = rig.gatherer->Gather(nodes, &counts);
  ASSERT_TRUE(gathered.ok());
  std::vector<float> expected(1024);
  rig.fs.FillFeature(7, expected);
  for (uint32_t j = 0; j < 1024; ++j) {
    ASSERT_EQ((*gathered)[j], expected[j]);
  }
}

TEST(FailureInjectionTest, RetryAfterTransientFailureSucceeds) {
  // Period-2 flakiness: every other read fails. The cache means a retry
  // of the same gather eventually succeeds page by page.
  FlakyRig rig(/*period=*/2);
  std::vector<graph::NodeId> nodes = {1};
  storage::FeatureGatherCounts counts;
  std::vector<float> out(1024);
  Status first = rig.gatherer->Gather(nodes, std::span<float>(out), &counts);
  Status second = rig.gatherer->Gather(nodes, std::span<float>(out), &counts);
  EXPECT_TRUE(first.ok() || second.ok());
  if (second.ok()) {
    std::vector<float> expected(1024);
    rig.fs.FillFeature(1, expected);
    for (uint32_t j = 0; j < 1024; ++j) ASSERT_EQ(out[j], expected[j]);
  }
}

TEST(FailureInjectionTest, FailedReadNotCached) {
  // A failed storage read must not leave a bogus line in the cache.
  FlakyRig rig(/*period=*/1);  // every read fails
  std::vector<graph::NodeId> nodes = {5};
  storage::FeatureGatherCounts counts;
  std::vector<float> out(1024);
  EXPECT_FALSE(
      rig.gatherer->Gather(nodes, std::span<float>(out), &counts).ok());
  EXPECT_EQ(rig.cache->resident_lines(), 0u);
}

}  // namespace
}  // namespace gids::storage
