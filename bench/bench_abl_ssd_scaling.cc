// Ablation: SSD-array scaling vs the constant CPU buffer (§3.3).
//
// BaM's answer to limited per-SSD bandwidth is attaching more SSDs; the
// paper argues 4-5 Optane (or >10 980 Pro) drives are needed to saturate
// PCIe, and positions the constant CPU buffer as the practical
// single-SSD alternative. This sweep measures GIDS aggregation bandwidth
// with 1..10 SSDs (CPU buffer off) against 1 SSD + 20% CPU buffer.
#include <benchmark/benchmark.h>

#include "bench/common.h"

namespace gids::bench {
namespace {

double MeasureEffective(int n_ssd, bool cpu_buffer, sim::SsdSpec ssd) {
  ProxyConfig cfg;
  cfg.spec = graph::DatasetSpec::IgbFull();
  cfg.ssd = std::move(ssd);
  cfg.n_ssd = n_ssd;
  Rig rig = BuildRig(cfg);
  core::GidsOptions o;
  o.use_window_buffering = false;
  o.use_cpu_buffer = cpu_buffer;
  o.cpu_buffer_fraction = 0.20;
  if (cpu_buffer) o.hot_node_order = &CachedPageRankOrder(rig.dataset);
  auto loader = MakeLoader(LoaderKind::kGids, rig, &o);
  core::TrainRunResult result =
      RunProtocol(rig, *loader, /*warmup=*/20, /*measure=*/30);
  double sum = 0;
  for (const auto& it : result.per_iteration) {
    sum += it.effective_bandwidth_bps;
  }
  return sum / result.per_iteration.size() / 1e9;
}

void BM_SsdScaling(benchmark::State& state, sim::SsdSpec spec) {
  const int n_ssd = static_cast<int>(state.range(0));
  double gbps = 0;
  for (auto _ : state) {
    gbps = MeasureEffective(n_ssd, /*cpu_buffer=*/false, spec);
  }
  state.counters["effective_GBps"] = gbps;
  ReportRow("ABL-SSD", spec.name + " x" + std::to_string(n_ssd) +
                           " (no CPU buffer)",
            gbps, 0, "GB/s");
}

void BM_OneSsdPlusCpuBuffer(benchmark::State& state, sim::SsdSpec spec) {
  double gbps = 0;
  for (auto _ : state) {
    gbps = MeasureEffective(1, /*cpu_buffer=*/true, spec);
  }
  state.counters["effective_GBps"] = gbps;
  ReportRow("ABL-SSD", spec.name + " x1 + 20% CPU buffer", gbps, 0, "GB/s");
}

BENCHMARK_CAPTURE(BM_SsdScaling, optane, sim::SsdSpec::IntelOptane())
    ->DenseRange(1, 6, 1)
    ->Arg(8)
    ->Arg(10)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SsdScaling, samsung980pro, sim::SsdSpec::Samsung980Pro())
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_OneSsdPlusCpuBuffer, optane, sim::SsdSpec::IntelOptane())
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gids::bench

BENCHMARK_MAIN();
