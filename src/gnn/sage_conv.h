#ifndef GIDS_GNN_SAGE_CONV_H_
#define GIDS_GNN_SAGE_CONV_H_

#include <vector>

#include "common/random.h"
#include "gnn/tensor.h"
#include "sampling/minibatch.h"

namespace gids::gnn {

/// One GraphSAGE convolution with the mean aggregator (Eq. 1 with
/// f = ReLU(W_self h_v + W_neigh mean_{w in N(v)} h_w + b)):
/// the standard DGL SAGEConv the paper trains with.
class SageConv {
 public:
  SageConv(size_t in_dim, size_t out_dim, bool apply_relu, Rng& rng);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  /// Forward over one block: `h_src` has one row per block.src_nodes;
  /// returns one row per destination node (the block's dst prefix).
  Tensor Forward(const sampling::Block& block, const Tensor& h_src);

  /// Backward: given d(output), returns d(h_src) and accumulates weight
  /// gradients. Must follow the matching Forward (caches activations).
  Tensor Backward(const sampling::Block& block, const Tensor& d_out);

  void ZeroGrad();
  /// Parameter/gradient access for the optimizer, in fixed order:
  /// {W_self, W_neigh, b}.
  std::vector<Tensor*> Params();
  std::vector<Tensor*> Grads();

 private:
  size_t in_dim_;
  size_t out_dim_;
  bool apply_relu_;

  Tensor w_self_;   // in_dim x out_dim
  Tensor w_neigh_;  // in_dim x out_dim
  Tensor bias_;     // 1 x out_dim

  Tensor g_w_self_;
  Tensor g_w_neigh_;
  Tensor g_bias_;

  // Forward caches for backward.
  Tensor cached_self_;   // num_dst x in_dim
  Tensor cached_mean_;   // num_dst x in_dim
  Tensor cached_out_;    // num_dst x out_dim (post-activation)
  std::vector<uint32_t> cached_degree_;  // in-block degree per dst
};

}  // namespace gids::gnn

#endif  // GIDS_GNN_SAGE_CONV_H_
