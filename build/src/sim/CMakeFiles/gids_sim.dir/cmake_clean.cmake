file(REMOVE_RECURSE
  "CMakeFiles/gids_sim.dir/aggregation_model.cc.o"
  "CMakeFiles/gids_sim.dir/aggregation_model.cc.o.d"
  "CMakeFiles/gids_sim.dir/analytic.cc.o"
  "CMakeFiles/gids_sim.dir/analytic.cc.o.d"
  "CMakeFiles/gids_sim.dir/cpu_model.cc.o"
  "CMakeFiles/gids_sim.dir/cpu_model.cc.o.d"
  "CMakeFiles/gids_sim.dir/event_queue.cc.o"
  "CMakeFiles/gids_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/gids_sim.dir/gpu_model.cc.o"
  "CMakeFiles/gids_sim.dir/gpu_model.cc.o.d"
  "CMakeFiles/gids_sim.dir/pipeline_des.cc.o"
  "CMakeFiles/gids_sim.dir/pipeline_des.cc.o.d"
  "CMakeFiles/gids_sim.dir/ssd_model.cc.o"
  "CMakeFiles/gids_sim.dir/ssd_model.cc.o.d"
  "CMakeFiles/gids_sim.dir/system_model.cc.o"
  "CMakeFiles/gids_sim.dir/system_model.cc.o.d"
  "libgids_sim.a"
  "libgids_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gids_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
