#ifndef GIDS_GRAPH_SERIALIZATION_H_
#define GIDS_GRAPH_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "graph/csc_graph.h"
#include "graph/dataset.h"

namespace gids::graph {

/// Binary dataset container (".gids" files): magic + version header, the
/// dataset spec, CSC structure arrays, feature-store parameters, train
/// ids, and node-type table. Little-endian, no alignment padding.
///
/// Feature *contents* are not stored — they are deterministic in the
/// content seed, which is serialized with the FeatureStore parameters, so
/// a saved dataset is a few bytes per edge rather than terabytes and its
/// reloaded feature bytes are bit-identical. Real feature data can be
/// attached by backing a StorageArray with a file-based BlockDevice
/// instead.
///
/// These functions let expensive proxies (and real imported graphs) be
/// generated once and reloaded across benchmark runs.
Status SaveDataset(const Dataset& dataset, const std::string& path);
StatusOr<Dataset> LoadDataset(const std::string& path);

/// Imports a graph from raw on-disk CSC arrays, the layout DGL/PyG
/// exports produce: `indptr_path` holds num_nodes+1 little-endian int64
/// offsets, `indices_path` holds num_edges little-endian int32 (or int64,
/// auto-detected from file size) source node ids.
StatusOr<CscGraph> LoadCscFromRawArrays(const std::string& indptr_path,
                                        const std::string& indices_path);

}  // namespace gids::graph

#endif  // GIDS_GRAPH_SERIALIZATION_H_
