#include "gnn/gat.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gnn/graphsage_model.h"
#include "gnn/loss.h"
#include "gnn/optimizer.h"
#include "graph/generator.h"
#include "sampling/neighbor_sampler.h"

namespace gids::gnn {
namespace {

sampling::Block TwoDstBlock() {
  // src_nodes = {10, 11, 20, 21}; dst = {10, 11};
  // edges: 20->10, 21->10, 20->11.
  sampling::Block b;
  b.src_nodes = {10, 11, 20, 21};
  b.num_dst = 2;
  b.edge_src = {2, 3, 2};
  b.edge_dst = {0, 0, 1};
  return b;
}

TEST(GatConvTest, ForwardShape) {
  Rng rng(1);
  GatConv conv(4, 3, /*apply_relu=*/false, rng);
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::Xavier(4, 4, rng);
  Tensor out = conv.Forward(block, h);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(GatConvTest, AttentionWeightsAreConvex) {
  // With W = I, uniform attention params, identical inputs: alpha must be
  // uniform over (self + neighbors), so the output equals the input.
  Rng rng(2);
  GatConv conv(2, 2, /*apply_relu=*/false, rng);
  auto params = conv.Params();
  params[0]->Fill(0.0f);
  (*params[0])(0, 0) = 1.0f;
  (*params[0])(1, 1) = 1.0f;       // W = I
  params[1]->Fill(0.3f);           // a_src uniform
  params[2]->Fill(-0.2f);          // a_dst uniform
  params[3]->Fill(0.0f);           // b = 0

  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::FromData(
      4, 2, std::vector<float>{5, -1, 5, -1, 5, -1, 5, -1});
  Tensor out = conv.Forward(block, h);
  // All z identical -> all logits identical -> uniform alpha -> mean = z.
  EXPECT_NEAR(out(0, 0), 5.0f, 1e-4);
  EXPECT_NEAR(out(0, 1), -1.0f, 1e-4);
  EXPECT_NEAR(out(1, 0), 5.0f, 1e-4);
}

TEST(GatConvTest, IsolatedDstUsesOnlySelf) {
  Rng rng(3);
  GatConv conv(2, 2, /*apply_relu=*/false, rng);
  auto params = conv.Params();
  params[0]->Fill(0.0f);
  (*params[0])(0, 0) = 1.0f;
  (*params[0])(1, 1) = 1.0f;
  params[3]->Fill(0.0f);
  sampling::Block b;
  b.src_nodes = {1};
  b.num_dst = 1;  // no edges: only the self loop, alpha = 1
  Tensor h = Tensor::FromData(1, 2, std::vector<float>{3, 4});
  Tensor out = conv.Forward(b, h);
  EXPECT_NEAR(out(0, 0), 3.0f, 1e-5);
  EXPECT_NEAR(out(0, 1), 4.0f, 1e-5);
}

TEST(GatConvTest, GradientsMatchNumericalDifferences) {
  Rng rng(4);
  GatConv conv(3, 2, /*apply_relu=*/true, rng);
  sampling::Block block = TwoDstBlock();
  Tensor h = Tensor::Xavier(4, 3, rng);

  auto loss_fn = [&]() {
    Tensor out = conv.Forward(block, h);
    double loss = 0;
    for (size_t i = 0; i < out.size(); ++i) {
      loss += 0.5 * out.data()[i] * out.data()[i];
    }
    return loss;
  };

  conv.ZeroGrad();
  Tensor out = conv.Forward(block, h);
  Tensor d_src = conv.Backward(block, out);

  const double eps = 1e-3;
  auto params = conv.Params();
  auto grads = conv.Grads();
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor* p = params[pi];
    for (size_t idx = 0; idx < p->size(); ++idx) {
      float original = p->data()[idx];
      p->data()[idx] = original + eps;
      double plus = loss_fn();
      p->data()[idx] = original - eps;
      double minus = loss_fn();
      p->data()[idx] = original;
      double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(grads[pi]->data()[idx], numeric,
                  6e-2 + 0.06 * std::abs(numeric))
          << "param " << pi << " index " << idx;
    }
  }
  for (size_t idx = 0; idx < h.size(); ++idx) {
    float original = h.data()[idx];
    h.data()[idx] = original + eps;
    double plus = loss_fn();
    h.data()[idx] = original - eps;
    double minus = loss_fn();
    h.data()[idx] = original;
    double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(d_src.data()[idx], numeric, 6e-2 + 0.06 * std::abs(numeric))
        << "input index " << idx;
  }
}

TEST(GatModelTest, TrainingReducesLoss) {
  Rng rng(5);
  auto g = graph::GenerateRmat(512, 8192, graph::RmatParams{}, rng);
  ASSERT_TRUE(g.ok());
  graph::FeatureStore fs(512, 32);
  sampling::NeighborSampler sampler(&*g, {.fanouts = {5, 5}}, 6);
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId v = 0; v < 64; ++v) seeds.push_back(v * 7);
  sampling::MiniBatch batch = sampler.Sample(seeds);

  Tensor inputs(batch.num_input_nodes(), 32);
  for (size_t i = 0; i < batch.input_nodes().size(); ++i) {
    fs.FillFeature(batch.input_nodes()[i], inputs.row(i));
  }
  std::vector<uint32_t> labels = SyntheticLabels(fs, seeds, 8);

  GatConfig cfg;
  cfg.in_dim = 32;
  cfg.hidden_dim = 32;
  cfg.num_classes = 8;
  cfg.num_layers = 2;
  Rng model_rng(7);
  GatModel model(cfg, model_rng);
  AdamOptimizer opt(5e-3f);
  double first = model.TrainStep(batch, inputs, labels, opt);
  double last = first;
  for (int step = 0; step < 80; ++step) {
    last = model.TrainStep(batch, inputs, labels, opt);
  }
  EXPECT_LT(last, first * 0.6);
}

TEST(GatModelTest, ImplementsModelInterface) {
  Rng rng(8);
  GatConfig cfg;
  cfg.in_dim = 8;
  cfg.num_layers = 1;
  std::unique_ptr<Model> model = std::make_unique<GatModel>(cfg, rng);
  sampling::MiniBatch batch;
  sampling::Block block;
  block.src_nodes = {0, 1, 2};
  block.num_dst = 2;
  block.edge_src = {2};
  block.edge_dst = {0};
  batch.seeds = {0, 1};
  batch.blocks.push_back(block);
  Tensor inputs = Tensor::Xavier(3, 8, rng);
  Tensor logits = model->Forward(batch, inputs);
  EXPECT_EQ(logits.rows(), 2u);
  EXPECT_EQ(model->Params().size(), 4u);
}

}  // namespace
}  // namespace gids::gnn
