#ifndef GIDS_STORAGE_STORAGE_ARRAY_H_
#define GIDS_STORAGE_STORAGE_ARRAY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "obs/metric_registry.h"
#include "sim/ssd_model.h"
#include "storage/block_device.h"
#include "storage/fault_injector.h"
#include "storage/journal.h"
#include "storage/page_integrity.h"
#include "storage/queue_manager.h"
#include "storage/replica_set.h"

namespace gids::storage {

/// An array of `n_ssd` identical NVMe SSDs behind one logical page space,
/// pages striped round-robin (page p lives on device p mod n_ssd). BaM
/// scales collective bandwidth by attaching several SSDs to one GPU
/// (§3.3); striping is what makes that scaling linear.
///
/// The data plane is one logical BlockDevice (striping does not change
/// bytes); the control plane records per-device request counts so the
/// timing models can split closed-loop windows across devices.
///
/// With fault injection enabled (EnableFaultInjection, FAULTS.md), every
/// read runs a bounded-retry loop: failed attempts back off exponentially
/// in virtual time and re-ring the doorbell; reads that exhaust their
/// retries are dead-lettered and surface as Status::Unavailable, which the
/// gather layer turns into a degraded (zero-filled, flagged) node instead
/// of a failed epoch. Without an injector the read path is byte-for-byte
/// the fault-free fast path.
///
/// With integrity verification enabled (EnableIntegrity, INTEGRITY.md),
/// every served attempt is checked against the page's write-time CRC-32C;
/// a mismatch is a failed attempt like any other — it backs off and
/// re-reads under the same retry budget. A read that eventually verifies
/// clean after at least one mismatch counts as one integrity repair; a
/// read whose final attempt still fails verification dead-letters as
/// Status::DataLoss (unrepairable corruption) rather than kUnavailable.
class StorageArray {
 public:
  /// Side-channel of one read, consumed by the caching layer (BamArray).
  struct ReadOutcome {
    /// The winning attempt carried silent corruption that verification is
    /// not configured to catch: the caller received (or, in counting
    /// mode, would have received) wrong bytes. Never true when
    /// verify_reads is on — corrupt attempts are then repaired or
    /// dead-lettered before they can win.
    bool served_corrupt = false;
    /// Write-time checksum of the clean page, for carrying into the cache
    /// line. Valid only when crc_known (functional reads with integrity
    /// enabled; counting mode moves no bytes and tracks corrupt hints
    /// instead).
    uint32_t crc = 0;
    bool crc_known = false;
    /// Replica index that served the winning attempt (0 = the page's
    /// primary); only nonzero with replication enabled, where it marks a
    /// failover read.
    int served_replica = 0;
  };

  /// `num_queues`/`queue_depth` size the per-GPU IO queue pairs (BaM
  /// defaults: 128 queues of depth 1024). The aggregate depth bounds the
  /// outstanding storage accesses the accumulator can maintain.
  StorageArray(std::unique_ptr<BlockDevice> device, sim::SsdSpec spec,
               int n_ssd, uint32_t num_queues = 128,
               uint32_t queue_depth = 1024);

  uint32_t page_bytes() const { return device_->block_bytes(); }
  uint64_t num_pages() const { return device_->num_blocks(); }
  int n_ssd() const { return n_ssd_; }
  const sim::SsdSpec& spec() const { return spec_; }

  /// Installs a deterministic fault injector + retry policy on the read
  /// path. Call before issuing reads (not thread-safe against them).
  void EnableFaultInjection(const FaultOptions& faults,
                            const RetryPolicy& retry);
  /// The installed injector, or nullptr when the array is fault-free.
  const FaultInjector* fault_injector() const { return injector_.get(); }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Installs the integrity layer (INTEGRITY.md): a page-tagged CRC-32C
  /// checksummer plus the configured verify points. Call before issuing
  /// reads (not thread-safe against them). With verify_reads the read
  /// loop verifies every served attempt even when no fault injector is
  /// installed (the verification cost is still modeled).
  void EnableIntegrity(const IntegrityOptions& integrity);
  const IntegrityOptions& integrity() const { return integrity_; }
  const PageChecksummer& checksummer() const { return checksummer_; }

  /// Installs the N-way replica set (FAULTS.md "Durability & failover"):
  /// replica r of page p lives on device (p + r) mod n_ssd, and the read
  /// path routes each attempt to the first healthy, fresh replica instead
  /// of pinning the page to its primary. Call before issuing reads.
  void EnableReplication(const ReplicaOptions& options);
  const ReplicaSet* replica_set() const { return replicas_.get(); }

  /// Installs the journaled write path: one CRC-tagged write-ahead journal
  /// per device, coordinated across the replica fan-out. Call after
  /// EnableIntegrity/EnableReplication and before issuing reads. Mutations
  /// flow Submit -> Sync -> Apply (all from one single-flight driver);
  /// reads see a mutation only once the applier checkpoints it into the
  /// striped pages (the overlay).
  void EnableJournal(const JournalOptions& options);
  bool journal_enabled() const { return journal_ != nullptr; }
  JournalCoordinator* journal() { return journal_.get(); }
  const JournalCoordinator* journal() const { return journal_.get(); }

  /// Advances the array's virtual clock (monotonic max). The offline-onset
  /// check and replica health view read it; the loader advances it to the
  /// group-preparation clock at every group boundary, so every routing
  /// decision is a pure function of the prepared-group prefix.
  void AdvanceClock(TimeNs now_ns) {
    TimeNs cur = clock_ns_.load(std::memory_order_relaxed);
    while (now_ns > cur && !clock_ns_.compare_exchange_weak(
                               cur, now_ns, std::memory_order_relaxed)) {
    }
  }
  TimeNs clock_ns() const { return clock_ns_.load(std::memory_order_relaxed); }

  /// True when `device` is reachable at the current virtual clock.
  bool DeviceOnline(int device) const {
    return injector_ == nullptr ||
           !injector_->options().DeviceOffline(device, clock_ns());
  }

  /// Submits one mutation to the journal (fan-out to its home page's
  /// reachable replica journals). Returns the assigned LSN.
  uint64_t SubmitMutation(MutationRecord rec);
  /// Syncs every reachable device journal (group-boundary durability
  /// point). Returns the number of journals whose durable tail advanced.
  uint64_t SyncJournals();
  /// The background-applier step: checkpoints up to `budget` durable
  /// records (0 = all ready) into the striped pages, in strict LSN order.
  /// `on_applied`, if given, runs once per record with the storage pages
  /// the apply touched — the loader invalidates cache lines and refreshes
  /// CPU-buffer rows from it. Returns the number of records applied.
  uint64_t ApplyJournal(
      uint64_t budget,
      const std::function<void(const MutationRecord&,
                               std::span<const uint64_t> pages)>& on_applied =
          nullptr);
  /// Deterministic crash at the current instant: un-synced journal tails
  /// are truncated at a (crash_seed, device)-chosen point. Checkpointed
  /// pages (the overlay) and synced journal prefixes survive.
  void CrashJournal(uint64_t crash_seed);
  /// Crash-recovery replay; returns the number of surviving records
  /// replayed above the applied watermark (see JournalCoordinator).
  uint64_t RecoverJournal();

  /// Write-time checksum of `page`'s clean contents, computed lazily from
  /// the backing device patched with the applied-mutation overlay (the
  /// device regenerates pristine ground truth; corruption is injected
  /// above it; applied journal records update it) and memoized. Thread-
  /// safe; the applier invalidates the memo of every page it rewrites.
  uint32_t ExpectedChecksum(uint64_t page);

  /// Functional read of one page. Under fault injection, retries
  /// transparently; Status::Unavailable means the retries were exhausted
  /// (dead-lettered) and `out` holds no valid data; Status::DataLoss means
  /// the page was served but never verified clean (unrepairable silent
  /// corruption). `oc`, if given, receives the integrity side-channel.
  Status ReadPage(uint64_t page, std::span<std::byte> out,
                  ReadOutcome* oc = nullptr);

  /// Counting-mode read: records the access and drives the queue pair
  /// without moving bytes (used by the large-scale timing benchmarks).
  /// Identical retry/fault/verification decisions to ReadPage (corruption
  /// detection is modeled off the injector's decision, which the CRC
  /// compare reproduces exactly — see FaultInjector::Corrupt), so
  /// counting and functional runs report the same retry/timeout/repair/
  /// dead-letter counters. Thread-safe: counters are atomic sums, so
  /// totals are independent of the order concurrent gather shards issue
  /// their reads in.
  Status NoteRead(uint64_t page, ReadOutcome* oc = nullptr) {
    return IssueRead(page, {}, oc);
  }

  const QueueManager& queues() const { return queues_; }
  /// Maximum storage accesses that can be in flight across all queues.
  uint64_t queue_capacity() const { return queues_.total_depth(); }

  /// Device index that owns `page` under round-robin striping.
  int DeviceFor(uint64_t page) const {
    return static_cast<int>(page % static_cast<uint64_t>(n_ssd_));
  }

  uint64_t total_reads() const {
    return total_reads_.load(std::memory_order_relaxed);
  }
  uint64_t reads_on_device(int d) const {
    return per_device_reads_[d].load(std::memory_order_relaxed);
  }

  /// Failed attempts that were retried (one per backoff taken).
  uint64_t retries_total() const {
    return retries_total_.load(std::memory_order_relaxed);
  }
  /// Attempts abandoned at the per-attempt timeout (stuck queue, or a
  /// latency spike past the deadline).
  uint64_t timeouts_total() const {
    return timeouts_total_.load(std::memory_order_relaxed);
  }
  /// Reads abandoned after exhausting max_retries (surfaced to the caller
  /// as Status::Unavailable).
  uint64_t dead_letters_total() const {
    return dead_letters_total_.load(std::memory_order_relaxed);
  }
  /// Virtual nanoseconds spent in retry backoff across all reads. Pure
  /// function of (fault_seed, page set): reproducible run to run.
  uint64_t retry_backoff_ns_total() const {
    return retry_backoff_ns_total_.load(std::memory_order_relaxed);
  }
  /// Total virtual-time penalty of faults across all reads: backoff plus
  /// failed-attempt service/timeout charges plus latency spikes plus
  /// checksum-verification time. The loader snapshots deltas of this
  /// ledger around each gather and folds them into the iteration's
  /// aggregation time, so faults (and verify-on-read overhead) cost
  /// virtual time end to end (FAULTS.md §2).
  uint64_t retry_penalty_ns_total() const {
    return retry_penalty_ns_total_.load(std::memory_order_relaxed);
  }
  /// Checksum-verification share of retry_penalty_ns_total: crc_verify_ns
  /// per verified attempt, across successful and dead-lettered reads.
  /// Disjoint sub-ledger for the iteration cost ledger (OBSERVABILITY.md):
  /// retry_penalty = crc_verify + degraded_penalty + backoff/spike rest.
  uint64_t crc_verify_ns_total() const {
    return crc_verify_ns_total_.load(std::memory_order_relaxed);
  }
  /// Non-CRC share of the penalty charged by reads that exhausted their
  /// retries and were dead-lettered (the attempts wasted on pages the
  /// caller ultimately zero-filled). Disjoint from crc_verify_ns_total.
  uint64_t degraded_penalty_ns_total() const {
    return degraded_penalty_ns_total_.load(std::memory_order_relaxed);
  }

  /// Served attempts that were checksum-verified (verify_reads).
  uint64_t verified_reads_total() const {
    return verified_reads_total_.load(std::memory_order_relaxed);
  }
  /// Verified attempts whose checksum did not match (each was retried or
  /// dead-lettered).
  uint64_t checksum_mismatches_total() const {
    return checksum_mismatches_total_.load(std::memory_order_relaxed);
  }
  /// Reads that saw at least one checksum mismatch and still completed
  /// with verified-clean data (the re-read repaired them).
  uint64_t integrity_repairs_total() const {
    return integrity_repairs_total_.load(std::memory_order_relaxed);
  }
  /// Reads dead-lettered because their final attempt failed verification
  /// (surfaced as Status::DataLoss; a subset of dead_letters_total).
  uint64_t data_loss_total() const {
    return data_loss_total_.load(std::memory_order_relaxed);
  }

  /// Reads whose winning attempt was served by a non-primary replica
  /// (failover reads). 0 without replication.
  uint64_t replica_failovers_total() const {
    return replica_failovers_total_.load(std::memory_order_relaxed);
  }
  /// Reads routed with no healthy, fresh replica left (they cycle the
  /// doomed copies and, failing, dead-letter). Quorum-lost is the only
  /// path on which a replicated read still zero-fills.
  uint64_t replica_quorum_lost_total() const {
    return replica_quorum_lost_total_.load(std::memory_order_relaxed);
  }
  /// Failover reads whose primary was device `d` (where reads failed FROM).
  uint64_t failovers_from_device(int d) const {
    return failovers_from_device_[d].load(std::memory_order_relaxed);
  }
  /// Successful reads served by replica index `r` (r = 0 is the primary).
  uint64_t reads_by_replica(int r) const {
    return reads_by_replica_[r].load(std::memory_order_relaxed);
  }

  void ResetCounters();

  /// Exposes the array through `registry`: read counters (total and
  /// per-device), queue-pair doorbell traffic, an outstanding-request
  /// gauge, a request-size histogram observed on every read, and the
  /// fault/retry series (gids_storage_retries_total, _timeouts_total,
  /// _dead_letters_total, _faults_injected_total, retry-latency histogram).
  /// With `attribution_series` the penalty sub-ledgers are also exported
  /// (gids_storage_crc_verify_ns_total, _degraded_penalty_ns_total); off by
  /// default so runs without attribution sinks keep their exact metric set.
  void BindMetrics(obs::MetricRegistry* registry, const obs::Labels& labels,
                   bool attribution_series = false);

 private:
  /// Shared fast/retry read path. An empty `out` span is counting mode.
  Status IssueRead(uint64_t page, std::span<std::byte> out, ReadOutcome* oc);
  /// Allocates the lazy expected-checksum table on first use.
  void EnsureChecksumTable();
  /// Ground-truth page contents: the backing device patched with the
  /// applied-mutation overlay. Byte-for-byte the raw device read when the
  /// journal is off or the page was never mutated.
  Status ReadCleanPage(uint64_t page, std::span<std::byte> out) const;
  /// Checkpoints one applied record's payload into the overlay pages,
  /// refreshes their checksum memos, and appends the touched pages to
  /// `pages` (cleared first).
  void ApplyRecordToPages(const MutationRecord& rec,
                          std::vector<uint64_t>* pages);
  /// Post-success bookkeeping shared by both modes. `device` is the
  /// striped device that served the read (the primary unless a replica
  /// failover rerouted it).
  void CountRead(uint64_t /*page*/, int device) {
    total_reads_.fetch_add(1, std::memory_order_relaxed);
    per_device_reads_[device].fetch_add(1, std::memory_order_relaxed);
    if (request_bytes_hist_ != nullptr) {
      request_bytes_hist_->Observe(page_bytes());
    }
  }

  std::unique_ptr<BlockDevice> device_;
  sim::SsdSpec spec_;
  int n_ssd_;
  QueueManager queues_;
  std::unique_ptr<FaultInjector> injector_;  // null = fault-free fast path
  RetryPolicy retry_;
  IntegrityOptions integrity_;
  PageChecksummer checksummer_{IntegrityOptions{}.crc_seed};
  /// Lazy memo of write-time checksums: 0 = not yet computed, else
  /// (1 << 32) | crc. Allocated on first ExpectedChecksum call so
  /// counting-mode runs over terabyte-scale page spaces never pay for it.
  std::unique_ptr<std::atomic<uint64_t>[]> checksums_;
  std::once_flag checksums_once_;
  std::atomic<uint64_t> total_reads_{0};
  std::atomic<uint64_t> retries_total_{0};
  std::atomic<uint64_t> timeouts_total_{0};
  std::atomic<uint64_t> dead_letters_total_{0};
  std::atomic<uint64_t> retry_backoff_ns_total_{0};
  std::atomic<uint64_t> retry_penalty_ns_total_{0};
  std::atomic<uint64_t> crc_verify_ns_total_{0};
  std::atomic<uint64_t> degraded_penalty_ns_total_{0};
  std::atomic<uint64_t> verified_reads_total_{0};
  std::atomic<uint64_t> checksum_mismatches_total_{0};
  std::atomic<uint64_t> integrity_repairs_total_{0};
  std::atomic<uint64_t> data_loss_total_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> per_device_reads_;
  obs::HistogramMetric* request_bytes_hist_ = nullptr;   // registry-owned
  obs::HistogramMetric* retry_latency_hist_ = nullptr;   // registry-owned

  /// Virtual clock of the array (monotonic; loader-advanced). Gates the
  /// offline-device onset and the replica health view.
  std::atomic<TimeNs> clock_ns_{0};
  std::unique_ptr<ReplicaSet> replicas_;        // null = single copy
  std::unique_ptr<JournalCoordinator> journal_; // null = read-only pages
  /// Checkpointed page contents (pages the applier rewrote). The backing
  /// FunctionBlockDevice regenerates pristine bytes only, so mutated pages
  /// live here; ReadCleanPage patches reads through it. Reader-heavy:
  /// gather threads take the shared lock, the single-flight applier the
  /// exclusive one.
  mutable std::shared_mutex overlay_mu_;
  std::unordered_map<uint64_t, std::vector<std::byte>> overlay_;
  std::atomic<uint64_t> replica_failovers_total_{0};
  std::atomic<uint64_t> replica_quorum_lost_total_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> failovers_from_device_;
  std::unique_ptr<std::atomic<uint64_t>[]> reads_by_replica_;
};

}  // namespace gids::storage

#endif  // GIDS_STORAGE_STORAGE_ARRAY_H_
