#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <tuple>
#include <vector>

#include "core/gids_loader.h"
#include "storage/storage_array.h"
#include "tests/test_util.h"

namespace gids::storage {
namespace {

// Integrity counters are pure functions of (fault_seed, corruption_rate,
// access sequence) — never of the host thread count. Runs in the
// tsan-covered concurrency binary as well as the plain suite.
struct IntegrityTotals {
  uint64_t corrupt_nodes = 0;
  uint64_t degraded_nodes = 0;
  uint64_t verified = 0;
  uint64_t mismatches = 0;
  uint64_t repairs = 0;
  uint64_t data_loss = 0;
  uint64_t scrub_errors = 0;

  auto Tie() const {
    return std::tie(corrupt_nodes, degraded_nodes, verified, mismatches,
                    repairs, data_loss, scrub_errors);
  }
  bool operator==(const IntegrityTotals& o) const { return Tie() == o.Tie(); }
};

IntegrityTotals RunEpoch(uint32_t host_threads, double corruption_rate,
                         uint32_t scrub_pages, int iters = 24) {
  gids::testing::LoaderRig rig;
  core::GidsOptions opts;
  opts.counting_mode = true;
  opts.host_threads = host_threads;
  opts.corruption_rate = corruption_rate;
  opts.verify_reads = true;
  opts.verify_cache_fill = true;
  opts.verify_cache_hit = true;
  opts.scrub_pages_per_iter = scrub_pages;
  opts.io_max_retries = 3;
  core::GidsLoader loader(rig.dataset.get(), rig.sampler.get(),
                          rig.seeds.get(), rig.system.get(), opts);
  IntegrityTotals t;
  for (int i = 0; i < iters; ++i) {
    auto batch = loader.Next();
    GIDS_CHECK_OK(batch.status());
    t.corrupt_nodes += batch->stats.gather.corrupt_nodes;
    t.degraded_nodes += batch->stats.gather.degraded_nodes;
  }
  const StorageArray& sa = loader.storage_array();
  t.verified = sa.verified_reads_total();
  t.mismatches = sa.checksum_mismatches_total();
  t.repairs = sa.integrity_repairs_total();
  t.data_loss = sa.data_loss_total();
  t.scrub_errors = loader.mutable_cache().stats().scrub_errors;
  return t;
}

TEST(IntegrityDeterminismTest, CountersIdenticalAcrossHostThreads) {
  const IntegrityTotals serial = RunEpoch(1, 0.01, 16);
  EXPECT_GT(serial.mismatches, 0u) << "rate too low to exercise the path";
  EXPECT_GT(serial.repairs, 0u);
  for (uint32_t threads : {4u, 8u}) {
    const IntegrityTotals pooled = RunEpoch(threads, 0.01, 16);
    EXPECT_TRUE(pooled == serial)
        << "host_threads=" << threads << " diverged: corrupt "
        << pooled.corrupt_nodes << "/" << serial.corrupt_nodes
        << ", mismatches " << pooled.mismatches << "/" << serial.mismatches
        << ", repairs " << pooled.repairs << "/" << serial.repairs
        << ", data_loss " << pooled.data_loss << "/" << serial.data_loss;
  }
}

TEST(IntegrityDeterminismTest, RepeatedRunsAreIdentical) {
  EXPECT_TRUE(RunEpoch(4, 0.02, 8) == RunEpoch(4, 0.02, 8));
}

// A run whose every corruption is repaired delivers bit-identical batches
// (virtual timing aside) to a corruption-free run: same traffic counters,
// same sampled structure, zero corrupt/degraded nodes.
TEST(IntegrityDeterminismTest, FullyRepairedRunMatchesCorruptionFree) {
  auto run = [](double rate) {
    gids::testing::LoaderRig rig;
    core::GidsOptions opts;
    opts.counting_mode = true;
    opts.corruption_rate = rate;
    opts.verify_reads = true;
    opts.io_max_retries = 12;  // deep enough that nothing dead-letters
    core::GidsLoader loader(rig.dataset.get(), rig.sampler.get(),
                            rig.seeds.get(), rig.system.get(), opts);
    std::vector<std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>> trace;
    uint64_t repairs_seen = 0;
    for (int i = 0; i < 24; ++i) {
      auto batch = loader.Next();
      GIDS_CHECK_OK(batch.status());
      EXPECT_EQ(batch->stats.gather.corrupt_nodes, 0u);
      EXPECT_EQ(batch->stats.gather.degraded_nodes, 0u);
      trace.emplace_back(batch->stats.input_nodes, batch->stats.sampled_edges,
                         batch->stats.gather.gpu_cache_hits,
                         batch->stats.gather.storage_reads);
    }
    repairs_seen = loader.storage_array().integrity_repairs_total();
    EXPECT_EQ(loader.storage_array().data_loss_total(), 0u);
    return std::pair(trace, repairs_seen);
  };
  auto [repaired_trace, repairs] = run(0.02);
  auto [clean_trace, no_repairs] = run(0.0);
  EXPECT_GT(repairs, 0u) << "rate too low to exercise repair";
  EXPECT_EQ(no_repairs, 0u);
  EXPECT_EQ(repaired_trace, clean_trace);
}

}  // namespace
}  // namespace gids::storage
