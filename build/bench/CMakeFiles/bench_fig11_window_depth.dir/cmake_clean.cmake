file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_window_depth.dir/bench_fig11_window_depth.cc.o"
  "CMakeFiles/bench_fig11_window_depth.dir/bench_fig11_window_depth.cc.o.d"
  "bench_fig11_window_depth"
  "bench_fig11_window_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_window_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
