#include "sim/system_model.h"

namespace gids::sim {

SystemConfig SystemConfig::Paper(SsdSpec ssd_spec, int n_ssd) {
  SystemConfig c;
  c.ssd = std::move(ssd_spec);
  c.n_ssd = n_ssd;
  return c;
}

SystemModel::SystemModel(SystemConfig config)
    : config_(std::move(config)),
      cpu_(config_.cpu),
      gpu_(config_.gpu),
      pcie_(LinkModel::PcieGen4x16()),
      dram_(LinkModel::Ddr4Epyc()),
      hbm_(LinkModel::HbmA100()) {}

}  // namespace gids::sim
