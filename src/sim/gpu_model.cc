#include "sim/gpu_model.h"

#include <algorithm>
#include <cmath>

namespace gids::sim {

TimeNs GpuModel::SamplingLayerTime(uint64_t edges,
                                   uint64_t structure_bytes) const {
  if (edges == 0) return spec_.kernel_launch_ns;
  double miss_prob = 0.0;
  if (structure_bytes > spec_.llc_bytes) {
    miss_prob = 1.0 - static_cast<double>(spec_.llc_bytes) /
                          static_cast<double>(structure_bytes);
  }
  double per_edge =
      spec_.edge_sample_base_ns + miss_prob * spec_.uva_edge_penalty_ns;
  double occupancy =
      std::max(spec_.min_occupancy,
               std::min(1.0, static_cast<double>(edges) /
                                 static_cast<double>(
                                     spec_.occupancy_saturation_edges)));
  double ns = per_edge * static_cast<double>(edges) / occupancy;
  return spec_.kernel_launch_ns + static_cast<TimeNs>(std::llround(ns));
}

TimeNs GpuModel::SamplingTime(const uint64_t* layer_edges, int layers,
                              uint64_t structure_bytes) const {
  TimeNs total = 0;
  for (int l = 0; l < layers; ++l) {
    total += SamplingLayerTime(layer_edges[l], structure_bytes);
  }
  return total;
}

TimeNs GpuModel::TrainTime(uint64_t feature_vectors) const {
  double secs =
      static_cast<double>(feature_vectors) / spec_.train_consume_rate;
  return spec_.kernel_launch_ns + SecToNs(secs);
}

TimeNs GpuModel::RequestGenTime(uint64_t n) const {
  double secs = static_cast<double>(n) / spec_.prep_request_rate;
  return SecToNs(secs);
}

}  // namespace gids::sim
