#ifndef GIDS_CORE_GIDS_LOADER_H_
#define GIDS_CORE_GIDS_LOADER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/workspace_pool.h"
#include "core/accumulator.h"
#include "core/constant_cpu_buffer.h"
#include "core/mutation_stream.h"
#include "core/window_buffer.h"
#include "graph/dataset.h"
#include "loaders/dataloader.h"
#include "loaders/loader_obs.h"
#include "obs/exemplar.h"
#include "obs/metric_registry.h"
#include "obs/time_series.h"
#include "obs/trace_recorder.h"
#include "sampling/sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/system_model.h"
#include "storage/bam_array.h"
#include "storage/feature_gather.h"
#include "storage/software_cache.h"
#include "storage/storage_array.h"

namespace gids::core {

/// Configuration of the GIDS dataloader. Disabling all three techniques
/// yields the plain BaM dataloader baseline (GPU-initiated storage access,
/// random-eviction software cache, per-iteration kernels) that the paper
/// compares against.
struct GidsOptions {
  bool use_accumulator = true;
  double accumulator_target = 0.95;        // fraction of peak SSD IOPs
  uint32_t max_merged_iterations = 16;     // batch-buffer memory bound

  bool use_window_buffering = true;
  int window_depth = 8;                    // paper default (§3.4)
  /// Derive the depth from the cache-to-minibatch ratio at runtime
  /// (AutoWindowDepth) instead of using window_depth.
  bool auto_window_depth = false;

  bool use_cpu_buffer = true;
  double cpu_buffer_fraction = 0.10;       // of the feature data size
  HotMetric hot_metric = HotMetric::kReversePageRank;
  /// Optional user-supplied hot-node ranking (hottest first), overriding
  /// hot_metric (§3.3: users may pin by alternative metrics). Must outlive
  /// the loader.
  const std::vector<graph::NodeId>* hot_node_order = nullptr;

  /// GPU software cache size; 0 uses the system config's (scaled) value.
  uint64_t gpu_cache_bytes = 0;

  /// Replacement/admission policy for the software cache and the static
  /// hot-buffer ranking (CACHING.md). The default names the paper's full
  /// stack: random eviction + window pinning + a structurally ranked hot
  /// buffer — bit-identical to the pre-framework behavior. kPresample
  /// runs a presample pass at construction and ranks by observed
  /// frequency instead; GidsOptions::Bam() selects kRandom.
  storage::CachePolicyKind cache_policy =
      storage::CachePolicyKind::kPageRankHot;
  /// Externally owned policy instance shared across loaders (multi-GPU
  /// shared-cache-policy mode, MultiGpuOptions::share_cache_policy).
  /// Overrides cache_policy; must outlive the loader. The sharing host
  /// seeds the ranking (SeedCachePolicy) — loaders never re-seed a policy
  /// they do not own.
  storage::CachePolicy* shared_cache_policy = nullptr;
  /// Presample-pass length (sampler iterations) for kPresample; 0 skips
  /// the pass (the buffer then falls back to hot_metric).
  uint32_t presample_iterations = 32;
  /// Seed of the presample pass's private shuffled seed stream (the
  /// training epoch's seed order is untouched).
  uint64_t presample_seed = 0x9e5a;
  /// Re-rank cadence for kPresample: every N prepared accumulator groups
  /// the loader re-ingests cumulative observed node frequencies
  /// (presample counts + live batch composition) so the policy tracks
  /// drift. 0 disables live re-ranking. Group-scoped and single-flight,
  /// so re-ranking is deterministic at any host_threads/prefetch_depth.
  uint32_t presample_rerank_groups = 0;

  /// IO queue-pair geometry (BaM defaults). The aggregate depth caps the
  /// outstanding storage accesses the accumulator can maintain.
  uint32_t io_queues = 128;
  uint32_t io_queue_depth = 1024;

  /// Counting mode skips payload movement (timing-only runs).
  bool counting_mode = false;

  /// Page-coalescing gather (DESIGN.md §10): each distinct storage page in
  /// a merged group is serviced by exactly one cache/storage round-trip
  /// and scattered to every requesting output row — duplicate nodes, rows
  /// sharing a page, and repeats across accumulator-merged iterations all
  /// collapse, the way concurrent same-page requests coalesce in the BaM
  /// I/O stack (§2). Off (default) keeps the access-per-row path bit for
  /// bit.
  bool coalesce_pages = false;

  /// Host-side data-preparation parallelism: worker threads for the
  /// parallel sampling of accumulator-merged iterations and the sharded
  /// feature gather. 1 keeps preparation on the calling thread. Results
  /// are bit-identical across values (see DESIGN.md "Host parallelism").
  uint32_t host_threads = 1;

  /// Accumulator groups to prepare asynchronously ahead of consumption
  /// (double buffering: iteration i trains while group i+1 samples and
  /// gathers on the pool). 0 prepares groups inline in Next(). Any
  /// nonzero value creates the host pool even with host_threads == 1.
  uint32_t prefetch_depth = 0;

  /// Software-cache shard count override; 0 uses the automatic policy
  /// (power of two, >= 256 lines per shard, <= 64 shards).
  uint32_t cache_shards = 0;

  /// Size-bucketed workspace pooling for the data-preparation hot path
  /// (DESIGN.md §11): sampler scratch, gather staging, and penalty/slice
  /// vectors draw pow2-class blocks from the process-wide WorkspacePool,
  /// and consumed LoaderBatches handed back via Recycle() reseed the next
  /// iteration's seed/block/feature storage, so a steady-state epoch
  /// performs zero heap allocations (gids_ws_allocs_total stays flat).
  /// Off is the escape hatch (`gids_cli --no-workspace-pool`): every
  /// workspace acquire falls through to malloc/free, with bit-identical
  /// results. The flag sets the process-wide pool mode, so all loaders in
  /// one process should agree on it.
  bool workspace_pool = true;

  /// --- Storage fault injection & resilience (FAULTS.md). All defaults
  /// keep the fault layer disabled: the storage read path is then
  /// byte-for-byte the pre-fault fast path.
  /// Per-attempt transient command-error probability on storage reads.
  double fault_rate = 0.0;
  /// Seed of the deterministic fault stream (decisions are pure functions
  /// of (fault_seed, page, attempt); same seed => same faults, at any
  /// host_threads value).
  uint64_t fault_seed = 0xfa017;
  /// Per-attempt latency-spike probability and magnitude; a spike that
  /// pushes an attempt past io_timeout_ns becomes a timeout.
  double latency_spike_rate = 0.0;
  TimeNs latency_spike_ns = 500 * kNsPerUs;
  /// Per-attempt probability that the submission queue stalls (the command
  /// is abandoned at io_timeout_ns and retried).
  double stuck_queue_rate = 0.0;
  /// Striped SSD index to take offline (-1 = none); its pages always
  /// exhaust retries and degrade (or fail over, with replication). Alias
  /// for a single-entry offline_devices, kept for compatibility.
  int offline_device = -1;
  /// Striped SSD indices to take offline (generalizes offline_device;
  /// both combine). Empty = none.
  std::vector<int> offline_devices;
  /// Virtual-time onset of the outage: the offline set is healthy before
  /// this loader-clock instant and dark from it onward. 0 = offline from
  /// the start.
  TimeNs offline_at_ns = 0;
  /// Retry policy: attempts = io_max_retries + 1; exponential backoff
  /// starting at io_backoff_ns (doubling, capped at io_backoff_cap_ns);
  /// per-attempt command timeout io_timeout_ns. All in virtual time.
  uint32_t io_max_retries = 4;
  TimeNs io_timeout_ns = 1 * kNsPerMs;
  TimeNs io_backoff_ns = 20 * kNsPerUs;
  TimeNs io_backoff_cap_ns = 2 * kNsPerMs;

  /// --- End-to-end data integrity (INTEGRITY.md). All defaults keep the
  /// integrity layer disabled; the read path and benchmark output are
  /// then bit-identical to the pre-integrity build.
  /// Per-attempt probability that a successful storage read serves
  /// silently corrupted bytes (no error status). Deterministic in
  /// (fault_seed, page, attempt), like the loud fault modes.
  double corruption_rate = 0.0;
  /// Seed of the page-tagged CRC-32C checksum space.
  uint64_t crc_seed = 0xc3c32c;
  /// Verify every storage read against the page's write-time checksum;
  /// mismatches re-read under the retry budget (repair) and dead-letter
  /// as unrepairable corruption when the budget runs out.
  bool verify_reads = false;
  /// Verify page payloads as they are inserted into the software cache
  /// (corrupt fills are rejected).
  bool verify_cache_fill = false;
  /// Re-verify resident cache lines on every hit; mismatched lines are
  /// quarantined and re-read from storage.
  bool verify_cache_hit = false;
  /// Background scrubber budget: resident cache lines (plus pinned CPU
  /// buffer rows) verified per merged iteration, walked in virtual time
  /// between iterations. 0 disables the scrubber.
  uint32_t scrub_pages_per_iter = 0;
  /// Modeled virtual-time cost of one checksum verification.
  TimeNs crc_verify_ns = 1 * kNsPerUs;

  /// --- Durability & replication (FAULTS.md "Durability & failover").
  /// All defaults keep the subsystem disabled: no replica routing, no
  /// journals, no mutation stream, and RESULT_JSON bit-identical to the
  /// pre-replication build.
  /// Copies of every page across the striped devices (replica r of page p
  /// lives on device (p + r) % n_ssd). 1 = single-copy (off); > 1 turns
  /// on replica-aware read routing and write fan-out.
  int replication_factor = 1;
  /// Journal fan-outs that must fsync before a record is quorum-durable.
  /// 0 = majority (factor / 2 + 1).
  int write_quorum = 0;
  /// Journaled feature-row overwrites submitted per training iteration.
  /// > 0 enables the journaled write path (mutation stream + applier).
  uint32_t updates_per_iter = 0;
  /// Journaled edge insert/delete records submitted per iteration
  /// (durably logged and counted; not folded into the CSC topology).
  uint32_t edge_ops_per_iter = 0;
  /// Seed the mutation stream is a pure function of.
  uint64_t mutation_seed = 0x6d7574a73ull;
  /// Durability level mutations are acknowledged at:
  /// none | journaled | synced | quorum.
  std::string durability = "quorum";
  /// Records the background applier checkpoints into striped pages per
  /// merged iteration (0 = apply every ready record each step).
  uint64_t journal_apply_budget = 0;
  /// Modeled virtual-time costs of the journaled write path.
  TimeNs journal_append_ns = 500;
  TimeNs journal_fsync_ns = 10 * kNsPerUs;
  TimeNs journal_apply_ns = 2 * kNsPerUs;
  /// Deterministic crash point: before preparing merged-iteration group
  /// `crash_at_group` (0-based), the loader crashes the journals
  /// (truncating unsynced tails at crash_seed-chosen cuts), recovers,
  /// and resubmits lost records. -1 = never.
  int crash_at_group = -1;
  /// Seed of the per-device crash truncation cuts.
  uint64_t crash_seed = 0xc4a54ull;

  /// Optional observability sinks (see OBSERVABILITY.md). When set, the
  /// loader binds every component (cache, storage array, CPU buffer,
  /// window buffer) into the registry under {loader=<display_name>} and
  /// records per-iteration spans / accumulator flush events in virtual
  /// time. Both must outlive the loader.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Optional attribution sinks (OBSERVABILITY.md "Tail-latency
  /// attribution"). When either is set the loader feeds every iteration's
  /// (end time, e2e, cost ledger) sample into them and additionally
  /// exports the ledger metric series and per-span ledger args; when both
  /// are null the metric/trace output is byte-identical to a build without
  /// the attribution layer. Must outlive the loader.
  obs::TimeSeries* timeline = nullptr;
  obs::ExemplarReservoir* exemplars = nullptr;
  /// Optional failover-exemplar sink (rank it RankBy::kMostFailovers):
  /// iterations whose gathers failed over to a replica are retained with
  /// the device failed FROM and replica failed TO, so `gids_cli report`
  /// explains outages without the trace. Fed only when failovers occur.
  obs::ExemplarReservoir* failover_exemplars = nullptr;

  uint64_t seed = 0x61d5;
  std::string display_name = "GIDS";

  /// The plain BaM dataloader: all GIDS techniques disabled.
  static GidsOptions Bam() {
    GidsOptions o;
    o.use_accumulator = false;
    o.use_window_buffering = false;
    o.use_cpu_buffer = false;
    o.cache_policy = storage::CachePolicyKind::kRandom;
    o.display_name = "BaM";
    return o;
  }
};

/// The GIDS dataloader (§3): GPU-side sampling over CPU-pinned structure,
/// GPU-initiated feature fetches from the SSD array through the software
/// cache, with the dynamic storage access accumulator, window buffering,
/// and the constant CPU buffer layered on top.
class GidsLoader : public loaders::DataLoader {
 public:
  GidsLoader(const graph::Dataset* dataset, sampling::Sampler* sampler,
             sampling::SeedIterator* seeds, const sim::SystemModel* system,
             GidsOptions options = {});
  ~GidsLoader() override;

  std::string_view name() const override { return options_.display_name; }
  StatusOr<loaders::LoaderBatch> Next() override;
  /// Banks the consumed batch's seed/block/feature storage for reuse by a
  /// later iteration (the zero-allocation loop, DESIGN.md §11). Safe to
  /// call from the consumer thread while a prefetch task prepares groups.
  void Recycle(loaders::LoaderBatch&& batch) override;
  TimeNs elapsed_ns() const override { return elapsed_ns_; }
  uint64_t iterations() const override { return iterations_; }

  const GidsOptions& options() const { return options_; }
  const storage::SoftwareCache& cache() const { return *cache_; }
  storage::SoftwareCache& mutable_cache() { return *cache_; }
  const StorageAccessAccumulator& accumulator() const { return *accumulator_; }
  /// Effective look-ahead depth (resolved on first use in auto mode).
  int window_depth() const { return resolved_window_depth_; }
  const ConstantCpuBuffer* cpu_buffer() const { return cpu_buffer_.get(); }
  /// The plugged cache policy (owned unless shared_cache_policy was set).
  const storage::CachePolicy& cache_policy() const { return *policy_; }
  const storage::StorageArray& storage_array() const { return *storage_; }
  /// The host data-preparation pool (null when host_threads == 1 and
  /// prefetch is off).
  const ThreadPool* host_pool() const { return pool_.get(); }

 private:
  struct Pending {
    uint64_t iteration = 0;  // global iteration index (RNG stream key)
    std::vector<graph::NodeId> seeds;
    sampling::MiniBatch batch;
    TimeNs sampling_ns = 0;
    bool sampled = false;
    bool registered = false;  // entered the window buffer
  };

  /// Samples ahead until at least `count` mini-batches are pending. Seed
  /// batches are drawn serially (the seed iterator is stateful); the
  /// sampler calls run on the pool when the sampler is concurrent-safe,
  /// each iteration on its own deterministic RNG stream.
  void EnsureSampledAhead(size_t count);
  /// Registers every pending batch in [0, count) with the window buffer.
  void RegisterWindow(size_t count);
  /// Prepares the next accumulator group. Never runs concurrently with
  /// itself: Next() runs it inline only while no prefetch is in flight,
  /// and the prefetch task is single-flight.
  StatusOr<std::vector<loaders::LoaderBatch>> PrepareGroupBatches();
  /// Launches the prefetch task if prefetching is on, none is running,
  /// and the staging buffer has room.
  void MaybeLaunchPrefetch();
  /// Pool task: prepares groups until the staging buffer is full.
  void PrefetchTask();

  const graph::Dataset* dataset_;
  sampling::Sampler* sampler_;
  sampling::SeedIterator* seeds_;
  const sim::SystemModel* system_;
  GidsOptions options_;

  std::unique_ptr<storage::StorageArray> storage_;
  std::unique_ptr<storage::CachePolicy> owned_policy_;
  storage::CachePolicy* policy_ = nullptr;  // never null after the ctor
  std::unique_ptr<storage::SoftwareCache> cache_;
  std::unique_ptr<storage::BamArray> bam_;
  std::unique_ptr<ConstantCpuBuffer> cpu_buffer_;
  std::unique_ptr<storage::FeatureGatherer> gatherer_;
  std::unique_ptr<WindowBuffer> window_;
  std::unique_ptr<StorageAccessAccumulator> accumulator_;
  std::unique_ptr<ThreadPool> pool_;

  std::deque<Pending> pending_;
  std::deque<loaders::LoaderBatch> ready_;
  /// Consumed Pendings parked for reuse: their seeds vector and MiniBatch
  /// blocks keep their capacity across iterations. Touched only by the
  /// single-flight group preparation, so no lock.
  std::vector<Pending> pending_free_;
  /// Recycle() deposits; group preparation withdraws. Guarded by
  /// recycle_mu_ because the consumer thread recycles while the prefetch
  /// task prepares.
  std::mutex recycle_mu_;
  std::vector<sampling::MiniBatch> batch_free_;
  std::vector<std::vector<float>> features_free_;

  // Group-preparation scratch, reused across calls (single-flight, like
  // the gatherer's members): pool-backed so steady-state groups allocate
  // nothing.
  Workspace<size_t> sample_todo_;
  Workspace<TimeNs> retry_penalty_;
  Workspace<TimeNs> crc_penalty_;
  Workspace<TimeNs> degraded_penalty_;
  Workspace<storage::GatherSlice> gather_slices_;
  Workspace<storage::FeatureGatherCounts> slice_counts_;
  Workspace<storage::SoftwareCache::ScrubResult> scrub_results_;

  // Live re-rank state for kPresample (presample_rerank_groups > 0):
  // cumulative observed node frequencies (presample counts + every
  // consumed batch's input-node composition) and the group countdown.
  // Touched only by the single-flight group preparation.
  Workspace<uint64_t> live_freq_;
  uint64_t groups_since_rerank_ = 0;
  bool presample_live_rerank_ = false;

  uint64_t next_sample_iteration_ = 0;
  int resolved_window_depth_ = 0;
  TimeNs elapsed_ns_ = 0;
  uint64_t iterations_ = 0;

  // Durability & replication (FAULTS.md "Durability & failover"). All
  // touched only by the single-flight group preparation, except the
  // storage array's virtual clock (atomic, advanced at prep start so
  // offline_at_ns onsets are a pure function of groups prepared).
  std::unique_ptr<MutationStream> mutations_;
  /// Sum of the e2e_ns of every group prepared so far — the loader-clock
  /// instant the NEXT group preparation starts at.
  TimeNs prep_clock_ns_ = 0;
  uint64_t groups_prepared_ = 0;
  /// Iterations whose mutations have been submitted (the stream is
  /// submitted through the group's last iteration before its gathers).
  uint64_t mutations_through_iter_ = 0;
  bool crash_done_ = false;

  // Prefetch hand-off: the pool task pushes prepared groups into staged_;
  // Next() drains them. stage_mu_ guards everything in this block.
  std::mutex stage_mu_;
  std::condition_variable stage_cv_;
  std::deque<std::vector<loaders::LoaderBatch>> staged_;
  Status prefetch_status_ = Status::OK();
  bool prefetch_running_ = false;
  bool stopping_ = false;

  // Observability (all unset unless options_.metrics / options_.trace).
  // LoaderObserver is not thread-safe; obs_mu_ serializes the consumer
  // thread's RecordIteration against the prefetch task's Instant calls.
  // Background-scrubber accounting (INTEGRITY.md). Atomic because the
  // prefetch task scrubs while the consumer thread may snapshot metrics.
  std::atomic<uint64_t> scrub_pages_total_{0};
  std::atomic<uint64_t> scrub_errors_total_{0};
  std::atomic<uint64_t> scrub_ns_total_{0};

  // Page-coalescing accounting (DESIGN.md §10), accumulated per prepared
  // group. Atomic for the same prefetch-vs-snapshot reason as above.
  std::atomic<uint64_t> gather_coalesced_total_{0};
  std::atomic<uint64_t> gather_requests_total_{0};

  std::mutex obs_mu_;
  std::unique_ptr<loaders::LoaderObserver> observer_;
  // Pull-metric lifetimes (OBSERVABILITY.md): destroying these freezes the
  // thread-pool / workspace-pool gauges to their final values even when
  // the registry outlives the loader.
  obs::PullBinding pool_metrics_binding_;
  obs::PullBinding ws_metrics_binding_;
  obs::Counter* groups_total_ = nullptr;
  obs::HistogramMetric* merged_group_hist_ = nullptr;
  obs::Gauge* threshold_gauge_ = nullptr;
  obs::Gauge* window_depth_gauge_ = nullptr;
  uint64_t traced_evictions_ = 0;
};

}  // namespace gids::core

#endif  // GIDS_CORE_GIDS_LOADER_H_
