#ifndef GIDS_COMMON_THREAD_POOL_H_
#define GIDS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gids {

/// Fixed-size worker pool used by the CPU-side data-preparation pipeline
/// (parallel sampling of accumulator groups, the sharded feature gather,
/// and the GIDS loader's iteration prefetch).
///
/// Concurrency contract:
///  - Submit/Wait: fire-and-forget tasks. The first exception thrown by a
///    submitted task is captured and rethrown from the next Wait() call
///    (the remaining tasks still run; the worker survives).
///  - ParallelFor/ParallelForChunked: the *calling* thread participates in
///    chunk execution, so nesting a ParallelFor inside a task running on
///    this very pool cannot deadlock (the prefetch task preparing a group
///    runs the group's parallel sample/gather on the same pool). The first
///    exception thrown by the body is rethrown from the call itself, after
///    every chunk has finished.
///  - Dynamic chunking: ranges are split into more chunks than workers
///    (kChunksPerWorker per thread) and claimed from a shared cursor, so a
///    skewed chunk (e.g. a gather chunk full of page-spanning nodes) does
///    not straggle the whole batch.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed. Rethrows the first
  /// exception captured from a submitted task since the previous Wait().
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool (caller included) and
  /// waits for completion. Rethrows the first exception thrown by fn.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Splits [0, n) into dynamically claimed contiguous chunks and runs
  /// fn(begin, end) for each; waits for completion. Rethrows the first
  /// exception thrown by fn.
  void ParallelForChunked(
      size_t n, const std::function<void(size_t begin, size_t end)>& fn);

  // --- Introspection (lock-free; feed the obs gauges, see
  // obs::BindThreadPoolMetrics).

  /// Tasks currently sitting in the queue, not yet claimed by a worker.
  size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Workers currently executing a task.
  size_t busy_workers() const {
    return busy_workers_.load(std::memory_order_relaxed);
  }
  /// Total tasks executed by workers since construction.
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  /// Total chunks executed on behalf of ParallelFor/ParallelForChunked
  /// (caller-run chunks included).
  uint64_t chunks_executed() const {
    return chunks_executed_.load(std::memory_order_relaxed);
  }

  /// Chunks-per-worker factor used by the dynamic chunker.
  static constexpr size_t kChunksPerWorker = 4;

 private:
  struct ForState {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> chunks_done{0};
    size_t num_chunks = 0;
    size_t chunk_size = 0;
    size_t n = 0;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;  // first body exception; guarded by mu
  };

  void WorkerLoop();
  void RunChunks(const std::shared_ptr<ForState>& state);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;  // from submitted tasks; guarded by mu_

  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> busy_workers_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> chunks_executed_{0};
};

}  // namespace gids

#endif  // GIDS_COMMON_THREAD_POOL_H_
