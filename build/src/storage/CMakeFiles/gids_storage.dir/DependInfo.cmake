
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bam_array.cc" "src/storage/CMakeFiles/gids_storage.dir/bam_array.cc.o" "gcc" "src/storage/CMakeFiles/gids_storage.dir/bam_array.cc.o.d"
  "/root/repo/src/storage/block_device.cc" "src/storage/CMakeFiles/gids_storage.dir/block_device.cc.o" "gcc" "src/storage/CMakeFiles/gids_storage.dir/block_device.cc.o.d"
  "/root/repo/src/storage/feature_gather.cc" "src/storage/CMakeFiles/gids_storage.dir/feature_gather.cc.o" "gcc" "src/storage/CMakeFiles/gids_storage.dir/feature_gather.cc.o.d"
  "/root/repo/src/storage/io_queue.cc" "src/storage/CMakeFiles/gids_storage.dir/io_queue.cc.o" "gcc" "src/storage/CMakeFiles/gids_storage.dir/io_queue.cc.o.d"
  "/root/repo/src/storage/queue_manager.cc" "src/storage/CMakeFiles/gids_storage.dir/queue_manager.cc.o" "gcc" "src/storage/CMakeFiles/gids_storage.dir/queue_manager.cc.o.d"
  "/root/repo/src/storage/software_cache.cc" "src/storage/CMakeFiles/gids_storage.dir/software_cache.cc.o" "gcc" "src/storage/CMakeFiles/gids_storage.dir/software_cache.cc.o.d"
  "/root/repo/src/storage/storage_array.cc" "src/storage/CMakeFiles/gids_storage.dir/storage_array.cc.o" "gcc" "src/storage/CMakeFiles/gids_storage.dir/storage_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gids_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
