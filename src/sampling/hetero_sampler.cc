#include "sampling/hetero_sampler.h"

#include <unordered_map>

#include "common/check.h"

namespace gids::sampling {

HeteroNeighborSampler::HeteroNeighborSampler(
    const graph::CscGraph* graph, std::vector<graph::NodeTypeInfo> node_types,
    HeteroSamplerOptions options, uint64_t seed)
    : graph_(graph),
      node_types_(std::move(node_types)),
      options_(std::move(options)),
      seed_(seed) {
  GIDS_CHECK(graph_ != nullptr);
  GIDS_CHECK(!node_types_.empty());
  GIDS_CHECK(!options_.fanouts.empty());
  // Type ranges must be contiguous and cover the graph.
  graph::NodeId covered = 0;
  for (const auto& t : node_types_) {
    GIDS_CHECK(t.offset == covered);
    covered += t.count;
  }
  GIDS_CHECK(covered == graph_->num_nodes());
  for (const auto& layer : options_.fanouts) {
    GIDS_CHECK(layer.size() == node_types_.size());
    for (int f : layer) GIDS_CHECK(f >= 0);
  }
}

size_t HeteroNeighborSampler::TypeOf(graph::NodeId v) const {
  GIDS_DCHECK(v < graph_->num_nodes());
  // Few types (<= ~8): linear scan beats binary search.
  for (size_t i = 0; i < node_types_.size(); ++i) {
    if (v < node_types_[i].offset + node_types_[i].count) return i;
  }
  GIDS_CHECK(false);
  return 0;
}

MiniBatch HeteroNeighborSampler::SampleAt(
    std::span<const graph::NodeId> seeds, uint64_t iteration) {
  Rng rng = IterationRng(seed_, iteration);
  MiniBatch batch;
  batch.seeds.assign(seeds.begin(), seeds.end());

  std::vector<graph::NodeId> frontier(seeds.begin(), seeds.end());
  std::vector<Block> blocks_seedward;

  for (const std::vector<int>& layer_fanouts : options_.fanouts) {
    Block block;
    block.num_dst = static_cast<uint32_t>(frontier.size());
    block.src_nodes = frontier;

    std::unordered_map<graph::NodeId, uint32_t> local;
    local.reserve(frontier.size() * 4);
    for (uint32_t i = 0; i < frontier.size(); ++i) local[frontier[i]] = i;

    for (uint32_t d = 0; d < block.num_dst; ++d) {
      graph::NodeId v = frontier[d];
      int fanout = layer_fanouts[TypeOf(v)];
      if (fanout == 0) continue;  // this type is not expanded at this hop
      auto nbrs = graph_->in_neighbors(v);
      if (nbrs.empty()) continue;
      auto emit = [&](graph::NodeId u) {
        auto [it, inserted] = local.try_emplace(
            u, static_cast<uint32_t>(block.src_nodes.size()));
        if (inserted) block.src_nodes.push_back(u);
        block.edge_src.push_back(it->second);
        block.edge_dst.push_back(d);
      };
      if (nbrs.size() <= static_cast<size_t>(fanout)) {
        for (graph::NodeId u : nbrs) emit(u);
      } else {
        std::vector<uint64_t> picks = SampleWithoutReplacement(
            nbrs.size(), static_cast<uint64_t>(fanout), rng);
        for (uint64_t p : picks) emit(nbrs[p]);
      }
    }
    frontier = block.src_nodes;
    blocks_seedward.push_back(std::move(block));
  }

  batch.blocks.assign(blocks_seedward.rbegin(), blocks_seedward.rend());
  return batch;
}

}  // namespace gids::sampling
