#ifndef GIDS_SIM_GPU_MODEL_H_
#define GIDS_SIM_GPU_MODEL_H_

#include <cstdint>

#include "common/units.h"

namespace gids::sim {

/// GPU execution model (NVIDIA A100-40GB, Table 1), calibrated to the
/// paper's measurements:
///  - Fig. 3: GPU data preparation generates ~77 M feature requests/s;
///    the training kernels consume ~29 M feature vectors/s.
///  - §4.2: kernel launch + initial software overheads ~= 25 us (T_i),
///    termination ~= 5 us (T_t).
///  - §3.5/Fig. 7: GPU sampling hides memory latency with thread-level
///    parallelism; throughput ramps with available per-layer work
///    (occupancy) and is insensitive to structure size.
struct GpuSpec {
  int num_sms = 108;
  uint64_t device_memory_bytes = 40ull * 1024 * 1024 * 1024;
  double hbm_bandwidth_bps = 1555e9;

  double prep_request_rate = 77e6;    // feature requests/s (Fig. 3)
  double train_consume_rate = 29e6;   // feature vectors consumed/s (Fig. 3)

  TimeNs kernel_launch_ns = UsToNs(25);       // T_i
  TimeNs kernel_termination_ns = UsToNs(5);   // T_t

  /// Per-edge cost when the structure fits in the GPU LLC (latency fully
  /// hidden by thread-level parallelism).
  double edge_sample_base_ns = 1.2;
  /// Extra per-edge cost for UVA zero-copy traversal of CPU-pinned
  /// structure data (PCIe round trips, partially hidden). Applied in
  /// proportion to the structure's LLC-miss probability. Far smaller than
  /// the CPU's DRAM-latency penalty, which is what opens the Fig. 7 gap.
  double uva_edge_penalty_ns = 3.5;
  uint64_t llc_bytes = 40ull * 1024 * 1024;  // Table 1: 40 MB LLC
  uint64_t occupancy_saturation_edges = 20000;  // work to fill the GPU
  double min_occupancy = 0.5;

  static GpuSpec A100_40GB() { return GpuSpec{}; }
};

/// Timing functions derived from GpuSpec.
class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec) : spec_(spec) {}
  const GpuSpec& spec() const { return spec_; }

  /// Time for one GPU sampling kernel that traverses `edges` edges of a
  /// graph whose (CPU-pinned) structure occupies `structure_bytes` (one
  /// layer of neighborhood expansion over UVA).
  TimeNs SamplingLayerTime(uint64_t edges, uint64_t structure_bytes) const;

  /// Total sampling time across per-layer edge counts.
  TimeNs SamplingTime(const uint64_t* layer_edges, int layers,
                      uint64_t structure_bytes) const;

  /// Training-stage time for a mini-batch that consumed `feature_vectors`
  /// aggregated node features (forward + backward + update; Fig. 3's
  /// consumption-rate calibration).
  TimeNs TrainTime(uint64_t feature_vectors) const;

  /// Time to generate `n` feature-vector requests on the GPU prep path.
  TimeNs RequestGenTime(uint64_t n) const;

 private:
  GpuSpec spec_;
};

}  // namespace gids::sim

#endif  // GIDS_SIM_GPU_MODEL_H_
