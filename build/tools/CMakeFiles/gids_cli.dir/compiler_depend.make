# Empty compiler generated dependencies file for gids_cli.
# This may be replaced when dependencies are built.
