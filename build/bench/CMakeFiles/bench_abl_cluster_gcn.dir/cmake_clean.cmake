file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cluster_gcn.dir/bench_abl_cluster_gcn.cc.o"
  "CMakeFiles/bench_abl_cluster_gcn.dir/bench_abl_cluster_gcn.cc.o.d"
  "bench_abl_cluster_gcn"
  "bench_abl_cluster_gcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cluster_gcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
