#ifndef GIDS_BENCH_COMMON_H_
#define GIDS_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/gids_loader.h"
#include "core/trainer.h"
#include "graph/dataset.h"
#include "loaders/dataloader.h"
#include "sampling/ladies_sampler.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/seed_iterator.h"
#include "sim/system_model.h"

namespace gids::bench {

/// Default proxy scaling used across the benchmark suite (see DESIGN.md §2
/// and EXPERIMENTS.md): dataset node counts, CPU memory, and GPU cache are
/// all scaled by 1/256; the mini-batch is scaled so the minibatch/graph
/// and cache/minibatch ratios match the paper's regime.
inline constexpr double kProxyScale = 1.0 / 256.0;
inline constexpr uint32_t kProxyBatchSize = 16;

struct ProxyConfig {
  graph::DatasetSpec spec = graph::DatasetSpec::IgbFull();
  double scale = kProxyScale;
  double memory_scale = kProxyScale;
  uint32_t batch_size = kProxyBatchSize;
  std::vector<int> fanouts = {10, 5, 5};
  sim::SsdSpec ssd = sim::SsdSpec::IntelOptane();
  int n_ssd = 1;
  uint64_t seed = 42;
};

/// The assembled experiment pieces (dataset generation is cached across
/// benchmarks within one binary; sampler/seed state is always fresh).
struct Rig {
  std::shared_ptr<const graph::Dataset> dataset;
  std::unique_ptr<sim::SystemModel> system;
  std::unique_ptr<sampling::Sampler> sampler;
  std::unique_ptr<sampling::SeedIterator> seeds;
};

/// Builds a rig with a neighborhood sampler.
Rig BuildRig(const ProxyConfig& config);

/// Builds a rig with a LADIES sampler using `layer_sizes`.
Rig BuildLadiesRig(const ProxyConfig& config,
                   std::vector<uint32_t> layer_sizes);

enum class LoaderKind { kMmap, kGinex, kBam, kGids };

const char* LoaderKindName(LoaderKind kind);

/// Constructs the requested dataloader over `rig` in counting mode.
/// `gids_options` overrides the GIDS/BaM configuration when non-null
/// (counting mode is forced on).
std::unique_ptr<loaders::DataLoader> MakeLoader(
    LoaderKind kind, Rig& rig,
    const core::GidsOptions* gids_options = nullptr);

/// Runs the paper's measurement protocol and returns aggregate stats.
core::TrainRunResult RunProtocol(Rig& rig, loaders::DataLoader& loader,
                                 uint64_t warmup, uint64_t measure);

/// Returns (and caches) the weighted-reverse-PageRank hot-node ranking for
/// a dataset, so bench variants don't recompute the power iteration.
const std::vector<graph::NodeId>& CachedPageRankOrder(
    const std::shared_ptr<const graph::Dataset>& dataset);

/// Emits one comparison row to stdout in a stable grep-able format:
///   [FIG13] IGB-Full/GIDS  measured=12.3  paper=10.0  unit=x
/// plus a machine-readable RESULT_JSON twin. `wall_ms` (host wall-clock
/// milliseconds, TrainRunResult::wall_ms), `host_threads`, `dedup_ratio`
/// (coalesced page requests / total page requests, the coalescing
/// gather's fold fraction), and `steady_state_allocs` (workspace-pool
/// allocations observed during the measured phase after warmup+Prewarm;
/// DESIGN.md §11) are added to the JSON when non-negative.
///
/// RESULT_JSON schema contract (enforced by tools/bench_compare.py, the
/// regression gate in tools/check.sh): `experiment`, `label`, `measured`,
/// and `unit` are required on every row; `paper`, `wall_ms`,
/// `host_threads`, `dedup_ratio`, and `steady_state_allocs` are optional.
/// Only `measured` is compared against bench/baselines/ — it is
/// virtual-time and therefore deterministic, unlike `wall_ms` — except
/// that any row carrying `steady_state_allocs` fails the gate outright
/// when the value is nonzero (the zero-allocation hot-path contract).
void ReportRow(const std::string& experiment, const std::string& label,
               double measured, double paper, const std::string& unit,
               double wall_ms = -1.0, int host_threads = -1,
               double dedup_ratio = -1.0, int64_t steady_state_allocs = -1);

}  // namespace gids::bench

#endif  // GIDS_BENCH_COMMON_H_
