# Empty dependencies file for bench_tab04_datasize.
# This may be replaced when dependencies are built.
