#include "loaders/belady_cache.h"

#include <limits>
#include <queue>

#include "common/check.h"

namespace gids::loaders {
namespace {

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

}  // namespace

BeladyCache::BeladyCache(uint64_t capacity_pages) : capacity_(capacity_pages) {
  GIDS_CHECK(capacity_ > 0);
}

BeladyCache::SuperbatchResult BeladyCache::ProcessSuperbatch(
    const std::vector<std::vector<uint64_t>>& iteration_pages) {
  SuperbatchResult result;
  result.hits_per_iteration.assign(iteration_pages.size(), 0);
  result.misses_per_iteration.assign(iteration_pages.size(), 0);

  // Flatten the trace and precompute, for each position, the next position
  // at which the same page is accessed (kNever if none).
  std::vector<uint64_t> trace;
  std::vector<size_t> iter_of;
  for (size_t it = 0; it < iteration_pages.size(); ++it) {
    for (uint64_t p : iteration_pages[it]) {
      trace.push_back(p);
      iter_of.push_back(it);
    }
  }
  std::vector<uint64_t> next_use(trace.size(), kNever);
  std::unordered_map<uint64_t, uint64_t> last_seen;
  last_seen.reserve(trace.size());
  for (size_t i = trace.size(); i-- > 0;) {
    auto it = last_seen.find(trace[i]);
    next_use[i] = it == last_seen.end() ? kNever : it->second;
    last_seen[trace[i]] = i;
  }
  // first occurrence of each page == last_seen after the backward scan.
  const auto& first_occurrence = last_seen;

  // Re-key carried-over residents by their next use in this superbatch.
  // Max-heap of (next_use, page); entries are validated lazily against
  // resident_'s current value.
  std::priority_queue<std::pair<uint64_t, uint64_t>> heap;
  for (auto& [page, key] : resident_) {
    auto fo = first_occurrence.find(page);
    key = fo == first_occurrence.end() ? kNever : fo->second;
    heap.emplace(key, page);
  }

  for (size_t i = 0; i < trace.size(); ++i) {
    uint64_t page = trace[i];
    auto res = resident_.find(page);
    if (res != resident_.end()) {
      ++result.hits_per_iteration[iter_of[i]];
      res->second = next_use[i];
      heap.emplace(next_use[i], page);
      continue;
    }
    ++result.misses_per_iteration[iter_of[i]];
    if (resident_.size() >= capacity_) {
      // Evict the resident page with the farthest next use.
      for (;;) {
        GIDS_CHECK(!heap.empty());
        auto [key, victim] = heap.top();
        heap.pop();
        auto vit = resident_.find(victim);
        if (vit != resident_.end() && vit->second == key) {
          resident_.erase(vit);
          break;
        }
      }
    }
    resident_.emplace(page, next_use[i]);
    heap.emplace(next_use[i], page);
  }
  return result;
}

}  // namespace gids::loaders
