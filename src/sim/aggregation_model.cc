#include "sim/aggregation_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "sim/analytic.h"

namespace gids::sim {

AggregationTiming ComputeAggregationTiming(const SystemModel& system,
                                           const AggregationCounts& counts) {
  AggregationTiming t;
  const SystemConfig& cfg = system.config();
  const uint64_t total = counts.total_requests();
  if (total == 0) return t;

  const uint64_t page = counts.page_bytes;
  const uint64_t ssd_bytes = counts.ssd_reads * page;
  const uint64_t cpu_bytes = counts.cpu_buffer_hits * page;
  const uint64_t hbm_bytes = counts.gpu_cache_hits * page;
  t.pcie_ingress_bytes = ssd_bytes + cpu_bytes;
  t.feature_bytes = ssd_bytes + cpu_bytes + hbm_bytes;

  // --- Storage path. The share of the in-flight window that targets the
  // SSDs shrinks when accesses are redirected (cache/CPU-buffer hits), and
  // warps busy copying CPU-buffer data cannot enqueue storage requests.
  TimeNs launch_overhead =
      cfg.gpu.kernel_launch_ns + cfg.gpu.kernel_termination_ns;
  if (counts.ssd_reads > 0) {
    double ssd_share = static_cast<double>(counts.ssd_reads) /
                       static_cast<double>(total);
    double cpu_share = static_cast<double>(counts.cpu_buffer_hits) /
                       static_cast<double>(total);
    uint64_t outstanding = std::max<uint64_t>(counts.outstanding_accesses, 1);
    double window = static_cast<double>(outstanding) * ssd_share *
                    (1.0 - cfg.redirect_interference * cpu_share);
    uint64_t ssd_window = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(window)));
    SsdSpec spec = cfg.ssd;
    spec.io_size_bytes = counts.page_bytes;
    SsdBatchResult ssd =
        cfg.event_driven_ssd
            ? SimulateStripedClosedLoop(spec, cfg.n_ssd, counts.ssd_reads,
                                        ssd_window,
                                        /*seed=*/counts.ssd_reads ^ 0xde5)
            : EstimateClosedLoop(spec, cfg.n_ssd, counts.ssd_reads,
                                 ssd_window);
    t.ssd_ns = launch_overhead + ssd.duration_ns;
  } else {
    t.ssd_ns = launch_overhead;
  }

  // --- Shared-link floors.
  t.pcie_floor_ns = t.pcie_ingress_bytes > 0
                        ? system.pcie().TransferTime(t.pcie_ingress_bytes)
                        : 0;
  t.hbm_ns = hbm_bytes > 0 ? system.hbm().TransferTime(hbm_bytes) : 0;
  t.dram_ns = cpu_bytes > 0 ? system.dram().TransferTime(cpu_bytes) : 0;

  t.total_ns = std::max({t.ssd_ns, t.pcie_floor_ns, t.hbm_ns, t.dram_ns,
                         static_cast<TimeNs>(1)});

  double secs = NsToSec(t.total_ns);
  t.ssd_bandwidth_bps = static_cast<double>(ssd_bytes) / secs;
  t.pcie_ingress_bps = static_cast<double>(t.pcie_ingress_bytes) / secs;
  t.effective_bandwidth_bps = static_cast<double>(t.feature_bytes) / secs;
  return t;
}

}  // namespace gids::sim
